// Product-catalog deduplication: the scenario motivating the paper's
// introduction (Tables 1 & 2 — the same phone listed by two shops with
// different schemas and noisy text). A transformer matcher is fine-tuned on
// labeled pairs, then used to link a product feed against a catalog.
//
//   ./product_deduplication [cache_dir]

#include <cstdio>
#include <string>
#include <vector>

#include "core/entity_matcher.h"
#include "data/generators.h"
#include "pretrain/model_zoo.h"

int main(int argc, char** argv) {
  using namespace emx;

  pretrain::ZooOptions zoo;
  // Shares the bench cache by default so examples reuse pre-trained models.
  zoo.cache_dir = argc > 1 ? argv[1] : "/tmp/emx_zoo_bench";
  zoo.vocab_size = 1000;
  zoo.corpus.num_documents = 2000;
  zoo.pretrain.steps = 1200;
  zoo.pretrain.batch_size = 16;
  zoo.pretrain.data.max_seq_len = 32;
  zoo.pretrain.learning_rate = 1e-3f;

  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  core::EntityMatcher matcher(std::move(bundle).value());

  // Fine-tune on the textual Abt-Buy style data: the matcher must decide
  // from long noisy descriptions alone (the paper uses only the
  // description attribute on this dataset).
  data::GeneratorOptions gen;
  gen.scale = 0.03;
  auto dataset = data::GenerateDataset(data::DatasetId::kAbtBuy, gen);
  core::FineTuneOptions ft;
  ft.epochs = 5;
  ft.max_seq_len = 64;  // long text blobs (position-table cap)
  ft.learning_rate = 1e-3f;
  std::printf("Fine-tuning %s on %s (%lld pairs)...\n", matcher.arch_name(),
              dataset.name.c_str(),
              static_cast<long long>(dataset.TotalPairs()));
  matcher.FineTune(dataset, ft);
  auto scores = matcher.Evaluate(dataset, dataset.test);
  std::printf("Test F1 %.1f\n\n", scores.f1 * 100);

  // Deduplicate: link incoming feed records (side B) against the catalog
  // (side A) and report the detected duplicates.
  std::printf("Linking the first 20 test pairs:\n");
  int64_t shown = 0;
  for (const auto& pair : dataset.test) {
    if (shown >= 20) break;
    const std::string a = dataset.SerializeA(pair);
    const std::string b = dataset.SerializeB(pair);
    const double p = matcher.MatchProbability(a, b);
    std::printf("  [%s] p=%.2f truth=%lld | %.44s... vs %.44s...\n",
                p >= 0.5 ? "DUP" : "new", p,
                static_cast<long long>(pair.label), a.c_str(), b.c_str());
    ++shown;
  }
  return 0;
}
