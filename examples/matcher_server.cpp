// matcher_server: serve entity-match requests through the emx::serve stack.
//
// Wraps an EntityMatcher in a MatcherEngine (bounded queue, dynamic
// micro-batching, tokenization cache, grad-free forward) and drives it with
// simulated client threads, then prints per-request decisions and the
// engine's metrics snapshot — the JSON a real deployment would scrape.
//
//   ./matcher_server [--finetune] [--clients N] [--requests N] [cache_dir]
//
// By default the backbone keeps its random init so the demo starts in
// seconds; pass --finetune to briefly fine-tune on a generated
// Walmart-Amazon slice first (slower, but the decisions become meaningful).

#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/entity_matcher.h"
#include "data/generators.h"
#include "pretrain/model_zoo.h"
#include "serve/matcher_engine.h"

int main(int argc, char** argv) {
  using namespace emx;

  bool finetune = false;
  int64_t clients = 4;
  int64_t requests = 200;
  std::string cache_dir = "/tmp/emx_zoo_bench";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--finetune") == 0) {
      finetune = true;
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoll(argv[++i]);
    } else {
      cache_dir = argv[i];
    }
  }

  // 1. Model: tokenizer always trained (cached); weights random unless
  //    --finetune is given.
  pretrain::ZooOptions zoo;
  zoo.cache_dir = cache_dir;
  zoo.vocab_size = 1000;
  zoo.corpus.num_documents = 2000;
  zoo.skip_pretraining = !finetune;
  zoo.pretrain.steps = 1200;
  zoo.pretrain.batch_size = 16;
  zoo.pretrain.data.max_seq_len = 32;
  zoo.pretrain.learning_rate = 1e-3f;
  auto bundle = pretrain::GetPretrained(models::Architecture::kRoberta, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  core::EntityMatcher matcher(std::move(bundle).value());
  matcher.set_eval_max_seq_len(48);

  data::GeneratorOptions gen;
  gen.scale = 0.04;
  auto dataset = data::GenerateDataset(data::DatasetId::kWalmartAmazon, gen);
  if (finetune) {
    core::FineTuneOptions ft;
    ft.epochs = 3;
    ft.max_seq_len = 48;
    ft.learning_rate = 1e-3f;
    std::printf("Fine-tuning %s for %lld epochs...\n", matcher.arch_name(),
                static_cast<long long>(ft.epochs));
    matcher.FineTune(dataset, ft);
  }

  // 2. Engine: micro-batch up to 16 pairs, flush after 2ms, cache 4096
  //    tokenizations, reject beyond 1024 queued requests.
  serve::EngineOptions opts;
  opts.max_batch_size = 16;
  opts.max_wait_us = 2000;
  opts.queue_capacity = 1024;
  opts.max_seq_len = 48;
  serve::MatcherEngine engine(&matcher, opts);
  std::printf("MatcherEngine up: batch<=%lld, flush %lldus, queue %lld\n\n",
              static_cast<long long>(opts.max_batch_size),
              static_cast<long long>(opts.max_wait_us),
              static_cast<long long>(opts.queue_capacity));

  // 3. A few interactive-style requests.
  struct Demo {
    const char* a;
    const char* b;
  };
  const Demo demos[] = {
      {"samsung zen sx440 phone , compact black with hd display",
       "samsung sx440 zen phone black 64 gb"},
      {"samsung zen sx440 phone , compact black with hd display",
       "canon prime zz910 camera with optical zoom"},
      {"logitech wireless mouse m185 grey", "logitech m185 mouse wireless"},
  };
  for (const Demo& d : demos) {
    serve::MatchResult r = engine.Match(d.a, d.b);
    std::printf("Match('%s',\n      '%s')\n  -> %s p=%.3f (%.0fus, batch %lld)\n",
                d.a, d.b, r.is_match ? "MATCH" : "no match", r.probability,
                r.total_us, static_cast<long long>(r.batch_size));
  }

  // 4. Simulated traffic: `clients` threads replaying dataset pairs with a
  //    hot-set skew so the tokenization cache earns its keep.
  std::printf("\nServing %lld requests from %lld client threads...\n",
              static_cast<long long>(requests * clients),
              static_cast<long long>(clients));
  std::vector<std::thread> workers;
  for (int64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      std::vector<std::future<serve::MatchResult>> futures;
      const auto& pool = dataset.train;
      for (int64_t i = 0; i < requests; ++i) {
        // 1-in-4 requests hit a small hot set of popular entities.
        const size_t idx = (i % 4 == 0)
                               ? static_cast<size_t>(i % 8)
                               : static_cast<size_t>(c * requests + i) %
                                     pool.size();
        const auto& p = pool[idx];
        futures.push_back(
            engine.Submit(dataset.SerializeA(p), dataset.SerializeB(p)));
      }
      for (auto& f : futures) (void)f.get();
    });
  }
  for (auto& w : workers) w.join();

  // 5. The scrape-able snapshot.
  std::printf("\nmetrics: %s\n", engine.MetricsJson().c_str());
  return 0;
}
