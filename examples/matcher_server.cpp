// matcher_server: serve entity-match requests through the emx::serve stack.
//
// Wraps an EntityMatcher in a MatcherEngine (bounded queue, dynamic
// micro-batching, tokenization cache, grad-free forward) and drives it with
// simulated client threads, then prints per-request decisions and the
// engine's metrics snapshot — the JSON a real deployment would scrape.
//
//   ./matcher_server [--finetune] [--precision=int8] [--clients N]
//                    [--requests N] [--trace=out.json] [--port=N]
//                    [--serve-seconds=S] [--split-layer=N]
//                    [--activation-cache-mb=M] [--save-model=PATH]
//                    [--model=PATH] [--reload] [cache_dir]
//
// --save-model=PATH writes the finished matcher (after --finetune and/or
// --precision=int8) to an EMXM1 container: fp32 parameters plus, when
// quantized, the packed int8 weight images and their scales.
// --model=PATH maps an EMXM1 container into the matcher instead of
// fine-tuning: parameters are copied from the mapping and packed int8
// weights are served zero-copy from the mapped file. A container that
// carries int8 sections makes --precision=int8 serving start without any
// calibration pass.
// --reload (socket mode) watches --model's mtime and hot-swaps the engine
// onto a freshly mapped copy whenever the file changes; in-flight batches
// finish on the old mapping and the swap drops no requests.
//
// --split-layer=N serves through the split-encoder prefix cache: the first
// N encoder layers run per entity segment (cached, keyed by entity text)
// and only layers N..L run as the full cross-encoder. N=0 caches at the
// embedding level and is bit-identical to the unsplit path.
// --activation-cache-mb=M bounds the prefix cache (default 64 MB).
//
// --port=N switches to socket mode: instead of simulating in-process
// traffic, the engine is exposed on 127.0.0.1:N over the emx wire protocol
// (net::MatchServer). --port=0 asks the kernel for an ephemeral port and
// prints the assignment, so scripts can run many servers without port
// bookkeeping. Bind/listen failures are reported with the syscall and
// errno text (via util::Status) and exit nonzero. The server answers a
// loopback self-check through a FleetRouter first, then serves until
// SIGINT/SIGTERM — or for --serve-seconds=S when given, which is what CI
// uses.
//
// --trace=PATH records the simulated traffic with emx::obs and writes a
// chrome://tracing / Perfetto-loadable trace to PATH; both the trace and
// the metrics snapshot are strict-validated before exit (nonzero exit on
// malformed output, so CI can use this as a gate).
//
// By default the backbone keeps its random init so the demo starts in
// seconds; pass --finetune to briefly fine-tune on a generated
// Walmart-Amazon slice first (slower, but the decisions become meaningful).
//
// --precision=int8 post-training-quantizes the matcher (calibrating on the
// held-out validation slice) and serves the simulated traffic through BOTH
// engines — fp32 and int8 — printing their metrics side by side.

#include <sys/stat.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/entity_matcher.h"
#include "data/generators.h"
#include "net/fleet_router.h"
#include "net/match_server.h"
#include "nn/layers.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "pretrain/model_zoo.h"
#include "quant/model_file.h"
#include "quant/quantize_matcher.h"
#include "serve/matcher_engine.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true); }

/// Mtime of `path` at nanosecond granularity, or 0 when it cannot be
/// stat'ed (missing file, permission).
int64_t FileMtimeNs(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
         static_cast<int64_t>(st.st_mtim.tv_nsec);
}

/// Socket mode: exposes `matcher` on 127.0.0.1:`port` over the wire
/// protocol, answers a loopback self-check through a FleetRouter, then
/// serves until SIGINT/SIGTERM (or for `serve_seconds` when > 0). Returns
/// the process exit code; bind/listen failures are printed with their
/// errno text.
///
/// With `reload` set, a watcher thread polls `model_path`'s mtime twice a
/// second; when the file changes, `make_matcher` maps the new container
/// and the engine hot-swaps onto it without dropping in-flight requests.
int ServeSocket(
    emx::core::EntityMatcher* matcher, emx::serve::Precision precision,
    uint16_t port, int64_t serve_seconds, int64_t split_layer,
    int64_t activation_cache_bytes, const std::string& model_path, bool reload,
    const std::function<
        emx::Result<std::shared_ptr<emx::core::EntityMatcher>>()>&
        make_matcher) {
  using namespace emx;
  serve::EngineOptions eopts;
  eopts.precision = precision;
  eopts.max_batch_size = 16;
  eopts.max_wait_us = 2000;
  eopts.queue_capacity = 1024;
  eopts.max_seq_len = 48;
  eopts.split_layer = split_layer;
  eopts.activation_cache_bytes = activation_cache_bytes;
  serve::MatcherEngine engine(matcher, eopts);

  std::atomic<bool> watch_stop{false};
  std::thread watcher;
  if (reload && !model_path.empty()) {
    watcher = std::thread([&] {
      int64_t last_mtime = FileMtimeNs(model_path);
      while (!watch_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
        const int64_t mtime = FileMtimeNs(model_path);
        if (mtime == 0 || mtime == last_mtime) continue;
        last_mtime = mtime;
        auto next = make_matcher();
        if (!next.ok()) {
          std::printf("reload: %s\n", next.status().ToString().c_str());
          continue;
        }
        if (Status s = engine.SwapModel(next.value()); !s.ok()) {
          std::printf("reload: swap rejected: %s\n", s.ToString().c_str());
          continue;
        }
        std::printf("reload: %s -> model v%llu\n", model_path.c_str(),
                    static_cast<unsigned long long>(engine.model_version()));
      }
    });
    std::printf("watching %s for hot-swap (500 ms poll)\n",
                model_path.c_str());
  }
  struct WatcherJoin {
    std::atomic<bool>* stop;
    std::thread* t;
    ~WatcherJoin() {
      stop->store(true, std::memory_order_release);
      if (t->joinable()) t->join();
    }
  } watcher_join{&watch_stop, &watcher};

  net::ServerOptions sopts;
  sopts.port = port;
  net::MatchServer server(&engine, sopts);
  if (Status s = server.Start(); !s.ok()) {
    std::printf("error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u (requested port %u)\n",
              static_cast<unsigned>(server.port()),
              static_cast<unsigned>(port));

  // Loopback self-check: route one pair through a real socket client so a
  // green start-up line means the full wire path works, not just bind().
  {
    net::RouterOptions ropts;
    ropts.hedging = false;
    net::FleetRouter router(ropts);
    if (Status s = router.AddRemoteShard(server.port()); !s.ok()) {
      std::printf("error: self-check connect: %s\n", s.ToString().c_str());
      return 1;
    }
    const net::RouteResult r =
        router.Match("logitech wireless mouse m185 grey",
                     "logitech m185 mouse wireless", /*timeout_us=*/10000000);
    if (!r.status.ok()) {
      std::printf("error: self-check request: %s\n",
                  r.status.ToString().c_str());
      return 1;
    }
    std::printf("self-check ok: %s p=%.3f (%.1f ms over loopback)\n",
                r.is_match ? "MATCH" : "no match", r.probability,
                r.total_us / 1000.0);
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  const auto stop_at = std::chrono::steady_clock::now() +
                       std::chrono::seconds(serve_seconds);
  if (serve_seconds > 0) {
    std::printf("serving for %lld seconds...\n",
                static_cast<long long>(serve_seconds));
  } else {
    std::printf("serving until SIGINT/SIGTERM...\n");
  }
  while (!g_stop.load() &&
         (serve_seconds <= 0 || std::chrono::steady_clock::now() < stop_at)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  std::printf("\nmetrics: %s\n", server.MetricsJson().c_str());
  return 0;
}

struct TrafficResult {
  double pairs_per_sec = 0;
  emx::serve::MetricsSnapshot metrics;
};

/// Replays dataset pairs from `clients` threads with a hot-set skew so the
/// tokenization cache earns its keep.
TrafficResult RunTraffic(emx::core::EntityMatcher* matcher,
                         emx::serve::Precision precision,
                         const emx::data::EmDataset& dataset, int64_t clients,
                         int64_t requests, int64_t split_layer,
                         int64_t activation_cache_bytes) {
  using namespace emx;
  serve::EngineOptions opts;
  opts.precision = precision;
  opts.max_batch_size = 16;
  opts.max_wait_us = 2000;
  opts.queue_capacity = 1024;
  opts.max_seq_len = 48;
  opts.split_layer = split_layer;
  opts.activation_cache_bytes = activation_cache_bytes;
  serve::MatcherEngine engine(matcher, opts);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      std::vector<std::future<serve::MatchResult>> futures;
      const auto& pool = dataset.train;
      for (int64_t i = 0; i < requests; ++i) {
        // 1-in-4 requests hit a small hot set of popular entities.
        const size_t idx = (i % 4 == 0)
                               ? static_cast<size_t>(i % 8)
                               : static_cast<size_t>(c * requests + i) %
                                     pool.size();
        const auto& p = pool[idx];
        futures.push_back(
            engine.Submit(dataset.SerializeA(p), dataset.SerializeB(p)));
      }
      for (auto& f : futures) (void)f.get();
    });
  }
  for (auto& w : workers) w.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  TrafficResult result;
  result.metrics = engine.Metrics();
  result.pairs_per_sec =
      static_cast<double>(clients * requests) / (seconds > 0 ? seconds : 1);
  return result;
}

/// Stops profiling, writes the Chrome trace to `path`, and strict-validates
/// both the trace file and the engine metrics JSON. Returns false (and
/// explains) if either artifact would break a strict consumer.
bool FinishTrace(const std::string& path, const std::string& metrics_json) {
  using namespace emx;
  obs::StopProfiling();
  if (!obs::WriteChromeTrace(path)) {
    std::printf("error: cannot write trace to %s\n", path.c_str());
    return false;
  }

  obs::JsonValue doc;
  std::string error;
  if (!obs::JsonParse(obs::ExportChromeTrace(), &doc, &error)) {
    std::printf("error: emitted trace is not strict JSON: %s\n",
                error.c_str());
    return false;
  }
  const obs::JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array() || events->array.empty()) {
    std::printf("error: trace has no traceEvents\n");
    return false;
  }
  if (!obs::JsonParse(metrics_json, &doc, &error)) {
    std::printf("error: metrics snapshot is not strict JSON: %s\n",
                error.c_str());
    return false;
  }
  std::printf("\nwrote %s (%lld events, %lld dropped) — load it at "
              "chrome://tracing or ui.perfetto.dev\n",
              path.c_str(), static_cast<long long>(events->array.size()),
              static_cast<long long>(obs::TraceDroppedCount()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace emx;

  bool finetune = false;
  bool int8 = false;
  bool socket_mode = false;
  int64_t port = 0;
  int64_t serve_seconds = 0;
  int64_t clients = 4;
  int64_t requests = 200;
  int64_t split_layer = -1;
  int64_t activation_cache_mb = 64;
  bool reload = false;
  std::string model_path;
  std::string save_model_path;
  std::string trace_path;
  std::string cache_dir = "/tmp/emx_zoo_bench";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--finetune") == 0) {
      finetune = true;
    } else if (std::strncmp(argv[i], "--port=", 7) == 0) {
      socket_mode = true;
      port = std::atoll(argv[i] + 7);
      if (port < 0 || port > 65535) {
        std::printf("error: --port=%lld out of range [0, 65535]\n",
                    static_cast<long long>(port));
        return 1;
      }
    } else if (std::strncmp(argv[i], "--serve-seconds=", 16) == 0) {
      serve_seconds = std::atoll(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--split-layer=", 14) == 0) {
      split_layer = std::atoll(argv[i] + 14);
      if (split_layer < 0) {
        std::printf("error: --split-layer=%lld must be >= 0\n",
                    static_cast<long long>(split_layer));
        return 1;
      }
    } else if (std::strncmp(argv[i], "--activation-cache-mb=", 22) == 0) {
      activation_cache_mb = std::atoll(argv[i] + 22);
      if (activation_cache_mb < 0) {
        std::printf("error: --activation-cache-mb=%lld must be >= 0\n",
                    static_cast<long long>(activation_cache_mb));
        return 1;
      }
    } else if (std::strncmp(argv[i], "--save-model=", 13) == 0) {
      save_model_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--model=", 8) == 0) {
      model_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--reload") == 0) {
      reload = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--precision=int8") == 0) {
      int8 = true;
    } else if (std::strcmp(argv[i], "--precision=fp32") == 0) {
      int8 = false;
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoll(argv[++i]);
    } else {
      cache_dir = argv[i];
    }
  }

  // 1. Model: tokenizer always trained (cached); weights random unless
  //    --finetune is given.
  pretrain::ZooOptions zoo;
  zoo.cache_dir = cache_dir;
  zoo.vocab_size = 1000;
  zoo.corpus.num_documents = 2000;
  zoo.skip_pretraining = !finetune;
  zoo.pretrain.steps = 1200;
  zoo.pretrain.batch_size = 16;
  zoo.pretrain.data.max_seq_len = 32;
  zoo.pretrain.learning_rate = 1e-3f;
  auto bundle = pretrain::GetPretrained(models::Architecture::kRoberta, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  core::EntityMatcher matcher(std::move(bundle).value());
  matcher.set_eval_max_seq_len(48);

  // --model replaces training entirely: map the container's fp32 weights
  // into the matcher and, when the file carries int8 sections, attach the
  // packed weights zero-copy from the mapping (no calibration needed).
  bool model_supplied_int8 = false;
  if (!model_path.empty()) {
    auto info = quant::LoadModelFileMapped(&matcher, model_path);
    if (!info.ok()) {
      std::printf("error: --model=%s: %s\n", model_path.c_str(),
                  info.status().ToString().c_str());
      return 1;
    }
    model_supplied_int8 = info.value().has_int8;
    std::printf("mapped %s: %lld fp32 params%s\n", model_path.c_str(),
                static_cast<long long>(info.value().fp32_params),
                model_supplied_int8 ? " + packed int8 weights (zero-copy)"
                                    : "");
    if (finetune) {
      std::printf("note: --model supplies the weights; skipping --finetune\n");
      finetune = false;
    }
  }

  data::GeneratorOptions gen;
  gen.scale = 0.04;
  auto dataset = data::GenerateDataset(data::DatasetId::kWalmartAmazon, gen);
  // Tracing covers everything from here on: the fine-tuning epochs (when
  // --finetune is given) land in the same trace as the serving traffic, so
  // one file shows train.epoch phase spans next to serve.batch spans.
  if (!trace_path.empty()) obs::StartProfiling();
  if (finetune) {
    core::FineTuneOptions ft;
    ft.epochs = 3;
    ft.max_seq_len = 48;
    ft.learning_rate = 1e-3f;
    std::printf("Fine-tuning %s for %lld epochs...\n", matcher.arch_name(),
                static_cast<long long>(ft.epochs));
    matcher.FineTune(dataset, ft);
  }

  // 2. Optional post-training quantization, calibrated on the held-out
  //    validation slice (never part of fine-tuning). A --model container
  //    that already carries int8 sections makes this a no-op.
  if (model_supplied_int8) int8 = true;
  if (int8 && !model_supplied_int8) {
    quant::CalibrationData calib;
    const auto& held_out = dataset.valid;
    for (size_t i = 0; i < held_out.size() && i < 64; ++i) {
      calib.texts_a.push_back(dataset.SerializeA(held_out[i]));
      calib.texts_b.push_back(dataset.SerializeB(held_out[i]));
    }
    auto report = quant::QuantizeMatcher(&matcher, calib);
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("Quantized to int8: %lld linears + %lld fused FFN blocks "
                "(calibrated on %lld held-out pairs)\n",
                static_cast<long long>(report.value().num_linears),
                static_cast<long long>(report.value().num_ffns),
                static_cast<long long>(report.value().calibration_pairs));
  }

  if (!save_model_path.empty()) {
    if (Status s = quant::SaveModelFile(&matcher, save_model_path); !s.ok()) {
      std::printf("error: --save-model=%s: %s\n", save_model_path.c_str(),
                  s.ToString().c_str());
      return 1;
    }
    std::printf("saved EMXM1 container to %s%s\n", save_model_path.c_str(),
                int8 ? " (fp32 + packed int8)" : "");
  }

  // 3. Socket mode: expose the engine on a TCP port instead of simulating
  //    in-process traffic. With --model + --reload, a watcher hot-swaps
  //    the engine whenever the container file changes; each fresh matcher
  //    is rebuilt from the (cached) zoo bundle so the tokenizer is
  //    identical, then mapped from the new file.
  if (socket_mode) {
    auto make_matcher =
        [&]() -> Result<std::shared_ptr<core::EntityMatcher>> {
      auto b = pretrain::GetPretrained(models::Architecture::kRoberta, zoo);
      if (!b.ok()) return b.status();
      auto m = std::make_shared<core::EntityMatcher>(std::move(b).value());
      m->set_eval_max_seq_len(48);
      EMX_ASSIGN_OR_RETURN(const quant::ModelFileInfo info,
                           quant::LoadModelFileMapped(m.get(), model_path));
      if (int8 && !info.has_int8) {
        return Status::InvalidArgument(
            model_path + " lost its int8 sections; refusing to swap an "
                         "int8 engine onto an fp32-only container");
      }
      return m;
    };
    return ServeSocket(&matcher,
                       int8 ? serve::Precision::kInt8 : serve::Precision::kFp32,
                       static_cast<uint16_t>(port), serve_seconds, split_layer,
                       activation_cache_mb << 20, model_path, reload,
                       make_matcher);
  }

  // 4. A few interactive-style requests. With int8 enabled, show both
  //    precisions' probabilities for the same pair.
  struct Demo {
    const char* a;
    const char* b;
  };
  const Demo demos[] = {
      {"samsung zen sx440 phone , compact black with hd display",
       "samsung sx440 zen phone black 64 gb"},
      {"samsung zen sx440 phone , compact black with hd display",
       "canon prime zz910 camera with optical zoom"},
      {"logitech wireless mouse m185 grey", "logitech m185 mouse wireless"},
  };
  for (const Demo& d : demos) {
    double p_fp32;
    {
      nn::QuantModeGuard fp32_only(false);
      p_fp32 = matcher.MatchProbability(d.a, d.b);
    }
    if (int8) {
      const double p_int8 = matcher.MatchProbability(d.a, d.b);
      std::printf("Match('%s',\n      '%s')\n  -> %s  p_fp32=%.3f  "
                  "p_int8=%.3f\n",
                  d.a, d.b, p_fp32 >= 0.5 ? "MATCH" : "no match", p_fp32,
                  p_int8);
    } else {
      std::printf("Match('%s',\n      '%s')\n  -> %s  p=%.3f\n", d.a, d.b,
                  p_fp32 >= 0.5 ? "MATCH" : "no match", p_fp32);
    }
  }

  // 5. Simulated traffic through the engine(s), optionally traced.
  std::printf("\nServing %lld requests from %lld client threads...\n",
              static_cast<long long>(requests * clients),
              static_cast<long long>(clients));
  TrafficResult fp32 =
      RunTraffic(&matcher, serve::Precision::kFp32, dataset, clients, requests,
                 split_layer, activation_cache_mb << 20);
  if (!int8) {
    std::printf("\nmetrics: %s\n", fp32.metrics.ToJson().c_str());
    if (!trace_path.empty() &&
        !FinishTrace(trace_path, fp32.metrics.ToJson())) {
      return 1;
    }
    return 0;
  }

  TrafficResult q =
      RunTraffic(&matcher, serve::Precision::kInt8, dataset, clients, requests,
                 split_layer, activation_cache_mb << 20);
  std::printf("\n%-24s %12s %12s\n", "", "fp32", "int8");
  std::printf("%-24s %12.1f %12.1f\n", "pairs/sec", fp32.pairs_per_sec,
              q.pairs_per_sec);
  std::printf("%-24s %12.0f %12.0f\n", "p50 latency (us)",
              fp32.metrics.p50_latency_us, q.metrics.p50_latency_us);
  std::printf("%-24s %12.0f %12.0f\n", "p95 latency (us)",
              fp32.metrics.p95_latency_us, q.metrics.p95_latency_us);
  std::printf("%-24s %12.2f %12.2f\n", "mean batch size",
              fp32.metrics.mean_batch_size, q.metrics.mean_batch_size);
  std::printf("%-24s %12.2f %12.2f\n", "cache hit rate",
              fp32.metrics.cache_hit_rate, q.metrics.cache_hit_rate);
  std::printf("%-24s %12s\n", "speedup",
              (std::to_string(q.pairs_per_sec / fp32.pairs_per_sec) + "x")
                  .c_str());
  std::printf("\nfp32 metrics: %s\n", fp32.metrics.ToJson().c_str());
  std::printf("int8 metrics: %s\n", q.metrics.ToJson().c_str());
  if (!trace_path.empty() && !FinishTrace(trace_path, q.metrics.ToJson())) {
    return 1;
  }
  return 0;
}
