// Zero-shot vs. fine-tuned: the paper's third research question — how much
// task-specific training does a heavily pre-trained transformer need?
// Prints the F1 trajectory epoch by epoch, starting from the zero-shot
// (epoch 0) score, for one architecture on the tiny iTunes-Amazon dataset
// where the paper observed the "little data" effect (Figure 11).
//
//   ./zero_shot_vs_finetuned [cache_dir]

#include <cstdio>

#include "core/entity_matcher.h"
#include "data/generators.h"
#include "pretrain/model_zoo.h"

int main(int argc, char** argv) {
  using namespace emx;

  pretrain::ZooOptions zoo;
  // Shares the bench cache by default so examples reuse pre-trained models.
  zoo.cache_dir = argc > 1 ? argv[1] : "/tmp/emx_zoo_bench";
  zoo.vocab_size = 1000;
  zoo.corpus.num_documents = 2000;
  zoo.pretrain.steps = 1200;
  zoo.pretrain.batch_size = 16;
  zoo.pretrain.data.max_seq_len = 32;
  zoo.pretrain.learning_rate = 1e-3f;

  auto bundle = pretrain::GetPretrained(models::Architecture::kRoberta, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }

  // iTunes-Amazon at full size: 539 pairs, only 132 matches — the paper's
  // smallest dataset, where epoch-1 results are still unstable.
  data::GeneratorOptions gen;
  auto dataset = data::GenerateDataset(data::DatasetId::kItunesAmazon, gen);

  core::EntityMatcher matcher(std::move(bundle).value());
  core::FineTuneOptions ft;
  ft.epochs = 8;
  ft.max_seq_len = 56;
  ft.learning_rate = 1e-3f;

  std::printf("%s on %s — F1 after each fine-tuning epoch\n",
              matcher.arch_name(), dataset.name.c_str());
  std::printf("(epoch 0 = zero-shot, i.e. pre-trained model + untrained head)\n\n");
  auto series = matcher.FineTune(dataset, ft, /*eval_each_epoch=*/true);
  for (const auto& r : series) {
    std::printf("  epoch %2lld   F1 %5.1f   train-loss %.3f   %5.1fs\n",
                static_cast<long long>(r.epoch), r.test_f1 * 100,
                r.train_loss, r.seconds);
  }
  std::printf("\nThe fine-tuning effort is small: a handful of epochs on a "
              "dataset of a few hundred pairs.\n");
  return 0;
}
