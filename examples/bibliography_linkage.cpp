// Bibliography record linkage (DBLP vs. Google Scholar): the citation
// integration workload of the paper's evaluation, comparing the classical
// Magellan-style matcher against a fine-tuned transformer on the same dirty
// data — a miniature of the paper's Table 5.
//
//   ./bibliography_linkage [cache_dir]

#include <cstdio>

#include "baselines/magellan.h"
#include "core/entity_matcher.h"
#include "data/generators.h"
#include "pretrain/model_zoo.h"

int main(int argc, char** argv) {
  using namespace emx;

  data::GeneratorOptions gen;
  gen.scale = 0.02;  // ~574 of the 28,707 DBLP-Scholar pairs
  auto dataset = data::GenerateDataset(data::DatasetId::kDblpScholar, gen);
  std::printf("%s: %lld pairs, %lld matches, dirty schema {title, authors, "
              "venue, year}\n\n",
              dataset.name.c_str(),
              static_cast<long long>(dataset.TotalPairs()),
              static_cast<long long>(dataset.TotalMatches()));

  // Classical baseline: per-attribute similarity features + the best of
  // three classifiers chosen on the validation split.
  baselines::MagellanMatcher magellan;
  magellan.Fit(dataset);
  auto mg = magellan.EvaluateTest(dataset);
  std::printf("Magellan (%s): F1 %.1f  P %.1f  R %.1f\n",
              magellan.selected_classifier().c_str(), mg.f1 * 100,
              mg.precision * 100, mg.recall * 100);

  // Transformer matcher.
  pretrain::ZooOptions zoo;
  // Shares the bench cache by default so examples reuse pre-trained models.
  zoo.cache_dir = argc > 1 ? argv[1] : "/tmp/emx_zoo_bench";
  zoo.vocab_size = 1000;
  zoo.corpus.num_documents = 2000;
  zoo.pretrain.steps = 1200;
  zoo.pretrain.batch_size = 16;
  zoo.pretrain.data.max_seq_len = 32;
  zoo.pretrain.learning_rate = 1e-3f;
  auto bundle = pretrain::GetPretrained(models::Architecture::kDistilBert, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  core::EntityMatcher matcher(std::move(bundle).value());
  core::FineTuneOptions ft;
  ft.epochs = 5;
  ft.max_seq_len = 56;
  ft.learning_rate = 1e-3f;
  matcher.FineTune(dataset, ft);
  auto tf = matcher.Evaluate(dataset, dataset.test);
  std::printf("%-10s         F1 %.1f  P %.1f  R %.1f\n", matcher.arch_name(),
              tf.f1 * 100, tf.precision * 100, tf.recall * 100);

  // Show a few linked citations.
  std::printf("\nSample linked records:\n");
  int64_t shown = 0;
  for (const auto& pair : dataset.test) {
    if (shown >= 5 || pair.label != 1) continue;
    std::printf("  DBLP:    %s\n  Scholar: %s\n  matched: %s\n\n",
                dataset.SerializeA(pair).c_str(),
                dataset.SerializeB(pair).c_str(),
                matcher.Match(dataset.SerializeA(pair),
                              dataset.SerializeB(pair))
                    ? "yes"
                    : "no");
    ++shown;
  }
  return 0;
}
