// Quickstart: pre-train (or load the cached) RoBERTa-style transformer,
// fine-tune it briefly on an entity-matching dataset, and match two
// free-text product descriptions — the end-to-end pipeline of the paper in
// ~40 lines of client code.
//
//   ./quickstart [cache_dir]

#include <cstdio>
#include <string>

#include "core/entity_matcher.h"
#include "data/generators.h"
#include "pretrain/model_zoo.h"

int main(int argc, char** argv) {
  using namespace emx;

  // 1. Obtain a pre-trained transformer + tokenizer from the model zoo.
  //    The first run trains the WordPiece/BPE vocabulary and pre-trains the
  //    model on the synthetic corpus; later runs load the cached weights.
  pretrain::ZooOptions zoo;
  // Shares the bench cache by default so examples reuse pre-trained models.
  zoo.cache_dir = argc > 1 ? argv[1] : "/tmp/emx_zoo_bench";
  zoo.vocab_size = 1000;
  zoo.corpus.num_documents = 2000;
  zoo.pretrain.steps = 1200;
  zoo.pretrain.batch_size = 16;
  zoo.pretrain.data.max_seq_len = 32;
  zoo.pretrain.learning_rate = 1e-3f;

  std::printf("Loading pre-trained RoBERTa (first run pre-trains, ~minutes)...\n");
  auto bundle = pretrain::GetPretrained(models::Architecture::kRoberta, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }

  // 2. Fine-tune on an EM dataset (small slice of Walmart-Amazon dirty).
  data::GeneratorOptions gen;
  gen.scale = 0.04;
  auto dataset = data::GenerateDataset(data::DatasetId::kWalmartAmazon, gen);
  std::printf("Dataset %s: %lld pairs (%lld matches)\n", dataset.name.c_str(),
              static_cast<long long>(dataset.TotalPairs()),
              static_cast<long long>(dataset.TotalMatches()));

  core::EntityMatcher matcher(std::move(bundle).value());
  core::FineTuneOptions ft;
  ft.epochs = 5;
  ft.max_seq_len = 56;
  ft.learning_rate = 1e-3f;
  std::printf("Fine-tuning %s for %lld epochs...\n", matcher.arch_name(),
              static_cast<long long>(ft.epochs));
  auto records = matcher.FineTune(dataset, ft);
  auto scores = matcher.Evaluate(dataset, dataset.test);
  std::printf("Test F1 %.1f (precision %.1f, recall %.1f)\n",
              scores.f1 * 100, scores.precision * 100, scores.recall * 100);

  // 3. Match two free-text descriptions.
  const std::string a = "samsung zen sx440 phone , compact black with hd display";
  const std::string b = "samsung sx440 zen phone black 64 gb";
  const std::string c = "canon prime zz910 camera with optical zoom";
  std::printf("\nMatch('%s',\n      '%s') -> p=%.2f\n", a.c_str(), b.c_str(),
              matcher.MatchProbability(a, b));
  std::printf("Match('%s',\n      '%s') -> p=%.2f\n", a.c_str(), c.c_str(),
              matcher.MatchProbability(a, c));
  return 0;
}
