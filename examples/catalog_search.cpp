// catalog_search: 1-vs-millions entity matching with the retrieval tier.
//
// Builds a generated product catalog, indexes it with the sharded q-gram
// index, and answers queries with the two-stage retrieve → re-rank
// pipeline: the index narrows millions of records to a candidate handful,
// and the serving engine re-scores those candidates with the transformer.
// Prints each query's candidates with their retrieval scores and match
// probabilities, then the catalog.* metrics snapshot.
//
//   ./catalog_search [--records N] [--queries N] [--save=PATH]
//
// --save=PATH round-trips the catalog through its binary format before
// querying, demonstrating that persisted indexes answer identically.
//
// The backbone keeps its random init so the demo starts in seconds; the
// retrieval tier's ranking (which needs no training) is what to watch.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/entity_matcher.h"
#include "data/generators.h"
#include "pretrain/model_zoo.h"
#include "retrieval/catalog_matcher.h"
#include "serve/matcher_engine.h"

int main(int argc, char** argv) {
  using namespace emx;

  int64_t num_records = 50000;
  int64_t num_queries = 5;
  std::string save_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--records", 9) == 0 && i + 1 < argc) {
      num_records = std::atoll(argv[++i]);
    } else if (std::strncmp(argv[i], "--queries", 9) == 0 && i + 1 < argc) {
      num_queries = std::atoll(argv[++i]);
    } else if (std::strncmp(argv[i], "--save=", 7) == 0) {
      save_path = argv[i] + 7;
    }
  }

  std::printf("generating a %lld-record catalog...\n",
              static_cast<long long>(num_records));
  data::CatalogSpec spec;
  spec.num_records = num_records;
  spec.num_queries = num_queries;
  data::Catalog cat = data::GenerateCatalog(spec);

  pretrain::ZooOptions zoo;
  zoo.cache_dir = "/tmp/emx_zoo_catalog_search";
  zoo.vocab_size = 500;
  zoo.corpus.num_documents = 150;
  zoo.skip_pretraining = true;
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  core::EntityMatcher matcher(std::move(bundle).value());
  matcher.set_eval_max_seq_len(48);

  serve::EngineOptions eopts;
  eopts.max_seq_len = 48;
  serve::MatcherEngine engine(&matcher, eopts);

  retrieval::CatalogOptions copts;
  copts.retrieve_k = 50;
  copts.rerank_k = 8;
  copts.top_k = 3;
  retrieval::CatalogMatcher catalog(&engine, copts);
  std::printf("indexing (%lld shards, q=%lld)...\n",
              static_cast<long long>(copts.index.num_shards),
              static_cast<long long>(copts.index.qgram));
  catalog.AddBatch(cat.records);
  std::printf("indexed %lld records, %lld live features, %lld stop features\n",
              static_cast<long long>(catalog.index().size()),
              static_cast<long long>(catalog.index().num_features()),
              static_cast<long long>(catalog.index().num_stop_features()));

  std::unique_ptr<retrieval::CatalogMatcher> reloaded;
  retrieval::CatalogMatcher* serving = &catalog;
  if (!save_path.empty()) {
    if (Status s = catalog.Save(save_path); !s.ok()) {
      std::printf("error: %s\n", s.ToString().c_str());
      return 1;
    }
    auto loaded = retrieval::CatalogMatcher::Load(save_path, &engine, copts);
    if (!loaded.ok()) {
      std::printf("error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    reloaded = std::move(loaded).value();
    serving = reloaded.get();
    std::printf("round-tripped the catalog through %s\n", save_path.c_str());
  }

  for (size_t q = 0; q < cat.queries.size(); ++q) {
    std::printf("\nquery %zu: %s\n", q, cat.queries[q].c_str());
    auto matches = serving->FindMatches(cat.queries[q]);
    if (!matches.ok()) {
      std::printf("  error: %s\n", matches.status().ToString().c_str());
      continue;
    }
    for (const retrieval::CatalogMatch& m : matches.value()) {
      std::printf("  %s id %-8lld retrieval %6.2f  p(match) %.3f  %s\n",
                  m.id == cat.truth[q] ? "*" : " ",
                  static_cast<long long>(m.id), m.retrieval_score,
                  m.probability, m.text.substr(0, 60).c_str());
    }
  }

  std::printf("\ncatalog metrics: %s\n",
              serving->registry()->ToJson().c_str());
  return 0;
}
