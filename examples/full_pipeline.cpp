// The complete entity-matching pipeline of Section 1-2 of the paper:
//
//   1. two heterogeneous sources (generated product catalogs),
//   2. blocking — an inverted-token index proposes candidate pairs instead
//      of scoring the full cross product,
//   3. matching — the classical Magellan-style matcher classifies the
//      candidates (swap in an EntityMatcher for the transformer version),
//   4. persistence — the labeled dataset round-trips through CSV so it can
//      be inspected or edited.
//
//   ./full_pipeline [output_dir]

#include <cstdio>
#include <string>

#include "baselines/magellan.h"
#include "data/blocking.h"
#include "data/dataset_io.h"
#include "data/generators.h"

int main(int argc, char** argv) {
  using namespace emx;

  // 1. Source data: a Walmart-Amazon style pair workload.
  data::GeneratorOptions gen;
  gen.scale = 0.05;
  auto dataset = data::GenerateDataset(data::DatasetId::kWalmartAmazon, gen);
  std::printf("Sources: %lld labeled candidate pairs (%lld true matches), "
              "schema {%s}\n",
              static_cast<long long>(dataset.TotalPairs()),
              static_cast<long long>(dataset.TotalMatches()),
              dataset.schema.attributes.size() == 5 ? "title, category, "
                                                      "brand, modelno, price"
                                                    : "?");

  // 2. Blocking: index the right side of the test matches, query with the
  //    left side, and measure recall + cross-product reduction.
  std::vector<data::Record> lefts, rights;
  for (const auto& p : dataset.test) {
    if (p.label == 1) {
      lefts.push_back(p.a);
      rights.push_back(p.b);
    }
  }
  data::BlockerOptions bopts;
  bopts.min_shared_tokens = 2;
  bopts.max_candidates_per_record = 10;
  data::TokenBlocker blocker(bopts);
  blocker.IndexRight(dataset.schema, rights);
  auto candidates = blocker.Candidates(dataset.schema, lefts);
  int64_t recalled = 0;
  for (const auto& [l, r] : candidates) {
    if (l == r) ++recalled;
  }
  std::printf("Blocking: %zu candidates from a %zu x %zu cross product "
              "(reduction ratio %.3f, survived %.3f), match recall %.0f%%\n",
              candidates.size(), lefts.size(), rights.size(),
              data::TokenBlocker::ReductionRatio(
                  static_cast<int64_t>(candidates.size()),
                  static_cast<int64_t>(lefts.size()),
                  static_cast<int64_t>(rights.size())),
              data::TokenBlocker::SurvivedFraction(
                  static_cast<int64_t>(candidates.size()),
                  static_cast<int64_t>(lefts.size()),
                  static_cast<int64_t>(rights.size())),
              lefts.empty() ? 0.0
                            : 100.0 * static_cast<double>(recalled) /
                                  static_cast<double>(lefts.size()));

  // 3. Matching on the labeled pairs.
  baselines::MagellanMatcher matcher;
  matcher.Fit(dataset);
  auto scores = matcher.EvaluateTest(dataset);
  std::printf("Matching (Magellan, %s): F1 %.1f  P %.1f  R %.1f\n",
              matcher.selected_classifier().c_str(), scores.f1 * 100,
              scores.precision * 100, scores.recall * 100);

  // 4. Persist the dataset for inspection / editing / re-loading.
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/emx_pipeline_dataset";
  if (auto st = data::SaveDataset(dataset, dir); !st.ok()) {
    std::printf("save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto reloaded = data::LoadDataset(dir);
  std::printf("Persistence: dataset saved to %s and reloaded (%s, %lld "
              "pairs)\n",
              dir.c_str(), reloaded.ok() ? "ok" : "FAILED",
              reloaded.ok()
                  ? static_cast<long long>(reloaded.value().TotalPairs())
                  : 0LL);
  return 0;
}
