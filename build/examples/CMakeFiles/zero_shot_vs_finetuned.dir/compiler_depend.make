# Empty compiler generated dependencies file for zero_shot_vs_finetuned.
# This may be replaced when dependencies are built.
