file(REMOVE_RECURSE
  "CMakeFiles/zero_shot_vs_finetuned.dir/zero_shot_vs_finetuned.cpp.o"
  "CMakeFiles/zero_shot_vs_finetuned.dir/zero_shot_vs_finetuned.cpp.o.d"
  "zero_shot_vs_finetuned"
  "zero_shot_vs_finetuned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_shot_vs_finetuned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
