# Empty compiler generated dependencies file for bibliography_linkage.
# This may be replaced when dependencies are built.
