file(REMOVE_RECURSE
  "CMakeFiles/bibliography_linkage.dir/bibliography_linkage.cpp.o"
  "CMakeFiles/bibliography_linkage.dir/bibliography_linkage.cpp.o.d"
  "bibliography_linkage"
  "bibliography_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
