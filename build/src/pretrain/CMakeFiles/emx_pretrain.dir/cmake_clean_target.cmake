file(REMOVE_RECURSE
  "libemx_pretrain.a"
)
