# Empty compiler generated dependencies file for emx_pretrain.
# This may be replaced when dependencies are built.
