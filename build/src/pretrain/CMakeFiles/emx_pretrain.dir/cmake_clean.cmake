file(REMOVE_RECURSE
  "CMakeFiles/emx_pretrain.dir/corpus.cc.o"
  "CMakeFiles/emx_pretrain.dir/corpus.cc.o.d"
  "CMakeFiles/emx_pretrain.dir/lm_data.cc.o"
  "CMakeFiles/emx_pretrain.dir/lm_data.cc.o.d"
  "CMakeFiles/emx_pretrain.dir/model_zoo.cc.o"
  "CMakeFiles/emx_pretrain.dir/model_zoo.cc.o.d"
  "CMakeFiles/emx_pretrain.dir/pretrainer.cc.o"
  "CMakeFiles/emx_pretrain.dir/pretrainer.cc.o.d"
  "libemx_pretrain.a"
  "libemx_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
