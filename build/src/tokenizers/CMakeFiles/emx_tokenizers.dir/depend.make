# Empty dependencies file for emx_tokenizers.
# This may be replaced when dependencies are built.
