file(REMOVE_RECURSE
  "CMakeFiles/emx_tokenizers.dir/byte_bpe.cc.o"
  "CMakeFiles/emx_tokenizers.dir/byte_bpe.cc.o.d"
  "CMakeFiles/emx_tokenizers.dir/tokenizer.cc.o"
  "CMakeFiles/emx_tokenizers.dir/tokenizer.cc.o.d"
  "CMakeFiles/emx_tokenizers.dir/unigram.cc.o"
  "CMakeFiles/emx_tokenizers.dir/unigram.cc.o.d"
  "CMakeFiles/emx_tokenizers.dir/vocab.cc.o"
  "CMakeFiles/emx_tokenizers.dir/vocab.cc.o.d"
  "CMakeFiles/emx_tokenizers.dir/wordpiece.cc.o"
  "CMakeFiles/emx_tokenizers.dir/wordpiece.cc.o.d"
  "libemx_tokenizers.a"
  "libemx_tokenizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_tokenizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
