
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokenizers/byte_bpe.cc" "src/tokenizers/CMakeFiles/emx_tokenizers.dir/byte_bpe.cc.o" "gcc" "src/tokenizers/CMakeFiles/emx_tokenizers.dir/byte_bpe.cc.o.d"
  "/root/repo/src/tokenizers/tokenizer.cc" "src/tokenizers/CMakeFiles/emx_tokenizers.dir/tokenizer.cc.o" "gcc" "src/tokenizers/CMakeFiles/emx_tokenizers.dir/tokenizer.cc.o.d"
  "/root/repo/src/tokenizers/unigram.cc" "src/tokenizers/CMakeFiles/emx_tokenizers.dir/unigram.cc.o" "gcc" "src/tokenizers/CMakeFiles/emx_tokenizers.dir/unigram.cc.o.d"
  "/root/repo/src/tokenizers/vocab.cc" "src/tokenizers/CMakeFiles/emx_tokenizers.dir/vocab.cc.o" "gcc" "src/tokenizers/CMakeFiles/emx_tokenizers.dir/vocab.cc.o.d"
  "/root/repo/src/tokenizers/wordpiece.cc" "src/tokenizers/CMakeFiles/emx_tokenizers.dir/wordpiece.cc.o" "gcc" "src/tokenizers/CMakeFiles/emx_tokenizers.dir/wordpiece.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
