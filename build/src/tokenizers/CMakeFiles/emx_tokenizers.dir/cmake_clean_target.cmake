file(REMOVE_RECURSE
  "libemx_tokenizers.a"
)
