# Empty compiler generated dependencies file for emx_nn.
# This may be replaced when dependencies are built.
