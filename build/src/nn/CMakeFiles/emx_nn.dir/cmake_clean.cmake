file(REMOVE_RECURSE
  "CMakeFiles/emx_nn.dir/attention.cc.o"
  "CMakeFiles/emx_nn.dir/attention.cc.o.d"
  "CMakeFiles/emx_nn.dir/layers.cc.o"
  "CMakeFiles/emx_nn.dir/layers.cc.o.d"
  "CMakeFiles/emx_nn.dir/module.cc.o"
  "CMakeFiles/emx_nn.dir/module.cc.o.d"
  "CMakeFiles/emx_nn.dir/optimizer.cc.o"
  "CMakeFiles/emx_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/emx_nn.dir/rnn.cc.o"
  "CMakeFiles/emx_nn.dir/rnn.cc.o.d"
  "libemx_nn.a"
  "libemx_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
