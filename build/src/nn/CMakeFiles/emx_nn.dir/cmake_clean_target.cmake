file(REMOVE_RECURSE
  "libemx_nn.a"
)
