# Empty compiler generated dependencies file for emx_models.
# This may be replaced when dependencies are built.
