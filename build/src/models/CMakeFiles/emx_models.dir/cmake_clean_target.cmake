file(REMOVE_RECURSE
  "libemx_models.a"
)
