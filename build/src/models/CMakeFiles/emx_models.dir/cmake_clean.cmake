file(REMOVE_RECURSE
  "CMakeFiles/emx_models.dir/classifier.cc.o"
  "CMakeFiles/emx_models.dir/classifier.cc.o.d"
  "CMakeFiles/emx_models.dir/config.cc.o"
  "CMakeFiles/emx_models.dir/config.cc.o.d"
  "CMakeFiles/emx_models.dir/encoder.cc.o"
  "CMakeFiles/emx_models.dir/encoder.cc.o.d"
  "CMakeFiles/emx_models.dir/transformer.cc.o"
  "CMakeFiles/emx_models.dir/transformer.cc.o.d"
  "CMakeFiles/emx_models.dir/xlnet.cc.o"
  "CMakeFiles/emx_models.dir/xlnet.cc.o.d"
  "libemx_models.a"
  "libemx_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
