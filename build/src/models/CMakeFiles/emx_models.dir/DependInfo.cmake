
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/classifier.cc" "src/models/CMakeFiles/emx_models.dir/classifier.cc.o" "gcc" "src/models/CMakeFiles/emx_models.dir/classifier.cc.o.d"
  "/root/repo/src/models/config.cc" "src/models/CMakeFiles/emx_models.dir/config.cc.o" "gcc" "src/models/CMakeFiles/emx_models.dir/config.cc.o.d"
  "/root/repo/src/models/encoder.cc" "src/models/CMakeFiles/emx_models.dir/encoder.cc.o" "gcc" "src/models/CMakeFiles/emx_models.dir/encoder.cc.o.d"
  "/root/repo/src/models/transformer.cc" "src/models/CMakeFiles/emx_models.dir/transformer.cc.o" "gcc" "src/models/CMakeFiles/emx_models.dir/transformer.cc.o.d"
  "/root/repo/src/models/xlnet.cc" "src/models/CMakeFiles/emx_models.dir/xlnet.cc.o" "gcc" "src/models/CMakeFiles/emx_models.dir/xlnet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/emx_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/emx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
