file(REMOVE_RECURSE
  "libemx_eval.a"
)
