file(REMOVE_RECURSE
  "CMakeFiles/emx_eval.dir/metrics.cc.o"
  "CMakeFiles/emx_eval.dir/metrics.cc.o.d"
  "libemx_eval.a"
  "libemx_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
