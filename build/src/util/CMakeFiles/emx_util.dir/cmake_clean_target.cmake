file(REMOVE_RECURSE
  "libemx_util.a"
)
