# Empty dependencies file for emx_util.
# This may be replaced when dependencies are built.
