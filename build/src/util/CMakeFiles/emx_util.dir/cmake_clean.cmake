file(REMOVE_RECURSE
  "CMakeFiles/emx_util.dir/csv.cc.o"
  "CMakeFiles/emx_util.dir/csv.cc.o.d"
  "CMakeFiles/emx_util.dir/logging.cc.o"
  "CMakeFiles/emx_util.dir/logging.cc.o.d"
  "CMakeFiles/emx_util.dir/rng.cc.o"
  "CMakeFiles/emx_util.dir/rng.cc.o.d"
  "CMakeFiles/emx_util.dir/status.cc.o"
  "CMakeFiles/emx_util.dir/status.cc.o.d"
  "CMakeFiles/emx_util.dir/string_util.cc.o"
  "CMakeFiles/emx_util.dir/string_util.cc.o.d"
  "CMakeFiles/emx_util.dir/thread_pool.cc.o"
  "CMakeFiles/emx_util.dir/thread_pool.cc.o.d"
  "CMakeFiles/emx_util.dir/timer.cc.o"
  "CMakeFiles/emx_util.dir/timer.cc.o.d"
  "libemx_util.a"
  "libemx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
