file(REMOVE_RECURSE
  "CMakeFiles/emx_core.dir/entity_matcher.cc.o"
  "CMakeFiles/emx_core.dir/entity_matcher.cc.o.d"
  "CMakeFiles/emx_core.dir/experiment.cc.o"
  "CMakeFiles/emx_core.dir/experiment.cc.o.d"
  "libemx_core.a"
  "libemx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
