file(REMOVE_RECURSE
  "libemx_tensor.a"
)
