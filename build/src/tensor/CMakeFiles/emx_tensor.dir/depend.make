# Empty dependencies file for emx_tensor.
# This may be replaced when dependencies are built.
