file(REMOVE_RECURSE
  "CMakeFiles/emx_tensor.dir/autograd_ops.cc.o"
  "CMakeFiles/emx_tensor.dir/autograd_ops.cc.o.d"
  "CMakeFiles/emx_tensor.dir/tensor.cc.o"
  "CMakeFiles/emx_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/emx_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/emx_tensor.dir/tensor_ops.cc.o.d"
  "CMakeFiles/emx_tensor.dir/variable.cc.o"
  "CMakeFiles/emx_tensor.dir/variable.cc.o.d"
  "libemx_tensor.a"
  "libemx_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
