
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/blocking.cc" "src/data/CMakeFiles/emx_data.dir/blocking.cc.o" "gcc" "src/data/CMakeFiles/emx_data.dir/blocking.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/data/CMakeFiles/emx_data.dir/dataset_io.cc.o" "gcc" "src/data/CMakeFiles/emx_data.dir/dataset_io.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/data/CMakeFiles/emx_data.dir/generators.cc.o" "gcc" "src/data/CMakeFiles/emx_data.dir/generators.cc.o.d"
  "/root/repo/src/data/noise.cc" "src/data/CMakeFiles/emx_data.dir/noise.cc.o" "gcc" "src/data/CMakeFiles/emx_data.dir/noise.cc.o.d"
  "/root/repo/src/data/pools.cc" "src/data/CMakeFiles/emx_data.dir/pools.cc.o" "gcc" "src/data/CMakeFiles/emx_data.dir/pools.cc.o.d"
  "/root/repo/src/data/record.cc" "src/data/CMakeFiles/emx_data.dir/record.cc.o" "gcc" "src/data/CMakeFiles/emx_data.dir/record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
