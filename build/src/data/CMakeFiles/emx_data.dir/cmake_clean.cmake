file(REMOVE_RECURSE
  "CMakeFiles/emx_data.dir/blocking.cc.o"
  "CMakeFiles/emx_data.dir/blocking.cc.o.d"
  "CMakeFiles/emx_data.dir/dataset_io.cc.o"
  "CMakeFiles/emx_data.dir/dataset_io.cc.o.d"
  "CMakeFiles/emx_data.dir/generators.cc.o"
  "CMakeFiles/emx_data.dir/generators.cc.o.d"
  "CMakeFiles/emx_data.dir/noise.cc.o"
  "CMakeFiles/emx_data.dir/noise.cc.o.d"
  "CMakeFiles/emx_data.dir/pools.cc.o"
  "CMakeFiles/emx_data.dir/pools.cc.o.d"
  "CMakeFiles/emx_data.dir/record.cc.o"
  "CMakeFiles/emx_data.dir/record.cc.o.d"
  "libemx_data.a"
  "libemx_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
