file(REMOVE_RECURSE
  "libemx_data.a"
)
