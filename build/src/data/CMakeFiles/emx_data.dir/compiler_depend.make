# Empty compiler generated dependencies file for emx_data.
# This may be replaced when dependencies are built.
