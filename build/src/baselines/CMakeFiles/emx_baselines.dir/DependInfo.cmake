
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/classical_ml.cc" "src/baselines/CMakeFiles/emx_baselines.dir/classical_ml.cc.o" "gcc" "src/baselines/CMakeFiles/emx_baselines.dir/classical_ml.cc.o.d"
  "/root/repo/src/baselines/deepmatcher.cc" "src/baselines/CMakeFiles/emx_baselines.dir/deepmatcher.cc.o" "gcc" "src/baselines/CMakeFiles/emx_baselines.dir/deepmatcher.cc.o.d"
  "/root/repo/src/baselines/magellan.cc" "src/baselines/CMakeFiles/emx_baselines.dir/magellan.cc.o" "gcc" "src/baselines/CMakeFiles/emx_baselines.dir/magellan.cc.o.d"
  "/root/repo/src/baselines/similarity.cc" "src/baselines/CMakeFiles/emx_baselines.dir/similarity.cc.o" "gcc" "src/baselines/CMakeFiles/emx_baselines.dir/similarity.cc.o.d"
  "/root/repo/src/baselines/word2vec.cc" "src/baselines/CMakeFiles/emx_baselines.dir/word2vec.cc.o" "gcc" "src/baselines/CMakeFiles/emx_baselines.dir/word2vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/emx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/emx_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/emx_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/emx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
