# Empty compiler generated dependencies file for emx_baselines.
# This may be replaced when dependencies are built.
