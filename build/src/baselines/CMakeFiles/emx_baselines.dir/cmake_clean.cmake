file(REMOVE_RECURSE
  "CMakeFiles/emx_baselines.dir/classical_ml.cc.o"
  "CMakeFiles/emx_baselines.dir/classical_ml.cc.o.d"
  "CMakeFiles/emx_baselines.dir/deepmatcher.cc.o"
  "CMakeFiles/emx_baselines.dir/deepmatcher.cc.o.d"
  "CMakeFiles/emx_baselines.dir/magellan.cc.o"
  "CMakeFiles/emx_baselines.dir/magellan.cc.o.d"
  "CMakeFiles/emx_baselines.dir/similarity.cc.o"
  "CMakeFiles/emx_baselines.dir/similarity.cc.o.d"
  "CMakeFiles/emx_baselines.dir/word2vec.cc.o"
  "CMakeFiles/emx_baselines.dir/word2vec.cc.o.d"
  "libemx_baselines.a"
  "libemx_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emx_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
