file(REMOVE_RECURSE
  "libemx_baselines.a"
)
