file(REMOVE_RECURSE
  "CMakeFiles/tokenizers_test.dir/tokenizers_test.cc.o"
  "CMakeFiles/tokenizers_test.dir/tokenizers_test.cc.o.d"
  "tokenizers_test"
  "tokenizers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tokenizers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
