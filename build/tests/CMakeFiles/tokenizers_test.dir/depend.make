# Empty dependencies file for tokenizers_test.
# This may be replaced when dependencies are built.
