# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tensor_test "/root/repo/build/tests/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(autograd_test "/root/repo/build/tests/autograd_test")
set_tests_properties(autograd_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build/tests/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tokenizers_test "/root/repo/build/tests/tokenizers_test")
set_tests_properties(tokenizers_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(models_test "/root/repo/build/tests/models_test")
set_tests_properties(models_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(data_test "/root/repo/build/tests/data_test")
set_tests_properties(data_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pretrain_test "/root/repo/build/tests/pretrain_test")
set_tests_properties(pretrain_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(data_io_test "/root/repo/build/tests/data_io_test")
set_tests_properties(data_io_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;emx_add_test;/root/repo/tests/CMakeLists.txt;0;")
