# Empty compiler generated dependencies file for bench_fig13_dblp_acm.
# This may be replaced when dependencies are built.
