file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_dblp_acm.dir/bench_fig13_dblp_acm.cc.o"
  "CMakeFiles/bench_fig13_dblp_acm.dir/bench_fig13_dblp_acm.cc.o.d"
  "bench_fig13_dblp_acm"
  "bench_fig13_dblp_acm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_dblp_acm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
