file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_abtbuy.dir/bench_fig10_abtbuy.cc.o"
  "CMakeFiles/bench_fig10_abtbuy.dir/bench_fig10_abtbuy.cc.o.d"
  "bench_fig10_abtbuy"
  "bench_fig10_abtbuy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_abtbuy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
