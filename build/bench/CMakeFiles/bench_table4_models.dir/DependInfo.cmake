
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_models.cc" "bench/CMakeFiles/bench_table4_models.dir/bench_table4_models.cc.o" "gcc" "bench/CMakeFiles/bench_table4_models.dir/bench_table4_models.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/emx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/emx_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/pretrain/CMakeFiles/emx_pretrain.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/emx_models.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizers/CMakeFiles/emx_tokenizers.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/emx_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/emx_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/emx_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/emx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
