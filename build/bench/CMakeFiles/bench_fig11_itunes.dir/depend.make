# Empty dependencies file for bench_fig11_itunes.
# This may be replaced when dependencies are built.
