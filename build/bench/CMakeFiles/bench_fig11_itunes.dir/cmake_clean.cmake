file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_itunes.dir/bench_fig11_itunes.cc.o"
  "CMakeFiles/bench_fig11_itunes.dir/bench_fig11_itunes.cc.o.d"
  "bench_fig11_itunes"
  "bench_fig11_itunes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_itunes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
