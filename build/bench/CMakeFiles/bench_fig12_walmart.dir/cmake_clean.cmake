file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_walmart.dir/bench_fig12_walmart.cc.o"
  "CMakeFiles/bench_fig12_walmart.dir/bench_fig12_walmart.cc.o.d"
  "bench_fig12_walmart"
  "bench_fig12_walmart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_walmart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
