file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_dblp_scholar.dir/bench_fig14_dblp_scholar.cc.o"
  "CMakeFiles/bench_fig14_dblp_scholar.dir/bench_fig14_dblp_scholar.cc.o.d"
  "bench_fig14_dblp_scholar"
  "bench_fig14_dblp_scholar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_dblp_scholar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
