# Empty dependencies file for bench_fig14_dblp_scholar.
# This may be replaced when dependencies are built.
