// Reproduces Table 5 of the paper: F1 of the best transformer (T_BEST)
// against the Magellan (MG) and DeepMatcher (DeepM) baselines on the five
// datasets, plus the delta. All three systems run on identical dataset
// instances; the transformer column is the best of the four architectures'
// peak F1.
//
// Paper reference (F1 %):
//   Abt-Buy               33.0   55.0   90.9   +35.9
//   iTunes-Amazon(dirty)  46.8   79.4   94.2   +14.8
//   Walmart-Amazon(dirty) 37.4   53.8   85.5   +31.7
//   DBLP-ACM(dirty)       91.9   98.1   98.9   + 0.8
//   DBLP-Scholar(dirty)   82.5   93.8   95.6   + 1.8

#include <algorithm>
#include <cstdio>

#include "baselines/deepmatcher.h"
#include "baselines/magellan.h"
#include "baselines/word2vec.h"
#include "bench/bench_common.h"
#include "core/experiment.h"
#include "data/generators.h"

namespace {

using namespace emx;

/// Word2vec corpus for DeepMatcher: generic domain text (the stand-in for
/// the fastText vectors the original loads).
baselines::Word2Vec TrainWordVectors() {
  pretrain::CorpusOptions copts;
  copts.num_documents = 2000;
  auto corpus = pretrain::FlattenCorpus(pretrain::GenerateCorpus(copts));
  baselines::Word2VecOptions wopts;
  wopts.dim = 32;
  wopts.epochs = 3;
  wopts.min_count = 2;
  return baselines::Word2Vec::Train(corpus, wopts);
}

}  // namespace

int main() {
  std::printf("Table 5: F1 of the best transformer vs Magellan (MG) and "
              "DeepMatcher (DeepM).\n\n");
  std::printf("%-24s %8s %8s %8s %8s   %s\n", "Dataset", "MG", "DeepM",
              "T_BEST", "dF1", "best arch");

  auto w2v = TrainWordVectors();

  struct PaperRow {
    double mg, deepm, tbest;
  };
  const PaperRow paper_rows[] = {{33.0, 55.0, 90.9},
                                 {46.8, 79.4, 94.2},
                                 {37.4, 53.8, 85.5},
                                 {91.9, 98.1, 98.9},
                                 {82.5, 93.8, 95.6}};

  int row_idx = 0;
  for (auto id : {data::DatasetId::kAbtBuy, data::DatasetId::kItunesAmazon,
                  data::DatasetId::kWalmartAmazon, data::DatasetId::kDblpAcm,
                  data::DatasetId::kDblpScholar}) {
    const auto& spec = data::SpecFor(id);
    data::GeneratorOptions gen;
    gen.scale = bench::DatasetScale(id);
    auto ds = data::GenerateDataset(id, gen);

    // Magellan.
    baselines::MagellanMatcher magellan;
    magellan.Fit(ds);
    const double mg = magellan.EvaluateTest(ds).f1 * 100;

    // DeepMatcher.
    baselines::DeepMatcherOptions dm_opts;
    dm_opts.hidden = 32;
    dm_opts.max_tokens = 28;
    dm_opts.epochs = 15;
    dm_opts.learning_rate = 2e-3f;
    dm_opts.trainable_embeddings = true;
    baselines::DeepMatcherModel deepm(w2v, dm_opts);
    deepm.Fit(ds);
    const double dm = deepm.EvaluateTest(ds).f1 * 100;

    // Transformers: best peak F1 across the four architectures.
    core::ExperimentOptions opts = bench::BenchExperiment(id);
    auto series = core::RunAllArchitectures(id, opts);
    double best = 0;
    const char* best_arch = "";
    for (const auto& s : series) {
      if (s.best_f1 * 100 > best) {
        best = s.best_f1 * 100;
        best_arch = models::ArchitectureName(s.arch);
      }
    }

    std::string name = spec.name;
    if (spec.dirty) name += "(dirty)";
    std::printf("%-24s %8.1f %8.1f %8.1f %8.1f   %s\n", name.c_str(), mg, dm,
                best, best - std::max(mg, dm), best_arch);
    std::printf("%-24s %8.1f %8.1f %8.1f %8.1f   (paper)\n", "",
                paper_rows[row_idx].mg, paper_rows[row_idx].deepm,
                paper_rows[row_idx].tbest,
                paper_rows[row_idx].tbest -
                    std::max(paper_rows[row_idx].mg, paper_rows[row_idx].deepm));
    std::fflush(stdout);
    ++row_idx;
  }
  std::printf("\nPaper shape to compare against: transformers lead by a wide "
              "margin on the three hard datasets\nand by a small margin on the "
              "two DBLP sets. See EXPERIMENTS.md for the measured status at\n"
              "this pre-training scale (EMX_PRETRAIN_STEPS raises it).\n");
  return 0;
}
