// fp32 vs int8 post-training quantization sweep over the five paper
// datasets. For each dataset the harness fine-tunes a BERT matcher, then
// measures both precisions on the same weights:
//
//   - F1 on the test split (the accuracy gate: |ΔF1| <= 0.5 points),
//   - batched grad-free throughput (MatchProbabilities, the bulk path),
//   - served latency percentiles through the MatcherEngine with
//     EngineOptions::precision = {fp32, int8} (p50/p95 via ServingMetrics).
//
// Results are printed and written to BENCH_quant.json. Environment knobs:
//
//   EMX_QUANT_EPOCHS   fine-tuning epochs per dataset       (default 5)
//   EMX_QUANT_CALIB    calibration pairs, <=0 = whole train (default 0)
//   EMX_QUANT_PAIRS    requests per engine run              (default 256)
//   EMX_QUANT_SCALE    extra multiplier on dataset scale    (default 2)
//   EMX_QUANT_PRETRAIN 1 = pre-train the backbone first     (default 0)
//   EMX_QUANT_ONLY     comma list of dataset-name substrings (default all)
//   EMX_QUANT_OBSERVER minmax | percentile                  (default minmax)
//   EMX_CACHE_DIR      tokenizer/zoo cache                  (default /tmp/emx_zoo_bench)
//
// Pre-training stays off by default: at this repo's miniature pre-training
// scale it does not improve fine-tuned F1 (see EXPERIMENTS.md
// "pre-training scale gate"), it only adds minutes. The quantization
// comparison itself is scale-independent — both precisions share the same
// fine-tuned weights, test split and batching config.

#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/entity_matcher.h"
#include "data/generators.h"
#include "nn/layers.h"
#include "quant/int8_gemm.h"
#include "quant/quantize_matcher.h"
#include "serve/matcher_engine.h"
#include "util/timer.h"

namespace emx {
namespace {

struct PrecisionStats {
  double f1 = 0;
  double batched_pairs_per_sec = 0;
  double engine_pairs_per_sec = 0;
  double p50_us = 0;
  double p95_us = 0;
};

struct DatasetRow {
  std::string name;
  PrecisionStats fp32;
  PrecisionStats int8;
  double delta_f1_points = 0;  // |F1_int8 - F1_fp32| * 100
  double mean_abs_dprob = 0;   // mean |p_int8 - p_fp32| over eval pairs
  double max_abs_dprob = 0;
  double speedup = 0;          // batched int8 / batched fp32
  int64_t num_linears = 0;
  int64_t num_ffns = 0;
};

std::vector<std::pair<std::string, std::string>> SerializePairs(
    const data::EmDataset& dataset, const std::vector<data::RecordPair>& pool,
    int64_t n) {
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const auto& p = pool[static_cast<size_t>(i) % pool.size()];
    pairs.emplace_back(dataset.SerializeA(p), dataset.SerializeB(p));
  }
  return pairs;
}

double BatchedPairsPerSec(
    core::EntityMatcher* matcher,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<std::string> as, bs;
  as.reserve(pairs.size());
  bs.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    as.push_back(a);
    bs.push_back(b);
  }
  // Best of 3: outside interference only ever slows a rep down, so the
  // fastest rep is the least-noisy estimate of each precision's throughput.
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    (void)matcher->MatchProbabilities(as, bs);
    best = std::max(best,
                    static_cast<double>(pairs.size()) / timer.ElapsedSeconds());
  }
  return best;
}

/// One engine run at a fixed batching config; only `precision` differs
/// between the fp32 and int8 rows, so the comparison is apples-to-apples.
void RunEngine(core::EntityMatcher* matcher, serve::Precision precision,
               const std::vector<std::pair<std::string, std::string>>& pairs,
               PrecisionStats* stats) {
  serve::EngineOptions opts;
  opts.precision = precision;
  opts.max_batch_size = 16;
  opts.max_wait_us = 2000;
  opts.max_seq_len = matcher->eval_max_seq_len();
  opts.queue_capacity = static_cast<int64_t>(pairs.size()) + 16;
  serve::MatcherEngine engine(matcher, opts);

  Timer timer;
  std::vector<std::future<serve::MatchResult>> futures;
  futures.reserve(pairs.size());
  for (const auto& [a, b] : pairs) futures.push_back(engine.Submit(a, b));
  for (auto& f : futures) (void)f.get();
  const double seconds = timer.ElapsedSeconds();

  serve::MetricsSnapshot m = engine.Metrics();
  stats->engine_pairs_per_sec = static_cast<double>(pairs.size()) / seconds;
  stats->p50_us = m.p50_latency_us;
  stats->p95_us = m.p95_latency_us;
}

DatasetRow RunDataset(data::DatasetId id, const pretrain::ZooOptions& zoo) {
  const auto& spec = data::SpecFor(id);
  DatasetRow row;
  row.name = spec.name;

  data::GeneratorOptions gen;
  gen.scale = bench::DatasetScale(id) * bench::EnvDouble("EMX_QUANT_SCALE", 2.0);
  data::EmDataset dataset = data::GenerateDataset(id, gen);

  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return row;
  }
  core::EntityMatcher matcher(std::move(bundle).value());
  // Evaluate/calibrate at the fine-tuning sequence length: a shorter eval
  // truncation than the model was tuned on shifts activation ranges and
  // pushes predictions toward the threshold.
  matcher.set_eval_max_seq_len(bench::DatasetSeqLen(id));

  core::FineTuneOptions ft = bench::BenchFineTune(id);
  ft.epochs = bench::EnvInt("EMX_QUANT_EPOCHS", 5);
  std::printf("%-16s fine-tuning (%lld train pairs, %lld epochs)...\n",
              spec.name, static_cast<long long>(dataset.train.size()),
              static_cast<long long>(ft.epochs));
  std::fflush(stdout);
  (void)matcher.FineTune(dataset, ft);

  const int64_t engine_pairs = bench::EnvInt("EMX_QUANT_PAIRS", 256);
  auto workload = SerializePairs(dataset, dataset.test, engine_pairs);

  // The F1 gate compares both precisions on every held-out pair —
  // valid + test. Neither split touches fine-tuning (and calibration reads
  // the train split), and at toy dataset scale the wider set halves how
  // far a single borderline pair can move F1.
  std::vector<data::RecordPair> eval_pairs = dataset.valid;
  eval_pairs.insert(eval_pairs.end(), dataset.test.begin(),
                    dataset.test.end());
  std::vector<std::string> eval_a, eval_b;
  eval_a.reserve(eval_pairs.size());
  eval_b.reserve(eval_pairs.size());
  for (const auto& p : eval_pairs) {
    eval_a.push_back(dataset.SerializeA(p));
    eval_b.push_back(dataset.SerializeB(p));
  }

  // ---- fp32 reference (QuantMode pinned off so later runs with backends
  // attached would take the same path; here none are attached yet).
  std::vector<double> probs_fp32;
  {
    nn::QuantModeGuard fp32_only(false);
    row.fp32.f1 = matcher.Evaluate(dataset, eval_pairs).f1;
    probs_fp32 = matcher.MatchProbabilities(eval_a, eval_b);
    row.fp32.batched_pairs_per_sec = BatchedPairsPerSec(&matcher, workload);
  }
  RunEngine(&matcher, serve::Precision::kFp32, workload, &row.fp32);

  // ---- quantize: calibrate on the train split. The whole split by
  // default — min/max observers must see the full activation range, and an
  // under-covered slice saturates the extremes the grid never observed.
  quant::CalibrationData calib;
  const int64_t calib_env = bench::EnvInt("EMX_QUANT_CALIB", 0);
  const int64_t calib_pairs =
      calib_env <= 0 ? static_cast<int64_t>(dataset.train.size())
                     : std::min<int64_t>(calib_env,
                                         static_cast<int64_t>(
                                             dataset.train.size()));
  for (const auto& [a, b] : SerializePairs(dataset, dataset.train,
                                           calib_pairs)) {
    calib.texts_a.push_back(a);
    calib.texts_b.push_back(b);
  }
  quant::QuantizeOptions qopts;
  if (bench::EnvString("EMX_QUANT_OBSERVER", "minmax") == "percentile") {
    qopts.observer = quant::ObserverKind::kPercentile;
  }
  auto report = quant::QuantizeMatcher(&matcher, calib, qopts);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return row;
  }
  row.num_linears = report.value().num_linears;
  row.num_ffns = report.value().num_ffns;

  // ---- int8 (QuantMode defaults on for grad-free forwards).
  row.int8.f1 = matcher.Evaluate(dataset, eval_pairs).f1;
  const std::vector<double> probs_int8 =
      matcher.MatchProbabilities(eval_a, eval_b);
  row.int8.batched_pairs_per_sec = BatchedPairsPerSec(&matcher, workload);
  RunEngine(&matcher, serve::Precision::kInt8, workload, &row.int8);

  // Threshold-independent fidelity: how far int8 moves P(match) itself.
  // F1 only changes when a pair crosses 0.5, so on a confidently-predicting
  // model ΔF1 can be 0 while this still reports the true quantization error.
  for (size_t i = 0; i < probs_fp32.size(); ++i) {
    const double d = std::fabs(probs_int8[i] - probs_fp32[i]);
    row.mean_abs_dprob += d;
    row.max_abs_dprob = std::max(row.max_abs_dprob, d);
  }
  if (!probs_fp32.empty()) {
    row.mean_abs_dprob /= static_cast<double>(probs_fp32.size());
  }

  row.delta_f1_points = std::fabs(row.int8.f1 - row.fp32.f1) * 100.0;
  row.speedup =
      row.int8.batched_pairs_per_sec / row.fp32.batched_pairs_per_sec;
  return row;
}

}  // namespace
}  // namespace emx

int main() {
  using namespace emx;

  pretrain::ZooOptions zoo = bench::BenchZoo();
  zoo.skip_pretraining = bench::EnvInt("EMX_QUANT_PRETRAIN", 0) == 0;

  const data::DatasetId ids[] = {
      data::DatasetId::kAbtBuy, data::DatasetId::kItunesAmazon,
      data::DatasetId::kWalmartAmazon, data::DatasetId::kDblpAcm,
      data::DatasetId::kDblpScholar};

  std::printf("bench_quant — int8 PTQ vs fp32, BERT matcher, VNNI kernel: %s\n\n",
              quant::HasVnniKernel() ? "yes" : "no (scalar)");

  // EMX_QUANT_ONLY="Abt,Scholar" restricts the sweep for quick iteration:
  // a dataset runs when any comma-separated token is a substring of its name.
  const std::string only = bench::EnvString("EMX_QUANT_ONLY", "");
  const auto selected = [&only](const char* name) {
    if (only.empty()) return true;
    const std::string n(name);
    for (size_t start = 0; start <= only.size();) {
      size_t comma = only.find(',', start);
      if (comma == std::string::npos) comma = only.size();
      const std::string tok = only.substr(start, comma - start);
      if (!tok.empty() && n.find(tok) != std::string::npos) return true;
      start = comma + 1;
    }
    return false;
  };
  std::vector<DatasetRow> rows;
  for (data::DatasetId id : ids) {
    if (selected(data::SpecFor(id).name)) rows.push_back(RunDataset(id, zoo));
  }

  std::printf("\n%-16s %9s %9s %7s %8s | %12s %12s %7s | %9s %9s\n",
              "dataset", "F1 fp32", "F1 int8", "dF1 pt", "mean|dp|",
              "fp32 pair/s", "int8 pair/s", "speedup", "int8 p50",
              "int8 p95");
  bool all_pass = true;
  for (const DatasetRow& r : rows) {
    std::printf(
        "%-16s %9.4f %9.4f %7.2f %8.4f | %12.1f %12.1f %6.2fx | %7.0fus "
        "%7.0fus\n",
        r.name.c_str(), r.fp32.f1, r.int8.f1, r.delta_f1_points,
        r.mean_abs_dprob, r.fp32.batched_pairs_per_sec,
        r.int8.batched_pairs_per_sec, r.speedup, r.int8.p50_us, r.int8.p95_us);
    if (r.delta_f1_points > 0.5 || r.speedup < 2.0) all_pass = false;
  }
  std::printf("\ngates: speedup >= 2.0x and |dF1| <= 0.5 points on every "
              "dataset — %s\n",
              all_pass ? "PASS" : "FAIL");

  FILE* out = std::fopen("BENCH_quant.json", "w");
  if (out == nullptr) {
    std::printf("error: cannot write BENCH_quant.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"vnni_kernel\": %s,\n",
               quant::HasVnniKernel() ? "true" : "false");
  std::fprintf(out, "  \"gates_pass\": %s,\n", all_pass ? "true" : "false");
  std::fprintf(out, "  \"datasets\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const DatasetRow& r = rows[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"f1_fp32\": %.4f, \"f1_int8\": %.4f, "
        "\"delta_f1_points\": %.3f, "
        "\"mean_abs_dprob\": %.5f, \"max_abs_dprob\": %.5f, "
        "\"fp32_pairs_per_sec\": %.1f, \"int8_pairs_per_sec\": %.1f, "
        "\"speedup\": %.3f, "
        "\"fp32_engine_pairs_per_sec\": %.1f, "
        "\"int8_engine_pairs_per_sec\": %.1f, "
        "\"fp32_p50_us\": %.1f, \"fp32_p95_us\": %.1f, "
        "\"int8_p50_us\": %.1f, \"int8_p95_us\": %.1f, "
        "\"num_linears\": %lld, \"num_ffns\": %lld}%s\n",
        r.name.c_str(), r.fp32.f1, r.int8.f1, r.delta_f1_points,
        r.mean_abs_dprob, r.max_abs_dprob,
        r.fp32.batched_pairs_per_sec, r.int8.batched_pairs_per_sec, r.speedup,
        r.fp32.engine_pairs_per_sec, r.int8.engine_pairs_per_sec,
        r.fp32.p50_us, r.fp32.p95_us, r.int8.p50_us, r.int8.p95_us,
        static_cast<long long>(r.num_linears),
        static_cast<long long>(r.num_ffns),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_quant.json\n");
  return all_pass ? 0 : 1;
}
