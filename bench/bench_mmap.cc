// Zero-copy mmap model container ("EMXM1") bench: cold start, exactness,
// hot-swap under traffic, and page sharing across processes.
//
// Four sections, four gates, written to BENCH_mmap.json:
//
//   1. Cold start — time from opening the checkpoint(s) to the first
//      int8 match probability. Parse-on-load (EMXP fp32 parse + EMXQ
//      int8 parse + repack + derived-state recompute) vs one EMXM1
//      container (fp32 memcpy from the mapping, packed int8 weights and
//      their col_sums served zero-copy from the mapped pages).
//      GATE: mmap open-to-first-inference >= 10x faster (>= 1.5x in
//      --smoke, where the model is small enough that the shared first
//      forward dominates both paths).
//
//   2. Exactness — the mapped matcher must be indistinguishable from the
//      parsed one: MatchProbability identical (==, not NEAR) on every
//      probe pair, fp32 AND int8, against both the original in-memory
//      matcher and the EMXP+EMXQ parse path.
//      GATE: zero mismatches.
//
//   3. Hot-swap hammer — client threads hammer a serving engine while a
//      swapper thread rotates between freshly mapped containers as fast
//      as it can. In-flight batches finish on the model they were
//      submitted against (each request pins its model snapshot).
//      GATE: zero failed requests, every swap accepted, and results span
//      multiple model versions.
//
//   4. Page sharing — two forked children map the same container and
//      touch every byte; /proc/self/smaps must show the mapping's pages
//      shared between them (Pss well under Rss), which is the property
//      that lets a shard fleet serve one model image from one physical
//      copy.
//      GATE: Pss <= 0.7x Rss for the container mapping in every child.
//
// Knobs:
//   EMX_MMAP_LAYERS   encoder depth   (default 4; smoke 2)
//   EMX_MMAP_HIDDEN   encoder width   (default 512; smoke 64)
//   EMX_MMAP_REPS     cold-start reps, median reported (default 3)
//   EMX_CACHE_DIR     tokenizer/zoo cache (default /tmp/emx_zoo_bench)

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/entity_matcher.h"
#include "io/emxm.h"
#include "models/encoder.h"
#include "nn/layers.h"
#include "pretrain/model_zoo.h"
#include "quant/model_file.h"
#include "quant/quantize_matcher.h"
#include "serve/matcher_engine.h"
#include "util/rng.h"
#include "util/timer.h"

namespace emx {
namespace {

constexpr int64_t kMaxSeqLen = 48;

/// Production-shaped vocabulary table. The zoo's synthetic tokenizer only
/// emits ~1000 distinct ids, but a deployed BERT-class matcher ships the
/// full WordPiece table — and those embedding rows are pure checkpoint
/// bytes (a lookup never touches more than T of them), which is exactly
/// the fp32 payload a mapped container pages in lazily instead of parsing.
constexpr int64_t kVocabRows = 30522;

/// Zoo-trained tokenizer under a manually sized random-weight encoder
/// (values do not matter for load timing; shapes and bytes do).
std::unique_ptr<core::EntityMatcher> BuildMatcher(
    const pretrain::ZooOptions& zoo, int64_t layers, int64_t hidden,
    uint64_t seed) {
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return nullptr;
  }
  models::TransformerConfig cfg = models::TransformerConfig::Scaled(
      models::Architecture::kBert, bundle.value().tokenizer->vocab_size());
  cfg.vocab_size = kVocabRows;
  cfg.num_layers = layers;
  cfg.hidden = hidden;
  cfg.num_heads = std::max<int64_t>(1, hidden / 32);
  cfg.intermediate = hidden * 4;
  cfg.max_seq_len = kMaxSeqLen;
  Rng rng(seed);
  pretrain::PretrainedBundle b;
  b.model = std::make_unique<models::EncoderModel>(cfg, &rng);
  b.tokenizer = std::move(bundle.value().tokenizer);
  auto matcher = std::make_unique<core::EntityMatcher>(std::move(b));
  matcher->set_eval_max_seq_len(kMaxSeqLen);
  return matcher;
}

std::vector<std::pair<std::string, std::string>> ProbePairs() {
  return {
      {"samsung zen sx440 phone compact black", "samsung sx440 zen phone"},
      {"logitech wireless mouse m185 grey", "logitech m185 mouse wireless"},
      {"canon prime zz910 camera optical zoom", "nikon d3500 dslr camera kit"},
      {"acer laptop zx1004 series 14 inch", "acer zx1004 laptop silver"},
  };
}

double MedianMs(std::vector<double> ms) {
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

// ---- Section 4: fork two mappers, read Pss/Rss from smaps ------------------

struct ShareSample {
  int64_t rss_kb = 0;
  int64_t pss_kb = 0;
};

/// Sums Rss/Pss over every smaps entry whose pathname contains `needle`.
ShareSample ReadSmaps(const std::string& needle) {
  ShareSample s;
  FILE* f = std::fopen("/proc/self/smaps", "r");
  if (f == nullptr) return s;
  char line[512];
  bool in_target = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // Mapping headers look like "addr-addr perms off dev inode  /path";
    // attribute lines ("Rss:  12 kB") never start with a hex range.
    unsigned long long lo = 0, hi = 0;
    if (std::sscanf(line, "%llx-%llx ", &lo, &hi) == 2) {
      in_target = std::strstr(line, needle.c_str()) != nullptr;
      continue;
    }
    if (!in_target) continue;
    long long kb = 0;
    if (std::sscanf(line, "Rss: %lld kB", &kb) == 1) s.rss_kb += kb;
    if (std::sscanf(line, "Pss: %lld kB", &kb) == 1) s.pss_kb += kb;
  }
  std::fclose(f);
  return s;
}

/// Forks `children` processes that each map `path`, touch every byte, and
/// report the mapping's Rss/Pss while all mappings are simultaneously
/// live. Returns one sample per child (empty on orchestration failure).
std::vector<ShareSample> MeasureSharing(const std::string& path,
                                        int children) {
  // ready: children -> parent ("mapped and touched"); go: parent ->
  // children ("everyone is up; measure now"); result: samples back.
  int ready[2], go[2], result[2];
  if (pipe(ready) != 0 || pipe(go) != 0 || pipe(result) != 0) return {};
  std::vector<pid_t> pids;
  for (int c = 0; c < children; ++c) {
    const pid_t pid = fork();
    if (pid < 0) return {};
    if (pid == 0) {
      auto reader = io::EmxmReader::Open(path);
      volatile uint64_t sum = 0;
      if (reader.ok()) {
        const io::MmapFile& map = reader.value()->mapping();
        const uint8_t* p = static_cast<const uint8_t*>(map.data());
        for (uint64_t i = 0; i < map.size(); i += 512) sum = sum + p[i];
      }
      (void)sum;
      char ch = reader.ok() ? '+' : '-';
      (void)!write(ready[1], &ch, 1);
      (void)!read(go[0], &ch, 1);
      ShareSample s = ReadSmaps(path);
      (void)!write(result[1], &s, sizeof(s));
      _exit(0);
    }
    pids.push_back(pid);
  }
  std::vector<ShareSample> samples;
  bool all_mapped = true;
  for (int c = 0; c < children; ++c) {
    char ch = '-';
    if (read(ready[0], &ch, 1) != 1 || ch != '+') all_mapped = false;
  }
  for (int c = 0; c < children; ++c) {
    char ch = 'g';
    (void)!write(go[1], &ch, 1);
  }
  for (int c = 0; c < children; ++c) {
    ShareSample s;
    if (read(result[0], &s, sizeof(s)) == sizeof(s)) samples.push_back(s);
  }
  for (pid_t pid : pids) waitpid(pid, nullptr, 0);
  for (int fd : {ready[0], ready[1], go[0], go[1], result[0], result[1]}) {
    close(fd);
  }
  if (!all_mapped) samples.clear();
  return samples;
}

}  // namespace
}  // namespace emx

int main(int argc, char** argv) {
  using namespace emx;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int64_t layers = bench::EnvInt("EMX_MMAP_LAYERS", smoke ? 2 : 4);
  const int64_t hidden = bench::EnvInt("EMX_MMAP_HIDDEN", smoke ? 64 : 512);
  const int64_t reps = bench::EnvInt("EMX_MMAP_REPS", 3);
  const double speedup_floor = smoke ? 1.5 : 10.0;

  pretrain::ZooOptions zoo = bench::BenchZoo();
  zoo.skip_pretraining = true;

  const std::string dir = "/tmp/emx_mmap_bench";
  ::mkdir(dir.c_str(), 0755);
  const std::string emxp = dir + "/model.emxp";
  const std::string emxq = dir + "/model.emxq";
  const std::string emxm = dir + "/model.emxm";

  std::printf("bench_mmap: %lld layers x %lld hidden%s\n",
              static_cast<long long>(layers), static_cast<long long>(hidden),
              smoke ? " (smoke)" : "");

  // ---- Reference matcher: quantize, then save all three formats ----------
  auto ref = BuildMatcher(zoo, layers, hidden, /*seed=*/17);
  if (ref == nullptr) return 1;
  {
    quant::CalibrationData calib;
    for (const auto& [a, b] : ProbePairs()) {
      calib.texts_a.push_back(a);
      calib.texts_b.push_back(b);
    }
    auto report = quant::QuantizeMatcher(ref.get(), calib);
    if (!report.ok()) {
      std::printf("error: quantize: %s\n",
                  report.status().ToString().c_str());
      return 1;
    }
  }
  for (const auto& [what, s] :
       {std::pair<const char*, Status>{"EMXP", ref->Save(emxp)},
        {"EMXQ", quant::SaveQuantized(ref.get(), emxq)},
        {"EMXM", quant::SaveModelFile(ref.get(), emxm)}}) {
    if (!s.ok()) {
      std::printf("error: save %s: %s\n", what, s.ToString().c_str());
      return 1;
    }
  }
  struct stat st;
  const int64_t emxm_bytes = ::stat(emxm.c_str(), &st) == 0 ? st.st_size : 0;

  // ---- Section 1: cold start ----------------------------------------------
  // The first inference is a minimal readiness ping — a short pair padded
  // to kPingSeqLen rather than the serving max_seq_len, because what this
  // section measures is time-to-servable, not steady-state latency. The
  // ping cost is identical on both paths (same tokens, same kernels), so
  // a longer probe would only dilute the load-time difference.
  const int64_t kPingSeqLen = 8;
  const std::pair<std::string, std::string> ping{"acer", "acer"};
  const auto probe = ProbePairs();
  std::vector<double> parse_ms_runs, mmap_ms_runs;
  for (int64_t r = 0; r < reps; ++r) {
    {
      auto m = BuildMatcher(zoo, layers, hidden, /*seed=*/29 + r);
      m->set_eval_max_seq_len(kPingSeqLen);
      Timer t;
      if (Status s = m->Load(emxp); !s.ok()) {
        std::printf("error: parse load: %s\n", s.ToString().c_str());
        return 1;
      }
      if (Status s = quant::LoadQuantized(m.get(), emxq); !s.ok()) {
        std::printf("error: parse quant load: %s\n", s.ToString().c_str());
        return 1;
      }
      (void)m->MatchProbability(ping.first, ping.second);
      parse_ms_runs.push_back(t.ElapsedSeconds() * 1000.0);
    }
    {
      auto m = BuildMatcher(zoo, layers, hidden, /*seed=*/53 + r);
      m->set_eval_max_seq_len(kPingSeqLen);
      Timer t;
      auto info = quant::LoadModelFileMapped(m.get(), emxm);
      if (!info.ok()) {
        std::printf("error: mapped load: %s\n",
                    info.status().ToString().c_str());
        return 1;
      }
      (void)m->MatchProbability(ping.first, ping.second);
      mmap_ms_runs.push_back(t.ElapsedSeconds() * 1000.0);
    }
  }
  const double parse_ms = MedianMs(parse_ms_runs);
  const double mmap_ms = MedianMs(mmap_ms_runs);
  const double speedup = mmap_ms > 0 ? parse_ms / mmap_ms : 0;
  std::printf("cold start (open -> first int8 inference, median of %lld):\n"
              "  parse EMXP+EMXQ  %8.2f ms\n"
              "  mmap  EMXM       %8.2f ms   (%.1fx, container %.1f MB)\n",
              static_cast<long long>(reps), parse_ms, mmap_ms, speedup,
              static_cast<double>(emxm_bytes) / (1024.0 * 1024.0));

  // ---- Section 2: exactness -----------------------------------------------
  auto parsed = BuildMatcher(zoo, layers, hidden, /*seed=*/71);
  auto mapped = BuildMatcher(zoo, layers, hidden, /*seed=*/73);
  if (parsed == nullptr || mapped == nullptr) return 1;
  if (Status s = parsed->Load(emxp); !s.ok()) return 1;
  if (Status s = quant::LoadQuantized(parsed.get(), emxq); !s.ok()) return 1;
  if (auto info = quant::LoadModelFileMapped(mapped.get(), emxm);
      !info.ok() || !info.value().has_int8) {
    std::printf("error: mapped load lost int8 state\n");
    return 1;
  }
  int64_t mismatches = 0;
  for (const auto& [a, b] : probe) {
    {
      nn::QuantModeGuard fp32_only(false);
      const double p_ref = ref->MatchProbability(a, b);
      if (parsed->MatchProbability(a, b) != p_ref) ++mismatches;
      if (mapped->MatchProbability(a, b) != p_ref) ++mismatches;
    }
    const double q_ref = ref->MatchProbability(a, b);
    if (parsed->MatchProbability(a, b) != q_ref) ++mismatches;
    if (mapped->MatchProbability(a, b) != q_ref) ++mismatches;
  }
  std::printf("exactness: %lld mismatches over %zu pairs x {fp32, int8} x "
              "{parsed, mapped}\n",
              static_cast<long long>(mismatches), probe.size());

  // ---- Section 3: hot-swap under traffic ----------------------------------
  // Three generations of the container, each mapped fresh per swap, so
  // every swap exercises the full open -> validate -> view -> attach path
  // while old mappings stay pinned by in-flight requests.
  std::atomic<int64_t> swap_count{0};
  int64_t swap_failures = 0;
  int64_t request_failures = 0;
  int64_t requests_sent = 0;
  int64_t versions_seen = 0;
  {
    serve::EngineOptions opts;
    opts.precision = serve::Precision::kInt8;
    opts.max_batch_size = 8;
    opts.max_wait_us = 500;
    opts.queue_capacity = 4096;
    opts.max_seq_len = kMaxSeqLen;
    serve::MatcherEngine engine(mapped.get(), opts);

    const int64_t kClients = 4;
    const int64_t kPerClient = smoke ? 60 : 200;
    // Traffic must actually overlap at least two swaps for the gate to
    // mean anything, so clients keep hammering past their quota until the
    // swapper has landed twice (with a generous cap so a wedged swapper
    // fails the gate instead of hanging the bench).
    const int64_t kPerClientCap = kPerClient * 50;
    std::atomic<bool> traffic_done{false};
    std::atomic<int64_t> failures{0};
    std::atomic<int64_t> sent{0};
    std::vector<uint64_t> max_version(static_cast<size_t>(kClients), 0);
    std::vector<std::thread> clients;
    for (int64_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int64_t i = 0;
             (i < kPerClient ||
              swap_count.load(std::memory_order_acquire) < 2) &&
             i < kPerClientCap;
             ++i) {
          const auto& p = probe[static_cast<size_t>(i) % probe.size()];
          serve::MatchResult r = engine.Submit(p.first, p.second).get();
          sent.fetch_add(1, std::memory_order_relaxed);
          if (!r.status.ok()) {
            failures.fetch_add(1);
          } else {
            max_version[static_cast<size_t>(c)] =
                std::max(max_version[static_cast<size_t>(c)],
                         r.model_version);
          }
        }
      });
    }
    std::thread swapper([&] {
      while (!traffic_done.load(std::memory_order_acquire)) {
        auto next = BuildMatcher(zoo, layers, hidden,
                                 /*seed=*/101 + swap_count.load());
        if (next == nullptr ||
            !quant::LoadModelFileMapped(next.get(), emxm).ok()) {
          ++swap_failures;
          continue;
        }
        std::shared_ptr<core::EntityMatcher> shared = std::move(next);
        if (Status s = engine.SwapModel(shared); !s.ok()) {
          ++swap_failures;
        } else {
          ++swap_count;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
    for (auto& c : clients) c.join();
    traffic_done.store(true, std::memory_order_release);
    swapper.join();
    request_failures = failures.load();
    requests_sent = sent.load();
    versions_seen = static_cast<int64_t>(
        *std::max_element(max_version.begin(), max_version.end()));
    serve::MetricsSnapshot m = engine.Metrics();
    std::printf("hot-swap: %lld swaps under %lld requests — %lld request "
                "failures, %lld swap failures, newest served version v%lld "
                "(engine at v%lld)\n",
                static_cast<long long>(swap_count.load()),
                static_cast<long long>(requests_sent),
                static_cast<long long>(request_failures),
                static_cast<long long>(swap_failures),
                static_cast<long long>(versions_seen),
                static_cast<long long>(m.model_version));
  }

  // ---- Section 4: cross-process page sharing ------------------------------
  std::vector<ShareSample> shares = MeasureSharing(emxm, /*children=*/2);
  double worst_share = 0;
  bool all_resident = !shares.empty();
  for (const ShareSample& s : shares) {
    if (s.rss_kb > 0) {
      worst_share = std::max(
          worst_share, static_cast<double>(s.pss_kb) /
                           static_cast<double>(s.rss_kb));
    } else {
      all_resident = false;  // smaps did not show the mapping at all
    }
    std::printf("page sharing: child mapping rss=%lld kB pss=%lld kB\n",
                static_cast<long long>(s.rss_kb),
                static_cast<long long>(s.pss_kb));
  }

  // ---- Gates --------------------------------------------------------------
  const bool cold_ok = speedup >= speedup_floor;
  const bool exact_ok = mismatches == 0;
  const bool swap_ok = request_failures == 0 && swap_failures == 0 &&
                       swap_count >= 2 && versions_seen >= 2;
  const bool share_ok = shares.size() == 2 && all_resident &&
                        worst_share <= 0.7;
  const bool gates_pass = cold_ok && exact_ok && swap_ok && share_ok;
  std::printf("gates: cold start >= %.1fx %s, bit-identical %s, "
              "zero-drop hot-swap %s, pages shared (pss/rss <= 0.7) %s — "
              "%s\n",
              speedup_floor, cold_ok ? "PASS" : "FAIL",
              exact_ok ? "PASS" : "FAIL", swap_ok ? "PASS" : "FAIL",
              share_ok ? "PASS" : "FAIL", gates_pass ? "PASS" : "FAIL");

  FILE* out = std::fopen("BENCH_mmap.json", "w");
  if (out == nullptr) {
    std::printf("error: cannot write BENCH_mmap.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"gates_pass\": %s,\n", gates_pass ? "true" : "false");
  std::fprintf(out, "  \"layers\": %lld,\n", static_cast<long long>(layers));
  std::fprintf(out, "  \"hidden\": %lld,\n", static_cast<long long>(hidden));
  std::fprintf(out, "  \"container_bytes\": %lld,\n",
               static_cast<long long>(emxm_bytes));
  std::fprintf(out, "  \"cold_start_parse_ms\": %.2f,\n", parse_ms);
  std::fprintf(out, "  \"cold_start_mmap_ms\": %.2f,\n", mmap_ms);
  std::fprintf(out, "  \"cold_start_speedup\": %.2f,\n", speedup);
  std::fprintf(out, "  \"cold_start_floor\": %.1f,\n", speedup_floor);
  std::fprintf(out, "  \"exactness_mismatches\": %lld,\n",
               static_cast<long long>(mismatches));
  std::fprintf(out, "  \"swaps\": %lld,\n", static_cast<long long>(swap_count));
  std::fprintf(out, "  \"swap_failures\": %lld,\n",
               static_cast<long long>(swap_failures));
  std::fprintf(out, "  \"request_failures\": %lld,\n",
               static_cast<long long>(request_failures));
  std::fprintf(out, "  \"newest_served_version\": %lld,\n",
               static_cast<long long>(versions_seen));
  std::fprintf(out, "  \"share_children\": %zu,\n", shares.size());
  std::fprintf(out, "  \"share_worst_pss_over_rss\": %.3f\n", worst_share);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_mmap.json\n");
  return gates_pass ? 0 : 1;
}
