// Reproduces Table 3 of the paper: the statistics of the five evaluation
// datasets (domain, size, number of matches, number of attributes). The
// generators materialize each dataset at full paper scale and the table is
// computed from the generated data, verifying the synthesis matches spec.

#include <cstdio>

#include "data/generators.h"
#include "data/record.h"

int main() {
  using namespace emx;
  std::printf("Table 3: Datasets used in our experiments.\n\n");
  std::printf("%-18s %-10s %10s %10s %8s\n", "Dataset", "Domain", "Size",
              "# Matches", "# Attr.");
  for (const auto& spec : data::AllDatasetSpecs()) {
    // Generate at full paper scale to verify the generator honors spec.
    data::GeneratorOptions gen;
    gen.scale = 1.0;
    auto ds = data::GenerateDataset(spec.id, gen);
    std::printf("%-18s %-10s %10lld %10lld %8lld\n", ds.name.c_str(),
                spec.domain, static_cast<long long>(ds.TotalPairs()),
                static_cast<long long>(ds.TotalMatches()),
                static_cast<long long>(ds.schema.size()));
  }
  std::printf(
      "\nPaper reference: 9575/1028/3, 539/132/8, 10242/962/5, 12363/2220/4, "
      "28707/5347/4.\n");
  std::printf("Datasets are synthetic stand-ins (see DESIGN.md) with the "
              "paper's exact statistics;\nthe four structured sets carry the "
              "dirty transform (p=0.5 value moved to title).\n");
  return 0;
}
