// Split-encoder prefix cache: effective 1-vs-N re-rank throughput and the
// accuracy ladder for emx::serve's candidate-side activation caching.
//
// Three sections, three gates:
//
//   1. Throughput — a deep encoder (8 layers by default; weights random,
//      which QPS does not care about) re-ranks pinned queries against a
//      catalog under Zipf-skewed hot-entity traffic, split-serving at
//      k in {0, L/2, 3L/4, L-1} vs the unsplit baseline.
//      GATE: best ladder point >= 5x effective pairs/sec (>= 1.5x in
//      --smoke, where the model is shallow and overheads dominate).
//
//   2. Exactness — k = 0 caches per-entity *embeddings*; blocked attention
//      keys contribute exactly zero and every kernel is row-independent, so
//      the split path must reproduce the full cross-encoder bit-for-bit.
//      GATE: probabilities identical (==, not NEAR) under fp32 AND int8.
//
//   3. Accuracy ladder — a fine-tuned scaled BERT (2 layers) evaluated
//      with full Logits vs LogitsSplit(k): at k > 0 the lower layers go
//      segment-local, which is a different function; the ladder measures
//      what that costs.
//      GATE: |dF1| <= 0.1 points at the shipped default split layer
//      (DefaultSplitLayer(L) = L/2). Skipped in --smoke (no fine-tune);
//      k = 0 exactness stands in for it there.
//
// Results are printed and written to BENCH_prefix_cache.json. Knobs:
//
//   EMX_PREFIX_LAYERS    throughput model depth          (default 8)
//   EMX_PREFIX_HIDDEN    throughput model width          (default 128)
//   EMX_PREFIX_REQUESTS  re-rank requests per ladder run (default 1024)
//   EMX_PREFIX_CATALOG   catalog entities                (default 192)
//   EMX_PREFIX_EPOCHS    fine-tuning epochs (accuracy)   (default 5)
//   EMX_PREFIX_SCALE     dataset scale mult (accuracy)   (default 2)
//   EMX_CACHE_DIR        tokenizer/zoo cache   (default /tmp/emx_zoo_bench)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/entity_matcher.h"
#include "data/generators.h"
#include "models/classifier.h"
#include "models/encoder.h"
#include "pretrain/model_zoo.h"
#include "quant/quantize_matcher.h"
#include "serve/matcher_engine.h"
#include "tensor/variable.h"
#include "util/rng.h"
#include "util/timer.h"

namespace emx {
namespace {

// ---- Zipf-skewed candidate traffic -----------------------------------------

/// Rank-frequency Zipf sampler (s = 1): rank r is drawn with probability
/// proportional to 1/(r+1) — the handful of head entities dominates, the
/// long tail trickles, which is exactly the traffic shape a candidate-side
/// cache is built for.
class ZipfSampler {
 public:
  explicit ZipfSampler(int64_t n) {
    cdf_.reserve(static_cast<size_t>(n));
    double total = 0;
    for (int64_t r = 0; r < n; ++r) {
      total += 1.0 / static_cast<double>(r + 1);
      cdf_.push_back(total);
    }
    total_ = total;
  }
  int64_t Sample(Rng* rng) {
    const double u = rng->NextDouble() * total_;
    return static_cast<int64_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0;
};

std::vector<std::string> MakeCatalog(int64_t n, Rng* rng) {
  const char* brands[] = {"acer",   "sony",  "canon", "lenovo",
                          "garmin", "bosch", "haier", "nikon"};
  const char* nouns[] = {"laptop", "camera", "monitor", "router",
                         "tablet", "drive",  "speaker", "printer"};
  std::vector<std::string> catalog;
  catalog.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s %s model zx%lld series %lld with %lld gb storage and "
                  "%lld inch display silver edition %lld",
                  brands[rng->NextInt(0, 7)], nouns[rng->NextInt(0, 7)],
                  static_cast<long long>(1000 + i),
                  static_cast<long long>(rng->NextInt(1, 9)),
                  static_cast<long long>(64 * rng->NextInt(1, 8)),
                  static_cast<long long>(rng->NextInt(11, 17)),
                  static_cast<long long>(i));
    catalog.emplace_back(buf);
  }
  return catalog;
}

// ---- Section 1: throughput ladder ------------------------------------------

/// A deep random-weight matcher: the zoo's trained tokenizer (so text maps
/// to a real vocab) under a manually-sized encoder. Random weights are fine
/// for throughput — QPS depends on shapes, not values.
std::unique_ptr<core::EntityMatcher> BuildDeepMatcher(
    const pretrain::ZooOptions& zoo, int64_t layers, int64_t hidden,
    int64_t max_seq_len) {
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return nullptr;
  }
  models::TransformerConfig cfg = models::TransformerConfig::Scaled(
      models::Architecture::kBert, bundle.value().tokenizer->vocab_size());
  cfg.num_layers = layers;
  cfg.hidden = hidden;
  cfg.num_heads = hidden / 32;
  cfg.intermediate = hidden * 4;
  cfg.max_seq_len = max_seq_len;
  Rng rng(7);
  pretrain::PretrainedBundle deep;
  deep.model = std::make_unique<models::EncoderModel>(cfg, &rng);
  deep.tokenizer = std::move(bundle.value().tokenizer);
  auto matcher = std::make_unique<core::EntityMatcher>(std::move(deep));
  matcher->set_eval_max_seq_len(max_seq_len);
  return matcher;
}

struct LadderPoint {
  int64_t split_layer = -1;  // -1 = unsplit baseline
  double pairs_per_sec = 0;
  double speedup = 1.0;
  double prefix_hit_rate = 0;
  int64_t prefix_evictions = 0;
  int64_t prefix_bytes = 0;
};

serve::EngineOptions ThroughputEngineOptions(int64_t max_seq_len,
                                             int64_t requests) {
  serve::EngineOptions opts;
  opts.max_batch_size = 16;
  opts.max_wait_us = 2000;
  opts.max_seq_len = max_seq_len;
  opts.bucket_width = max_seq_len;
  opts.queue_capacity = requests + 16;
  return opts;
}

/// Replays the same (query, candidate) sequence through one engine config:
/// queries pinned in contiguous 1-vs-N blocks, candidates Zipf-drawn.
LadderPoint RunLadderPoint(core::EntityMatcher* matcher, int64_t split_layer,
                           const std::vector<std::string>& queries,
                           const std::vector<std::string>& catalog,
                           const std::vector<int64_t>& candidate_ids,
                           int64_t max_seq_len) {
  serve::EngineOptions opts = ThroughputEngineOptions(
      max_seq_len, static_cast<int64_t>(candidate_ids.size()));
  opts.split_layer = split_layer;
  serve::MatcherEngine engine(matcher, opts);

  const size_t per_query = candidate_ids.size() / queries.size();
  Timer timer;
  std::vector<std::future<serve::MatchResult>> futures;
  futures.reserve(candidate_ids.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const serve::PinnedQuery pinned = engine.PinQuery(queries[q]);
    for (size_t i = 0; i < per_query; ++i) {
      const std::string& cand =
          catalog[static_cast<size_t>(candidate_ids[q * per_query + i])];
      if (split_layer >= 0) {
        futures.push_back(engine.SubmitAgainst(pinned, cand));
      } else {
        futures.push_back(engine.Submit(queries[q], cand));
      }
    }
  }
  for (auto& f : futures) (void)f.get();
  const double seconds = timer.ElapsedSeconds();

  LadderPoint point;
  point.split_layer = split_layer;
  point.pairs_per_sec = static_cast<double>(futures.size()) / seconds;
  serve::MetricsSnapshot m = engine.Metrics();
  point.prefix_hit_rate = m.prefix_hit_rate;
  point.prefix_evictions = m.prefix_evictions;
  point.prefix_bytes = m.prefix_bytes;
  return point;
}

// ---- Section 2: k = 0 exactness --------------------------------------------

/// Serves `pairs` through a split(k=0) engine and an unsplit engine over
/// the same matcher/precision; returns the count of bit-level mismatches.
int64_t CountK0Mismatches(core::EntityMatcher* matcher,
                          serve::Precision precision, int64_t max_seq_len,
                          const std::vector<std::pair<std::string,
                                                      std::string>>& pairs) {
  serve::EngineOptions base;
  base.max_seq_len = max_seq_len;
  base.bucket_width = max_seq_len;
  base.max_wait_us = 1000;
  base.precision = precision;
  serve::MatcherEngine full(matcher, base);
  serve::EngineOptions split_opts = base;
  split_opts.split_layer = 0;
  serve::MatcherEngine split(matcher, split_opts);

  int64_t mismatches = 0;
  for (const auto& [a, b] : pairs) {
    const serve::MatchResult rf = full.Match(a, b);
    const serve::MatchResult rs = split.Match(a, b);
    if (!rf.status.ok() || !rs.status.ok() ||
        rf.probability != rs.probability) {
      ++mismatches;
    }
    // Second pass through the cache must stay identical too.
    const serve::MatchResult again = split.Match(a, b);
    if (again.probability != rf.probability) ++mismatches;
  }
  return mismatches;
}

// ---- Section 3: accuracy ladder --------------------------------------------

struct AccuracyPoint {
  int64_t split_layer = 0;
  double f1_full = 0;
  double f1_split = 0;
  double delta_f1_points = 0;
  double mean_abs_dprob = 0;
};

double F1Score(const std::vector<int64_t>& preds,
               const std::vector<int64_t>& labels) {
  int64_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == 1 && labels[i] == 1) ++tp;
    if (preds[i] == 1 && labels[i] == 0) ++fp;
    if (preds[i] == 0 && labels[i] == 1) ++fn;
  }
  const int64_t denom = 2 * tp + fp + fn;
  return denom == 0 ? 0.0 : 2.0 * static_cast<double>(tp) /
                                static_cast<double>(denom);
}

/// P(match) for every pair, computed with the full cross-encoder
/// (split_layer < 0) or the segment-local split forward.
std::vector<double> EvalProbs(core::EntityMatcher* matcher,
                              const std::vector<std::string>& as,
                              const std::vector<std::string>& bs,
                              int64_t split_layer) {
  std::vector<double> probs;
  probs.reserve(as.size());
  constexpr size_t kChunk = 32;
  NoGradGuard guard;
  Rng rng(0);
  for (size_t begin = 0; begin < as.size(); begin += kChunk) {
    const size_t end = std::min(begin + kChunk, as.size());
    const std::vector<std::string> ca(as.begin() + begin, as.begin() + end);
    const std::vector<std::string> cb(bs.begin() + begin, bs.begin() + end);
    models::Batch batch =
        matcher->BuildBatch(ca, cb, matcher->eval_max_seq_len());
    Variable logits =
        split_layer < 0
            ? matcher->classifier()->Logits(batch, /*train=*/false, &rng)
            : matcher->classifier()->LogitsSplit(batch, split_layer,
                                                 /*train=*/false, &rng);
    for (int64_t r = 0; r < batch.batch_size; ++r) {
      const double l0 = logits.value()[r * 2];
      const double l1 = logits.value()[r * 2 + 1];
      const double m = std::max(l0, l1);
      probs.push_back(std::exp(l1 - m) /
                      (std::exp(l0 - m) + std::exp(l1 - m)));
    }
  }
  return probs;
}

}  // namespace
}  // namespace emx

int main(int argc, char** argv) {
  using namespace emx;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  pretrain::ZooOptions zoo = bench::BenchZoo();
  zoo.skip_pretraining = true;

  const int64_t layers =
      smoke ? 6 : bench::EnvInt("EMX_PREFIX_LAYERS", 8);
  const int64_t hidden =
      smoke ? 64 : bench::EnvInt("EMX_PREFIX_HIDDEN", 128);
  const int64_t requests =
      smoke ? 384 : bench::EnvInt("EMX_PREFIX_REQUESTS", 1024);
  const int64_t catalog_size =
      smoke ? 64 : bench::EnvInt("EMX_PREFIX_CATALOG", 192);
  constexpr int64_t kSeqLen = 64;
  const double speedup_gate = smoke ? 1.5 : 5.0;

  std::printf(
      "bench_prefix_cache — split-encoder prefix reuse for 1-vs-N re-rank\n"
      "throughput model: %lld layers, hidden %lld; %lld Zipf requests over "
      "%lld catalog entities%s\n\n",
      static_cast<long long>(layers), static_cast<long long>(hidden),
      static_cast<long long>(requests), static_cast<long long>(catalog_size),
      smoke ? " [smoke]" : "");

  // ---- Section 1: throughput ladder.
  auto deep = BuildDeepMatcher(zoo, layers, hidden, kSeqLen);
  if (deep == nullptr) return 1;

  Rng traffic_rng(42);
  const std::vector<std::string> catalog =
      MakeCatalog(catalog_size, &traffic_rng);
  const std::vector<std::string> queries = {
      "acer laptop zx1003 silver 256 gb thirteen inch display",
      "sony camera zx1077 with 128 gb and fifteen inch screen",
      "garmin router zx1150 series 4 silver edition compact",
      "nikon monitor zx1042 silver 512 gb large display model",
  };
  ZipfSampler zipf(catalog_size);
  std::vector<int64_t> candidate_ids;
  candidate_ids.reserve(static_cast<size_t>(requests));
  for (int64_t i = 0; i < requests; ++i) {
    candidate_ids.push_back(zipf.Sample(&traffic_rng));
  }

  LadderPoint baseline = RunLadderPoint(deep.get(), -1, queries, catalog,
                                        candidate_ids, kSeqLen);
  std::vector<int64_t> ladder_ks = {0, layers / 2, 3 * layers / 4,
                                    layers - 1};
  ladder_ks.erase(std::unique(ladder_ks.begin(), ladder_ks.end()),
                  ladder_ks.end());
  std::vector<LadderPoint> ladder;
  for (int64_t k : ladder_ks) {
    LadderPoint p = RunLadderPoint(deep.get(), k, queries, catalog,
                                   candidate_ids, kSeqLen);
    p.speedup = p.pairs_per_sec / baseline.pairs_per_sec;
    ladder.push_back(p);
  }

  std::printf("%-12s %12s %9s %9s %11s %10s\n", "split_layer", "pairs/sec",
              "speedup", "hit rate", "evictions", "bytes");
  std::printf("%-12s %12.1f %8.2fx %9s %11s %10s\n", "off (full)",
              baseline.pairs_per_sec, 1.0, "-", "-", "-");
  double best_speedup = 0;
  for (const LadderPoint& p : ladder) {
    std::printf("%-12lld %12.1f %8.2fx %8.1f%% %11lld %10lld\n",
                static_cast<long long>(p.split_layer), p.pairs_per_sec,
                p.speedup, p.prefix_hit_rate * 100.0,
                static_cast<long long>(p.prefix_evictions),
                static_cast<long long>(p.prefix_bytes));
    best_speedup = std::max(best_speedup, p.speedup);
  }
  const bool throughput_pass = best_speedup >= speedup_gate;

  // ---- Section 2: k = 0 exactness (fp32 and int8) on the zoo matcher.
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  core::EntityMatcher exact_matcher(std::move(bundle).value());
  exact_matcher.set_eval_max_seq_len(48);
  std::vector<std::pair<std::string, std::string>> exact_pairs;
  for (int64_t i = 0; i < 24; ++i) {
    exact_pairs.emplace_back(
        catalog[static_cast<size_t>(i % catalog_size)],
        catalog[static_cast<size_t>((i * 7 + 1) % catalog_size)]);
  }
  const int64_t fp32_mismatches = CountK0Mismatches(
      &exact_matcher, serve::Precision::kFp32, 48, exact_pairs);

  quant::CalibrationData calib;
  for (int64_t i = 0; i < 16; ++i) {
    calib.texts_a.push_back(catalog[static_cast<size_t>(i)]);
    calib.texts_b.push_back(catalog[static_cast<size_t>(i + 1)]);
  }
  int64_t int8_mismatches = -1;
  if (quant::QuantizeMatcher(&exact_matcher, calib).ok()) {
    int8_mismatches = CountK0Mismatches(&exact_matcher,
                                        serve::Precision::kInt8, 48,
                                        exact_pairs);
  }
  const bool exact_pass = fp32_mismatches == 0 && int8_mismatches == 0;
  std::printf("\nk=0 exactness: fp32 mismatches %lld, int8 mismatches %lld\n",
              static_cast<long long>(fp32_mismatches),
              static_cast<long long>(int8_mismatches));

  // ---- Section 3: accuracy ladder on a fine-tuned scaled BERT.
  std::vector<AccuracyPoint> accuracy;
  int64_t shipped_default = 0;
  bool accuracy_pass = true;
  if (!smoke) {
    const data::DatasetId id = data::DatasetId::kWalmartAmazon;
    data::GeneratorOptions gen;
    gen.scale =
        bench::DatasetScale(id) * bench::EnvDouble("EMX_PREFIX_SCALE", 2.0);
    data::EmDataset dataset = data::GenerateDataset(id, gen);
    auto ft_bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
    if (!ft_bundle.ok()) {
      std::printf("error: %s\n", ft_bundle.status().ToString().c_str());
      return 1;
    }
    core::EntityMatcher ft(std::move(ft_bundle).value());
    ft.set_eval_max_seq_len(bench::DatasetSeqLen(id));
    core::FineTuneOptions ftopts = bench::BenchFineTune(id);
    ftopts.epochs = bench::EnvInt("EMX_PREFIX_EPOCHS", 5);
    std::printf("\nfine-tuning %s (%lld pairs, %lld epochs) for the "
                "accuracy ladder...\n",
                data::SpecFor(id).name,
                static_cast<long long>(dataset.train.size()),
                static_cast<long long>(ftopts.epochs));
    std::fflush(stdout);
    (void)ft.FineTune(dataset, ftopts);

    std::vector<data::RecordPair> eval_pairs = dataset.valid;
    eval_pairs.insert(eval_pairs.end(), dataset.test.begin(),
                      dataset.test.end());
    std::vector<std::string> as, bs;
    std::vector<int64_t> labels;
    for (const auto& p : eval_pairs) {
      as.push_back(dataset.SerializeA(p));
      bs.push_back(dataset.SerializeB(p));
      labels.push_back(p.label);
    }
    const std::vector<double> full_probs = EvalProbs(&ft, as, bs, -1);
    std::vector<int64_t> full_preds;
    for (double p : full_probs) full_preds.push_back(p >= 0.5 ? 1 : 0);
    const double f1_full = F1Score(full_preds, labels);

    const int64_t L = ft.classifier()->config().num_layers;
    shipped_default = serve::DefaultSplitLayer(L);
    std::printf("%-12s %9s %9s %8s %10s\n", "split_layer", "F1 full",
                "F1 split", "dF1 pt", "mean|dp|");
    for (int64_t k = 0; k < L; ++k) {
      const std::vector<double> split_probs = EvalProbs(&ft, as, bs, k);
      std::vector<int64_t> split_preds;
      double dp = 0;
      for (size_t i = 0; i < split_probs.size(); ++i) {
        split_preds.push_back(split_probs[i] >= 0.5 ? 1 : 0);
        dp += std::fabs(split_probs[i] - full_probs[i]);
      }
      AccuracyPoint point;
      point.split_layer = k;
      point.f1_full = f1_full;
      point.f1_split = F1Score(split_preds, labels);
      point.delta_f1_points = std::fabs(point.f1_split - f1_full) * 100.0;
      point.mean_abs_dprob =
          split_probs.empty() ? 0 : dp / static_cast<double>(
                                             split_probs.size());
      accuracy.push_back(point);
      std::printf("%-12lld %9.4f %9.4f %8.2f %10.5f\n",
                  static_cast<long long>(k), point.f1_full, point.f1_split,
                  point.delta_f1_points, point.mean_abs_dprob);
      if (k == shipped_default && point.delta_f1_points > 0.1) {
        accuracy_pass = false;
      }
    }
  } else {
    std::printf("accuracy ladder skipped in --smoke (k=0 exactness above "
                "covers the shipped-exact configuration)\n");
  }

  const bool all_pass = throughput_pass && exact_pass && accuracy_pass;
  std::printf("\ngates: best speedup %.2fx >= %.1fx: %s | k=0 bit-identical "
              "fp32+int8: %s | |dF1| <= 0.1 pt at split_layer=%lld: %s\n",
              best_speedup, speedup_gate, throughput_pass ? "PASS" : "FAIL",
              exact_pass ? "PASS" : "FAIL",
              static_cast<long long>(shipped_default),
              accuracy_pass ? (smoke ? "SKIPPED" : "PASS") : "FAIL");

  FILE* out = std::fopen("BENCH_prefix_cache.json", "w");
  if (out == nullptr) {
    std::printf("error: cannot write BENCH_prefix_cache.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"gates_pass\": %s,\n", all_pass ? "true" : "false");
  std::fprintf(out,
               "  \"throughput\": {\n"
               "    \"layers\": %lld, \"hidden\": %lld, \"requests\": %lld, "
               "\"catalog\": %lld,\n"
               "    \"baseline_pairs_per_sec\": %.1f, "
               "\"best_speedup\": %.3f, \"speedup_gate\": %.1f,\n"
               "    \"ladder\": [\n",
               static_cast<long long>(layers), static_cast<long long>(hidden),
               static_cast<long long>(requests),
               static_cast<long long>(catalog_size), baseline.pairs_per_sec,
               best_speedup, speedup_gate);
  for (size_t i = 0; i < ladder.size(); ++i) {
    const LadderPoint& p = ladder[i];
    std::fprintf(out,
                 "      {\"split_layer\": %lld, \"pairs_per_sec\": %.1f, "
                 "\"speedup\": %.3f, \"prefix_hit_rate\": %.4f, "
                 "\"prefix_evictions\": %lld, \"prefix_bytes\": %lld}%s\n",
                 static_cast<long long>(p.split_layer), p.pairs_per_sec,
                 p.speedup, p.prefix_hit_rate,
                 static_cast<long long>(p.prefix_evictions),
                 static_cast<long long>(p.prefix_bytes),
                 i + 1 < ladder.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n  },\n");
  std::fprintf(out,
               "  \"exactness\": {\"fp32_mismatches\": %lld, "
               "\"int8_mismatches\": %lld},\n",
               static_cast<long long>(fp32_mismatches),
               static_cast<long long>(int8_mismatches));
  std::fprintf(out, "  \"accuracy\": {\"shipped_split_layer\": %lld, "
               "\"ladder\": [\n",
               static_cast<long long>(shipped_default));
  for (size_t i = 0; i < accuracy.size(); ++i) {
    const AccuracyPoint& p = accuracy[i];
    std::fprintf(out,
                 "    {\"split_layer\": %lld, \"f1_full\": %.4f, "
                 "\"f1_split\": %.4f, \"delta_f1_points\": %.3f, "
                 "\"mean_abs_dprob\": %.5f}%s\n",
                 static_cast<long long>(p.split_layer), p.f1_full, p.f1_split,
                 p.delta_f1_points, p.mean_abs_dprob,
                 i + 1 < accuracy.size() ? "," : "");
  }
  std::fprintf(out, "  ]}\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_prefix_cache.json\n");
  return all_pass ? 0 : 1;
}
