// Overhead gate for the emx::obs tracing/metrics subsystem.
//
// The subsystem's contract is that instrumentation left compiled into the
// hot kernels costs effectively nothing while profiling is stopped: every
// EMX_TRACE_SPAN site degenerates to one relaxed atomic load and a branch.
// This harness measures that cost directly and relates it to the kernels it
// decorates:
//
//   span_off_ns    per-site cost of a disabled span (tight loop, best-of),
//   span_on_ns     per-event cost of a recording span (clock reads + push),
//   matmul_off_ms  a bench_micro_kernels-representative MatMul (128^3,
//                  grad-free) with profiling stopped,
//   matmul_on_ms   the same MatMul while recording,
//
// and gates on:
//
//   disabled overhead   span_off_ns / matmul_off_ns < 1%  (the ISSUE gate;
//                       each kernel call crosses one span site),
//   trace validity      a recorded trace exports to Chrome-trace JSON that
//                       the strict emx::obs parser accepts, with the
//                       expected event count,
//   metrics validity    the global registry snapshot strict-parses.
//
// Results go to BENCH_obs.json. `--smoke` shrinks iteration counts for the
// CTest/CI entry but keeps every gate (the disabled-overhead ratio is loose
// enough to be timing-robust even on loaded CI machines).
//
// Environment knobs:
//   EMX_NUM_THREADS   pool size (default 1 here, so matmul times are
//                     kernel times, not scheduling times)
//   EMX_OBS_REPS      best-of reps for the matmul timings (default 5)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/timer.h"

namespace emx {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoll(v);
}

template <typename Fn>
double BestOfSeconds(int64_t reps, Fn&& fn) {
  double best = 1e30;
  for (int64_t r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

/// Per-iteration cost of one span site, in ns. The span name is a distinct
/// literal so enabled runs are attributable in the exported trace.
double SpanSiteNs(int64_t iters) {
  Timer timer;
  for (int64_t i = 0; i < iters; ++i) {
    EMX_TRACE_SPAN("bench.span_site");
  }
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(iters);
}

}  // namespace
}  // namespace emx

int main(int argc, char** argv) {
  using namespace emx;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  setenv("EMX_NUM_THREADS", "1", /*overwrite=*/0);

  const int64_t reps = EnvInt("EMX_OBS_REPS", smoke ? 3 : 5);
  const int64_t off_iters = smoke ? 2'000'000 : 20'000'000;
  const int64_t on_iters = smoke ? 20'000 : 100'000;
  const int64_t m = 128, n = 128, k = 128;

  obs::StopProfiling();
  obs::ClearTrace();

  // ---- disabled span site: relaxed load + branch, amortized over a loop.
  const double span_off_ns = SpanSiteNs(off_iters);

  // ---- representative kernel (bench_micro_kernels' mid MatMul shape),
  // profiling stopped. One EMX_TRACE_SPAN site guards each MatMul call.
  Rng rng(42);
  Tensor a = Tensor::Randn({m, k}, &rng, 0.5f);
  Tensor b = Tensor::Randn({k, n}, &rng, 0.5f);
  const double matmul_off_ms =
      BestOfSeconds(reps, [&] { (void)ops::MatMul(a, b); }) * 1e3;

  // ---- enabled: per-event recording cost and the same kernel while hot.
  obs::ObsOptions opts;
  opts.max_events_per_thread =
      static_cast<size_t>(on_iters) + 4096;  // no drops during the measure
  obs::StartProfiling(opts);
  const double span_on_ns = SpanSiteNs(on_iters);
  const double matmul_on_ms =
      BestOfSeconds(reps, [&] { (void)ops::MatMul(a, b); }) * 1e3;
  obs::StopProfiling();

  // ---- validity: the recorded trace and the metrics registry must both
  // survive the strict parser, and the trace must carry the span events.
  const std::string trace_json = obs::ExportChromeTrace();
  obs::JsonValue trace_doc;
  std::string error;
  bool trace_ok = obs::JsonParse(trace_json, &trace_doc, &error);
  int64_t span_events = 0;
  if (trace_ok) {
    const obs::JsonValue* events = trace_doc.Find("traceEvents");
    trace_ok = events != nullptr && events->is_array();
    if (trace_ok) {
      for (const obs::JsonValue& e : events->array) {
        const obs::JsonValue* name = e.Find("name");
        if (name != nullptr && name->string_value == "bench.span_site") {
          ++span_events;
        }
      }
      trace_ok = span_events >= on_iters;
    }
  } else {
    std::printf("trace parse error: %s\n", error.c_str());
  }

  obs::JsonValue metrics_doc;
  const bool metrics_ok =
      obs::JsonParse(obs::MetricsRegistry::Global()->ToJson(), &metrics_doc,
                     &error) &&
      metrics_doc.Find("counters") != nullptr;
  if (!metrics_ok) std::printf("metrics parse error: %s\n", error.c_str());

  const double matmul_off_ns = matmul_off_ms * 1e6;
  const double overhead_pct = 100.0 * span_off_ns / matmul_off_ns;
  const bool overhead_ok = overhead_pct < 1.0;
  const bool gates_pass = overhead_ok && trace_ok && metrics_ok;

  std::printf("bench_obs — emx::obs overhead%s\n\n", smoke ? " (--smoke)" : "");
  std::printf("  disabled span site        %8.2f ns\n", span_off_ns);
  std::printf("  recording span            %8.2f ns\n", span_on_ns);
  std::printf("  MatMul %lldx%lldx%lld off     %8.3f ms\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(k), matmul_off_ms);
  std::printf("  MatMul %lldx%lldx%lld traced  %8.3f ms\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(k), matmul_on_ms);
  std::printf("  disabled overhead/kernel  %8.5f %%\n", overhead_pct);
  std::printf("  trace events exported     %8lld (dropped %lld)\n",
              static_cast<long long>(obs::TraceEventCount()),
              static_cast<long long>(obs::TraceDroppedCount()));
  std::printf(
      "\ngates: disabled overhead < 1%% %s, trace strict-parses %s, "
      "metrics strict-parse %s — %s\n",
      overhead_ok ? "PASS" : "FAIL", trace_ok ? "PASS" : "FAIL",
      metrics_ok ? "PASS" : "FAIL", gates_pass ? "PASS" : "FAIL");

  FILE* out = std::fopen("BENCH_obs.json", "w");
  if (out == nullptr) {
    std::printf("error: cannot write BENCH_obs.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"smoke\": %s,\n  \"gates_pass\": %s,\n"
               "  \"span_disabled_ns\": %.3f,\n  \"span_enabled_ns\": %.3f,\n"
               "  \"matmul_off_ms\": %.4f,\n  \"matmul_traced_ms\": %.4f,\n"
               "  \"disabled_overhead_pct\": %.6f,\n"
               "  \"trace_events\": %lld,\n  \"trace_valid\": %s,\n"
               "  \"metrics_valid\": %s\n}\n",
               smoke ? "true" : "false", gates_pass ? "true" : "false",
               span_off_ns, span_on_ns, matmul_off_ms, matmul_on_ms,
               overhead_pct, static_cast<long long>(span_events),
               trace_ok ? "true" : "false", metrics_ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_obs.json\n");
  return gates_pass ? 0 : 1;
}
