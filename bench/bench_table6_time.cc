// Reproduces Table 6 of the paper: fine-tuning time per epoch for each
// transformer on each dataset. Absolute numbers differ from the paper's
// GPU timings (this is a CPU reproduction of scaled models); the *ratios*
// are the reproduced result: XLNet slowest (two-stream relative attention),
// DistilBERT fastest (~half of BERT), RoBERTa ~ BERT.
//
// Paper reference (per epoch on a TITAN Xp):
//   Abt-Buy          2m42s  6m15s  2m43s  1m22s
//   iTunes-Amazon       7s    12s     7s   3.5s
//   Walmart-Amazon   1m41s  2m29s  1m41s    52s
//   DBLP-ACM         2m24s   4m9s  2m24s  1m13s
//   DBLP-Scholar      4m5s  5m57s  4m13s   2m6s

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "core/entity_matcher.h"
#include "data/generators.h"
#include "util/string_util.h"
#include "util/timer.h"

int main() {
  using namespace emx;
  std::printf("Table 6: Training time per epoch on each data set "
              "(CPU, scaled models; compare ratios, not absolutes).\n\n");
  std::printf("%-24s %10s %10s %10s %10s\n", "Dataset", "BERT", "XLNet",
              "RoB.a", "D.BERT");

  const auto archs = {models::Architecture::kBert, models::Architecture::kXlnet,
                      models::Architecture::kRoberta,
                      models::Architecture::kDistilBert};

  for (auto id : {data::DatasetId::kAbtBuy, data::DatasetId::kItunesAmazon,
                  data::DatasetId::kWalmartAmazon, data::DatasetId::kDblpAcm,
                  data::DatasetId::kDblpScholar}) {
    const auto& spec = data::SpecFor(id);
    data::GeneratorOptions gen;
    gen.scale = bench::DatasetScale(id);
    auto ds = data::GenerateDataset(id, gen);

    std::string name = spec.name;
    if (spec.dirty) name += "(dirty)";
    std::printf("%-24s", name.c_str());
    std::string breakdown;
    for (auto arch : archs) {
      auto bundle = pretrain::GetPretrained(arch, bench::BenchZoo());
      if (!bundle.ok()) {
        std::printf("  zoo error: %s\n", bundle.status().ToString().c_str());
        return 1;
      }
      core::EntityMatcher matcher(std::move(bundle).value());
      core::FineTuneOptions ft = bench::BenchFineTune(id);
      ft.epochs = 2;  // timing only; report the mean of two epochs
      auto records = matcher.FineTune(ds, ft, /*eval_each_epoch=*/true);
      double secs = 0, tok = 0, fwd = 0, bwd = 0, opt = 0, tps = 0;
      int64_t n = 0;
      for (const auto& r : records) {
        if (r.epoch > 0) {
          secs += r.seconds;
          tok += r.tokenize_seconds;
          fwd += r.forward_seconds;
          bwd += r.backward_seconds;
          opt += r.optimizer_seconds;
          tps += r.tokens_per_sec;
          ++n;
        }
      }
      std::printf(" %10s", Timer::FormatDuration(secs / n).c_str());
      std::fflush(stdout);
      // Phase attribution from the instrumented loop: the four measured
      // phases must account for the epoch wall clock (within 5%; the
      // remainder is batch assembly and bookkeeping between phases).
      const double phases = tok + fwd + bwd + opt;
      breakdown += StrFormat(
          "    %-8s tok %4.1f%%  fwd %4.1f%%  bwd %4.1f%%  opt %4.1f%%  | "
          "phases/wall %5.1f%%  %7.0f tok/s\n",
          models::ArchitectureName(arch), 100.0 * tok / secs,
          100.0 * fwd / secs, 100.0 * bwd / secs, 100.0 * opt / secs,
          100.0 * phases / secs, tps / n);
    }
    std::printf("\n%s", breakdown.c_str());
  }
  std::printf("\nPaper shape to compare against: XLNet slowest, DistilBERT ~half "
              "of BERT, RoBERTa ~ BERT.\nNote: at this reduced scale (T<=64, "
              "H=64) XLNet's relative-attention overhead is small, so its\n"
              "column is not reliably slowest; DistilBERT ~0.5x BERT holds "
              "robustly.\n");
  return 0;
}
