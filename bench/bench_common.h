#ifndef EMX_BENCH_BENCH_COMMON_H_
#define EMX_BENCH_BENCH_COMMON_H_

// Shared configuration for the paper-reproduction bench harness. Every
// table/figure binary uses the same model zoo (pre-trained once, cached on
// disk) and the same per-dataset generation scales, so results are
// comparable across binaries.
//
// Environment knobs:
//   EMX_CACHE_DIR    zoo cache location   (default /tmp/emx_zoo_bench)
//   EMX_SCALE        multiplier on the per-dataset pair scales (default 1)
//   EMX_EPOCHS       fine-tuning epochs for figure benches (default 8)
//   EMX_RUNS         runs to average (paper uses 5; default 1)
//   EMX_PRETRAIN_STEPS  pre-training steps (default 1500)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.h"
#include "data/record.h"
#include "pretrain/model_zoo.h"

namespace emx {
namespace bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoll(v);
}

inline std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

/// The shared zoo: scaled-down models pre-trained on the synthetic corpus.
inline pretrain::ZooOptions BenchZoo() {
  pretrain::ZooOptions zoo;
  zoo.cache_dir = EnvString("EMX_CACHE_DIR", "/tmp/emx_zoo_bench");
  zoo.vocab_size = 1000;
  zoo.corpus.num_documents = 2000;
  zoo.pretrain.steps = EnvInt("EMX_PRETRAIN_STEPS", 1200);
  zoo.pretrain.batch_size = 16;
  zoo.pretrain.data.max_seq_len = 32;
  zoo.pretrain.learning_rate = 1e-3f;
  return zoo;
}

/// Pair-generation scale per dataset: chosen so CPU fine-tuning of all four
/// architectures stays tractable while every dataset keeps hundreds of
/// pairs. iTunes-Amazon is small enough to run at full paper size.
inline double DatasetScale(data::DatasetId id) {
  const double mult = EnvDouble("EMX_SCALE", 1.0);
  switch (id) {
    case data::DatasetId::kAbtBuy:
      return 0.05 * mult;
    case data::DatasetId::kItunesAmazon:
      return 1.0 * mult;
    case data::DatasetId::kWalmartAmazon:
      return 0.05 * mult;
    case data::DatasetId::kDblpAcm:
      return 0.04 * mult;
    case data::DatasetId::kDblpScholar:
      return 0.02 * mult;
  }
  return 0.05 * mult;
}

/// Token budget per dataset ("empirically defined based on the longest
/// data rows", paper Section 5.2.2). Abt-Buy's long descriptions are
/// capped at the models' position-table size (64); longest-first pair
/// truncation keeps the head of both entities.
inline int64_t DatasetSeqLen(data::DatasetId id) {
  return id == data::DatasetId::kAbtBuy ? 64 : 56;
}

/// Fine-tuning recipe shared by the figure/table benches.
inline core::FineTuneOptions BenchFineTune(data::DatasetId id) {
  core::FineTuneOptions ft;
  ft.epochs = EnvInt("EMX_EPOCHS", 5);
  ft.batch_size = 16;
  ft.learning_rate = 1e-3f;
  ft.max_seq_len = DatasetSeqLen(id);
  return ft;
}

inline core::ExperimentOptions BenchExperiment(data::DatasetId id) {
  core::ExperimentOptions opts;
  opts.dataset.scale = DatasetScale(id);
  opts.zoo = BenchZoo();
  opts.fine_tune = BenchFineTune(id);
  opts.runs = EnvInt("EMX_RUNS", 1);
  return opts;
}

/// Runs one paper figure (F1-vs-epoch for all four architectures) and
/// prints it as an aligned table.
inline void RunFigureBench(const char* figure_name, data::DatasetId id) {
  const auto& spec = data::SpecFor(id);
  core::ExperimentOptions opts = BenchExperiment(id);
  std::printf("%s — dataset %s (scale %.3f, %lld epochs, %lld run(s))\n",
              figure_name, spec.name, opts.dataset.scale,
              static_cast<long long>(opts.fine_tune.epochs),
              static_cast<long long>(opts.runs));
  std::fflush(stdout);
  auto series = core::RunAllArchitectures(id, opts);
  std::printf("%s\n", core::FormatFigure(
                          std::string("F1 (test set, %) vs fine-tuning epoch"),
                          series)
                          .c_str());
  std::printf("Paper reference: transformers reach within ~5%% of peak after "
              "1 epoch (except iTunes-Amazon)\nand converge by epoch 3-5; "
              "RoBERTa best on average, DistilBERT lowest-but-close.\n");
}

}  // namespace bench
}  // namespace emx

#endif  // EMX_BENCH_BENCH_COMMON_H_
