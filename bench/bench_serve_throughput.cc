// Serving throughput sweep: how many entity pairs per second the
// MatcherEngine sustains across micro-batching configurations, against two
// one-pair-at-a-time baselines:
//
//   seed_taped_loop  — the pre-serve prediction path: one pair per forward,
//                      full autograd tape built and thrown away (what
//                      EntityMatcher::Match cost at the seed).
//   gradfree_loop    — one pair per forward under NoGradGuard (the tape tax
//                      removed, but still unbatched and uncached).
//
// Results are printed and written to BENCH_serve.json in the working
// directory. Environment knobs:
//
//   EMX_SERVE_PAIRS     total requests per engine config   (default 512)
//   EMX_SERVE_LOOP_PAIRS pairs per baseline loop           (default 128)
//   EMX_SERVE_THREADS   client threads per engine config   (default 4)
//   EMX_SERVE_WORKERS   engine workers for the _k rows     (default nproc)
//   EMX_CACHE_DIR       tokenizer cache                    (default /tmp/emx_zoo_bench)

#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/entity_matcher.h"
#include "data/generators.h"
#include "serve/matcher_engine.h"
#include "tensor/tensor_ops.h"
#include "tensor/variable.h"
#include "util/timer.h"

namespace emx {
namespace {

struct SweepRow {
  std::string name;
  int64_t batch_size = 0;
  int64_t max_wait_us = 0;
  int64_t num_workers = 1;
  double pairs_per_sec = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double mean_batch = 0;
  double cache_hit_rate = 0;
};

/// Serialized record pairs from a generated EM dataset — realistic text
/// lengths, and repeated entities so the tokenization cache sees hits.
std::vector<std::pair<std::string, std::string>> MakeWorkload(int64_t n) {
  data::GeneratorOptions gen;
  gen.scale = 0.05;
  auto dataset = data::GenerateDataset(data::DatasetId::kWalmartAmazon, gen);
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(static_cast<size_t>(n));
  const auto& pool = dataset.train;
  for (int64_t i = 0; i < n; ++i) {
    const auto& p = pool[static_cast<size_t>(i) % pool.size()];
    pairs.emplace_back(dataset.SerializeA(p), dataset.SerializeB(p));
  }
  return pairs;
}

double TapedLoopPairsPerSec(
    core::EntityMatcher* matcher,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  Rng rng(3);
  Timer timer;
  for (const auto& [a, b] : pairs) {
    // The seed path: batch of one, training forward, tape discarded.
    models::Batch batch =
        matcher->BuildBatch({a}, {b}, matcher->eval_max_seq_len());
    Variable logits = matcher->classifier()->Logits(batch, /*train=*/false,
                                                    &rng);
    (void)ops::Softmax(logits.value());
  }
  return static_cast<double>(pairs.size()) / timer.ElapsedSeconds();
}

double GradFreeLoopPairsPerSec(
    core::EntityMatcher* matcher,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  Timer timer;
  for (const auto& [a, b] : pairs) (void)matcher->MatchProbability(a, b);
  return static_cast<double>(pairs.size()) / timer.ElapsedSeconds();
}

double BatchedGradFreePairsPerSec(
    core::EntityMatcher* matcher,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<std::string> as, bs;
  as.reserve(pairs.size());
  bs.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    as.push_back(a);
    bs.push_back(b);
  }
  Timer timer;
  (void)matcher->MatchProbabilities(as, bs);
  return static_cast<double>(pairs.size()) / timer.ElapsedSeconds();
}

SweepRow RunEngineConfig(
    core::EntityMatcher* matcher, int64_t batch_size, int64_t max_wait_us,
    int64_t num_workers, int64_t client_threads,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  serve::EngineOptions opts;
  opts.max_batch_size = batch_size;
  opts.max_wait_us = max_wait_us;
  opts.num_workers = num_workers;
  opts.max_seq_len = matcher->eval_max_seq_len();
  opts.queue_capacity = static_cast<int64_t>(pairs.size()) + 16;
  serve::MatcherEngine engine(matcher, opts);

  Timer timer;
  std::vector<std::thread> clients;
  for (int64_t t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::future<serve::MatchResult>> futures;
      for (size_t i = static_cast<size_t>(t); i < pairs.size();
           i += static_cast<size_t>(client_threads)) {
        futures.push_back(engine.Submit(pairs[i].first, pairs[i].second));
      }
      for (auto& f : futures) (void)f.get();
    });
  }
  for (auto& c : clients) c.join();
  const double seconds = timer.ElapsedSeconds();

  serve::MetricsSnapshot m = engine.Metrics();
  SweepRow row;
  row.name = "engine_b" + std::to_string(batch_size) + "_w" +
             std::to_string(max_wait_us) + "_k" + std::to_string(num_workers);
  row.batch_size = batch_size;
  row.max_wait_us = max_wait_us;
  row.num_workers = num_workers;
  row.pairs_per_sec = static_cast<double>(pairs.size()) / seconds;
  row.p50_us = m.p50_latency_us;
  row.p95_us = m.p95_latency_us;
  row.p99_us = m.p99_latency_us;
  row.mean_batch = m.mean_batch_size;
  row.cache_hit_rate = m.cache_hit_rate;
  return row;
}

}  // namespace
}  // namespace emx

int main() {
  using namespace emx;

  pretrain::ZooOptions zoo = bench::BenchZoo();
  // Throughput does not depend on weight quality; random weights keep the
  // bench self-contained (the tokenizer is still trained and cached).
  zoo.skip_pretraining = true;
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  core::EntityMatcher matcher(std::move(bundle).value());
  matcher.set_eval_max_seq_len(48);

  const int64_t engine_pairs = bench::EnvInt("EMX_SERVE_PAIRS", 512);
  const int64_t loop_pairs = bench::EnvInt("EMX_SERVE_LOOP_PAIRS", 128);
  const int64_t threads = bench::EnvInt("EMX_SERVE_THREADS", 4);
  auto workload = MakeWorkload(engine_pairs);
  auto loop_workload = std::vector<std::pair<std::string, std::string>>(
      workload.begin(), workload.begin() + static_cast<size_t>(std::min(
                                                loop_pairs, engine_pairs)));

  std::printf("bench_serve_throughput — %lld engine pairs, %zu loop pairs, "
              "%lld client threads\n\n",
              static_cast<long long>(engine_pairs), loop_workload.size(),
              static_cast<long long>(threads));

  const double taped = TapedLoopPairsPerSec(&matcher, loop_workload);
  std::printf("%-24s %10.1f pairs/s   (seed one-at-a-time, full tape)\n",
              "seed_taped_loop", taped);
  const double gradfree = GradFreeLoopPairsPerSec(&matcher, loop_workload);
  std::printf("%-24s %10.1f pairs/s   (%.2fx vs seed)\n", "gradfree_loop",
              gradfree, gradfree / taped);
  const double batched = BatchedGradFreePairsPerSec(&matcher, loop_workload);
  std::printf("%-24s %10.1f pairs/s   (%.2fx vs seed)\n\n",
              "gradfree_batched", batched, batched / taped);

  // Batch-size sweep with one worker, then the full-machine configuration:
  // one batch worker per hardware thread, overlapping micro-batches the
  // small kernels cannot parallelize internally. EMX_SERVE_WORKERS forces
  // the worker count (e.g. to exercise the multi-worker path on a 1-core
  // box, or to pin bench runs).
  const int64_t machine_workers = bench::EnvInt(
      "EMX_SERVE_WORKERS",
      std::max<int64_t>(
          1, static_cast<int64_t>(std::thread::hardware_concurrency())));
  std::vector<SweepRow> rows;
  for (int64_t batch : {1, 4, 8, 16, 32}) {
    rows.push_back(RunEngineConfig(&matcher, batch, /*max_wait_us=*/2000,
                                   /*num_workers=*/1, threads, workload));
  }
  if (machine_workers > 1) {
    for (int64_t batch : {8, 16, 32}) {
      rows.push_back(RunEngineConfig(&matcher, batch, /*max_wait_us=*/2000,
                                     machine_workers, threads, workload));
    }
  }
  for (const SweepRow& row : rows) {
    std::printf(
        "%-24s %10.1f pairs/s   (%.2fx vs seed; mean batch %.1f, p50 %.0fus, "
        "p99 %.0fus, cache %.0f%%)\n",
        row.name.c_str(), row.pairs_per_sec, row.pairs_per_sec / taped,
        row.mean_batch, row.p50_us, row.p99_us, row.cache_hit_rate * 100);
  }

  FILE* out = std::fopen("BENCH_serve.json", "w");
  if (out == nullptr) {
    std::printf("error: cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"seed_taped_loop_pairs_per_sec\": %.2f,\n", taped);
  std::fprintf(out, "  \"gradfree_loop_pairs_per_sec\": %.2f,\n", gradfree);
  std::fprintf(out, "  \"gradfree_batched_pairs_per_sec\": %.2f,\n", batched);
  std::fprintf(out, "  \"client_threads\": %lld,\n",
               static_cast<long long>(threads));
  std::fprintf(out, "  \"engine_configs\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"max_batch_size\": %lld, "
                 "\"max_wait_us\": %lld, \"num_workers\": %lld, "
                 "\"pairs_per_sec\": %.2f, "
                 "\"speedup_vs_seed\": %.3f, \"mean_batch_size\": %.2f, "
                 "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
                 "\"cache_hit_rate\": %.3f}%s\n",
                 r.name.c_str(), static_cast<long long>(r.batch_size),
                 static_cast<long long>(r.max_wait_us),
                 static_cast<long long>(r.num_workers), r.pairs_per_sec,
                 r.pairs_per_sec / taped, r.mean_batch, r.p50_us, r.p95_us,
                 r.p99_us, r.cache_hit_rate,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_serve.json\n");
  return 0;
}
