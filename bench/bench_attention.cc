// Fused tiled attention vs the unfused autograd reference chain.
//
// For each sequence length the harness times the attention core — from the
// projected [B, T, H] q/k/v through the merged context, i.e. exactly what
// autograd::FusedAttention replaces (head split, QK^T, scale, masked
// softmax, dropout, PV, head merge) — in three modes:
//
//   fwd        grad-free forward (NoGradGuard; the serving path),
//   train      forward + backward through leaf q/k/v (the training step),
//   memory     peak Tensor bytes allocated by one grad-enabled forward,
//              fused vs reference (proves the fused path never materializes
//              the [B, heads, Tq, Tk] prob tensor).
//
// Results are printed and written to BENCH_attention.json with three gates:
//
//   exact      fused forward bit-identical to the reference chain,
//   speedup    fused train step >= 1.5x reference at T=256 (single thread),
//   memory     fused peak forward bytes < reference peak forward bytes.
//
// The pool defaults to one thread (EMX_NUM_THREADS is set before the first
// tensor op unless the caller already exported it) so the speedup measures
// the kernel, not the parallelism. `--smoke` runs a seconds-long subset for
// CI: exactness + memory gates on small shapes, no timing gate.
//
// Environment knobs:
//   EMX_NUM_THREADS   pool size                    (default 1 here)
//   EMX_ATTN_REPS     timing reps, best-of         (default 5)
//   EMX_ATTN_BATCH    batch size                   (default 8)
//   EMX_ATTN_DROPOUT  train-mode dropout p         (default 0.1)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "tensor/autograd_ops.h"
#include "tensor/tensor.h"
#include "tensor/variable.h"
#include "util/rng.h"
#include "util/timer.h"

namespace emx {
namespace {

namespace ag = autograd;

struct ShapeCase {
  int64_t batch;
  int64_t heads;
  int64_t head_dim;
  int64_t seq;
  bool gated;  // the T=256 training-step speedup gate applies here
};

struct CaseResult {
  ShapeCase shape;
  double fwd_ref_ms = 0;
  double fwd_fused_ms = 0;
  double train_ref_ms = 0;
  double train_fused_ms = 0;
  double fwd_speedup = 0;
  double train_speedup = 0;
  int64_t peak_ref_bytes = 0;
  int64_t peak_fused_bytes = 0;
  bool exact = false;
};

struct Inputs {
  Variable q, k, v;
  Tensor mask;
};

Inputs MakeInputs(const ShapeCase& s, bool requires_grad, Rng* rng) {
  const int64_t hidden = s.heads * s.head_dim;
  Inputs in;
  auto make = [&](uint64_t salt) {
    Rng local(1234 + salt);
    Tensor t = Tensor::Randn({s.batch, s.seq, hidden}, &local, 0.5f);
    return requires_grad ? Variable::Parameter(std::move(t))
                         : Variable::Constant(std::move(t));
  };
  in.q = make(1);
  in.k = make(2);
  in.v = make(3);
  // Padding mask blocking the tail quarter of the key axis, as the matcher
  // does for short pairs: [B, 1, 1, Tk], 1 = blocked.
  in.mask = Tensor::Zeros({s.batch, 1, 1, s.seq});
  for (int64_t b = 0; b < s.batch; ++b) {
    for (int64_t j = s.seq - s.seq / 4; j < s.seq; ++j) {
      in.mask.data()[b * s.seq + j] = 1.0f;
    }
  }
  (void)rng;
  return in;
}

/// The exact unfused chain FusedAttention replaces, including head
/// split/merge (mirrors MultiHeadAttention::ForwardReference minus the
/// projections).
Variable ReferenceCore(const Inputs& in, const ShapeCase& s, float dropout_p,
                       bool train, Rng* rng) {
  const int64_t hidden = s.heads * s.head_dim;
  auto split = [&](const Variable& x) {
    Variable r = ag::Reshape(x, {s.batch, s.seq, s.heads, s.head_dim});
    return ag::Permute(r, {0, 2, 1, 3});
  };
  Variable q = split(in.q);
  Variable k = split(in.k);
  Variable v = split(in.v);
  const float scale = 1.0f / std::sqrt(static_cast<float>(s.head_dim));
  Variable scores = ag::MulScalar(ag::MatMul(q, k, false, true), scale);
  Variable probs = ag::MaskedSoftmax(scores, in.mask);
  probs = ag::Dropout(probs, dropout_p, train, rng);
  Variable ctx = ag::MatMul(probs, v);
  return ag::PermuteReshape(ctx, {0, 2, 1, 3}, {s.batch, s.seq, hidden});
}

Variable FusedCore(const Inputs& in, const ShapeCase& s, float dropout_p,
                   bool train, Rng* rng) {
  return ag::FusedAttention(in.q, in.k, in.v, in.mask, s.heads, dropout_p,
                            train, rng);
}

template <typename Fn>
double BestOfMs(int64_t reps, Fn&& fn) {
  double best = 1e30;
  for (int64_t r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds() * 1e3);
  }
  return best;
}

CaseResult RunCase(const ShapeCase& s, bool smoke) {
  const int64_t reps = bench::EnvInt("EMX_ATTN_REPS", smoke ? 2 : 5);
  CaseResult r;
  r.shape = s;
  Rng rng(7);

  // ---- exactness: dropout off, grad-free, element-wise bit equality.
  {
    NoGradGuard no_grad;
    Inputs in = MakeInputs(s, /*requires_grad=*/false, &rng);
    Tensor ref = ReferenceCore(in, s, 0.0f, false, &rng).value();
    Tensor fused = FusedCore(in, s, 0.0f, false, &rng).value();
    r.exact = ref.size() == fused.size() &&
              std::memcmp(ref.data(), fused.data(),
                          static_cast<size_t>(ref.size()) * sizeof(float)) == 0;
  }

  // ---- peak forward memory, grad-enabled (training forward): what each
  // path materializes on top of the shared q/k/v inputs.
  {
    Inputs in = MakeInputs(s, /*requires_grad=*/true, &rng);
    ResetTensorMemPeak();
    const int64_t base = GetTensorMemStats().live_bytes;
    { Variable out = ReferenceCore(in, s, 0.0f, false, &rng); }
    r.peak_ref_bytes = GetTensorMemStats().peak_bytes - base;
    ResetTensorMemPeak();
    { Variable out = FusedCore(in, s, 0.0f, false, &rng); }
    r.peak_fused_bytes = GetTensorMemStats().peak_bytes - base;
  }

  // ---- grad-free forward throughput (serving path).
  {
    NoGradGuard no_grad;
    Inputs in = MakeInputs(s, /*requires_grad=*/false, &rng);
    r.fwd_ref_ms =
        BestOfMs(reps, [&] { (void)ReferenceCore(in, s, 0.0f, false, &rng); });
    r.fwd_fused_ms =
        BestOfMs(reps, [&] { (void)FusedCore(in, s, 0.0f, false, &rng); });
  }

  // ---- training step: forward + backward through leaf q/k/v, dropout on
  // (both paths pay their dropout cost).
  {
    const float dropout_p =
        static_cast<float>(bench::EnvDouble("EMX_ATTN_DROPOUT", 0.1));
    Inputs in = MakeInputs(s, /*requires_grad=*/true, &rng);
    r.train_ref_ms = BestOfMs(reps, [&] {
      in.q.ZeroGrad();
      in.k.ZeroGrad();
      in.v.ZeroGrad();
      Variable loss = ag::SumAll(ReferenceCore(in, s, dropout_p, true, &rng));
      Backward(loss);
    });
    r.train_fused_ms = BestOfMs(reps, [&] {
      in.q.ZeroGrad();
      in.k.ZeroGrad();
      in.v.ZeroGrad();
      Variable loss = ag::SumAll(FusedCore(in, s, dropout_p, true, &rng));
      Backward(loss);
    });
  }

  r.fwd_speedup = r.fwd_ref_ms / r.fwd_fused_ms;
  r.train_speedup = r.train_ref_ms / r.train_fused_ms;
  return r;
}

}  // namespace
}  // namespace emx

int main(int argc, char** argv) {
  using namespace emx;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // Single-thread by default so the gate measures the kernel, not the pool.
  // setenv before the first tensor op; an exported value wins.
  setenv("EMX_NUM_THREADS", "1", /*overwrite=*/0);
  const char* threads = std::getenv("EMX_NUM_THREADS");

  const int64_t batch = bench::EnvInt("EMX_ATTN_BATCH", smoke ? 2 : 8);
  std::vector<ShapeCase> cases;
  if (smoke) {
    cases.push_back({batch, 4, 16, 32, false});
    cases.push_back({batch, 4, 16, 64, false});
  } else {
    for (int64_t seq : {32, 64, 128, 256}) {
      cases.push_back({batch, 4, 16, seq, seq == 256});
    }
    // The paper models' serving shape: 2 heads of 32 at the dataset token
    // budgets (56 everywhere, 64 for Abt-Buy).
    cases.push_back({16, 2, 32, 56, false});
    cases.push_back({16, 2, 32, 64, false});
  }

  std::printf("bench_attention — fused tiled attention vs reference chain "
              "(EMX_NUM_THREADS=%s%s)\n\n",
              threads == nullptr ? "?" : threads, smoke ? ", --smoke" : "");
  std::printf("%-22s %7s | %9s %9s %7s | %9s %9s %7s | %9s %9s\n", "shape",
              "exact", "ref fwd", "fus fwd", "fwd x", "ref trn", "fus trn",
              "trn x", "ref MiB", "fus MiB");

  std::vector<CaseResult> results;
  bool all_exact = true;
  bool memory_ok = true;
  bool speedup_ok = true;
  for (const ShapeCase& s : cases) {
    CaseResult r = RunCase(s, smoke);
    results.push_back(r);
    all_exact = all_exact && r.exact;
    memory_ok = memory_ok && r.peak_fused_bytes < r.peak_ref_bytes;
    if (r.shape.gated && r.train_speedup < 1.5) speedup_ok = false;
    char shape[64];
    std::snprintf(shape, sizeof(shape), "B%lld h%lld dh%lld T%lld",
                  static_cast<long long>(s.batch),
                  static_cast<long long>(s.heads),
                  static_cast<long long>(s.head_dim),
                  static_cast<long long>(s.seq));
    std::printf(
        "%-22s %7s | %7.2fms %7.2fms %6.2fx | %7.2fms %7.2fms %6.2fx | "
        "%9.2f %9.2f\n",
        shape, r.exact ? "yes" : "NO", r.fwd_ref_ms, r.fwd_fused_ms,
        r.fwd_speedup, r.train_ref_ms, r.train_fused_ms, r.train_speedup,
        static_cast<double>(r.peak_ref_bytes) / (1024.0 * 1024.0),
        static_cast<double>(r.peak_fused_bytes) / (1024.0 * 1024.0));
  }

  const bool gates_pass =
      all_exact && memory_ok && (smoke || speedup_ok);
  std::printf("\ngates: exact forward %s, fused peak < reference peak %s",
              all_exact ? "PASS" : "FAIL", memory_ok ? "PASS" : "FAIL");
  if (!smoke) {
    std::printf(", train speedup >= 1.5x at T=256 %s",
                speedup_ok ? "PASS" : "FAIL");
  }
  std::printf(" — %s\n", gates_pass ? "PASS" : "FAIL");

  FILE* out = std::fopen("BENCH_attention.json", "w");
  if (out == nullptr) {
    std::printf("error: cannot write BENCH_attention.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"threads\": %s,\n  \"smoke\": %s,\n",
               threads == nullptr ? "0" : threads, smoke ? "true" : "false");
  std::fprintf(out, "  \"gates_pass\": %s,\n", gates_pass ? "true" : "false");
  std::fprintf(out, "  \"cases\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::fprintf(
        out,
        "    {\"batch\": %lld, \"heads\": %lld, \"head_dim\": %lld, "
        "\"seq\": %lld, \"exact\": %s, "
        "\"fwd_ref_ms\": %.3f, \"fwd_fused_ms\": %.3f, "
        "\"fwd_speedup\": %.3f, "
        "\"train_ref_ms\": %.3f, \"train_fused_ms\": %.3f, "
        "\"train_speedup\": %.3f, "
        "\"peak_ref_bytes\": %lld, \"peak_fused_bytes\": %lld}%s\n",
        static_cast<long long>(r.shape.batch),
        static_cast<long long>(r.shape.heads),
        static_cast<long long>(r.shape.head_dim),
        static_cast<long long>(r.shape.seq), r.exact ? "true" : "false",
        r.fwd_ref_ms, r.fwd_fused_ms, r.fwd_speedup, r.train_ref_ms,
        r.train_fused_ms, r.train_speedup,
        static_cast<long long>(r.peak_ref_bytes),
        static_cast<long long>(r.peak_fused_bytes),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_attention.json\n");
  return gates_pass ? 0 : 1;
}
