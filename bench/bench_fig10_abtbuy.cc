// Reproduces Figure 10 of the paper: F1 vs fine-tuning epoch for the four
// transformer architectures on the Abt-Buy dataset (averaged over
// EMX_RUNS runs; the paper averages five). Epoch 0 is the zero-shot score.

#include "bench/bench_common.h"

int main() {
  emx::bench::RunFigureBench("Figure 10", emx::data::DatasetId::kAbtBuy);
  return 0;
}
