// Catalog-scale retrieval bench: build a generated product catalog, index
// it, and answer 1-vs-millions queries with the retrieve → int8 re-rank
// pipeline. Reports ingest rate, retrieval-only QPS, recall@k, and
// end-to-end (retrieve + transformer re-rank) QPS, and writes
// BENCH_retrieval.json with three gates:
//
//   recall      recall@k >= 0.95 for the index tier (truth record among
//               the top-k candidates)
//   save_load   a saved+reloaded index returns bit-identical candidates
//   e2e_qps     retrieve + int8 re-rank >= 50 queries/sec single-node
//               (>= 5 under --smoke, which runs the full ctest suite's
//               sanitizer jobs at a fraction of native speed)
//
// `--smoke` shrinks the catalog to seconds-long CI scale but keeps every
// gate. Environment knobs:
//
//   EMX_CATALOG_RECORDS  catalog size        (default 1000000; smoke 20000)
//   EMX_CATALOG_QUERIES  query count         (default 200; smoke 50)
//   EMX_RETRIEVE_K       candidates per query (default 50)
//   EMX_RERANK_K         re-ranked candidates (default 16)
//   EMX_CACHE_DIR        tokenizer/model cache

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/entity_matcher.h"
#include "data/generators.h"
#include "obs/metrics.h"
#include "quant/quantize_matcher.h"
#include "retrieval/catalog_matcher.h"
#include "retrieval/qgram_index.h"
#include "serve/matcher_engine.h"
#include "util/timer.h"

namespace emx {
namespace {

double HistogramMean(obs::MetricsRegistry* registry, const char* name) {
  // Re-looking up with empty bounds returns the existing histogram.
  return registry->GetHistogram(name, {})->mean();
}

}  // namespace
}  // namespace emx

int main(int argc, char** argv) {
  using namespace emx;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const int64_t num_records =
      bench::EnvInt("EMX_CATALOG_RECORDS", smoke ? 20000 : 1000000);
  const int64_t num_queries =
      bench::EnvInt("EMX_CATALOG_QUERIES", smoke ? 50 : 200);
  const int64_t retrieve_k = bench::EnvInt("EMX_RETRIEVE_K", 50);
  const int64_t rerank_k = bench::EnvInt("EMX_RERANK_K", 16);

  std::printf("bench_retrieval — %lld records, %lld queries, k=%lld, "
              "rerank=%lld%s\n\n",
              static_cast<long long>(num_records),
              static_cast<long long>(num_queries),
              static_cast<long long>(retrieve_k),
              static_cast<long long>(rerank_k), smoke ? " (--smoke)" : "");

  // ---- Generate ------------------------------------------------------------
  data::CatalogSpec spec;
  spec.num_records = num_records;
  spec.num_queries = num_queries;
  Timer gen_timer;
  data::Catalog cat = data::GenerateCatalog(spec);
  const double gen_s = gen_timer.ElapsedSeconds();
  std::printf("%-22s %10.1fs\n", "generate", gen_s);

  // ---- Index ingest --------------------------------------------------------
  Timer build_timer;
  retrieval::QGramIndex index;
  index.AddBatch(cat.records);
  const double build_s = build_timer.ElapsedSeconds();
  const double ingest_rate = static_cast<double>(num_records) / build_s;
  std::printf("%-22s %10.1fs   (%.0f records/s, %lld features, %lld stopped)\n",
              "index ingest", build_s, ingest_rate,
              static_cast<long long>(index.num_features()),
              static_cast<long long>(index.num_stop_features()));

  // ---- Retrieval-only QPS + recall@k --------------------------------------
  Timer retrieve_timer;
  int64_t hits = 0;
  for (size_t q = 0; q < cat.queries.size(); ++q) {
    for (const retrieval::ScoredId& s : index.TopK(cat.queries[q], retrieve_k)) {
      if (s.id == cat.truth[q]) {
        ++hits;
        break;
      }
    }
  }
  const double retrieve_s = retrieve_timer.ElapsedSeconds();
  const double retrieval_qps = static_cast<double>(num_queries) / retrieve_s;
  const double recall =
      static_cast<double>(hits) / static_cast<double>(num_queries);
  std::printf("%-22s %10.1f queries/s   (recall@%lld %.3f)\n",
              "retrieval only", retrieval_qps,
              static_cast<long long>(retrieve_k), recall);

  // ---- Persistence gate ----------------------------------------------------
  const std::string index_path = "/tmp/emx_bench_retrieval_index.bin";
  Timer save_timer;
  bool save_load_ok = index.Save(index_path).ok();
  const double save_s = save_timer.ElapsedSeconds();
  double load_s = 0;
  if (save_load_ok) {
    Timer load_timer;
    auto loaded = retrieval::QGramIndex::Load(index_path);
    load_s = load_timer.ElapsedSeconds();
    save_load_ok = loaded.ok();
    if (save_load_ok) {
      // Bit-identical candidate sets on every bench query.
      for (size_t q = 0; q < cat.queries.size() && save_load_ok; ++q) {
        auto a = index.TopK(cat.queries[q], retrieve_k);
        auto b = loaded.value().TopK(cat.queries[q], retrieve_k);
        save_load_ok = a.size() == b.size();
        for (size_t i = 0; i < a.size() && save_load_ok; ++i) {
          save_load_ok = a[i].id == b[i].id && a[i].score == b[i].score;
        }
      }
    }
  }
  std::filesystem::remove(index_path);
  std::printf("%-22s save %.1fs, load %.1fs — %s\n", "persistence", save_s,
              load_s, save_load_ok ? "bit-identical" : "MISMATCH");

  // ---- End-to-end: retrieve + int8 re-rank --------------------------------
  pretrain::ZooOptions zoo = bench::BenchZoo();
  if (smoke) {
    // CI-scale zoo: tokenizer-only, tiny corpus, private cache.
    zoo.cache_dir = bench::EnvString("EMX_CACHE_DIR",
                                     "/tmp/emx_zoo_retrieval_bench");
    zoo.vocab_size = 500;
    zoo.corpus.num_documents = 150;
  }
  zoo.skip_pretraining = true;  // QPS does not depend on weight quality
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  core::EntityMatcher matcher(std::move(bundle).value());
  matcher.set_eval_max_seq_len(48);
  quant::CalibrationData calib;
  for (size_t i = 0; i < 8 && i < cat.records.size(); ++i) {
    calib.texts_a.push_back(cat.queries[i % cat.queries.size()]);
    calib.texts_b.push_back(cat.records[i]);
  }
  calib.batch_size = 4;
  if (auto report = quant::QuantizeMatcher(&matcher, calib); !report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return 1;
  }

  serve::EngineOptions eopts;
  eopts.precision = serve::Precision::kInt8;
  eopts.max_seq_len = 48;
  eopts.max_batch_size = rerank_k;  // one query's re-rank = one micro-batch
  eopts.max_wait_us = 2000;
  retrieval::CatalogOptions copts;
  copts.retrieve_k = retrieve_k;
  copts.rerank_k = rerank_k;
  copts.top_k = 5;
  serve::MatcherEngine engine(&matcher, eopts);
  retrieval::CatalogMatcher catalog(&engine, copts);
  catalog.AddBatch(cat.records);

  Timer e2e_timer;
  int64_t e2e_hits = 0;
  int64_t e2e_errors = 0;
  for (size_t q = 0; q < cat.queries.size(); ++q) {
    auto matches = catalog.FindMatches(cat.queries[q]);
    if (!matches.ok()) {
      ++e2e_errors;
      continue;
    }
    for (const retrieval::CatalogMatch& m : matches.value()) {
      if (m.id == cat.truth[q]) {
        ++e2e_hits;
        break;
      }
    }
  }
  const double e2e_s = e2e_timer.ElapsedSeconds();
  const double e2e_qps = static_cast<double>(num_queries) / e2e_s;
  const double e2e_recall =
      static_cast<double>(e2e_hits) / static_cast<double>(num_queries);
  const double retrieve_mean_us =
      HistogramMean(catalog.registry(), "catalog.retrieve_us");
  const double rerank_mean_us =
      HistogramMean(catalog.registry(), "catalog.rerank_us");
  std::printf("%-22s %10.1f queries/s   (top-%lld recall %.3f, retrieve "
              "%.0fus, rerank %.0fus, %lld errors)\n",
              "retrieve + int8 rerank", e2e_qps,
              static_cast<long long>(copts.top_k), e2e_recall,
              retrieve_mean_us, rerank_mean_us,
              static_cast<long long>(e2e_errors));

  // ---- Gates ---------------------------------------------------------------
  const double qps_floor = smoke ? 5.0 : 50.0;
  const bool recall_ok = recall >= 0.95;
  const bool qps_ok = e2e_qps >= qps_floor;
  const bool gates_pass = recall_ok && save_load_ok && qps_ok;
  std::printf("\ngates: recall@%lld >= 0.95 %s, save/load bit-identical %s, "
              "e2e >= %.0f qps %s — %s\n",
              static_cast<long long>(retrieve_k), recall_ok ? "PASS" : "FAIL",
              save_load_ok ? "PASS" : "FAIL", qps_floor,
              qps_ok ? "PASS" : "FAIL", gates_pass ? "PASS" : "FAIL");

  FILE* out = std::fopen("BENCH_retrieval.json", "w");
  if (out == nullptr) {
    std::printf("error: cannot write BENCH_retrieval.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"gates_pass\": %s,\n", gates_pass ? "true" : "false");
  std::fprintf(out, "  \"num_records\": %lld,\n",
               static_cast<long long>(num_records));
  std::fprintf(out, "  \"num_queries\": %lld,\n",
               static_cast<long long>(num_queries));
  std::fprintf(out, "  \"retrieve_k\": %lld,\n",
               static_cast<long long>(retrieve_k));
  std::fprintf(out, "  \"rerank_k\": %lld,\n",
               static_cast<long long>(rerank_k));
  std::fprintf(out, "  \"generate_seconds\": %.2f,\n", gen_s);
  std::fprintf(out, "  \"ingest_records_per_sec\": %.1f,\n", ingest_rate);
  std::fprintf(out, "  \"index_features\": %lld,\n",
               static_cast<long long>(index.num_features()));
  std::fprintf(out, "  \"index_stop_features\": %lld,\n",
               static_cast<long long>(index.num_stop_features()));
  std::fprintf(out, "  \"retrieval_qps\": %.2f,\n", retrieval_qps);
  std::fprintf(out, "  \"recall_at_k\": %.4f,\n", recall);
  std::fprintf(out, "  \"save_seconds\": %.2f,\n", save_s);
  std::fprintf(out, "  \"load_seconds\": %.2f,\n", load_s);
  std::fprintf(out, "  \"save_load_bit_identical\": %s,\n",
               save_load_ok ? "true" : "false");
  std::fprintf(out, "  \"e2e_qps\": %.2f,\n", e2e_qps);
  std::fprintf(out, "  \"e2e_recall_top5\": %.4f,\n", e2e_recall);
  std::fprintf(out, "  \"e2e_errors\": %lld,\n",
               static_cast<long long>(e2e_errors));
  std::fprintf(out, "  \"retrieve_mean_us\": %.1f,\n", retrieve_mean_us);
  std::fprintf(out, "  \"rerank_mean_us\": %.1f\n", rerank_mean_us);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_retrieval.json\n");
  return gates_pass ? 0 : 1;
}
