// Micro-benchmarks (google-benchmark) for the compute kernels underlying
// the reproduction: matmul, softmax, LayerNorm, a full encoder-layer
// forward/backward, the three subword tokenizers, and the autograd tape
// overhead. These are the knobs that determine the Table 6 timings.

#include <benchmark/benchmark.h>

#include "models/encoder.h"
#include "nn/attention.h"
#include "nn/optimizer.h"
#include "pretrain/corpus.h"
#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"
#include "tokenizers/byte_bpe.h"
#include "tokenizers/unigram.h"
#include "tokenizers/wordpiece.h"
#include "util/rng.h"

namespace emx {
namespace {

namespace ag = autograd;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

/// The pre-rewrite triple-loop kernel, kept as ops::MatMulNaive; the ratio
/// BM_MatMul/256 : BM_MatMulNaive/256 is the blocked-GEMM speedup.
void BM_MatMulNaive(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMulNaive(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulNaive)->Arg(256);

void BM_MatMulTransB(benchmark::State& state) {
  // The attention-score shape: A [M,K] x B^T with B stored [N,K].
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b, false, true));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulTransB)->Arg(256);

void BM_BatchedAttentionMatMul(benchmark::State& state) {
  // The QK^T shape of a fine-tuning batch: [16, 2, 56, 32] x transpose.
  Rng rng(2);
  Tensor q = Tensor::Randn({16, 2, 56, 32}, &rng);
  Tensor k = Tensor::Randn({16, 2, 56, 32}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(q, k, false, true));
  }
}
BENCHMARK(BM_BatchedAttentionMatMul);

// ---- Fused attention micro-shapes ------------------------------------------
// T in {32, 64, 128, 256} x heads in {4, 12}; hidden follows heads at
// head_dim 16. Args: (seq, heads).

void BM_FusedAttentionForward(benchmark::State& state) {
  const int64_t t = state.range(0);
  const int64_t heads = state.range(1);
  const int64_t hidden = heads * 16;
  Rng rng(31);
  NoGradGuard no_grad;
  Variable q = Variable::Constant(Tensor::Randn({4, t, hidden}, &rng));
  Variable k = Variable::Constant(Tensor::Randn({4, t, hidden}, &rng));
  Variable v = Variable::Constant(Tensor::Randn({4, t, hidden}, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ag::FusedAttention(q, k, v, Tensor(), heads, 0.0f, false, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * 4 * heads * t * t * 16 * 4);
}
BENCHMARK(BM_FusedAttentionForward)
    ->ArgsProduct({{32, 64, 128, 256}, {4, 12}});

void BM_ReferenceAttentionForward(benchmark::State& state) {
  // The unfused chain at the same shapes: split heads, QK^T, scale,
  // softmax, PV, merge heads.
  const int64_t t = state.range(0);
  const int64_t heads = state.range(1);
  const int64_t hidden = heads * 16;
  Rng rng(31);
  NoGradGuard no_grad;
  Variable q = Variable::Constant(Tensor::Randn({4, t, hidden}, &rng));
  Variable k = Variable::Constant(Tensor::Randn({4, t, hidden}, &rng));
  Variable v = Variable::Constant(Tensor::Randn({4, t, hidden}, &rng));
  auto split = [&](const Variable& x) {
    return ag::Permute(ag::Reshape(x, {4, t, heads, 16}), {0, 2, 1, 3});
  };
  const float scale = 0.25f;  // 1/sqrt(head_dim 16)
  for (auto _ : state) {
    Variable scores =
        ag::MulScalar(ag::MatMul(split(q), split(k), false, true), scale);
    Variable ctx = ag::MatMul(ag::Softmax(scores), split(v));
    benchmark::DoNotOptimize(
        ag::PermuteReshape(ctx, {0, 2, 1, 3}, {4, t, hidden}));
  }
  state.SetItemsProcessed(state.iterations() * 4 * heads * t * t * 16 * 4);
}
BENCHMARK(BM_ReferenceAttentionForward)
    ->ArgsProduct({{32, 64, 128, 256}, {4, 12}});

void BM_FusedAttentionForwardBackward(benchmark::State& state) {
  const int64_t t = state.range(0);
  const int64_t heads = state.range(1);
  const int64_t hidden = heads * 16;
  Rng rng(32);
  Tensor qt = Tensor::Randn({4, t, hidden}, &rng);
  Tensor kt = Tensor::Randn({4, t, hidden}, &rng);
  Tensor vt = Tensor::Randn({4, t, hidden}, &rng);
  for (auto _ : state) {
    Variable q = Variable::Parameter(qt);
    Variable k = Variable::Parameter(kt);
    Variable v = Variable::Parameter(vt);
    Backward(ag::SumAll(
        ag::FusedAttention(q, k, v, Tensor(), heads, 0.0f, true, &rng)));
    benchmark::DoNotOptimize(q.grad()[0]);
  }
}
BENCHMARK(BM_FusedAttentionForwardBackward)
    ->ArgsProduct({{32, 64, 128, 256}, {4, 12}});

void BM_Softmax(benchmark::State& state) {
  Rng rng(3);
  Tensor x = Tensor::Randn({16 * 2 * 56, 56}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(x));
  }
}
BENCHMARK(BM_Softmax);

void BM_LayerNorm(benchmark::State& state) {
  Rng rng(4);
  Tensor x = Tensor::Randn({16 * 56, 64}, &rng);
  Tensor gamma = Tensor::Ones({64});
  Tensor beta = Tensor::Zeros({64});
  Tensor mean, rstd;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::LayerNormForward(x, gamma, beta, 1e-5f, &mean, &rstd));
  }
}
BENCHMARK(BM_LayerNorm);

void BM_EncoderLayerForward(benchmark::State& state) {
  Rng rng(5);
  nn::TransformerEncoderLayer layer(64, 2, 256, &rng);
  Tensor x = Tensor::Randn({16, 56, 64}, &rng);
  for (auto _ : state) {
    Variable v = Variable::Constant(x);
    benchmark::DoNotOptimize(layer.Forward(v, Tensor(), 0.0f, false, &rng));
  }
}
BENCHMARK(BM_EncoderLayerForward);

void BM_EncoderLayerForwardBackward(benchmark::State& state) {
  Rng rng(6);
  nn::TransformerEncoderLayer layer(64, 2, 256, &rng);
  Tensor x = Tensor::Randn({16, 56, 64}, &rng);
  for (auto _ : state) {
    layer.ZeroGrad();
    Variable v = Variable::Constant(x);
    Variable y = layer.Forward(v, Tensor(), 0.0f, true, &rng);
    Variable loss = ag::MeanAll(ag::Mul(y, y));
    Backward(loss);
    benchmark::DoNotOptimize(loss.value()[0]);
  }
}
BENCHMARK(BM_EncoderLayerForwardBackward);

/// Shared tokenizer corpus for the encode benchmarks.
const std::vector<std::string>& TokCorpus() {
  static auto* corpus = new std::vector<std::string>([] {
    pretrain::CorpusOptions copts;
    copts.num_documents = 300;
    return pretrain::FlattenCorpus(pretrain::GenerateCorpus(copts));
  }());
  return *corpus;
}

void BM_WordPieceEncode(benchmark::State& state) {
  tokenizers::WordPieceTrainerOptions opts;
  opts.vocab_size = 800;
  static auto* tok = new tokenizers::WordPieceTokenizer(
      tokenizers::WordPieceTokenizer::Train(TokCorpus(), opts));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok->Encode(TokCorpus()[i++ % TokCorpus().size()]));
  }
}
BENCHMARK(BM_WordPieceEncode);

void BM_ByteBpeEncode(benchmark::State& state) {
  tokenizers::ByteBpeTrainerOptions opts;
  opts.vocab_size = 800;
  static auto* tok = new tokenizers::ByteBpeTokenizer(
      tokenizers::ByteBpeTokenizer::Train(TokCorpus(), opts));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok->Encode(TokCorpus()[i++ % TokCorpus().size()]));
  }
}
BENCHMARK(BM_ByteBpeEncode);

void BM_UnigramEncode(benchmark::State& state) {
  tokenizers::UnigramTrainerOptions opts;
  opts.vocab_size = 800;
  opts.em_iterations = 2;
  static auto* tok = new tokenizers::UnigramTokenizer(
      tokenizers::UnigramTokenizer::Train(TokCorpus(), opts));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tok->Encode(TokCorpus()[i++ % TokCorpus().size()]));
  }
}
BENCHMARK(BM_UnigramEncode);

void BM_AdamStep(benchmark::State& state) {
  // One optimizer step over a BERT-scale (for this repro) parameter set.
  Rng rng(8);
  std::vector<nn::NamedParam> params;
  std::vector<Variable> vars;
  for (int i = 0; i < 8; ++i) {
    Variable v = Variable::Parameter(Tensor::Randn({256, 64}, &rng));
    v.node()->EnsureGrad().AddInPlace(Tensor::Randn({256, 64}, &rng));
    params.push_back({"w" + std::to_string(i), v});
    vars.push_back(v);
  }
  nn::AdamOptions opts;
  nn::Adam adam(params, opts);
  for (auto _ : state) {
    adam.Step();
    benchmark::DoNotOptimize(vars[0].value()[0]);
  }
}
BENCHMARK(BM_AdamStep);

void BM_AutogradTapeOverhead(benchmark::State& state) {
  // Chain of cheap elementwise ops: measures tape bookkeeping per op.
  Rng rng(7);
  Tensor x = Tensor::Randn({64}, &rng);
  for (auto _ : state) {
    Variable v = Variable::Parameter(x);
    for (int i = 0; i < 20; ++i) v = ag::AddScalar(v, 0.1f);
    Backward(ag::SumAll(v));
    benchmark::DoNotOptimize(v.value()[0]);
  }
}
BENCHMARK(BM_AutogradTapeOverhead);

}  // namespace
}  // namespace emx

BENCHMARK_MAIN();
