// Reproduces Figure 14 of the paper: F1 vs fine-tuning epoch for the four
// transformer architectures on the DBLP-Scholar dataset (averaged over
// EMX_RUNS runs; the paper averages five). Epoch 0 is the zero-shot score.

#include "bench/bench_common.h"

int main() {
  emx::bench::RunFigureBench("Figure 14", emx::data::DatasetId::kDblpScholar);
  return 0;
}
