// Reproduces Table 4 of the paper: the pre-trained models used in the
// experiments. Prints the paper's original configurations next to this
// reproduction's scaled-down models (which preserve the architectural
// relations: DistilBERT = half of BERT's layers, RoBERTa = BERT body
// without NSP, XLNet = BERT-depth with relative attention), including the
// actual parameter counts of the instantiated models.

#include <cstdio>

#include "bench/bench_common.h"
#include "models/config.h"
#include "models/transformer.h"
#include "util/rng.h"

int main() {
  using namespace emx;
  std::printf("Table 4: Pre-trained models used in our experiments.\n\n");
  std::printf("Paper-scale originals:\n");
  std::printf("%-12s %8s %8s %8s %8s  %s\n", "Transformer", "layers", "hidden",
              "heads", "params", "details");
  for (const auto& e : models::PaperScaleConfigs()) {
    std::printf("%-12s %8lld %8lld %8lld %8s  %s\n", e.name,
                static_cast<long long>(e.layers),
                static_cast<long long>(e.hidden),
                static_cast<long long>(e.heads), e.params, e.details);
  }

  std::printf("\nThis reproduction (pre-trained from scratch, cached):\n");
  std::printf("%-12s %8s %8s %8s %10s  %s\n", "Transformer", "layers",
              "hidden", "heads", "params", "notes");
  Rng rng(1);
  const int64_t vocab = 1000;
  for (auto arch : {models::Architecture::kBert, models::Architecture::kXlnet,
                    models::Architecture::kRoberta,
                    models::Architecture::kDistilBert}) {
    auto cfg = models::TransformerConfig::Scaled(arch, vocab);
    auto model = models::CreateTransformer(cfg, &rng);
    const char* notes = "";
    switch (arch) {
      case models::Architecture::kBert:
        notes = "MLM + NSP, static masking, token-type embeddings";
        break;
      case models::Architecture::kXlnet:
        notes = "permutation LM, two-stream relative attention";
        break;
      case models::Architecture::kRoberta:
        notes = "MLM only, dynamic masking, byte-level BPE";
        break;
      case models::Architecture::kDistilBert:
        notes = "distilled from BERT; no pooler/token types";
        break;
    }
    std::printf("%-12s %8lld %8lld %8lld %10lld  %s\n",
                models::ArchitectureName(arch),
                static_cast<long long>(cfg.num_layers),
                static_cast<long long>(cfg.hidden),
                static_cast<long long>(cfg.num_heads),
                static_cast<long long>(model->NumParameters()), notes);
  }
  std::printf("\nShape checks: DistilBERT has half of BERT's layers and the "
              "fewest parameters;\nXLNet carries extra relative-attention "
              "parameters at equal depth.\n");
  return 0;
}
