// Sharded serving fleet bench: N MatchServer shards (each wrapping its own
// MatcherEngine over shared read-only weights) behind a FleetRouter, driven
// over real loopback sockets by an external load generator. Three
// experiments, each with a gate, written to BENCH_fleet.json:
//
//   scaling     closed-loop throughput at 4 shards >= 3.0x the 1-shard
//               fleet (>= 1.5x at the smoke scale of 2 shards)
//   straggler   with one shard slowed 10x, hedged requests cut served p99
//               to <= 0.5x the un-hedged run at unchanged (+/-10%) p50
//   overload    at 2x the fleet's capacity, admission control fast-fails
//               with ResourceExhausted (reject p99 <= 5ms) while served
//               p99 stays within 1.5x of the non-overloaded run
//
// The per-shard service rate is pinned by ServerOptions::artificial_service_us
// (a serialized minimum service time on each shard's response path), which
// makes the fleet delay-bound rather than CPU-bound — so the scaling and
// tail gates are meaningful on the 1-core CI hosts this runs on. The model
// forward still runs on every request; the knob only sets a floor.
//
// `--smoke` shrinks to 2 shards and CI-scale request counts but keeps every
// gate. Environment knobs:
//
//   EMX_FLEET_SHARDS      shard count          (default 4; smoke 2)
//   EMX_FLEET_SERVICE_US  per-shard service µs (default 8000)
//   EMX_FLEET_REQUESTS    requests/experiment  (default 240; smoke 80)
//   EMX_CACHE_DIR         tokenizer/model cache

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/entity_matcher.h"
#include "net/fleet_router.h"
#include "net/match_server.h"
#include "pretrain/model_zoo.h"
#include "serve/matcher_engine.h"
#include "util/timer.h"

namespace emx {
namespace {

using Clock = std::chrono::steady_clock;

double PercentileMs(std::vector<double> us, double q) {
  if (us.empty()) return 0;
  std::sort(us.begin(), us.end());
  const double idx = q * static_cast<double>(us.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, us.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return (us[lo] + (us[hi] - us[lo]) * frac) / 1000.0;
}

/// One fleet: engines + socket servers on ephemeral loopback ports. Every
/// engine shares one EntityMatcher — grad-free forwards only read the
/// weights, so shards need no weight copies.
struct Fleet {
  std::vector<std::unique_ptr<serve::MatcherEngine>> engines;
  std::vector<std::unique_ptr<net::MatchServer>> servers;

  static serve::EngineOptions EngineOpts() {
    serve::EngineOptions opts;
    opts.max_seq_len = 32;
    opts.bucket_width = 32;
    opts.max_batch_size = 8;
    opts.max_wait_us = 1000;
    return opts;
  }

  /// `straggler` < 0 for a healthy fleet; otherwise that shard's service
  /// time is multiplied by `straggler_mult`.
  static Fleet Start(core::EntityMatcher* matcher, int shards,
                     int64_t service_us, int straggler = -1,
                     int64_t straggler_mult = 10) {
    Fleet fleet;
    for (int i = 0; i < shards; ++i) {
      fleet.engines.push_back(
          std::make_unique<serve::MatcherEngine>(matcher, EngineOpts()));
      net::ServerOptions sopts;
      sopts.port = 0;  // ephemeral
      sopts.artificial_service_us =
          i == straggler ? service_us * straggler_mult : service_us;
      fleet.servers.push_back(std::make_unique<net::MatchServer>(
          fleet.engines.back().get(), sopts));
      const Status st = fleet.servers.back()->Start();
      if (!st.ok()) {
        std::printf("fatal: shard %d failed to start: %s\n", i,
                    st.ToString().c_str());
        std::exit(1);
      }
    }
    return fleet;
  }

  Status Connect(net::FleetRouter* router) const {
    for (const auto& server : servers) {
      EMX_RETURN_IF_ERROR(router->AddRemoteShard(server->port()));
    }
    return Status::OK();
  }

  void Stop() {
    for (auto& server : servers) server->Stop();
  }
};

struct RunStats {
  double wall_s = 0;
  double throughput_rps = 0;
  std::vector<double> served_us;  // OK completions, router-measured
  int64_t served = 0;
  int64_t rejected = 0;
  int64_t errors = 0;
  int64_t hedged = 0;
  std::vector<double> reject_us;  // Submit -> synchronous reject
};

/// Closed loop: `threads` clients each run `n / threads` synchronous
/// round trips — measures the fleet's saturated throughput.
RunStats RunClosedLoop(net::FleetRouter* router, int64_t n, int threads,
                       const char* tag) {
  RunStats stats;
  std::vector<std::vector<double>> lat(threads);
  std::vector<std::thread> workers;
  Timer timer;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const int64_t per = n / threads;
      for (int64_t i = 0; i < per; ++i) {
        const std::string id = std::string(tag) + " " + std::to_string(t) +
                               "-" + std::to_string(i);
        net::RouteResult r =
            router->Match("fleet item " + id, "fleet product " + id);
        if (r.status.ok()) lat[t].push_back(r.total_us);
      }
    });
  }
  for (auto& w : workers) w.join();
  stats.wall_s = timer.ElapsedSeconds();
  for (auto& v : lat) {
    stats.served += static_cast<int64_t>(v.size());
    stats.served_us.insert(stats.served_us.end(), v.begin(), v.end());
  }
  stats.errors = n / threads * threads - stats.served;
  stats.throughput_rps = static_cast<double>(stats.served) / stats.wall_s;
  return stats;
}

/// Open loop: submits `n` requests at a fixed arrival rate regardless of
/// completions (the honest way to measure tail latency and overload — a
/// closed loop self-throttles and hides both).
RunStats RunOpenLoop(net::FleetRouter* router, int64_t n, double rate_rps,
                     const char* tag) {
  RunStats stats;
  std::vector<std::future<net::RouteResult>> futures;
  futures.reserve(n);
  const auto interval =
      std::chrono::nanoseconds(static_cast<int64_t>(1e9 / rate_rps));
  Timer timer;
  const auto start = Clock::now();
  for (int64_t i = 0; i < n; ++i) {
    std::this_thread::sleep_until(start + interval * i);
    const std::string id = std::string(tag) + " " + std::to_string(i);
    const auto t0 = Clock::now();
    auto fut = router->Submit("fleet item " + id, "fleet product " + id);
    // Admission rejects resolve synchronously inside Submit; harvesting
    // them here measures the actual fail-fast latency.
    if (fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      net::RouteResult r = fut.get();
      if (r.status.code() == StatusCode::kResourceExhausted) {
        ++stats.rejected;
        stats.reject_us.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - t0)
                .count());
        continue;
      }
      if (r.status.ok()) {
        ++stats.served;
        stats.served_us.push_back(r.total_us);
        if (r.hedged) ++stats.hedged;
      } else {
        ++stats.errors;
      }
      continue;
    }
    futures.push_back(std::move(fut));
  }
  for (auto& fut : futures) {
    net::RouteResult r = fut.get();
    if (r.status.ok()) {
      ++stats.served;
      stats.served_us.push_back(r.total_us);
      if (r.hedged) ++stats.hedged;
    } else if (r.status.code() == StatusCode::kResourceExhausted) {
      ++stats.rejected;
    } else {
      ++stats.errors;
    }
  }
  stats.wall_s = timer.ElapsedSeconds();
  stats.throughput_rps = static_cast<double>(stats.served) / stats.wall_s;
  return stats;
}

}  // namespace
}  // namespace emx

int main(int argc, char** argv) {
  using namespace emx;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const int shards =
      static_cast<int>(bench::EnvInt("EMX_FLEET_SHARDS", smoke ? 2 : 4));
  const int64_t service_us = bench::EnvInt("EMX_FLEET_SERVICE_US", 8000);
  const int64_t n = bench::EnvInt("EMX_FLEET_REQUESTS", smoke ? 80 : 240);
  const double shard_rps = 1e6 / static_cast<double>(service_us);
  const double fleet_rps = shard_rps * shards;

  std::printf("bench_fleet — %d shards, %lldus service floor (%.0f rps/shard),"
              " %lld requests/experiment%s\n\n",
              shards, static_cast<long long>(service_us), shard_rps,
              static_cast<long long>(n), smoke ? " (--smoke)" : "");

  // ---- Model (tiny, random weights: serving rate does not depend on
  // weight quality; the tokenizer is trained and cached) --------------------
  pretrain::ZooOptions zoo;
  zoo.cache_dir = bench::EnvString("EMX_CACHE_DIR", "/tmp/emx_zoo_fleet_bench");
  zoo.vocab_size = 500;
  zoo.corpus.num_documents = 150;
  zoo.skip_pretraining = true;
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
  if (!bundle.ok()) {
    std::printf("error: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  core::EntityMatcher matcher(std::move(bundle).value());
  matcher.set_eval_max_seq_len(32);

  // ---- Experiment 1: throughput scaling, 1 shard vs N shards --------------
  double tput_one = 0, tput_many = 0;
  {
    Fleet one = Fleet::Start(&matcher, 1, service_us);
    net::RouterOptions ropts;
    ropts.policy = net::RoutePolicy::kLeastLoaded;
    ropts.hedging = false;
    net::FleetRouter router(ropts);
    if (Status st = one.Connect(&router); !st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return 1;
    }
    RunStats s = RunClosedLoop(&router, n, /*threads=*/8, "scale1");
    tput_one = s.throughput_rps;
    std::printf("%-26s %8.1f rps   (%lld served, p99 %.1fms)\n",
                "scaling: 1 shard", tput_one,
                static_cast<long long>(s.served),
                PercentileMs(s.served_us, 0.99));
    router.Shutdown();
    one.Stop();
  }
  {
    Fleet many = Fleet::Start(&matcher, shards, service_us);
    net::RouterOptions ropts;
    ropts.policy = net::RoutePolicy::kLeastLoaded;
    ropts.hedging = false;
    net::FleetRouter router(ropts);
    if (Status st = many.Connect(&router); !st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return 1;
    }
    RunStats s =
        RunClosedLoop(&router, n * shards, /*threads=*/8 * shards, "scaleN");
    tput_many = s.throughput_rps;
    std::printf("%-26s %8.1f rps   (%lld served, p99 %.1fms)\n",
                ("scaling: " + std::to_string(shards) + " shards").c_str(),
                tput_many, static_cast<long long>(s.served),
                PercentileMs(s.served_us, 0.99));
    router.Shutdown();
    many.Stop();
  }
  const double speedup = tput_many / tput_one;
  const double speedup_floor = smoke ? 1.5 : 3.0;
  std::printf("%-26s %8.2fx  (floor %.1fx)\n\n", "scaling speedup", speedup,
              speedup_floor);

  // ---- Experiment 2: straggler + hedged retries ---------------------------
  // One shard 10x slower; open-loop at 30% of the healthy fleet rate (so
  // the healthy shards absorb the hedge overflow without saturating). The
  // consistent hash keeps sending the straggler its share of the key space
  // either way — the only difference between the runs is hedging.
  const double straggler_rate = 0.3 * fleet_rps;
  RunStats unhedged, hedged;
  {
    Fleet fleet = Fleet::Start(&matcher, shards, service_us, /*straggler=*/0);
    {
      net::RouterOptions ropts;
      ropts.policy = net::RoutePolicy::kConsistentHash;
      ropts.hedging = false;
      net::FleetRouter router(ropts);
      if (!fleet.Connect(&router).ok()) return 1;
      unhedged = RunOpenLoop(&router, n, straggler_rate, "laggard");
      router.Shutdown();
    }
    {
      net::RouterOptions ropts;
      ropts.policy = net::RoutePolicy::kConsistentHash;
      ropts.hedging = true;
      ropts.hedge_quantile = 0.70;
      // 3x the healthy service floor: only genuine stragglers cross it, so
      // the hedge overflow onto healthy shards stays small enough to leave
      // their median (the fleet p50) in place.
      ropts.hedge_min_us = 3 * service_us;
      ropts.hedge_poll_us = 1000;
      net::FleetRouter router(ropts);
      if (!fleet.Connect(&router).ok()) return 1;
      // Identical request texts => identical hash placement per run.
      hedged = RunOpenLoop(&router, n, straggler_rate, "laggard");
      router.Shutdown();
    }
    fleet.Stop();
  }
  const double unhedged_p50 = PercentileMs(unhedged.served_us, 0.5);
  const double unhedged_p99 = PercentileMs(unhedged.served_us, 0.99);
  const double hedged_p50 = PercentileMs(hedged.served_us, 0.5);
  const double hedged_p99 = PercentileMs(hedged.served_us, 0.99);
  std::printf("%-26s p50 %7.1fms  p99 %8.1fms  (%lld served)\n",
              "straggler: unhedged", unhedged_p50, unhedged_p99,
              static_cast<long long>(unhedged.served));
  std::printf("%-26s p50 %7.1fms  p99 %8.1fms  (%lld served, %lld hedged)\n\n",
              "straggler: hedged", hedged_p50, hedged_p99,
              static_cast<long long>(hedged.served),
              static_cast<long long>(hedged.hedged));

  // ---- Experiment 3: overload + admission control -------------------------
  // Open loop at 0.4x and 2.0x fleet capacity with a tight in-flight
  // budget: overload must degrade into fast rejections, not latency
  // collapse for the admitted requests. (0.4x keeps the non-overloaded
  // reference clean of CPU-contention noise on 1-core CI hosts.)
  RunStats baseline, overload;
  {
    Fleet fleet = Fleet::Start(&matcher, shards, service_us);
    net::RouterOptions ropts;
    ropts.policy = net::RoutePolicy::kLeastLoaded;
    ropts.hedging = false;
    // One request per shard: admitted requests never queue behind each
    // other, so overload cannot move the served tail.
    ropts.max_in_flight = shards;
    {
      net::FleetRouter router(ropts);
      if (!fleet.Connect(&router).ok()) return 1;
      baseline = RunOpenLoop(&router, n, 0.4 * fleet_rps, "baseline");
      router.Shutdown();
    }
    {
      net::FleetRouter router(ropts);
      if (!fleet.Connect(&router).ok()) return 1;
      overload = RunOpenLoop(&router, n, 2.0 * fleet_rps, "overload");
      router.Shutdown();
    }
    fleet.Stop();
  }
  const double baseline_p99 = PercentileMs(baseline.served_us, 0.99);
  const double overload_p99 = PercentileMs(overload.served_us, 0.99);
  const double reject_p99 = PercentileMs(overload.reject_us, 0.99);
  std::printf("%-26s p99 %7.1fms  (%lld served, %lld rejected)\n",
              "overload: 0.4x capacity", baseline_p99,
              static_cast<long long>(baseline.served),
              static_cast<long long>(baseline.rejected));
  std::printf("%-26s p99 %7.1fms  (%lld served, %lld rejected, reject p99 "
              "%.3fms)\n\n",
              "overload: 2.0x capacity", overload_p99,
              static_cast<long long>(overload.served),
              static_cast<long long>(overload.rejected), reject_p99);

  // ---- Gates ---------------------------------------------------------------
  const bool scaling_ok = speedup >= speedup_floor;
  const bool hedge_p99_ok = hedged_p99 <= 0.5 * unhedged_p99;
  // At full scale the straggler holds a minority (1/shards) of the hash
  // ring, so the median is served by healthy shards in both runs and must
  // not move (+/-10%). At smoke scale (2 shards) the straggler owns ~half
  // the ring and dominates the unhedged median, so "unchanged" is the
  // wrong shape — the gate degrades to one-sided (hedging must not hurt
  // the median).
  const bool hedge_p50_ok =
      unhedged_p50 > 0 &&
      (smoke ? hedged_p50 <= 1.10 * unhedged_p50
             : std::fabs(hedged_p50 / unhedged_p50 - 1.0) <= 0.10);
  const bool overload_rejects = overload.rejected > 0;
  const bool reject_fast = reject_p99 <= 5.0;
  const bool overload_p99_ok = overload_p99 <= 1.5 * baseline_p99;
  const bool errors_ok = unhedged.errors + hedged.errors + baseline.errors +
                             overload.errors ==
                         0;
  const bool gates_pass = scaling_ok && hedge_p99_ok && hedge_p50_ok &&
                          overload_rejects && reject_fast && overload_p99_ok &&
                          errors_ok;
  std::printf("gates: scaling >= %.1fx %s, hedged p99 <= 0.5x %s, hedged p50 "
              "+/-10%% %s, overload rejects %s, reject p99 <= 5ms %s, "
              "overload p99 <= 1.5x %s, zero errors %s — %s\n",
              speedup_floor, scaling_ok ? "PASS" : "FAIL",
              hedge_p99_ok ? "PASS" : "FAIL", hedge_p50_ok ? "PASS" : "FAIL",
              overload_rejects ? "PASS" : "FAIL",
              reject_fast ? "PASS" : "FAIL",
              overload_p99_ok ? "PASS" : "FAIL", errors_ok ? "PASS" : "FAIL",
              gates_pass ? "PASS" : "FAIL");

  FILE* out = std::fopen("BENCH_fleet.json", "w");
  if (out == nullptr) {
    std::printf("error: cannot write BENCH_fleet.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"gates_pass\": %s,\n", gates_pass ? "true" : "false");
  std::fprintf(out, "  \"shards\": %d,\n", shards);
  std::fprintf(out, "  \"service_us\": %lld,\n",
               static_cast<long long>(service_us));
  std::fprintf(out, "  \"requests_per_experiment\": %lld,\n",
               static_cast<long long>(n));
  std::fprintf(out, "  \"throughput_1_shard_rps\": %.1f,\n", tput_one);
  std::fprintf(out, "  \"throughput_n_shards_rps\": %.1f,\n", tput_many);
  std::fprintf(out, "  \"scaling_speedup\": %.2f,\n", speedup);
  std::fprintf(out, "  \"scaling_floor\": %.1f,\n", speedup_floor);
  std::fprintf(out, "  \"straggler_unhedged_p50_ms\": %.2f,\n", unhedged_p50);
  std::fprintf(out, "  \"straggler_unhedged_p99_ms\": %.2f,\n", unhedged_p99);
  std::fprintf(out, "  \"straggler_hedged_p50_ms\": %.2f,\n", hedged_p50);
  std::fprintf(out, "  \"straggler_hedged_p99_ms\": %.2f,\n", hedged_p99);
  std::fprintf(out, "  \"straggler_hedged_requests\": %lld,\n",
               static_cast<long long>(hedged.hedged));
  std::fprintf(out, "  \"overload_baseline_p99_ms\": %.2f,\n", baseline_p99);
  std::fprintf(out, "  \"overload_served_p99_ms\": %.2f,\n", overload_p99);
  std::fprintf(out, "  \"overload_served\": %lld,\n",
               static_cast<long long>(overload.served));
  std::fprintf(out, "  \"overload_rejected\": %lld,\n",
               static_cast<long long>(overload.rejected));
  std::fprintf(out, "  \"overload_reject_p99_ms\": %.3f,\n", reject_p99);
  std::fprintf(out, "  \"errors\": %lld\n",
               static_cast<long long>(unhedged.errors + hedged.errors +
                                      baseline.errors + overload.errors));
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_fleet.json\n");
  return gates_pass ? 0 : 1;
}
