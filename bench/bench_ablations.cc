// Ablations over the design choices DESIGN.md calls out:
//   1. Pre-training on/off — the paper's central transfer-learning claim.
//   2. Dynamic vs static masking (RoBERTa's change) — MLM accuracy probe.
//   3. NSP on/off during pre-training — downstream EM F1.
//   4. The dirty transform on/off — why per-attribute baselines collapse
//      while serialized-text transformers barely move.
// Each arm runs on Walmart-Amazon at bench scale.

#include <cstdio>

#include "baselines/magellan.h"
#include "bench/bench_common.h"
#include "core/entity_matcher.h"
#include "data/generators.h"
#include "models/transformer.h"
#include "pretrain/pretrainer.h"

namespace {

using namespace emx;

double FineTuneF1(pretrain::ZooOptions zoo, const data::EmDataset& ds,
                  models::Architecture arch, int64_t epochs) {
  auto bundle = pretrain::GetPretrained(arch, zoo);
  if (!bundle.ok()) {
    std::printf("zoo error: %s\n", bundle.status().ToString().c_str());
    return -1;
  }
  core::EntityMatcher matcher(std::move(bundle).value());
  core::FineTuneOptions ft = bench::BenchFineTune(ds.id);
  ft.epochs = epochs;
  matcher.FineTune(ds, ft);
  return matcher.Evaluate(ds, ds.test).f1 * 100;
}

}  // namespace

int main() {
  const auto id = data::DatasetId::kWalmartAmazon;
  data::GeneratorOptions gen;
  gen.scale = bench::DatasetScale(id);
  auto ds = data::GenerateDataset(id, gen);
  const int64_t epochs = bench::EnvInt("EMX_EPOCHS", 5);

  std::printf("Ablations on %s (scale %.3f, %lld fine-tune epochs)\n\n",
              ds.name.c_str(), gen.scale, static_cast<long long>(epochs));

  // --- 1. Pre-training on/off -------------------------------------------
  {
    pretrain::ZooOptions zoo = bench::BenchZoo();
    const double with_pt = FineTuneF1(zoo, ds, models::Architecture::kBert, epochs);
    zoo.skip_pretraining = true;
    const double without_pt =
        FineTuneF1(zoo, ds, models::Architecture::kBert, epochs);
    std::printf("[1] Pre-training (BERT):    with %.1f F1   without %.1f F1   "
                "(transfer gain %+.1f)\n",
                with_pt, without_pt, with_pt - without_pt);
    std::fflush(stdout);
  }

  // --- 2. Dynamic vs static masking --------------------------------------
  {
    pretrain::ZooOptions zoo = bench::BenchZoo();
    auto tokenizer = pretrain::GetTokenizer(models::Architecture::kBert, zoo);
    auto corpus = pretrain::GenerateCorpus(zoo.corpus);
    pretrain::PretrainOptions popts = zoo.pretrain;
    popts.steps = std::min<int64_t>(popts.steps, 400);

    double acc[2];
    for (int dynamic = 0; dynamic < 2; ++dynamic) {
      models::TransformerConfig cfg = models::TransformerConfig::Scaled(
          models::Architecture::kRoberta, tokenizer.value()->vocab_size());
      cfg.max_seq_len = popts.data.max_seq_len;
      Rng rng(11);
      auto model = models::CreateTransformer(cfg, &rng);
      // Pretrain manually so we control the masking mode via arch choice:
      // RoBERTa path uses dynamic; BERT path static. Reuse the RoBERTa body
      // and emulate static by re-labeling the arch for the driver.
      models::TransformerConfig cfg2 = cfg;
      cfg2.arch = dynamic ? models::Architecture::kRoberta
                          : models::Architecture::kBert;
      cfg2.use_nsp_head = !dynamic;  // BERT path needs the NSP head
      Rng rng2(11);
      auto model2 = models::CreateTransformer(cfg2, &rng2);
      auto stats = pretrain::Pretrain(model2.get(), tokenizer.value().get(),
                                      corpus, popts);
      if (!stats.ok()) {
        std::printf("pretrain error: %s\n", stats.status().ToString().c_str());
        return 1;
      }
      acc[dynamic] = pretrain::MlmAccuracy(model2.get(), tokenizer.value().get(),
                                           corpus, popts.data, 6, 16, 777);
    }
    std::printf("[2] Masking (%lld steps):    static %.1f%% MLM acc   dynamic "
                "%.1f%% MLM acc\n",
                static_cast<long long>(popts.steps), acc[0] * 100, acc[1] * 100);
    std::fflush(stdout);
  }

  // --- 3. NSP on/off (BERT vs RoBERTa-style pre-training, same tokenizer) --
  {
    const double bert =
        FineTuneF1(bench::BenchZoo(), ds, models::Architecture::kBert, epochs);
    const double roberta = FineTuneF1(bench::BenchZoo(), ds,
                                      models::Architecture::kRoberta, epochs);
    std::printf("[3] NSP objective:          BERT(+NSP) %.1f F1   "
                "RoBERTa(-NSP, dynamic) %.1f F1\n",
                bert, roberta);
    std::fflush(stdout);
  }

  // --- 4. Dirty transform on/off ------------------------------------------
  {
    data::GeneratorOptions clean = gen;
    clean.apply_dirty = false;
    auto clean_ds = data::GenerateDataset(id, clean);

    baselines::MagellanMatcher mg_clean, mg_dirty;
    mg_clean.Fit(clean_ds);
    mg_dirty.Fit(ds);
    const double mgc = mg_clean.EvaluateTest(clean_ds).f1 * 100;
    const double mgd = mg_dirty.EvaluateTest(ds).f1 * 100;

    const double tc =
        FineTuneF1(bench::BenchZoo(), clean_ds, models::Architecture::kBert, epochs);
    const double td =
        FineTuneF1(bench::BenchZoo(), ds, models::Architecture::kBert, epochs);
    std::printf("[4] Dirty transform:        Magellan %.1f -> %.1f F1 "
                "(drop %.1f)   BERT %.1f -> %.1f F1 (drop %.1f)\n",
                mgc, mgd, mgc - mgd, tc, td, tc - td);
    std::printf("    Shape check: the per-attribute baseline loses far more "
                "than the serialized-text transformer.\n");
  }
  return 0;
}
