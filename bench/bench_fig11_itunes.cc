// Reproduces Figure 11 of the paper: F1 vs fine-tuning epoch for the four
// transformer architectures on the iTunes-Amazon dataset (averaged over
// EMX_RUNS runs; the paper averages five). Epoch 0 is the zero-shot score.

#include "bench/bench_common.h"

int main() {
  emx::bench::RunFigureBench("Figure 11", emx::data::DatasetId::kItunesAmazon);
  return 0;
}
