#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "io/atomic_file.h"
#include "io/emxm.h"
#include "io/mmap_file.h"
#include "file_fuzz.h"
#include "util/status.h"

namespace emx {
namespace io {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/emx_io_test_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
           "_" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name();
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& leaf) const { return dir_ + "/" + leaf; }

  std::string dir_;
};

// ---- MmapFile ---------------------------------------------------------------

TEST_F(IoTest, MmapMissingFileIsStatusNotFault) {
  auto r = MmapFile::Open(Path("nope"));
  EXPECT_FALSE(r.ok());
}

TEST_F(IoTest, MmapEmptyFileIsValidZeroLength) {
  const std::string p = Path("empty");
  std::ofstream(p).close();
  auto r = MmapFile::Open(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 0u);
  EXPECT_TRUE(r.value().Advise(MapAdvice::kRandom).ok());
}

TEST_F(IoTest, MmapReadsExactBytes) {
  const std::string p = Path("bytes");
  const std::string payload = "emx mmap round trip";
  std::ofstream(p, std::ios::binary) << payload;
  auto r = MmapFile::Open(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const MmapFile& m = r.value();
  ASSERT_EQ(m.size(), payload.size());
  EXPECT_EQ(std::memcmp(m.data(), payload.data(), payload.size()), 0);
  EXPECT_EQ(m.path(), p);
  for (MapAdvice a : {MapAdvice::kNormal, MapAdvice::kSequential,
                      MapAdvice::kRandom, MapAdvice::kWillNeed}) {
    EXPECT_TRUE(m.Advise(a).ok());
  }
}

TEST_F(IoTest, MmapSurvivesRenameOverPath) {
  // The hot-swap contract: a reader of the old version keeps its bytes
  // after a new file is renamed onto the path.
  const std::string p = Path("swap");
  std::ofstream(p, std::ios::binary) << "old-old-old";
  auto r = MmapFile::Open(p);
  ASSERT_TRUE(r.ok());
  std::ofstream(p + ".new", std::ios::binary) << "new-new-new";
  ASSERT_EQ(std::rename((p + ".new").c_str(), p.c_str()), 0);
  EXPECT_EQ(std::memcmp(r.value().data(), "old-old-old", 11), 0);
}

// ---- AtomicFileWriter -------------------------------------------------------

TEST_F(IoTest, AtomicWriterPublishesOnCommit) {
  const std::string p = Path("artifact");
  AtomicFileWriter w(p);
  ASSERT_TRUE(w.status().ok());
  w.stream() << "published";
  EXPECT_FALSE(fs::exists(p)) << "visible before Commit";
  ASSERT_TRUE(w.Commit().ok());
  EXPECT_FALSE(fs::exists(p + ".tmp"));
  std::ifstream in(p);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "published");
}

TEST_F(IoTest, AtomicWriterAbandonKeepsOldArtifact) {
  const std::string p = Path("artifact");
  std::ofstream(p, std::ios::binary) << "previous";
  {
    AtomicFileWriter w(p);
    ASSERT_TRUE(w.status().ok());
    w.stream() << "half-writ";
    // No Commit: the writer dies mid-flight.
  }
  EXPECT_FALSE(fs::exists(p + ".tmp")) << "stale .tmp left behind";
  std::ifstream in(p);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "previous");
}

TEST_F(IoTest, AtomicWriterReplacesExistingAtomically) {
  const std::string p = Path("artifact");
  std::ofstream(p, std::ios::binary) << "v1";
  AtomicFileWriter w(p);
  ASSERT_TRUE(w.status().ok());
  w.stream() << "v2";
  ASSERT_TRUE(w.Commit().ok());
  std::ifstream in(p);
  std::string got((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(got, "v2");
}

// ---- EMXM1 round trip -------------------------------------------------------

/// A small container with one section of every kind; payload values are
/// position-dependent so corruption can't alias to a valid file.
std::string WriteSampleContainer(const std::string& path) {
  static std::vector<float> tensor(24);
  static std::vector<int8_t> packed(128);
  static std::vector<float> vec(7);
  static std::vector<int32_t> ivec(7);
  for (size_t i = 0; i < tensor.size(); ++i) {
    tensor[i] = static_cast<float>(i) * 0.5f;
  }
  for (size_t i = 0; i < packed.size(); ++i) {
    packed[i] = static_cast<int8_t>(i - 64);
  }
  for (size_t i = 0; i < vec.size(); ++i) {
    vec[i] = 1.0f / static_cast<float>(i + 1);
    ivec[i] = static_cast<int32_t>(i * i);
  }

  EmxmWriter w;
  w.AddSection("p:enc.w", SectionKind::kF32Tensor, {2, 4, 6, 0, 0, 0},
               tensor.data(), tensor.size() * sizeof(float));
  w.AddSection("q:head:qw", SectionKind::kInt8Packed,
               {4, 2, 16, 8, AuxFromF32(0.125f), 3}, packed.data(),
               packed.size());
  w.AddSection("q:head:ws", SectionKind::kF32Vec, {7, 0, 0, 0, 0, 0},
               vec.data(), vec.size() * sizeof(float));
  w.AddSection("q:head:cs", SectionKind::kI32Vec, {7, 0, 0, 0, 0, 0},
               ivec.data(), ivec.size() * sizeof(int32_t));
  w.AddSection("q:ffn:ffn", SectionKind::kFfnMeta,
               {1, AuxFromF32(0.25f), 9, 0, 0, 0}, nullptr, 0);
  w.AddSection("emxm:manifest", SectionKind::kManifest, {1, 1, 1, 0, 0, 0},
               "bert", 4);
  EXPECT_TRUE(w.WriteFile(path).ok());
  return path;
}

TEST_F(IoTest, EmxmRoundTripPreservesEverySection) {
  const std::string p = WriteSampleContainer(Path("m.emxm"));
  auto r = EmxmReader::Open(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const EmxmReader& reader = *r.value();
  EXPECT_EQ(reader.sections().size(), 6u);

  const Section* t = reader.Find("p:enc.w");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->kind, SectionKind::kF32Tensor);
  EXPECT_EQ(t->aux[0], 2u);
  EXPECT_EQ(t->aux[1], 4u);
  EXPECT_EQ(t->aux[2], 6u);
  ASSERT_EQ(t->bytes, 24 * sizeof(float));
  const float* tf = reinterpret_cast<const float*>(t->data);
  for (int i = 0; i < 24; ++i) EXPECT_EQ(tf[i], static_cast<float>(i) * 0.5f);

  const Section* qw = reader.Find("q:head:qw");
  ASSERT_NE(qw, nullptr);
  EXPECT_EQ(qw->kind, SectionKind::kInt8Packed);
  EXPECT_EQ(F32FromAux(qw->aux[4]), 0.125f);
  ASSERT_EQ(qw->bytes, 128u);
  const int8_t* qp = reinterpret_cast<const int8_t*>(qw->data);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(qp[i], static_cast<int8_t>(i - 64));

  const Section* meta = reader.Find("q:ffn:ffn");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->bytes, 0u);
  EXPECT_EQ(F32FromAux(meta->aux[1]), 0.25f);

  const Section* manifest = reader.Find("emxm:manifest");
  ASSERT_NE(manifest, nullptr);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(manifest->data),
                        manifest->bytes),
            "bert");

  EXPECT_EQ(reader.Find("no:such:section"), nullptr);
}

TEST_F(IoTest, EmxmPayloadsAre64ByteAligned) {
  const std::string p = WriteSampleContainer(Path("m.emxm"));
  auto r = EmxmReader::Open(p);
  ASSERT_TRUE(r.ok());
  for (const Section& s : r.value()->sections()) {
    if (s.bytes == 0) continue;
    EXPECT_EQ(reinterpret_cast<uintptr_t>(s.data) % kEmxmAlign, 0u)
        << "section '" << s.name << "' misaligned";
  }
}

TEST_F(IoTest, EmxmFileSizeMatchesHeaderExactly) {
  const std::string p = WriteSampleContainer(Path("m.emxm"));
  auto r = EmxmReader::Open(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->file_bytes(), fs::file_size(p));
}

// ---- EMXM1 corruption matrix ------------------------------------------------

Status OpenStatus(const std::string& path) {
  return EmxmReader::Open(path).status();
}

TEST_F(IoTest, EmxmEveryTruncationFailsCleanly) {
  const std::string p = WriteSampleContainer(Path("m.emxm"));
  // Byte-exhaustive over the structured region (header + table + strtab);
  // strided through the payload area, plus every 8-byte field boundary of
  // the 64-byte header.
  testing::ExpectAllTruncationsFail(p, OpenStatus, /*stride=*/64,
                                    {8, 12, 16, 24, 32, 40, 48, 56, 63, 65});
}

TEST_F(IoTest, EmxmTrailingGarbageIsRejected) {
  const std::string p = WriteSampleContainer(Path("m.emxm"));
  std::ofstream(p, std::ios::binary | std::ios::app) << "extra";
  EXPECT_FALSE(OpenStatus(p).ok()) << "file_bytes mismatch not caught";
}

TEST_F(IoTest, EmxmBadHeaderFieldsAreRejected) {
  const std::string p = WriteSampleContainer(Path("m.emxm"));
  const uint64_t huge = ~0ull - 7;
  auto fails = [&](const std::string& patched) {
    EXPECT_FALSE(OpenStatus(patched).ok()) << "accepted " << patched;
  };
  // magic, version, header_bytes
  testing::WithPatchedField<uint64_t>(p, 0, 0x31505845ull, fails);
  testing::WithPatchedField<uint32_t>(p, 8, kEmxmVersion + 1, fails);
  testing::WithPatchedField<uint32_t>(p, 12, 32, fails);
  // section_count: oversized count must fail bounds checks, not allocate.
  testing::WithPatchedField<uint64_t>(p, 16, huge, fails);
  // table / strtab offsets and length out of bounds.
  testing::WithPatchedField<uint64_t>(p, 24, huge, fails);
  testing::WithPatchedField<uint64_t>(p, 32, huge, fails);
  testing::WithPatchedField<uint64_t>(p, 40, huge, fails);
  // file_bytes disagreeing with the real size.
  testing::WithPatchedField<uint64_t>(p, 48, huge, fails);
  testing::WithPatchedField<uint64_t>(p, 48, 64, fails);
}

TEST_F(IoTest, EmxmBadSectionEntriesAreRejected) {
  const std::string p = WriteSampleContainer(Path("m.emxm"));
  const std::vector<uint8_t> bytes = testing::ReadFileBytes(p);
  uint64_t table = 0;
  std::memcpy(&table, bytes.data() + 24, sizeof(table));
  ASSERT_GT(table, 0u);
  const uint64_t huge = ~0ull - 7;
  auto fails = [&](const std::string& patched) {
    EXPECT_FALSE(OpenStatus(patched).ok()) << "accepted " << patched;
  };
  const size_t e0 = static_cast<size_t>(table);
  // name_offset / name_bytes escaping the string table.
  testing::WithPatchedField<uint64_t>(p, e0 + 0, huge, fails);
  testing::WithPatchedField<uint64_t>(p, e0 + 8, huge, fails);
  // unknown kind.
  testing::WithPatchedField<uint32_t>(p, e0 + 16, 999, fails);
  // payload offset/bytes out of bounds, and misaligned payload.
  testing::WithPatchedField<uint64_t>(p, e0 + 24, huge, fails);
  testing::WithPatchedField<uint64_t>(p, e0 + 32, huge, fails);
  uint64_t payload_off = 0;
  std::memcpy(&payload_off, bytes.data() + e0 + 24, sizeof(payload_off));
  testing::WithPatchedField<uint64_t>(p, e0 + 24, payload_off + 1, fails);
}

}  // namespace
}  // namespace io
}  // namespace emx
