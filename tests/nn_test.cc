#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>

#include "file_fuzz.h"
#include "nn/attention.h"
#include "tensor/tensor.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace emx {
namespace nn {
namespace {

namespace ag = autograd;

// ---- Linear ---------------------------------------------------------------

TEST(LinearTest, OutputShape2DAnd3D) {
  Rng rng(1);
  Linear lin(8, 5, &rng);
  Variable x2 = Variable::Constant(Tensor::Randn({3, 8}, &rng));
  EXPECT_EQ(lin.Forward(x2).shape(), (Shape{3, 5}));
  Variable x3 = Variable::Constant(Tensor::Randn({2, 4, 8}, &rng));
  EXPECT_EQ(lin.Forward(x3).shape(), (Shape{2, 4, 5}));
}

TEST(LinearTest, ThreeDMatchesFlattened) {
  Rng rng(2);
  Linear lin(6, 4, &rng);
  Tensor x = Tensor::Randn({2, 3, 6}, &rng);
  Variable y3 = lin.Forward(Variable::Constant(x));
  Variable y2 = lin.Forward(Variable::Constant(x.Reshape({6, 6})));
  EXPECT_TRUE(ops::AllClose(y3.value().Reshape({6, 4}), y2.value(), 1e-5f));
}

TEST(LinearTest, ParametersCollected) {
  Rng rng(3);
  Linear lin(4, 2, &rng);
  std::vector<NamedParam> params;
  lin.CollectParameters("fc", &params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "fc.weight");
  EXPECT_EQ(params[1].name, "fc.bias");
  EXPECT_EQ(lin.NumParameters(), 4 * 2 + 2);
}

TEST(LinearTest, GradFlowsToWeightAndBias) {
  Rng rng(4);
  Linear lin(3, 2, &rng);
  Variable x = Variable::Constant(Tensor::Randn({5, 3}, &rng));
  Variable loss = ag::MeanAll(ag::Mul(lin.Forward(x), lin.Forward(x)));
  Backward(loss);
  float wsum = 0;
  for (auto& p : lin.Parameters()) {
    for (int64_t i = 0; i < p.var.grad().size(); ++i) {
      wsum += std::abs(p.var.grad()[i]);
    }
  }
  EXPECT_GT(wsum, 0.0f);
}

// ---- Embedding -------------------------------------------------------------

TEST(EmbeddingTest, LookupShapeAndValues) {
  Rng rng(5);
  Embedding emb(10, 4, &rng);
  Variable out = emb.Forward({1, 3, 1, 7, 0, 2}, {2, 3});
  EXPECT_EQ(out.shape(), (Shape{2, 3, 4}));
  // Row for id 1 appears at positions (0,0) and (0,2).
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(out.value().At({0, 0, j}), out.value().At({0, 2, j}));
  }
}

TEST(EmbeddingTest, GradScattersToUsedRowsOnly) {
  Rng rng(6);
  Embedding emb(6, 3, &rng);
  Variable out = emb.Forward({2, 2, 4}, {3});
  Backward(ag::SumAll(out));
  const Tensor& g = emb.Parameters()[0].var.grad();
  // Rows 2 (twice) and 4 (once) receive gradient; others zero.
  EXPECT_EQ(g.At({2, 0}), 2.0f);
  EXPECT_EQ(g.At({4, 0}), 1.0f);
  EXPECT_EQ(g.At({0, 0}), 0.0f);
  EXPECT_EQ(g.At({5, 2}), 0.0f);
}

// ---- LayerNorm ---------------------------------------------------------------

TEST(LayerNormModuleTest, InitialIdentityStats) {
  Rng rng(7);
  LayerNorm ln(8);
  Variable x = Variable::Constant(Tensor::Randn({4, 8}, &rng, 3.0f));
  Variable y = ln.Forward(x);
  // gamma=1, beta=0 -> each row has ~zero mean, unit variance.
  for (int64_t r = 0; r < 4; ++r) {
    float mu = 0;
    for (int64_t j = 0; j < 8; ++j) mu += y.value()[r * 8 + j];
    EXPECT_NEAR(mu / 8, 0.0f, 1e-4);
  }
  EXPECT_EQ(ln.NumParameters(), 16);
}

// ---- FeedForward ----------------------------------------------------------------

TEST(FeedForwardTest, ShapePreserved) {
  Rng rng(8);
  FeedForward ffn(6, 24, &rng);
  Variable x = Variable::Constant(Tensor::Randn({2, 5, 6}, &rng));
  Variable y = ffn.Forward(x, 0.0f, false, &rng);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 6}));
  EXPECT_EQ(ffn.NumParameters(), 6 * 24 + 24 + 24 * 6 + 6);
}

TEST(FeedForwardTest, ActivationVariants) {
  Rng rng(9);
  Tensor x({3}, {-2, 0, 2});
  Variable v = Variable::Constant(x);
  Variable relu = ApplyActivation(v, Activation::kRelu);
  EXPECT_EQ(relu.value()[0], 0.0f);
  EXPECT_EQ(relu.value()[2], 2.0f);
  Variable th = ApplyActivation(v, Activation::kTanh);
  EXPECT_NEAR(th.value()[2], std::tanh(2.0f), 1e-5);
  Variable ge = ApplyActivation(v, Activation::kGelu);
  EXPECT_LT(ge.value()[0], 0.0f);  // gelu(-2) ~ -0.045
  EXPECT_GT(ge.value()[0], -0.1f);
}

// ---- Attention -------------------------------------------------------------------

TEST(AttentionTest, SelfAttentionShape) {
  Rng rng(10);
  MultiHeadAttention attn(12, 3, &rng);
  Variable x = Variable::Constant(Tensor::Randn({2, 7, 12}, &rng));
  Variable y = attn.Forward(x, x, Tensor(), 0.0f, false, &rng);
  EXPECT_EQ(y.shape(), (Shape{2, 7, 12}));
  EXPECT_EQ(attn.head_dim(), 4);
}

TEST(AttentionTest, CrossAttentionDifferentLengths) {
  Rng rng(11);
  MultiHeadAttention attn(8, 2, &rng);
  Variable q = Variable::Constant(Tensor::Randn({2, 3, 8}, &rng));
  Variable kv = Variable::Constant(Tensor::Randn({2, 6, 8}, &rng));
  Variable y = attn.Forward(q, kv, Tensor(), 0.0f, false, &rng);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 8}));
}

TEST(AttentionTest, PaddingMaskBlocksPositions) {
  // With positions 2..3 masked in batch 0, changing their content must not
  // change the output for batch 0.
  Rng rng(12);
  MultiHeadAttention attn(8, 2, &rng);
  Tensor x = Tensor::Randn({1, 4, 8}, &rng);
  Tensor mask({1, 1, 1, 4}, {0, 0, 1, 1});

  Variable y1 = attn.Forward(Variable::Constant(x), Variable::Constant(x),
                             mask, 0.0f, false, &rng);
  Tensor x2 = x.Clone();
  for (int64_t j = 0; j < 8; ++j) {
    x2.At({0, 2, j}) += 5.0f;
    x2.At({0, 3, j}) -= 3.0f;
  }
  Variable y2 = attn.Forward(Variable::Constant(x2), Variable::Constant(x2),
                             mask, 0.0f, false, &rng);
  // Outputs at the *unmasked* query positions 0..1 must agree (masked
  // positions are still queries whose own representation changed).
  for (int64_t t = 0; t < 2; ++t) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(y1.value().At({0, t, j}), y2.value().At({0, t, j}), 1e-5)
          << "t=" << t << " j=" << j;
    }
  }
}

TEST(AttentionTest, CausalMaskMakesOutputsPrefixDependent) {
  // With a causal [B,1,T,T] mask, output at position t must not depend on
  // positions > t.
  Rng rng(13);
  MultiHeadAttention attn(8, 2, &rng);
  const int64_t t_len = 5;
  Tensor mask({1, 1, t_len, t_len});
  for (int64_t i = 0; i < t_len; ++i) {
    for (int64_t j = 0; j < t_len; ++j) {
      mask.At({0, 0, i, j}) = j > i ? 1.0f : 0.0f;
    }
  }
  Tensor x = Tensor::Randn({1, t_len, 8}, &rng);
  Variable y1 = attn.Forward(Variable::Constant(x), Variable::Constant(x),
                             mask, 0.0f, false, &rng);
  Tensor x2 = x.Clone();
  for (int64_t j = 0; j < 8; ++j) x2.At({0, 4, j}) += 10.0f;  // change last
  Variable y2 = attn.Forward(Variable::Constant(x2), Variable::Constant(x2),
                             mask, 0.0f, false, &rng);
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(y1.value().At({0, t, j}), y2.value().At({0, t, j}), 1e-5);
    }
  }
}

TEST(AttentionTest, SplitMergeHeadsRoundTrip) {
  Rng rng(14);
  MultiHeadAttention attn(12, 4, &rng);
  Tensor x = Tensor::Randn({2, 5, 12}, &rng);
  Variable v = Variable::Constant(x);
  Variable round = attn.MergeHeads(attn.SplitHeads(v));
  EXPECT_TRUE(ops::AllClose(round.value(), x));
}

TEST(AttentionTest, GradientFlowsThroughAllProjections) {
  Rng rng(15);
  MultiHeadAttention attn(8, 2, &rng);
  Variable x = Variable::Constant(Tensor::Randn({2, 4, 8}, &rng));
  Variable y = attn.Forward(x, x, Tensor(), 0.0f, false, &rng);
  Backward(ag::MeanAll(ag::Mul(y, y)));
  for (auto& p : attn.Parameters()) {
    float asum = 0;
    for (int64_t i = 0; i < p.var.grad().size(); ++i) {
      asum += std::abs(p.var.grad()[i]);
    }
    EXPECT_GT(asum, 0.0f) << p.name;
  }
}

// ---- Attention backend (fused kernel) --------------------------------------

TEST(AttentionBackendTest, DefaultBackendIsFused) {
  Rng rng(40);
  MultiHeadAttention attn(8, 2, &rng);
  EXPECT_NE(attn.backend(), nullptr);
  EXPECT_NE(dynamic_cast<FusedAttentionBackend*>(attn.backend().get()),
            nullptr);
}

TEST(AttentionBackendTest, FusedForwardBitIdenticalToReference) {
  Rng rng(41);
  MultiHeadAttention attn(12, 4, &rng);
  Tensor x = Tensor::Randn({2, 9, 12}, &rng);
  Tensor mask = Tensor::Zeros({2, 1, 1, 9});
  for (int64_t j = 6; j < 9; ++j) mask.data()[j] = 1.0f;  // pad batch 0 tail
  Variable v = Variable::Constant(x);
  for (const Tensor& m : {Tensor(), mask}) {
    Tensor fused = attn.Forward(v, v, m, 0.0f, false, &rng).value();
    Tensor ref = attn.ForwardReference(v, v, m, 0.0f, false, &rng).value();
    ASSERT_EQ(fused.shape(), ref.shape());
    for (int64_t i = 0; i < fused.size(); ++i) {
      EXPECT_EQ(fused[i], ref[i]) << "index " << i;
    }
  }
}

TEST(AttentionBackendTest, CrossAttentionBitIdenticalToReference) {
  Rng rng(42);
  MultiHeadAttention attn(8, 2, &rng);
  Variable q = Variable::Constant(Tensor::Randn({2, 4, 8}, &rng));
  Variable kv = Variable::Constant(Tensor::Randn({2, 7, 8}, &rng));
  Tensor fused = attn.Forward(q, kv, Tensor(), 0.0f, false, &rng).value();
  Tensor ref = attn.ForwardReference(q, kv, Tensor(), 0.0f, false, &rng).value();
  for (int64_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i], ref[i]) << "index " << i;
  }
}

TEST(AttentionBackendTest, ClearingBackendFallsBackToReference) {
  Rng rng(43);
  MultiHeadAttention attn(8, 2, &rng);
  Variable x = Variable::Constant(Tensor::Randn({1, 5, 8}, &rng));
  Tensor fused = attn.Forward(x, x, Tensor(), 0.0f, false, &rng).value();
  attn.set_backend(nullptr);
  EXPECT_EQ(attn.backend(), nullptr);
  Tensor ref = attn.Forward(x, x, Tensor(), 0.0f, false, &rng).value();
  for (int64_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i], ref[i]) << "index " << i;
  }
  attn.set_backend(std::make_shared<FusedAttentionBackend>());
  EXPECT_NE(attn.backend(), nullptr);
}

TEST(AttentionBackendTest, FusedForwardNeverMaterializesProbTensor) {
  Rng rng(44);
  const int64_t b = 2, t = 48, heads = 4, hidden = 16;
  MultiHeadAttention attn(hidden, heads, &rng);
  Variable x = Variable::Constant(Tensor::Randn({b, t, hidden}, &rng));
  const int64_t prob_bytes = b * heads * t * t * static_cast<int64_t>(
                                 sizeof(float));

  ResetTensorMemPeak();
  const int64_t base = GetTensorMemStats().live_bytes;
  { Variable out = attn.ForwardReference(x, x, Tensor(), 0.0f, false, &rng); }
  const int64_t ref_peak = GetTensorMemStats().peak_bytes - base;

  ResetTensorMemPeak();
  { Variable out = attn.Forward(x, x, Tensor(), 0.0f, false, &rng); }
  const int64_t fused_peak = GetTensorMemStats().peak_bytes - base;

  // Both paths share the projection activations; the reference chain holds
  // at least one [B, heads, T, T] tensor on top of them while the fused
  // forward only adds the [B, heads, T] row stats, so the gap must cover a
  // full prob tensor.
  EXPECT_GE(ref_peak, prob_bytes);
  EXPECT_LT(fused_peak, ref_peak);
  EXPECT_GE(ref_peak - fused_peak, prob_bytes);
}

TEST(AttentionBackendTest, FusedTrainingGradsMatchReferenceWithin1e4) {
  Rng rng(45);
  const int64_t hidden = 8, heads = 2;
  MultiHeadAttention attn(hidden, heads, &rng);
  Tensor xt = Tensor::Randn({2, 6, hidden}, &rng, 0.7f);
  Tensor mask = Tensor::Zeros({2, 1, 1, 6});
  mask.data()[4] = mask.data()[5] = 1.0f;

  auto grads = [&](bool fused) {
    for (auto& p : attn.Parameters()) p.var.ZeroGrad();
    Variable x = Variable::Constant(xt);
    Variable y = fused ? attn.Forward(x, x, mask, 0.0f, false, &rng)
                       : attn.ForwardReference(x, x, mask, 0.0f, false, &rng);
    Backward(ag::MeanAll(ag::Mul(y, y)));
    std::vector<Tensor> out;
    for (auto& p : attn.Parameters()) out.push_back(p.var.grad().Clone());
    return out;
  };
  auto gf = grads(true);
  auto gr = grads(false);
  ASSERT_EQ(gf.size(), gr.size());
  for (size_t p = 0; p < gf.size(); ++p) {
    for (int64_t i = 0; i < gf[p].size(); ++i) {
      const float denom = std::max(1e-4f, std::fabs(gr[p][i]));
      EXPECT_LT(std::fabs(gf[p][i] - gr[p][i]) / denom, 1e-4f)
          << "param " << p << " index " << i;
    }
  }
}

// ---- TransformerEncoderLayer ----------------------------------------------------

TEST(EncoderLayerTest, ShapeAndParamCount) {
  Rng rng(16);
  TransformerEncoderLayer layer(16, 4, 64, &rng);
  Variable x = Variable::Constant(Tensor::Randn({2, 6, 16}, &rng));
  Variable y = layer.Forward(x, Tensor(), 0.0f, false, &rng);
  EXPECT_EQ(y.shape(), (Shape{2, 6, 16}));
  // 4 projections (16x16+16) + ffn (16*64+64 + 64*16+16) + 2 LN (2*16).
  const int64_t expected = 4 * (16 * 16 + 16) + (16 * 64 + 64 + 64 * 16 + 16) +
                           2 * 32;
  EXPECT_EQ(layer.NumParameters(), expected);
}

TEST(EncoderLayerTest, TrainVsEvalDropoutDiffers) {
  Rng rng(17);
  TransformerEncoderLayer layer(8, 2, 32, &rng);
  Tensor x = Tensor::Randn({1, 4, 8}, &rng);
  Rng d1(100), d2(100);
  Variable eval1 = layer.Forward(Variable::Constant(x), Tensor(), 0.5f, false, &d1);
  Variable eval2 = layer.Forward(Variable::Constant(x), Tensor(), 0.5f, false, &d2);
  EXPECT_TRUE(ops::AllClose(eval1.value(), eval2.value()));
  Variable train1 = layer.Forward(Variable::Constant(x), Tensor(), 0.5f, true, &d1);
  EXPECT_FALSE(ops::AllClose(train1.value(), eval1.value()));
}

// ---- Serialization ----------------------------------------------------------------

TEST(SerializationTest, SaveLoadRoundTrip) {
  Rng rng(18);
  Linear a(5, 3, &rng);
  Linear b(5, 3, &rng);
  // a and b differ initially.
  EXPECT_FALSE(ops::AllClose(a.Parameters()[0].var.value(),
                             b.Parameters()[0].var.value()));
  std::string path = "/tmp/emx_nn_test_params.bin";
  std::vector<NamedParam> pa;
  a.CollectParameters("m", &pa);
  ASSERT_TRUE(SaveParameters(path, pa).ok());
  std::vector<NamedParam> pb;
  b.CollectParameters("m", &pb);
  ASSERT_TRUE(LoadParameters(path, pb).ok());
  EXPECT_TRUE(ops::AllClose(a.Parameters()[0].var.value(),
                            b.Parameters()[0].var.value()));
  EXPECT_TRUE(ops::AllClose(a.Parameters()[1].var.value(),
                            b.Parameters()[1].var.value()));
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingParameterFails) {
  Rng rng(19);
  Linear a(2, 2, &rng);
  std::string path = "/tmp/emx_nn_test_params2.bin";
  std::vector<NamedParam> pa;
  a.CollectParameters("x", &pa);
  ASSERT_TRUE(SaveParameters(path, pa).ok());
  std::vector<NamedParam> pb;
  a.CollectParameters("y", &pb);  // different names
  Status s = LoadParameters(path, pb);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(SerializationTest, ShapeMismatchFails) {
  Rng rng(20);
  Linear a(2, 3, &rng);
  Linear b(3, 2, &rng);
  std::string path = "/tmp/emx_nn_test_params3.bin";
  std::vector<NamedParam> pa;
  a.CollectParameters("m", &pa);
  ASSERT_TRUE(SaveParameters(path, pa).ok());
  std::vector<NamedParam> pb;
  b.CollectParameters("m", &pb);
  EXPECT_FALSE(LoadParameters(path, pb).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileFails) {
  Rng rng(22);
  Linear a(6, 4, &rng);
  std::string path = "/tmp/emx_nn_test_params_trunc.bin";
  std::vector<NamedParam> pa;
  a.CollectParameters("m", &pa);
  ASSERT_TRUE(SaveParameters(path, pa).ok());

  // Chop the file mid-payload; the loader must fail cleanly, not read
  // uninitialized memory or EMX_CHECK out.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  std::vector<NamedParam> pb;
  a.CollectParameters("m", &pb);
  Status s = LoadParameters(path, pb);
  EXPECT_FALSE(s.ok());
  // The bounds checks reject a short payload before the read can fail, so
  // either code is a correct refusal.
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument ||
              s.code() == StatusCode::kIoError)
      << s.ToString();
  std::remove(path.c_str());
}

TEST(SerializationTest, EveryTruncationBoundaryFails) {
  Rng rng(24);
  Linear a(6, 4, &rng);
  std::string path = "/tmp/emx_nn_test_params_matrix.bin";
  std::vector<NamedParam> pa;
  a.CollectParameters("m", &pa);
  ASSERT_TRUE(SaveParameters(path, pa).ok());
  emx::testing::ExpectAllTruncationsFail(
      path,
      [&](const std::string& p) { return LoadParameters(p, pa); },
      /*stride=*/1);
  std::remove(path.c_str());
}

TEST(SerializationTest, HostileDimsDoNotAllocate) {
  Rng rng(25);
  Linear a(4, 4, &rng);
  std::string path = "/tmp/emx_nn_test_params_dims.bin";
  std::vector<NamedParam> pa;
  a.CollectParameters("m", &pa);
  ASSERT_TRUE(SaveParameters(path, pa).ok());
  // Layout: magic u32 | count u64 | name_len u64 | name | ndim u64 | dims.
  // The first parameter is the [4, 4] weight ("m.weight", 8 name bytes).
  const size_t ndim_off = 4 + 8 + 8 + 8;
  const size_t dim0_off = ndim_off + 8;
  auto fails = [&](const std::string& patched) {
    Status s = LoadParameters(patched, pa);
    EXPECT_FALSE(s.ok()) << "accepted " << patched;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  };
  // Negative and zero dims.
  emx::testing::WithPatchedField<int64_t>(path, dim0_off, -4, fails);
  emx::testing::WithPatchedField<int64_t>(path, dim0_off, 0, fails);
  // A dim pair whose product wraps uint64 to something tiny — the
  // overflow-checked product must reject it before any allocation.
  emx::testing::WithPatchedField<int64_t>(path, dim0_off,
                                          static_cast<int64_t>(1) << 62,
                                          fails);
  // Implausible ndim and parameter count.
  emx::testing::WithPatchedField<uint64_t>(path, ndim_off, 1u << 20, fails);
  emx::testing::WithPatchedField<uint64_t>(path, 4, ~0ull, fails);
  std::remove(path.c_str());
}

TEST(SerializationTest, NotAParameterFileFails) {
  std::string path = "/tmp/emx_nn_test_params_magic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const char garbage[] = "definitely not an emx parameter file";
    out.write(garbage, sizeof(garbage));
  }
  Rng rng(23);
  Linear a(2, 2, &rng);
  std::vector<NamedParam> pa;
  a.CollectParameters("m", &pa);
  Status s = LoadParameters(path, pa);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, CopyMatchingParameters) {
  Rng rng(21);
  Linear teacher(4, 4, &rng);
  Linear student(4, 4, &rng);
  std::vector<NamedParam> tp, sp;
  teacher.CollectParameters("layer", &tp);
  student.CollectParameters("layer", &sp);
  EXPECT_EQ(CopyMatchingParameters(tp, sp), 2);
  EXPECT_TRUE(ops::AllClose(teacher.Parameters()[0].var.value(),
                            student.Parameters()[0].var.value()));
}

// ---- Optimizer -----------------------------------------------------------------

TEST(ScheduleTest, LinearWarmupShape) {
  LinearWarmupSchedule sched(1.0f, 10, 110);
  EXPECT_NEAR(sched.LearningRate(0), 0.1f, 1e-6);
  EXPECT_NEAR(sched.LearningRate(9), 1.0f, 1e-6);
  EXPECT_NEAR(sched.LearningRate(10), 1.0f, 1e-6);
  EXPECT_NEAR(sched.LearningRate(60), 0.5f, 1e-6);
  EXPECT_NEAR(sched.LearningRate(110), 0.0f, 1e-6);
  EXPECT_NEAR(sched.LearningRate(500), 0.0f, 1e-6);
}

TEST(ScheduleTest, NoWarmup) {
  LinearWarmupSchedule sched(2.0f, 0, 100);
  EXPECT_NEAR(sched.LearningRate(0), 2.0f, 1e-5);
  EXPECT_NEAR(sched.LearningRate(50), 1.0f, 1e-5);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||w - target||^2.
  Rng rng(22);
  Variable w = Variable::Parameter(Tensor::Randn({8}, &rng));
  Tensor target = Tensor::Full({8}, 3.0f);
  AdamOptions opts;
  opts.lr = 0.1f;
  opts.clip_norm = 0.0f;
  Adam adam({{"w", w}}, opts);
  for (int step = 0; step < 300; ++step) {
    adam.ZeroGrad();
    Variable diff = ag::Sub(w, Variable::Constant(target));
    Variable loss = ag::MeanAll(ag::Mul(diff, diff));
    Backward(loss);
    adam.Step();
  }
  for (int64_t i = 0; i < 8; ++i) EXPECT_NEAR(w.value()[i], 3.0f, 0.05f);
}

TEST(AdamTest, ClipGradNormScales) {
  Variable w = Variable::Parameter(Tensor::Zeros({4}));
  w.mutable_grad().Fill(3.0f);  // norm = 6
  AdamOptions opts;
  Adam adam({{"w", w}}, opts);
  float norm = adam.ClipGradNorm(1.0f);
  EXPECT_NEAR(norm, 6.0f, 1e-4);
  float clipped = 0;
  for (int64_t i = 0; i < 4; ++i) clipped += w.grad()[i] * w.grad()[i];
  EXPECT_NEAR(std::sqrt(clipped), 1.0f, 1e-3);
}

TEST(AdamTest, WeightDecaySkipsBiasAndLayerNorm) {
  Variable w = Variable::Parameter(Tensor::Full({2}, 1.0f));
  Variable b = Variable::Parameter(Tensor::Full({2}, 1.0f));
  Variable g = Variable::Parameter(Tensor::Full({2}, 1.0f));
  AdamOptions opts;
  opts.lr = 0.1f;
  opts.weight_decay = 1.0f;
  opts.clip_norm = 0.0f;
  Adam adam({{"fc.weight", w}, {"fc.bias", b}, {"ln.gamma", g}}, opts);
  // Zero gradients: only decay acts.
  adam.ZeroGrad();
  w.mutable_grad().Fill(0.0f);
  b.mutable_grad().Fill(0.0f);
  g.mutable_grad().Fill(0.0f);
  adam.Step();
  EXPECT_LT(w.value()[0], 1.0f);   // decayed
  EXPECT_EQ(b.value()[0], 1.0f);   // exempt
  EXPECT_EQ(g.value()[0], 1.0f);   // exempt
}

TEST(AdamTest, TrainsSmallTransformerLayer) {
  // One encoder layer + classifier head must fit a linearly separable toy
  // sequence task within a few dozen steps.
  Rng rng(23);
  TransformerEncoderLayer layer(8, 2, 16, &rng);
  Linear head(8, 2, &rng);
  Embedding emb(4, 8, &rng);

  std::vector<NamedParam> params;
  layer.CollectParameters("layer", &params);
  head.CollectParameters("head", &params);
  emb.CollectParameters("emb", &params);
  AdamOptions opts;
  opts.lr = 5e-3f;
  Adam adam(params, opts);

  // Class = whether token id 3 appears in the sequence.
  std::vector<std::vector<int64_t>> seqs = {
      {0, 1, 2, 0}, {3, 1, 2, 0}, {1, 1, 0, 2}, {0, 3, 2, 1},
      {2, 0, 1, 1}, {2, 3, 3, 0}};
  std::vector<int64_t> labels = {0, 1, 0, 1, 0, 1};

  float last_loss = 0;
  for (int step = 0; step < 60; ++step) {
    adam.ZeroGrad();
    std::vector<int64_t> flat;
    for (auto& s : seqs) flat.insert(flat.end(), s.begin(), s.end());
    Variable x = emb.Forward(flat, {6, 4});
    Variable h = layer.Forward(x, Tensor(), 0.0f, true, &rng);
    Variable cls = ag::SelectTimeStep(h, 0);
    Variable logits = head.Forward(cls);
    Variable loss = ag::CrossEntropy(logits, labels);
    last_loss = loss.value()[0];
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last_loss, 0.2f);
}

}  // namespace
}  // namespace emx
}  // namespace nn
