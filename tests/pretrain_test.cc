#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "models/encoder.h"
#include "models/transformer.h"
#include "pretrain/corpus.h"
#include "pretrain/lm_data.h"
#include "pretrain/model_zoo.h"
#include "pretrain/pretrainer.h"
#include "tensor/tensor_ops.h"
#include "tokenizers/wordpiece.h"

namespace emx {
namespace pretrain {
namespace {

// Shared tiny fixtures so corpus/tokenizer are built once.
class PretrainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions copts;
    copts.num_documents = 120;
    copts.seed = 11;
    corpus_ = new std::vector<std::vector<std::string>>(GenerateCorpus(copts));
    tokenizers::WordPieceTrainerOptions topts;
    topts.vocab_size = 400;
    topts.min_frequency = 1;
    tokenizer_ = new tokenizers::WordPieceTokenizer(
        tokenizers::WordPieceTokenizer::Train(FlattenCorpus(*corpus_), topts));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete tokenizer_;
    corpus_ = nullptr;
    tokenizer_ = nullptr;
  }

  static models::TransformerConfig TinyConfig(models::Architecture arch) {
    models::TransformerConfig cfg =
        models::TransformerConfig::Scaled(arch, tokenizer_->vocab_size());
    cfg.hidden = 32;
    cfg.num_layers = 2;
    cfg.num_heads = 2;
    cfg.intermediate = 64;
    cfg.max_seq_len = 32;
    if (arch == models::Architecture::kDistilBert) cfg.num_layers = 1;
    return cfg;
  }

  static std::vector<std::vector<std::string>>* corpus_;
  static tokenizers::WordPieceTokenizer* tokenizer_;
};

std::vector<std::vector<std::string>>* PretrainFixture::corpus_ = nullptr;
tokenizers::WordPieceTokenizer* PretrainFixture::tokenizer_ = nullptr;

// ---- Corpus ----------------------------------------------------------

TEST_F(PretrainFixture, CorpusShape) {
  EXPECT_EQ(corpus_->size(), 120u);
  for (const auto& doc : *corpus_) {
    EXPECT_GE(doc.size(), 3u);
    for (const auto& s : doc) EXPECT_FALSE(s.empty());
  }
}

TEST_F(PretrainFixture, CorpusDeterministic) {
  CorpusOptions copts;
  copts.num_documents = 10;
  copts.seed = 42;
  auto a = GenerateCorpus(copts);
  auto b = GenerateCorpus(copts);
  EXPECT_EQ(a, b);
  copts.seed = 43;
  auto c = GenerateCorpus(copts);
  EXPECT_NE(a, c);
}

TEST_F(PretrainFixture, CorpusCoversAllThreeDomains) {
  // Product, music, and citation vocabulary must all appear.
  std::string all;
  for (const auto& doc : FlattenCorpus(*corpus_)) all += doc + " ";
  EXPECT_NE(all.find("storage"), std::string::npos);     // products
  EXPECT_NE(all.find("album"), std::string::npos);       // music
  EXPECT_NE(all.find("proceedings"), std::string::npos); // citations
}

// ---- MLM batches -----------------------------------------------------------

TEST_F(PretrainFixture, MlmBatchLayout) {
  LmDataOptions opts;
  opts.max_seq_len = 24;
  LmBatchBuilder builder(tokenizer_, *corpus_, opts);
  LmBatch b = builder.NextMlmBatch(4, /*use_nsp=*/true, /*dynamic=*/false);
  EXPECT_EQ(b.batch.batch_size, 4);
  EXPECT_EQ(b.batch.seq_len, 24);
  EXPECT_EQ(b.batch.ids.size(), 96u);
  EXPECT_EQ(b.lm_labels.size(), 96u);
  EXPECT_EQ(b.nsp_labels.size(), 4u);
  EXPECT_EQ(b.batch.attention_mask.shape(), (Shape{4, 1, 1, 24}));
  // Every row starts with CLS.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(b.batch.ids[static_cast<size_t>(i * 24)],
              tokenizer_->specials().cls);
  }
}

TEST_F(PretrainFixture, MlmMaskingRateApproximatelyCorrect) {
  LmDataOptions opts;
  opts.max_seq_len = 32;
  LmBatchBuilder builder(tokenizer_, *corpus_, opts);
  int64_t masked = 0, total_real = 0, mask_tokens = 0;
  for (int i = 0; i < 40; ++i) {
    LmBatch b = builder.NextMlmBatch(8, false, false);
    for (size_t k = 0; k < b.lm_labels.size(); ++k) {
      if (b.batch.ids[k] != tokenizer_->specials().pad) ++total_real;
      if (b.lm_labels[k] != -100) {
        ++masked;
        if (b.batch.ids[k] == tokenizer_->specials().mask) ++mask_tokens;
      }
    }
  }
  const double rate = static_cast<double>(masked) / total_real;
  EXPECT_GT(rate, 0.08);
  EXPECT_LT(rate, 0.22);
  // ~80% of selected positions carry the [MASK] symbol.
  const double mask_frac = static_cast<double>(mask_tokens) / masked;
  EXPECT_GT(mask_frac, 0.7);
  EXPECT_LT(mask_frac, 0.9);
}

TEST_F(PretrainFixture, MlmLabelsMatchOriginalTokens) {
  LmDataOptions opts;
  opts.max_seq_len = 24;
  LmBatchBuilder builder(tokenizer_, *corpus_, opts);
  LmBatch b = builder.NextMlmBatch(8, false, false);
  for (size_t k = 0; k < b.lm_labels.size(); ++k) {
    if (b.lm_labels[k] != -100) {
      EXPECT_GE(b.lm_labels[k], 0);
      EXPECT_LT(b.lm_labels[k], tokenizer_->vocab_size());
      // Special tokens are never prediction targets.
      EXPECT_NE(b.lm_labels[k], tokenizer_->specials().cls);
      EXPECT_NE(b.lm_labels[k], tokenizer_->specials().sep);
    }
  }
}

TEST_F(PretrainFixture, NspLabelsRoughlyBalanced) {
  LmDataOptions opts;
  LmBatchBuilder builder(tokenizer_, *corpus_, opts);
  int64_t positives = 0, total = 0;
  for (int i = 0; i < 30; ++i) {
    LmBatch b = builder.NextMlmBatch(8, true, false);
    for (int64_t l : b.nsp_labels) {
      positives += l;
      ++total;
    }
  }
  const double rate = static_cast<double>(positives) / total;
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

// ---- PLM batches ---------------------------------------------------------------

TEST_F(PretrainFixture, PlmBatchMasksAreConsistentWithOrder) {
  LmDataOptions opts;
  opts.max_seq_len = 20;
  LmBatchBuilder builder(tokenizer_, *corpus_, opts);
  LmBatch b = builder.NextPlmBatch(2);
  EXPECT_EQ(b.content_mask.shape(), (Shape{2, 1, 20, 20}));
  EXPECT_EQ(b.query_mask.shape(), (Shape{2, 1, 20, 20}));
  int64_t targets = 0;
  for (int64_t l : b.lm_labels) {
    if (l != -100) ++targets;
  }
  EXPECT_GT(targets, 0);

  for (int64_t e = 0; e < 2; ++e) {
    for (int64_t i = 0; i < 20; ++i) {
      for (int64_t j = 0; j < 20; ++j) {
        const float c = b.content_mask.At({e, 0, i, j});
        const float q = b.query_mask.At({e, 0, i, j});
        // Query mask is strictly more restrictive than content mask.
        if (c == 1.0f) EXPECT_EQ(q, 1.0f);
        // Content stream always sees itself (real positions).
        if (i == j && b.batch.ids[static_cast<size_t>(e * 20 + i)] !=
                          tokenizer_->specials().pad) {
          EXPECT_EQ(c, 0.0f);
          EXPECT_EQ(q, 1.0f);  // query never sees its own content
        }
      }
    }
  }
}

TEST_F(PretrainFixture, PlmInputsAreNotCorrupted) {
  // Unlike MLM, PLM feeds the original tokens (no [MASK] symbols) —
  // the pretrain-finetune discrepancy XLNet eliminates.
  LmDataOptions opts;
  opts.max_seq_len = 24;
  LmBatchBuilder builder(tokenizer_, *corpus_, opts);
  LmBatch b = builder.NextPlmBatch(4);
  for (int64_t id : b.batch.ids) {
    EXPECT_NE(id, tokenizer_->specials().mask);
  }
}

// ---- Copy-discrimination pair batches ------------------------------------------

TEST_F(PretrainFixture, PairBatchLayoutAndLabels) {
  LmDataOptions opts;
  opts.max_seq_len = 28;
  LmBatchBuilder builder(tokenizer_, *corpus_, opts);
  int64_t pos = 0, total = 0;
  for (int i = 0; i < 20; ++i) {
    LmBatch b = builder.NextPairBatch(8);
    EXPECT_EQ(b.batch.ids.size(), 8u * 28u);
    EXPECT_EQ(b.nsp_labels.size(), 8u);
    for (int64_t l : b.nsp_labels) {
      EXPECT_TRUE(l == 0 || l == 1);
      pos += l;
      ++total;
    }
    // No LM targets in a pair batch.
    for (int64_t l : b.lm_labels) EXPECT_EQ(l, -100);
    // Segments: 0 then 1.
    for (int e = 0; e < 8; ++e) {
      EXPECT_EQ(b.batch.segment_ids[static_cast<size_t>(e * 28)], 0);
    }
  }
  // Roughly half positives.
  const double rate = static_cast<double>(pos) / total;
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.65);
}

TEST_F(PretrainFixture, PairTaskTrainsAndPredictsBothClasses) {
  // The copy-discrimination circuit emerges slowly (thousands of steps at
  // production scale); within a short test run we assert that training is
  // wired correctly: loss decreases and the pair head escapes the
  // constant-prediction regime.
  models::TransformerConfig cfg = TinyConfig(models::Architecture::kRoberta);
  Rng rng(13);
  auto model = models::CreateTransformer(cfg, &rng);
  PretrainOptions opts;
  opts.steps = 120;
  opts.batch_size = 8;
  opts.data.max_seq_len = 24;
  opts.learning_rate = 1e-3f;
  auto stats = Pretrain(model.get(), tokenizer_, *corpus_, opts);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats.value().final_loss, stats.value().first_loss);

  LmDataOptions dopts;
  dopts.max_seq_len = 24;
  dopts.seed = 424242;
  LmBatchBuilder builder(tokenizer_, *corpus_, dopts);
  Rng eval_rng(5);
  int64_t correct = 0, total = 0;
  for (int i = 0; i < 12; ++i) {
    LmBatch b = builder.NextPairBatch(8);
    Variable h = model->EncodeBatch(b.batch, false, &eval_rng);
    Variable pooled = model->PooledOutput(h, false, &eval_rng);
    Variable logits = model->PairLogits(pooled, false, &eval_rng);
    auto preds = ops::ArgMaxLastAxis(logits.value());
    for (size_t k = 0; k < b.nsp_labels.size(); ++k) {
      ++total;
      if (preds[k] == b.nsp_labels[k]) ++correct;
    }
  }
  // Not worse than always predicting the majority class.
  EXPECT_GE(static_cast<double>(correct) / total, 0.42);
}

// ---- Pre-training improves the LM -------------------------------------------------

TEST_F(PretrainFixture, MlmPretrainingReducesLossAndBeatsChance) {
  models::TransformerConfig cfg = TinyConfig(models::Architecture::kRoberta);
  Rng rng(3);
  auto model = models::CreateTransformer(cfg, &rng);
  PretrainOptions opts;
  opts.steps = 60;
  opts.batch_size = 8;
  opts.data.max_seq_len = 24;
  opts.learning_rate = 5e-4f;
  auto stats = Pretrain(model.get(), tokenizer_, *corpus_, opts);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats.value().final_loss, stats.value().first_loss);

  LmDataOptions dopts;
  dopts.max_seq_len = 24;
  const double acc =
      MlmAccuracy(model.get(), tokenizer_, *corpus_, dopts, 8, 8, 99);
  // Far better than uniform chance (1/vocab ~ 0.25%).
  EXPECT_GT(acc, 0.05);
}

TEST_F(PretrainFixture, BertPretrainingRunsWithNsp) {
  models::TransformerConfig cfg = TinyConfig(models::Architecture::kBert);
  Rng rng(4);
  auto model = models::CreateTransformer(cfg, &rng);
  PretrainOptions opts;
  opts.steps = 25;
  opts.batch_size = 8;
  opts.data.max_seq_len = 24;
  auto stats = Pretrain(model.get(), tokenizer_, *corpus_, opts);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats.value().final_loss, stats.value().first_loss * 1.2f);
}

TEST_F(PretrainFixture, XlnetPermutationPretrainingRuns) {
  models::TransformerConfig cfg = TinyConfig(models::Architecture::kXlnet);
  Rng rng(5);
  auto model = models::CreateTransformer(cfg, &rng);
  PretrainOptions opts;
  opts.steps = 20;
  opts.batch_size = 6;
  opts.data.max_seq_len = 20;
  auto stats = Pretrain(model.get(), tokenizer_, *corpus_, opts);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats.value().first_loss, 0.0f);
}

TEST_F(PretrainFixture, DistillationRequiresTeacher) {
  models::TransformerConfig cfg = TinyConfig(models::Architecture::kDistilBert);
  Rng rng(6);
  auto model = models::CreateTransformer(cfg, &rng);
  PretrainOptions opts;
  opts.steps = 5;
  auto stats = Pretrain(model.get(), tokenizer_, *corpus_, opts, nullptr);
  EXPECT_FALSE(stats.ok());
}

TEST_F(PretrainFixture, DistillationFromTeacherRuns) {
  Rng rng(7);
  auto teacher = models::CreateTransformer(
      TinyConfig(models::Architecture::kBert), &rng);
  {
    PretrainOptions topts;
    topts.steps = 20;
    topts.batch_size = 8;
    topts.data.max_seq_len = 20;
    ASSERT_TRUE(Pretrain(teacher.get(), tokenizer_, *corpus_, topts).ok());
  }
  auto student = models::CreateTransformer(
      TinyConfig(models::Architecture::kDistilBert), &rng);
  PretrainOptions opts;
  opts.steps = 20;
  opts.batch_size = 8;
  opts.data.max_seq_len = 20;
  auto stats =
      Pretrain(student.get(), tokenizer_, *corpus_, opts, teacher.get());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LT(stats.value().final_loss, stats.value().first_loss);
}

// ---- Static vs dynamic masking semantics -------------------------------------------

TEST_F(PretrainFixture, StaticMaskingIsStablePerExample) {
  // Two builders with the same seed visiting the same examples must apply
  // identical masks in static mode.
  LmDataOptions opts;
  opts.max_seq_len = 24;
  opts.seed = 555;
  LmBatchBuilder b1(tokenizer_, *corpus_, opts);
  LmBatchBuilder b2(tokenizer_, *corpus_, opts);
  LmBatch x1 = b1.NextMlmBatch(6, false, /*dynamic=*/false);
  LmBatch x2 = b2.NextMlmBatch(6, false, /*dynamic=*/false);
  EXPECT_EQ(x1.batch.ids, x2.batch.ids);
  EXPECT_EQ(x1.lm_labels, x2.lm_labels);
}

// ---- Model zoo ----------------------------------------------------------------------

TEST(ModelZooTest, TrainsAndCachesTokenizer) {
  ZooOptions zoo;
  zoo.cache_dir = "/tmp/emx_zoo_test_tok";
  std::filesystem::remove_all(zoo.cache_dir);
  zoo.vocab_size = 300;
  zoo.corpus.num_documents = 60;

  auto t1 = GetTokenizer(models::Architecture::kBert, zoo);
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  // Second call loads from cache and must tokenize identically.
  auto t2 = GetTokenizer(models::Architecture::kBert, zoo);
  ASSERT_TRUE(t2.ok());
  const std::string probe = "the apple a15 phone with hd display";
  EXPECT_EQ(t1.value()->Encode(probe), t2.value()->Encode(probe));
  std::filesystem::remove_all(zoo.cache_dir);
}

TEST(ModelZooTest, PretrainedModelIsCached) {
  ZooOptions zoo;
  zoo.cache_dir = "/tmp/emx_zoo_test_model";
  std::filesystem::remove_all(zoo.cache_dir);
  zoo.vocab_size = 300;
  zoo.corpus.num_documents = 60;
  zoo.pretrain.steps = 8;
  zoo.pretrain.batch_size = 4;
  zoo.pretrain.data.max_seq_len = 20;

  auto b1 = GetPretrained(models::Architecture::kRoberta, zoo);
  ASSERT_TRUE(b1.ok()) << b1.status().ToString();
  auto b2 = GetPretrained(models::Architecture::kRoberta, zoo);
  ASSERT_TRUE(b2.ok());
  // The cached load reproduces the exact weights.
  auto p1 = b1.value().model->Parameters();
  auto p2 = b2.value().model->Parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_TRUE(ops::AllClose(p1[i].var.value(), p2[i].var.value(), 1e-6f))
        << p1[i].name;
  }
  std::filesystem::remove_all(zoo.cache_dir);
}

TEST(ModelZooTest, SkipPretrainingGivesRandomModel) {
  ZooOptions zoo;
  zoo.cache_dir = "/tmp/emx_zoo_test_skip";
  std::filesystem::remove_all(zoo.cache_dir);
  zoo.vocab_size = 300;
  zoo.corpus.num_documents = 60;
  zoo.skip_pretraining = true;
  auto b = GetPretrained(models::Architecture::kBert, zoo);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(b.value().model, nullptr);
  EXPECT_NE(b.value().tokenizer, nullptr);
  std::filesystem::remove_all(zoo.cache_dir);
}

}  // namespace
}  // namespace pretrain
}  // namespace emx
