#include <gtest/gtest.h>

#include <cmath>

#include "models/classifier.h"
#include "models/config.h"
#include "models/encoder.h"
#include "models/transformer.h"
#include "models/xlnet.h"
#include "nn/optimizer.h"
#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace emx {
namespace models {
namespace {

namespace ag = autograd;

TransformerConfig SmallConfig(Architecture arch) {
  TransformerConfig cfg = TransformerConfig::Scaled(arch, /*vocab_size=*/50);
  cfg.hidden = 16;
  cfg.num_layers = 2;
  cfg.num_heads = 2;
  cfg.intermediate = 32;
  cfg.max_seq_len = 16;
  cfg.dropout = 0.0f;
  return cfg;
}

Batch MakeBatch(int64_t b, int64_t t, Rng* rng, int64_t vocab = 50) {
  Batch batch;
  batch.batch_size = b;
  batch.seq_len = t;
  for (int64_t i = 0; i < b * t; ++i) {
    batch.ids.push_back(rng->NextInt(5, vocab - 1));
    batch.segment_ids.push_back(i % t < t / 2 ? 0 : 1);
  }
  batch.attention_mask = Tensor({b, 1, 1, t});  // nothing masked
  return batch;
}

// ---- Config ------------------------------------------------------------

TEST(ConfigTest, ScaledPresetsMatchPaperDeltas) {
  auto bert = TransformerConfig::Scaled(Architecture::kBert, 1000);
  auto roberta = TransformerConfig::Scaled(Architecture::kRoberta, 1000);
  auto distil = TransformerConfig::Scaled(Architecture::kDistilBert, 1000);
  auto xlnet = TransformerConfig::Scaled(Architecture::kXlnet, 1000);

  // DistilBERT halves BERT's layers and removes pooler + token types.
  EXPECT_EQ(distil.num_layers, bert.num_layers / 2);
  EXPECT_FALSE(distil.use_pooler);
  EXPECT_EQ(distil.type_vocab_size, 0);
  // RoBERTa drops NSP and uses dynamic masking.
  EXPECT_TRUE(bert.use_nsp_head);
  EXPECT_FALSE(roberta.use_nsp_head);
  EXPECT_TRUE(roberta.dynamic_masking);
  EXPECT_FALSE(bert.dynamic_masking);
  // XLNet keeps BERT depth.
  EXPECT_EQ(xlnet.num_layers, bert.num_layers);
}

TEST(ConfigTest, PaperScaleTable4) {
  auto entries = PaperScaleConfigs();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_STREQ(entries[0].name, "BERT");
  EXPECT_EQ(entries[0].layers, 12);
  EXPECT_EQ(entries[3].layers, 6);  // DistilBERT
  EXPECT_STREQ(entries[3].params, "66M");
}

TEST(ConfigTest, ArchitectureNames) {
  EXPECT_STREQ(ArchitectureName(Architecture::kBert), "BERT");
  EXPECT_STREQ(ArchitectureName(Architecture::kXlnet), "XLNet");
}

// ---- EncoderModel (BERT family) ---------------------------------------------

TEST(EncoderModelTest, OutputShape) {
  Rng rng(1);
  EncoderModel model(SmallConfig(Architecture::kBert), &rng);
  Batch batch = MakeBatch(3, 8, &rng);
  Variable h = model.EncodeBatch(batch, false, &rng);
  EXPECT_EQ(h.shape(), (Shape{3, 8, 16}));
  Variable pooled = model.PooledOutput(h, false, &rng);
  EXPECT_EQ(pooled.shape(), (Shape{3, 16}));
  Variable mlm = model.MlmLogits(h, false, &rng);
  EXPECT_EQ(mlm.shape(), (Shape{24, 50}));
  Variable nsp = model.NspLogits(pooled, false, &rng);
  EXPECT_EQ(nsp.shape(), (Shape{3, 2}));
}

TEST(EncoderModelTest, RobertaHasNoSegmentParams) {
  Rng rng(2);
  EncoderModel bert(SmallConfig(Architecture::kBert), &rng);
  EncoderModel roberta(SmallConfig(Architecture::kRoberta), &rng);
  bool bert_has_seg = false, roberta_has_seg = false;
  for (auto& p : bert.Parameters()) {
    if (p.name.find("seg_emb") != std::string::npos) bert_has_seg = true;
  }
  for (auto& p : roberta.Parameters()) {
    if (p.name.find("seg_emb") != std::string::npos) roberta_has_seg = true;
  }
  EXPECT_TRUE(bert_has_seg);
  EXPECT_FALSE(roberta_has_seg);
}

TEST(EncoderModelTest, DistilBertSmallerThanBert) {
  Rng rng(3);
  EncoderModel bert(SmallConfig(Architecture::kBert), &rng);
  EncoderModel distil(SmallConfig(Architecture::kDistilBert), &rng);
  EXPECT_LT(distil.NumParameters(), bert.NumParameters());
}

TEST(EncoderModelTest, PaddingMaskMakesPaddingIrrelevant) {
  // Changing token ids at masked (padded) positions must not change the
  // CLS representation.
  Rng rng(4);
  TransformerConfig cfg = SmallConfig(Architecture::kBert);
  EncoderModel model(cfg, &rng);
  Batch batch = MakeBatch(1, 8, &rng);
  // Mask last 3 positions.
  for (int64_t j = 5; j < 8; ++j) batch.attention_mask.At({0, 0, 0, j}) = 1.0f;

  Variable h1 = model.EncodeBatch(batch, false, &rng);
  Tensor cls1 = ops::SelectTimeStep(h1.value(), 0);

  Batch batch2 = batch;
  batch2.ids = batch.ids;
  batch2.ids[6] = (batch2.ids[6] + 7) % 45 + 5;
  batch2.ids[7] = (batch2.ids[7] + 13) % 45 + 5;
  Variable h2 = model.EncodeBatch(batch2, false, &rng);
  Tensor cls2 = ops::SelectTimeStep(h2.value(), 0);
  EXPECT_TRUE(ops::AllClose(cls1, cls2, 1e-5f));
}

TEST(EncoderModelTest, SegmentIdsChangeOutput) {
  Rng rng(5);
  EncoderModel model(SmallConfig(Architecture::kBert), &rng);
  Batch batch = MakeBatch(1, 8, &rng);
  Variable h1 = model.EncodeBatch(batch, false, &rng);
  Batch batch2 = batch;
  batch2.segment_ids.assign(batch.segment_ids.size(), 1);
  Variable h2 = model.EncodeBatch(batch2, false, &rng);
  EXPECT_FALSE(ops::AllClose(h1.value(), h2.value(), 1e-5f));
}

TEST(EncoderModelTest, DeterministicAtEval) {
  Rng rng(6);
  EncoderModel model(SmallConfig(Architecture::kBert), &rng);
  Batch batch = MakeBatch(2, 6, &rng);
  Rng r1(9), r2(9);
  Variable a = model.EncodeBatch(batch, false, &r1);
  Variable b = model.EncodeBatch(batch, false, &r2);
  EXPECT_TRUE(ops::AllClose(a.value(), b.value()));
}

// ---- XLNet --------------------------------------------------------------------

TEST(XlnetTest, RelativeSinusoidShapeAndSymmetry) {
  Tensor r = XlnetModel::RelativeSinusoid(5, 8);
  EXPECT_EQ(r.shape(), (Shape{9, 8}));
  // Distance 0 row (p = 4): sin(0)=0, cos(0)=1.
  EXPECT_NEAR(r.At({4, 0}), 0.0f, 1e-6);
  EXPECT_NEAR(r.At({4, 1}), 1.0f, 1e-6);
  // sin is odd in distance: row p and row 2T-2-p mirror.
  EXPECT_NEAR(r.At({0, 0}), -r.At({8, 0}), 1e-5);
  // cos is even.
  EXPECT_NEAR(r.At({0, 1}), r.At({8, 1}), 1e-5);
}

TEST(XlnetTest, RelativeShiftGathersCorrectDiagonals) {
  // bd[0,0,i,p] = p, then out[0,0,i,j] = (T-1) - i + j.
  const int64_t t = 4;
  Tensor bd({1, 1, t, 2 * t - 1});
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t p = 0; p < 2 * t - 1; ++p) {
      bd.At({0, 0, i, p}) = static_cast<float>(p);
    }
  }
  Variable out = RelativeShift(Variable::Constant(bd), t);
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      EXPECT_EQ(out.value().At({0, 0, i, j}), static_cast<float>(t - 1 - i + j));
    }
  }
}

TEST(XlnetTest, RelativeShiftGradCheck) {
  Rng rng(7);
  const int64_t t = 3;
  Tensor x = Tensor::Randn({1, 2, t, 2 * t - 1}, &rng);
  float diff = GradCheck(
      [t](const Variable& v) {
        Variable s = RelativeShift(v, t);
        return ag::MeanAll(ag::Mul(s, s));
      },
      x);
  EXPECT_LT(diff, 2e-2f);
}

TEST(XlnetTest, EncodeShape) {
  Rng rng(8);
  XlnetModel model(SmallConfig(Architecture::kXlnet), &rng);
  Batch batch = MakeBatch(2, 8, &rng);
  Variable h = model.EncodeBatch(batch, false, &rng);
  EXPECT_EQ(h.shape(), (Shape{2, 8, 16}));
  Variable pooled = model.PooledOutput(h, false, &rng);
  EXPECT_EQ(pooled.shape(), (Shape{2, 16}));
}

TEST(XlnetTest, RelativePositionsMatter) {
  // Same tokens in a different order must produce different CLS output
  // even though XLNet has no absolute position embeddings.
  Rng rng(9);
  XlnetModel model(SmallConfig(Architecture::kXlnet), &rng);
  Batch batch = MakeBatch(1, 6, &rng);
  batch.ids = {10, 11, 12, 13, 14, 15};
  Variable h1 = model.EncodeBatch(batch, false, &rng);
  Batch batch2 = batch;
  batch2.ids = {10, 13, 12, 11, 14, 15};
  Variable h2 = model.EncodeBatch(batch2, false, &rng);
  Tensor c1 = ops::SelectTimeStep(h1.value(), 5);
  Tensor c2 = ops::SelectTimeStep(h2.value(), 5);
  EXPECT_FALSE(ops::AllClose(c1, c2, 1e-5f));
}

TEST(XlnetTest, TwoStreamQueryCannotSeeOwnContent) {
  // With a factorization order, g_i must be invariant to the token at
  // position i (it may only see perm-earlier content).
  Rng rng(10);
  TransformerConfig cfg = SmallConfig(Architecture::kXlnet);
  XlnetModel model(cfg, &rng);
  const int64_t t = 5;
  Batch batch = MakeBatch(1, t, &rng);

  // Identity factorization order: perm_pos[i] = i.
  Tensor content_mask({1, 1, t, t});
  Tensor query_mask({1, 1, t, t});
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      content_mask.At({0, 0, i, j}) = j <= i ? 0.0f : 1.0f;
      query_mask.At({0, 0, i, j}) = j < i ? 0.0f : 1.0f;
    }
  }

  TwoStreamOutput out1 =
      model.TwoStreamForward(batch, content_mask, query_mask, false, &rng);
  // Change the token at position 3; g_3 and g_<3 must be unchanged.
  Batch batch2 = batch;
  batch2.ids[3] = (batch2.ids[3] + 11) % 45 + 5;
  TwoStreamOutput out2 =
      model.TwoStreamForward(batch2, content_mask, query_mask, false, &rng);
  for (int64_t pos = 0; pos <= 3; ++pos) {
    Tensor g1 = ops::SelectTimeStep(out1.query.value(), pos);
    Tensor g2 = ops::SelectTimeStep(out2.query.value(), pos);
    EXPECT_TRUE(ops::AllClose(g1, g2, 1e-5f)) << "pos " << pos;
  }
  // But g_4 (perm-later) does see position 3.
  Tensor g1 = ops::SelectTimeStep(out1.query.value(), 4);
  Tensor g2 = ops::SelectTimeStep(out2.query.value(), 4);
  EXPECT_FALSE(ops::AllClose(g1, g2, 1e-5f));
}

TEST(XlnetTest, SlowerThanBertPerForward) {
  // The relative-attention machinery makes XLNet measurably more work per
  // token than BERT at the same depth — the cause of Table 6's timing shape.
  // Compare parameter counts as a cheap proxy (wr + biases are extra).
  Rng rng(11);
  auto bert_cfg = SmallConfig(Architecture::kBert);
  auto xlnet_cfg = SmallConfig(Architecture::kXlnet);
  EncoderModel bert(bert_cfg, &rng);
  XlnetModel xlnet(xlnet_cfg, &rng);
  // Per layer, XLNet adds wr (H*H+H) and u/v biases (2H).
  EXPECT_GT(xlnet.NumParameters(),
            bert.NumParameters() - bert_cfg.max_seq_len * bert_cfg.hidden);
}

// ---- Split encoding (prefix reuse) ------------------------------------------

/// A pair batch with genuine per-row padding: row 0 is full, row 1 pads the
/// last `pad` positions. Segment 0 covers the first half of the real
/// tokens, segment 1 the rest — the layout the serving split path feeds.
Batch MakePaddedPairBatch(int64_t b, int64_t t, int64_t pad, Rng* rng) {
  Batch batch;
  batch.batch_size = b;
  batch.seq_len = t;
  std::vector<float> flat(static_cast<size_t>(b * t), 0.0f);
  for (int64_t r = 0; r < b; ++r) {
    const int64_t real = r == 0 ? t : t - pad;
    for (int64_t j = 0; j < t; ++j) {
      batch.ids.push_back(j < real ? rng->NextInt(5, 49) : 0);
      batch.segment_ids.push_back(j < real / 2 ? 0 : 1);
      if (j >= real) flat[static_cast<size_t>(r * t + j)] = 1.0f;
    }
  }
  batch.attention_mask = Batch::MakeMask(flat, b, t);
  return batch;
}

TEST(SplitEncodeTest, SegmentLocalMaskBlocksCrossSegmentAndPadding) {
  // 1 row, 4 positions: seg ids 0,0,1,pad. Blocked = cross-segment or pad.
  const std::vector<float> flat = {0, 0, 0, 1};
  const std::vector<int64_t> seg = {0, 0, 1, 1};
  Tensor mask = Batch::MakeSegmentLocalMask(flat, seg, 1, 4);
  ASSERT_EQ(mask.shape(), (Shape{1, 1, 4, 4}));
  auto at = [&](int64_t i, int64_t j) { return mask[i * 4 + j]; };
  // Same-segment real pairs attend.
  EXPECT_EQ(at(0, 0), 0.0f);
  EXPECT_EQ(at(0, 1), 0.0f);
  EXPECT_EQ(at(2, 2), 0.0f);
  // Cross-segment pairs are blocked both ways.
  EXPECT_EQ(at(0, 2), 1.0f);
  EXPECT_EQ(at(2, 0), 1.0f);
  // Padding is blocked as query and as key, even same-segment.
  EXPECT_EQ(at(3, 2), 1.0f);
  EXPECT_EQ(at(2, 3), 1.0f);
  EXPECT_EQ(at(3, 3), 1.0f);
}

TEST(SplitEncodeTest, K0SegmentLocalIsBitIdenticalToEncodeBatch) {
  // At split_layer = 0 no layer runs segment-local, so the "split" forward
  // is the ordinary forward — bit-for-bit, padding included.
  Rng rng(21);
  TransformerConfig cfg = SmallConfig(Architecture::kBert);
  EncoderModel model(cfg, &rng);
  Batch batch = MakePaddedPairBatch(2, 8, 3, &rng);
  Rng r1(5), r2(5);
  Variable full = model.EncodeBatch(batch, false, &r1);
  Variable split = model.EncodeBatchSegmentLocal(batch, 0, false, &r2);
  ASSERT_EQ(full.shape(), split.shape());
  for (int64_t i = 0; i < full.value().size(); ++i) {
    ASSERT_EQ(full.value()[i], split.value()[i]) << "element " << i;
  }
}

TEST(SplitEncodeTest, PerSegmentPrefixesConcatenateExactly) {
  // The recurrence the serving cache relies on: encoding each segment alone
  // (at its pair position offset) through layers [0, k), concatenating, and
  // resuming at layer k reproduces the segment-local pair forward exactly —
  // blocked keys contribute exactly zero, so the per-segment prefixes are
  // bitwise the same rows the block-diagonal pair forward computes.
  Rng rng(22);
  TransformerConfig cfg = SmallConfig(Architecture::kBert);
  EncoderModel model(cfg, &rng);
  const int64_t k = 1;
  const int64_t la = 4, lb = 4, t = la + lb;

  Batch pair;
  pair.batch_size = 1;
  pair.seq_len = t;
  for (int64_t j = 0; j < t; ++j) {
    pair.ids.push_back(10 + j);
    pair.segment_ids.push_back(j < la ? 0 : 1);
  }
  pair.attention_mask = Tensor({1, 1, 1, t});  // no padding

  auto segment_batch = [&](int64_t begin, int64_t len, int64_t seg) {
    Batch b;
    b.batch_size = 1;
    b.seq_len = len;
    for (int64_t j = 0; j < len; ++j) {
      b.ids.push_back(pair.ids[static_cast<size_t>(begin + j)]);
      b.segment_ids.push_back(seg);
    }
    return b;
  };
  Rng r0(9);
  Variable prefix_a =
      model.EncodeSegmentPrefix(segment_batch(0, la, 0), k, 0, &r0);
  Variable prefix_b =
      model.EncodeSegmentPrefix(segment_batch(la, lb, 1), k, la, &r0);
  ASSERT_EQ(prefix_a.shape(), (Shape{1, la, cfg.hidden}));
  ASSERT_EQ(prefix_b.shape(), (Shape{1, lb, cfg.hidden}));

  // Resuming from the concatenated prefixes finishes the forward
  // identically to running the segment-local batch end to end.
  Variable cat = ag::Concat({prefix_a, prefix_b}, 1);
  Rng r2(9), r3(9);
  Variable resumed =
      model.EncodeFromLayer(cat, pair.attention_mask, k, false, &r2);
  Variable direct = model.EncodeBatchSegmentLocal(pair, k, false, &r3);
  for (int64_t i = 0; i < resumed.value().size(); ++i) {
    ASSERT_EQ(resumed.value()[i], direct.value()[i]) << "element " << i;
  }
}

TEST(SplitEncodeTest, LogitsSplitMatchesLogitsAtK0) {
  Rng rng(23);
  auto backbone = CreateTransformer(SmallConfig(Architecture::kBert), &rng);
  SequencePairClassifier cls(std::move(backbone), &rng);
  Batch batch = MakePaddedPairBatch(3, 8, 2, &rng);
  Rng r1(4), r2(4);
  Variable logits = cls.Logits(batch, false, &r1);
  Variable split = cls.LogitsSplit(batch, 0, false, &r2);
  ASSERT_EQ(logits.shape(), split.shape());
  for (int64_t i = 0; i < logits.value().size(); ++i) {
    EXPECT_EQ(logits.value()[i], split.value()[i]) << "logit " << i;
  }
}

TEST(SplitEncodeTest, OnlyEncoderFamilySupportsSplit) {
  Rng rng(24);
  for (auto arch : {Architecture::kBert, Architecture::kRoberta,
                    Architecture::kDistilBert}) {
    auto model = CreateTransformer(SmallConfig(arch), &rng);
    EXPECT_TRUE(model->SupportsSplitEncode()) << ArchitectureName(arch);
  }
  auto xlnet = CreateTransformer(SmallConfig(Architecture::kXlnet), &rng);
  EXPECT_FALSE(xlnet->SupportsSplitEncode())
      << "XLNet's two-stream relative attention has no per-segment prefix";
}

// ---- Factory --------------------------------------------------------------------

TEST(FactoryTest, CreatesCorrectTypes) {
  Rng rng(12);
  for (auto arch : {Architecture::kBert, Architecture::kRoberta,
                    Architecture::kDistilBert, Architecture::kXlnet}) {
    auto model = CreateTransformer(SmallConfig(arch), &rng);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->config().arch, arch);
    Batch batch = MakeBatch(1, 6, &rng);
    Variable h = model->EncodeBatch(batch, false, &rng);
    EXPECT_EQ(h.shape(), (Shape{1, 6, 16}));
  }
}

// ---- Classifier ------------------------------------------------------------------

TEST(ClassifierTest, LogitShapeAndPredictRange) {
  Rng rng(13);
  auto backbone = CreateTransformer(SmallConfig(Architecture::kBert), &rng);
  SequencePairClassifier cls(std::move(backbone), &rng);
  Batch batch = MakeBatch(4, 8, &rng);
  Variable logits = cls.Logits(batch, false, &rng);
  EXPECT_EQ(logits.shape(), (Shape{4, 2}));
  auto preds = cls.Predict(batch, &rng);
  ASSERT_EQ(preds.size(), 4u);
  for (int64_t p : preds) EXPECT_TRUE(p == 0 || p == 1);
}

TEST(ClassifierTest, LearnsToySeparation) {
  // Pairs where both halves share a marker token are "matches".
  Rng rng(14);
  TransformerConfig cfg = SmallConfig(Architecture::kBert);
  auto backbone = CreateTransformer(cfg, &rng);
  SequencePairClassifier cls(std::move(backbone), &rng);
  nn::AdamOptions opts;
  opts.lr = 3e-3f;
  nn::Adam adam(cls.Parameters(), opts);

  const int64_t t = 8;
  auto make_batch = [&](bool match, int64_t marker) {
    Batch b;
    b.batch_size = 1;
    b.seq_len = t;
    b.ids = {2, marker, 7, 3, match ? marker : (marker % 40 + 6), 8, 9, 3};
    b.segment_ids = {0, 0, 0, 0, 1, 1, 1, 1};
    b.attention_mask = Tensor({1, 1, 1, t});
    return b;
  };

  float last_loss = 1e9f;
  for (int step = 0; step < 80; ++step) {
    adam.ZeroGrad();
    bool match = step % 2 == 0;
    int64_t marker = 10 + step % 20;
    Batch batch = make_batch(match, marker);
    Variable logits = cls.Logits(batch, true, &rng);
    Variable loss = ag::CrossEntropy(logits, {match ? 1 : 0});
    last_loss = loss.value()[0];
    Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last_loss, 0.5f);
}

TEST(ClassifierTest, HeadWarmStartsFromPairHead) {
  // The classifier's output layer is seeded from the backbone's pretrained
  // copy-discrimination head and dense_ starts as a noisy identity.
  Rng rng(77);
  auto backbone = CreateTransformer(SmallConfig(Architecture::kBert), &rng);
  TransformerModel* raw = backbone.get();
  SequencePairClassifier cls(std::move(backbone), &rng);
  ASSERT_NE(raw->pair_head(), nullptr);
  EXPECT_TRUE(ops::AllClose(cls.out_layer().weight().value(),
                            raw->pair_head()->weight().value()));
  EXPECT_TRUE(ops::AllClose(cls.out_layer().bias().value(),
                            raw->pair_head()->bias().value()));
  // dense_ diagonal is near 1, off-diagonal near 0.
  const Tensor& dw = cls.dense_layer().weight().value();
  const int64_t h = dw.dim(0);
  for (int64_t i = 0; i < h; ++i) {
    EXPECT_NEAR(dw.At({i, i}), 1.0f, 0.2f);
    EXPECT_NEAR(dw.At({i, (i + 1) % h}), 0.0f, 0.2f);
  }
}

TEST(ClassifierTest, ParameterNamesPrefixedAndUnique) {
  Rng rng(15);
  auto backbone = CreateTransformer(SmallConfig(Architecture::kXlnet), &rng);
  SequencePairClassifier cls(std::move(backbone), &rng);
  auto params = cls.Parameters();
  std::set<std::string> names;
  for (auto& p : params) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate name " << p.name;
  }
  EXPECT_GT(params.size(), 20u);
}

TEST(ClassifierTest, SaveLoadRoundTripPredictionsIdentical) {
  Rng rng(16);
  auto b1 = CreateTransformer(SmallConfig(Architecture::kRoberta), &rng);
  SequencePairClassifier c1(std::move(b1), &rng);
  Rng rng2(99);
  auto b2 = CreateTransformer(SmallConfig(Architecture::kRoberta), &rng2);
  SequencePairClassifier c2(std::move(b2), &rng2);

  std::string path = "/tmp/emx_cls_params.bin";
  ASSERT_TRUE(nn::SaveParameters(path, c1.Parameters()).ok());
  ASSERT_TRUE(nn::LoadParameters(path, c2.Parameters()).ok());

  Batch batch = MakeBatch(3, 8, &rng);
  Variable l1 = c1.Logits(batch, false, &rng);
  Variable l2 = c2.Logits(batch, false, &rng);
  EXPECT_TRUE(ops::AllClose(l1.value(), l2.value(), 1e-5f));
  std::remove(path.c_str());
}

// ---- Cross-architecture parameterized smoke tests --------------------------------

class AllArchitecturesTest : public ::testing::TestWithParam<Architecture> {};

TEST_P(AllArchitecturesTest, ForwardBackwardProducesGradients) {
  Rng rng(17);
  auto backbone = CreateTransformer(SmallConfig(GetParam()), &rng);
  SequencePairClassifier cls(std::move(backbone), &rng);
  Batch batch = MakeBatch(2, 8, &rng);
  Variable logits = cls.Logits(batch, true, &rng);
  Variable loss = ag::CrossEntropy(logits, {0, 1});
  Backward(loss);
  int64_t with_grad = 0;
  for (auto& p : cls.Parameters()) {
    float asum = 0;
    for (int64_t i = 0; i < p.var.grad().size(); ++i) {
      asum += std::abs(p.var.grad()[i]);
    }
    if (asum > 0) ++with_grad;
  }
  // Nearly all parameters receive gradient (the NSP head and MLM heads are
  // not part of the classification loss).
  EXPECT_GT(with_grad, static_cast<int64_t>(cls.Parameters().size() * 2 / 3));
}

TEST_P(AllArchitecturesTest, MlmLogitsShape) {
  Rng rng(18);
  auto model = CreateTransformer(SmallConfig(GetParam()), &rng);
  Batch batch = MakeBatch(2, 6, &rng);
  Variable h = model->EncodeBatch(batch, false, &rng);
  Variable mlm = model->MlmLogits(h, false, &rng);
  EXPECT_EQ(mlm.shape(), (Shape{12, 50}));
}

INSTANTIATE_TEST_SUITE_P(
    FourArchitectures, AllArchitecturesTest,
    ::testing::Values(Architecture::kBert, Architecture::kRoberta,
                      Architecture::kDistilBert, Architecture::kXlnet),
    [](const ::testing::TestParamInfo<Architecture>& info) {
      return std::string(ArchitectureName(info.param));
    });

}  // namespace
}  // namespace models
}  // namespace emx
