#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/entity_matcher.h"
#include "data/blocking.h"
#include "file_fuzz.h"
#include "data/generators.h"
#include "data/record.h"
#include "pretrain/model_zoo.h"
#include "retrieval/catalog_matcher.h"
#include "retrieval/qgram_index.h"
#include "serve/matcher_engine.h"

namespace emx {
namespace retrieval {
namespace {

// ---- Feature extraction ----------------------------------------------------

TEST(QGramIndexTest, FeaturesArePaddedGramsAndWholeTokens) {
  QGramIndex index;
  auto feats = index.Features("Acer ZX-55");
  // Whole lower-cased tokens are features...
  EXPECT_NE(std::find(feats.begin(), feats.end(), "acer"), feats.end());
  EXPECT_NE(std::find(feats.begin(), feats.end(), "zx-55"), feats.end());
  // ...and so are boundary-padded 3-grams, which "zx55" shares.
  EXPECT_NE(std::find(feats.begin(), feats.end(), "^zx"), feats.end());
  EXPECT_NE(std::find(feats.begin(), feats.end(), "55$"), feats.end());
  // Deduplicated.
  auto sorted = feats;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(QGramIndexTest, ModelNumberVariantsShareGrams) {
  QGramIndex index;
  auto a = index.Features("zx55");
  auto b = index.Features("zx-55");
  int64_t shared = 0;
  for (const auto& f : a) {
    if (std::find(b.begin(), b.end(), f) != b.end()) ++shared;
  }
  EXPECT_GE(shared, 2);  // at least the edge grams survive the hyphen
}

TEST(QGramIndexTest, VariantRenderingsCollapseToOneExactToken) {
  QGramIndex index;
  // Hyphenated, space-split, and unperturbed renderings of a model number
  // must all emit the exact token "zx55" — grams alone drown in coincidental
  // overlap at million-record scale.
  for (const char* text : {"acer zx55 laptop", "acer zx-55 laptop",
                           "acer zx 55 laptop"}) {
    auto feats = index.Features(text);
    EXPECT_NE(std::find(feats.begin(), feats.end(), "zx55"), feats.end())
        << "missing exact-token alias for: " << text;
  }
}

// ---- Scoring ---------------------------------------------------------------

TEST(QGramIndexTest, ExactModelMatchOutranksSiblingAndStranger) {
  QGramIndex index;
  EXPECT_EQ(index.AddRecord("acer zen zx55 laptop silver"), 0);
  EXPECT_EQ(index.AddRecord("acer zen zx56 laptop black"), 1);
  EXPECT_EQ(index.AddRecord("dell vostro desktop tower"), 2);

  auto top = index.TopK("acer zx55 notebook", 3);
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].id, 0);  // shares the rare "zx55" grams
  EXPECT_EQ(top[1].id, 1);  // sibling: brand + partial model overlap
  EXPECT_GT(top[0].score, top[1].score);
}

TEST(QGramIndexTest, TiesBreakByAscendingId) {
  QGramIndex index;
  index.AddRecord("identical text");
  index.AddRecord("identical text");
  index.AddRecord("identical text");
  auto top = index.TopK("identical text", 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].id, 0);
  EXPECT_EQ(top[1].id, 1);
  EXPECT_EQ(top[2].id, 2);
  EXPECT_DOUBLE_EQ(top[0].score, top[1].score);
}

TEST(QGramIndexTest, EmptyIndexAndEmptyQueryReturnNothing) {
  QGramIndex index;
  EXPECT_TRUE(index.TopK("anything", 5).empty());
  index.AddRecord("acer laptop");
  EXPECT_TRUE(index.TopK("", 5).empty());
  EXPECT_TRUE(index.TopK("acer", 0).empty());
}

TEST(QGramIndexTest, StopFeatureCapFreesPostingsAndStopsScoring) {
  IndexOptions opts;
  opts.num_shards = 1;
  opts.max_postings = 4;
  opts.qgram = 0;  // token features only, to keep the arithmetic simple
  QGramIndex index(opts);
  for (int i = 0; i < 10; ++i) {
    index.AddRecord("common filler" + std::to_string(i));
  }
  // "common" appeared 10 times > cap 4: demoted to a stop feature.
  EXPECT_GE(index.num_stop_features(), 1);
  // A query of only the stopped feature retrieves nothing...
  EXPECT_TRUE(index.TopK("common", 5).empty());
  // ...but the rare per-record token still works.
  auto top = index.TopK("filler3", 5);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].id, 3);
}

// ---- Persistence -----------------------------------------------------------

TEST(QGramIndexTest, SaveLoadRoundTripIsBitIdentical) {
  const std::string path = "/tmp/emx_retrieval_test_index.bin";
  IndexOptions opts;
  opts.num_shards = 4;
  QGramIndex index(opts);
  data::CatalogSpec spec;
  spec.num_records = 200;
  spec.num_queries = 20;
  data::Catalog cat = data::GenerateCatalog(spec);
  index.AddBatch(cat.records);

  ASSERT_TRUE(index.Save(path).ok());
  auto loaded = QGramIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), index.size());
  EXPECT_EQ(loaded.value().num_features(), index.num_features());
  EXPECT_EQ(loaded.value().num_stop_features(), index.num_stop_features());

  // Candidate sets must match bit-for-bit: same ids, same scores.
  for (const std::string& q : cat.queries) {
    auto a = index.TopK(q, 50);
    auto b = loaded.value().TopK(q, 50);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].score, b[i].score);  // exact, not approximate
    }
  }

  // Canonical serialization: saving the loaded index reproduces the bytes.
  std::ostringstream first, second;
  ASSERT_TRUE(index.SaveTo(first).ok());
  ASSERT_TRUE(loaded.value().SaveTo(second).ok());
  EXPECT_EQ(first.str(), second.str());
  std::filesystem::remove(path);
}

TEST(QGramIndexTest, LoadRejectsGarbageAndTruncation) {
  std::istringstream garbage("not an index file at all");
  EXPECT_EQ(QGramIndex::LoadFrom(garbage).status().code(),
            StatusCode::kInvalidArgument);

  QGramIndex index;
  index.AddRecord("acer laptop");
  std::ostringstream full;
  ASSERT_TRUE(index.SaveTo(full).ok());
  const std::string bytes = full.str();
  std::istringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(QGramIndex::LoadFrom(truncated).ok());
}

TEST(QGramIndexTest, SaveIsAtomicAndEveryTruncationFails) {
  const std::string path = "/tmp/emx_retrieval_test_atomic.bin";
  QGramIndex index;
  index.AddRecord("acer aspire 5");
  index.AddRecord("asus zenbook 14");
  index.AddRecord("dell xps 13");
  ASSERT_TRUE(index.Save(path).ok());
  // The atomic writer must leave no staging sibling behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const size_t bytes = emx::testing::ReadFileBytes(path).size();
  emx::testing::ExpectAllTruncationsFail(
      path,
      [](const std::string& p) { return QGramIndex::Load(p).status(); },
      /*stride=*/std::max<size_t>(1, bytes / 97),
      /*boundaries=*/{4, 8, 12, 16, 24, 32});
  std::filesystem::remove(path);
}

// ---- Streaming ingest ------------------------------------------------------

TEST(QGramIndexTest, StreamingIngestWhileQueryingIsDeterministic) {
  data::CatalogSpec spec;
  spec.num_records = 400;
  spec.num_queries = 10;
  data::Catalog cat = data::GenerateCatalog(spec);

  // Reference: all records added quietly.
  IndexOptions opts;
  opts.num_shards = 4;
  QGramIndex reference(opts);
  reference.AddBatch(cat.records);

  // Contended: queries hammer the index while records stream in.
  QGramIndex contended(opts);
  std::atomic<bool> done{false};
  std::thread querier([&] {
    while (!done.load()) {
      for (const std::string& q : cat.queries) {
        auto top = contended.TopK(q, 10);  // must never crash or tear
        for (size_t i = 1; i < top.size(); ++i) {
          ASSERT_LE(top[i].score, top[i - 1].score);
        }
      }
    }
  });
  constexpr size_t kChunk = 32;
  for (size_t i = 0; i < cat.records.size(); i += kChunk) {
    const size_t end = std::min(cat.records.size(), i + kChunk);
    contended.AddBatch(std::vector<std::string>(cat.records.begin() + i,
                                                cat.records.begin() + end));
  }
  done.store(true);
  querier.join();

  // Final state is independent of the query interleaving: identical TopK
  // and identical serialized bytes.
  for (const std::string& q : cat.queries) {
    auto a = reference.TopK(q, 20);
    auto b = contended.TopK(q, 20);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
  std::ostringstream sa, sb;
  ASSERT_TRUE(reference.SaveTo(sa).ok());
  ASSERT_TRUE(contended.SaveTo(sb).ok());
  EXPECT_EQ(sa.str(), sb.str());
}

// ---- Catalog generator -----------------------------------------------------

TEST(GenerateCatalogTest, DeterministicAndWellFormed) {
  data::CatalogSpec spec;
  spec.num_records = 500;
  spec.num_queries = 25;
  data::Catalog a = data::GenerateCatalog(spec);
  data::Catalog b = data::GenerateCatalog(spec);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.truth, b.truth);

  ASSERT_EQ(a.records.size(), 500u);
  ASSERT_EQ(a.queries.size(), 25u);
  ASSERT_EQ(a.truth.size(), 25u);
  for (int64_t t : a.truth) {
    ASSERT_GE(t, 0);
    ASSERT_LT(t, 500);
    EXPECT_FALSE(a.records[static_cast<size_t>(t)].empty());
  }
}

// ---- Recall vs blocking ----------------------------------------------------

TEST(QGramIndexTest, RecallAtKBeatsTokenBlocking) {
  data::CatalogSpec spec;
  spec.num_records = 2000;
  spec.num_queries = 50;
  data::Catalog cat = data::GenerateCatalog(spec);

  constexpr int64_t kK = 50;
  QGramIndex index;
  index.AddBatch(cat.records);
  int64_t index_hits = 0;
  for (size_t q = 0; q < cat.queries.size(); ++q) {
    for (const ScoredId& s : index.TopK(cat.queries[q], kK)) {
      if (s.id == cat.truth[q]) {
        ++index_hits;
        break;
      }
    }
  }

  // Blocking baseline over the same corpus: serialized texts wrapped as
  // single-attribute records, same per-query candidate budget.
  data::Schema schema;
  schema.attributes = {"text"};
  auto wrap = [](const std::vector<std::string>& texts) {
    std::vector<data::Record> records;
    records.reserve(texts.size());
    for (const std::string& t : texts) records.push_back(data::Record{{t}});
    return records;
  };
  data::BlockerOptions bopts;
  bopts.max_candidates_per_record = kK;
  data::TokenBlocker blocker(bopts);
  blocker.IndexRight(schema, wrap(cat.records));
  auto candidates = blocker.Candidates(schema, wrap(cat.queries));
  int64_t blocker_hits = 0;
  for (size_t q = 0; q < cat.queries.size(); ++q) {
    for (const auto& [left, right] : candidates) {
      if (left == static_cast<int64_t>(q) && right == cat.truth[q]) {
        ++blocker_hits;
        break;
      }
    }
  }

  const double index_recall =
      static_cast<double>(index_hits) / static_cast<double>(cat.queries.size());
  const double blocker_recall = static_cast<double>(blocker_hits) /
                                static_cast<double>(cat.queries.size());
  EXPECT_GE(index_recall, blocker_recall);
  EXPECT_GE(index_recall, 0.95);
}

// ---- Max-score (WAND) pruning ----------------------------------------------

TEST(QGramIndexTest, PrunedTopKIsBitIdenticalToUnpruned) {
  // The pruning contract: identical ids, identical order, identical
  // *scores* — survivors accumulate in the same feature order, so even
  // float associativity cannot diverge.
  data::CatalogSpec spec;
  spec.num_records = 1500;
  spec.num_queries = 40;
  data::Catalog cat = data::GenerateCatalog(spec);

  IndexOptions pruned_opts;
  pruned_opts.prune_topk = true;
  IndexOptions exhaustive_opts;
  exhaustive_opts.prune_topk = false;
  QGramIndex pruned(pruned_opts);
  QGramIndex exhaustive(exhaustive_opts);
  pruned.AddBatch(cat.records);
  exhaustive.AddBatch(cat.records);

  for (int64_t k : {1, 5, 50}) {
    for (const std::string& q : cat.queries) {
      auto a = pruned.TopK(q, k);
      auto b = exhaustive.TopK(q, k);
      ASSERT_EQ(a.size(), b.size()) << "k=" << k << " q=" << q;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id) << "k=" << k << " rank " << i;
        EXPECT_EQ(a[i].score, b[i].score) << "k=" << k << " rank " << i;
      }
    }
  }
}

TEST(QGramIndexTest, PrunedTopKHandlesEdgeCases) {
  IndexOptions opts;
  opts.prune_topk = true;
  QGramIndex index(opts);
  // Empty index, k = 0, and k far beyond the corpus.
  EXPECT_TRUE(index.TopK("anything", 5).empty());
  index.AddRecord("acer zen zx55 laptop");
  index.AddRecord("acer zen zx56 laptop");
  EXPECT_TRUE(index.TopK("acer", 0).empty());
  auto all = index.TopK("acer zen", 100);
  EXPECT_EQ(all.size(), 2u);
  // A query repeated verbatim still ranks its own record first.
  auto exact = index.TopK("acer zen zx55 laptop", 1);
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0].id, 0);
}

// ---- CatalogMatcher (end-to-end with the serving engine) -------------------

class CatalogMatcherTest : public ::testing::Test {
 protected:
  static constexpr const char* kCacheDir = "/tmp/emx_zoo_retrieval_test";
  static constexpr int64_t kSeqLen = 32;

  static core::EntityMatcher* Matcher() {
    static std::unique_ptr<core::EntityMatcher> matcher = [] {
      pretrain::ZooOptions zoo;
      zoo.cache_dir = kCacheDir;
      zoo.vocab_size = 500;
      zoo.corpus.num_documents = 150;
      zoo.skip_pretraining = true;
      auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
      EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
      auto m = std::make_unique<core::EntityMatcher>(std::move(bundle).value());
      m->set_eval_max_seq_len(kSeqLen);
      return m;
    }();
    return matcher.get();
  }

  static serve::EngineOptions EngineOpts() {
    serve::EngineOptions opts;
    opts.max_seq_len = kSeqLen;
    opts.bucket_width = kSeqLen;
    return opts;
  }

  static void TearDownTestSuite() { std::filesystem::remove_all(kCacheDir); }
};

TEST_F(CatalogMatcherTest, EndToEndAgreesWithBruteForce) {
  data::CatalogSpec spec;
  spec.num_records = 24;
  spec.num_queries = 4;
  data::Catalog cat = data::GenerateCatalog(spec);

  serve::MatcherEngine engine(Matcher(), EngineOpts());
  CatalogOptions copts;
  copts.retrieve_k = spec.num_records;  // retrieval can't drop anyone
  copts.rerank_k = spec.num_records;
  copts.top_k = 1;
  CatalogMatcher catalog(&engine, copts);
  catalog.AddBatch(cat.records);
  EXPECT_EQ(catalog.size(), 24);

  for (const std::string& q : cat.queries) {
    auto matches = catalog.FindMatches(q);
    ASSERT_TRUE(matches.ok()) << matches.status().ToString();
    ASSERT_EQ(matches.value().size(), 1u);

    // Brute force over the whole catalog on the unbatched grad-free path.
    double best_p = -1;
    for (const std::string& text : cat.records) {
      best_p = std::max(best_p, Matcher()->MatchProbability(q, text));
    }
    // Micro-batch composition may flip last-bit float results, so compare
    // probabilities with tolerance instead of demanding the same argmax.
    EXPECT_NEAR(matches.value()[0].probability, best_p, 1e-4);
  }
}

TEST_F(CatalogMatcherTest, FindMatchesIsSortedCountsAndTraced) {
  serve::MatcherEngine engine(Matcher(), EngineOpts());
  CatalogOptions copts;
  copts.retrieve_k = 8;
  copts.rerank_k = 8;
  copts.top_k = 3;
  CatalogMatcher catalog(&engine, copts);
  catalog.Add("acer zen zx55 laptop silver 128 gb");
  catalog.Add("acer zen zx56 laptop black 64 gb");
  catalog.Add("dell vostro desktop tower");
  catalog.Add("sony bravia television 55 inch");

  auto matches = catalog.FindMatches("acer zx55 notebook silver");
  ASSERT_TRUE(matches.ok());
  ASSERT_LE(matches.value().size(), 3u);
  ASSERT_GE(matches.value().size(), 1u);
  for (size_t i = 1; i < matches.value().size(); ++i) {
    EXPECT_GE(matches.value()[i - 1].probability,
              matches.value()[i].probability);
  }
  for (const CatalogMatch& m : matches.value()) {
    EXPECT_EQ(m.text, catalog.Text(m.id));
    EXPECT_GT(m.retrieval_score, 0);
  }
  // The obs registry saw the query and the stage histograms.
  const std::string json = catalog.registry()->ToJson();
  EXPECT_NE(json.find("catalog.queries"), std::string::npos);
  EXPECT_NE(json.find("catalog.retrieve_us"), std::string::npos);
  EXPECT_NE(json.find("catalog.rerank_us"), std::string::npos);
}

TEST_F(CatalogMatcherTest, SaveLoadPreservesResults) {
  const std::string path = "/tmp/emx_retrieval_test_catalog.bin";
  serve::MatcherEngine engine(Matcher(), EngineOpts());
  CatalogOptions copts;
  copts.retrieve_k = 8;
  copts.rerank_k = 4;
  copts.top_k = 2;
  CatalogMatcher catalog(&engine, copts);
  data::CatalogSpec spec;
  spec.num_records = 16;
  spec.num_queries = 3;
  data::Catalog cat = data::GenerateCatalog(spec);
  catalog.AddBatch(cat.records);
  ASSERT_TRUE(catalog.Save(path).ok());

  auto loaded = CatalogMatcher::Load(path, &engine, copts);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()->size(), catalog.size());
  for (const std::string& q : cat.queries) {
    auto a = catalog.FindMatches(q);
    auto b = loaded.value()->FindMatches(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().size(), b.value().size());
    for (size_t i = 0; i < a.value().size(); ++i) {
      EXPECT_EQ(a.value()[i].id, b.value()[i].id);
      EXPECT_EQ(a.value()[i].text, b.value()[i].text);
      EXPECT_EQ(a.value()[i].retrieval_score, b.value()[i].retrieval_score);
      EXPECT_NEAR(a.value()[i].probability, b.value()[i].probability, 1e-4);
    }
  }
  std::filesystem::remove(path);
}

TEST_F(CatalogMatcherTest, SaveIsAtomicAndEveryTruncationFails) {
  const std::string path = "/tmp/emx_retrieval_test_catalog_atomic.bin";
  serve::MatcherEngine engine(Matcher(), EngineOpts());
  CatalogOptions copts;
  copts.retrieve_k = 4;
  copts.rerank_k = 2;
  CatalogMatcher catalog(&engine, copts);
  data::CatalogSpec spec;
  spec.num_records = 12;
  spec.num_queries = 1;
  data::Catalog cat = data::GenerateCatalog(spec);
  catalog.AddBatch(cat.records);
  ASSERT_TRUE(catalog.Save(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const size_t bytes = emx::testing::ReadFileBytes(path).size();
  emx::testing::ExpectAllTruncationsFail(
      path,
      [&](const std::string& p) {
        return CatalogMatcher::Load(p, &engine, copts).status();
      },
      /*stride=*/std::max<size_t>(1, bytes / 97),
      /*boundaries=*/{4, 8, 12, 16, 24, 32});
  std::filesystem::remove(path);
}

TEST_F(CatalogMatcherTest, SplitEngineWithWarmingAgreesWithPlainEngine) {
  // The same catalog served through a split-encoder engine (k = 0, warmed
  // at ingest) must return the same matches with the same probabilities as
  // the plain cross-encoder engine: k = 0 is exact, and warming only moves
  // encode work to ingest time.
  data::CatalogSpec spec;
  spec.num_records = 16;
  spec.num_queries = 3;
  data::Catalog cat = data::GenerateCatalog(spec);

  serve::MatcherEngine plain_engine(Matcher(), EngineOpts());
  CatalogOptions copts;
  copts.retrieve_k = 8;
  copts.rerank_k = 4;
  copts.top_k = 2;
  CatalogMatcher plain(&plain_engine, copts);
  plain.AddBatch(cat.records);

  serve::EngineOptions split_opts = EngineOpts();
  split_opts.split_layer = 0;
  serve::MatcherEngine split_engine(Matcher(), split_opts);
  CatalogOptions warm_opts = copts;
  // Queries in the generated catalog vary in length, so warming at one
  // assumed length only helps some of them — which is exactly the contract:
  // a latency hint, never a correctness dependency.
  warm_opts.warm_query_segment_len = 12;
  CatalogMatcher warmed(&split_engine, warm_opts);
  warmed.AddBatch(cat.records);
  EXPECT_GT(split_engine.prefix_cache().Stats().entries, 0)
      << "ingest-time warming should have pre-encoded candidate prefixes";

  for (const std::string& q : cat.queries) {
    auto a = plain.FindMatches(q);
    auto b = warmed.FindMatches(q);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a.value().size(), b.value().size());
    for (size_t i = 0; i < a.value().size(); ++i) {
      EXPECT_EQ(a.value()[i].id, b.value()[i].id);
      EXPECT_EQ(a.value()[i].probability, b.value()[i].probability)
          << "k=0 split must be bit-identical";
    }
  }
}

}  // namespace
}  // namespace retrieval
}  // namespace emx
