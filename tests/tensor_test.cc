#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace emx {
namespace {

using ops::AllClose;

// Force a multi-worker global pool even on single-core CI boxes so the
// threaded kernel paths are exercised. Runs before the pool is first built
// (it is created lazily on the first ParallelFor call after main starts).
const bool kForceThreadedPool = [] {
  setenv("EMX_NUM_THREADS", "4", /*overwrite=*/0);
  return true;
}();

// ---- Tensor storage ------------------------------------------------------

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FromValues) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.At({0, 1}), 2.0f);
  EXPECT_EQ(t.At({1, 0}), 3.0f);
}

TEST(TensorTest, CopySharesClonedDoesNot) {
  Tensor a({2}, {1, 2});
  Tensor b = a;
  Tensor c = a.Clone();
  EXPECT_TRUE(a.SharesDataWith(b));
  EXPECT_FALSE(a.SharesDataWith(c));
  b[0] = 99;
  EXPECT_EQ(a[0], 99.0f);
  EXPECT_EQ(c[0], 1.0f);
}

TEST(TensorTest, ReshapeSharesAndInfers) {
  Tensor t({2, 6});
  Tensor r = t.Reshape({3, -1});
  EXPECT_EQ(r.dim(1), 4);
  EXPECT_TRUE(t.SharesDataWith(r));
}

TEST(TensorTest, NegativeDimIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, FactoryHelpers) {
  Tensor ones = Tensor::Ones({3});
  EXPECT_EQ(ones[2], 1.0f);
  Tensor full = Tensor::Full({2}, 3.5f);
  EXPECT_EQ(full[1], 3.5f);
  Tensor ar = Tensor::Arange(5);
  EXPECT_EQ(ar[4], 4.0f);
  EXPECT_EQ(Tensor::Scalar(2.0f).size(), 1);
}

TEST(TensorTest, RandnStats) {
  Rng rng(3);
  Tensor t = Tensor::Randn({10000}, &rng, 2.0f);
  double sum = 0, sq = 0;
  for (int64_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += t[i] * t[i];
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.1);
  EXPECT_NEAR(sq / t.size(), 4.0, 0.3);
}

TEST(TensorTest, InPlaceOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a[2], 33.0f);
  a.ScaleInPlace(0.5f);
  EXPECT_EQ(a[0], 5.5f);
  a.Fill(7.0f);
  EXPECT_EQ(a[1], 7.0f);
}

// ---- External (mapped) views ---------------------------------------------

TEST(TensorTest, FromExternalReadsBorrowedBuffer) {
  auto backing = std::make_shared<std::vector<float>>(
      std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f});
  Tensor v = Tensor::FromExternal({2, 3}, backing->data(), backing);
  EXPECT_TRUE(v.is_external());
  EXPECT_EQ(v.size(), 6);
  EXPECT_EQ(v.At({1, 2}), 6.0f);
  EXPECT_EQ(v.data(), backing->data()) << "view copied instead of aliasing";
}

TEST(TensorTest, FromExternalKeepaliveOutlivesCreatorHandle) {
  auto backing = std::make_shared<std::vector<float>>(
      std::vector<float>{42.0f, 43.0f});
  float* raw = backing->data();
  Tensor v = Tensor::FromExternal({2}, raw, backing);
  backing.reset();  // the view now holds the only reference
  EXPECT_EQ(v[0], 42.0f);
  Tensor copy = v;  // copies share the keepalive too
  EXPECT_EQ(copy[1], 43.0f);
}

TEST(TensorTest, FromExternalCloneMaterializesOwnedCopy) {
  auto backing = std::make_shared<std::vector<float>>(
      std::vector<float>{7.0f, 8.0f});
  Tensor v = Tensor::FromExternal({2}, backing->data(), backing);
  Tensor c = v.Clone();
  EXPECT_FALSE(c.is_external());
  EXPECT_FALSE(c.SharesDataWith(v));
  c.Fill(0.0f);  // a clone is mutable even when the source view is not
  EXPECT_EQ(v[0], 7.0f);
  EXPECT_EQ(c[0], 0.0f);
}

TEST(TensorTest, FromExternalReshapeStaysAView) {
  auto backing = std::make_shared<std::vector<float>>(
      std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor v = Tensor::FromExternal({2, 3}, backing->data(), backing);
  Tensor r = v.Reshape({3, 2});
  EXPECT_TRUE(r.is_external());
  EXPECT_TRUE(r.SharesDataWith(v));
  EXPECT_EQ(r.At({2, 1}), 6.0f);
}

TEST(TensorTest, ExternalViewsDoNotCountAsHeapTensorMemory) {
  auto backing =
      std::make_shared<std::vector<float>>(std::vector<float>(1024, 1.0f));
  const int64_t before = GetTensorMemStats().live_bytes;
  Tensor v = Tensor::FromExternal({1024}, backing->data(), backing);
  EXPECT_EQ(GetTensorMemStats().live_bytes, before)
      << "mapped views must not inflate heap-tensor accounting";
}

// ---- Elementwise kernels ------------------------------------------------

TEST(TensorOpsTest, Arithmetic) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {4, 3, 2, 1});
  EXPECT_TRUE(AllClose(ops::Add(a, b), Tensor({2, 2}, {5, 5, 5, 5})));
  EXPECT_TRUE(AllClose(ops::Sub(a, b), Tensor({2, 2}, {-3, -1, 1, 3})));
  EXPECT_TRUE(AllClose(ops::Mul(a, b), Tensor({2, 2}, {4, 6, 6, 4})));
  EXPECT_TRUE(AllClose(ops::Div(a, b), Tensor({2, 2}, {0.25f, 2.f / 3, 1.5f, 4})));
  EXPECT_TRUE(AllClose(ops::AddScalar(a, 1), Tensor({2, 2}, {2, 3, 4, 5})));
  EXPECT_TRUE(AllClose(ops::MulScalar(a, 2), Tensor({2, 2}, {2, 4, 6, 8})));
}

TEST(TensorOpsTest, AddBiasBroadcastsLastDim) {
  Tensor x({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias({3}, {10, 20, 30});
  Tensor y = ops::AddBias(x, bias);
  EXPECT_TRUE(AllClose(y, Tensor({2, 3}, {10, 20, 30, 11, 21, 31})));
}

TEST(TensorOpsTest, SumToBiasReducesLeadingDims) {
  Tensor g({2, 2, 3});
  g.Fill(1.0f);
  Tensor r = ops::SumToBias(g, 3);
  EXPECT_TRUE(AllClose(r, Tensor({3}, {4, 4, 4})));
}

TEST(TensorOpsTest, UnaryFunctions) {
  Tensor x({3}, {-1, 0, 1});
  EXPECT_TRUE(AllClose(ops::Relu(x), Tensor({3}, {0, 0, 1})));
  Tensor t = ops::Tanh(x);
  EXPECT_NEAR(t[0], std::tanh(-1.0f), 1e-6);
  Tensor s = ops::Sigmoid(x);
  EXPECT_NEAR(s[1], 0.5f, 1e-6);
  Tensor e = ops::Exp(Tensor({1}, {0}));
  EXPECT_NEAR(e[0], 1.0f, 1e-6);
}

TEST(TensorOpsTest, GeluValues) {
  // Known reference values for tanh-approximated GELU.
  Tensor x({3}, {-1.0f, 0.0f, 2.0f});
  Tensor y = ops::Gelu(x);
  EXPECT_NEAR(y[0], -0.1588f, 1e-3);
  EXPECT_NEAR(y[1], 0.0f, 1e-7);
  EXPECT_NEAR(y[2], 1.9546f, 1e-3);
}

// ---- MatMul ----------------------------------------------------------------

TEST(MatMulTest, Basic2D) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(MatMulTest, TransposeFlagsAgree) {
  Rng rng(5);
  Tensor a = Tensor::Randn({4, 6}, &rng);
  Tensor b = Tensor::Randn({6, 5}, &rng);
  Tensor ref = ops::MatMul(a, b);
  Tensor at = ops::TransposeLast2(a);  // [6, 4]
  Tensor bt = ops::TransposeLast2(b);  // [5, 6]
  EXPECT_TRUE(AllClose(ops::MatMul(at, b, true, false), ref, 1e-4f));
  EXPECT_TRUE(AllClose(ops::MatMul(a, bt, false, true), ref, 1e-4f));
  EXPECT_TRUE(AllClose(ops::MatMul(at, bt, true, true), ref, 1e-4f));
}

TEST(MatMulTest, BatchedMatchesPerSlice) {
  Rng rng(6);
  Tensor a = Tensor::Randn({3, 2, 4}, &rng);
  Tensor b = Tensor::Randn({3, 4, 5}, &rng);
  Tensor c = ops::MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 2, 5}));
  for (int64_t i = 0; i < 3; ++i) {
    Tensor as({2, 4});
    Tensor bs({4, 5});
    std::copy(a.data() + i * 8, a.data() + (i + 1) * 8, as.data());
    std::copy(b.data() + i * 20, b.data() + (i + 1) * 20, bs.data());
    Tensor cs = ops::MatMul(as, bs);
    for (int64_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(c[i * 10 + j], cs[j], 1e-5);
    }
  }
}

TEST(MatMulTest, BroadcastRank2Rhs) {
  Rng rng(7);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  Tensor w = Tensor::Randn({4, 6}, &rng);
  Tensor c = ops::MatMul(a, w);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 6}));
  // Compare against flattening the batch.
  Tensor flat = a.Reshape({6, 4});
  Tensor ref = ops::MatMul(flat, w);
  EXPECT_TRUE(AllClose(c.Reshape({6, 6}), ref, 1e-5f));
}

TEST(MatMulTest, LargeSingleMatrixParallelPathMatchesSmall) {
  Rng rng(8);
  Tensor a = Tensor::Randn({130, 17}, &rng);
  Tensor b = Tensor::Randn({17, 19}, &rng);
  Tensor c = ops::MatMul(a, b);  // goes through the blocked parallel path
  // Reference: row-by-row dot products.
  for (int64_t i = 0; i < 130; i += 37) {
    for (int64_t j = 0; j < 19; j += 7) {
      float acc = 0;
      for (int64_t k = 0; k < 17; ++k) acc += a[i * 17 + k] * b[k * 19 + j];
      EXPECT_NEAR(c[i * 19 + j], acc, 1e-4);
    }
  }
}

// Golden tests: the blocked GEMM must agree with the naive triple-loop
// reference *bitwise*. Both accumulate each output in ascending-k order, so
// the match must be exact for every trans flag combination, odd/prime
// sizes that exercise the tile-edge kernels, and any thread count (the
// global pool is forced to 4 workers above).

void ExpectBitIdentical(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                           static_cast<size_t>(got.size()) * sizeof(float)));
}

TEST(MatMulGoldenTest, BlockedMatchesNaiveAllTransCombos) {
  Rng rng(42);
  // (m, k, n) triples: tiny, prime, tile-edge-straddling, and block-sized.
  const int64_t sizes[][3] = {{1, 1, 1},   {2, 3, 1},    {7, 13, 17},
                              {31, 61, 29}, {67, 129, 65}, {64, 256, 128},
                              {70, 257, 130}};
  for (const auto& s : sizes) {
    const int64_t m = s[0], k = s[1], n = s[2];
    for (const bool trans_a : {false, true}) {
      for (const bool trans_b : {false, true}) {
        Tensor a = trans_a ? Tensor::Randn({k, m}, &rng)
                           : Tensor::Randn({m, k}, &rng);
        Tensor b = trans_b ? Tensor::Randn({n, k}, &rng)
                           : Tensor::Randn({k, n}, &rng);
        SCOPED_TRACE(testing::Message()
                     << "m=" << m << " k=" << k << " n=" << n
                     << " trans_a=" << trans_a << " trans_b=" << trans_b);
        ExpectBitIdentical(ops::MatMul(a, b, trans_a, trans_b),
                           ops::MatMulNaive(a, b, trans_a, trans_b));
      }
    }
  }
}

TEST(MatMulGoldenTest, BatchedMatchesNaive) {
  Rng rng(43);
  Tensor a = Tensor::Randn({5, 23, 31}, &rng);
  Tensor b = Tensor::Randn({5, 31, 19}, &rng);
  ExpectBitIdentical(ops::MatMul(a, b), ops::MatMulNaive(a, b));
  Tensor bt = Tensor::Randn({5, 19, 31}, &rng);
  ExpectBitIdentical(ops::MatMul(a, bt, false, true),
                     ops::MatMulNaive(a, bt, false, true));
}

TEST(MatMulGoldenTest, BroadcastMatchesNaive) {
  Rng rng(44);
  // Rank-2 rhs broadcast across lhs batch, and the reverse.
  Tensor a = Tensor::Randn({4, 3, 37, 41}, &rng);
  Tensor w = Tensor::Randn({41, 13}, &rng);
  ExpectBitIdentical(ops::MatMul(a, w), ops::MatMulNaive(a, w));
  Tensor lhs = Tensor::Randn({9, 41}, &rng);
  Tensor rhs = Tensor::Randn({6, 41, 11}, &rng);
  ExpectBitIdentical(ops::MatMul(lhs, rhs), ops::MatMulNaive(lhs, rhs));
}

// ---- Permute / reshape ------------------------------------------------------

TEST(PermuteTest, TransposeLast2) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = ops::TransposeLast2(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_TRUE(AllClose(t, Tensor({3, 2}, {1, 4, 2, 5, 3, 6})));
}

TEST(PermuteTest, HeadSplitRoundTrip) {
  // [B, T, nh, dh] -> [B, nh, T, dh] -> back.
  Rng rng(9);
  Tensor x = Tensor::Randn({2, 5, 3, 4}, &rng);
  Tensor p = ops::Permute(x, {0, 2, 1, 3});
  EXPECT_EQ(p.shape(), (Shape{2, 3, 5, 4}));
  Tensor back = ops::Permute(p, {0, 2, 1, 3});
  EXPECT_TRUE(AllClose(back, x));
}

TEST(PermuteTest, ExplicitSmallCase) {
  Tensor x({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor p = ops::Permute(x, {2, 0, 1});
  // p[i,j,k] = x[j,k,i].
  EXPECT_EQ(p.At({0, 1, 1}), x.At({1, 1, 0}));
  EXPECT_EQ(p.At({1, 0, 1}), x.At({0, 1, 1}));
}

// ---- Reductions -------------------------------------------------------------

TEST(ReductionTest, SumMeanAll) {
  Tensor x({2, 2}, {1, 2, 3, 4});
  EXPECT_NEAR(ops::SumAll(x)[0], 10.0f, 1e-6);
  EXPECT_NEAR(ops::MeanAll(x)[0], 2.5f, 1e-6);
}

TEST(ReductionTest, SumLastAxis) {
  Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = ops::SumLastAxis(x);
  EXPECT_TRUE(AllClose(s, Tensor({2}, {6, 15})));
}

TEST(ReductionTest, ArgMaxLastAxis) {
  Tensor x({2, 3}, {0.1f, 0.9f, 0.3f, 5, 4, 6});
  auto idx = ops::ArgMaxLastAxis(x);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 2);
}

// ---- Softmax family ----------------------------------------------------------

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(10);
  Tensor x = Tensor::Randn({4, 7}, &rng, 3.0f);
  Tensor y = ops::Softmax(x);
  for (int64_t r = 0; r < 4; ++r) {
    float sum = 0;
    for (int64_t j = 0; j < 7; ++j) {
      float v = y[r * 7 + j];
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(SoftmaxTest, NumericallyStableForLargeInputs) {
  Tensor x({1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor y = ops::Softmax(x);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(y[i], 1.0f / 3, 1e-6);
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(11);
  Tensor x = Tensor::Randn({3, 5}, &rng);
  Tensor a = ops::LogSoftmax(x);
  Tensor b = ops::Log(ops::Softmax(x));
  EXPECT_TRUE(AllClose(a, b, 1e-5f));
}

TEST(SoftmaxTest, MaskedAddExactShape) {
  Tensor x({1, 1, 1, 3}, {1, 2, 3});
  Tensor mask({1, 1, 1, 3}, {0, 1, 0});
  Tensor y = ops::MaskedAdd(x, mask, -100.0f);
  EXPECT_EQ(y[1], -98.0f);
  EXPECT_EQ(y[0], 1.0f);
}

TEST(SoftmaxTest, MaskedAddBroadcast) {
  // x: [2, 2, 2, 3], mask: [2, 1, 1, 3].
  Tensor x = Tensor::Zeros({2, 2, 2, 3});
  Tensor mask({2, 1, 1, 3}, {0, 0, 1, 1, 0, 0});
  Tensor y = ops::MaskedAdd(x, mask, -9.0f);
  // Batch 0 masks position 2 everywhere.
  EXPECT_EQ(y.At({0, 0, 0, 2}), -9.0f);
  EXPECT_EQ(y.At({0, 1, 1, 2}), -9.0f);
  EXPECT_EQ(y.At({0, 0, 0, 0}), 0.0f);
  // Batch 1 masks position 0 everywhere.
  EXPECT_EQ(y.At({1, 1, 0, 0}), -9.0f);
  EXPECT_EQ(y.At({1, 0, 1, 1}), 0.0f);
}

// ---- Gather / scatter ---------------------------------------------------------

TEST(GatherTest, GatherRows) {
  Tensor table({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor out = ops::GatherRows(table, {2, 0, 2});
  EXPECT_TRUE(AllClose(out, Tensor({3, 2}, {5, 6, 1, 2, 5, 6})));
}

TEST(GatherTest, ScatterAddAccumulatesDuplicates) {
  Tensor grad({3, 2}, {1, 1, 2, 2, 4, 4});
  Tensor table_grad = Tensor::Zeros({3, 2});
  ops::ScatterAddRows(grad, {2, 0, 2}, &table_grad);
  EXPECT_TRUE(AllClose(table_grad, Tensor({3, 2}, {2, 2, 0, 0, 5, 5})));
}

TEST(GatherTest, SelectAndAddTimeStep) {
  Tensor x({2, 3, 2}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor s = ops::SelectTimeStep(x, 1);
  EXPECT_TRUE(AllClose(s, Tensor({2, 2}, {2, 3, 8, 9})));
  Tensor grad = Tensor::Zeros({2, 3, 2});
  ops::AddToTimeStep(s, 2, &grad);
  EXPECT_EQ(grad.At({0, 2, 0}), 2.0f);
  EXPECT_EQ(grad.At({1, 2, 1}), 9.0f);
  EXPECT_EQ(grad.At({0, 0, 0}), 0.0f);
}

// ---- Concat / split --------------------------------------------------------

TEST(ConcatTest, LastAxis) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 1}, {9, 8});
  Tensor c = ops::Concat({a, b}, 1);
  EXPECT_TRUE(AllClose(c, Tensor({2, 3}, {1, 2, 9, 3, 4, 8})));
}

TEST(ConcatTest, FirstAxis) {
  Tensor a({1, 2}, {1, 2});
  Tensor b({2, 2}, {3, 4, 5, 6});
  Tensor c = ops::Concat({a, b}, 0);
  EXPECT_TRUE(AllClose(c, Tensor({3, 2}, {1, 2, 3, 4, 5, 6})));
}

TEST(ConcatTest, SplitInvertsConcat) {
  Rng rng(12);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  Tensor b = Tensor::Randn({2, 2, 4}, &rng);
  Tensor c = ops::Concat({a, b}, 1);
  auto parts = ops::SplitAxis(c, 1, {3, 2});
  EXPECT_TRUE(AllClose(parts[0], a));
  EXPECT_TRUE(AllClose(parts[1], b));
}

// ---- LayerNorm -----------------------------------------------------------

TEST(LayerNormTest, NormalizesRows) {
  Rng rng(13);
  Tensor x = Tensor::Randn({4, 8}, &rng, 5.0f);
  Tensor gamma = Tensor::Ones({8});
  Tensor beta = Tensor::Zeros({8});
  Tensor mean, rstd;
  Tensor y = ops::LayerNormForward(x, gamma, beta, 1e-5f, &mean, &rstd);
  for (int64_t r = 0; r < 4; ++r) {
    float mu = 0, var = 0;
    for (int64_t j = 0; j < 8; ++j) mu += y[r * 8 + j];
    mu /= 8;
    for (int64_t j = 0; j < 8; ++j) {
      var += (y[r * 8 + j] - mu) * (y[r * 8 + j] - mu);
    }
    var /= 8;
    EXPECT_NEAR(mu, 0.0f, 1e-4);
    EXPECT_NEAR(var, 1.0f, 1e-2);
  }
}

TEST(LayerNormTest, AffineApplied) {
  Tensor x({1, 2}, {1, 3});
  Tensor gamma({2}, {2, 2});
  Tensor beta({2}, {10, 10});
  Tensor mean, rstd;
  Tensor y = ops::LayerNormForward(x, gamma, beta, 1e-5f, &mean, &rstd);
  // Normalized values are -1 and +1 (up to eps), so outputs ~ 8 and 12.
  EXPECT_NEAR(y[0], 8.0f, 1e-2);
  EXPECT_NEAR(y[1], 12.0f, 1e-2);
}

// ---- AllClose helpers ------------------------------------------------------

TEST(AllCloseTest, DetectsDifference) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {1, 2.1f});
  EXPECT_FALSE(ops::AllClose(a, b, 1e-3f, 1e-3f));
  EXPECT_TRUE(ops::AllClose(a, b, 0.2f, 0.0f));
  EXPECT_NEAR(ops::MaxAbsDiff(a, b), 0.1f, 1e-6);
}

TEST(AllCloseTest, ShapeMismatchNotClose) {
  EXPECT_FALSE(ops::AllClose(Tensor({2}), Tensor({3})));
}

// ---- Memory accounting -----------------------------------------------------

TEST(TensorMemStatsTest, TracksLiveAndPeakBytes) {
  const int64_t base = GetTensorMemStats().live_bytes;
  ResetTensorMemPeak();
  {
    Tensor a({64, 64});  // 16 KiB
    EXPECT_EQ(GetTensorMemStats().live_bytes - base, 64 * 64 * 4);
    {
      Tensor b = a.Clone();  // +16 KiB
      EXPECT_EQ(GetTensorMemStats().live_bytes - base, 2 * 64 * 64 * 4);
    }
    // b released: live drops, peak remembers both.
    EXPECT_EQ(GetTensorMemStats().live_bytes - base, 64 * 64 * 4);
    EXPECT_GE(GetTensorMemStats().peak_bytes - base, 2 * 64 * 64 * 4);
  }
  EXPECT_EQ(GetTensorMemStats().live_bytes, base);
  ResetTensorMemPeak();
  EXPECT_EQ(GetTensorMemStats().peak_bytes, GetTensorMemStats().live_bytes);
}

TEST(TensorMemStatsTest, SharedViewsCountBufferOnce) {
  const int64_t base = GetTensorMemStats().live_bytes;
  Tensor a({8, 8});
  Tensor view = a.Reshape({64});  // shares the buffer
  Tensor copy = a;                // shares the buffer
  EXPECT_EQ(view.data(), a.data());
  EXPECT_EQ(copy.data(), a.data());
  EXPECT_EQ(GetTensorMemStats().live_bytes - base, 8 * 8 * 4);
}

}  // namespace
}  // namespace emx
