#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/generators.h"
#include "data/noise.h"
#include "data/pools.h"
#include "data/record.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace emx {
namespace data {
namespace {

// ---- Schema / record ----------------------------------------------------

TEST(SchemaTest, IndexLookup) {
  Schema s;
  s.attributes = {"title", "brand", "price"};
  EXPECT_EQ(s.Index("brand"), 1);
  EXPECT_EQ(s.Index("missing"), -1);
  EXPECT_EQ(s.size(), 3);
}

TEST(SerializeRecordTest, ConcatenatesNonEmpty) {
  Schema s;
  s.attributes = {"title", "brand", "price"};
  Record r;
  r.values = {"iphone xs", "", "899.99"};
  EXPECT_EQ(SerializeRecord(s, r), "iphone xs 899.99");
}

TEST(SerializeRecordTest, OnlyAttribute) {
  Schema s;
  s.attributes = {"name", "description", "price"};
  Record r;
  r.values = {"name here", "the description", "10"};
  EXPECT_EQ(SerializeRecord(s, r, 1), "the description");
}

// ---- Specs (Table 3) -------------------------------------------------------

TEST(SpecTest, Table3Reproduced) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_STREQ(SpecFor(DatasetId::kAbtBuy).name, "Abt-Buy");
  EXPECT_EQ(SpecFor(DatasetId::kAbtBuy).size, 9575);
  EXPECT_EQ(SpecFor(DatasetId::kAbtBuy).num_matches, 1028);
  EXPECT_EQ(SpecFor(DatasetId::kAbtBuy).num_attrs, 3);
  EXPECT_EQ(SpecFor(DatasetId::kItunesAmazon).size, 539);
  EXPECT_EQ(SpecFor(DatasetId::kItunesAmazon).num_matches, 132);
  EXPECT_EQ(SpecFor(DatasetId::kItunesAmazon).num_attrs, 8);
  EXPECT_EQ(SpecFor(DatasetId::kWalmartAmazon).size, 10242);
  EXPECT_EQ(SpecFor(DatasetId::kWalmartAmazon).num_matches, 962);
  EXPECT_EQ(SpecFor(DatasetId::kDblpAcm).size, 12363);
  EXPECT_EQ(SpecFor(DatasetId::kDblpAcm).num_matches, 2220);
  EXPECT_EQ(SpecFor(DatasetId::kDblpScholar).size, 28707);
  EXPECT_EQ(SpecFor(DatasetId::kDblpScholar).num_matches, 5347);
}

// ---- Noise ---------------------------------------------------------------

TEST(NoiseTest, TypoChangesWord) {
  Rng rng(1);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (Typo("keyboard", &rng) != "keyboard") ++changed;
  }
  EXPECT_GT(changed, 40);
  EXPECT_EQ(Typo("ab", &rng), "ab");  // too short
}

TEST(NoiseTest, AbbreviateName) {
  EXPECT_EQ(AbbreviateName("john smith"), "j. smith");
  EXPECT_EQ(AbbreviateName("anna maria garcia"), "a. m. garcia");
  EXPECT_EQ(AbbreviateName("cher"), "cher");
}

TEST(NoiseTest, DropTokensKeepsAtLeastOne) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    std::string out = DropTokens("a b c", 0.99, &rng);
    EXPECT_FALSE(out.empty());
  }
}

TEST(NoiseTest, PerturbPriceWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    float v = 0;
    ASSERT_TRUE(ParseFloat(PerturbPrice(100.0, 0.05, &rng), &v));
    EXPECT_GE(v, 94.9f);
    EXPECT_LE(v, 105.1f);
  }
}

TEST(NoiseTest, ModelNumbers) {
  Rng rng(4);
  std::set<std::string> models;
  for (int i = 0; i < 100; ++i) {
    std::string m = RandomModelNumber(&rng);
    EXPECT_GE(m.size(), 4u);
    models.insert(m);
  }
  EXPECT_GT(models.size(), 95u);  // essentially all distinct

  std::string base = RandomModelNumber(&rng);
  for (int i = 0; i < 20; ++i) {
    std::string sib = SimilarModelNumber(base, &rng);
    EXPECT_NE(sib, base);
    // Close in length.
    EXPECT_LE(std::abs(static_cast<int>(sib.size()) -
                       static_cast<int>(base.size())),
              1);
  }
}

// ---- Dirty transform ----------------------------------------------------------

TEST(DirtyTransformTest, MovesValuesIntoTitle) {
  Rng rng(5);
  Record r;
  r.values = {"title", "brandx", "modely", "9.99"};
  // p = 1: everything moves.
  ApplyDirtyTransform(&r, 0, 1.0, &rng);
  EXPECT_EQ(r.values[0], "title brandx modely 9.99");
  EXPECT_TRUE(r.values[1].empty());
  EXPECT_TRUE(r.values[2].empty());
  EXPECT_TRUE(r.values[3].empty());
}

TEST(DirtyTransformTest, PZeroIsIdentity) {
  Rng rng(6);
  Record r;
  r.values = {"title", "brandx", "modely"};
  ApplyDirtyTransform(&r, 0, 0.0, &rng);
  EXPECT_EQ(r.values[0], "title");
  EXPECT_EQ(r.values[1], "brandx");
}

TEST(DirtyTransformTest, HalfProbabilityMovesAboutHalf) {
  Rng rng(7);
  int moved = 0, total = 0;
  for (int i = 0; i < 500; ++i) {
    Record r;
    r.values = {"t", "a", "b", "c", "d"};
    ApplyDirtyTransform(&r, 0, 0.5, &rng);
    for (size_t j = 1; j < r.values.size(); ++j) {
      ++total;
      if (r.values[j].empty()) ++moved;
    }
  }
  EXPECT_NEAR(static_cast<double>(moved) / total, 0.5, 0.05);
}

// ---- Generators (parameterized over all five datasets) -------------------------

class GeneratorTest : public ::testing::TestWithParam<DatasetId> {
 protected:
  static EmDataset Generate(DatasetId id) {
    GeneratorOptions opts;
    opts.scale = id == DatasetId::kItunesAmazon ? 1.0 : 0.05;
    opts.seed = 42;
    return GenerateDataset(id, opts);
  }
};

TEST_P(GeneratorTest, SizesMatchScaledSpec) {
  const DatasetSpec& spec = SpecFor(GetParam());
  GeneratorOptions opts;
  opts.scale = GetParam() == DatasetId::kItunesAmazon ? 1.0 : 0.05;
  EmDataset ds = GenerateDataset(GetParam(), opts);
  const int64_t expect_pairs =
      std::max<int64_t>(10, std::llround(spec.size * opts.scale));
  const int64_t expect_matches =
      std::max<int64_t>(3, std::llround(spec.num_matches * opts.scale));
  EXPECT_EQ(ds.TotalPairs(), expect_pairs);
  EXPECT_EQ(ds.TotalMatches(), expect_matches);
  EXPECT_EQ(ds.schema.size(), spec.num_attrs);
}

TEST_P(GeneratorTest, SplitIsThreeOneOne) {
  EmDataset ds = Generate(GetParam());
  const double n = static_cast<double>(ds.TotalPairs());
  EXPECT_NEAR(ds.train.size() / n, 0.6, 0.02);
  EXPECT_NEAR(ds.valid.size() / n, 0.2, 0.02);
  EXPECT_NEAR(ds.test.size() / n, 0.2, 0.02);
}

TEST_P(GeneratorTest, DeterministicForSeed) {
  EmDataset a = Generate(GetParam());
  EmDataset b = Generate(GetParam());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < std::min<size_t>(a.train.size(), 25); ++i) {
    EXPECT_EQ(a.train[i].label, b.train[i].label);
    EXPECT_EQ(a.train[i].a.values, b.train[i].a.values);
    EXPECT_EQ(a.train[i].b.values, b.train[i].b.values);
  }
}

TEST_P(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions o1, o2;
  o1.scale = o2.scale = 0.02;
  o1.seed = 1;
  o2.seed = 2;
  EmDataset a = GenerateDataset(GetParam(), o1);
  EmDataset b = GenerateDataset(GetParam(), o2);
  bool any_diff = false;
  for (size_t i = 0; i < std::min(a.train.size(), b.train.size()); ++i) {
    if (a.train[i].a.values != b.train[i].a.values) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST_P(GeneratorTest, RecordsMatchSchemaWidth) {
  EmDataset ds = Generate(GetParam());
  for (const auto* split : {&ds.train, &ds.valid, &ds.test}) {
    for (const auto& p : *split) {
      EXPECT_EQ(static_cast<int64_t>(p.a.values.size()), ds.schema.size());
      EXPECT_EQ(static_cast<int64_t>(p.b.values.size()), ds.schema.size());
    }
  }
}

TEST_P(GeneratorTest, SerializedTextNonEmpty) {
  EmDataset ds = Generate(GetParam());
  for (size_t i = 0; i < std::min<size_t>(ds.train.size(), 50); ++i) {
    EXPECT_FALSE(ds.SerializeA(ds.train[i]).empty());
    EXPECT_FALSE(ds.SerializeB(ds.train[i]).empty());
  }
}

TEST_P(GeneratorTest, MatchesShareDiscriminativeContent) {
  // A matched pair's serialized views must share clearly more tokens than a
  // random non-matched pair on average (otherwise the task is unlearnable).
  EmDataset ds = Generate(GetParam());
  auto token_overlap = [](const std::string& x, const std::string& y) {
    auto xt = SplitWhitespace(x);
    auto yt = SplitWhitespace(y);
    std::set<std::string> xs(xt.begin(), xt.end());
    std::set<std::string> ys(yt.begin(), yt.end());
    int64_t inter = 0;
    for (const auto& t : xs) inter += ys.count(t);
    const size_t uni = xs.size() + ys.size() - static_cast<size_t>(inter);
    return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
  };
  double match_sim = 0, nonmatch_sim = 0;
  int64_t n_match = 0, n_non = 0;
  for (const auto& p : ds.train) {
    const double sim = token_overlap(ds.SerializeA(p), ds.SerializeB(p));
    if (p.label == 1) {
      match_sim += sim;
      ++n_match;
    } else {
      nonmatch_sim += sim;
      ++n_non;
    }
  }
  ASSERT_GT(n_match, 0);
  ASSERT_GT(n_non, 0);
  EXPECT_GT(match_sim / n_match, nonmatch_sim / n_non);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, GeneratorTest,
    ::testing::Values(DatasetId::kAbtBuy, DatasetId::kItunesAmazon,
                      DatasetId::kWalmartAmazon, DatasetId::kDblpAcm,
                      DatasetId::kDblpScholar),
    [](const ::testing::TestParamInfo<DatasetId>& info) {
      std::string name = SpecFor(info.param).name;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(GeneratorTest, DirtyTransformCanBeDisabled) {
  GeneratorOptions opts;
  opts.scale = 0.05;
  opts.apply_dirty = false;
  EmDataset clean = GenerateDataset(DatasetId::kWalmartAmazon, opts);
  // With the dirty transform disabled, no non-title attribute of any record
  // should be empty-but-present-in-title... simplest check: modelno column
  // (index 3) is never empty in the clean version.
  int64_t empty_model = 0;
  for (const auto& p : clean.train) {
    if (p.a.values[3].empty()) ++empty_model;
  }
  EXPECT_EQ(empty_model, 0);

  opts.apply_dirty = true;
  EmDataset dirty = GenerateDataset(DatasetId::kWalmartAmazon, opts);
  empty_model = 0;
  for (const auto& p : dirty.train) {
    if (p.a.values[3].empty()) ++empty_model;
  }
  // About half the records moved modelno into the title.
  EXPECT_GT(empty_model, static_cast<int64_t>(dirty.train.size() / 4));
}

TEST(GeneratorTest, AbtBuySerializesOnlyDescription) {
  GeneratorOptions opts;
  opts.scale = 0.02;
  EmDataset ds = GenerateDataset(DatasetId::kAbtBuy, opts);
  EXPECT_EQ(ds.serialize_only_attribute, 1);
  // Serialized text equals the description attribute alone.
  const auto& p = ds.train.front();
  EXPECT_EQ(ds.SerializeA(p), p.a.values[1]);
}

TEST(GeneratorTest, ItunesIsTinyAtFullScale) {
  GeneratorOptions opts;  // scale = 1
  EmDataset ds = GenerateDataset(DatasetId::kItunesAmazon, opts);
  EXPECT_EQ(ds.TotalPairs(), 539);
  EXPECT_EQ(ds.TotalMatches(), 132);
}

}  // namespace
}  // namespace data
}  // namespace emx
