#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/entity_matcher.h"
#include "net/fleet_router.h"
#include "net/match_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/json.h"
#include "pretrain/model_zoo.h"
#include "serve/matcher_engine.h"

namespace emx {
namespace net {
namespace {

using std::chrono::milliseconds;

// ---- Wire protocol ---------------------------------------------------------

TEST(WireTest, RequestRoundTrip) {
  MatchRequest req;
  req.trace_id = 0x1122334455667788ull;
  req.deadline_us = 250000;
  req.flags = kFlagHedge;
  req.text_a = "logitech wireless mouse m185";
  req.text_b = "logitech m185 mouse, wireless (grey)";

  std::string frame;
  EncodeRequest(req, &frame);

  FrameBuffer buf;
  buf.Append(frame.data(), frame.size());
  std::string_view payload;
  bool complete = false;
  ASSERT_TRUE(buf.Next(&payload, &complete).ok());
  ASSERT_TRUE(complete);

  auto decoded = DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().trace_id, req.trace_id);
  EXPECT_EQ(decoded.value().deadline_us, req.deadline_us);
  EXPECT_TRUE(decoded.value().is_hedge());
  EXPECT_FALSE(decoded.value().is_stats_probe());
  EXPECT_EQ(decoded.value().text_a, req.text_a);
  EXPECT_EQ(decoded.value().text_b, req.text_b);
}

TEST(WireTest, ResponseRoundTrip) {
  MatchResponse resp;
  resp.trace_id = 42;
  resp.code = StatusCode::kDeadlineExceeded;
  resp.message = "deadline passed while queued";
  resp.probability = 0.875;
  resp.is_match = true;
  resp.queue_us = 120.5;
  resp.infer_us = 3120.25;
  resp.server_us = 3200.75;
  resp.batch_size = 7;
  resp.stats_json = "{\"x\": 1}";

  std::string frame;
  EncodeResponse(resp, &frame);

  FrameBuffer buf;
  buf.Append(frame.data(), frame.size());
  std::string_view payload;
  bool complete = false;
  ASSERT_TRUE(buf.Next(&payload, &complete).ok());
  ASSERT_TRUE(complete);

  auto decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().trace_id, 42u);
  EXPECT_EQ(decoded.value().code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(decoded.value().message, resp.message);
  EXPECT_DOUBLE_EQ(decoded.value().probability, 0.875);
  EXPECT_TRUE(decoded.value().is_match);
  EXPECT_DOUBLE_EQ(decoded.value().queue_us, 120.5);
  EXPECT_DOUBLE_EQ(decoded.value().infer_us, 3120.25);
  EXPECT_EQ(decoded.value().batch_size, 7u);
  EXPECT_EQ(decoded.value().stats_json, "{\"x\": 1}");
  EXPECT_EQ(decoded.value().ToStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(WireTest, IncrementalByteAtATimeParse) {
  MatchRequest req;
  req.trace_id = 7;
  req.text_a = "a";
  req.text_b = "b";
  std::string frame;
  EncodeRequest(req, &frame);

  FrameBuffer buf;
  std::string_view payload;
  bool complete = false;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    buf.Append(&frame[i], 1);
    ASSERT_TRUE(buf.Next(&payload, &complete).ok());
    ASSERT_FALSE(complete) << "complete after " << (i + 1) << " of "
                           << frame.size() << " bytes";
  }
  buf.Append(&frame[frame.size() - 1], 1);
  ASSERT_TRUE(buf.Next(&payload, &complete).ok());
  ASSERT_TRUE(complete);
  EXPECT_TRUE(DecodeRequest(payload).ok());
  EXPECT_FALSE(buf.has_partial());
}

TEST(WireTest, PipelinedFramesDrainInOrder) {
  std::string stream;
  for (uint64_t id = 1; id <= 3; ++id) {
    MatchRequest req;
    req.trace_id = id;
    req.text_a = "pair " + std::to_string(id);
    EncodeRequest(req, &stream);
  }
  FrameBuffer buf;
  buf.Append(stream.data(), stream.size());
  for (uint64_t id = 1; id <= 3; ++id) {
    std::string_view payload;
    bool complete = false;
    ASSERT_TRUE(buf.Next(&payload, &complete).ok());
    ASSERT_TRUE(complete);
    auto req = DecodeRequest(payload);
    ASSERT_TRUE(req.ok());
    EXPECT_EQ(req.value().trace_id, id);
  }
  EXPECT_FALSE(buf.has_partial());
}

TEST(WireTest, OversizedLengthPrefixPoisonsBuffer) {
  FrameBuffer buf;
  const uint32_t huge = kMaxFrameBytes + 1;
  char prefix[4];
  std::memcpy(prefix, &huge, 4);  // test hosts are little-endian
  buf.Append(prefix, 4);
  std::string_view payload;
  bool complete = false;
  Status st = buf.Next(&payload, &complete);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  // Poisoned: every later call reports the same damage, even after more
  // bytes arrive — a corrupt length-prefixed stream cannot be resynced.
  buf.Append("more", 4);
  st = buf.Next(&payload, &complete);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, GarbagePayloadRejected) {
  // A plausible length prefix followed by garbage: the frame assembles but
  // decode must fail (bad magic), not crash.
  std::string garbage(4, '\0');
  garbage[0] = '\x10';  // u32 LE length = 16
  garbage += std::string(16, '\xab');
  FrameBuffer buf;
  buf.Append(garbage.data(), garbage.size());
  std::string_view payload;
  bool complete = false;
  ASSERT_TRUE(buf.Next(&payload, &complete).ok());
  ASSERT_TRUE(complete);
  EXPECT_FALSE(DecodeRequest(payload).ok());
  EXPECT_FALSE(DecodeResponse(payload).ok());
}

TEST(WireTest, TruncatedInnerFieldRejected) {
  MatchRequest req;
  req.text_a = "some entity title";
  req.text_b = "another entity title";
  std::string frame;
  EncodeRequest(req, &frame);
  // Rewrite the outer length to chop the last 5 payload bytes: the frame
  // completes but text_b's declared length overruns the payload.
  const uint32_t shorter = static_cast<uint32_t>(frame.size() - 4 - 5);
  std::memcpy(frame.data(), &shorter, 4);
  frame.resize(4 + shorter);

  FrameBuffer buf;
  buf.Append(frame.data(), frame.size());
  std::string_view payload;
  bool complete = false;
  ASSERT_TRUE(buf.Next(&payload, &complete).ok());
  ASSERT_TRUE(complete);
  auto decoded = DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, TrailingBytesRejected) {
  MatchRequest req;
  req.text_a = "a";
  std::string frame;
  EncodeRequest(req, &frame);
  // Grow the payload by 3 junk bytes and fix up the prefix: strict decode
  // requires every payload byte to be consumed.
  frame += "xyz";
  const uint32_t longer = static_cast<uint32_t>(frame.size() - 4);
  std::memcpy(frame.data(), &longer, 4);

  FrameBuffer buf;
  buf.Append(frame.data(), frame.size());
  std::string_view payload;
  bool complete = false;
  ASSERT_TRUE(buf.Next(&payload, &complete).ok());
  ASSERT_TRUE(complete);
  EXPECT_FALSE(DecodeRequest(payload).ok());
}

// ---- Synthetic shard backend for router unit tests -------------------------

/// Deterministic fake shard: answers every request after `delay_us` from a
/// private worker thread and records what it served.
class FakeShard : public ShardBackend {
 public:
  FakeShard(std::string name, int64_t delay_us, double probability = 0.9)
      : name_(std::move(name)),
        delay_us_(delay_us),
        probability_(probability),
        worker_(&FakeShard::Loop, this) {}

  ~FakeShard() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  void Dispatch(const MatchRequest& req,
                std::function<void(MatchResponse)> done) override {
    in_flight_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back({req, std::move(done)});
      if (req.is_hedge()) ++hedges_received_;
      ++dispatched_;
    }
    cv_.notify_one();
  }

  int64_t in_flight() const override { return in_flight_.load(); }
  std::string StatsJson() override { return "{\"fake\": true}"; }
  std::string name() const override { return name_; }

  int64_t dispatched() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dispatched_;
  }
  int64_t hedges_received() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hedges_received_;
  }

 private:
  struct Item {
    MatchRequest req;
    std::function<void(MatchResponse)> done;
  };

  void Loop() {
    while (true) {
      Item item;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
        if (queue_.empty()) return;
        item = std::move(queue_.front());
        queue_.pop_front();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us_));
      MatchResponse resp;
      resp.trace_id = item.req.trace_id;
      resp.probability = probability_;
      resp.is_match = probability_ >= 0.5;
      resp.infer_us = static_cast<double>(delay_us_);
      resp.batch_size = 1;
      in_flight_.fetch_sub(1);
      item.done(std::move(resp));
    }
  }

  const std::string name_;
  const int64_t delay_us_;
  const double probability_;
  std::atomic<int64_t> in_flight_{0};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  int64_t dispatched_ = 0;
  int64_t hedges_received_ = 0;
  bool stopping_ = false;
  std::thread worker_;
};

// ---- FleetRouter: routing, admission, hedging, deadlines -------------------

TEST(FleetRouterTest, ConsistentHashIsDeterministicPerPair) {
  RouterOptions opts;
  opts.policy = RoutePolicy::kConsistentHash;
  opts.hedging = false;
  FleetRouter router(opts);
  auto* a = new FakeShard("shard-a", 100);
  auto* b = new FakeShard("shard-b", 100);
  ASSERT_TRUE(router.AddShardForTest(std::unique_ptr<ShardBackend>(a)).ok());
  ASSERT_TRUE(router.AddShardForTest(std::unique_ptr<ShardBackend>(b)).ok());

  // The same pair always lands on the same shard.
  int first_shard = -1;
  for (int i = 0; i < 5; ++i) {
    RouteResult r = router.Match("canon eos r5 body", "canon r5 camera");
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    if (first_shard < 0) first_shard = r.shard;
    EXPECT_EQ(r.shard, first_shard);
  }
  // Distinct pairs spread across both shards.
  for (int i = 0; i < 24; ++i) {
    const std::string key = "product " + std::to_string(i * 7919);
    RouteResult r = router.Match(key, key + " (refurbished)");
    ASSERT_TRUE(r.status.ok());
  }
  EXPECT_GT(a->dispatched(), 0);
  EXPECT_GT(b->dispatched(), 0);
  router.Shutdown();
}

TEST(FleetRouterTest, LeastLoadedAvoidsBusyShard) {
  RouterOptions opts;
  opts.policy = RoutePolicy::kLeastLoaded;
  opts.hedging = false;
  FleetRouter router(opts);
  auto* slow = new FakeShard("slow", 150000);  // 150ms per request
  auto* fast = new FakeShard("fast", 1000);
  ASSERT_TRUE(
      router.AddShardForTest(std::unique_ptr<ShardBackend>(slow)).ok());
  ASSERT_TRUE(
      router.AddShardForTest(std::unique_ptr<ShardBackend>(fast)).ok());

  // First request ties (both idle) and goes to shard 0 (the slow one);
  // while it is in flight, everything else must pick the idle fast shard.
  std::vector<std::future<RouteResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(router.Submit("pair " + std::to_string(i), "x"));
    std::this_thread::sleep_for(milliseconds(5));
  }
  for (auto& f : futures) {
    RouteResult r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  }
  EXPECT_EQ(slow->dispatched(), 1);
  EXPECT_EQ(fast->dispatched(), 5);
  router.Shutdown();
}

TEST(FleetRouterTest, AdmissionControlFailsFastAtBudget) {
  RouterOptions opts;
  opts.policy = RoutePolicy::kLeastLoaded;
  opts.hedging = false;
  opts.max_in_flight = 2;
  FleetRouter router(opts);
  ASSERT_TRUE(router
                  .AddShardForTest(std::make_unique<FakeShard>(
                      "slow", /*delay_us=*/200000))
                  .ok());

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<RouteResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(router.Submit("pair " + std::to_string(i), "y"));
  }
  int ok = 0;
  int rejected = 0;
  for (auto& f : futures) {
    RouteResult r = f.get();
    if (r.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted)
          << r.status.ToString();
      EXPECT_EQ(r.shard, -1);
      ++rejected;
    }
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rejected, 4);
  // The whole set resolves in ~2 serialized service times, proving the
  // rejections did not queue behind the slow shard.
  EXPECT_LT(wall_ms, 1500.0);
  EXPECT_EQ(router.registry()->GetCounter("router.rejected")->Value(), 4);
  router.Shutdown();
}

TEST(FleetRouterTest, HedgeRescuesStragglerShard) {
  RouterOptions opts;
  opts.policy = RoutePolicy::kConsistentHash;
  opts.hedging = true;
  // 60ms: far above what an OS scheduling hiccup can add to the healthy
  // shard's 2ms service (a false hedge would go *to* the straggler and
  // flip the assertions below), far below the straggler's 400ms.
  opts.hedge_min_us = 60000;
  opts.hedge_poll_us = 2000;
  FleetRouter router(opts);
  auto* straggler = new FakeShard("straggler", 400000);  // 400ms
  auto* healthy = new FakeShard("healthy", 2000);        // 2ms
  ASSERT_TRUE(
      router.AddShardForTest(std::unique_ptr<ShardBackend>(straggler)).ok());
  ASSERT_TRUE(
      router.AddShardForTest(std::unique_ptr<ShardBackend>(healthy)).ok());

  int hedged = 0;
  for (int i = 0; i < 12; ++i) {
    const std::string key = "entity " + std::to_string(i * 104729);
    RouteResult r = router.Match(key, key + " v2");
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    if (r.hedged) {
      ++hedged;
      EXPECT_TRUE(r.hedge_won);
      EXPECT_EQ(r.shard, 1)
          << "hedge must have been served by the healthy shard";
      // Rescued: ~hedge threshold + healthy delay, far under 400ms.
      EXPECT_LT(r.total_us, 200000.0);
    }
  }
  // The hash spreads some pairs onto the straggler; all of those must have
  // been hedged (400ms >> the 20ms threshold) and rescued.
  EXPECT_GT(hedged, 0);
  EXPECT_EQ(straggler->hedges_received(), 0);
  EXPECT_GT(healthy->hedges_received(), 0);
  EXPECT_GE(router.registry()->GetCounter("router.hedges")->Value(), hedged);
  EXPECT_GE(router.registry()->GetCounter("router.hedge_wins")->Value(),
            hedged);
  router.Shutdown();
}

TEST(FleetRouterTest, DeadlinePropagatesAndFiresAtRouter) {
  RouterOptions opts;
  opts.hedging = false;
  FleetRouter router(opts);
  ASSERT_TRUE(router
                  .AddShardForTest(std::make_unique<FakeShard>(
                      "slow", /*delay_us=*/500000))
                  .ok());

  const auto t0 = std::chrono::steady_clock::now();
  RouteResult r = router.Match("a", "b", /*timeout_us=*/30000);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
      << r.status.ToString();
  EXPECT_LT(wall_ms, 250.0);  // nowhere near the shard's 500ms
  EXPECT_GE(router.registry()->GetCounter("router.deadline_exceeded")->Value(),
            1);
  router.Shutdown();
}

TEST(FleetRouterTest, FleetSnapshotIsStrictJson) {
  RouterOptions opts;
  opts.hedging = false;
  FleetRouter router(opts);
  ASSERT_TRUE(
      router.AddShardForTest(std::make_unique<FakeShard>("s0", 500)).ok());
  ASSERT_TRUE(
      router.AddShardForTest(std::make_unique<FakeShard>("s1", 500)).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(router.Match("x" + std::to_string(i), "y").status.ok());
  }

  const std::string snapshot = router.FleetSnapshotJson();
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::JsonParse(snapshot, &doc, &error))
      << error << "\n"
      << snapshot;
  const obs::JsonValue* router_obj = doc.Find("router");
  ASSERT_NE(router_obj, nullptr);
  const obs::JsonValue* completed = router_obj->Find("completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_DOUBLE_EQ(completed->number, 8.0);
  const obs::JsonValue* shards = doc.Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_TRUE(shards->is_array());
  EXPECT_EQ(shards->array.size(), 2u);
  router.Shutdown();
}

TEST(FleetRouterTest, SubmitWithoutShardsFailsCleanly) {
  FleetRouter router;
  RouteResult r = router.Match("a", "b");
  EXPECT_FALSE(r.status.ok());
}

// ---- MatchServer over real sockets -----------------------------------------

/// Shared tiny matcher (random weights, trained tokenizer) — network
/// semantics do not need meaningful probabilities.
class NetServerFixture : public ::testing::Test {
 protected:
  static constexpr const char* kCacheDir = "/tmp/emx_zoo_net_test";
  static constexpr int64_t kSeqLen = 32;

  static core::EntityMatcher* Matcher() {
    static std::unique_ptr<core::EntityMatcher> matcher = [] {
      pretrain::ZooOptions zoo;
      zoo.cache_dir = kCacheDir;
      zoo.vocab_size = 500;
      zoo.corpus.num_documents = 150;
      zoo.skip_pretraining = true;
      auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
      EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
      auto m = std::make_unique<core::EntityMatcher>(std::move(bundle).value());
      m->set_eval_max_seq_len(kSeqLen);
      return m;
    }();
    return matcher.get();
  }

  static serve::EngineOptions EngineOpts() {
    serve::EngineOptions opts;
    opts.max_seq_len = kSeqLen;
    opts.bucket_width = kSeqLen;
    opts.max_wait_us = 2000;
    return opts;
  }

  static void TearDownTestSuite() { std::filesystem::remove_all(kCacheDir); }
};

/// Blocking mini-client: sends one frame and reads one response with its
/// own FrameBuffer.
Result<MatchResponse> RoundTrip(uint16_t port, const MatchRequest& req,
                                int timeout_ms = 10000) {
  auto sock = ConnectTcp(port);
  EMX_RETURN_IF_ERROR(sock.status());
  std::string frame;
  EncodeRequest(req, &frame);
  EMX_RETURN_IF_ERROR(SendAll(sock.value().fd(), frame.data(), frame.size()));
  FrameBuffer frames;
  char buf[4096];
  while (true) {
    auto got = RecvSome(sock.value().fd(), buf, sizeof(buf), timeout_ms);
    EMX_RETURN_IF_ERROR(got.status());
    if (got.value() == 0) {
      return Status::Unavailable("server closed the connection");
    }
    frames.Append(buf, got.value());
    std::string_view payload;
    bool complete = false;
    EMX_RETURN_IF_ERROR(frames.Next(&payload, &complete));
    if (complete) return DecodeResponse(payload);
  }
}

TEST_F(NetServerFixture, ServesMatchRequestsOverSocket) {
  serve::MatcherEngine engine(Matcher(), EngineOpts());
  ServerOptions opts;
  opts.port = 0;  // ephemeral
  MatchServer server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  MatchRequest req;
  req.trace_id = 99;
  req.text_a = "sony wh-1000xm4 wireless headphones";
  req.text_b = "sony wireless noise cancelling headphones wh1000xm4";
  auto resp = RoundTrip(server.port(), req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().trace_id, 99u);
  EXPECT_EQ(resp.value().code, StatusCode::kOk);
  EXPECT_GE(resp.value().probability, 0.0);
  EXPECT_LE(resp.value().probability, 1.0);
  EXPECT_GT(resp.value().infer_us, 0.0);
  EXPECT_GT(resp.value().server_us, 0.0);
  EXPECT_GE(resp.value().batch_size, 1u);
  EXPECT_EQ(server.registry()->GetCounter("net.requests")->Value(), 1);
  EXPECT_EQ(server.registry()->GetCounter("net.responses")->Value(), 1);
  server.Stop();
}

TEST_F(NetServerFixture, StatsProbeReturnsStrictJson) {
  serve::MatcherEngine engine(Matcher(), EngineOpts());
  MatchServer server(&engine);
  ASSERT_TRUE(server.Start().ok());

  MatchRequest probe;
  probe.trace_id = 1;
  probe.flags = kFlagStats;
  auto resp = RoundTrip(server.port(), probe);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::JsonParse(resp.value().stats_json, &doc, &error))
      << error << "\n"
      << resp.value().stats_json;
  EXPECT_NE(doc.Find("server"), nullptr);
  EXPECT_NE(doc.Find("engine"), nullptr);
}

TEST_F(NetServerFixture, GarbageBytesCloseConnectionNotServer) {
  serve::MatcherEngine engine(Matcher(), EngineOpts());
  MatchServer server(&engine);
  ASSERT_TRUE(server.Start().ok());

  {
    // Oversized length prefix.
    auto sock = ConnectTcp(server.port());
    ASSERT_TRUE(sock.ok());
    const uint32_t huge = kMaxFrameBytes * 2;
    char prefix[4];
    std::memcpy(prefix, &huge, 4);
    ASSERT_TRUE(SendAll(sock.value().fd(), prefix, 4).ok());
    char buf[16];
    auto got = RecvSome(sock.value().fd(), buf, sizeof(buf), 5000);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), 0u) << "server should close the connection";
  }
  {
    // Well-framed garbage payload (bad magic).
    std::string junk(4, '\0');
    junk[0] = '\x08';  // u32 LE length = 8
    junk += std::string(8, '\x5a');
    auto sock = ConnectTcp(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(SendAll(sock.value().fd(), junk.data(), junk.size()).ok());
    char buf[16];
    auto got = RecvSome(sock.value().fd(), buf, sizeof(buf), 5000);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), 0u);
  }

  // The server is still healthy for well-behaved clients.
  MatchRequest req;
  req.trace_id = 5;
  req.text_a = "still";
  req.text_b = "alive";
  auto resp = RoundTrip(server.port(), req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().code, StatusCode::kOk);
  EXPECT_GE(server.registry()->GetCounter("net.bad_frames")->Value(), 2);
}

TEST_F(NetServerFixture, SlowLorisHitsReadTimeout) {
  serve::MatcherEngine engine(Matcher(), EngineOpts());
  ServerOptions opts;
  opts.read_timeout_ms = 150;
  opts.poll_interval_ms = 10;
  MatchServer server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());

  MatchRequest req;
  req.text_a = "never";
  req.text_b = "finishes";
  std::string frame;
  EncodeRequest(req, &frame);

  auto sock = ConnectTcp(server.port());
  ASSERT_TRUE(sock.ok());
  // Trickle a few bytes of the frame, then stall mid-frame.
  ASSERT_TRUE(SendAll(sock.value().fd(), frame.data(), 6).ok());
  char buf[16];
  auto got = RecvSome(sock.value().fd(), buf, sizeof(buf), 5000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), 0u) << "stalled connection should be reaped";
  EXPECT_GE(server.registry()->GetCounter("net.read_timeouts")->Value(), 1);

  // A prompt client is unaffected.
  MatchRequest ok_req;
  ok_req.trace_id = 3;
  ok_req.text_a = "prompt";
  ok_req.text_b = "client";
  auto resp = RoundTrip(server.port(), ok_req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().code, StatusCode::kOk);
}

TEST_F(NetServerFixture, TruncatedFrameThenCloseIsHarmless) {
  serve::MatcherEngine engine(Matcher(), EngineOpts());
  MatchServer server(&engine);
  ASSERT_TRUE(server.Start().ok());
  {
    auto sock = ConnectTcp(server.port());
    ASSERT_TRUE(sock.ok());
    MatchRequest req;
    req.text_a = "half";
    req.text_b = "a frame";
    std::string frame;
    EncodeRequest(req, &frame);
    ASSERT_TRUE(
        SendAll(sock.value().fd(), frame.data(), frame.size() / 2).ok());
    // Socket destructor closes with the frame incomplete.
  }
  std::this_thread::sleep_for(milliseconds(100));
  MatchRequest req;
  req.trace_id = 11;
  req.text_a = "full";
  req.text_b = "frame";
  auto resp = RoundTrip(server.port(), req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().code, StatusCode::kOk);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST_F(NetServerFixture, BindOnBusyPortReportsErrnoText) {
  serve::MatcherEngine engine(Matcher(), EngineOpts());
  MatchServer first(&engine);
  ASSERT_TRUE(first.Start().ok());

  ServerOptions opts;
  opts.port = first.port();  // already taken
  MatchServer second(&engine, opts);
  const Status st = second.Start();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.ToString().find("bind"), std::string::npos) << st.ToString();
  // strerror text ("Address already in use") is carried along.
  EXPECT_NE(st.ToString().find("in use"), std::string::npos) << st.ToString();
}

TEST_F(NetServerFixture, RouterDrivesRemoteFleetEndToEnd) {
  serve::MatcherEngine engine_a(Matcher(), EngineOpts());
  serve::MatcherEngine engine_b(Matcher(), EngineOpts());
  MatchServer server_a(&engine_a);
  MatchServer server_b(&engine_b);
  ASSERT_TRUE(server_a.Start().ok());
  ASSERT_TRUE(server_b.Start().ok());

  RouterOptions ropts;
  ropts.policy = RoutePolicy::kConsistentHash;
  ropts.hedging = true;
  ropts.hedge_min_us = 1000000;  // effectively off for this traffic
  FleetRouter router(ropts);
  ASSERT_TRUE(router.AddRemoteShard(server_a.port()).ok());
  ASSERT_TRUE(router.AddRemoteShard(server_b.port()).ok());

  std::vector<std::future<RouteResult>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(
        router.Submit("apple iphone 12 case " + std::to_string(i),
                      "iphone 12 protective case " + std::to_string(i)));
  }
  for (auto& f : futures) {
    RouteResult r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_GE(r.probability, 0.0);
    EXPECT_LE(r.probability, 1.0);
    EXPECT_GT(r.infer_us, 0.0);
  }

  // Both servers saw traffic (consistent hash spreads distinct pairs) and
  // the fleet snapshot aggregates their wire-fetched metrics strictly.
  EXPECT_GT(server_a.registry()->GetCounter("net.requests")->Value(), 0);
  EXPECT_GT(server_b.registry()->GetCounter("net.requests")->Value(), 0);
  const std::string snapshot = router.FleetSnapshotJson();
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::JsonParse(snapshot, &doc, &error)) << error;
  const obs::JsonValue* shards = doc.Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->array.size(), 2u);
  for (const auto& shard : shards->array) {
    const obs::JsonValue* stats = shard.Find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_TRUE(stats->is_object()) << "remote stats probe failed";
  }

  router.Shutdown();
  server_a.Stop();
  server_b.Stop();
}

TEST_F(NetServerFixture, LocalShardsServeThroughRouter) {
  serve::MatcherEngine engine_a(Matcher(), EngineOpts());
  serve::MatcherEngine engine_b(Matcher(), EngineOpts());
  RouterOptions ropts;
  ropts.policy = RoutePolicy::kLeastLoaded;
  ropts.hedging = false;
  FleetRouter router(ropts);
  ASSERT_TRUE(router.AddLocalShard(&engine_a).ok());
  ASSERT_TRUE(router.AddLocalShard(&engine_b).ok());

  std::vector<std::future<RouteResult>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(router.Submit("galaxy s21 ultra " + std::to_string(i),
                                    "samsung s21 ultra " + std::to_string(i)));
  }
  for (auto& f : futures) {
    RouteResult r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_GE(r.shard, 0);
    EXPECT_LE(r.shard, 1);
  }
  router.Shutdown();
}

}  // namespace
}  // namespace net
}  // namespace emx
