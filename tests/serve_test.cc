#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#include "core/entity_matcher.h"
#include "models/encoder.h"
#include "nn/layers.h"
#include "obs/json.h"
#include "pretrain/model_zoo.h"
#include "quant/quantize_matcher.h"
#include "serve/activation_cache.h"
#include "serve/matcher_engine.h"
#include "serve/serving_metrics.h"
#include "serve/token_cache.h"
#include "tensor/variable.h"
#include "util/rng.h"

namespace emx {
namespace serve {
namespace {

/// Shared matcher for the engine tests. Weights are random
/// (skip_pretraining) but deterministic, which is all batching/status
/// semantics need; only the tokenizer is trained (and cached).
class ServeFixture : public ::testing::Test {
 protected:
  static constexpr const char* kCacheDir = "/tmp/emx_zoo_serve_test";
  static constexpr int64_t kSeqLen = 32;

  static pretrain::ZooOptions Zoo() {
    pretrain::ZooOptions zoo;
    zoo.cache_dir = kCacheDir;
    zoo.vocab_size = 500;
    zoo.corpus.num_documents = 150;
    zoo.skip_pretraining = true;
    return zoo;
  }

  static core::EntityMatcher* Matcher() {
    static std::unique_ptr<core::EntityMatcher> matcher = [] {
      auto bundle = pretrain::GetPretrained(models::Architecture::kBert, Zoo());
      EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
      auto m = std::make_unique<core::EntityMatcher>(std::move(bundle).value());
      m->set_eval_max_seq_len(kSeqLen);
      return m;
    }();
    return matcher.get();
  }

  static EngineOptions BaseOptions() {
    EngineOptions opts;
    opts.max_seq_len = kSeqLen;
    opts.bucket_width = kSeqLen;  // single bucket unless a test says otherwise
    return opts;
  }

  static void TearDownTestSuite() { std::filesystem::remove_all(kCacheDir); }
};

// ---- Micro-batching --------------------------------------------------------

TEST_F(ServeFixture, FlushesWhenBatchFills) {
  EngineOptions opts = BaseOptions();
  opts.max_batch_size = 4;
  opts.max_wait_us = 10'000'000;  // would stall for 10s without a size flush
  MatcherEngine engine(Matcher(), opts);

  std::vector<std::future<MatchResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(engine.Submit("acer laptop model " + std::to_string(i),
                                    "acer notebook model " + std::to_string(i)));
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(5)), std::future_status::ready);
    MatchResult r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.batch_size, 4);
    EXPECT_GE(r.probability, 0.0);
    EXPECT_LE(r.probability, 1.0);
  }
  EXPECT_EQ(engine.Metrics().batches, 1);
}

TEST_F(ServeFixture, FlushesOnMaxWaitDeadline) {
  EngineOptions opts = BaseOptions();
  opts.max_batch_size = 16;   // never fills
  opts.max_wait_us = 20'000;  // 20ms
  MatcherEngine engine(Matcher(), opts);

  auto fut = engine.Submit("lone request", "with no batch peers");
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  MatchResult r = fut.get();
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.batch_size, 1);
  // It waited for peers before flushing.
  EXPECT_GE(r.total_us, static_cast<double>(opts.max_wait_us) * 0.5);
}

TEST_F(ServeFixture, LengthBucketsAreServedSeparately) {
  EngineOptions opts = BaseOptions();
  opts.bucket_width = 8;
  opts.max_batch_size = 2;
  opts.max_wait_us = 20'000;
  MatcherEngine engine(Matcher(), opts);

  // Two short pairs (bucket ~1) and two long pairs (higher bucket).
  const std::string longa =
      "sony professional studio monitor headphones mdr 7506 with closed back "
      "large diaphragm drivers and detachable coiled cable";
  const std::string longb =
      "sony mdr7506 professional large diaphragm headphone closed back studio "
      "monitoring with coiled cord and case";
  auto s1 = engine.Submit("tv", "a tv");
  auto s2 = engine.Submit("mug", "a mug");
  auto l1 = engine.Submit(longa, longb);
  auto l2 = engine.Submit(longb, longa);

  MatchResult rs1 = s1.get(), rs2 = s2.get(), rl1 = l1.get(), rl2 = l2.get();
  for (const MatchResult* r : {&rs1, &rs2, &rl1, &rl2}) {
    EXPECT_TRUE(r->status.ok()) << r->status.ToString();
    // No batch mixed buckets, so nothing exceeded the pair count.
    EXPECT_LE(r->batch_size, 2);
  }
}

// ---- Overload and deadlines ------------------------------------------------

TEST_F(ServeFixture, QueueFullRejectsWithResourceExhausted) {
  EngineOptions opts = BaseOptions();
  opts.queue_capacity = 2;
  opts.start_paused = true;  // hold the queue so it can fill
  MatcherEngine engine(Matcher(), opts);

  auto f1 = engine.Submit("pair one a", "pair one b");
  auto f2 = engine.Submit("pair two a", "pair two b");
  auto f3 = engine.Submit("pair three a", "pair three b");
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f3.get().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.Metrics().rejected, 1);

  engine.Resume();
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
}

TEST_F(ServeFixture, PerRequestDeadlineTimesOutWhileQueued) {
  EngineOptions opts = BaseOptions();
  opts.start_paused = true;
  MatcherEngine engine(Matcher(), opts);

  auto expired = engine.Submit("slow a", "slow b", /*timeout_us=*/1000);
  auto alive = engine.Submit("fast a", "fast b");  // no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  engine.Resume();

  MatchResult r = expired.get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(alive.get().status.ok());
  MetricsSnapshot m = engine.Metrics();
  EXPECT_EQ(m.timed_out, 1);
  EXPECT_EQ(m.completed, 1);
}

TEST_F(ServeFixture, SubmitAfterShutdownIsUnavailable) {
  EngineOptions opts = BaseOptions();
  MatcherEngine engine(Matcher(), opts);
  EXPECT_TRUE(engine.Match("a pair", "to warm up").status.ok());
  engine.Shutdown();
  EXPECT_EQ(engine.Submit("too", "late").get().status.code(),
            StatusCode::kUnavailable);
}

TEST_F(ServeFixture, ShutdownDrainsQueuedRequests) {
  EngineOptions opts = BaseOptions();
  opts.max_batch_size = 16;
  opts.max_wait_us = 10'000'000;  // drain must not wait this out
  MatcherEngine engine(Matcher(), opts);
  auto f1 = engine.Submit("queued a", "queued b");
  auto f2 = engine.Submit("queued c", "queued d");
  engine.Shutdown();
  EXPECT_TRUE(f1.get().status.ok());
  EXPECT_TRUE(f2.get().status.ok());
}

// ---- Tokenization cache ----------------------------------------------------

TEST_F(ServeFixture, TokenCacheLruEviction) {
  TokenizationCache cache(&Matcher()->tokenizer(), /*capacity=*/2, kSeqLen);
  bool hit = true;
  cache.Get("alpha", "one", &hit);
  EXPECT_FALSE(hit);
  cache.Get("beta", "two", &hit);
  EXPECT_FALSE(hit);
  cache.Get("alpha", "one", &hit);  // promotes alpha
  EXPECT_TRUE(hit);
  cache.Get("gamma", "three", &hit);  // evicts beta (least recent)
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2);
  cache.Get("alpha", "one", &hit);
  EXPECT_TRUE(hit);
  cache.Get("beta", "two", &hit);
  EXPECT_FALSE(hit);  // was evicted
}

TEST_F(ServeFixture, TokenCacheCapacityOneStillCaches) {
  // The degenerate single-slot LRU: every insert evicts the previous
  // entry, but a repeated key in a row still hits.
  TokenizationCache cache(&Matcher()->tokenizer(), /*capacity=*/1, kSeqLen);
  bool hit = true;
  cache.Get("alpha", "one", &hit);
  EXPECT_FALSE(hit);
  cache.Get("alpha", "one", &hit);
  EXPECT_TRUE(hit);
  cache.Get("beta", "two", &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 1);
  cache.Get("alpha", "one", &hit);
  EXPECT_FALSE(hit);  // evicted by beta
  EXPECT_EQ(cache.size(), 1);
}

TEST_F(ServeFixture, TokenCacheZeroCapacityDisablesCaching) {
  // Zero capacity must disable caching, not crash: every Get tokenizes
  // fresh, reports a miss and stores nothing.
  TokenizationCache cache(&Matcher()->tokenizer(), /*capacity=*/0, kSeqLen);
  bool hit = true;
  CachedEncoding c = cache.Get("asus zenbook", "zenbook by asus", &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 0);
  cache.Get("asus zenbook", "zenbook by asus", &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 0);
  // The uncached encoding is still correct, length included.
  tokenizers::EncodedPair direct = Matcher()->tokenizer().EncodePair(
      "asus zenbook", "zenbook by asus", kSeqLen);
  EXPECT_EQ(c.enc.ids, direct.ids);
  int64_t real = 0;
  for (float pad : direct.attention_mask) real += pad == 0.0f ? 1 : 0;
  EXPECT_EQ(c.length, real);
}

TEST_F(ServeFixture, EngineWithCacheDisabledStillServes) {
  EngineOptions opts = BaseOptions();
  opts.cache_capacity = 0;
  opts.max_wait_us = 1000;
  MatcherEngine engine(Matcher(), opts);
  EXPECT_TRUE(engine.Match("pixel 7", "google pixel 7").status.ok());
  EXPECT_TRUE(engine.Match("pixel 7", "google pixel 7").status.ok());
  MetricsSnapshot m = engine.Metrics();
  EXPECT_EQ(m.cache_hits, 0);
  EXPECT_EQ(m.cache_misses, 2);
}

TEST_F(ServeFixture, CachedEncodingMatchesDirectTokenization) {
  TokenizationCache cache(&Matcher()->tokenizer(), 8, kSeqLen);
  CachedEncoding c = cache.Get("asus zenbook 14", "zenbook 14 by asus");
  tokenizers::EncodedPair direct =
      Matcher()->tokenizer().EncodePair("asus zenbook 14", "zenbook 14 by asus",
                                        kSeqLen);
  EXPECT_EQ(c.enc.ids, direct.ids);
  EXPECT_EQ(c.enc.segment_ids, direct.segment_ids);
  int64_t real = 0;
  for (float pad : direct.attention_mask) real += pad == 0.0f ? 1 : 0;
  EXPECT_EQ(c.length, real);
}

TEST_F(ServeFixture, EngineReportsCacheHits) {
  EngineOptions opts = BaseOptions();
  opts.max_wait_us = 1000;
  MatcherEngine engine(Matcher(), opts);
  MatchResult first = engine.Match("iphone 12", "apple iphone 12");
  MatchResult second = engine.Match("iphone 12", "apple iphone 12");
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  MetricsSnapshot m = engine.Metrics();
  EXPECT_EQ(m.cache_hits, 1);
  EXPECT_EQ(m.cache_misses, 1);
  EXPECT_NEAR(m.cache_hit_rate, 0.5, 1e-9);
}

// ---- Correctness vs. the one-pair path -------------------------------------

TEST_F(ServeFixture, GradFreeLogitsBitIdenticalToTrainingForward) {
  // The acceptance-criteria golden test: the same batch through the same
  // forward, with and without tape construction, must agree on every bit.
  models::Batch batch = Matcher()->BuildBatch(
      {"dell xps 13 9310", "nikon d750 dslr"},
      {"dell xps 13 laptop 2021", "nikon d850 dslr body"}, kSeqLen);
  Rng rng(1);
  Variable with_tape =
      Matcher()->classifier()->Logits(batch, /*train=*/false, &rng);
  EXPECT_TRUE(with_tape.requires_grad());
  Variable grad_free;
  {
    NoGradGuard guard;
    grad_free = Matcher()->classifier()->Logits(batch, /*train=*/false, &rng);
  }
  EXPECT_FALSE(grad_free.requires_grad());
  ASSERT_EQ(with_tape.value().shape(), grad_free.value().shape());
  for (int64_t i = 0; i < with_tape.value().size(); ++i) {
    EXPECT_EQ(with_tape.value()[i], grad_free.value()[i]) << "logit " << i;
  }
}

TEST_F(ServeFixture, MultiWorkerResultsMatchSingleWorker) {
  // Two workers run concurrent forwards against the same weights; every
  // result must equal the serialized single-worker answer.
  std::vector<std::string> as, bs;
  for (int i = 0; i < 24; ++i) {
    as.push_back("widget model " + std::to_string(i));
    bs.push_back("widget mk " + std::to_string(i % 6));
  }
  std::vector<double> expected = Matcher()->MatchProbabilities(as, bs);

  EngineOptions opts = BaseOptions();
  opts.num_workers = 2;
  opts.max_batch_size = 4;
  opts.max_wait_us = 500;
  MatcherEngine engine(Matcher(), opts);
  std::vector<std::future<MatchResult>> futures;
  for (size_t i = 0; i < as.size(); ++i) {
    futures.push_back(engine.Submit(as[i], bs[i]));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    MatchResult r = futures[i].get();
    ASSERT_TRUE(r.status.ok());
    EXPECT_NEAR(r.probability, expected[i], 1e-6) << "pair " << i;
  }
}

TEST_F(ServeFixture, EngineProbabilityMatchesDirectMatchProbability) {
  EngineOptions opts = BaseOptions();
  opts.max_wait_us = 1000;
  MatcherEngine engine(Matcher(), opts);
  const std::string a = "canon eos r6 mirrorless camera body";
  const std::string b = "canon r6 mirrorless digital camera";
  MatchResult served = engine.Match(a, b);
  ASSERT_TRUE(served.status.ok());
  const double direct = Matcher()->MatchProbability(a, b);
  EXPECT_NEAR(served.probability, direct, 1e-6);
  EXPECT_EQ(served.is_match, direct >= 0.5);
}

// ---- Checkpoint round-trip -------------------------------------------------

TEST_F(ServeFixture, CheckpointRoundTripPreservesProbabilities) {
  const std::string path = "/tmp/emx_serve_roundtrip.params";
  const std::vector<std::string> as = {"lenovo thinkpad x1", "red mug",
                                       "galaxy s21 ultra"};
  const std::vector<std::string> bs = {"thinkpad x1 carbon by lenovo",
                                       "blue plate", "samsung galaxy s21"};
  std::vector<double> before = Matcher()->MatchProbabilities(as, bs);
  ASSERT_TRUE(Matcher()->Save(path).ok());

  // A fresh matcher with a different head seed: every weight differs until
  // the checkpoint overwrites it, so name/shape drift cannot hide.
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, Zoo());
  ASSERT_TRUE(bundle.ok());
  core::EntityMatcher restored(std::move(bundle).value(), /*head_seed=*/12345);
  restored.set_eval_max_seq_len(kSeqLen);
  Status load = restored.Load(path);
  ASSERT_TRUE(load.ok()) << load.ToString();

  std::vector<double> after = restored.MatchProbabilities(as, bs);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "pair " << i;
  }

  // And identical when served through an engine wrapping the restored model.
  MatcherEngine engine(&restored, BaseOptions());
  for (size_t i = 0; i < as.size(); ++i) {
    MatchResult r = engine.Match(as[i], bs[i]);
    ASSERT_TRUE(r.status.ok());
    EXPECT_NEAR(r.probability, before[i], 1e-6) << "pair " << i;
  }
  std::filesystem::remove(path);
}

// ---- int8 precision --------------------------------------------------------

TEST_F(ServeFixture, Int8EngineMatchesDirectQuantizedPath) {
  // A private matcher: quantization attaches backends, which must not leak
  // into the shared fixture the fp32 bit-identity tests rely on.
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, Zoo());
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  core::EntityMatcher matcher(std::move(bundle).value());
  matcher.set_eval_max_seq_len(kSeqLen);

  quant::CalibrationData calib;
  for (int i = 0; i < 8; ++i) {
    calib.texts_a.push_back("dell latitude laptop " + std::to_string(i));
    calib.texts_b.push_back("dell latitude notebook " + std::to_string(i % 3));
  }
  calib.batch_size = 4;
  auto report = quant::QuantizeMatcher(&matcher, calib);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  std::vector<std::string> as, bs;
  for (int i = 0; i < 16; ++i) {
    as.push_back("item number " + std::to_string(i));
    bs.push_back("product number " + std::to_string(i % 5));
  }
  // Direct grad-free prediction runs int8 (QuantMode defaults on).
  std::vector<double> expected = matcher.MatchProbabilities(as, bs);

  EngineOptions opts = BaseOptions();
  opts.precision = Precision::kInt8;
  opts.num_workers = 2;  // concurrent int8 forwards on shared packed weights
  opts.max_batch_size = 4;
  opts.max_wait_us = 500;
  MatcherEngine engine(&matcher, opts);
  std::vector<std::future<MatchResult>> futures;
  for (size_t i = 0; i < as.size(); ++i) {
    futures.push_back(engine.Submit(as[i], bs[i]));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    MatchResult r = futures[i].get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_NEAR(r.probability, expected[i], 1e-6) << "pair " << i;
  }
  EXPECT_GT(engine.Metrics().completed, 0);

  // An fp32-precision engine over the same quantized matcher bypasses the
  // backends per worker thread (QuantModeGuard), not globally.
  double fp32_direct;
  {
    nn::QuantModeGuard fp32_only(false);
    fp32_direct = matcher.MatchProbability(as[0], bs[0]);
  }
  MatcherEngine fp32_engine(&matcher, BaseOptions());
  MatchResult r = fp32_engine.Match(as[0], bs[0]);
  ASSERT_TRUE(r.status.ok());
  EXPECT_NEAR(r.probability, fp32_direct, 1e-6);
}

TEST_F(ServeFixture, Int8EngineHonorsDeadlinesAndShutdown) {
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, Zoo());
  ASSERT_TRUE(bundle.ok());
  core::EntityMatcher matcher(std::move(bundle).value());
  matcher.set_eval_max_seq_len(kSeqLen);
  quant::CalibrationData calib;
  calib.texts_a = {"hp spectre x360", "logitech mx master"};
  calib.texts_b = {"hp spectre 13 convertible", "mx master 3 mouse"};
  ASSERT_TRUE(quant::QuantizeMatcher(&matcher, calib).ok());

  EngineOptions opts = BaseOptions();
  opts.precision = Precision::kInt8;
  opts.start_paused = true;
  MatcherEngine engine(&matcher, opts);
  auto expired = engine.Submit("slow a", "slow b", /*timeout_us=*/1000);
  auto alive = engine.Submit("fast a", "fast b");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  engine.Resume();
  EXPECT_EQ(expired.get().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(alive.get().status.ok());
  engine.Shutdown();
  EXPECT_EQ(engine.Submit("too", "late").get().status.code(),
            StatusCode::kUnavailable);
}

// ---- Percentiles -----------------------------------------------------------

TEST(PercentileTest, LinearInterpolationOnSmallSamples) {
  // Regression for the nearest-rank +0.5 rounding bug: a 2-sample buffer
  // at q=0.5 returned the max instead of the midpoint.
  EXPECT_EQ(Percentile({1.0, 2.0}, 0.5), 1.5);
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_EQ(Percentile({7.0}, 0.99), 7.0);
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_EQ(Percentile(v, 1.0), 40.0);
  EXPECT_EQ(Percentile(v, 0.5), 25.0);
  EXPECT_EQ(Percentile(v, 0.25), 17.5);
  EXPECT_EQ(Percentile(v, 0.75), 32.5);
  // Out-of-range quantiles clamp instead of indexing out of bounds.
  EXPECT_EQ(Percentile(v, -0.5), 10.0);
  EXPECT_EQ(Percentile(v, 2.0), 40.0);
}

// ---- Metrics ---------------------------------------------------------------

TEST_F(ServeFixture, MetricsJsonCarriesServingCounters) {
  EngineOptions opts = BaseOptions();
  opts.max_wait_us = 1000;
  MatcherEngine engine(Matcher(), opts);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.Match("pixel 6 pro", "google pixel 6").status.ok());
  }
  MetricsSnapshot m = engine.Metrics();
  EXPECT_EQ(m.submitted, 3);
  EXPECT_EQ(m.completed, 3);
  EXPECT_GT(m.throughput_pairs_per_sec, 0.0);
  EXPECT_GT(m.p50_latency_us, 0.0);
  EXPECT_GE(m.p99_latency_us, m.p50_latency_us);
  EXPECT_EQ(m.cache_hits, 2);

  const std::string json = m.ToJson();
  for (const char* key :
       {"\"submitted\"", "\"completed\"", "\"throughput_pairs_per_sec\"",
        "\"p99_latency_us\"", "\"batch_size_histogram\"",
        "\"cache_hit_rate\"", "\"queue_depth\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(MetricsSnapshotTest, ToJsonStrictParsesEveryField) {
  // Regression for the %.3f nan/inf bug: fill every derived double with a
  // non-finite value and require the serialization to still be valid JSON
  // under a strict parser, with those fields sanitized to 0.
  MetricsSnapshot s;
  s.submitted = 5;
  s.cache_hit_rate = std::nan("");
  s.mean_batch_size = std::numeric_limits<double>::infinity();
  s.throughput_pairs_per_sec = -std::numeric_limits<double>::infinity();
  s.uptime_seconds = std::nan("");
  s.p50_latency_us = std::nan("");
  s.p95_latency_us = std::nan("");
  s.p99_latency_us = std::nan("");
  s.max_latency_us = std::nan("");
  s.batch_size_histogram = {1, 0, 2};

  const std::string json = s.ToJson();
  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonParse(json, &v, &error)) << error << "\n" << json;
  // Every snapshot field must be present and numeric.
  for (const char* key :
       {"submitted", "completed", "timed_out", "rejected", "cache_hits",
        "cache_misses", "cache_hit_rate", "batches", "mean_batch_size",
        "batch_overflow", "queue_depth", "max_queue_depth", "uptime_seconds",
        "throughput_pairs_per_sec", "p50_latency_us", "p95_latency_us",
        "p99_latency_us", "max_latency_us"}) {
    const obs::JsonValue* f = v.Find(key);
    ASSERT_TRUE(f != nullptr) << "missing " << key;
    EXPECT_TRUE(f->is_number()) << key;
  }
  EXPECT_DOUBLE_EQ(v.Find("cache_hit_rate")->number, 0);
  EXPECT_DOUBLE_EQ(v.Find("throughput_pairs_per_sec")->number, 0);
  EXPECT_DOUBLE_EQ(v.Find("submitted")->number, 5);
  ASSERT_TRUE(v.Find("batch_size_histogram")->is_array());
  EXPECT_EQ(v.Find("batch_size_histogram")->array.size(), 3u);
}

TEST(ServingMetricsTest, BatchHistogramKeepsSlotZeroAndMarksOverflow) {
  // Regressions for the two histogram bugs: the JSON loop used to start at
  // slot 1 (dropping size-0 batches) and oversized batches were silently
  // clamped into the top slot.
  ServingMetrics sm(/*max_batch_size=*/4);
  sm.RecordBatch(0);
  sm.RecordBatch(2);
  sm.RecordBatch(4);
  sm.RecordBatch(7);  // exceeds max_batch_size -> overflow, not slot 4

  MetricsSnapshot s = sm.Snapshot(/*queue_depth=*/0);
  ASSERT_EQ(s.batch_size_histogram.size(), 5u);  // slots 0..4 inclusive
  EXPECT_EQ(s.batch_size_histogram[0], 1);
  EXPECT_EQ(s.batch_size_histogram[2], 1);
  EXPECT_EQ(s.batch_size_histogram[4], 1);  // NOT 2: the 7 didn't clamp here
  EXPECT_EQ(s.batch_overflow, 1);
  EXPECT_EQ(s.batches, 4);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, (0 + 2 + 4 + 7) / 4.0);

  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonParse(s.ToJson(), &v, &error)) << error;
  // The emitted array carries all 5 slots (slot 0 included) + the marker.
  EXPECT_EQ(v.Find("batch_size_histogram")->array.size(), 5u);
  EXPECT_DOUBLE_EQ(v.Find("batch_size_histogram")->array[0].number, 1);
  EXPECT_DOUBLE_EQ(v.Find("batch_overflow")->number, 1);
}

TEST(ServingMetricsTest, ConcurrentCompletionsAndSnapshotsAreClean) {
  // The latency ring is lock-free: completions must never block behind a
  // Snapshot() copying the window, and concurrent access must be TSan-clean
  // (this test runs in the CI thread-sanitizer job). Every sample observed
  // by any snapshot has to be a value some completion actually recorded.
  ServingMetrics sm(/*max_batch_size=*/8);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&sm, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        sm.RecordCompletion(100.0 + w);  // values in {100, 101, 102, 103}
      }
    });
  }
  std::thread snapshotter([&sm, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot s = sm.Snapshot(/*queue_depth=*/0);
      EXPECT_GE(s.p50_latency_us, 0.0);
      EXPECT_LE(s.max_latency_us, 103.0);
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  MetricsSnapshot s = sm.Snapshot(/*queue_depth=*/0);
  EXPECT_EQ(s.completed, kWriters * kPerWriter);
  // All 20000 completions outnumber the 8192-slot window, so the window is
  // full and every slot holds one of the recorded values.
  EXPECT_GE(s.p50_latency_us, 100.0);
  EXPECT_LE(s.p99_latency_us, 103.0);
}

TEST(ServingMetricsTest, RegistryMigrationPreservesCounterMeaning) {
  // ServingMetrics now stores its counters in an emx::obs registry; the
  // snapshot and the registry export must agree value-for-value.
  ServingMetrics sm(/*max_batch_size=*/8);
  sm.RecordSubmitted(3);
  sm.RecordSubmitted(1);
  sm.RecordRejected();
  sm.RecordTimeout();
  sm.RecordBatch(2);
  sm.RecordCompletion(120.0);
  sm.RecordCompletion(80.0);
  sm.RecordCacheLookup(true);
  sm.RecordCacheLookup(false);
  sm.RecordCacheLookup(false);

  MetricsSnapshot s = sm.Snapshot(/*queue_depth=*/1);
  EXPECT_EQ(s.submitted, 2);
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.timed_out, 1);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.cache_hits, 1);
  EXPECT_EQ(s.cache_misses, 2);
  EXPECT_NEAR(s.cache_hit_rate, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(s.max_queue_depth, 3);
  EXPECT_DOUBLE_EQ(s.p50_latency_us, 100.0);  // interpolated midpoint

  obs::JsonValue v;
  std::string error;
  ASSERT_TRUE(obs::JsonParse(sm.registry()->ToJson(), &v, &error)) << error;
  const obs::JsonValue* counters = v.Find("counters");
  ASSERT_TRUE(counters != nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("serve.submitted")->number, 2);
  EXPECT_DOUBLE_EQ(counters->Find("serve.rejected")->number, 1);
  EXPECT_DOUBLE_EQ(counters->Find("serve.timed_out")->number, 1);
  EXPECT_DOUBLE_EQ(counters->Find("serve.completed")->number, 2);
  EXPECT_DOUBLE_EQ(counters->Find("serve.cache_hits")->number, 1);
  EXPECT_DOUBLE_EQ(counters->Find("serve.cache_misses")->number, 2);
  const obs::JsonValue* hist =
      v.Find("histograms")->Find("serve.batch_size");
  ASSERT_TRUE(hist != nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 1);
  EXPECT_DOUBLE_EQ(hist->Find("counts")->array.at(2).number, 1);
}

// ---- Concurrency hammer (run under -DEMX_SANITIZE=thread in CI) ------------

TEST_F(ServeFixture, ConcurrentSubmittersHammer) {
  EngineOptions opts = BaseOptions();
  opts.max_batch_size = 8;
  opts.max_wait_us = 500;
  opts.queue_capacity = 4096;
  opts.cache_capacity = 64;
  opts.num_workers = 2;  // concurrent grad-free forwards on shared weights
  MatcherEngine engine(Matcher(), opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> ok{0}, failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::future<MatchResult>> futures;
      for (int i = 0; i < kPerThread; ++i) {
        // A small hot set so the LRU sees hits, evictions and races.
        const int slot = (t * 7 + i) % 16;
        futures.push_back(
            engine.Submit("product number " + std::to_string(slot),
                          "item number " + std::to_string(slot)));
      }
      for (auto& f : futures) {
        if (f.get().status.ok()) {
          ++ok;
        } else {
          ++failed;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(failed.load(), 0);
  MetricsSnapshot m = engine.Metrics();
  EXPECT_EQ(m.completed, kThreads * kPerThread);
  EXPECT_EQ(m.queue_depth, 0);
  EXPECT_GT(m.mean_batch_size, 1.0);  // batching actually happened
  EXPECT_GT(m.cache_hits, 0);
}

// ---- Split-encoder prefix cache --------------------------------------------

TEST_F(ServeFixture, SplitK0BitIdenticalToFullPathFp32) {
  // The tentpole golden test: split_layer = 0 caches per-entity *embeddings*
  // and must reproduce the unsplit cross-encoder's probabilities exactly —
  // not approximately — because masked attention contributes exactly zero
  // from blocked keys and the GEMMs are row-independent.
  EngineOptions plain = BaseOptions();
  plain.max_wait_us = 1000;
  MatcherEngine full(Matcher(), plain);

  EngineOptions split_opts = plain;
  split_opts.split_layer = 0;
  MatcherEngine split(Matcher(), split_opts);

  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"apple macbook pro 14 m3", "macbook pro 14 inch m3 chip"},
      {"apple macbook pro 14 m3", "dyson v11 cordless vacuum"},
      {"rayban aviator sunglasses gold", "ray-ban aviator classic gold 58mm"},
      {"a", "b"},  // degenerate one-token entities
  };
  for (const auto& [a, b] : pairs) {
    MatchResult rf = full.Match(a, b);
    MatchResult rs = split.Match(a, b);
    ASSERT_TRUE(rf.status.ok()) << rf.status.ToString();
    ASSERT_TRUE(rs.status.ok()) << rs.status.ToString();
    EXPECT_EQ(rf.probability, rs.probability) << a << " / " << b;
    EXPECT_EQ(rf.is_match, rs.is_match);
  }
  // Repeats hit the activation cache and still agree bit-for-bit.
  MatchResult again = split.Match(pairs[0].first, pairs[0].second);
  EXPECT_TRUE(again.prefix_hit_query);
  EXPECT_TRUE(again.prefix_hit_candidate);
  EXPECT_EQ(again.probability, full.Match(pairs[0].first, pairs[0].second)
                                   .probability);
}

TEST_F(ServeFixture, SplitDefaultLayerBitIdenticalWhenPrefixCached) {
  // At k > 0 the split path is a different function than the full
  // cross-encoder (segment-local attention below k), but it must be
  // *self*-consistent: cached and recomputed prefixes give identical
  // logits, and the same pair always scores the same.
  EngineOptions opts = BaseOptions();
  opts.max_wait_us = 1000;
  opts.split_layer = DefaultSplitLayer(
      Matcher()->classifier()->config().num_layers);
  EXPECT_EQ(opts.split_layer, 1);  // scaled BERT is 2 layers
  MatcherEngine engine(Matcher(), opts);

  MatchResult first = engine.Match("bose qc45 headphones", "bose quietcomfort 45");
  MatchResult second = engine.Match("bose qc45 headphones", "bose quietcomfort 45");
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(first.prefix_hit_query);
  EXPECT_TRUE(second.prefix_hit_query);
  EXPECT_TRUE(second.prefix_hit_candidate);
  EXPECT_EQ(first.probability, second.probability);
  EXPECT_GT(engine.prefix_cache().Stats().hits, 0);
}

TEST_F(ServeFixture, SplitK0BitIdenticalInt8) {
  // int8 activation scales are frozen after calibration, so the quantized
  // forward is also row-independent: k=0 split must be bit-identical under
  // int8 serving too.
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, Zoo());
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  core::EntityMatcher matcher(std::move(bundle).value());
  matcher.set_eval_max_seq_len(kSeqLen);
  quant::CalibrationData calib;
  for (int i = 0; i < 8; ++i) {
    calib.texts_a.push_back("garmin forerunner " + std::to_string(i));
    calib.texts_b.push_back("garmin watch model " + std::to_string(i % 3));
  }
  ASSERT_TRUE(quant::QuantizeMatcher(&matcher, calib).ok());

  EngineOptions plain = BaseOptions();
  plain.max_wait_us = 1000;
  plain.precision = Precision::kInt8;
  MatcherEngine full(&matcher, plain);
  EngineOptions split_opts = plain;
  split_opts.split_layer = 0;
  MatcherEngine split(&matcher, split_opts);

  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"garmin forerunner 255", "forerunner 255 gps watch"},
      {"garmin forerunner 255", "weber spirit gas grill"},
  };
  for (const auto& [a, b] : pairs) {
    MatchResult rf = full.Match(a, b);
    MatchResult rs = split.Match(a, b);
    ASSERT_TRUE(rf.status.ok());
    ASSERT_TRUE(rs.status.ok());
    EXPECT_EQ(rf.probability, rs.probability) << a << " / " << b;
  }
}

TEST_F(ServeFixture, SubmitAgainstReusesPinnedQueryPrefix) {
  EngineOptions opts = BaseOptions();
  opts.max_wait_us = 1000;
  opts.split_layer = 0;
  MatcherEngine engine(Matcher(), opts);

  PinnedQuery pinned = engine.PinQuery("sony wh-1000xm5 wireless headphones");
  ASSERT_TRUE(pinned.valid());
  EXPECT_EQ(pinned.text(), "sony wh-1000xm5 wireless headphones");

  std::vector<std::string> candidates = {
      "sony wh1000xm5 noise cancelling headphones",
      "sony wf-1000xm4 earbuds", "anker soundcore q30"};
  std::vector<std::future<MatchResult>> futures;
  for (const std::string& c : candidates) {
    futures.push_back(engine.SubmitAgainst(pinned, c));
  }
  int query_hits = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    MatchResult r = futures[i].get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    query_hits += r.prefix_hit_query ? 1 : 0;
    // Must equal the plain Submit answer for the same strings.
    MatchResult direct = engine.Match(pinned.text(), candidates[i]);
    EXPECT_EQ(r.probability, direct.probability) << candidates[i];
  }
  // All candidates truncate the query to the same length here, so only the
  // very first submission can miss the query prefix.
  EXPECT_GE(query_hits, static_cast<int>(candidates.size()) - 1);
}

TEST_F(ServeFixture, WarmCandidateMakesFirstRequestHit) {
  EngineOptions opts = BaseOptions();
  opts.max_wait_us = 1000;
  opts.split_layer = 1;
  MatcherEngine engine(Matcher(), opts);

  const std::string query = "lego technic 42115 lamborghini";
  const std::string candidate = "lego 42115 lamborghini sian technic set";
  PinnedQuery pinned = engine.PinQuery(query);
  // The query occupies CLS + tokens + SEP on the wire; replicate that length.
  const std::vector<int64_t> q_ids = Matcher()->tokenizer().Encode(query);
  const int64_t query_segment_len = static_cast<int64_t>(q_ids.size()) + 2;
  ASSERT_TRUE(engine.WarmCandidate(candidate, query_segment_len));

  MatchResult r = engine.SubmitAgainst(pinned, candidate).get();
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.prefix_hit_candidate) << "warmed prefix should be resident";
}

TEST_F(ServeFixture, SplitMetricsJsonCarriesPrefixCounters) {
  EngineOptions opts = BaseOptions();
  opts.max_wait_us = 1000;
  opts.split_layer = 0;
  MatcherEngine engine(Matcher(), opts);
  ASSERT_TRUE(engine.Match("fitbit charge 6", "fitbit charge6 tracker")
                  .status.ok());
  ASSERT_TRUE(engine.Match("fitbit charge 6", "fitbit charge6 tracker")
                  .status.ok());

  MetricsSnapshot m = engine.Metrics();
  EXPECT_EQ(m.prefix_misses, 2);  // one per side on the first request
  EXPECT_EQ(m.prefix_hits, 2);    // both sides on the second
  EXPECT_GT(m.prefix_bytes, 0);
  EXPECT_GT(m.token_cache_bytes, 0);
  const std::string json = m.ToJson();
  for (const char* key :
       {"\"prefix_hits\"", "\"prefix_misses\"", "\"prefix_hit_rate\"",
        "\"prefix_evictions\"", "\"prefix_bytes\"", "\"token_cache_bytes\"",
        "\"token_cache_evictions\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(ActivationCacheTest, EvictsLruUnderBytePressure) {
  // Budget for roughly two of the three entries: inserting the third must
  // evict the least recently used, byte accounting staying exact.
  const int64_t entry = 4 * 8 * static_cast<int64_t>(sizeof(float)) +
                        /*key*/ 2 + /*overhead*/ 160;
  ActivationCache cache(2 * entry + entry / 2);

  auto p1 = cache.Put("k1", Tensor::Full({1, 4, 8}, 1.0f));
  auto p2 = cache.Put("k2", Tensor::Full({1, 4, 8}, 2.0f));
  ASSERT_TRUE(p1 != nullptr);
  EXPECT_EQ(cache.Stats().entries, 2);
  EXPECT_EQ(cache.Stats().evictions, 0);

  EXPECT_TRUE(cache.Get("k1") != nullptr);  // promote k1; k2 is now LRU
  auto p3 = cache.Put("k3", Tensor::Full({1, 4, 8}, 3.0f));
  ActivationCacheStats s = cache.Stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 2);
  EXPECT_TRUE(cache.Get("k2") == nullptr) << "LRU entry must be gone";
  EXPECT_TRUE(cache.Get("k1") != nullptr);
  EXPECT_TRUE(cache.Get("k3") != nullptr);
  // The evicted entry's shared_ptr (held by a hypothetical in-flight
  // request) stays valid after eviction.
  EXPECT_EQ((*p2)[0], 2.0f);
  EXPECT_LE(s.resident_bytes, cache.max_bytes());
}

TEST(ActivationCacheTest, ZeroBudgetDisablesStorageNotCorrectness) {
  ActivationCache cache(0);
  auto p = cache.Put("k", Tensor::Full({1, 2, 2}, 5.0f));
  ASSERT_TRUE(p != nullptr);       // caller still gets its tensor back
  EXPECT_EQ((*p)[0], 5.0f);
  EXPECT_TRUE(cache.Get("k") == nullptr);  // nothing was stored
  EXPECT_EQ(cache.Stats().entries, 0);
}

TEST(ActivationCacheTest, FirstInsertWinsOnRacingPuts) {
  ActivationCache cache(1 << 20);
  auto first = cache.Put("k", Tensor::Full({1, 2, 2}, 1.0f));
  auto second = cache.Put("k", Tensor::Full({1, 2, 2}, 2.0f));
  // The loser of the race is handed the winner's tensor so every caller
  // computes on the same bits.
  EXPECT_EQ((*second)[0], 1.0f);
  EXPECT_EQ(cache.Stats().entries, 1);
}

TEST_F(ServeFixture, SplitConcurrentHammer) {
  // Concurrent pinned re-ranking over a hot candidate set: exercises the
  // activation cache's hit/miss/eviction paths under real thread pressure.
  // Runs in the CI thread-sanitizer job like ConcurrentSubmittersHammer.
  EngineOptions opts = BaseOptions();
  opts.max_batch_size = 8;
  opts.max_wait_us = 500;
  opts.queue_capacity = 4096;
  opts.num_workers = 2;
  opts.split_layer = 1;
  // Tight budget so evictions happen mid-flight.
  opts.activation_cache_bytes = 64 * 1024;
  MatcherEngine engine(Matcher(), opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 32;
  std::atomic<int> ok{0}, failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      PinnedQuery pinned =
          engine.PinQuery("query entity number " + std::to_string(t % 2));
      std::vector<std::future<MatchResult>> futures;
      for (int i = 0; i < kPerThread; ++i) {
        const int slot = (t * 5 + i) % 12;  // hot candidate set
        futures.push_back(engine.SubmitAgainst(
            pinned, "candidate entity " + std::to_string(slot)));
      }
      for (auto& f : futures) {
        if (f.get().status.ok()) {
          ++ok;
        } else {
          ++failed;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(failed.load(), 0);
  MetricsSnapshot m = engine.Metrics();
  EXPECT_EQ(m.completed, kThreads * kPerThread);
  EXPECT_GT(m.prefix_hits, 0);
  // Deterministic result under concurrency: the same pair re-scored
  // serially gives the same answer as during the hammer.
  PinnedQuery pinned = engine.PinQuery("query entity number 0");
  MatchResult a = engine.SubmitAgainst(pinned, "candidate entity 3").get();
  MatchResult b = engine.SubmitAgainst(pinned, "candidate entity 3").get();
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.probability, b.probability);
}

TEST_F(ServeFixture, CreateRejectsBadSplitOptions) {
  EngineOptions opts = BaseOptions();
  opts.split_layer = 2;  // scaled BERT has 2 layers; k must be < L
  auto too_deep = MatcherEngine::Create(Matcher(), opts);
  ASSERT_FALSE(too_deep.ok());
  EXPECT_EQ(too_deep.status().code(), StatusCode::kInvalidArgument);

  opts.split_layer = -2;
  auto negative = MatcherEngine::Create(Matcher(), opts);
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);

  opts.split_layer = 1;
  auto good = MatcherEngine::Create(Matcher(), opts);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
}

// ---- EngineOptions validation ----------------------------------------------

TEST(ValidateEngineOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateEngineOptions(EngineOptions{}).ok());
}

TEST(ValidateEngineOptionsTest, RejectsNonPositiveMaxBatchSize) {
  EngineOptions opts;
  opts.max_batch_size = 0;
  Status st = ValidateEngineOptions(opts);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("max_batch_size"), std::string::npos)
      << st.ToString();
  opts.max_batch_size = -4;
  EXPECT_FALSE(ValidateEngineOptions(opts).ok());
}

TEST(ValidateEngineOptionsTest, RejectsNonPositiveMaxWait) {
  EngineOptions opts;
  opts.max_wait_us = 0;
  Status st = ValidateEngineOptions(opts);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("max_wait_us"), std::string::npos);
}

TEST(ValidateEngineOptionsTest, RejectsNonPositiveQueueCapacity) {
  EngineOptions opts;
  opts.queue_capacity = 0;
  Status st = ValidateEngineOptions(opts);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("queue_capacity"), std::string::npos);
  opts.queue_capacity = -1;
  EXPECT_FALSE(ValidateEngineOptions(opts).ok());
}

TEST(ValidateEngineOptionsTest, RejectsNonPositiveMaxSeqLen) {
  EngineOptions opts;
  opts.max_seq_len = 0;
  Status st = ValidateEngineOptions(opts);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("max_seq_len"), std::string::npos);
}

TEST(ValidateEngineOptionsTest, RejectsNonPositiveBucketWidth) {
  EngineOptions opts;
  opts.bucket_width = 0;
  Status st = ValidateEngineOptions(opts);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("bucket_width"), std::string::npos);
}

TEST(ValidateEngineOptionsTest, RejectsNegativeCacheCapacity) {
  EngineOptions opts;
  opts.cache_capacity = -1;
  Status st = ValidateEngineOptions(opts);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("cache_capacity"), std::string::npos);
  opts.cache_capacity = 0;  // disabled cache is allowed
  EXPECT_TRUE(ValidateEngineOptions(opts).ok());
}

TEST(ValidateEngineOptionsTest, RejectsNegativeDefaultTimeout) {
  EngineOptions opts;
  opts.default_timeout_us = -5;
  Status st = ValidateEngineOptions(opts);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("default_timeout_us"), std::string::npos);
  opts.default_timeout_us = 0;  // "no deadline" is allowed
  EXPECT_TRUE(ValidateEngineOptions(opts).ok());
}

TEST(ValidateEngineOptionsTest, RejectsNonPositiveNumWorkers) {
  EngineOptions opts;
  opts.num_workers = 0;
  Status st = ValidateEngineOptions(opts);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("num_workers"), std::string::npos);
}

TEST_F(ServeFixture, CreateReturnsStatusInsteadOfAborting) {
  EngineOptions opts = BaseOptions();
  opts.queue_capacity = 0;
  auto bad = MatcherEngine::Create(Matcher(), opts);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto none = MatcherEngine::Create(nullptr, BaseOptions());
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);

  auto good = MatcherEngine::Create(Matcher(), BaseOptions());
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  MatchResult r =
      good.value()->Match("dell xps 13 laptop", "dell xps13 notebook");
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
}

TEST_F(ServeFixture, CreateRejectsInt8WithoutQuantizedBackends) {
  EngineOptions opts = BaseOptions();
  opts.precision = Precision::kInt8;
  auto engine = MatcherEngine::Create(Matcher(), opts);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

// ---- Model hot-swap --------------------------------------------------------

/// A fresh matcher from the same (cached) zoo bundle as the fixture's:
/// identical geometry and tokenizer, independent weights object — a valid
/// swap target.
std::shared_ptr<core::EntityMatcher> FreshMatcher() {
  pretrain::ZooOptions zoo;
  zoo.cache_dir = "/tmp/emx_zoo_serve_test";
  zoo.vocab_size = 500;
  zoo.corpus.num_documents = 150;
  zoo.skip_pretraining = true;
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
  EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
  auto m = std::make_shared<core::EntityMatcher>(std::move(bundle).value());
  m->set_eval_max_seq_len(32);
  return m;
}

TEST_F(ServeFixture, SwapModelBumpsVersionAndTagsResults) {
  MatcherEngine engine(Matcher(), BaseOptions());
  EXPECT_EQ(engine.model_version(), 1u);
  MatchResult before = engine.Match("acer aspire 5", "acer aspire5");
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.model_version, 1u);

  ASSERT_TRUE(engine.SwapModel(FreshMatcher()).ok());
  EXPECT_EQ(engine.model_version(), 2u);
  MatchResult after = engine.Match("acer aspire 5", "acer aspire5");
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.model_version, 2u);

  MetricsSnapshot m = engine.Metrics();
  EXPECT_EQ(m.model_swaps, 1);
  EXPECT_EQ(m.model_version, 2);
}

TEST_F(ServeFixture, SwapModelRejectsNullAndBadGeometry) {
  MatcherEngine engine(Matcher(), BaseOptions());
  Status null_s = engine.SwapModel(nullptr);
  EXPECT_EQ(null_s.code(), StatusCode::kInvalidArgument);

  // A half-width model: right architecture enum, wrong geometry.
  pretrain::ZooOptions zoo;
  zoo.cache_dir = "/tmp/emx_zoo_serve_test";
  zoo.vocab_size = 500;
  zoo.corpus.num_documents = 150;
  zoo.skip_pretraining = true;
  auto bundle = pretrain::GetPretrained(models::Architecture::kBert, zoo);
  ASSERT_TRUE(bundle.ok());
  const models::TransformerConfig& served =
      Matcher()->classifier()->backbone()->config();
  models::TransformerConfig cfg = served;
  cfg.hidden = served.hidden / 2;
  cfg.num_heads = std::max<int64_t>(1, served.num_heads / 2);
  cfg.intermediate = cfg.hidden * 4;
  Rng rng(7);
  pretrain::PretrainedBundle narrow;
  narrow.model = std::make_unique<models::EncoderModel>(cfg, &rng);
  narrow.tokenizer = std::move(bundle.value().tokenizer);
  auto bad = std::make_shared<core::EntityMatcher>(std::move(narrow));
  Status geom_s = engine.SwapModel(bad);
  EXPECT_EQ(geom_s.code(), StatusCode::kInvalidArgument);

  // Both rejections leave the original model serving at version 1.
  EXPECT_EQ(engine.model_version(), 1u);
  EXPECT_TRUE(engine.Match("acer aspire 5", "acer aspire5").status.ok());
}

TEST_F(ServeFixture, ConcurrentSwapHammerDropsNoRequests) {
  // The TSan-facing test: clients submit while a swapper rotates models.
  // Every request must complete OK and carry a version the engine actually
  // served; in-flight batches finish on their old model.
  EngineOptions opts = BaseOptions();
  opts.max_batch_size = 4;
  opts.max_wait_us = 200;
  MatcherEngine engine(Matcher(), opts);

  // Pre-build the rotation so the swapper's loop is tight.
  std::vector<std::shared_ptr<core::EntityMatcher>> generations = {
      FreshMatcher(), FreshMatcher()};

  constexpr int kClients = 3;
  constexpr int kMinPerClient = 20;
  constexpr int kTargetSwaps = 3;
  std::atomic<int> swaps{0};
  std::atomic<int> failures{0};
  std::atomic<uint64_t> max_seen{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kMinPerClient ||
                      (swaps.load(std::memory_order_acquire) < kTargetSwaps &&
                       i < kMinPerClient * 100);
           ++i) {
        MatchResult r = engine.Match("canon eos r6 camera", "canon eosr6");
        if (!r.status.ok() || r.model_version == 0) {
          failures.fetch_add(1);
        } else {
          uint64_t seen = max_seen.load(std::memory_order_relaxed);
          while (seen < r.model_version &&
                 !max_seen.compare_exchange_weak(seen, r.model_version)) {
          }
        }
      }
    });
  }
  std::atomic<bool> done{false};
  std::thread swapper([&] {
    while (!done.load(std::memory_order_acquire)) {
      Status s = engine.SwapModel(generations[swaps.load() % 2]);
      if (s.ok()) {
        swaps.fetch_add(1, std::memory_order_release);
      } else {
        failures.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& c : clients) c.join();
  done.store(true, std::memory_order_release);
  swapper.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(swaps.load(), kTargetSwaps);
  EXPECT_EQ(engine.model_version(), 1u + static_cast<uint64_t>(swaps.load()));
  EXPECT_GE(max_seen.load(), 2u) << "no request was ever served post-swap";
  EXPECT_LE(max_seen.load(), engine.model_version());
  EXPECT_EQ(engine.Metrics().model_swaps, swaps.load());
}

}  // namespace
}  // namespace serve
}  // namespace emx
