#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <thread>

#include "tensor/autograd_ops.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "tensor/variable.h"
#include "util/rng.h"

namespace emx {
namespace {

namespace ag = autograd;

constexpr float kGradTol = 2e-2f;  // fp32 central differences

// ---- Variable basics -------------------------------------------------------

TEST(VariableTest, ConstantDoesNotRequireGrad) {
  Variable v = Variable::Constant(Tensor::Ones({2}));
  EXPECT_TRUE(v.defined());
  EXPECT_FALSE(v.requires_grad());
}

TEST(VariableTest, ParameterRequiresGrad) {
  Variable v = Variable::Parameter(Tensor::Ones({2}));
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.grad().size(), 2);
  EXPECT_EQ(v.grad()[0], 0.0f);
}

TEST(VariableTest, OpOnConstantsStaysConstant) {
  Variable a = Variable::Constant(Tensor::Ones({2}));
  Variable b = Variable::Constant(Tensor::Ones({2}));
  Variable c = ag::Add(a, b);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_EQ(c.value()[0], 2.0f);
}

TEST(VariableTest, BackwardThroughSimpleChain) {
  // loss = mean(2 * w), dloss/dw = 2/n.
  Variable w = Variable::Parameter(Tensor({4}, {1, 2, 3, 4}));
  Variable loss = ag::MeanAll(ag::MulScalar(w, 2.0f));
  Backward(loss);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.grad()[i], 0.5f, 1e-6);
}

TEST(VariableTest, GradAccumulatesWhenReused) {
  // loss = sum(w + w) => dloss/dw = 2.
  Variable w = Variable::Parameter(Tensor({3}, {1, 1, 1}));
  Variable loss = ag::SumAll(ag::Add(w, w));
  Backward(loss);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(w.grad()[i], 2.0f, 1e-6);
}

TEST(VariableTest, ZeroGradClears) {
  Variable w = Variable::Parameter(Tensor({2}, {1, 1}));
  Backward(ag::SumAll(w));
  EXPECT_EQ(w.grad()[0], 1.0f);
  w.ZeroGrad();
  EXPECT_EQ(w.grad()[0], 0.0f);
}

TEST(VariableTest, StopGradientCutsGraph) {
  Variable w = Variable::Parameter(Tensor({2}, {1, 2}));
  Variable cut = ag::StopGradient(ag::MulScalar(w, 3.0f));
  EXPECT_FALSE(cut.requires_grad());
  EXPECT_EQ(cut.value()[1], 6.0f);
}

TEST(VariableTest, DiamondGraphGradient) {
  // y = w*w (via two branches sharing w): loss = sum(w ⊙ w), grad = 2w.
  Variable w = Variable::Parameter(Tensor({3}, {1, 2, 3}));
  Variable loss = ag::SumAll(ag::Mul(w, w));
  Backward(loss);
  EXPECT_NEAR(w.grad()[0], 2.0f, 1e-5);
  EXPECT_NEAR(w.grad()[2], 6.0f, 1e-5);
}

// ---- Gradient checks (parameterized over op builders) ----------------------

struct GradCase {
  std::string name;
  Shape shape;
  std::function<Variable(const Variable&)> fn;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const auto& pc = GetParam();
  Rng rng(20260704);
  Tensor x = Tensor::Randn(pc.shape, &rng, 0.7f);
  float diff = GradCheck(pc.fn, x);
  EXPECT_LT(diff, kGradTol) << pc.name;
}

std::vector<GradCase> MakeGradCases() {
  Rng rng(99);
  std::vector<GradCase> cases;

  cases.push_back({"mean", {3, 4}, [](const Variable& x) {
                     return ag::MeanAll(x);
                   }});
  cases.push_back({"sum_scaled", {6}, [](const Variable& x) {
                     return ag::SumAll(ag::MulScalar(x, 0.3f));
                   }});
  cases.push_back({"relu", {4, 4}, [](const Variable& x) {
                     return ag::MeanAll(ag::Relu(x));
                   }});
  cases.push_back({"gelu", {4, 4}, [](const Variable& x) {
                     return ag::MeanAll(ag::Gelu(x));
                   }});
  cases.push_back({"tanh", {4, 4}, [](const Variable& x) {
                     return ag::MeanAll(ag::Tanh(x));
                   }});
  cases.push_back({"softmax", {3, 5}, [](const Variable& x) {
                     // Weighted sum to give softmax a non-trivial gradient.
                     Variable s = ag::Softmax(x);
                     Variable w = Variable::Constant(
                         Tensor({3, 5}, {1, 2, 3, 4, 5, 5, 4, 3, 2, 1, 1, 3, 5,
                                         2, 4}));
                     return ag::SumAll(ag::Mul(s, w));
                   }});
  cases.push_back({"log_softmax", {2, 6}, [](const Variable& x) {
                     Variable s = ag::LogSoftmax(x);
                     Variable w = Variable::Constant(
                         Tensor({2, 6},
                                {1, 0, 2, 0, 1, 0, 0, 2, 0, 1, 0, 2}));
                     return ag::SumAll(ag::Mul(s, w));
                   }});
  {
    Tensor mask({2, 1, 1, 4}, {0, 0, 1, 0, 1, 0, 0, 0});
    cases.push_back({"masked_softmax", {2, 2, 3, 4}, [mask](const Variable& x) {
                       Variable s = ag::MaskedSoftmax(x, mask);
                       return ag::MeanAll(ag::Mul(s, s));
                     }});
  }
  {
    Tensor b = Tensor::Randn({5, 3}, &rng);
    cases.push_back({"matmul_lhs", {4, 5}, [b](const Variable& x) {
                       Variable bb = Variable::Constant(b);
                       return ag::MeanAll(ag::MatMul(x, bb));
                     }});
    Tensor a = Tensor::Randn({4, 5}, &rng);
    cases.push_back({"matmul_rhs", {5, 3}, [a](const Variable& x) {
                       Variable aa = Variable::Constant(a);
                       Variable y = ag::MatMul(aa, x);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
    Tensor bt = Tensor::Randn({3, 5}, &rng);
    cases.push_back({"matmul_trans_b", {4, 5}, [bt](const Variable& x) {
                       Variable bb = Variable::Constant(bt);
                       return ag::MeanAll(ag::MatMul(x, bb, false, true));
                     }});
    Tensor rhs = Tensor::Randn({5, 3}, &rng);
    cases.push_back({"matmul_trans_a", {5, 4}, [rhs](const Variable& x) {
                       // x^T @ const, gradient w.r.t. x.
                       Variable c = Variable::Constant(rhs);
                       return ag::MeanAll(ag::MatMul(x, c, true, false));
                     }});
  }
  {
    Tensor b = Tensor::Randn({2, 4, 3}, &rng);
    cases.push_back({"batched_matmul", {2, 3, 4}, [b](const Variable& x) {
                       Variable bb = Variable::Constant(b);
                       Variable y = ag::MatMul(x, bb);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
  }
  cases.push_back({"reshape_permute", {2, 3, 4}, [](const Variable& x) {
                     Variable r = ag::Reshape(x, {6, 4});
                     Variable p = ag::Permute(ag::Reshape(r, {2, 3, 4}),
                                              {1, 0, 2});
                     return ag::MeanAll(ag::Mul(p, p));
                   }});
  {
    Tensor bias = Tensor::Randn({4}, &rng);
    cases.push_back({"add_bias_x", {3, 4}, [bias](const Variable& x) {
                       Variable b = Variable::Constant(bias);
                       Variable y = ag::AddBias(x, b);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
    Tensor xin = Tensor::Randn({3, 4}, &rng);
    cases.push_back({"add_bias_bias", {4}, [xin](const Variable& b) {
                       Variable x = Variable::Constant(xin);
                       Variable y = ag::AddBias(x, b);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
  }
  {
    Tensor gamma = Tensor::RandUniform({6}, &rng, 0.5f, 1.5f);
    Tensor beta = Tensor::Randn({6}, &rng, 0.1f);
    Tensor weight = Tensor::Randn({4, 6}, &rng);
    cases.push_back({"layernorm_x", {4, 6},
                     [gamma, beta, weight](const Variable& x) {
                       Variable g = Variable::Constant(gamma);
                       Variable b = Variable::Constant(beta);
                       Variable y = ag::LayerNorm(x, g, b);
                       Variable w = Variable::Constant(weight);
                       return ag::SumAll(ag::Mul(y, w));
                     }});
    Tensor xin = Tensor::Randn({4, 6}, &rng);
    cases.push_back({"layernorm_gamma", {6}, [xin, beta](const Variable& g) {
                       Variable x = Variable::Constant(xin);
                       Variable b = Variable::Constant(beta);
                       Variable y = ag::LayerNorm(x, g, b);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
    cases.push_back({"layernorm_beta", {6}, [xin, gamma](const Variable& b) {
                       Variable x = Variable::Constant(xin);
                       Variable g = Variable::Constant(gamma);
                       Variable y = ag::LayerNorm(x, g, b);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
  }
  cases.push_back({"select_time", {2, 3, 4}, [](const Variable& x) {
                     Variable s = ag::SelectTimeStep(x, 1);
                     return ag::MeanAll(ag::Mul(s, s));
                   }});
  cases.push_back({"embedding", {5, 3}, [](const Variable& table) {
                     Variable e =
                         ag::EmbeddingLookup(table, {0, 2, 2, 4});
                     return ag::MeanAll(ag::Mul(e, e));
                   }});
  {
    std::vector<int64_t> targets = {0, 2, 1};
    cases.push_back({"cross_entropy", {3, 4}, [targets](const Variable& x) {
                       return ag::CrossEntropy(x, targets);
                     }});
    std::vector<int64_t> with_ignored = {0, -100, 3};
    cases.push_back({"cross_entropy_ignore", {3, 4},
                     [with_ignored](const Variable& x) {
                       return ag::CrossEntropy(x, with_ignored);
                     }});
  }
  {
    Tensor soft({2, 3}, {0.7f, 0.2f, 0.1f, 0.1f, 0.1f, 0.8f});
    cases.push_back({"soft_cross_entropy", {2, 3}, [soft](const Variable& x) {
                       return ag::SoftCrossEntropy(x, soft);
                     }});
  }
  {
    Rng r2(31);
    Tensor target = Tensor::Randn({3, 5}, &r2);
    cases.push_back({"cosine_loss", {3, 5}, [target](const Variable& x) {
                       return ag::CosineEmbeddingLoss(x, target);
                     }});
  }
  cases.push_back({"concat", {2, 3}, [](const Variable& x) {
                     Variable y = ag::MulScalar(x, 2.0f);
                     Variable c = ag::Concat({x, y}, 1);
                     return ag::MeanAll(ag::Mul(c, c));
                   }});
  cases.push_back({"sub_mul_chain", {3, 3}, [](const Variable& x) {
                     Variable y = ag::Sub(ag::Mul(x, x), ag::AddScalar(x, 1.0f));
                     return ag::MeanAll(y);
                   }});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest, ::testing::ValuesIn(MakeGradCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

// ---- Losses: value sanity ----------------------------------------------------

TEST(LossTest, CrossEntropyPerfectPrediction) {
  // Huge logit on the right class -> loss ~ 0.
  Tensor logits({2, 3}, {30, 0, 0, 0, 0, 30});
  Variable v = Variable::Parameter(logits);
  Variable loss = ag::CrossEntropy(v, {0, 2});
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-4);
}

TEST(LossTest, CrossEntropyUniformIsLogC) {
  Tensor logits = Tensor::Zeros({4, 8});
  Variable v = Variable::Parameter(logits);
  Variable loss = ag::CrossEntropy(v, {1, 2, 3, 4});
  EXPECT_NEAR(loss.value()[0], std::log(8.0f), 1e-5);
}

TEST(LossTest, CrossEntropyIgnoreIndexDropsRows) {
  Tensor logits({2, 2}, {10, 0, 0, 10});
  Variable v = Variable::Parameter(logits);
  // Second row ignored: loss is just first row (correct) ~ 0.
  Variable loss = ag::CrossEntropy(v, {0, -100});
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-3);
  Backward(loss);
  // Ignored row receives zero gradient.
  EXPECT_EQ(v.grad()[2], 0.0f);
  EXPECT_EQ(v.grad()[3], 0.0f);
}

TEST(LossTest, SoftCrossEntropyMatchesHardWhenOneHot) {
  Rng rng(41);
  Tensor logits = Tensor::Randn({3, 4}, &rng);
  Tensor onehot = Tensor::Zeros({3, 4});
  onehot.At({0, 1}) = 1.0f;
  onehot.At({1, 3}) = 1.0f;
  onehot.At({2, 0}) = 1.0f;
  Variable a = Variable::Parameter(logits.Clone());
  Variable b = Variable::Parameter(logits.Clone());
  float hard = ag::CrossEntropy(a, {1, 3, 0}).value()[0];
  float soft = ag::SoftCrossEntropy(b, onehot).value()[0];
  EXPECT_NEAR(hard, soft, 1e-5);
}

TEST(LossTest, CosineLossZeroForParallelVectors) {
  Tensor t({2, 3}, {1, 2, 3, -1, 0, 2});
  Tensor x = t.Clone();
  x.ScaleInPlace(2.5f);  // parallel => cosine = 1 => loss = 0
  Variable v = Variable::Parameter(x);
  Variable loss = ag::CosineEmbeddingLoss(v, t);
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-5);
}

TEST(LossTest, CosineLossTwoForOppositeVectors) {
  Tensor t({1, 2}, {1, 0});
  Tensor x({1, 2}, {-1, 0});
  Variable v = Variable::Parameter(x);
  EXPECT_NEAR(ag::CosineEmbeddingLoss(v, t).value()[0], 2.0f, 1e-5);
}

// ---- Dropout ------------------------------------------------------------------

TEST(DropoutTest, IdentityAtEval) {
  Rng rng(55);
  Variable x = Variable::Parameter(Tensor::Randn({10, 10}, &rng));
  Variable y = ag::Dropout(x, 0.5f, /*train=*/false, &rng);
  EXPECT_TRUE(ops::AllClose(y.value(), x.value()));
}

TEST(DropoutTest, ScalesSurvivorsAtTrain) {
  Rng rng(56);
  Variable x = Variable::Parameter(Tensor::Ones({100, 100}));
  Variable y = ag::Dropout(x, 0.25f, /*train=*/true, &rng);
  int64_t zeros = 0;
  double sum = 0;
  for (int64_t i = 0; i < y.size(); ++i) {
    if (y.value()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.value()[i], 1.0f / 0.75f, 1e-5);
    }
    sum += y.value()[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.25, 0.02);
  EXPECT_NEAR(sum / y.size(), 1.0, 0.03);  // expectation preserved
}

TEST(DropoutTest, GradientMatchesMask) {
  Rng rng(57);
  Variable x = Variable::Parameter(Tensor::Ones({50}));
  Variable y = ag::Dropout(x, 0.5f, /*train=*/true, &rng);
  Variable loss = ag::SumAll(y);
  Backward(loss);
  for (int64_t i = 0; i < 50; ++i) {
    if (y.value()[i] == 0.0f) {
      EXPECT_EQ(x.grad()[i], 0.0f);
    } else {
      EXPECT_NEAR(x.grad()[i], 2.0f, 1e-5);
    }
  }
}

// ---- Two-layer MLP end-to-end gradient check ------------------------------------

TEST(EndToEndTest, MlpGradCheckAllParams) {
  Rng rng(77);
  Tensor x_in = Tensor::Randn({5, 4}, &rng);
  Tensor w1_in = Tensor::Randn({4, 6}, &rng, 0.5f);
  Tensor b1_in = Tensor::Zeros({6});
  Tensor w2_in = Tensor::Randn({6, 3}, &rng, 0.5f);
  std::vector<int64_t> targets = {0, 1, 2, 1, 0};

  auto build = [&](const Variable& w1, const Variable& b1, const Variable& w2) {
    Variable x = Variable::Constant(x_in);
    Variable h = ag::Gelu(ag::AddBias(ag::MatMul(x, w1), b1));
    Variable logits = ag::MatMul(h, w2);
    return ag::CrossEntropy(logits, targets);
  };

  // Check gradient w.r.t. w1 while treating others as constants.
  float d1 = GradCheck(
      [&](const Variable& w1) {
        return build(w1, Variable::Constant(b1_in), Variable::Constant(w2_in));
      },
      w1_in);
  EXPECT_LT(d1, kGradTol);

  float d2 = GradCheck(
      [&](const Variable& b1) {
        return build(Variable::Constant(w1_in), b1, Variable::Constant(w2_in));
      },
      b1_in);
  EXPECT_LT(d2, kGradTol);

  float d3 = GradCheck(
      [&](const Variable& w2) {
        return build(Variable::Constant(w1_in), Variable::Constant(b1_in), w2);
      },
      w2_in);
  EXPECT_LT(d3, kGradTol);
}

TEST(EndToEndTest, TrainingReducesLoss) {
  // A few SGD steps on a toy problem must reduce the loss.
  Rng rng(88);
  Tensor x_in = Tensor::Randn({8, 4}, &rng);
  std::vector<int64_t> targets = {0, 1, 0, 1, 0, 1, 0, 1};
  Variable w = Variable::Parameter(Tensor::Randn({4, 2}, &rng, 0.1f));
  float first = 0, last = 0;
  for (int step = 0; step < 30; ++step) {
    w.ZeroGrad();
    Variable loss = ag::CrossEntropy(ag::MatMul(Variable::Constant(x_in), w),
                                     targets);
    if (step == 0) first = loss.value()[0];
    last = loss.value()[0];
    Backward(loss);
    Tensor& g = w.mutable_grad();
    Tensor& v = w.mutable_value();
    for (int64_t i = 0; i < v.size(); ++i) v[i] -= 0.5f * g[i];
  }
  EXPECT_LT(last, first * 0.8f);
}

// ---- Inference mode (GradMode / NoGradGuard) -------------------------------

TEST(GradModeTest, EnabledByDefault) { EXPECT_TRUE(GradMode::IsEnabled()); }

TEST(GradModeTest, OpsUnderGuardProduceConstants) {
  Variable w = Variable::Parameter(Tensor::Ones({2, 2}));
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradMode::IsEnabled());
    Variable y = ag::MulScalar(w, 3.0f);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_EQ(y.value()[0], 3.0f);
    // The leaf itself keeps its requires_grad flag.
    EXPECT_TRUE(w.requires_grad());
  }
  EXPECT_TRUE(GradMode::IsEnabled());
}

TEST(GradModeTest, GuardNestsAndRestores) {
  NoGradGuard outer;
  EXPECT_FALSE(GradMode::IsEnabled());
  {
    NoGradGuard inner;
    EXPECT_FALSE(GradMode::IsEnabled());
  }
  // The inner guard restores the *outer* guard's state, not the default.
  EXPECT_FALSE(GradMode::IsEnabled());
}

TEST(GradModeTest, ThreadLocalIsolation) {
  NoGradGuard guard;
  bool other_thread_enabled = false;
  std::thread t([&] { other_thread_enabled = GradMode::IsEnabled(); });
  t.join();
  // A fresh thread records tapes even while this thread is in a guard.
  EXPECT_TRUE(other_thread_enabled);
  EXPECT_FALSE(GradMode::IsEnabled());
}

TEST(GradModeTest, TrainingStillWorksAfterGuardScope) {
  Variable w = Variable::Parameter(Tensor({4}, {1, 2, 3, 4}));
  {
    NoGradGuard guard;
    Variable y = ag::MeanAll(ag::MulScalar(w, 2.0f));
    EXPECT_FALSE(y.requires_grad());
  }
  Variable loss = ag::MeanAll(ag::MulScalar(w, 2.0f));
  Backward(loss);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.grad()[i], 0.5f, 1e-6);
}

TEST(GradModeTest, ForwardBitIdenticalUnderNoGrad) {
  // The grad-free fast path must not change a single output bit: same
  // kernels, same accumulation order, only the tape is skipped.
  Rng rng(7);
  Tensor x_in = Tensor::Randn({6, 8}, &rng);
  Tensor w1_in = Tensor::Randn({8, 8}, &rng);
  Tensor w2_in = Tensor::Randn({8, 4}, &rng);
  Tensor gamma_in = Tensor::Ones({8});
  Tensor beta_in = Tensor(Shape{8});

  auto forward = [&]() {
    Variable x = Variable::Constant(x_in);
    Variable w1 = Variable::Parameter(w1_in);
    Variable w2 = Variable::Parameter(w2_in);
    Variable gamma = Variable::Parameter(gamma_in);
    Variable beta = Variable::Parameter(beta_in);
    Variable h = ag::Gelu(ag::MatMul(x, w1));
    h = ag::LayerNorm(h, gamma, beta);
    h = ag::Reshape(h, {6, 8});
    return ag::Softmax(ag::MatMul(h, w2));
  };

  Variable with_tape = forward();
  EXPECT_TRUE(with_tape.requires_grad());
  Variable without_tape;
  {
    NoGradGuard guard;
    without_tape = forward();
  }
  EXPECT_FALSE(without_tape.requires_grad());
  ASSERT_EQ(with_tape.value().shape(), without_tape.value().shape());
  for (int64_t i = 0; i < with_tape.value().size(); ++i) {
    EXPECT_EQ(with_tape.value()[i], without_tape.value()[i]) << "index " << i;
  }
}

}  // namespace
}  // namespace emx
