#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <thread>
#include <tuple>

#include "tensor/autograd_ops.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "tensor/variable.h"
#include "util/rng.h"

namespace emx {
namespace {

namespace ag = autograd;

constexpr float kGradTol = 2e-2f;  // fp32 central differences

// ---- Variable basics -------------------------------------------------------

TEST(VariableTest, ConstantDoesNotRequireGrad) {
  Variable v = Variable::Constant(Tensor::Ones({2}));
  EXPECT_TRUE(v.defined());
  EXPECT_FALSE(v.requires_grad());
}

TEST(VariableTest, ParameterRequiresGrad) {
  Variable v = Variable::Parameter(Tensor::Ones({2}));
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.grad().size(), 2);
  EXPECT_EQ(v.grad()[0], 0.0f);
}

TEST(VariableTest, OpOnConstantsStaysConstant) {
  Variable a = Variable::Constant(Tensor::Ones({2}));
  Variable b = Variable::Constant(Tensor::Ones({2}));
  Variable c = ag::Add(a, b);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_EQ(c.value()[0], 2.0f);
}

TEST(VariableTest, BackwardThroughSimpleChain) {
  // loss = mean(2 * w), dloss/dw = 2/n.
  Variable w = Variable::Parameter(Tensor({4}, {1, 2, 3, 4}));
  Variable loss = ag::MeanAll(ag::MulScalar(w, 2.0f));
  Backward(loss);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.grad()[i], 0.5f, 1e-6);
}

TEST(VariableTest, GradAccumulatesWhenReused) {
  // loss = sum(w + w) => dloss/dw = 2.
  Variable w = Variable::Parameter(Tensor({3}, {1, 1, 1}));
  Variable loss = ag::SumAll(ag::Add(w, w));
  Backward(loss);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(w.grad()[i], 2.0f, 1e-6);
}

TEST(VariableTest, ZeroGradClears) {
  Variable w = Variable::Parameter(Tensor({2}, {1, 1}));
  Backward(ag::SumAll(w));
  EXPECT_EQ(w.grad()[0], 1.0f);
  w.ZeroGrad();
  EXPECT_EQ(w.grad()[0], 0.0f);
}

TEST(VariableTest, StopGradientCutsGraph) {
  Variable w = Variable::Parameter(Tensor({2}, {1, 2}));
  Variable cut = ag::StopGradient(ag::MulScalar(w, 3.0f));
  EXPECT_FALSE(cut.requires_grad());
  EXPECT_EQ(cut.value()[1], 6.0f);
}

TEST(VariableTest, DiamondGraphGradient) {
  // y = w*w (via two branches sharing w): loss = sum(w ⊙ w), grad = 2w.
  Variable w = Variable::Parameter(Tensor({3}, {1, 2, 3}));
  Variable loss = ag::SumAll(ag::Mul(w, w));
  Backward(loss);
  EXPECT_NEAR(w.grad()[0], 2.0f, 1e-5);
  EXPECT_NEAR(w.grad()[2], 6.0f, 1e-5);
}

// ---- Gradient checks (parameterized over op builders) ----------------------

struct GradCase {
  std::string name;
  Shape shape;
  std::function<Variable(const Variable&)> fn;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const auto& pc = GetParam();
  Rng rng(20260704);
  Tensor x = Tensor::Randn(pc.shape, &rng, 0.7f);
  float diff = GradCheck(pc.fn, x);
  EXPECT_LT(diff, kGradTol) << pc.name;
}

std::vector<GradCase> MakeGradCases() {
  Rng rng(99);
  std::vector<GradCase> cases;

  cases.push_back({"mean", {3, 4}, [](const Variable& x) {
                     return ag::MeanAll(x);
                   }});
  cases.push_back({"sum_scaled", {6}, [](const Variable& x) {
                     return ag::SumAll(ag::MulScalar(x, 0.3f));
                   }});
  cases.push_back({"relu", {4, 4}, [](const Variable& x) {
                     return ag::MeanAll(ag::Relu(x));
                   }});
  cases.push_back({"gelu", {4, 4}, [](const Variable& x) {
                     return ag::MeanAll(ag::Gelu(x));
                   }});
  cases.push_back({"tanh", {4, 4}, [](const Variable& x) {
                     return ag::MeanAll(ag::Tanh(x));
                   }});
  cases.push_back({"softmax", {3, 5}, [](const Variable& x) {
                     // Weighted sum to give softmax a non-trivial gradient.
                     Variable s = ag::Softmax(x);
                     Variable w = Variable::Constant(
                         Tensor({3, 5}, {1, 2, 3, 4, 5, 5, 4, 3, 2, 1, 1, 3, 5,
                                         2, 4}));
                     return ag::SumAll(ag::Mul(s, w));
                   }});
  cases.push_back({"log_softmax", {2, 6}, [](const Variable& x) {
                     Variable s = ag::LogSoftmax(x);
                     Variable w = Variable::Constant(
                         Tensor({2, 6},
                                {1, 0, 2, 0, 1, 0, 0, 2, 0, 1, 0, 2}));
                     return ag::SumAll(ag::Mul(s, w));
                   }});
  {
    Tensor mask({2, 1, 1, 4}, {0, 0, 1, 0, 1, 0, 0, 0});
    cases.push_back({"masked_softmax", {2, 2, 3, 4}, [mask](const Variable& x) {
                       Variable s = ag::MaskedSoftmax(x, mask);
                       return ag::MeanAll(ag::Mul(s, s));
                     }});
  }
  {
    Tensor b = Tensor::Randn({5, 3}, &rng);
    cases.push_back({"matmul_lhs", {4, 5}, [b](const Variable& x) {
                       Variable bb = Variable::Constant(b);
                       return ag::MeanAll(ag::MatMul(x, bb));
                     }});
    Tensor a = Tensor::Randn({4, 5}, &rng);
    cases.push_back({"matmul_rhs", {5, 3}, [a](const Variable& x) {
                       Variable aa = Variable::Constant(a);
                       Variable y = ag::MatMul(aa, x);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
    Tensor bt = Tensor::Randn({3, 5}, &rng);
    cases.push_back({"matmul_trans_b", {4, 5}, [bt](const Variable& x) {
                       Variable bb = Variable::Constant(bt);
                       return ag::MeanAll(ag::MatMul(x, bb, false, true));
                     }});
    Tensor rhs = Tensor::Randn({5, 3}, &rng);
    cases.push_back({"matmul_trans_a", {5, 4}, [rhs](const Variable& x) {
                       // x^T @ const, gradient w.r.t. x.
                       Variable c = Variable::Constant(rhs);
                       return ag::MeanAll(ag::MatMul(x, c, true, false));
                     }});
  }
  {
    Tensor b = Tensor::Randn({2, 4, 3}, &rng);
    cases.push_back({"batched_matmul", {2, 3, 4}, [b](const Variable& x) {
                       Variable bb = Variable::Constant(b);
                       Variable y = ag::MatMul(x, bb);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
  }
  cases.push_back({"reshape_permute", {2, 3, 4}, [](const Variable& x) {
                     Variable r = ag::Reshape(x, {6, 4});
                     Variable p = ag::Permute(ag::Reshape(r, {2, 3, 4}),
                                              {1, 0, 2});
                     return ag::MeanAll(ag::Mul(p, p));
                   }});
  {
    Tensor bias = Tensor::Randn({4}, &rng);
    cases.push_back({"add_bias_x", {3, 4}, [bias](const Variable& x) {
                       Variable b = Variable::Constant(bias);
                       Variable y = ag::AddBias(x, b);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
    Tensor xin = Tensor::Randn({3, 4}, &rng);
    cases.push_back({"add_bias_bias", {4}, [xin](const Variable& b) {
                       Variable x = Variable::Constant(xin);
                       Variable y = ag::AddBias(x, b);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
  }
  {
    Tensor gamma = Tensor::RandUniform({6}, &rng, 0.5f, 1.5f);
    Tensor beta = Tensor::Randn({6}, &rng, 0.1f);
    Tensor weight = Tensor::Randn({4, 6}, &rng);
    cases.push_back({"layernorm_x", {4, 6},
                     [gamma, beta, weight](const Variable& x) {
                       Variable g = Variable::Constant(gamma);
                       Variable b = Variable::Constant(beta);
                       Variable y = ag::LayerNorm(x, g, b);
                       Variable w = Variable::Constant(weight);
                       return ag::SumAll(ag::Mul(y, w));
                     }});
    Tensor xin = Tensor::Randn({4, 6}, &rng);
    cases.push_back({"layernorm_gamma", {6}, [xin, beta](const Variable& g) {
                       Variable x = Variable::Constant(xin);
                       Variable b = Variable::Constant(beta);
                       Variable y = ag::LayerNorm(x, g, b);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
    cases.push_back({"layernorm_beta", {6}, [xin, gamma](const Variable& b) {
                       Variable x = Variable::Constant(xin);
                       Variable g = Variable::Constant(gamma);
                       Variable y = ag::LayerNorm(x, g, b);
                       return ag::MeanAll(ag::Mul(y, y));
                     }});
  }
  cases.push_back({"select_time", {2, 3, 4}, [](const Variable& x) {
                     Variable s = ag::SelectTimeStep(x, 1);
                     return ag::MeanAll(ag::Mul(s, s));
                   }});
  cases.push_back({"embedding", {5, 3}, [](const Variable& table) {
                     Variable e =
                         ag::EmbeddingLookup(table, {0, 2, 2, 4});
                     return ag::MeanAll(ag::Mul(e, e));
                   }});
  {
    std::vector<int64_t> targets = {0, 2, 1};
    cases.push_back({"cross_entropy", {3, 4}, [targets](const Variable& x) {
                       return ag::CrossEntropy(x, targets);
                     }});
    std::vector<int64_t> with_ignored = {0, -100, 3};
    cases.push_back({"cross_entropy_ignore", {3, 4},
                     [with_ignored](const Variable& x) {
                       return ag::CrossEntropy(x, with_ignored);
                     }});
  }
  {
    Tensor soft({2, 3}, {0.7f, 0.2f, 0.1f, 0.1f, 0.1f, 0.8f});
    cases.push_back({"soft_cross_entropy", {2, 3}, [soft](const Variable& x) {
                       return ag::SoftCrossEntropy(x, soft);
                     }});
  }
  {
    Rng r2(31);
    Tensor target = Tensor::Randn({3, 5}, &r2);
    cases.push_back({"cosine_loss", {3, 5}, [target](const Variable& x) {
                       return ag::CosineEmbeddingLoss(x, target);
                     }});
  }
  cases.push_back({"concat", {2, 3}, [](const Variable& x) {
                     Variable y = ag::MulScalar(x, 2.0f);
                     Variable c = ag::Concat({x, y}, 1);
                     return ag::MeanAll(ag::Mul(c, c));
                   }});
  cases.push_back({"sub_mul_chain", {3, 3}, [](const Variable& x) {
                     Variable y = ag::Sub(ag::Mul(x, x), ag::AddScalar(x, 1.0f));
                     return ag::MeanAll(y);
                   }});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, GradCheckTest, ::testing::ValuesIn(MakeGradCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

// ---- Losses: value sanity ----------------------------------------------------

TEST(LossTest, CrossEntropyPerfectPrediction) {
  // Huge logit on the right class -> loss ~ 0.
  Tensor logits({2, 3}, {30, 0, 0, 0, 0, 30});
  Variable v = Variable::Parameter(logits);
  Variable loss = ag::CrossEntropy(v, {0, 2});
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-4);
}

TEST(LossTest, CrossEntropyUniformIsLogC) {
  Tensor logits = Tensor::Zeros({4, 8});
  Variable v = Variable::Parameter(logits);
  Variable loss = ag::CrossEntropy(v, {1, 2, 3, 4});
  EXPECT_NEAR(loss.value()[0], std::log(8.0f), 1e-5);
}

TEST(LossTest, CrossEntropyIgnoreIndexDropsRows) {
  Tensor logits({2, 2}, {10, 0, 0, 10});
  Variable v = Variable::Parameter(logits);
  // Second row ignored: loss is just first row (correct) ~ 0.
  Variable loss = ag::CrossEntropy(v, {0, -100});
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-3);
  Backward(loss);
  // Ignored row receives zero gradient.
  EXPECT_EQ(v.grad()[2], 0.0f);
  EXPECT_EQ(v.grad()[3], 0.0f);
}

TEST(LossTest, SoftCrossEntropyMatchesHardWhenOneHot) {
  Rng rng(41);
  Tensor logits = Tensor::Randn({3, 4}, &rng);
  Tensor onehot = Tensor::Zeros({3, 4});
  onehot.At({0, 1}) = 1.0f;
  onehot.At({1, 3}) = 1.0f;
  onehot.At({2, 0}) = 1.0f;
  Variable a = Variable::Parameter(logits.Clone());
  Variable b = Variable::Parameter(logits.Clone());
  float hard = ag::CrossEntropy(a, {1, 3, 0}).value()[0];
  float soft = ag::SoftCrossEntropy(b, onehot).value()[0];
  EXPECT_NEAR(hard, soft, 1e-5);
}

TEST(LossTest, CosineLossZeroForParallelVectors) {
  Tensor t({2, 3}, {1, 2, 3, -1, 0, 2});
  Tensor x = t.Clone();
  x.ScaleInPlace(2.5f);  // parallel => cosine = 1 => loss = 0
  Variable v = Variable::Parameter(x);
  Variable loss = ag::CosineEmbeddingLoss(v, t);
  EXPECT_NEAR(loss.value()[0], 0.0f, 1e-5);
}

TEST(LossTest, CosineLossTwoForOppositeVectors) {
  Tensor t({1, 2}, {1, 0});
  Tensor x({1, 2}, {-1, 0});
  Variable v = Variable::Parameter(x);
  EXPECT_NEAR(ag::CosineEmbeddingLoss(v, t).value()[0], 2.0f, 1e-5);
}

// ---- Dropout ------------------------------------------------------------------

TEST(DropoutTest, IdentityAtEval) {
  Rng rng(55);
  Variable x = Variable::Parameter(Tensor::Randn({10, 10}, &rng));
  Variable y = ag::Dropout(x, 0.5f, /*train=*/false, &rng);
  EXPECT_TRUE(ops::AllClose(y.value(), x.value()));
}

TEST(DropoutTest, ScalesSurvivorsAtTrain) {
  Rng rng(56);
  Variable x = Variable::Parameter(Tensor::Ones({100, 100}));
  Variable y = ag::Dropout(x, 0.25f, /*train=*/true, &rng);
  int64_t zeros = 0;
  double sum = 0;
  for (int64_t i = 0; i < y.size(); ++i) {
    if (y.value()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.value()[i], 1.0f / 0.75f, 1e-5);
    }
    sum += y.value()[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.25, 0.02);
  EXPECT_NEAR(sum / y.size(), 1.0, 0.03);  // expectation preserved
}

TEST(DropoutTest, GradientMatchesMask) {
  Rng rng(57);
  Variable x = Variable::Parameter(Tensor::Ones({50}));
  Variable y = ag::Dropout(x, 0.5f, /*train=*/true, &rng);
  Variable loss = ag::SumAll(y);
  Backward(loss);
  for (int64_t i = 0; i < 50; ++i) {
    if (y.value()[i] == 0.0f) {
      EXPECT_EQ(x.grad()[i], 0.0f);
    } else {
      EXPECT_NEAR(x.grad()[i], 2.0f, 1e-5);
    }
  }
}

// ---- Two-layer MLP end-to-end gradient check ------------------------------------

TEST(EndToEndTest, MlpGradCheckAllParams) {
  Rng rng(77);
  Tensor x_in = Tensor::Randn({5, 4}, &rng);
  Tensor w1_in = Tensor::Randn({4, 6}, &rng, 0.5f);
  Tensor b1_in = Tensor::Zeros({6});
  Tensor w2_in = Tensor::Randn({6, 3}, &rng, 0.5f);
  std::vector<int64_t> targets = {0, 1, 2, 1, 0};

  auto build = [&](const Variable& w1, const Variable& b1, const Variable& w2) {
    Variable x = Variable::Constant(x_in);
    Variable h = ag::Gelu(ag::AddBias(ag::MatMul(x, w1), b1));
    Variable logits = ag::MatMul(h, w2);
    return ag::CrossEntropy(logits, targets);
  };

  // Check gradient w.r.t. w1 while treating others as constants.
  float d1 = GradCheck(
      [&](const Variable& w1) {
        return build(w1, Variable::Constant(b1_in), Variable::Constant(w2_in));
      },
      w1_in);
  EXPECT_LT(d1, kGradTol);

  float d2 = GradCheck(
      [&](const Variable& b1) {
        return build(Variable::Constant(w1_in), b1, Variable::Constant(w2_in));
      },
      b1_in);
  EXPECT_LT(d2, kGradTol);

  float d3 = GradCheck(
      [&](const Variable& w2) {
        return build(Variable::Constant(w1_in), Variable::Constant(b1_in), w2);
      },
      w2_in);
  EXPECT_LT(d3, kGradTol);
}

TEST(EndToEndTest, TrainingReducesLoss) {
  // A few SGD steps on a toy problem must reduce the loss.
  Rng rng(88);
  Tensor x_in = Tensor::Randn({8, 4}, &rng);
  std::vector<int64_t> targets = {0, 1, 0, 1, 0, 1, 0, 1};
  Variable w = Variable::Parameter(Tensor::Randn({4, 2}, &rng, 0.1f));
  float first = 0, last = 0;
  for (int step = 0; step < 30; ++step) {
    w.ZeroGrad();
    Variable loss = ag::CrossEntropy(ag::MatMul(Variable::Constant(x_in), w),
                                     targets);
    if (step == 0) first = loss.value()[0];
    last = loss.value()[0];
    Backward(loss);
    Tensor& g = w.mutable_grad();
    Tensor& v = w.mutable_value();
    for (int64_t i = 0; i < v.size(); ++i) v[i] -= 0.5f * g[i];
  }
  EXPECT_LT(last, first * 0.8f);
}

// ---- Inference mode (GradMode / NoGradGuard) -------------------------------

TEST(GradModeTest, EnabledByDefault) { EXPECT_TRUE(GradMode::IsEnabled()); }

TEST(GradModeTest, OpsUnderGuardProduceConstants) {
  Variable w = Variable::Parameter(Tensor::Ones({2, 2}));
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradMode::IsEnabled());
    Variable y = ag::MulScalar(w, 3.0f);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_EQ(y.value()[0], 3.0f);
    // The leaf itself keeps its requires_grad flag.
    EXPECT_TRUE(w.requires_grad());
  }
  EXPECT_TRUE(GradMode::IsEnabled());
}

TEST(GradModeTest, GuardNestsAndRestores) {
  NoGradGuard outer;
  EXPECT_FALSE(GradMode::IsEnabled());
  {
    NoGradGuard inner;
    EXPECT_FALSE(GradMode::IsEnabled());
  }
  // The inner guard restores the *outer* guard's state, not the default.
  EXPECT_FALSE(GradMode::IsEnabled());
}

TEST(GradModeTest, ThreadLocalIsolation) {
  NoGradGuard guard;
  bool other_thread_enabled = false;
  std::thread t([&] { other_thread_enabled = GradMode::IsEnabled(); });
  t.join();
  // A fresh thread records tapes even while this thread is in a guard.
  EXPECT_TRUE(other_thread_enabled);
  EXPECT_FALSE(GradMode::IsEnabled());
}

TEST(GradModeTest, TrainingStillWorksAfterGuardScope) {
  Variable w = Variable::Parameter(Tensor({4}, {1, 2, 3, 4}));
  {
    NoGradGuard guard;
    Variable y = ag::MeanAll(ag::MulScalar(w, 2.0f));
    EXPECT_FALSE(y.requires_grad());
  }
  Variable loss = ag::MeanAll(ag::MulScalar(w, 2.0f));
  Backward(loss);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.grad()[i], 0.5f, 1e-6);
}

TEST(GradModeTest, ForwardBitIdenticalUnderNoGrad) {
  // The grad-free fast path must not change a single output bit: same
  // kernels, same accumulation order, only the tape is skipped.
  Rng rng(7);
  Tensor x_in = Tensor::Randn({6, 8}, &rng);
  Tensor w1_in = Tensor::Randn({8, 8}, &rng);
  Tensor w2_in = Tensor::Randn({8, 4}, &rng);
  Tensor gamma_in = Tensor::Ones({8});
  Tensor beta_in = Tensor(Shape{8});

  auto forward = [&]() {
    Variable x = Variable::Constant(x_in);
    Variable w1 = Variable::Parameter(w1_in);
    Variable w2 = Variable::Parameter(w2_in);
    Variable gamma = Variable::Parameter(gamma_in);
    Variable beta = Variable::Parameter(beta_in);
    Variable h = ag::Gelu(ag::MatMul(x, w1));
    h = ag::LayerNorm(h, gamma, beta);
    h = ag::Reshape(h, {6, 8});
    return ag::Softmax(ag::MatMul(h, w2));
  };

  Variable with_tape = forward();
  EXPECT_TRUE(with_tape.requires_grad());
  Variable without_tape;
  {
    NoGradGuard guard;
    without_tape = forward();
  }
  EXPECT_FALSE(without_tape.requires_grad());
  ASSERT_EQ(with_tape.value().shape(), without_tape.value().shape());
  for (int64_t i = 0; i < with_tape.value().size(); ++i) {
    EXPECT_EQ(with_tape.value()[i], without_tape.value()[i]) << "index " << i;
  }
}

// ---- PermuteReshape --------------------------------------------------------

TEST(PermuteReshapeTest, MatchesSeparatePermuteAndReshape) {
  Rng rng(11);
  Tensor x = Tensor::Randn({2, 3, 4, 5}, &rng, 1.0f);
  Variable a = Variable::Constant(x);
  Tensor fused =
      ag::PermuteReshape(a, {0, 2, 1, 3}, Shape{2, 4, 15}).value();
  Tensor two_step =
      ag::Reshape(ag::Permute(a, {0, 2, 1, 3}), Shape{2, 4, 15}).value();
  ASSERT_EQ(fused.shape(), two_step.shape());
  for (int64_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i], two_step[i]) << "index " << i;
  }
}

TEST(PermuteReshapeTest, GradCheck) {
  Rng rng(12);
  Tensor x = Tensor::Randn({2, 3, 4, 2}, &rng, 0.7f);
  float diff = GradCheck(
      [](const Variable& v) {
        Variable y = ag::PermuteReshape(v, {0, 2, 1, 3}, Shape{2, 4, 6});
        return ag::MeanAll(ag::Mul(y, y));
      },
      x);
  EXPECT_LT(diff, kGradTol);
}

// ---- FusedAttention --------------------------------------------------------

// The unfused chain FusedAttention replaces, built from the primitive
// autograd ops (head split / scaled QK^T / masked softmax / PV / merge).
Variable ReferenceAttention(const Variable& q, const Variable& k,
                            const Variable& v, const Tensor& mask,
                            int64_t heads) {
  const int64_t b = q.dim(0);
  const int64_t tq = q.dim(1);
  const int64_t tk = k.dim(1);
  const int64_t hidden = q.dim(2);
  const int64_t dh = hidden / heads;
  auto split = [&](const Variable& x, int64_t t) {
    return ag::Permute(ag::Reshape(x, {b, t, heads, dh}), {0, 2, 1, 3});
  };
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Variable scores = ag::MulScalar(
      ag::MatMul(split(q, tq), split(k, tk), false, true), scale);
  Variable probs =
      mask.size() > 0 ? ag::MaskedSoftmax(scores, mask) : ag::Softmax(scores);
  Variable ctx = ag::MatMul(probs, split(v, tk));
  return ag::PermuteReshape(ctx, {0, 2, 1, 3}, {b, tq, hidden});
}

Tensor PaddingMask(int64_t b, int64_t tk, int64_t blocked_tail) {
  Tensor mask = Tensor::Zeros({b, 1, 1, tk});
  for (int64_t bi = 0; bi < b; ++bi) {
    for (int64_t j = tk - blocked_tail; j < tk; ++j) {
      mask.data()[bi * tk + j] = 1.0f;
    }
  }
  return mask;
}

TEST(FusedAttentionTest, ForwardBitIdenticalToReferenceChain) {
  Rng rng(21);
  const int64_t b = 2, t = 10, heads = 2, hidden = 8;
  Variable q = Variable::Constant(Tensor::Randn({b, t, hidden}, &rng, 0.8f));
  Variable k = Variable::Constant(Tensor::Randn({b, t, hidden}, &rng, 0.8f));
  Variable v = Variable::Constant(Tensor::Randn({b, t, hidden}, &rng, 0.8f));
  for (const Tensor& mask : {Tensor(), PaddingMask(b, t, 3)}) {
    Tensor fused =
        ag::FusedAttention(q, k, v, mask, heads, 0.0f, false, nullptr).value();
    Tensor ref = ReferenceAttention(q, k, v, mask, heads).value();
    ASSERT_EQ(fused.shape(), ref.shape());
    for (int64_t i = 0; i < fused.size(); ++i) {
      EXPECT_EQ(fused[i], ref[i]) << "index " << i;
    }
  }
}

TEST(FusedAttentionTest, CrossAttentionBitIdenticalToReferenceChain) {
  Rng rng(22);
  const int64_t b = 2, tq = 5, tk = 9, heads = 4, hidden = 8;
  Variable q = Variable::Constant(Tensor::Randn({b, tq, hidden}, &rng, 0.8f));
  Variable k = Variable::Constant(Tensor::Randn({b, tk, hidden}, &rng, 0.8f));
  Variable v = Variable::Constant(Tensor::Randn({b, tk, hidden}, &rng, 0.8f));
  Tensor mask = PaddingMask(b, tk, 2);
  Tensor fused =
      ag::FusedAttention(q, k, v, mask, heads, 0.0f, false, nullptr).value();
  Tensor ref = ReferenceAttention(q, k, v, mask, heads).value();
  for (int64_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i], ref[i]) << "index " << i;
  }
}

TEST(FusedAttentionTest, GradMatchesReferenceChain) {
  Rng rng(23);
  const int64_t b = 2, t = 7, heads = 2, hidden = 8;
  Tensor qt = Tensor::Randn({b, t, hidden}, &rng, 0.8f);
  Tensor kt = Tensor::Randn({b, t, hidden}, &rng, 0.8f);
  Tensor vt = Tensor::Randn({b, t, hidden}, &rng, 0.8f);
  Tensor mask = PaddingMask(b, t, 2);

  auto run = [&](bool fused, Variable* q, Variable* k, Variable* v) {
    *q = Variable::Parameter(qt.Clone());
    *k = Variable::Parameter(kt.Clone());
    *v = Variable::Parameter(vt.Clone());
    Variable out =
        fused ? ag::FusedAttention(*q, *k, *v, mask, heads, 0.0f, false,
                                   nullptr)
              : ReferenceAttention(*q, *k, *v, mask, heads);
    Backward(ag::MeanAll(ag::Mul(out, out)));
  };
  Variable qf, kf, vf, qr, kr, vr;
  run(true, &qf, &kf, &vf);
  run(false, &qr, &kr, &vr);

  auto compare = [](const Tensor& a, const Tensor& b, const char* name) {
    for (int64_t i = 0; i < a.size(); ++i) {
      const float denom = std::max(1e-4f, std::fabs(b[i]));
      EXPECT_LT(std::fabs(a[i] - b[i]) / denom, 1e-4f)
          << name << " index " << i << ": " << a[i] << " vs " << b[i];
    }
  };
  compare(qf.grad(), qr.grad(), "dq");
  compare(kf.grad(), kr.grad(), "dk");
  compare(vf.grad(), vr.grad(), "dv");
}

TEST(FusedAttentionTest, GradCheckUnmasked) {
  Rng rng(24);
  const int64_t b = 1, t = 5, heads = 2, hidden = 8;
  Tensor kt = Tensor::Randn({b, t, hidden}, &rng, 0.6f);
  Tensor vt = Tensor::Randn({b, t, hidden}, &rng, 0.6f);
  Tensor x = Tensor::Randn({b, t, hidden}, &rng, 0.6f);
  float diff = GradCheck(
      [&](const Variable& q) {
        Variable k = Variable::Parameter(kt.Clone());
        Variable v = Variable::Parameter(vt.Clone());
        return ag::MeanAll(
            ag::FusedAttention(q, k, v, Tensor(), heads, 0.0f, false, nullptr));
      },
      x);
  EXPECT_LT(diff, kGradTol);
}

TEST(FusedAttentionTest, GradCheckMasked) {
  Rng rng(25);
  const int64_t b = 2, t = 6, heads = 2, hidden = 8;
  Tensor kt = Tensor::Randn({b, t, hidden}, &rng, 0.6f);
  Tensor vt = Tensor::Randn({b, t, hidden}, &rng, 0.6f);
  Tensor mask = PaddingMask(b, t, 2);
  Tensor x = Tensor::Randn({b, t, hidden}, &rng, 0.6f);
  float diff = GradCheck(
      [&](const Variable& q) {
        Variable k = Variable::Parameter(kt.Clone());
        Variable v = Variable::Parameter(vt.Clone());
        return ag::MeanAll(
            ag::FusedAttention(q, k, v, mask, heads, 0.0f, false, nullptr));
      },
      x);
  EXPECT_LT(diff, kGradTol);
}

TEST(FusedAttentionTest, GradCheckWithDropoutFixedSeed) {
  // GradCheck requires f to be deterministic across calls, so rebuild the
  // rng from the same seed inside f: every forward then draws the same
  // dropout seed and replays the same mask.
  Rng rng(26);
  const int64_t b = 1, t = 6, heads = 2, hidden = 8;
  Tensor kt = Tensor::Randn({b, t, hidden}, &rng, 0.6f);
  Tensor vt = Tensor::Randn({b, t, hidden}, &rng, 0.6f);
  Tensor x = Tensor::Randn({b, t, hidden}, &rng, 0.6f);
  float diff = GradCheck(
      [&](const Variable& q) {
        Rng drop_rng(777);
        Variable k = Variable::Parameter(kt.Clone());
        Variable v = Variable::Parameter(vt.Clone());
        return ag::MeanAll(ag::FusedAttention(q, k, v, Tensor(), heads, 0.25f,
                                              true, &drop_rng));
      },
      x);
  EXPECT_LT(diff, kGradTol);
}

TEST(FusedAttentionTest, DropoutZerosAndScalesLikeInvertedDropout) {
  Rng rng(27);
  const int64_t b = 1, t = 8, heads = 2, hidden = 8;
  Variable q = Variable::Constant(Tensor::Randn({b, t, hidden}, &rng, 0.6f));
  Variable k = Variable::Constant(Tensor::Randn({b, t, hidden}, &rng, 0.6f));
  Variable v = Variable::Constant(Tensor::Ones({b, t, hidden}));
  // With V = 1, every context element is sum_j dropped_prob_ij. Dropout off
  // gives exactly 1 (softmax rows sum to 1); with dropout the row sums must
  // differ but keep a mean near 1 (inverted dropout is unbiased).
  Rng drop_rng(123);
  Tensor dropped = ag::FusedAttention(q, k, v, Tensor(), heads, 0.5f, true,
                                      &drop_rng)
                       .value();
  double mean = 0;
  bool any_differs = false;
  for (int64_t i = 0; i < dropped.size(); ++i) {
    mean += dropped[i];
    if (std::fabs(dropped[i] - 1.0f) > 1e-3f) any_differs = true;
  }
  mean /= static_cast<double>(dropped.size());
  EXPECT_TRUE(any_differs);
  EXPECT_NEAR(mean, 1.0, 0.35);
}

TEST(FusedAttentionTest, FullyMaskedQueryRowYieldsZeroNotNaN) {
  Rng rng(28);
  const int64_t b = 1, t = 4, heads = 2, hidden = 8;
  Variable q = Variable::Constant(Tensor::Randn({b, t, hidden}, &rng, 0.8f));
  Variable k = Variable::Constant(Tensor::Randn({b, t, hidden}, &rng, 0.8f));
  Variable v = Variable::Constant(Tensor::Randn({b, t, hidden}, &rng, 0.8f));
  Tensor mask = Tensor::Ones({b, 1, 1, t});  // every key blocked
  Tensor out =
      ag::FusedAttention(q, k, v, mask, heads, 0.0f, false, nullptr).value();
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_FALSE(std::isnan(out[i])) << "index " << i;
    EXPECT_EQ(out[i], 0.0f) << "index " << i;
  }
}

TEST(FusedAttentionTest, MaskedSoftmaxFullyMaskedRowMatchesFused) {
  // The reference op itself must also produce zeros (no NaN) so the two
  // paths agree on dead rows.
  Tensor scores({1, 1, 2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor mask = Tensor::Ones({1, 1, 1, 3});
  Tensor probs =
      ag::MaskedSoftmax(Variable::Constant(scores), mask).value();
  for (int64_t i = 0; i < probs.size(); ++i) {
    EXPECT_FALSE(std::isnan(probs[i])) << "index " << i;
    EXPECT_EQ(probs[i], 0.0f) << "index " << i;
  }
}

TEST(FusedAttentionTest, BackwardDeterministicAcrossCalls) {
  Rng rng(29);
  const int64_t b = 2, t = 33, heads = 2, hidden = 8;  // spans row tiles
  Tensor qt = Tensor::Randn({b, t, hidden}, &rng, 0.7f);
  Tensor kt = Tensor::Randn({b, t, hidden}, &rng, 0.7f);
  Tensor vt = Tensor::Randn({b, t, hidden}, &rng, 0.7f);
  Tensor mask = PaddingMask(b, t, 5);
  auto grads = [&]() {
    Variable q = Variable::Parameter(qt.Clone());
    Variable k = Variable::Parameter(kt.Clone());
    Variable v = Variable::Parameter(vt.Clone());
    Backward(ag::SumAll(
        ag::FusedAttention(q, k, v, mask, heads, 0.0f, false, nullptr)));
    return std::make_tuple(q.grad().Clone(), k.grad().Clone(),
                           v.grad().Clone());
  };
  auto [dq1, dk1, dv1] = grads();
  auto [dq2, dk2, dv2] = grads();
  for (int64_t i = 0; i < dq1.size(); ++i) {
    EXPECT_EQ(dq1[i], dq2[i]);
    EXPECT_EQ(dk1[i], dk2[i]);
    EXPECT_EQ(dv1[i], dv2[i]);
  }
}

}  // namespace
}  // namespace emx
