#include <gtest/gtest.h>

#include <cmath>

#include "baselines/classical_ml.h"
#include "baselines/deepmatcher.h"
#include "baselines/magellan.h"
#include "baselines/similarity.h"
#include "baselines/word2vec.h"
#include "data/generators.h"
#include "pretrain/corpus.h"
#include "eval/metrics.h"

namespace emx {
namespace baselines {
namespace {

// ---- Metrics ----------------------------------------------------------

TEST(MetricsTest, PerfectPredictions) {
  auto s = eval::ComputeScores({1, 0, 1, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  EXPECT_DOUBLE_EQ(s.accuracy, 1.0);
}

TEST(MetricsTest, KnownConfusion) {
  // TP=2, FP=1, FN=1, TN=1.
  auto s = eval::ComputeScores({1, 1, 1, 0, 0}, {1, 1, 0, 1, 0});
  EXPECT_NEAR(s.precision, 2.0 / 3, 1e-9);
  EXPECT_NEAR(s.recall, 2.0 / 3, 1e-9);
  EXPECT_NEAR(s.f1, 2.0 / 3, 1e-9);
  EXPECT_NEAR(s.accuracy, 3.0 / 5, 1e-9);
}

TEST(MetricsTest, AllNegativePredictionsZeroF1) {
  auto s = eval::ComputeScores({0, 0, 0}, {1, 1, 0});
  EXPECT_EQ(s.f1, 0.0);
  EXPECT_EQ(s.precision, 0.0);
  EXPECT_EQ(s.recall, 0.0);
}

TEST(MetricsTest, MeanStddev) {
  auto st = eval::MeanStddev({2, 4, 4, 4, 6});
  EXPECT_NEAR(st.mean, 4.0, 1e-9);
  EXPECT_NEAR(st.stddev, std::sqrt(2.0), 1e-9);
  EXPECT_EQ(eval::MeanStddev({}).mean, 0.0);
  EXPECT_EQ(eval::MeanStddev({5.0}).stddev, 0.0);
}

// ---- Similarity --------------------------------------------------------------

TEST(SimilarityTest, Levenshtein) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
  EXPECT_NEAR(LevenshteinSimilarity("abc", "abc"), 1.0, 1e-9);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abce"), 0.75, 1e-9);
  EXPECT_NEAR(LevenshteinSimilarity("", ""), 1.0, 1e-9);
}

TEST(SimilarityTest, JaroKnownValues) {
  // Classic reference values.
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
  EXPECT_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_EQ(JaroSimilarity("same", "same"), 1.0);
}

TEST(SimilarityTest, JaroWinklerBoostsPrefix) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611, 1e-3);
  EXPECT_GE(JaroWinklerSimilarity("prefixed", "prefixes"),
            JaroSimilarity("prefixed", "prefixes"));
}

TEST(SimilarityTest, TokenJaccard) {
  EXPECT_NEAR(TokenJaccard("a b c", "b c d"), 0.5, 1e-9);
  EXPECT_NEAR(TokenJaccard("a b", "a b"), 1.0, 1e-9);
  EXPECT_EQ(TokenJaccard("a", "b"), 0.0);
  EXPECT_EQ(TokenJaccard("", ""), 1.0);
}

TEST(SimilarityTest, QGramJaccard) {
  EXPECT_GT(QGramJaccard("iphone", "iphnoe"), 0.0);
  EXPECT_NEAR(QGramJaccard("abc", "abc"), 1.0, 1e-9);
  // Short strings fall back to whole-string grams.
  EXPECT_EQ(QGramJaccard("ab", "ab"), 1.0);
}

TEST(SimilarityTest, OverlapCoefficient) {
  // Subset: full overlap of the smaller set.
  EXPECT_NEAR(TokenOverlapCoefficient("a b", "a b c d"), 1.0, 1e-9);
  EXPECT_EQ(TokenOverlapCoefficient("", "a"), 0.0);
}

TEST(SimilarityTest, MongeElkan) {
  // Token order does not matter much; abbreviations still score.
  const double sim = MongeElkanSimilarity("john smith", "smith john");
  EXPECT_GT(sim, 0.9);
  EXPECT_EQ(MongeElkanSimilarity("", ""), 1.0);
  EXPECT_EQ(MongeElkanSimilarity("a", ""), 0.0);
}

TEST(SimilarityTest, NumericSimilarity) {
  EXPECT_NEAR(NumericSimilarity("100", "100"), 1.0, 1e-9);
  EXPECT_NEAR(NumericSimilarity("100", "90"), 0.9, 1e-6);
  EXPECT_EQ(NumericSimilarity("abc", "100"), 0.0);
  EXPECT_EQ(NumericSimilarity("", ""), 0.0);
}

TEST(SimilarityTest, TfIdfCosineWeighsRareTokens) {
  TfIdfCosine tfidf;
  // "the" appears everywhere; "zx5" is rare and discriminative.
  tfidf.Fit({"the red phone", "the blue phone", "the zx5 camera",
             "the green laptop"});
  const double rare = tfidf.Similarity("the zx5", "zx5 camera");
  const double common = tfidf.Similarity("the red", "the blue");
  EXPECT_GT(rare, common);
  EXPECT_NEAR(tfidf.Similarity("same text", "same text"), 1.0, 1e-9);
}

// ---- Classical classifiers -------------------------------------------------------

MlDataset MakeSeparableDataset(int64_t n, Rng* rng) {
  // label = 1 iff feature0 + feature1 > 1.0 (with margin).
  MlDataset d;
  for (int64_t i = 0; i < n; ++i) {
    const double a = rng->NextDouble();
    const double b = rng->NextDouble();
    const double noise = rng->NextDouble() * 0.1 - 0.05;
    d.features.push_back({a, b, rng->NextDouble()});  // third is noise
    d.labels.push_back(a + b + noise > 1.0 ? 1 : 0);
  }
  return d;
}

class ClassifierTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<BinaryClassifier> Make() {
    switch (GetParam()) {
      case 0:
        return std::make_unique<DecisionTree>();
      case 1:
        return std::make_unique<RandomForest>();
      default:
        return std::make_unique<LogisticRegression>();
    }
  }
};

TEST_P(ClassifierTest, LearnsSeparableProblem) {
  Rng rng(23);
  MlDataset train = MakeSeparableDataset(400, &rng);
  MlDataset test = MakeSeparableDataset(100, &rng);
  auto clf = Make();
  clf->Fit(train);
  int64_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    if (clf->Predict(test.features[i]) == test.labels[i]) ++correct;
  }
  EXPECT_GT(correct, 85) << clf->name();
}

TEST_P(ClassifierTest, ProbsInUnitInterval) {
  Rng rng(29);
  MlDataset train = MakeSeparableDataset(100, &rng);
  auto clf = Make();
  clf->Fit(train);
  for (int i = 0; i < 20; ++i) {
    const double p = clf->PredictProb(
        {rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(TreeForestLogReg, ClassifierTest,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0:
                               return std::string("DecisionTree");
                             case 1:
                               return std::string("RandomForest");
                             default:
                               return std::string("LogisticRegression");
                           }
                         });

TEST(DecisionTreeTest, PureLeafStopsSplitting) {
  MlDataset d;
  for (int i = 0; i < 10; ++i) {
    d.features.push_back({static_cast<double>(i)});
    d.labels.push_back(1);  // all positive -> single node
  }
  DecisionTree tree;
  tree.Fit(d);
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_GT(tree.PredictProb({5.0}), 0.8);
}

// ---- Magellan ------------------------------------------------------------------

TEST(MagellanTest, FeatureVectorLayout) {
  data::GeneratorOptions opts;
  opts.scale = 0.02;
  auto ds = data::GenerateDataset(data::DatasetId::kDblpAcm, opts);
  MagellanMatcher matcher;
  matcher.Fit(ds);
  EXPECT_EQ(matcher.num_features(), 4u * 9u);
  auto f = matcher.Features(ds.test.front());
  EXPECT_EQ(f.size(), matcher.num_features());
  for (double v : f) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(MagellanTest, HighF1OnCleanCitations) {
  // Without the dirty transform DBLP-ACM is easy for classical matching.
  data::GeneratorOptions opts;
  opts.scale = 0.06;
  opts.apply_dirty = false;
  auto ds = data::GenerateDataset(data::DatasetId::kDblpAcm, opts);
  MagellanMatcher matcher;
  matcher.Fit(ds);
  auto scores = matcher.EvaluateTest(ds);
  EXPECT_GT(scores.f1, 0.85) << "selected: " << matcher.selected_classifier();
}

TEST(MagellanTest, DirtyDataHurts) {
  data::GeneratorOptions opts;
  opts.scale = 0.05;
  opts.seed = 77;
  opts.apply_dirty = false;
  auto clean = data::GenerateDataset(data::DatasetId::kWalmartAmazon, opts);
  opts.apply_dirty = true;
  auto dirty = data::GenerateDataset(data::DatasetId::kWalmartAmazon, opts);

  MagellanMatcher m1, m2;
  m1.Fit(clean);
  m2.Fit(dirty);
  const double f1_clean = m1.EvaluateTest(clean).f1;
  const double f1_dirty = m2.EvaluateTest(dirty).f1;
  EXPECT_GT(f1_clean, f1_dirty);
}

TEST(MagellanTest, SelectsSomeClassifier) {
  data::GeneratorOptions opts;
  opts.scale = 0.02;
  auto ds = data::GenerateDataset(data::DatasetId::kItunesAmazon, opts);
  MagellanMatcher matcher;
  matcher.Fit(ds);
  EXPECT_FALSE(matcher.selected_classifier().empty());
  auto preds = matcher.Predict(ds.test);
  EXPECT_EQ(preds.size(), ds.test.size());
}

// ---- Word2Vec ----------------------------------------------------------------

TEST(Word2VecTest, VocabularyAndSpecials) {
  std::vector<std::string> corpus = {
      "red phone with camera", "blue phone with display",
      "red camera with lens",  "blue display with stand"};
  Word2VecOptions opts;
  opts.min_count = 1;
  opts.epochs = 2;
  opts.dim = 8;
  Word2Vec w2v = Word2Vec::Train(corpus, opts);
  EXPECT_GE(w2v.WordId("phone"), 2);
  EXPECT_LT(w2v.WordId("phone"), w2v.num_learned_words());
  EXPECT_EQ(w2v.embeddings().dim(0), w2v.vocab_size());
  EXPECT_EQ(w2v.vocab_size(), w2v.num_learned_words() + opts.hash_buckets);
  // <pad> embedding is zero.
  for (int64_t d = 0; d < 8; ++d) {
    EXPECT_EQ(w2v.embeddings()[Word2Vec::kPadId * 8 + d], 0.0f);
  }
}

TEST(Word2VecTest, OovHashBucketsAreStableAndDistinct) {
  Word2VecOptions opts;
  opts.min_count = 1;
  opts.epochs = 1;
  opts.dim = 8;
  Word2Vec w2v = Word2Vec::Train({"alpha beta"}, opts);
  // OOV words map to buckets past the learned vocabulary, deterministically.
  const int64_t a1 = w2v.WordId("zx551kl");
  const int64_t a2 = w2v.WordId("zx551kl");
  const int64_t b = w2v.WordId("zx591kl");
  EXPECT_EQ(a1, a2);
  EXPECT_GE(a1, w2v.num_learned_words());
  EXPECT_NE(a1, b);  // different strings hash to different buckets (w.h.p.)
  // Bucket vectors are non-zero so identity comparisons carry signal.
  float norm = 0;
  for (int64_t d = 0; d < 8; ++d) {
    const float v = w2v.embeddings()[a1 * 8 + d];
    norm += v * v;
  }
  EXPECT_GT(norm, 0.0f);
}

TEST(Word2VecTest, EncodeLowercasesAndMapsUnk) {
  std::vector<std::string> corpus = {"alpha beta gamma", "alpha beta delta"};
  Word2VecOptions opts;
  opts.min_count = 1;
  opts.epochs = 1;
  opts.dim = 4;
  Word2Vec w2v = Word2Vec::Train(corpus, opts);
  auto ids = w2v.Encode("ALPHA zzz");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], w2v.WordId("alpha"));
  // OOV words land in the hash-bucket range (fastText-like behaviour).
  EXPECT_GE(ids[1], w2v.num_learned_words());
}

TEST(Word2VecTest, CooccurringWordsMoreSimilar) {
  // Build a corpus where (sun, moon) co-occur and (sun, gearbox) never do.
  std::vector<std::string> corpus;
  for (int i = 0; i < 150; ++i) {
    corpus.push_back("the sun and the moon shine bright at night");
    corpus.push_back("a gearbox and a clutch drive the metal machine");
  }
  Word2VecOptions opts;
  opts.min_count = 2;
  opts.epochs = 3;
  opts.dim = 16;
  Word2Vec w2v = Word2Vec::Train(corpus, opts);
  EXPECT_GT(w2v.Similarity("sun", "moon"), w2v.Similarity("sun", "gearbox"));
}

// ---- DeepMatcher ----------------------------------------------------------------

TEST(DeepMatcherTest, EncodePadsAndTruncates) {
  Word2VecOptions wopts;
  wopts.min_count = 1;
  wopts.epochs = 1;
  wopts.dim = 8;
  Word2Vec w2v = Word2Vec::Train({"one two three"}, wopts);
  DeepMatcherOptions opts;
  opts.max_tokens = 5;
  DeepMatcherModel model(w2v, opts);
  auto short_ids = model.EncodeEntity("one two");
  ASSERT_EQ(short_ids.size(), 5u);
  EXPECT_EQ(short_ids[2], Word2Vec::kPadId);
  auto long_ids = model.EncodeEntity("one two three one two three one");
  EXPECT_EQ(long_ids.size(), 5u);
}

TEST(DeepMatcherTest, LearnsSmallEmTask) {
  // Citations: the workload DeepMatcher handles best (cf. the paper's
  // Table 5, where it reaches 93-98 F1 on the DBLP datasets).
  data::GeneratorOptions gopts;
  gopts.scale = 0.04;
  gopts.seed = 5;
  auto ds = data::GenerateDataset(data::DatasetId::kDblpAcm, gopts);

  // Word2vec on generic domain text (stand-in for fastText).
  pretrain::CorpusOptions copts;
  copts.num_documents = 1500;
  auto corpus = pretrain::FlattenCorpus(pretrain::GenerateCorpus(copts));
  Word2VecOptions wopts;
  wopts.min_count = 2;
  wopts.epochs = 3;
  wopts.dim = 32;
  Word2Vec w2v = Word2Vec::Train(corpus, wopts);

  DeepMatcherOptions opts;
  opts.hidden = 32;
  opts.max_tokens = 28;
  opts.epochs = 12;
  opts.learning_rate = 2e-3f;
  DeepMatcherModel model(w2v, opts);
  model.Fit(ds);
  auto scores = model.EvaluateTest(ds);
  EXPECT_GT(scores.f1, 0.6);
}

}  // namespace
}  // namespace baselines
}  // namespace emx
