#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/magellan.h"
#include "core/entity_matcher.h"
#include "data/generators.h"
#include "models/transformer.h"
#include "pretrain/corpus.h"
#include "pretrain/lm_data.h"
#include "tokenizers/byte_bpe.h"
#include "tokenizers/unigram.h"
#include "tensor/tensor_ops.h"
#include "tokenizers/wordpiece.h"
#include "util/string_util.h"

namespace emx {
namespace {

// Cross-module integration checks that stay cheap and deterministic.

// ---- Generators x tokenizers: every dataset round-trips through every
// tokenizer without out-of-range ids. --------------------------------------

class DatasetTokenizerTest
    : public ::testing::TestWithParam<std::tuple<data::DatasetId, int>> {};

TEST_P(DatasetTokenizerTest, EncodedPairsAreWellFormed) {
  auto [dataset_id, tok_kind] = GetParam();

  pretrain::CorpusOptions copts;
  copts.num_documents = 100;
  auto corpus = pretrain::FlattenCorpus(pretrain::GenerateCorpus(copts));

  std::unique_ptr<tokenizers::Tokenizer> tok;
  switch (tok_kind) {
    case 0: {
      tokenizers::WordPieceTrainerOptions o;
      o.vocab_size = 500;
      o.min_frequency = 1;
      tok = std::make_unique<tokenizers::WordPieceTokenizer>(
          tokenizers::WordPieceTokenizer::Train(corpus, o));
      break;
    }
    case 1: {
      tokenizers::ByteBpeTrainerOptions o;
      o.vocab_size = 500;
      o.min_frequency = 1;
      tok = std::make_unique<tokenizers::ByteBpeTokenizer>(
          tokenizers::ByteBpeTokenizer::Train(corpus, o));
      break;
    }
    default: {
      tokenizers::UnigramTrainerOptions o;
      o.vocab_size = 500;
      o.em_iterations = 2;
      tok = std::make_unique<tokenizers::UnigramTokenizer>(
          tokenizers::UnigramTokenizer::Train(corpus, o));
      break;
    }
  }

  data::GeneratorOptions gopts;
  gopts.scale = dataset_id == data::DatasetId::kItunesAmazon ? 0.3 : 0.01;
  auto ds = data::GenerateDataset(dataset_id, gopts);
  for (size_t i = 0; i < std::min<size_t>(ds.train.size(), 40); ++i) {
    auto enc =
        tok->EncodePair(ds.SerializeA(ds.train[i]), ds.SerializeB(ds.train[i]), 48);
    ASSERT_EQ(enc.ids.size(), 48u);
    for (int64_t id : enc.ids) {
      ASSERT_GE(id, 0);
      ASSERT_LT(id, tok->vocab_size());
    }
    EXPECT_EQ(enc.ids[0], tok->specials().cls);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, DatasetTokenizerTest,
    ::testing::Combine(::testing::Values(data::DatasetId::kAbtBuy,
                                         data::DatasetId::kItunesAmazon,
                                         data::DatasetId::kWalmartAmazon,
                                         data::DatasetId::kDblpAcm,
                                         data::DatasetId::kDblpScholar),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<data::DatasetId, int>>& info) {
      std::string name = data::SpecFor(std::get<0>(info.param)).name;
      std::replace(name.begin(), name.end(), '-', '_');
      const int kind = std::get<1>(info.param);
      return name + (kind == 0 ? "_WordPiece"
                               : kind == 1 ? "_ByteBpe" : "_Unigram");
    });

// ---- Determinism across the full pipeline ----------------------------------

TEST(DeterminismTest, MagellanEndToEndIsReproducible) {
  data::GeneratorOptions gopts;
  gopts.scale = 0.02;
  auto ds1 = data::GenerateDataset(data::DatasetId::kDblpAcm, gopts);
  auto ds2 = data::GenerateDataset(data::DatasetId::kDblpAcm, gopts);
  baselines::MagellanMatcher m1, m2;
  m1.Fit(ds1);
  m2.Fit(ds2);
  EXPECT_EQ(m1.Predict(ds1.test), m2.Predict(ds2.test));
  EXPECT_EQ(m1.selected_classifier(), m2.selected_classifier());
}

TEST(DeterminismTest, CorpusAndLmBatchesReproducible) {
  pretrain::CorpusOptions copts;
  copts.num_documents = 40;
  auto corpus = pretrain::GenerateCorpus(copts);

  tokenizers::WordPieceTrainerOptions wopts;
  wopts.vocab_size = 300;
  wopts.min_frequency = 1;
  auto tok = tokenizers::WordPieceTokenizer::Train(
      pretrain::FlattenCorpus(corpus), wopts);

  pretrain::LmDataOptions lopts;
  lopts.max_seq_len = 24;
  pretrain::LmBatchBuilder b1(&tok, corpus, lopts);
  pretrain::LmBatchBuilder b2(&tok, corpus, lopts);
  for (int i = 0; i < 5; ++i) {
    auto x1 = b1.NextMlmBatch(4, true, false);
    auto x2 = b2.NextMlmBatch(4, true, false);
    ASSERT_EQ(x1.batch.ids, x2.batch.ids);
    ASSERT_EQ(x1.lm_labels, x2.lm_labels);
    ASSERT_EQ(x1.nsp_labels, x2.nsp_labels);
    auto p1 = b1.NextPlmBatch(2);
    auto p2 = b2.NextPlmBatch(2);
    ASSERT_EQ(p1.batch.ids, p2.batch.ids);
    auto q1 = b1.NextPairBatch(3);
    auto q2 = b2.NextPairBatch(3);
    ASSERT_EQ(q1.batch.ids, q2.batch.ids);
    ASSERT_EQ(q1.nsp_labels, q2.nsp_labels);
  }
}

TEST(DeterminismTest, ModelForwardReproducibleFromSeed) {
  for (auto arch : {models::Architecture::kBert, models::Architecture::kXlnet}) {
    models::TransformerConfig cfg = models::TransformerConfig::Scaled(arch, 100);
    cfg.hidden = 16;
    cfg.num_layers = 1;
    cfg.intermediate = 32;
    cfg.max_seq_len = 12;
    Rng r1(5), r2(5);
    auto m1 = models::CreateTransformer(cfg, &r1);
    auto m2 = models::CreateTransformer(cfg, &r2);
    models::Batch batch;
    batch.batch_size = 2;
    batch.seq_len = 8;
    for (int i = 0; i < 16; ++i) {
      batch.ids.push_back(i % 90 + 5);
      batch.segment_ids.push_back(i % 2);
    }
    batch.attention_mask = Tensor({2, 1, 1, 8});
    Rng e1(1), e2(1);
    Variable h1 = m1->EncodeBatch(batch, false, &e1);
    Variable h2 = m2->EncodeBatch(batch, false, &e2);
    EXPECT_TRUE(ops::AllClose(h1.value(), h2.value()))
        << models::ArchitectureName(arch);
  }
}

// ---- Dirty transform token conservation -------------------------------------

TEST(DirtyIntegrationTest, SerializedTokensAreConserved) {
  // The dirty transform moves values between attributes; the serialized
  // text (what transformers see) keeps the same multiset of tokens.
  data::GeneratorOptions clean_opts;
  clean_opts.scale = 0.02;
  clean_opts.seed = 321;
  clean_opts.apply_dirty = false;
  auto clean = data::GenerateDataset(data::DatasetId::kDblpAcm, clean_opts);
  data::GeneratorOptions dirty_opts = clean_opts;
  dirty_opts.apply_dirty = true;
  auto dirty = data::GenerateDataset(data::DatasetId::kDblpAcm, dirty_opts);

  ASSERT_EQ(clean.train.size(), dirty.train.size());
  int64_t same_multiset = 0;
  const size_t n = std::min<size_t>(clean.train.size(), 40);
  for (size_t i = 0; i < n; ++i) {
    auto tokens_of = [](const std::string& s) {
      auto v = SplitWhitespace(s);
      return std::multiset<std::string>(v.begin(), v.end());
    };
    if (tokens_of(clean.SerializeA(clean.train[i])) ==
        tokens_of(dirty.SerializeA(dirty.train[i]))) {
      ++same_multiset;
    }
  }
  // The transform reorders tokens within the serialization; apart from rng
  // stream coupling the multiset is conserved for the vast majority.
  EXPECT_GT(same_multiset, static_cast<int64_t>(n / 2));
}

}  // namespace
}  // namespace emx
