#ifndef EMX_TESTS_FILE_FUZZ_H_
#define EMX_TESTS_FILE_FUZZ_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <ios>
#include <string>
#include <vector>

#include "util/status.h"

namespace emx {
namespace testing {

/// Reads a whole file into memory (empty vector for a missing file, which
/// the corruption helpers treat as a test setup bug via ASSERT).
inline std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return {};
  std::vector<uint8_t> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

inline void WriteFileBytes(const std::string& path,
                           const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "short write to " << path;
}

/// Runs `load` against every truncation of the file at `path`: each prefix
/// length in [0, size) at `stride`-byte steps, plus every boundary in
/// `boundaries` (field edges the strided sweep might skip). Each loader
/// call must return a non-OK Status — never crash, never succeed, never
/// allocate unboundedly (ASan/ulimit enforce the latter two). The original
/// file is restored afterwards so later assertions can reuse it.
inline void ExpectAllTruncationsFail(
    const std::string& path,
    const std::function<Status(const std::string&)>& load, size_t stride = 1,
    const std::vector<size_t>& boundaries = {}) {
  const std::vector<uint8_t> whole = ReadFileBytes(path);
  ASSERT_FALSE(whole.empty()) << path << " missing or empty before fuzzing";

  std::vector<size_t> cuts;
  for (size_t n = 0; n < whole.size(); n += stride) cuts.push_back(n);
  for (size_t n : boundaries) {
    if (n < whole.size()) cuts.push_back(n);
  }

  const std::string trunc = path + ".trunc";
  for (size_t n : cuts) {
    WriteFileBytes(trunc,
                   std::vector<uint8_t>(whole.begin(),
                                        whole.begin() + static_cast<long>(n)));
    const Status s = load(trunc);
    EXPECT_FALSE(s.ok()) << "loader accepted " << n << " of " << whole.size()
                         << " bytes of " << path;
  }
  std::remove(trunc.c_str());
}

/// Overwrites sizeof(T) bytes at `offset` with `value`, runs `check`
/// against the patched file, then restores the original bytes. For
/// flipping magics, versions, counts, offsets, and dims in place.
template <typename T>
void WithPatchedField(const std::string& path, size_t offset, T value,
                      const std::function<void(const std::string&)>& check) {
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), offset + sizeof(T)) << "patch outside " << path;
  const std::string patched = path + ".patched";
  std::vector<uint8_t> copy = bytes;
  std::memcpy(copy.data() + offset, &value, sizeof(T));
  WriteFileBytes(patched, copy);
  check(patched);
  std::remove(patched.c_str());
}

}  // namespace testing
}  // namespace emx

#endif  // EMX_TESTS_FILE_FUZZ_H_
