#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/entity_matcher.h"
#include "file_fuzz.h"
#include "io/emxm.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "pretrain/model_zoo.h"
#include "quant/int8_gemm.h"
#include "quant/model_file.h"
#include "quant/observer.h"
#include "quant/quantize_matcher.h"
#include "quant/quantized_linear.h"
#include "tensor/tensor.h"
#include "tensor/variable.h"
#include "util/rng.h"
#include "util/status.h"

namespace emx {
namespace quant {
namespace {

// ---- Quantization parameters ----------------------------------------------

TEST(ObserverTest, ChooseQuantParamsCoversRangeAndZero) {
  QuantParams p = ChooseQuantParams(-1.0f, 3.0f);
  EXPECT_NEAR(p.scale, 4.0f / 255.0f, 1e-7);
  // Zero is exactly representable: dequant(zero_point) == 0.
  EXPECT_EQ(p.scale * (p.zero_point - p.zero_point), 0.0f);
  // Both endpoints land within one step of the grid.
  EXPECT_NEAR(p.scale * (0 - p.zero_point), -1.0f, p.scale);
  EXPECT_NEAR(p.scale * (255 - p.zero_point), 3.0f, p.scale);
}

TEST(ObserverTest, ChooseQuantParamsWidensOneSidedRanges) {
  // Positive-only data: the grid is anchored at 0.
  QuantParams pos = ChooseQuantParams(2.0f, 6.0f);
  EXPECT_EQ(pos.zero_point, 0);
  EXPECT_NEAR(pos.scale, 6.0f / 255.0f, 1e-7);
  // Negative-only data: 0 becomes the top code.
  QuantParams neg = ChooseQuantParams(-4.0f, -1.0f);
  EXPECT_EQ(neg.zero_point, 255);
  EXPECT_NEAR(neg.scale, 4.0f / 255.0f, 1e-7);
}

TEST(ObserverTest, ChooseQuantParamsDegenerateRange) {
  QuantParams p = ChooseQuantParams(0.0f, 0.0f);
  EXPECT_EQ(p.scale, 1.0f);
  EXPECT_EQ(p.zero_point, 0);
}

TEST(ObserverTest, MinMaxObserverTracksExtremes) {
  MinMaxObserver obs;
  EXPECT_FALSE(obs.seen());
  const float a[] = {0.5f, -2.0f, 1.0f};
  obs.Observe(a, 3);
  const float b[] = {3.5f, 0.0f};
  obs.Observe(b, 2);
  EXPECT_TRUE(obs.seen());
  EXPECT_EQ(obs.min(), -2.0f);
  EXPECT_EQ(obs.max(), 3.5f);
  QuantParams p = obs.ComputeQuantParams();
  EXPECT_NEAR(p.scale, 5.5f / 255.0f, 1e-7);
}

TEST(ObserverTest, HistogramObserverClipsOutliers) {
  Rng rng(7);
  HistogramObserver obs(/*clip_fraction=*/1e-3);
  Tensor bulk = Tensor::RandUniform({10000}, &rng, -1.0f, 1.0f);
  obs.Observe(bulk.data(), bulk.size());
  const float outlier = 100.0f;
  obs.Observe(&outlier, 1);

  EXPECT_EQ(obs.total(), 10001);
  EXPECT_EQ(obs.max(), 100.0f);  // true extrema are still tracked
  float lo = 0, hi = 0;
  obs.ClippedRange(&lo, &hi);
  // The single outlier is far below the 1e-3 tail mass, so the clipped
  // range stays near the bulk instead of stretching the grid 100x.
  EXPECT_LT(hi, 5.0f);
  EXPECT_GT(lo, -5.0f);
  QuantParams p = obs.ComputeQuantParams();
  EXPECT_LT(p.scale, 10.0f / 255.0f);
}

TEST(ObserverTest, HistogramObserverGrowsToCoverNewData) {
  HistogramObserver obs;
  const float small[] = {-0.5f, 0.5f};
  obs.Observe(small, 2);
  const float wide[] = {-8.0f, 16.0f};
  obs.Observe(wide, 2);
  EXPECT_EQ(obs.min(), -8.0f);
  EXPECT_EQ(obs.max(), 16.0f);
  // No mass lost in the rebinnings.
  EXPECT_EQ(obs.total(), 4);
}

// ---- Packing ----------------------------------------------------------------

TEST(Int8GemmTest, PackUnpackRepackIsBitIdentical) {
  Rng rng(11);
  // Deliberately not multiples of the 4/16 packing blocks.
  Tensor w = Tensor::Randn({7, 18}, &rng, 0.1f);
  Tensor b = Tensor::Randn({18}, &rng, 0.05f);
  QuantParams act = ChooseQuantParams(-2.0f, 2.0f);

  PackedWeights fresh = PackWeights(w, b, act);
  EXPECT_EQ(fresh.in, 7);
  EXPECT_EQ(fresh.out, 18);
  EXPECT_EQ(fresh.k_padded, 8);
  EXPECT_EQ(fresh.n_padded, 32);

  // The checkpoint round trip at the packing level: unpack to logical
  // row-major int8, repack, and compare every derived field bit for bit.
  std::vector<int8_t> qw = UnpackQuantizedWeights(fresh);
  PackedWeights reloaded =
      PackQuantizedWeights(fresh.in, fresh.out, qw, fresh.w_scales, fresh.bias,
                           fresh.act);
  EXPECT_EQ(fresh.data, reloaded.data);
  EXPECT_EQ(fresh.col_sums, reloaded.col_sums);
  EXPECT_EQ(fresh.w_scales, reloaded.w_scales);
  EXPECT_EQ(fresh.fused_scale, reloaded.fused_scale);
  EXPECT_EQ(fresh.bias, reloaded.bias);
}

TEST(Int8GemmTest, PerChannelScalesBoundQuantizationError) {
  Rng rng(12);
  Tensor w = Tensor::Randn({20, 9}, &rng, 0.1f);
  Tensor b = Tensor::Zeros({9});
  PackedWeights packed = PackWeights(w, b, ChooseQuantParams(-1.0f, 1.0f));
  std::vector<int8_t> qw = UnpackQuantizedWeights(packed);
  for (int64_t k = 0; k < 20; ++k) {
    for (int64_t j = 0; j < 9; ++j) {
      const float orig = w.data()[k * 9 + j];
      const float deq = packed.w_scales[static_cast<size_t>(j)] *
                        static_cast<float>(qw[static_cast<size_t>(k * 9 + j)]);
      // Symmetric rounding error is at most half a step per channel.
      EXPECT_LE(std::fabs(orig - deq),
                0.5f * packed.w_scales[static_cast<size_t>(j)] + 1e-7f)
          << "k=" << k << " j=" << j;
    }
  }
}

// ---- Kernel exactness -------------------------------------------------------

TEST(Int8GemmTest, VectorizedKernelMatchesScalarReference) {
  Rng rng(13);
  // Ragged sizes exercise every padding path (k and n remainders, a row
  // count that is not a multiple of the VNNI 4-row unroll).
  const int64_t m = 9, in = 50, out = 33;
  Tensor x = Tensor::Randn({m, in}, &rng);
  Tensor w = Tensor::Randn({in, out}, &rng, 0.1f);
  Tensor b = Tensor::Randn({out}, &rng, 0.05f);
  QuantParams act = ChooseQuantParams(-4.0f, 4.0f);
  PackedWeights packed = PackWeights(w, b, act);

  std::vector<uint8_t> qa(static_cast<size_t>(m * packed.k_padded));
  QuantizeActivations(x.data(), m, in, packed.k_padded, act, qa.data());

  std::vector<int32_t> fast(static_cast<size_t>(m * packed.n_padded), -1);
  std::vector<int32_t> ref(static_cast<size_t>(m * packed.n_padded), -1);
  Int8GemmAccumulate(qa.data(), m, packed, fast.data());
  Int8GemmRowRangeScalar(qa.data(), 0, m, packed, ref.data());
  // Integer accumulation is exact: every accumulator must agree, whichever
  // kernel (VNNI or scalar) the build dispatched to.
  EXPECT_EQ(fast, ref);
}

TEST(Int8GemmTest, EpilogueFoldsZeroPointExactly) {
  // An all-zero fp32 input quantizes to rows of zero_point; the epilogue's
  // zp * col_sums correction must cancel them exactly, leaving just bias.
  Rng rng(14);
  const int64_t m = 3, in = 12, out = 5;
  Tensor x = Tensor::Zeros({m, in});
  Tensor w = Tensor::Randn({in, out}, &rng, 0.1f);
  Tensor b = Tensor::Randn({out}, &rng);
  PackedWeights packed = PackWeights(w, b, ChooseQuantParams(-2.0f, 2.0f));

  std::vector<float> y(static_cast<size_t>(m * out));
  Int8LinearForward(x.data(), m, packed, y.data());
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < out; ++j) {
      EXPECT_EQ(y[static_cast<size_t>(i * out + j)],
                b[static_cast<size_t>(j)])
          << "i=" << i << " j=" << j;
    }
  }
}

// ---- QuantizedLinear golden -------------------------------------------------

TEST(QuantizedLinearTest, MatchesFp32LinearWithinTolerance) {
  Rng rng(15);
  nn::Linear lin(24, 17, &rng, /*init_stddev=*/0.1f);
  Tensor x = Tensor::Randn({10, 24}, &rng);
  float lo = x[0], hi = x[0];
  for (int64_t i = 0; i < x.size(); ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }

  QuantizedLinear ql(lin, ChooseQuantParams(lo, hi));
  EXPECT_EQ(ql.in_features(), 24);
  EXPECT_EQ(ql.out_features(), 17);

  NoGradGuard no_grad;
  nn::QuantModeGuard fp32_only(false);  // reference path, no backend routing
  Tensor ref = lin.Forward(Variable::Constant(x)).value();
  Tensor got = ql.Forward(Variable::Constant(x)).value();
  ASSERT_EQ(ref.shape(), got.shape());
  // Documented tolerance: with u8 activations over the observed range and
  // s8 per-channel weights, the error budget is a few quantization steps —
  // far below 0.08 at this layer size.
  float max_err = 0, mean_err = 0;
  for (int64_t i = 0; i < ref.size(); ++i) {
    const float e = std::fabs(ref[i] - got[i]);
    max_err = std::max(max_err, e);
    mean_err += e;
  }
  mean_err /= static_cast<float>(ref.size());
  EXPECT_LT(max_err, 0.08f);
  EXPECT_LT(mean_err, 0.02f);
}

TEST(QuantizedLinearTest, PreservesLeadingDims) {
  Rng rng(16);
  nn::Linear lin(8, 6, &rng);
  QuantizedLinear ql(lin, ChooseQuantParams(-3.0f, 3.0f));
  NoGradGuard no_grad;
  Tensor x = Tensor::Randn({2, 5, 8}, &rng);
  Variable y = ql.Forward(Variable::Constant(x));
  EXPECT_EQ(y.value().shape(), (Shape{2, 5, 6}));
  EXPECT_FALSE(y.requires_grad());
}

// ---- Activation LUT / fused FFN ---------------------------------------------

TEST(QuantizedFfnTest, ActivationScalarMatchesFp32Ops) {
  Tensor x({7}, {-3.0f, -1.0f, -0.1f, 0.0f, 0.1f, 1.0f, 3.0f});
  for (nn::Activation act :
       {nn::Activation::kGelu, nn::Activation::kRelu, nn::Activation::kTanh}) {
    Tensor ref = nn::ApplyActivation(Variable::Constant(x), act).value();
    for (int64_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(ActivationScalar(x[i], act), ref[i], 1e-6f)
          << "activation " << static_cast<int>(act) << " x=" << x[i];
    }
  }
}

TEST(QuantizedFfnTest, FusedPipelineMatchesFp32FfnWithinTolerance) {
  Rng rng(17);
  nn::FeedForward ffn(16, 32, &rng, nn::Activation::kGelu,
                      /*init_stddev=*/0.1f);
  Tensor x = Tensor::Randn({8, 16}, &rng);

  // Calibrate the inner Linears on the evaluation input itself (min/max
  // observers, so the grid covers everything the test feeds in).
  auto fc1_be = std::make_shared<Int8LinearBackend>(ObserverKind::kMinMax);
  auto fc2_be = std::make_shared<Int8LinearBackend>(ObserverKind::kMinMax);
  ffn.fc1()->set_backend(fc1_be);
  ffn.fc2()->set_backend(fc2_be);
  NoGradGuard no_grad;
  Tensor ref =
      ffn.Forward(Variable::Constant(x), /*dropout_p=*/0.0f, /*train=*/false,
                  &rng)
          .value();
  ASSERT_TRUE(fc1_be->observed());
  ASSERT_TRUE(fc2_be->observed());
  ASSERT_TRUE(fc1_be->Freeze(*ffn.fc1()).ok());
  ASSERT_TRUE(fc2_be->Freeze(*ffn.fc2()).ok());
  ffn.set_backend(std::make_shared<Int8FfnBackend>(
      fc1_be->packed(), fc2_be->packed(), fc1_be->ObservedOutputParams(),
      ffn.activation()));

  Tensor got =
      ffn.Forward(Variable::Constant(x), 0.0f, false, &rng).value();
  ASSERT_EQ(ref.shape(), got.shape());
  float max_err = 0;
  for (int64_t i = 0; i < ref.size(); ++i) {
    max_err = std::max(max_err, std::fabs(ref[i] - got[i]));
  }
  // Two GEMM quantizations plus the 256-entry GELU LUT; each contributes
  // on the order of one grid step.
  EXPECT_LT(max_err, 0.08f);

  // Disabling QuantMode falls back to the exact fp32 result.
  nn::QuantModeGuard fp32_only(false);
  Tensor fp32 = ffn.Forward(Variable::Constant(x), 0.0f, false, &rng).value();
  for (int64_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(fp32[i], ref[i]);
  }
}

TEST(QuantizedLinearTest, FreezeWithoutCalibrationFails) {
  Rng rng(18);
  nn::Linear lin(4, 4, &rng);
  Int8LinearBackend backend;
  Status s = backend.Freeze(lin);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

// ---- End-to-end matcher quantization ---------------------------------------

class QuantMatcherTest : public ::testing::Test {
 protected:
  static constexpr const char* kCacheDir = "/tmp/emx_zoo_quant_test";
  static constexpr int64_t kSeqLen = 32;

  static pretrain::ZooOptions Zoo() {
    pretrain::ZooOptions zoo;
    zoo.cache_dir = kCacheDir;
    zoo.vocab_size = 500;
    zoo.corpus.num_documents = 150;
    zoo.skip_pretraining = true;
    return zoo;
  }

  static std::unique_ptr<core::EntityMatcher> MakeMatcher() {
    auto bundle = pretrain::GetPretrained(models::Architecture::kBert, Zoo());
    EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
    auto m = std::make_unique<core::EntityMatcher>(std::move(bundle).value());
    m->set_eval_max_seq_len(kSeqLen);
    return m;
  }

  static CalibrationData Calib() {
    CalibrationData calib;
    for (int i = 0; i < 12; ++i) {
      calib.texts_a.push_back("canon powershot camera model " +
                              std::to_string(i));
      calib.texts_b.push_back("canon power shot digital camera " +
                              std::to_string(i % 4));
    }
    calib.batch_size = 4;
    return calib;
  }

  static void TearDownTestSuite() { std::filesystem::remove_all(kCacheDir); }
};

TEST_F(QuantMatcherTest, QuantizeMatcherEndToEnd) {
  auto matcher = MakeMatcher();
  const std::vector<std::string> as = {"apple iphone 12 mini",
                                       "sony wh-1000xm4 headphones",
                                       "generic usb c cable"};
  const std::vector<std::string> bs = {"iphone 12 mini by apple",
                                       "bose quietcomfort 45",
                                       "usb-c charging cable 1m"};
  std::vector<double> fp32 = matcher->MatchProbabilities(as, bs);
  EXPECT_FALSE(IsQuantized(matcher.get()));

  auto report = QuantizeMatcher(matcher.get(), Calib());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(IsQuantized(matcher.get()));

  nn::QuantTargets targets;
  matcher->classifier()->CollectQuantTargets("", &targets);
  EXPECT_EQ(report.value().num_linears,
            static_cast<int64_t>(targets.linears.size()));
  EXPECT_EQ(report.value().num_ffns,
            static_cast<int64_t>(targets.ffns.size()));
  EXPECT_GT(report.value().num_ffns, 0);
  EXPECT_EQ(report.value().calibration_pairs, 12);

  // Grad-free prediction now runs int8 (QuantMode defaults on) and stays
  // close to the fp32 answer.
  std::vector<double> int8 = matcher->MatchProbabilities(as, bs);
  ASSERT_EQ(int8.size(), fp32.size());
  for (size_t i = 0; i < fp32.size(); ++i) {
    EXPECT_GE(int8[i], 0.0);
    EXPECT_LE(int8[i], 1.0);
    EXPECT_NEAR(int8[i], fp32[i], 0.15) << "pair " << i;
  }

  // With QuantMode off the attached backends are bypassed entirely.
  {
    nn::QuantModeGuard fp32_only(false);
    std::vector<double> again = matcher->MatchProbabilities(as, bs);
    for (size_t i = 0; i < fp32.size(); ++i) {
      EXPECT_EQ(again[i], fp32[i]) << "pair " << i;
    }
  }

  // Detaching restores pure fp32 behavior bit for bit.
  ClearQuantization(matcher.get());
  EXPECT_FALSE(IsQuantized(matcher.get()));
  std::vector<double> cleared = matcher->MatchProbabilities(as, bs);
  for (size_t i = 0; i < fp32.size(); ++i) {
    EXPECT_EQ(cleared[i], fp32[i]) << "pair " << i;
  }
}

TEST_F(QuantMatcherTest, QuantizedCheckpointRoundTripIsBitIdentical) {
  const std::string fp32_path = "/tmp/emx_quant_test_fp32.params";
  const std::string quant_path = "/tmp/emx_quant_test_int8.params";
  const std::vector<std::string> as = {"lenovo thinkpad x1 carbon",
                                       "kitchenaid stand mixer"};
  const std::vector<std::string> bs = {"thinkpad x1 carbon gen 9",
                                       "kitchen aid artisan mixer"};

  auto original = MakeMatcher();
  ASSERT_TRUE(original->Save(fp32_path).ok());
  auto report = QuantizeMatcher(original.get(), Calib());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::vector<double> expected = original->MatchProbabilities(as, bs);
  ASSERT_TRUE(SaveQuantized(original.get(), quant_path).ok());

  // A fresh matcher gets the fp32 weights (for the non-quantized layers:
  // embeddings, layernorms, output head) plus the quantized checkpoint.
  // No calibration pass — the saved grids are the calibration.
  auto restored = MakeMatcher();
  ASSERT_TRUE(restored->Load(fp32_path).ok());
  Status load = LoadQuantized(restored.get(), quant_path);
  ASSERT_TRUE(load.ok()) << load.ToString();
  EXPECT_TRUE(IsQuantized(restored.get()));

  std::vector<double> got = restored->MatchProbabilities(as, bs);
  ASSERT_EQ(got.size(), expected.size());
  // The acceptance-criteria golden: save -> load -> Predict is
  // bit-identical to the freshly quantized model.
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "pair " << i;
  }

  std::filesystem::remove(fp32_path);
  std::filesystem::remove(quant_path);
}

TEST_F(QuantMatcherTest, SaveQuantizedRequiresQuantizedMatcher) {
  auto matcher = MakeMatcher();
  Status s = SaveQuantized(matcher.get(), "/tmp/emx_quant_test_unused.bin");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(QuantMatcherTest, LoadQuantizedRejectsWrongMagic) {
  const std::string path = "/tmp/emx_quant_test_badmagic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    const char garbage[] = "not a quantized checkpoint at all";
    out.write(garbage, sizeof(garbage));
  }
  auto matcher = MakeMatcher();
  Status s = LoadQuantized(matcher.get(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(IsQuantized(matcher.get()));
  std::filesystem::remove(path);
}

TEST_F(QuantMatcherTest, LoadQuantizedRejectsTruncatedFile) {
  const std::string path = "/tmp/emx_quant_test_trunc.bin";
  auto matcher = MakeMatcher();
  auto report = QuantizeMatcher(matcher.get(), Calib());
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(SaveQuantized(matcher.get(), path).ok());

  // Chop the checkpoint in half, landing mid-payload.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto fresh = MakeMatcher();
  Status s = LoadQuantized(fresh.get(), path);
  EXPECT_FALSE(s.ok());
  // The bounds checks reject a short payload before the read can fail, so
  // either code is a correct refusal.
  EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument ||
              s.code() == StatusCode::kIoError)
      << s.ToString();
  // A failed load leaves the matcher untouched.
  EXPECT_FALSE(IsQuantized(fresh.get()));
  std::filesystem::remove(path);
}

TEST_F(QuantMatcherTest, LoadQuantizedRejectsUnknownLayerName) {
  const std::string path = "/tmp/emx_quant_test_unknown.bin";
  {
    // A syntactically valid file whose single entry names a layer the
    // model does not have.
    std::ofstream out(path, std::ios::binary);
    const uint32_t magic = 0x454d5851, version = 1;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const uint64_t count = 1;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    const std::string name = "nope";
    const uint64_t len = name.size();
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(name.data(), static_cast<std::streamsize>(len));
    const int64_t in_dim = 2, out_dim = 2;
    out.write(reinterpret_cast<const char*>(&in_dim), sizeof(in_dim));
    out.write(reinterpret_cast<const char*>(&out_dim), sizeof(out_dim));
    const float scale = 0.1f;
    const int32_t zp = 128;
    out.write(reinterpret_cast<const char*>(&scale), sizeof(scale));
    out.write(reinterpret_cast<const char*>(&zp), sizeof(zp));
  }
  auto matcher = MakeMatcher();
  Status s = LoadQuantized(matcher.get(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_FALSE(IsQuantized(matcher.get()));
  std::filesystem::remove(path);
}

// ---- EMXM1 model container --------------------------------------------------

TEST_F(QuantMatcherTest, ModelFileFp32RoundTripIsBitIdentical) {
  const std::string path = "/tmp/emx_quant_test_fp32.emxm";
  const std::vector<std::string> as = {"lenovo thinkpad x1 carbon",
                                       "kitchenaid stand mixer"};
  const std::vector<std::string> bs = {"thinkpad x1 carbon gen 9",
                                       "kitchen aid artisan mixer"};
  auto original = MakeMatcher();
  std::vector<double> expected = original->MatchProbabilities(as, bs);
  ASSERT_TRUE(SaveModelFile(original.get(), path).ok());

  auto mapped = MakeMatcher();
  auto info = LoadModelFileMapped(mapped.get(), path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info.value().has_int8);
  EXPECT_GT(info.value().fp32_params, 0);
  EXPECT_FALSE(IsQuantized(mapped.get()));

  std::vector<double> got = mapped->MatchProbabilities(as, bs);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "pair " << i;
  }
  std::filesystem::remove(path);
}

TEST_F(QuantMatcherTest, ModelFileInt8RoundTripIsBitIdentical) {
  const std::string path = "/tmp/emx_quant_test_int8.emxm";
  const std::vector<std::string> as = {"lenovo thinkpad x1 carbon",
                                       "kitchenaid stand mixer"};
  const std::vector<std::string> bs = {"thinkpad x1 carbon gen 9",
                                       "kitchen aid artisan mixer"};
  auto original = MakeMatcher();
  auto report = QuantizeMatcher(original.get(), Calib());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::vector<double> expected = original->MatchProbabilities(as, bs);
  ASSERT_TRUE(SaveModelFile(original.get(), path).ok());

  // One container, no calibration, int8 kernels reading straight from the
  // mapping: logits must match the freshly quantized model bit for bit.
  auto mapped = MakeMatcher();
  auto info = LoadModelFileMapped(mapped.get(), path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info.value().has_int8);
  EXPECT_GT(info.value().int8_linears, 0);
  EXPECT_TRUE(IsQuantized(mapped.get()));

  std::vector<double> got = mapped->MatchProbabilities(as, bs);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "pair " << i;
  }
  std::filesystem::remove(path);
}

TEST_F(QuantMatcherTest, ModelFileEveryTruncationFailsCleanly) {
  const std::string path = "/tmp/emx_quant_test_trunc.emxm";
  auto original = MakeMatcher();
  auto report = QuantizeMatcher(original.get(), Calib());
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(SaveModelFile(original.get(), path).ok());

  auto fresh = MakeMatcher();
  const size_t bytes = emx::testing::ReadFileBytes(path).size();
  emx::testing::ExpectAllTruncationsFail(
      path,
      [&](const std::string& p) {
        return LoadModelFileMapped(fresh.get(), p).status();
      },
      /*stride=*/std::max<size_t>(1, bytes / 97),
      /*boundaries=*/{8, 12, 16, 24, 32, 40, 48, 56, 63, 64, 65});
  EXPECT_FALSE(IsQuantized(fresh.get())) << "failed load mutated the matcher";
  std::filesystem::remove(path);
}

TEST_F(QuantMatcherTest, ModelFileRejectsForeignArchitecture) {
  const std::string path = "/tmp/emx_quant_test_arch.emxm";
  auto original = MakeMatcher();
  ASSERT_TRUE(SaveModelFile(original.get(), path).ok());

  // Flip one byte of the manifest's architecture string in place.
  size_t arch_off = 0;
  {
    auto r = io::EmxmReader::Open(path);
    ASSERT_TRUE(r.ok());
    const io::Section* m = r.value()->Find("emxm:manifest");
    ASSERT_NE(m, nullptr);
    ASSERT_GT(m->bytes, 0u);
    arch_off = static_cast<size_t>(m->data - r.value()->mapping().data());
  }
  auto fresh = MakeMatcher();
  emx::testing::WithPatchedField<uint8_t>(
      path, arch_off, static_cast<uint8_t>('x'),
      [&](const std::string& patched) {
        auto info = LoadModelFileMapped(fresh.get(), patched);
        EXPECT_FALSE(info.ok());
        EXPECT_EQ(info.status().code(), StatusCode::kInvalidArgument);
      });
  std::filesystem::remove(path);
}

TEST_F(QuantMatcherTest, ModelFileMissingSectionLeavesMatcherUntouched) {
  const std::string path = "/tmp/emx_quant_test_missing.emxm";
  auto original = MakeMatcher();
  auto report = QuantizeMatcher(original.get(), Calib());
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(SaveModelFile(original.get(), path).ok());

  // Rename the first fp32 parameter section by flipping its leading 'p'
  // in the string table: every int8 section still validates, but the
  // fp32 attach must fail NotFound *before* any backend is installed.
  std::vector<uint8_t> bytes = emx::testing::ReadFileBytes(path);
  uint64_t strtab_off = 0;
  std::memcpy(&strtab_off, bytes.data() + 32, sizeof(strtab_off));
  ASSERT_EQ(bytes[strtab_off], 'p') << "expected a p:<param> name first";
  auto fresh = MakeMatcher();
  emx::testing::WithPatchedField<uint8_t>(
      path, static_cast<size_t>(strtab_off), static_cast<uint8_t>('x'),
      [&](const std::string& patched) {
        auto info = LoadModelFileMapped(fresh.get(), patched);
        EXPECT_FALSE(info.ok());
        EXPECT_EQ(info.status().code(), StatusCode::kNotFound);
        EXPECT_FALSE(IsQuantized(fresh.get()));
      });
  std::filesystem::remove(path);
}

TEST_F(QuantMatcherTest, QuantizedCheckpointEveryTruncationFailsCleanly) {
  const std::string path = "/tmp/emx_quant_test_qtrunc.bin";
  auto original = MakeMatcher();
  auto report = QuantizeMatcher(original.get(), Calib());
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(SaveQuantized(original.get(), path).ok());

  auto fresh = MakeMatcher();
  const size_t bytes = emx::testing::ReadFileBytes(path).size();
  emx::testing::ExpectAllTruncationsFail(
      path,
      [&](const std::string& p) { return LoadQuantized(fresh.get(), p); },
      /*stride=*/std::max<size_t>(1, bytes / 97),
      /*boundaries=*/{4, 8, 16, 24, 25, 32});
  EXPECT_FALSE(IsQuantized(fresh.get())) << "failed load mutated the matcher";
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace quant
}  // namespace emx
