#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/blocking.h"
#include "data/dataset_io.h"
#include "data/generators.h"

namespace emx {
namespace data {
namespace {

// ---- Dataset save/load --------------------------------------------------

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  GeneratorOptions opts;
  opts.scale = 0.01;
  auto ds = GenerateDataset(DatasetId::kWalmartAmazon, opts);

  const std::string dir = "/tmp/emx_dataset_io_test";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(SaveDataset(ds, dir).ok());

  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const EmDataset& l = loaded.value();
  EXPECT_EQ(l.name, ds.name);
  EXPECT_EQ(l.id, ds.id);
  EXPECT_EQ(l.serialize_only_attribute, ds.serialize_only_attribute);
  EXPECT_EQ(l.schema.attributes, ds.schema.attributes);
  ASSERT_EQ(l.train.size(), ds.train.size());
  ASSERT_EQ(l.valid.size(), ds.valid.size());
  ASSERT_EQ(l.test.size(), ds.test.size());
  for (size_t i = 0; i < ds.train.size(); ++i) {
    EXPECT_EQ(l.train[i].label, ds.train[i].label);
    EXPECT_EQ(l.train[i].a.values, ds.train[i].a.values);
    EXPECT_EQ(l.train[i].b.values, ds.train[i].b.values);
  }
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, AbtBuyKeepsSerializeOnlyAttribute) {
  GeneratorOptions opts;
  opts.scale = 0.005;
  auto ds = GenerateDataset(DatasetId::kAbtBuy, opts);
  const std::string dir = "/tmp/emx_dataset_io_test2";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(SaveDataset(ds, dir).ok());
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().serialize_only_attribute, 1);
  // Serialized text agrees with the original after a round trip.
  EXPECT_EQ(loaded.value().SerializeA(loaded.value().train[0]),
            ds.SerializeA(ds.train[0]));
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, LoadMissingDirectoryFails) {
  auto r = LoadDataset("/nonexistent/emx_dataset");
  EXPECT_FALSE(r.ok());
}

TEST(DatasetIoTest, LoadRejectsCorruptLabel) {
  const std::string dir = "/tmp/emx_dataset_io_bad";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream meta(dir + "/metadata.csv");
    meta << "name,dataset_id,serialize_only_attribute\nX,0,-1\n";
    std::ofstream t(dir + "/train.csv");
    t << "label,left_a,right_a\n7,foo,bar\n";  // label 7 invalid
    std::ofstream v(dir + "/valid.csv");
    v << "label,left_a,right_a\n";
    std::ofstream te(dir + "/test.csv");
    te << "label,left_a,right_a\n";
  }
  auto r = LoadDataset(dir);
  EXPECT_FALSE(r.ok());
  std::filesystem::remove_all(dir);
}

// ---- Blocking -------------------------------------------------------------

Schema ProductSchema() {
  Schema s;
  s.attributes = {"title"};
  return s;
}

Record Rec(const std::string& title) {
  Record r;
  r.values = {title};
  return r;
}

TEST(BlockingTest, SharedRareTokensBecomeCandidates) {
  TokenBlocker blocker;
  Schema schema = ProductSchema();
  std::vector<Record> right = {
      Rec("apple iphone zx55 silver"), Rec("asus zenfone k110 black"),
      Rec("sony camera q9 compact"), Rec("apple ipad m33 gold")};
  blocker.IndexRight(schema, right);
  EXPECT_EQ(blocker.indexed_size(), 4);

  std::vector<Record> left = {Rec("iphone zx55 by apple"),
                              Rec("zenfone k110 asus phone")};
  auto cands = blocker.Candidates(schema, left);
  // Left 0 must match right 0, left 1 must match right 1.
  bool found00 = false, found11 = false;
  for (auto& [l, r] : cands) {
    if (l == 0 && r == 0) found00 = true;
    if (l == 1 && r == 1) found11 = true;
    // No cross-brand nonsense with >= 2 shared rare tokens.
    EXPECT_FALSE(l == 0 && r == 2);
    EXPECT_FALSE(l == 1 && r == 2);
  }
  EXPECT_TRUE(found00);
  EXPECT_TRUE(found11);
}

TEST(BlockingTest, CommonTokensAreNotBlockingKeys) {
  TokenBlocker blocker;
  Schema schema = ProductSchema();
  // "the" appears in every record: must not produce candidates by itself.
  std::vector<Record> right = {Rec("the alpha one"), Rec("the beta two"),
                               Rec("the gamma three"), Rec("the delta four"),
                               Rec("the epsilon five")};
  blocker.IndexRight(schema, right);
  std::vector<Record> left = {Rec("the omega six")};
  auto cands = blocker.Candidates(schema, left);
  EXPECT_TRUE(cands.empty());
}

TEST(BlockingTest, MaxCandidatesPerRecordRespected) {
  BlockerOptions opts;
  opts.min_shared_tokens = 1;
  opts.max_candidates_per_record = 2;
  opts.max_token_frequency = 1.0;
  TokenBlocker blocker(opts);
  Schema schema = ProductSchema();
  std::vector<Record> right;
  for (int i = 0; i < 6; ++i) {
    right.push_back(Rec("shared token" + std::to_string(i)));
  }
  blocker.IndexRight(schema, right);
  auto cands = blocker.Candidates(schema, {Rec("shared thing")});
  EXPECT_LE(cands.size(), 2u);
}

TEST(BlockingTest, RecallOnGeneratedMatches) {
  // Blocking must retain the true matches of a generated dataset: index
  // the B sides of the matched pairs, query with the A sides, and check
  // that most (a, b) truths survive.
  GeneratorOptions gopts;
  gopts.scale = 0.02;
  auto ds = GenerateDataset(DatasetId::kDblpAcm, gopts);
  std::vector<Record> lefts, rights;
  for (const auto& p : ds.train) {
    if (p.label == 1) {
      lefts.push_back(p.a);
      rights.push_back(p.b);
    }
  }
  ASSERT_GT(lefts.size(), 10u);
  BlockerOptions opts;
  opts.min_shared_tokens = 2;
  opts.max_candidates_per_record = 10;
  TokenBlocker blocker(opts);
  blocker.IndexRight(ds.schema, rights);
  auto cands = blocker.Candidates(ds.schema, lefts);
  int64_t hits = 0;
  for (auto& [l, r] : cands) {
    if (l == r) ++hits;  // the i-th left truly matches the i-th right
  }
  const double recall = static_cast<double>(hits) / static_cast<double>(lefts.size());
  EXPECT_GT(recall, 0.8);
  // And it prunes the cross product substantially: a high reduction ratio
  // means few candidate pairs survived.
  const double ratio = TokenBlocker::ReductionRatio(
      static_cast<int64_t>(cands.size()), static_cast<int64_t>(lefts.size()),
      static_cast<int64_t>(rights.size()));
  EXPECT_GT(ratio, 0.5);
}

TEST(BlockingTest, ReductionRatioEdgeCases) {
  EXPECT_EQ(TokenBlocker::ReductionRatio(0, 0, 10), 0.0);
  EXPECT_DOUBLE_EQ(TokenBlocker::ReductionRatio(5, 10, 10), 0.95);
  // Nothing pruned: the ratio collapses to 0.
  EXPECT_DOUBLE_EQ(TokenBlocker::ReductionRatio(100, 10, 10), 0.0);
}

// Regression for the pre-fix semantics: ReductionRatio used to return the
// *survived* fraction |candidates|/(|left|*|right|) — the complement of
// Christen 2012's definition. Both values are pinned here so the two can
// never be swapped again silently.
TEST(BlockingTest, ReductionRatioIsComplementOfSurvivedFraction) {
  const double survived = TokenBlocker::SurvivedFraction(5, 10, 10);
  const double reduction = TokenBlocker::ReductionRatio(5, 10, 10);
  EXPECT_DOUBLE_EQ(survived, 0.05);   // what ReductionRatio wrongly returned
  EXPECT_DOUBLE_EQ(reduction, 0.95);  // the standard definition
  EXPECT_DOUBLE_EQ(survived + reduction, 1.0);
  // The empty cross product is 0 under both names.
  EXPECT_EQ(TokenBlocker::SurvivedFraction(0, 0, 10), 0.0);
  EXPECT_EQ(TokenBlocker::SurvivedFraction(0, 10, 0), 0.0);
}

TEST(BlockingTest, DfCutoffIsStrictFractionWithFloor) {
  // 8 records, max_token_frequency 0.25 -> cutoff 2.0 exactly. A token in
  // exactly 2 records sits *at* the fraction and must stay indexed; a
  // token in 3 records (0.375 > 0.25) must be pruned.
  BlockerOptions opts;
  opts.max_token_frequency = 0.25;
  opts.min_shared_tokens = 1;
  TokenBlocker blocker(opts);
  Schema schema = ProductSchema();
  std::vector<Record> right;
  // "edge" in records 0,1 (df 2 = cutoff); "over" in 0,1,2 (df 3 > cutoff);
  // the rest are distinct fillers.
  right.push_back(Rec("edge over alpha"));
  right.push_back(Rec("edge over beta"));
  right.push_back(Rec("over gamma delta"));
  for (int i = 0; i < 5; ++i) {
    right.push_back(Rec("filler" + std::to_string(i)));
  }
  blocker.IndexRight(schema, right);

  // "edge" still blocks; "over" no longer does.
  auto edge_cands = blocker.Candidates(schema, {Rec("edge")});
  EXPECT_EQ(edge_cands.size(), 2u);
  auto over_cands = blocker.Candidates(schema, {Rec("over")});
  EXPECT_TRUE(over_cands.empty());
}

TEST(BlockingTest, SmallCollectionFloorKeepsSingletonTokens) {
  // 3 records, max_token_frequency 0.25 -> raw cutoff 0.75, floored to 1:
  // singleton tokens survive (otherwise the whole index would empty), df-2
  // tokens are pruned (2 > 1).
  BlockerOptions opts;
  opts.max_token_frequency = 0.25;
  opts.min_shared_tokens = 1;
  TokenBlocker blocker(opts);
  Schema schema = ProductSchema();
  blocker.IndexRight(schema,
                     {Rec("solo twin"), Rec("twin other"), Rec("third")});
  EXPECT_EQ(blocker.Candidates(schema, {Rec("solo")}).size(), 1u);
  EXPECT_TRUE(blocker.Candidates(schema, {Rec("twin")}).empty());
}

TEST(BlockingTest, PrunedTokensDropTheirDfEntries) {
  // Every pruned token must also leave token_df_ — stale entries were an
  // unbounded leak when re-indexing large collections.
  TokenBlocker blocker;  // max_token_frequency 0.25
  Schema schema = ProductSchema();
  std::vector<Record> right;
  for (int i = 0; i < 8; ++i) {
    // "common" appears in every record and will be pruned.
    right.push_back(Rec("common unique" + std::to_string(i)));
  }
  blocker.IndexRight(schema, right);
  EXPECT_EQ(blocker.num_tracked_tokens(), blocker.num_index_tokens());
  EXPECT_EQ(blocker.num_index_tokens(), 8);  // the 8 unique tokens
}

}  // namespace
}  // namespace data
}  // namespace emx
