#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "tokenizers/byte_bpe.h"
#include "tokenizers/tokenizer.h"
#include "tokenizers/unigram.h"
#include "tokenizers/vocab.h"
#include "tokenizers/wordpiece.h"

namespace emx {
namespace tokenizers {
namespace {

std::vector<std::string> TestCorpus() {
  return {
      "the new iphone xs is now available in white red and silver",
      "apple iphone xs with 64 gb storage in silver",
      "asus zenfone 4 pro with amoled display is thin and light",
      "the zenfone 4 pro features an expansive display",
      "nokia pure view 9 powered by pure android a smart device",
      "robust design and long battery duration for heavy load",
      "the brand new iphone available in three colors white silver red",
      "storage options of 64 or 128 gb for the new apple device",
      "display and battery are the features buyers compare most",
      "pro devices feature amoled displays and robust storage",
  };
}

// ---- Vocab -------------------------------------------------------------

TEST(VocabTest, AddAndLookup) {
  Vocab v;
  int64_t a = v.AddToken("alpha");
  int64_t b = v.AddToken("beta");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(v.AddToken("alpha"), 0);  // idempotent
  EXPECT_EQ(v.size(), 2);
  EXPECT_EQ(v.TokenToId("beta"), 1);
  EXPECT_EQ(v.TokenToId("gamma"), -1);
  EXPECT_EQ(v.IdToToken(0), "alpha");
  EXPECT_TRUE(v.Contains("beta"));
}

TEST(VocabTest, SaveLoadRoundTrip) {
  Vocab v;
  v.AddToken("[PAD]");
  v.AddToken("hello");
  v.AddToken("##lo");
  std::string path = "/tmp/emx_vocab_test.txt";
  ASSERT_TRUE(v.Save(path).ok());
  auto loaded = Vocab::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 3);
  EXPECT_EQ(loaded.value().TokenToId("##lo"), 2);
  std::remove(path.c_str());
}

// ---- Pair encoding ----------------------------------------------------------

TEST(TruncatePairTest, LongestFirst) {
  std::vector<int64_t> a = {1, 2, 3, 4, 5, 6};
  std::vector<int64_t> b = {7, 8};
  TruncatePair(&a, &b, 5);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(TruncatePairTest, BothShrinkWhenEqual) {
  std::vector<int64_t> a = {1, 2, 3, 4};
  std::vector<int64_t> b = {5, 6, 7, 8};
  TruncatePair(&a, &b, 4);
  EXPECT_EQ(a.size() + b.size(), 4u);
  EXPECT_LE(a.size(), 2u + 1);
  EXPECT_LE(b.size(), 2u + 1);
}

// ---- WordPiece ---------------------------------------------------------------

class WordPieceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WordPieceTrainerOptions opts;
    opts.vocab_size = 200;
    opts.min_frequency = 1;
    tok_ = new WordPieceTokenizer(
        WordPieceTokenizer::Train(TestCorpus(), opts));
  }
  static void TearDownTestSuite() {
    delete tok_;
    tok_ = nullptr;
  }
  static WordPieceTokenizer* tok_;
};

WordPieceTokenizer* WordPieceFixture::tok_ = nullptr;

TEST_F(WordPieceFixture, SpecialsOccupyFirstSlots) {
  EXPECT_EQ(tok_->specials().pad, 0);
  EXPECT_EQ(tok_->specials().unk, 1);
  EXPECT_EQ(tok_->specials().cls, 2);
  EXPECT_EQ(tok_->specials().sep, 3);
  EXPECT_EQ(tok_->specials().mask, 4);
  EXPECT_EQ(tok_->vocab().IdToToken(0), "[PAD]");
}

TEST_F(WordPieceFixture, VocabSizeRespected) {
  EXPECT_LE(tok_->vocab_size(), 200);
  EXPECT_GT(tok_->vocab_size(), 30);  // alphabet + merges actually learned
}

TEST_F(WordPieceFixture, FrequentWordIsSingleToken) {
  // "iphone" appears often; it should end up a single piece (or at most 2).
  auto pieces = tok_->TokenizeWord("iphone");
  EXPECT_LE(pieces.size(), 2u);
  EXPECT_NE(pieces[0], "[UNK]");
}

TEST_F(WordPieceFixture, ContinuationPrefixUsed) {
  // A word unseen in training decomposes into pieces where non-initial
  // ones carry "##".
  auto pieces = tok_->TokenizeWord("displaying");
  ASSERT_GE(pieces.size(), 2u);
  for (size_t i = 1; i < pieces.size(); ++i) {
    EXPECT_TRUE(pieces[i].rfind("##", 0) == 0) << pieces[i];
  }
}

TEST_F(WordPieceFixture, UnknownCharactersBecomeUnk) {
  auto pieces = tok_->TokenizeWord("\xc3\xa9\xc3\xa9");  // unseen bytes
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "[UNK]");
}

TEST_F(WordPieceFixture, RoundTripDecode) {
  std::string text = "the new iphone in silver";
  auto ids = tok_->Encode(text);
  EXPECT_EQ(tok_->Decode(ids), text);
}

TEST_F(WordPieceFixture, EncodeLowercases) {
  auto a = tok_->Encode("IPHONE");
  auto b = tok_->Encode("iphone");
  EXPECT_EQ(a, b);
}

TEST_F(WordPieceFixture, EncodePairLayout) {
  EncodedPair p = tok_->EncodePair("iphone xs", "zenfone pro", 16);
  ASSERT_EQ(p.ids.size(), 16u);
  ASSERT_EQ(p.segment_ids.size(), 16u);
  ASSERT_EQ(p.attention_mask.size(), 16u);
  EXPECT_EQ(p.ids[0], tok_->specials().cls);
  // Exactly two separators.
  EXPECT_EQ(std::count(p.ids.begin(), p.ids.end(), tok_->specials().sep), 2);
  // Segment ids: 0 until the first [SEP] inclusive, then 1 for entity B.
  auto first_sep =
      std::find(p.ids.begin(), p.ids.end(), tok_->specials().sep);
  size_t sep_pos = static_cast<size_t>(first_sep - p.ids.begin());
  EXPECT_EQ(p.segment_ids[sep_pos], 0);
  EXPECT_EQ(p.segment_ids[sep_pos + 1], 1);
  // Padding is masked.
  for (size_t i = 0; i < p.ids.size(); ++i) {
    if (p.ids[i] == tok_->specials().pad) EXPECT_EQ(p.attention_mask[i], 1.0f);
  }
}

TEST_F(WordPieceFixture, EncodePairTruncatesToMaxLen) {
  std::string long_text;
  for (int i = 0; i < 50; ++i) long_text += "display battery storage ";
  EncodedPair p = tok_->EncodePair(long_text, long_text, 24);
  EXPECT_EQ(p.ids.size(), 24u);
  // No padding when fully occupied.
  EXPECT_EQ(std::count(p.ids.begin(), p.ids.end(), tok_->specials().pad), 0);
}

TEST_F(WordPieceFixture, EncodeSingleLayout) {
  EncodedPair p = tok_->EncodeSingle("iphone", 8);
  EXPECT_EQ(p.ids.size(), 8u);
  EXPECT_EQ(p.ids[0], tok_->specials().cls);
  EXPECT_EQ(std::count(p.ids.begin(), p.ids.end(), tok_->specials().sep), 1);
}

TEST_F(WordPieceFixture, SaveLoadPreservesTokenization) {
  std::string path = "/tmp/emx_wp_vocab.txt";
  ASSERT_TRUE(tok_->vocab().Save(path).ok());
  auto loaded = WordPieceTokenizer::Load(path);
  ASSERT_TRUE(loaded.ok());
  std::string text = "zenfone 4 pro with amoled display";
  EXPECT_EQ(loaded.value().Encode(text), tok_->Encode(text));
  std::remove(path.c_str());
}

TEST(WordPieceTest, FromVocabRejectsMissingSpecials) {
  Vocab v;
  v.AddToken("[PAD]");
  v.AddToken("foo");
  auto r = WordPieceTokenizer::FromVocab(std::move(v), true);
  EXPECT_FALSE(r.ok());
}

// ---- Byte-level BPE -------------------------------------------------------------

class ByteBpeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ByteBpeTrainerOptions opts;
    opts.vocab_size = 240;
    opts.min_frequency = 1;
    tok_ = new ByteBpeTokenizer(ByteBpeTokenizer::Train(TestCorpus(), opts));
  }
  static void TearDownTestSuite() {
    delete tok_;
    tok_ = nullptr;
  }
  static ByteBpeTokenizer* tok_;
};

ByteBpeTokenizer* ByteBpeFixture::tok_ = nullptr;

TEST(ByteBpePreTokenizeTest, SplitsContractionsAndClasses) {
  auto pre = ByteBpeTokenizer::PreTokenize("it's 5.5-inch, nice");
  // Expected: "Ġit" "'s" "Ġ5" "." "5" "-" "inch" "," "Ġnice"
  ASSERT_EQ(pre.size(), 9u);
  EXPECT_EQ(pre[1], "'s");
  EXPECT_EQ(pre[3], ".");
  EXPECT_EQ(pre[5], "-");
  EXPECT_EQ(pre[8], std::string("\xc4\xa0") + "nice");
}

TEST(ByteBpePreTokenizeTest, LeadingSpaceMarker) {
  auto pre = ByteBpeTokenizer::PreTokenize("hello world");
  ASSERT_EQ(pre.size(), 2u);
  EXPECT_EQ(pre[0], std::string("\xc4\xa0") + "hello");
  EXPECT_EQ(pre[1], std::string("\xc4\xa0") + "world");
}

TEST_F(ByteBpeFixture, SpecialsRoberta) {
  EXPECT_EQ(tok_->vocab().IdToToken(tok_->specials().cls), "<s>");
  EXPECT_EQ(tok_->vocab().IdToToken(tok_->specials().sep), "</s>");
  EXPECT_EQ(tok_->vocab().IdToToken(tok_->specials().mask), "<mask>");
}

TEST_F(ByteBpeFixture, MergesLearned) {
  EXPECT_GT(tok_->num_merges(), 20);
}

TEST_F(ByteBpeFixture, FrequentWordFewPieces) {
  auto pieces = tok_->BpeWord(std::string("\xc4\xa0") + "iphone");
  EXPECT_LE(pieces.size(), 3u);
}

TEST_F(ByteBpeFixture, NoUnkForArbitraryAscii) {
  // Byte-level coverage: any ASCII string tokenizes without <unk>.
  auto ids = tok_->Encode("zzzqqq 999 @@@");
  for (int64_t id : ids) EXPECT_NE(id, tok_->specials().unk);
}

TEST_F(ByteBpeFixture, RoundTripDecode) {
  std::string text = "the new iphone with amoled display";
  EXPECT_EQ(tok_->Decode(tok_->Encode(text)), text);
}

TEST_F(ByteBpeFixture, SaveLoadPreservesTokenization) {
  std::string vp = "/tmp/emx_bpe_vocab.txt";
  std::string mp = "/tmp/emx_bpe_merges.txt";
  ASSERT_TRUE(tok_->Save(vp, mp).ok());
  auto loaded = ByteBpeTokenizer::Load(vp, mp);
  ASSERT_TRUE(loaded.ok());
  std::string text = "pure android with 128 gb storage";
  EXPECT_EQ(loaded.value().Encode(text), tok_->Encode(text));
  std::remove(vp.c_str());
  std::remove(mp.c_str());
}

TEST_F(ByteBpeFixture, EncodePairUsesRobertaSpecials) {
  EncodedPair p = tok_->EncodePair("iphone", "zenfone", 12);
  EXPECT_EQ(p.ids[0], tok_->specials().cls);
  EXPECT_EQ(std::count(p.ids.begin(), p.ids.end(), tok_->specials().sep), 2);
}

// ---- Unigram / SentencePiece ------------------------------------------------------

class UnigramFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UnigramTrainerOptions opts;
    opts.vocab_size = 220;
    opts.em_iterations = 3;
    tok_ = new UnigramTokenizer(UnigramTokenizer::Train(TestCorpus(), opts));
  }
  static void TearDownTestSuite() {
    delete tok_;
    tok_ = nullptr;
  }
  static UnigramTokenizer* tok_;
};

UnigramTokenizer* UnigramFixture::tok_ = nullptr;

TEST_F(UnigramFixture, VocabTargetRespected) {
  EXPECT_LE(tok_->vocab_size(), 220);
  EXPECT_GT(tok_->vocab_size(), 40);
}

TEST_F(UnigramFixture, SpecialsXlnet) {
  EXPECT_EQ(tok_->vocab().IdToToken(tok_->specials().cls), "<cls>");
  EXPECT_EQ(tok_->vocab().IdToToken(tok_->specials().sep), "<sep>");
}

TEST_F(UnigramFixture, TokensCarrySpaceMarker) {
  auto toks = tok_->Tokenize("iphone display");
  ASSERT_GE(toks.size(), 2u);
  // First piece of each word starts with the marker.
  EXPECT_EQ(toks[0].rfind(kUnigramSpaceMarker, 0), 0u);
}

TEST_F(UnigramFixture, SegmentationIsMostProbable) {
  // Segmenting a frequent word should produce few pieces.
  std::string marked = std::string(kUnigramSpaceMarker) + "iphone";
  auto pieces = tok_->SegmentWord(marked);
  EXPECT_LE(pieces.size(), 3u);
  // Concatenation reproduces the input.
  std::string joined;
  for (const auto& p : pieces) joined += p;
  EXPECT_EQ(joined, marked);
}

TEST_F(UnigramFixture, ViterbiConcatAlwaysReconstructs) {
  for (const auto& word : {"display", "unseenzzz", "a", "4"}) {
    std::string marked = std::string(kUnigramSpaceMarker) + word;
    auto pieces = tok_->SegmentWord(marked);
    std::string joined;
    for (const auto& p : pieces) joined += p;
    EXPECT_EQ(joined, marked) << word;
  }
}

TEST_F(UnigramFixture, RoundTripDecode) {
  std::string text = "the new iphone in silver";
  auto ids = tok_->Encode(text);
  EXPECT_EQ(tok_->Decode(ids), text);
}

TEST_F(UnigramFixture, SaveLoadPreservesTokenization) {
  std::string path = "/tmp/emx_unigram_vocab.txt";
  ASSERT_TRUE(tok_->Save(path).ok());
  auto loaded = UnigramTokenizer::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::string text = "robust design and long battery duration";
  EXPECT_EQ(loaded.value().Encode(text), tok_->Encode(text));
  std::remove(path.c_str());
}

TEST_F(UnigramFixture, PieceLogProbsAreNegative) {
  std::string marked = std::string(kUnigramSpaceMarker) + "the";
  for (const auto& p : tok_->SegmentWord(marked)) {
    EXPECT_LT(tok_->PieceLogProb(p), 0.0f);
    EXPECT_GT(tok_->PieceLogProb(p), -21.0f);
  }
}

// ---- Cross-tokenizer property tests ------------------------------------------------

class AllTokenizersTest : public ::testing::TestWithParam<int> {
 protected:
  static const Tokenizer& Get(int which) {
    static WordPieceTokenizer* wp = [] {
      WordPieceTrainerOptions o;
      o.vocab_size = 180;
      o.min_frequency = 1;
      return new WordPieceTokenizer(WordPieceTokenizer::Train(TestCorpus(), o));
    }();
    static ByteBpeTokenizer* bpe = [] {
      ByteBpeTrainerOptions o;
      o.vocab_size = 220;
      o.min_frequency = 1;
      return new ByteBpeTokenizer(ByteBpeTokenizer::Train(TestCorpus(), o));
    }();
    static UnigramTokenizer* uni = [] {
      UnigramTrainerOptions o;
      o.vocab_size = 200;
      o.em_iterations = 2;
      return new UnigramTokenizer(UnigramTokenizer::Train(TestCorpus(), o));
    }();
    switch (which) {
      case 0:
        return *wp;
      case 1:
        return *bpe;
      default:
        return *uni;
    }
  }
};

TEST_P(AllTokenizersTest, PairEncodingInvariants) {
  const Tokenizer& tok = Get(GetParam());
  for (int64_t max_len : {8, 16, 32, 64}) {
    EncodedPair p = tok.EncodePair(
        "apple iphone xs with 64 gb storage in silver",
        "asus zenfone 4 pro with amoled display", max_len);
    ASSERT_EQ(static_cast<int64_t>(p.ids.size()), max_len);
    ASSERT_EQ(p.ids.size(), p.segment_ids.size());
    ASSERT_EQ(p.ids.size(), p.attention_mask.size());
    EXPECT_EQ(p.ids[0], tok.specials().cls);
    // All ids in range.
    for (int64_t id : p.ids) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, tok.vocab_size());
    }
    // Segments are 0 then 1 then 0 (padding); never 1 -> 0 -> 1.
    bool seen_pad = false;
    for (size_t i = 0; i < p.ids.size(); ++i) {
      if (p.attention_mask[i] == 1.0f) seen_pad = true;
      if (seen_pad) EXPECT_EQ(p.segment_ids[i], 0);
    }
  }
}

TEST_P(AllTokenizersTest, EncodeIsDeterministic) {
  const Tokenizer& tok = Get(GetParam());
  std::string text = "nokia pure view 9 powered by pure android";
  EXPECT_EQ(tok.Encode(text), tok.Encode(text));
}

TEST_P(AllTokenizersTest, EmptyTextEncodesToEmpty) {
  const Tokenizer& tok = Get(GetParam());
  EXPECT_TRUE(tok.Encode("").empty());
  EncodedPair p = tok.EncodePair("", "", 8);
  EXPECT_EQ(static_cast<int64_t>(p.ids.size()), 8);
}

INSTANTIATE_TEST_SUITE_P(WordPieceBpeUnigram, AllTokenizersTest,
                         ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0:
                               return std::string("WordPiece");
                             case 1:
                               return std::string("ByteBpe");
                             default:
                               return std::string("Unigram");
                           }
                         });

}  // namespace
}  // namespace tokenizers
}  // namespace emx
