// Tests for emx::obs — the strict JSON parser/emitters, the metrics
// primitives and registry (including concurrent writers, run under the TSan
// CI job), and the trace-span round trip through the chrome-trace exporter
// with nested and cross-thread spans.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace emx {
namespace obs {
namespace {

// ---- JSON emit helpers -------------------------------------------------

TEST(JsonEmitTest, AppendJsonDoubleFinite) {
  std::string out;
  AppendJsonDouble(&out, 1.5);
  EXPECT_EQ(out, "1.500");
  out.clear();
  AppendJsonDouble(&out, -0.25, 2);
  EXPECT_EQ(out, "-0.25");
}

TEST(JsonEmitTest, AppendJsonDoubleSanitizesNonFinite) {
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    std::string out;
    AppendJsonDouble(&out, bad);
    EXPECT_EQ(out, "0.000") << bad;
  }
}

TEST(JsonEmitTest, AppendJsonStringEscapes) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\n\t\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(out, &v, &error)) << error;
  EXPECT_EQ(v.string_value, "a\"b\\c\n\t\x01");
}

// ---- Strict parser -----------------------------------------------------

TEST(JsonParseTest, ParsesDocument) {
  const std::string doc =
      R"({"a": 1, "b": [1.5, -2e3, "x"], "c": {"d": true, "e": null}})";
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(doc, &v, &error)) << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.Find("a")->number, 1);
  const JsonValue* b = v.Find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_DOUBLE_EQ(b->array[1].number, -2000);
  EXPECT_EQ(b->array[2].string_value, "x");
  const JsonValue* c = v.Find("c");
  ASSERT_TRUE(c != nullptr);
  EXPECT_TRUE(c->Find("d")->bool_value);
  EXPECT_EQ(c->Find("e")->type, JsonValue::Type::kNull);
}

TEST(JsonParseTest, RejectsNonFiniteLiterals) {
  // The whole point of "strict": the printf %f bug class must not parse.
  for (const char* bad :
       {"nan", "NaN", "inf", "Infinity", "-inf", "-Infinity",
        "{\"x\": nan}", "{\"x\": inf}", "[1, -nan(ind)]"}) {
    EXPECT_FALSE(JsonParse(bad, nullptr, nullptr)) << bad;
  }
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\": 1,}", "01", "1.", ".5", "1e", "+1",
        "\"unterminated", "{\"a\" 1}", "{a: 1}", "[1] garbage",
        "\"bad\\q\"", "tru", "{\"a\": 1} {\"b\": 2}"}) {
    EXPECT_FALSE(JsonParse(bad, nullptr, nullptr)) << bad;
  }
}

TEST(JsonParseTest, ReportsErrorOffset) {
  std::string error;
  EXPECT_FALSE(JsonParse("{\"a\": nan}", nullptr, &error));
  EXPECT_NE(error.find("offset"), std::string::npos) << error;
}

TEST(JsonParseTest, UnicodeEscapes) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(R"("Aé€")", &v, &error)) << error;
  EXPECT_EQ(v.string_value, "A\xc3\xa9\xe2\x82\xac");  // A, é, €
}

// ---- Metrics primitives ------------------------------------------------

TEST(MetricsTest, CounterAndGauge) {
  Counter c;
  c.Add(3);
  c.Add();
  EXPECT_EQ(c.Value(), 4);
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Max(1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);  // Max never lowers
  g.Max(7.0);
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  Histogram h(LinearBuckets(0, 1, 5));  // bounds 0,1,2,3,4
  h.Record(0);
  h.Record(1);
  h.Record(1);
  h.Record(4);
  h.Record(5);   // beyond last bound -> overflow, never clamped
  h.Record(99);  // overflow
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 0);
  EXPECT_EQ(h.bucket_count(4), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 110);
  EXPECT_NEAR(h.mean(), 110.0 / 6.0, 1e-12);
}

TEST(MetricsTest, ExponentialBuckets) {
  std::vector<double> b = ExponentialBuckets(1, 10, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1);
  EXPECT_DOUBLE_EQ(b[3], 1000);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry r;
  Counter* a = r.GetCounter("x");
  Counter* b = r.GetCounter("x");
  EXPECT_EQ(a, b);
  Histogram* h1 = r.GetHistogram("h", LinearBuckets(0, 1, 3));
  Histogram* h2 = r.GetHistogram("h", LinearBuckets(0, 1, 99));
  EXPECT_EQ(h1, h2);  // bounds of the first registration win
  EXPECT_EQ(h1->bounds().size(), 3u);
}

TEST(MetricsTest, RegistryToJsonStrictParses) {
  MetricsRegistry r;
  r.GetCounter("c.one")->Add(5);
  r.GetGauge("g.one")->Set(std::nan(""));  // sanitized on export
  Histogram* h = r.GetHistogram("h.one", LinearBuckets(0, 1, 3));
  h->Record(1);
  h->Record(100);
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(r.ToJson(), &v, &error)) << error << "\n" << r.ToJson();
  EXPECT_DOUBLE_EQ(v.Find("counters")->Find("c.one")->number, 5);
  EXPECT_DOUBLE_EQ(v.Find("gauges")->Find("g.one")->number, 0);  // nan -> 0
  const JsonValue* hv = v.Find("histograms")->Find("h.one");
  ASSERT_TRUE(hv != nullptr);
  EXPECT_EQ(hv->Find("counts")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(hv->Find("overflow")->number, 1);
  EXPECT_DOUBLE_EQ(hv->Find("count")->number, 2);
}

TEST(MetricsTest, RegistrySnapshotUnderConcurrentWriters) {
  // Writers hammer all three metric kinds while a reader snapshots
  // repeatedly; run under TSan in CI. Totals must be exact afterwards.
  MetricsRegistry r;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      JsonValue v;
      std::string error;
      ASSERT_TRUE(JsonParse(r.ToJson(), &v, &error)) << error;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&r, t] {
      Counter* c = r.GetCounter("w.count");
      Gauge* g = r.GetGauge("w.gauge");
      Histogram* h = r.GetHistogram("w.hist", LinearBuckets(0, 1, 8));
      for (int i = 0; i < kIters; ++i) {
        c->Add(1);
        g->Max(static_cast<double>(t * kIters + i));
        h->Record(static_cast<double>(i % 10));  // 8,9 overflow
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(r.GetCounter("w.count")->Value(), kThreads * kIters);
  Histogram* h = r.GetHistogram("w.hist", {});
  EXPECT_EQ(h->count(), kThreads * kIters);
  EXPECT_EQ(h->overflow(), kThreads * kIters / 5);  // 2 of every 10
  EXPECT_DOUBLE_EQ(r.GetGauge("w.gauge")->Value(),
                   static_cast<double>(kThreads * kIters - 1));
}

// ---- Trace spans + exporter --------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StopProfiling();
    ClearTrace();
  }
  void TearDown() override {
    StopProfiling();
    ClearTrace();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  EXPECT_FALSE(ProfilingEnabled());
  { EMX_TRACE_SPAN("should.not.appear"); }
  TraceInstant("nor.this");
  TraceCounterValue("nor.that", 1);
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST_F(TraceTest, NestedSpansRoundTripThroughExporter) {
  StartProfiling();
  {
    EMX_TRACE_SPAN("outer", [] { return KeyValues({{"n", 3}}); });
    {
      EMX_TRACE_SPAN("inner");
      TraceInstant("tick");
    }
  }
  StopProfiling();
  EXPECT_EQ(TraceEventCount(), 3u);

  const std::string json = ExportChromeTrace();
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(json, &v, &error)) << error << "\n" << json;
  const JsonValue* events = v.Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  ASSERT_EQ(events->array.size(), 3u);

  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  const JsonValue* tick = nullptr;
  for (const JsonValue& e : events->array) {
    const std::string& name = e.Find("name")->string_value;
    if (name == "outer") outer = &e;
    if (name == "inner") inner = &e;
    if (name == "tick") tick = &e;
  }
  ASSERT_TRUE(outer != nullptr && inner != nullptr && tick != nullptr);
  EXPECT_EQ(outer->Find("ph")->string_value, "X");
  EXPECT_EQ(tick->Find("ph")->string_value, "i");
  EXPECT_DOUBLE_EQ(outer->Find("args")->Find("n")->number, 3);
  // Nesting: inner lies within [outer.ts, outer.ts + outer.dur], and both
  // events landed on the same thread track.
  const double o_ts = outer->Find("ts")->number;
  const double o_end = o_ts + outer->Find("dur")->number;
  const double i_ts = inner->Find("ts")->number;
  const double i_end = i_ts + inner->Find("dur")->number;
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_end, o_end + 1e-3);
  EXPECT_DOUBLE_EQ(outer->Find("tid")->number, inner->Find("tid")->number);
}

TEST_F(TraceTest, ThreadsGetDistinctTracksAndAllEventsExport) {
  StartProfiling();
  constexpr int kThreads = 3;
  constexpr int kSpans = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        EMX_TRACE_SPAN("worker.span");
      }
    });
  }
  for (auto& t : threads) t.join();
  StopProfiling();

  const std::string json = ExportChromeTrace();
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(json, &v, &error)) << error;
  const JsonValue* events = v.Find("traceEvents");
  ASSERT_TRUE(events != nullptr);
  std::vector<double> tids;
  int count = 0;
  for (const JsonValue& e : events->array) {
    if (e.Find("name")->string_value != "worker.span") continue;
    ++count;
    const double tid = e.Find("tid")->number;
    if (std::find(tids.begin(), tids.end(), tid) == tids.end()) {
      tids.push_back(tid);
    }
  }
  EXPECT_EQ(count, kThreads * kSpans);
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

TEST_F(TraceTest, ExportWhileRecordingIsSafe) {
  // The TSan-relevant case: exporter reads buffers with acquire loads while
  // owner threads keep appending.
  StartProfiling();
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EMX_TRACE_SPAN("concurrent.span");
    }
  });
  for (int i = 0; i < 20; ++i) {
    JsonValue v;
    std::string error;
    ASSERT_TRUE(JsonParse(ExportChromeTrace(), &v, &error)) << error;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  StopProfiling();
}

TEST_F(TraceTest, FullBufferDropsAndCounts) {
  ObsOptions opts;
  opts.max_events_per_thread = 4;
  StartProfiling(opts);
  std::thread t([] {
    // Fresh thread => fresh buffer with the tiny capacity above.
    for (int i = 0; i < 10; ++i) {
      EMX_TRACE_SPAN("cap.span");
    }
  });
  t.join();
  StopProfiling();
  EXPECT_EQ(TraceDroppedCount(), 6u);
  // The drop count is visible in the export for trust in partial traces.
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(ExportChromeTrace(), &v, &error)) << error;
  EXPECT_DOUBLE_EQ(v.Find("otherData")->Find("dropped")->number, 6);
}

TEST_F(TraceTest, CounterEventsCarryValues) {
  StartProfiling();
  TraceCounterValue("depth", 7.5);
  StopProfiling();
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(ExportChromeTrace(), &v, &error)) << error;
  const JsonValue& e = v.Find("traceEvents")->array.at(0);
  EXPECT_EQ(e.Find("ph")->string_value, "C");
  EXPECT_DOUBLE_EQ(e.Find("args")->Find("value")->number, 7.5);
}

TEST_F(TraceTest, LazyArgsOnlyRunWhenEnabled) {
  int evaluations = 0;
  {
    EMX_TRACE_SPAN("lazy", [&] {
      ++evaluations;
      return std::string("{}");
    });
  }
  EXPECT_EQ(evaluations, 0);
  StartProfiling();
  {
    EMX_TRACE_SPAN("lazy", [&] {
      ++evaluations;
      return std::string("{}");
    });
  }
  StopProfiling();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(TraceTest, StreamingExportMatchesStringExport) {
  StartProfiling();
  for (int i = 0; i < 200; ++i) {
    EMX_TRACE_SPAN("span", [i] { return KeyValues({{"i", i}}); });
    TraceInstant("tick");
  }
  StopProfiling();

  const std::string whole = ExportChromeTrace();

  // A tiny chunk size forces many flushes; the bytes must be identical to
  // the one-string export and still strictly parse.
  TraceExporter exporter(/*chunk_bytes=*/64);
  std::ostringstream streamed;
  ASSERT_TRUE(exporter.ExportTo(streamed));
  EXPECT_EQ(streamed.str(), whole);

  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(streamed.str(), &v, &error)) << error;
  const JsonValue* events = v.Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  EXPECT_EQ(events->array.size(), 400u);
}

TEST_F(TraceTest, StreamingExportReportsStreamFailure) {
  StartProfiling();
  TraceInstant("one");
  StopProfiling();
  std::ostringstream os;
  os.setstate(std::ios::failbit);
  TraceExporter exporter;
  EXPECT_FALSE(exporter.ExportTo(os));
}

TEST_F(TraceTest, StreamingExportOfEmptyBufferIsValidJson) {
  TraceExporter exporter(/*chunk_bytes=*/16);
  std::ostringstream os;
  ASSERT_TRUE(exporter.ExportTo(os));
  JsonValue v;
  std::string error;
  ASSERT_TRUE(JsonParse(os.str(), &v, &error)) << error << "\n" << os.str();
  const JsonValue* events = v.Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  EXPECT_TRUE(events->array.empty());
}

}  // namespace
}  // namespace obs
}  // namespace emx
