#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/entity_matcher.h"
#include "core/experiment.h"
#include "data/generators.h"
#include "pretrain/model_zoo.h"
#include "tensor/tensor_ops.h"

namespace emx {
namespace core {
namespace {

/// Tiny zoo shared across tests (pre-trains once per binary run).
class CoreFixture : public ::testing::Test {
 protected:
  static pretrain::ZooOptions Zoo() {
    pretrain::ZooOptions zoo;
    zoo.cache_dir = "/tmp/emx_zoo_core_test";
    zoo.vocab_size = 500;
    zoo.corpus.num_documents = 150;
    zoo.pretrain.steps = 30;
    zoo.pretrain.batch_size = 8;
    zoo.pretrain.data.max_seq_len = 32;
    return zoo;
  }

  static EntityMatcher MakeMatcher(models::Architecture arch) {
    auto bundle = pretrain::GetPretrained(arch, Zoo());
    EXPECT_TRUE(bundle.ok()) << bundle.status().ToString();
    return EntityMatcher(std::move(bundle).value());
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all("/tmp/emx_zoo_core_test");
  }
};

TEST_F(CoreFixture, BuildBatchLayout) {
  EntityMatcher matcher = MakeMatcher(models::Architecture::kBert);
  models::Batch b = matcher.BuildBatch({"iphone silver", "zenfone pro"},
                                       {"apple iphone", "asus zenfone"}, 24);
  EXPECT_EQ(b.batch_size, 2);
  EXPECT_EQ(b.seq_len, 24);
  EXPECT_EQ(b.ids.size(), 48u);
  EXPECT_EQ(b.segment_ids.size(), 48u);
  EXPECT_EQ(b.attention_mask.shape(), (Shape{2, 1, 1, 24}));
  EXPECT_EQ(b.ids[0], matcher.tokenizer().specials().cls);
  EXPECT_EQ(b.ids[24], matcher.tokenizer().specials().cls);
}

TEST_F(CoreFixture, PredictReturnsLabelPerPair) {
  EntityMatcher matcher = MakeMatcher(models::Architecture::kDistilBert);
  data::GeneratorOptions gopts;
  gopts.scale = 0.02;
  auto ds = data::GenerateDataset(data::DatasetId::kDblpAcm, gopts);
  auto preds = matcher.Predict(ds, ds.test);
  ASSERT_EQ(preds.size(), ds.test.size());
  for (int64_t p : preds) EXPECT_TRUE(p == 0 || p == 1);
}

TEST_F(CoreFixture, FineTuneSeriesShape) {
  EntityMatcher matcher = MakeMatcher(models::Architecture::kBert);
  data::GeneratorOptions gopts;
  gopts.scale = 0.01;
  auto ds = data::GenerateDataset(data::DatasetId::kDblpAcm, gopts);
  FineTuneOptions ft;
  ft.epochs = 2;
  ft.max_seq_len = 32;
  auto series = matcher.FineTune(ds, ft, /*eval_each_epoch=*/true);
  // Zero-shot record + one per epoch.
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].epoch, 0);
  EXPECT_EQ(series[2].epoch, 2);
  EXPECT_GT(series[1].seconds, 0.0);
  // Without per-epoch eval only the final record is returned.
  auto short_series = matcher.FineTune(ds, ft, /*eval_each_epoch=*/false);
  ASSERT_EQ(short_series.size(), 1u);
  EXPECT_EQ(short_series[0].epoch, 2);
}

TEST_F(CoreFixture, FineTuneReducesTrainingLoss) {
  // With a briefly pre-trained tiny model the headline F1 needs far more
  // compute than a unit test allows (see EXPERIMENTS.md on the
  // pre-training scale gate), so this test asserts the training mechanics:
  // the loss drops substantially below the class-prior entropy.
  EntityMatcher matcher = MakeMatcher(models::Architecture::kBert);
  data::GeneratorOptions gopts;
  gopts.scale = 0.04;
  gopts.apply_dirty = false;
  auto ds = data::GenerateDataset(data::DatasetId::kDblpAcm, gopts);
  FineTuneOptions ft;
  ft.epochs = 6;
  ft.max_seq_len = 40;
  ft.learning_rate = 1e-3f;
  auto series = matcher.FineTune(ds, ft, /*eval_each_epoch=*/true);
  ASSERT_EQ(series.size(), 7u);
  const double first_loss = series[1].train_loss;
  const double last_loss = series.back().train_loss;
  EXPECT_LT(last_loss, first_loss * 0.97);
}

TEST_F(CoreFixture, MatchApiIsConsistentWithProbability) {
  EntityMatcher matcher = MakeMatcher(models::Architecture::kRoberta);
  const std::string a = "apple iphone xs 64 gb silver";
  const std::string b = "iphone xs by apple in silver";
  const double p = matcher.MatchProbability(a, b);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  EXPECT_EQ(matcher.Match(a, b), p >= 0.5);
}

TEST_F(CoreFixture, SaveLoadRoundTrip) {
  EntityMatcher m1 = MakeMatcher(models::Architecture::kBert);
  EntityMatcher m2 = MakeMatcher(models::Architecture::kBert);
  data::GeneratorOptions gopts;
  gopts.scale = 0.01;
  auto ds = data::GenerateDataset(data::DatasetId::kWalmartAmazon, gopts);
  FineTuneOptions ft;
  ft.epochs = 1;
  ft.max_seq_len = 32;
  m1.FineTune(ds, ft);

  const std::string path = "/tmp/emx_core_matcher.bin";
  ASSERT_TRUE(m1.Save(path).ok());
  ASSERT_TRUE(m2.Load(path).ok());
  auto p1 = m1.Predict(ds, ds.test);
  auto p2 = m2.Predict(ds, ds.test);
  EXPECT_EQ(p1, p2);
  std::remove(path.c_str());
}

TEST_F(CoreFixture, ArchNameMatchesBundle) {
  EntityMatcher matcher = MakeMatcher(models::Architecture::kXlnet);
  EXPECT_EQ(matcher.arch(), models::Architecture::kXlnet);
  EXPECT_STREQ(matcher.arch_name(), "XLNet");
}

// ---- Experiment harness -------------------------------------------------------

TEST_F(CoreFixture, RunFineTuneSeriesAveragesRuns) {
  ExperimentOptions opts;
  opts.dataset.scale = 0.01;
  opts.zoo = Zoo();
  opts.fine_tune.epochs = 2;
  opts.fine_tune.max_seq_len = 32;
  opts.runs = 2;
  ArchSeries series = RunFineTuneSeries(models::Architecture::kDistilBert,
                                        data::DatasetId::kDblpAcm, opts);
  EXPECT_EQ(series.arch, models::Architecture::kDistilBert);
  ASSERT_EQ(series.f1_mean.size(), 3u);  // epoch 0..2
  ASSERT_EQ(series.f1_stddev.size(), 3u);
  EXPECT_GT(series.seconds_per_epoch, 0.0);
  EXPECT_GE(series.best_f1, series.f1_mean[0]);
}

TEST_F(CoreFixture, FormatFigureProducesTable) {
  ArchSeries s1;
  s1.arch = models::Architecture::kBert;
  s1.f1_mean = {0.1, 0.5, 0.9};
  ArchSeries s2;
  s2.arch = models::Architecture::kRoberta;
  s2.f1_mean = {0.2, 0.6, 0.95};
  std::string fig = FormatFigure("Dataset: Test", {s1, s2});
  EXPECT_NE(fig.find("BERT"), std::string::npos);
  EXPECT_NE(fig.find("RoBERTa"), std::string::npos);
  EXPECT_NE(fig.find("90.0"), std::string::npos);
  EXPECT_NE(fig.find("95.0"), std::string::npos);
  // Three epoch rows + header + title.
  EXPECT_EQ(std::count(fig.begin(), fig.end(), '\n'), 5);
}

}  // namespace
}  // namespace core
}  // namespace emx
