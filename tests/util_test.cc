#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace emx {
namespace {

// ---- Status ----------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(Status::InvalidArgument("x").code());
  codes.insert(Status::OutOfRange("x").code());
  codes.insert(Status::NotFound("x").code());
  codes.insert(Status::AlreadyExists("x").code());
  codes.insert(Status::IoError("x").code());
  codes.insert(Status::NotImplemented("x").code());
  codes.insert(Status::Internal("x").code());
  EXPECT_EQ(codes.size(), 7u);
}

Status FailingHelper() { return Status::NotFound("missing"); }

Status PropagatingHelper() {
  EMX_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = PropagatingHelper();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Status UseResult(int x, int* out) {
  EMX_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  *out = doubled;
  return Status::OK();
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.ValueOr(-7), -7);

  int out = 0;
  EXPECT_TRUE(UseResult(3, &out).ok());
  EXPECT_EQ(out, 6);
  EXPECT_FALSE(UseResult(-3, &out).ok());
}

// ---- Rng ---------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextUint64Bounded) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) counts[rng.NextDiscrete(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(19);
  auto perm = rng.Permutation(50);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIndependentStream) {
  Rng a(5);
  Rng forked = a.Fork();
  EXPECT_NE(a.Next(), forked.Next());
}

// ---- Strings -----------------------------------------------------------

TEST(StringTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  foo\t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringTest, ToLowerStrip) {
  EXPECT_EQ(ToLower("AbC-123"), "abc-123");
  EXPECT_EQ(Strip("  x y \t"), "x y");
  EXPECT_EQ(Strip("   "), "");
}

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("wordpiece", "word"));
  EXPECT_FALSE(StartsWith("word", "wordpiece"));
  EXPECT_TRUE(EndsWith("embedding", "ing"));
  EXPECT_FALSE(EndsWith("ing", "embedding"));
}

TEST(StringTest, BasicTokenizeSplitsPunctuation) {
  auto toks = BasicTokenize("ZenFone 4 Pro (ZS551KL), 5.5-inch!");
  std::vector<std::string> expected = {"zenfone", "4",  "pro", "(", "zs551kl",
                                       ")",       ",",  "5",   ".", "5",
                                       "-",       "inch", "!"};
  EXPECT_EQ(toks, expected);
}

TEST(StringTest, BasicTokenizeCasePreserving) {
  auto toks = BasicTokenize("iPhone XS", /*lower_case=*/false);
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "iPhone");
}

TEST(StringTest, ParseFloatAndInt) {
  float f = 0;
  EXPECT_TRUE(ParseFloat("899.99", &f));
  EXPECT_FLOAT_EQ(f, 899.99f);
  EXPECT_FALSE(ParseFloat("12x", &f));
  EXPECT_FALSE(ParseFloat("", &f));

  int64_t i = 0;
  EXPECT_TRUE(ParseInt("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt("4.2", &i));
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
}

// ---- CSV ---------------------------------------------------------------

TEST(CsvTest, ParseSimple) {
  auto r = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(r.ok());
  const auto& t = r.value();
  EXPECT_EQ(t.header.size(), 3u);
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][2], "6");
  EXPECT_EQ(t.ColumnIndex("b"), 1);
  EXPECT_EQ(t.ColumnIndex("zz"), -1);
}

TEST(CsvTest, QuotedFields) {
  auto r = ParseCsv("name,desc\nfoo,\"a, \"\"quoted\"\" value\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][1], "a, \"quoted\" value");
}

TEST(CsvTest, RowWidthMismatchRejected) {
  auto r = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, EmptyContentRejected) {
  auto r = ParseCsv("");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, RoundTripWithEscapes) {
  // Embedded newlines are a known simplification (line-based parser); the
  // datasets this library generates never contain them.
  CsvTable t;
  t.header = {"x", "y"};
  t.rows = {{"plain", "has,comma"}, {"has\"quote", "tail"}};
  auto parsed = ParseCsv(FormatCsv(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().rows[0][1], "has,comma");
  EXPECT_EQ(parsed.value().rows[1][0], "has\"quote");
}

TEST(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsv("/nonexistent/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// ---- Timer -------------------------------------------------------------

TEST(TimerTest, FormatDuration) {
  EXPECT_EQ(Timer::FormatDuration(162.0), "2m 42s");
  EXPECT_EQ(Timer::FormatDuration(12.4), "12s");
  EXPECT_EQ(Timer::FormatDuration(3.5), "3.5s");
  EXPECT_EQ(Timer::FormatDuration(-1.0), "0.0s");
}

TEST(TimerTest, FormatDurationUnitBoundaries) {
  // Rounding must happen before the unit split so carries propagate:
  // 119.6 used to render "1m 0s" (minutes from truncation, seconds from
  // rounding — disagreeing about which minute the value is in).
  EXPECT_EQ(Timer::FormatDuration(0.0), "0.0s");
  EXPECT_EQ(Timer::FormatDuration(59.5), "1m 0s");
  EXPECT_EQ(Timer::FormatDuration(59.4), "59s");
  EXPECT_EQ(Timer::FormatDuration(119.6), "2m 0s");
  EXPECT_EQ(Timer::FormatDuration(119.4), "1m 59s");
  EXPECT_EQ(Timer::FormatDuration(3600.0), "60m 0s");
  // The "%.1f" -> integer-seconds handoff: 9.94 still shows a decimal,
  // 9.95+ rounds into the coarse format without ever printing "10.0s".
  EXPECT_EQ(Timer::FormatDuration(9.94), "9.9s");
  EXPECT_EQ(Timer::FormatDuration(9.96), "10s");
  EXPECT_EQ(Timer::FormatDuration(std::nan("")), "0.0s");
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());
}

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter++; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  std::vector<int> hits(1000, 0);
  ParallelFor(1000, 10, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  bool called = false;
  ParallelFor(0, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallers) {
  // 4 external threads issue ParallelFor on the same pool simultaneously.
  // Per-call task groups mean each caller returns when *its* range is done;
  // the pool-global completion counter of the old design serialized them.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int64_t kRange = 5000;
  std::vector<std::vector<int>> hits(kCallers, std::vector<int>(kRange, 0));
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      for (int repeat = 0; repeat < 20; ++repeat) {
        pool.ParallelFor(kRange, 16, [&hits, c](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) hits[c][i]++;
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (int64_t i = 0; i < kRange; ++i) ASSERT_EQ(hits[c][i], 20);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A ParallelFor body that itself calls ParallelFor on the same pool must
  // not deadlock: the nested call detects worker context and runs inline.
  ThreadPool pool(2);
  constexpr int64_t kOuter = 8, kInner = 64;
  std::vector<std::atomic<int>> cells(kOuter * kInner);
  pool.ParallelFor(kOuter, 1, [&](int64_t begin, int64_t end) {
    for (int64_t o = begin; o < end; ++o) {
      pool.ParallelFor(kInner, 1, [&, o](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) cells[o * kInner + i]++;
      });
    }
  });
  for (auto& c : cells) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, InWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.InWorkerThread());
  std::atomic<bool> saw_worker{false};
  pool.Submit([&] { saw_worker = pool.InWorkerThread(); });
  pool.Wait();
  EXPECT_TRUE(saw_worker.load());
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  auto throwing = [&] {
    pool.ParallelFor(1000, 1, [](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        if (i == 737) throw std::runtime_error("kernel failed");
      }
    });
  };
  EXPECT_THROW(throwing(), std::runtime_error);
  // The pool stays usable after a failed call.
  std::atomic<int> count{0};
  pool.ParallelFor(100, 1, [&](int64_t begin, int64_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, SubmitExceptionRethrownOnWait) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is cleared once delivered.
  pool.Submit([] {});
  EXPECT_NO_THROW(pool.Wait());
}

TEST(ThreadPoolTest, ConcurrentCallersIsolateErrors) {
  // One caller's throwing range must not leak its exception into (or block)
  // an unrelated concurrent caller.
  ThreadPool pool(4);
  std::atomic<int> clean_total{0};
  std::atomic<bool> threw{false};
  std::thread bad([&] {
    try {
      pool.ParallelFor(2000, 1, [](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          if (i % 500 == 3) throw std::runtime_error("bad caller");
        }
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
  });
  std::thread good([&] {
    for (int repeat = 0; repeat < 50; ++repeat) {
      pool.ParallelFor(1000, 8, [&](int64_t begin, int64_t end) {
        clean_total += static_cast<int>(end - begin);
      });
    }
  });
  bad.join();
  good.join();
  EXPECT_TRUE(threw.load());
  EXPECT_EQ(clean_total.load(), 50 * 1000);
}

}  // namespace
}  // namespace emx
