#ifndef EMX_NET_FLEET_ROUTER_H_
#define EMX_NET_FLEET_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "obs/metrics.h"
#include "serve/matcher_engine.h"
#include "util/status.h"

namespace emx {
namespace net {

/// How the router picks a primary shard for a request.
enum class RoutePolicy {
  /// FNV-1a hash of the entity pair over a virtual-node ring: the same
  /// pair always lands on the same shard (cache affinity, deterministic).
  kConsistentHash,
  /// The shard with the fewest dispatched-but-unanswered requests
  /// (ties broken by lowest shard index).
  kLeastLoaded,
};

struct RouterOptions {
  RoutePolicy policy = RoutePolicy::kConsistentHash;
  /// Admission budget: logical requests in flight (hedges do not count
  /// twice). At the bound, Submit fails fast with ResourceExhausted
  /// instead of queueing — overload degrades into rejections, not into a
  /// latency collapse for the requests that are admitted.
  int64_t max_in_flight = 256;
  /// Deadline for Submit calls that don't carry one; 0 = none.
  int64_t default_timeout_us = 0;
  /// Launch a duplicate to a second shard when a request's elapsed time
  /// crosses the hedge threshold. The first response wins; the loser's
  /// response is ignored (its shard finishes the work — the wire protocol
  /// has no cancel, so the loser is dropped deterministically at the
  /// router's completion CAS).
  bool hedging = true;
  /// Hedge when elapsed > max(hedge_min_us, this percentile of the recent
  /// completion-latency window).
  double hedge_quantile = 0.95;
  int64_t hedge_min_us = 1000;
  /// Wake period of the hedge/deadline monitor thread.
  int64_t hedge_poll_us = 500;
  /// Virtual nodes per shard on the consistent-hash ring.
  int vnodes_per_shard = 64;
};

/// One dispatch target. The two production backends wrap an in-process
/// MatcherEngine and a remote MatchServer socket; tests inject synthetic
/// backends (e.g. a deterministic straggler) through AddShardForTest.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;
  /// Sends one request. `done` is invoked exactly once, from a backend
  /// thread, with the response (possibly an error response).
  virtual void Dispatch(const MatchRequest& req,
                        std::function<void(MatchResponse)> done) = 0;
  /// Requests dispatched here and not yet answered.
  virtual int64_t in_flight() const = 0;
  /// Point-in-time metrics JSON for this shard ("" when unavailable).
  virtual std::string StatsJson() = 0;
  virtual std::string name() const = 0;
};

/// Outcome of one routed request.
struct RouteResult {
  Status status;
  double probability = 0;
  bool is_match = false;
  /// Shard index that produced the winning response (-1 on reject).
  int shard = -1;
  bool hedged = false;
  /// True when the hedge (not the primary) answered first.
  bool hedge_won = false;
  /// Submit-to-completion at the router, µs.
  double total_us = 0;
  /// Winner's per-stage timings from the wire (µs).
  double queue_us = 0;
  double infer_us = 0;
  double server_us = 0;
  int64_t batch_size = 0;
};

/// Dispatcher owning N shards: routing (consistent-hash / least-loaded),
/// admission control, deadline propagation, hedged retries, and fleet-wide
/// metrics aggregation. Thread-safe; Submit never blocks on the network.
class FleetRouter {
 public:
  explicit FleetRouter(const RouterOptions& options = {});
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  /// In-process shard (the engine must outlive the router).
  Status AddLocalShard(serve::MatcherEngine* engine);
  /// Remote shard: connects to a MatchServer on 127.0.0.1:`port`.
  Status AddRemoteShard(uint16_t port);
  /// Synthetic shard for tests.
  Status AddShardForTest(std::unique_ptr<ShardBackend> backend);

  size_t num_shards() const { return shards_.size(); }

  /// Routes one pair. `timeout_us` < 0 uses the router default; the
  /// remaining budget is propagated to the shard on the wire.
  std::future<RouteResult> Submit(std::string text_a, std::string text_b,
                                  int64_t timeout_us = -1);
  RouteResult Match(std::string text_a, std::string text_b,
                    int64_t timeout_us = -1);

  /// One fleet document: router counters + latency percentiles, plus every
  /// shard's own metrics snapshot. Strict JSON.
  std::string FleetSnapshotJson();

  /// Fails outstanding requests with Unavailable, stops the monitor and
  /// shard backends. Idempotent; also run by the destructor.
  void Shutdown();

  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  /// Current hedge threshold (µs) — max(hedge_min_us, pQ of the window).
  double HedgeThresholdUs() const;
  obs::MetricsRegistry* registry() { return &registry_; }
  const RouterOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Outstanding {
    uint64_t id = 0;
    std::promise<RouteResult> promise;
    /// 0 = open, 1 = completed. The winner's CAS 0->1 is the only place a
    /// result is set; the hedging loser and the deadline scan lose the CAS
    /// and drop their response.
    std::atomic<int> done{0};
    std::atomic<bool> hedged{false};
    Clock::time_point start;
    Clock::time_point deadline;  // max() when none
    int primary_shard = -1;
    int hedge_shard = -1;
    std::string text_a, text_b;
    uint64_t budget_us = 0;
  };

  int PickShard(const std::string& a, const std::string& b) const;
  int PickHedgeShard(int primary) const;
  void DispatchTo(int shard, const std::shared_ptr<Outstanding>& out,
                  bool is_hedge);
  /// Winner path: fills the promise, records latency, releases admission.
  void Complete(const std::shared_ptr<Outstanding>& out, RouteResult result);
  void MonitorLoop();
  void BuildRing();

  const RouterOptions options_;
  std::vector<std::unique_ptr<ShardBackend>> shards_;
  std::vector<std::pair<uint64_t, int>> ring_;  // (hash, shard), sorted

  obs::MetricsRegistry registry_;
  obs::Counter* submitted_;
  obs::Counter* completed_;
  obs::Counter* rejected_;
  obs::Counter* hedges_;
  obs::Counter* hedge_wins_;
  obs::Counter* hedge_wasted_;
  obs::Counter* deadline_exceeded_;
  obs::Counter* shard_errors_;

  std::atomic<int64_t> in_flight_{0};
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex mu_;  // outstanding_ + ring_ rebuilds
  std::unordered_map<uint64_t, std::shared_ptr<Outstanding>> outstanding_;

  /// Completion-latency window feeding the hedge threshold. Lock-free ring
  /// (same idiom as serve::ServingMetrics).
  static constexpr size_t kLatencyWindow = 2048;
  std::unique_ptr<std::atomic<double>[]> latencies_;
  std::atomic<uint64_t> latency_ops_{0};

  std::atomic<bool> shutdown_{false};
  std::thread monitor_;
};

}  // namespace net
}  // namespace emx

#endif  // EMX_NET_FLEET_ROUTER_H_
