#ifndef EMX_NET_WIRE_H_
#define EMX_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace emx {
namespace net {

// The emx fleet wire protocol: length-prefixed little-endian binary frames.
//
//   frame    := u32 payload_len | payload
//   payload  := u32 magic | body
//
// Every integer is little-endian at fixed width; strings are u32 length +
// raw bytes (no terminator). Two payload kinds exist, distinguished by
// magic:
//
//   request  (magic "EMRQ"):
//     u64 trace_id        correlates the response on a pipelined connection
//     u64 deadline_us     remaining budget, 0 = none (relative, not a wall
//                         clock, so it survives clock skew between hosts)
//     u32 flags           bit 0 = hedge duplicate, bit 1 = stats probe
//     str text_a, text_b  the entity pair (empty for stats probes)
//
//   response (magic "EMRS"):
//     u64 trace_id
//     u32 status_code     emx::StatusCode numeric value
//     str status_message
//     f64 probability     P(match)
//     u8  is_match
//     f64 queue_us        engine submit -> micro-batch formation
//     f64 infer_us        engine submit -> completion
//     f64 server_us       server frame-received -> response-encoded
//     u32 batch_size      micro-batch this request was served in
//     str stats_json      non-empty only for stats-probe responses
//
// The parser is strict: a length prefix above kMaxFrameBytes, a payload
// shorter than its own field lengths, or an unknown magic all produce an
// error status (the connection should be dropped); a prefix whose bytes
// simply have not arrived yet is "incomplete", not an error.

/// Hard ceiling on a frame payload. Anything larger is a protocol error
/// (entity pairs are short strings; this bounds per-connection buffering).
inline constexpr uint32_t kMaxFrameBytes = 1 << 20;  // 1 MiB

inline constexpr uint32_t kRequestMagic = 0x51524D45u;   // "EMRQ" LE
inline constexpr uint32_t kResponseMagic = 0x53524D45u;  // "EMRS" LE

/// Request flag bits.
inline constexpr uint32_t kFlagHedge = 1u << 0;
inline constexpr uint32_t kFlagStats = 1u << 1;

struct MatchRequest {
  uint64_t trace_id = 0;
  /// Remaining deadline budget in microseconds; 0 = no deadline.
  uint64_t deadline_us = 0;
  uint32_t flags = 0;
  std::string text_a;
  std::string text_b;

  bool is_hedge() const { return (flags & kFlagHedge) != 0; }
  bool is_stats_probe() const { return (flags & kFlagStats) != 0; }
};

struct MatchResponse {
  uint64_t trace_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  double probability = 0;
  bool is_match = false;
  /// Per-stage timings (µs): engine queueing, engine total, and the
  /// server-side recv->send wall time that wraps them.
  double queue_us = 0;
  double infer_us = 0;
  double server_us = 0;
  uint32_t batch_size = 0;
  /// Metrics JSON for stats-probe responses; empty otherwise.
  std::string stats_json;

  Status ToStatus() const {
    return code == StatusCode::kOk ? Status::OK() : Status(code, message);
  }
};

/// Appends a complete frame (length prefix + payload) to `out`.
void EncodeRequest(const MatchRequest& req, std::string* out);
void EncodeResponse(const MatchResponse& resp, std::string* out);

/// Decodes one payload (the bytes *after* the length prefix). Strict: every
/// byte must be consumed, lengths must fit, magic must match.
Result<MatchRequest> DecodeRequest(std::string_view payload);
Result<MatchResponse> DecodeResponse(std::string_view payload);

/// Incremental frame assembler for a byte stream. Feed arriving bytes with
/// Append(); Next() yields complete payloads in order. A malformed length
/// prefix poisons the buffer (every later Next() returns the same error) —
/// the owner must drop the connection, there is no way to resynchronize a
/// corrupt length-prefixed stream.
class FrameBuffer {
 public:
  void Append(const char* data, size_t n) { buf_.append(data, n); }

  /// True when at least a partial frame is buffered (bytes awaiting more).
  bool has_partial() const { return !buf_.empty(); }
  size_t buffered_bytes() const { return buf_.size(); }

  /// On a complete frame: sets *payload (valid until the next Append/Next
  /// call) and returns OK with *complete = true. When bytes are missing:
  /// OK with *complete = false. On protocol damage: an error status.
  Status Next(std::string_view* payload, bool* complete);

 private:
  std::string buf_;
  std::string current_;  // backing storage for the last yielded payload
  Status poisoned_;
};

}  // namespace net
}  // namespace emx

#endif  // EMX_NET_WIRE_H_
