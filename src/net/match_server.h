#ifndef EMX_NET_MATCH_SERVER_H_
#define EMX_NET_MATCH_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "serve/matcher_engine.h"
#include "util/status.h"

namespace emx {
namespace net {

struct ServerOptions {
  /// TCP port to bind on loopback; 0 asks the kernel for an ephemeral port
  /// (read the result from MatchServer::port()), so parallel tests never
  /// collide.
  uint16_t port = 0;
  /// A connection stalled mid-frame for longer than this is dropped
  /// (slow-loris defense). Counted in `net.read_timeouts`.
  int read_timeout_ms = 5000;
  /// poll() tick; bounds Stop() latency and timeout-scan granularity.
  int poll_interval_ms = 20;
  /// Accepted connections beyond this are closed immediately.
  size_t max_connections = 256;
  /// Minimum per-response service time (µs), enforced serially on the
  /// response path. Emulates a fixed-capacity model backend so fleet
  /// benches get a defined per-shard service rate on small CI hosts, and
  /// doubles as the straggler injector (10x the fleet value = one slow
  /// shard). 0 = disabled.
  int64_t artificial_service_us = 0;
};

/// A poll-based TCP server exposing one MatcherEngine shard over the emx
/// wire protocol (see wire.h).
///
/// Threads: one poll thread owns accept + all reads (non-blocking fds, one
/// FrameBuffer per connection) and submits decoded requests to the engine;
/// one completion thread resolves the engine futures in FIFO order and
/// writes responses. Connections are pipelined: a client may have any
/// number of requests outstanding and correlates responses by trace id.
/// Malformed frames (bad magic, oversized length prefix, corrupt fields)
/// close the offending connection and never crash the server; stalled
/// mid-frame connections are reaped after `read_timeout_ms`.
class MatchServer {
 public:
  /// `engine` must outlive the server and must not be Shutdown() while the
  /// server is running (Stop() the server first).
  MatchServer(serve::MatcherEngine* engine, const ServerOptions& options = {});
  ~MatchServer();

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Binds, listens, and starts the serving threads. Bind/listen failures
  /// come back as a Status carrying the syscall and errno text.
  Status Start();

  /// Stops serving and closes every connection. Idempotent; also run by
  /// the destructor. Requests already submitted to the engine are resolved
  /// (their responses are written when the connection is still open).
  void Stop();

  /// The actually-bound port (after Start(); meaningful with port = 0).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// {"server": {<net.* counters>}, "engine": {<engine metrics>}} — the
  /// same document a stats probe returns on the wire.
  std::string MetricsJson() const;

  /// Server-side counters (net.accepted, net.requests, net.bad_frames,
  /// net.read_timeouts, ...). The engine keeps its own registry.
  obs::MetricsRegistry* registry() { return &registry_; }

  const ServerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    explicit Conn(Socket s) : sock(std::move(s)) {}
    Socket sock;
    FrameBuffer frames;
    /// When the currently-buffered partial frame started arriving;
    /// Clock::time_point::max() when no partial frame is pending.
    Clock::time_point partial_since = Clock::time_point::max();
    std::atomic<bool> closed{false};
    std::mutex write_mu;  // poll thread (stats) vs completion thread
  };

  struct Pending {
    std::shared_ptr<Conn> conn;
    uint64_t trace_id = 0;
    Clock::time_point received;
    std::future<serve::MatchResult> future;
  };

  void PollLoop();
  void CompletionLoop();
  /// Drains complete frames from `conn`; returns false when the connection
  /// must be closed (protocol damage).
  bool DrainFrames(const std::shared_ptr<Conn>& conn, Clock::time_point now);
  void HandleRequest(const std::shared_ptr<Conn>& conn,
                     const MatchRequest& req, Clock::time_point now);
  void WriteResponse(const std::shared_ptr<Conn>& conn,
                     const MatchResponse& resp);

  serve::MatcherEngine* engine_;
  const ServerOptions options_;
  uint16_t port_ = 0;
  Socket listener_;

  obs::MetricsRegistry registry_;
  obs::Counter* accepted_;
  obs::Counter* requests_;
  obs::Counter* responses_;
  obs::Counter* bad_frames_;
  obs::Counter* read_timeouts_;
  obs::Counter* send_errors_;
  obs::Counter* stats_probes_;
  obs::Counter* hedge_requests_;
  obs::Gauge* open_connections_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread poll_thread_;
  std::thread completion_thread_;

  std::map<int, std::shared_ptr<Conn>> conns_;  // poll thread only

  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::deque<Pending> pending_;
};

}  // namespace net
}  // namespace emx

#endif  // EMX_NET_MATCH_SERVER_H_
