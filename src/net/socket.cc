#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <cstring>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace emx {
namespace net {

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::string ErrnoText(const char* syscall_name) {
  return std::string(syscall_name) + ": " + std::strerror(errno);
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(ErrnoText("fcntl"));
  }
  return Status::OK();
}

Result<Socket> ListenTcp(uint16_t port, uint16_t* bound_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::IoError(ErrnoText("socket"));

  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Status::IoError(ErrnoText("setsockopt(SO_REUSEADDR)"));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IoError("bind port " + std::to_string(port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(sock.fd(), 128) < 0) {
    return Status::IoError(ErrnoText("listen"));
  }

  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual), &len) <
      0) {
    return Status::IoError(ErrnoText("getsockname"));
  }
  if (bound_port != nullptr) *bound_port = ntohs(actual.sin_port);

  EMX_RETURN_IF_ERROR(SetNonBlocking(sock.fd()));
  return sock;
}

Result<Socket> ConnectTcp(uint16_t port, int timeout_ms) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return Status::IoError(ErrnoText("socket"));
  EMX_RETURN_IF_ERROR(SetNonBlocking(sock.fd()));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) {
      return Status::Unavailable("connect port " + std::to_string(port) +
                                 ": " + std::strerror(errno));
    }
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n == 0) {
      return Status::DeadlineExceeded("connect port " + std::to_string(port) +
                                      " timed out");
    }
    if (n < 0) return Status::IoError(ErrnoText("poll"));
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0 ||
        err != 0) {
      return Status::Unavailable("connect port " + std::to_string(port) +
                                 ": " + std::strerror(err != 0 ? err : errno));
    }
  }

  // Back to blocking for the client side; request/response writes are small
  // and the reader thread owns all reads.
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(sock.fd(), F_SETFL, flags & ~O_NONBLOCK) < 0) {
    return Status::IoError(ErrnoText("fcntl"));
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, 5000) <= 0) {
        return Status::DeadlineExceeded("send stalled (peer not reading)");
      }
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::Unavailable(ErrnoText("send"));
    }
    return Status::IoError(ErrnoText("send"));
  }
  return Status::OK();
}

Result<size_t> RecvSome(int fd, char* buf, size_t n, int timeout_ms) {
  while (true) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return Status::DeadlineExceeded("recv timed out");
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoText("poll"));
    }
    const ssize_t r = ::recv(fd, buf, n, 0);
    if (r >= 0) return static_cast<size_t>(r);  // 0 = peer closed orderly
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
    if (errno == ECONNRESET) return Status::Unavailable(ErrnoText("recv"));
    return Status::IoError(ErrnoText("recv"));
  }
}

}  // namespace net
}  // namespace emx
