#include "net/match_server.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>
#include <vector>

#include "obs/trace.h"

namespace emx {
namespace net {
namespace {

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

MatchServer::MatchServer(serve::MatcherEngine* engine,
                         const ServerOptions& options)
    : engine_(engine),
      options_(options),
      accepted_(registry_.GetCounter("net.accepted")),
      requests_(registry_.GetCounter("net.requests")),
      responses_(registry_.GetCounter("net.responses")),
      bad_frames_(registry_.GetCounter("net.bad_frames")),
      read_timeouts_(registry_.GetCounter("net.read_timeouts")),
      send_errors_(registry_.GetCounter("net.send_errors")),
      stats_probes_(registry_.GetCounter("net.stats_probes")),
      hedge_requests_(registry_.GetCounter("net.hedge_requests")),
      open_connections_(registry_.GetGauge("net.open_connections")) {}

MatchServer::~MatchServer() { Stop(); }

Status MatchServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server already running");
  }
  if (engine_ == nullptr) {
    return Status::InvalidArgument("MatchServer requires an engine");
  }
  auto listener = ListenTcp(options_.port, &port_);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  poll_thread_ = std::thread(&MatchServer::PollLoop, this);
  completion_thread_ = std::thread(&MatchServer::CompletionLoop, this);
  return Status::OK();
}

void MatchServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  pending_cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
  if (completion_thread_.joinable()) completion_thread_.join();
  conns_.clear();
  listener_.Close();
}

std::string MatchServer::MetricsJson() const {
  std::string out = "{\"server\": ";
  out += registry_.ToJson();
  out += ", \"engine\": ";
  out += engine_->MetricsJson();
  out += "}";
  return out;
}

void MatchServer::PollLoop() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Conn>> polled;
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    polled.clear();
    pfds.push_back(pollfd{listener_.fd(), POLLIN, 0});
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second->closed.load(std::memory_order_acquire)) {
        it = conns_.erase(it);
        continue;
      }
      pfds.push_back(pollfd{it->first, POLLIN, 0});
      polled.push_back(it->second);
      ++it;
    }
    open_connections_->Set(static_cast<double>(conns_.size()));

    const int n = ::poll(pfds.data(), pfds.size(), options_.poll_interval_ms);
    if (n < 0 && errno != EINTR) break;
    const Clock::time_point now = Clock::now();

    // New connections (the listener is non-blocking: accept until drained).
    if (pfds[0].revents & POLLIN) {
      while (true) {
        const int fd = ::accept(listener_.fd(), nullptr, nullptr);
        if (fd < 0) break;
        if (conns_.size() >= options_.max_connections) {
          ::close(fd);
          continue;
        }
        Socket sock(fd);
        if (!SetNonBlocking(fd).ok()) continue;  // sock closes it
        accepted_->Add();
        conns_.emplace(fd, std::make_shared<Conn>(std::move(sock)));
      }
    }

    // Reads + frame dispatch.
    for (size_t i = 0; i < polled.size(); ++i) {
      const std::shared_ptr<Conn>& conn = polled[i];
      const pollfd& pfd = pfds[i + 1];
      if (pfd.revents & (POLLERR | POLLNVAL)) {
        conn->closed.store(true, std::memory_order_release);
        continue;
      }
      if (pfd.revents & (POLLIN | POLLHUP)) {
        char buf[4096];
        bool peer_closed = false;
        while (true) {
          const ssize_t r = ::recv(conn->sock.fd(), buf, sizeof(buf), 0);
          if (r > 0) {
            if (!conn->frames.has_partial()) conn->partial_since = now;
            conn->frames.Append(buf, static_cast<size_t>(r));
            continue;
          }
          if (r == 0) peer_closed = true;
          break;  // EAGAIN / error / orderly close
        }
        if (!DrainFrames(conn, now)) {
          conn->closed.store(true, std::memory_order_release);
          continue;
        }
        if (!conn->frames.has_partial()) {
          conn->partial_since = Clock::time_point::max();
        }
        if (peer_closed) {
          conn->closed.store(true, std::memory_order_release);
          continue;
        }
      }
      // Slow-loris: a frame that has been partially buffered for longer
      // than the read timeout is never going to finish honestly.
      if (conn->partial_since != Clock::time_point::max() &&
          now - conn->partial_since >
              std::chrono::milliseconds(options_.read_timeout_ms)) {
        read_timeouts_->Add();
        conn->closed.store(true, std::memory_order_release);
      }
    }
  }
  // Completion entries keep their own shared_ptr<Conn>; dropping the map
  // here only closes connections with no responses still in flight.
  conns_.clear();
}

bool MatchServer::DrainFrames(const std::shared_ptr<Conn>& conn,
                              Clock::time_point now) {
  while (true) {
    std::string_view payload;
    bool complete = false;
    const Status st = conn->frames.Next(&payload, &complete);
    if (!st.ok()) {
      bad_frames_->Add();
      obs::TraceInstant("net.server.bad_frame");
      return false;
    }
    if (!complete) return true;
    // A frame completed: the slow-loris clock restarts for whatever partial
    // bytes follow it, so pipelined clients are only timed per-frame.
    conn->partial_since = now;
    auto req = DecodeRequest(payload);
    if (!req.ok()) {
      bad_frames_->Add();
      obs::TraceInstant("net.server.bad_frame");
      return false;
    }
    HandleRequest(conn, req.value(), now);
    // More frames may already be buffered (pipelining): keep draining.
  }
}

void MatchServer::HandleRequest(const std::shared_ptr<Conn>& conn,
                                const MatchRequest& req,
                                Clock::time_point now) {
  if (req.is_stats_probe()) {
    stats_probes_->Add();
    MatchResponse resp;
    resp.trace_id = req.trace_id;
    resp.code = StatusCode::kOk;
    resp.stats_json = MetricsJson();
    WriteResponse(conn, resp);
    return;
  }
  requests_->Add();
  if (req.is_hedge()) hedge_requests_->Add();
  EMX_TRACE_SPAN("net.server.request", [&] {
    return obs::KeyValues(
        {{"trace_id", static_cast<int64_t>(req.trace_id)},
         {"deadline_us", static_cast<int64_t>(req.deadline_us)},
         {"hedge", req.is_hedge() ? 1 : 0}});
  });

  Pending p;
  p.conn = conn;
  p.trace_id = req.trace_id;
  p.received = now;
  p.future = engine_->Submit(req.text_a, req.text_b,
                             static_cast<int64_t>(req.deadline_us));
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.push_back(std::move(p));
  }
  pending_cv_.notify_one();
}

void MatchServer::CompletionLoop() {
  while (true) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(pending_mu_);
      pending_cv_.wait(lock, [&] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      p = std::move(pending_.front());
      pending_.pop_front();
    }

    // The engine resolves every accepted request (deadline expiry, queue
    // rejection and shutdown all set the promise), so this get() is
    // bounded by the engine's own max_wait/deadline machinery.
    serve::MatchResult result = p.future.get();

    if (options_.artificial_service_us > 0) {
      // Serialized on this thread by design: the shard's service rate
      // becomes 1/artificial_service_us regardless of host core count.
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.artificial_service_us));
    }

    MatchResponse resp;
    resp.trace_id = p.trace_id;
    resp.code = result.status.code();
    resp.message = result.status.message();
    resp.probability = result.probability;
    resp.is_match = result.is_match;
    resp.queue_us = result.queue_us;
    resp.infer_us = result.total_us;
    resp.server_us = ElapsedUs(p.received, Clock::now());
    resp.batch_size = static_cast<uint32_t>(result.batch_size);
    WriteResponse(p.conn, resp);
  }
}

void MatchServer::WriteResponse(const std::shared_ptr<Conn>& conn,
                                const MatchResponse& resp) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  std::string frame;
  EncodeResponse(resp, &frame);
  // Counted before the bytes go out: a client that has received the
  // response (or a stats probe it triggered) must see it reflected in the
  // registry. A failed send backs the count out again.
  responses_->Add();
  std::lock_guard<std::mutex> lock(conn->write_mu);
  const Status st = SendAll(conn->sock.fd(), frame.data(), frame.size());
  if (!st.ok()) {
    responses_->Add(-1);
    send_errors_->Add();
    conn->closed.store(true, std::memory_order_release);
    return;
  }
}

}  // namespace net
}  // namespace emx
