#include "net/wire.h"

#include <cstring>

namespace emx {
namespace net {
namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Sequential strict reader over one payload. Every Get* checks bounds and
/// latches the first failure; callers check ok() once at the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == data_.size(); }

  uint8_t GetU8() {
    if (!Require(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t GetU32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t GetU64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double GetF64() {
    const uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string GetString() {
    const uint32_t n = GetU32();
    if (!Require(n)) return std::string();
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

 private:
  bool Require(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// The frame is complete by construction (FrameBuffer already matched the
/// length prefix), so a short or overlong body is corruption, not "wait for
/// more bytes".
Status CheckDone(const Reader& r, const char* what) {
  if (!r.ok()) {
    return Status::InvalidArgument(std::string(what) +
                                   " payload truncated mid-field");
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument(std::string(what) +
                                   " payload has trailing bytes");
  }
  return Status::OK();
}

}  // namespace

void EncodeRequest(const MatchRequest& req, std::string* out) {
  const size_t prefix_at = out->size();
  PutU32(out, 0);  // patched below
  const size_t payload_at = out->size();
  PutU32(out, kRequestMagic);
  PutU64(out, req.trace_id);
  PutU64(out, req.deadline_us);
  PutU32(out, req.flags);
  PutString(out, req.text_a);
  PutString(out, req.text_b);
  const uint32_t len = static_cast<uint32_t>(out->size() - payload_at);
  for (int i = 0; i < 4; ++i) {
    (*out)[prefix_at + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

void EncodeResponse(const MatchResponse& resp, std::string* out) {
  const size_t prefix_at = out->size();
  PutU32(out, 0);  // patched below
  const size_t payload_at = out->size();
  PutU32(out, kResponseMagic);
  PutU64(out, resp.trace_id);
  PutU32(out, static_cast<uint32_t>(resp.code));
  PutString(out, resp.message);
  PutF64(out, resp.probability);
  PutU8(out, resp.is_match ? 1 : 0);
  PutF64(out, resp.queue_us);
  PutF64(out, resp.infer_us);
  PutF64(out, resp.server_us);
  PutU32(out, resp.batch_size);
  PutString(out, resp.stats_json);
  const uint32_t len = static_cast<uint32_t>(out->size() - payload_at);
  for (int i = 0; i < 4; ++i) {
    (*out)[prefix_at + i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

Result<MatchRequest> DecodeRequest(std::string_view payload) {
  Reader r(payload);
  if (r.GetU32() != kRequestMagic) {
    return Status::InvalidArgument("bad request magic");
  }
  MatchRequest req;
  req.trace_id = r.GetU64();
  req.deadline_us = r.GetU64();
  req.flags = r.GetU32();
  req.text_a = r.GetString();
  req.text_b = r.GetString();
  EMX_RETURN_IF_ERROR(CheckDone(r, "request"));
  return req;
}

Result<MatchResponse> DecodeResponse(std::string_view payload) {
  Reader r(payload);
  if (r.GetU32() != kResponseMagic) {
    return Status::InvalidArgument("bad response magic");
  }
  MatchResponse resp;
  resp.trace_id = r.GetU64();
  const uint32_t code = r.GetU32();
  if (code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("unknown status code " +
                                   std::to_string(code));
  }
  resp.code = static_cast<StatusCode>(code);
  resp.message = r.GetString();
  resp.probability = r.GetF64();
  resp.is_match = r.GetU8() != 0;
  resp.queue_us = r.GetF64();
  resp.infer_us = r.GetF64();
  resp.server_us = r.GetF64();
  resp.batch_size = r.GetU32();
  resp.stats_json = r.GetString();
  EMX_RETURN_IF_ERROR(CheckDone(r, "response"));
  return resp;
}

Status FrameBuffer::Next(std::string_view* payload, bool* complete) {
  *complete = false;
  if (!poisoned_.ok()) return poisoned_;
  if (buf_.size() < 4) return Status::OK();
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[i])) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    poisoned_ = Status::InvalidArgument(
        "frame length " + std::to_string(len) + " exceeds limit " +
        std::to_string(kMaxFrameBytes));
    return poisoned_;
  }
  if (buf_.size() - 4 < len) return Status::OK();  // incomplete: wait
  current_.assign(buf_, 4, len);
  buf_.erase(0, 4 + static_cast<size_t>(len));
  *payload = current_;
  *complete = true;
  return Status::OK();
}

}  // namespace net
}  // namespace emx
