#include "net/fleet_router.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <utility>

#include "net/socket.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "serve/serving_metrics.h"

namespace emx {
namespace net {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Fnv1a(std::string_view s, uint64_t h = kFnvOffset) {
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

MatchResponse ErrorResponse(uint64_t trace_id, const Status& status) {
  MatchResponse resp;
  resp.trace_id = trace_id;
  resp.code = status.code();
  resp.message = status.message();
  return resp;
}

/// In-process shard: wraps a MatcherEngine. A waiter thread converts the
/// engine's futures into the router's callback shape in FIFO order (the
/// engine itself resolves every accepted future, so the waiter never
/// blocks unboundedly).
class LocalShard : public ShardBackend {
 public:
  LocalShard(serve::MatcherEngine* engine, int index)
      : engine_(engine), name_("local:" + std::to_string(index)) {
    waiter_ = std::thread(&LocalShard::WaiterLoop, this);
  }

  ~LocalShard() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    if (waiter_.joinable()) waiter_.join();
  }

  void Dispatch(const MatchRequest& req,
                std::function<void(MatchResponse)> done) override {
    if (req.is_stats_probe()) {
      MatchResponse resp;
      resp.trace_id = req.trace_id;
      resp.stats_json = "{\"engine\": " + engine_->MetricsJson() + "}";
      done(std::move(resp));
      return;
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    Waiting w;
    w.trace_id = req.trace_id;
    w.future = engine_->Submit(req.text_a, req.text_b,
                               static_cast<int64_t>(req.deadline_us));
    w.done = std::move(done);
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(w));
    }
    cv_.notify_one();
  }

  int64_t in_flight() const override {
    return in_flight_.load(std::memory_order_relaxed);
  }

  std::string StatsJson() override {
    return "{\"engine\": " + engine_->MetricsJson() + "}";
  }

  std::string name() const override { return name_; }

 private:
  struct Waiting {
    uint64_t trace_id = 0;
    std::future<serve::MatchResult> future;
    std::function<void(MatchResponse)> done;
  };

  void WaiterLoop() {
    while (true) {
      Waiting w;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
        if (queue_.empty()) return;  // stopping and drained
        w = std::move(queue_.front());
        queue_.pop_front();
      }
      serve::MatchResult r = w.future.get();
      MatchResponse resp;
      resp.trace_id = w.trace_id;
      resp.code = r.status.code();
      resp.message = r.status.message();
      resp.probability = r.probability;
      resp.is_match = r.is_match;
      resp.queue_us = r.queue_us;
      resp.infer_us = r.total_us;
      resp.batch_size = static_cast<uint32_t>(r.batch_size);
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      w.done(std::move(resp));
    }
  }

  serve::MatcherEngine* engine_;
  const std::string name_;
  std::atomic<int64_t> in_flight_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Waiting> queue_;
  bool stopping_ = false;
  std::thread waiter_;
};

/// Remote shard: one pipelined connection to a MatchServer. Writes are
/// serialized under a mutex; a reader thread demultiplexes responses back
/// to their callbacks by trace id. A dead socket fails all pending (and
/// all future) dispatches with Unavailable — the router's hedging/routing
/// layer is responsible for living without the shard.
class RemoteShard : public ShardBackend {
 public:
  explicit RemoteShard(uint16_t port)
      : port_(port), name_("remote:" + std::to_string(port)) {}

  ~RemoteShard() override {
    stopping_.store(true, std::memory_order_release);
    // shutdown(2), not Close(): the reader thread is still polling this
    // fd, and Close() would race on the fd member (worse, the fd number
    // could be recycled under the reader). The Socket member's own
    // destructor closes after the join.
    sock_.ShutdownBoth();
    if (reader_.joinable()) reader_.join();
    FailAllPending(Status::Unavailable("shard shut down"));
  }

  Status Connect() {
    auto sock = ConnectTcp(port_);
    if (!sock.ok()) return sock.status();
    sock_ = std::move(sock).value();
    reader_ = std::thread(&RemoteShard::ReaderLoop, this);
    return Status::OK();
  }

  void Dispatch(const MatchRequest& req,
                std::function<void(MatchResponse)> done) override {
    if (dead_.load(std::memory_order_acquire)) {
      done(ErrorResponse(req.trace_id,
                         Status::Unavailable(name_ + " connection lost")));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_[req.trace_id] = std::move(done);
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    std::string frame;
    EncodeRequest(req, &frame);
    Status st;
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      st = SendAll(sock_.fd(), frame.data(), frame.size());
    }
    if (!st.ok()) {
      std::function<void(MatchResponse)> cb;
      {
        std::lock_guard<std::mutex> lock(pending_mu_);
        auto it = pending_.find(req.trace_id);
        if (it != pending_.end()) {
          cb = std::move(it->second);
          pending_.erase(it);
        }
      }
      if (cb) {
        in_flight_.fetch_sub(1, std::memory_order_relaxed);
        cb(ErrorResponse(req.trace_id, st));
      }
    }
  }

  int64_t in_flight() const override {
    return in_flight_.load(std::memory_order_relaxed);
  }

  std::string StatsJson() override {
    MatchRequest probe;
    probe.trace_id = next_probe_id_.fetch_add(1, std::memory_order_relaxed);
    probe.flags = kFlagStats;
    auto p = std::make_shared<std::promise<std::string>>();
    auto fut = p->get_future();
    Dispatch(probe, [p](MatchResponse resp) {
      p->set_value(std::move(resp.stats_json));
    });
    if (fut.wait_for(std::chrono::seconds(2)) != std::future_status::ready) {
      return std::string();
    }
    return fut.get();
  }

  std::string name() const override { return name_; }

 private:
  void ReaderLoop() {
    FrameBuffer frames;
    char buf[1 << 16];
    while (!stopping_.load(std::memory_order_acquire)) {
      auto got = RecvSome(sock_.fd(), buf, sizeof(buf), 200);
      if (!got.ok()) {
        if (got.status().code() == StatusCode::kDeadlineExceeded) continue;
        break;  // socket error
      }
      if (got.value() == 0) break;  // peer closed
      frames.Append(buf, got.value());
      while (true) {
        std::string_view payload;
        bool complete = false;
        if (!frames.Next(&payload, &complete).ok()) {
          stopping_.store(true, std::memory_order_release);
          break;
        }
        if (!complete) break;
        auto resp = DecodeResponse(payload);
        if (!resp.ok()) {
          stopping_.store(true, std::memory_order_release);
          break;
        }
        std::function<void(MatchResponse)> cb;
        {
          std::lock_guard<std::mutex> lock(pending_mu_);
          auto it = pending_.find(resp.value().trace_id);
          if (it != pending_.end()) {
            cb = std::move(it->second);
            pending_.erase(it);
          }
        }
        if (cb) {
          in_flight_.fetch_sub(1, std::memory_order_relaxed);
          cb(std::move(resp).value());
        }
      }
    }
    dead_.store(true, std::memory_order_release);
    FailAllPending(Status::Unavailable(name_ + " connection lost"));
  }

  void FailAllPending(const Status& status) {
    std::unordered_map<uint64_t, std::function<void(MatchResponse)>> orphans;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      orphans.swap(pending_);
    }
    for (auto& [id, cb] : orphans) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      cb(ErrorResponse(id, status));
    }
  }

  const uint16_t port_;
  const std::string name_;
  Socket sock_;
  std::atomic<bool> dead_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<uint64_t> next_probe_id_{0xC000000000000000ull};
  std::mutex write_mu_;
  std::mutex pending_mu_;
  std::unordered_map<uint64_t, std::function<void(MatchResponse)>> pending_;
  std::thread reader_;
};

}  // namespace

FleetRouter::FleetRouter(const RouterOptions& options)
    : options_(options),
      submitted_(registry_.GetCounter("router.submitted")),
      completed_(registry_.GetCounter("router.completed")),
      rejected_(registry_.GetCounter("router.rejected")),
      hedges_(registry_.GetCounter("router.hedges")),
      hedge_wins_(registry_.GetCounter("router.hedge_wins")),
      hedge_wasted_(registry_.GetCounter("router.hedge_wasted")),
      deadline_exceeded_(registry_.GetCounter("router.deadline_exceeded")),
      shard_errors_(registry_.GetCounter("router.shard_errors")),
      latencies_(new std::atomic<double>[kLatencyWindow]) {
  for (size_t i = 0; i < kLatencyWindow; ++i) {
    latencies_[i].store(0, std::memory_order_relaxed);
  }
  monitor_ = std::thread(&FleetRouter::MonitorLoop, this);
}

FleetRouter::~FleetRouter() { Shutdown(); }

Status FleetRouter::AddLocalShard(serve::MatcherEngine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("local shard requires an engine");
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<LocalShard>(
      engine, static_cast<int>(shards_.size())));
  BuildRing();
  return Status::OK();
}

Status FleetRouter::AddRemoteShard(uint16_t port) {
  auto shard = std::make_unique<RemoteShard>(port);
  EMX_RETURN_IF_ERROR(shard->Connect());
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::move(shard));
  BuildRing();
  return Status::OK();
}

Status FleetRouter::AddShardForTest(std::unique_ptr<ShardBackend> backend) {
  if (backend == nullptr) {
    return Status::InvalidArgument("null test backend");
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::move(backend));
  BuildRing();
  return Status::OK();
}

void FleetRouter::BuildRing() {
  ring_.clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (int v = 0; v < options_.vnodes_per_shard; ++v) {
      // Seeded by shard *index*, not name: names of remote shards embed
      // their (possibly ephemeral) port, which would re-shuffle the key
      // space on every restart. Index seeding makes placement a pure
      // function of fleet size.
      const std::string key =
          "shard-" + std::to_string(s) + "#" + std::to_string(v);
      ring_.emplace_back(Fnv1a(key), static_cast<int>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

int FleetRouter::PickShard(const std::string& a, const std::string& b) const {
  if (options_.policy == RoutePolicy::kLeastLoaded) {
    int best = 0;
    int64_t best_load = shards_[0]->in_flight();
    for (size_t s = 1; s < shards_.size(); ++s) {
      const int64_t load = shards_[s]->in_flight();
      if (load < best_load) {
        best = static_cast<int>(s);
        best_load = load;
      }
    }
    return best;
  }
  uint64_t h = Fnv1a(a);
  h = Fnv1a("\x1f", h);
  h = Fnv1a(b, h);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, 0),
      [](const auto& lhs, const auto& rhs) { return lhs.first < rhs.first; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

int FleetRouter::PickHedgeShard(int primary) const {
  int best = -1;
  int64_t best_load = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (static_cast<int>(s) == primary) continue;
    const int64_t load = shards_[s]->in_flight();
    if (best < 0 || load < best_load) {
      best = static_cast<int>(s);
      best_load = load;
    }
  }
  return best;
}

std::future<RouteResult> FleetRouter::Submit(std::string text_a,
                                             std::string text_b,
                                             int64_t timeout_us) {
  if (timeout_us < 0) timeout_us = options_.default_timeout_us;
  auto out = std::make_shared<Outstanding>();
  out->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  out->start = Clock::now();
  out->deadline = timeout_us > 0
                      ? out->start + std::chrono::microseconds(timeout_us)
                      : Clock::time_point::max();
  out->budget_us = timeout_us > 0 ? static_cast<uint64_t>(timeout_us) : 0;
  std::future<RouteResult> fut = out->promise.get_future();

  if (shutdown_.load(std::memory_order_acquire) || shards_.empty()) {
    RouteResult r;
    r.status = shards_.empty()
                   ? Status::InvalidArgument("router has no shards")
                   : Status::Unavailable("router is shut down");
    out->done.store(1, std::memory_order_release);
    out->promise.set_value(std::move(r));
    return fut;
  }

  // Admission control: fail fast at the budget instead of queueing. The
  // slot is claimed optimistically and released on completion.
  const int64_t admitted =
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (admitted >= options_.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_->Add();
    obs::TraceInstant("net.admission_reject");
    RouteResult r;
    r.status = Status::ResourceExhausted(
        "fleet in-flight budget (" + std::to_string(options_.max_in_flight) +
        ") exhausted");
    out->done.store(1, std::memory_order_release);
    out->promise.set_value(std::move(r));
    return fut;
  }

  submitted_->Add();
  out->text_a = std::move(text_a);
  out->text_b = std::move(text_b);
  int shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shard = PickShard(out->text_a, out->text_b);
    out->primary_shard = shard;
    outstanding_[out->id] = out;
  }
  EMX_TRACE_SPAN("net.route", [&] {
    return obs::KeyValues({{"shard", shard},
                           {"in_flight", admitted + 1}});
  });
  DispatchTo(shard, out, /*is_hedge=*/false);
  return fut;
}

RouteResult FleetRouter::Match(std::string text_a, std::string text_b,
                               int64_t timeout_us) {
  return Submit(std::move(text_a), std::move(text_b), timeout_us).get();
}

void FleetRouter::DispatchTo(int shard,
                             const std::shared_ptr<Outstanding>& out,
                             bool is_hedge) {
  MatchRequest req;
  req.trace_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  req.text_a = out->text_a;
  req.text_b = out->text_b;
  req.flags = is_hedge ? kFlagHedge : 0;
  if (out->deadline != Clock::time_point::max()) {
    const double remaining_us = ElapsedUs(Clock::now(), out->deadline);
    // A request already past its deadline still gets a minimal budget so
    // the shard rejects it quickly instead of treating 0 as "no deadline".
    req.deadline_us =
        remaining_us > 1 ? static_cast<uint64_t>(remaining_us) : 1;
  }

  FleetRouter* router = this;
  shards_[static_cast<size_t>(shard)]->Dispatch(
      req, [router, out, shard, is_hedge](MatchResponse resp) {
        if (out->done.load(std::memory_order_acquire) != 0) {
          // Lost the race (hedge pair already answered, or deadline fired).
          if (is_hedge || out->hedged.load(std::memory_order_acquire)) {
            router->hedge_wasted_->Add();
          }
          return;
        }
        if (resp.code == StatusCode::kUnavailable && !is_hedge &&
            !out->hedged.load(std::memory_order_acquire)) {
          router->shard_errors_->Add();
        }
        RouteResult r;
        r.status = resp.ToStatus();
        r.probability = resp.probability;
        r.is_match = resp.is_match;
        r.shard = shard;
        r.hedged = out->hedged.load(std::memory_order_acquire);
        r.hedge_won = is_hedge;
        r.queue_us = resp.queue_us;
        r.infer_us = resp.infer_us;
        r.server_us = resp.server_us;
        r.batch_size = resp.batch_size;
        router->Complete(out, std::move(r));
      });
}

void FleetRouter::Complete(const std::shared_ptr<Outstanding>& out,
                           RouteResult result) {
  int expected = 0;
  if (!out->done.compare_exchange_strong(expected, 1,
                                         std::memory_order_acq_rel)) {
    return;  // a racing completion won; drop this one
  }
  result.total_us = ElapsedUs(out->start, Clock::now());
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  completed_->Add();
  // Counters must land before set_value: a caller that has observed the
  // result (e.g. a test reading the registry right after Match returns)
  // must see them. Only the CAS winner gets here, so a hedge that lost to
  // the deadline scan never counts as a win.
  if (result.hedge_won) {
    hedge_wins_->Add();
    obs::TraceInstant("net.hedge_win");
  }
  if (result.status.ok()) {
    const uint64_t slot =
        latency_ops_.fetch_add(1, std::memory_order_relaxed) % kLatencyWindow;
    latencies_[slot].store(result.total_us, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_.erase(out->id);
  }
  out->promise.set_value(std::move(result));
}

double FleetRouter::HedgeThresholdUs() const {
  const uint64_t ops = latency_ops_.load(std::memory_order_relaxed);
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(ops, kLatencyWindow));
  std::vector<double> window(n);
  for (size_t i = 0; i < n; ++i) {
    window[i] = latencies_[i].load(std::memory_order_relaxed);
  }
  std::sort(window.begin(), window.end());
  const double pq = serve::Percentile(window, options_.hedge_quantile);
  return std::max(static_cast<double>(options_.hedge_min_us), pq);
}

void FleetRouter::MonitorLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.hedge_poll_us));
    const double threshold_us = HedgeThresholdUs();
    const Clock::time_point now = Clock::now();

    std::vector<std::shared_ptr<Outstanding>> open;
    {
      std::lock_guard<std::mutex> lock(mu_);
      open.reserve(outstanding_.size());
      for (auto& [id, out] : outstanding_) open.push_back(out);
    }

    for (const auto& out : open) {
      if (out->done.load(std::memory_order_acquire) != 0) continue;

      if (now >= out->deadline) {
        RouteResult r;
        r.status = Status::DeadlineExceeded("deadline passed at the router");
        r.shard = out->primary_shard;
        r.hedged = out->hedged.load(std::memory_order_acquire);
        deadline_exceeded_->Add();
        Complete(out, std::move(r));
        continue;
      }

      if (!options_.hedging || shards_.size() < 2) continue;
      if (ElapsedUs(out->start, now) < threshold_us) continue;
      if (out->hedged.exchange(true, std::memory_order_acq_rel)) continue;
      const int hedge_shard = PickHedgeShard(out->primary_shard);
      if (hedge_shard < 0) continue;
      out->hedge_shard = hedge_shard;
      hedges_->Add();
      obs::TraceInstant("net.hedge");
      DispatchTo(hedge_shard, out, /*is_hedge=*/true);
    }
  }
}

std::string FleetRouter::FleetSnapshotJson() {
  std::vector<double> window;
  {
    const uint64_t ops = latency_ops_.load(std::memory_order_relaxed);
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(ops, kLatencyWindow));
    window.resize(n);
    for (size_t i = 0; i < n; ++i) {
      window[i] = latencies_[i].load(std::memory_order_relaxed);
    }
    std::sort(window.begin(), window.end());
  }

  std::string out = "{\"router\": {\"policy\": ";
  obs::AppendJsonString(&out,
                        options_.policy == RoutePolicy::kConsistentHash
                            ? "consistent_hash"
                            : "least_loaded");
  out += ", \"shards\": " + std::to_string(shards_.size());
  out += ", \"max_in_flight\": " + std::to_string(options_.max_in_flight);
  out += ", \"in_flight\": " + std::to_string(in_flight());
  out += ", \"submitted\": " + std::to_string(submitted_->Value());
  out += ", \"completed\": " + std::to_string(completed_->Value());
  out += ", \"rejected\": " + std::to_string(rejected_->Value());
  out += ", \"hedges\": " + std::to_string(hedges_->Value());
  out += ", \"hedge_wins\": " + std::to_string(hedge_wins_->Value());
  out += ", \"hedge_wasted\": " + std::to_string(hedge_wasted_->Value());
  out += ", \"deadline_exceeded\": " +
         std::to_string(deadline_exceeded_->Value());
  out += ", \"shard_errors\": " + std::to_string(shard_errors_->Value());
  out += ", \"hedge_threshold_us\": ";
  obs::AppendJsonDouble(&out, HedgeThresholdUs());
  out += ", \"p50_us\": ";
  obs::AppendJsonDouble(&out, serve::Percentile(window, 0.50));
  out += ", \"p95_us\": ";
  obs::AppendJsonDouble(&out, serve::Percentile(window, 0.95));
  out += ", \"p99_us\": ";
  obs::AppendJsonDouble(&out, serve::Percentile(window, 0.99));
  out += "}, \"shards\": [";
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (s > 0) out += ", ";
    out += "{\"name\": ";
    obs::AppendJsonString(&out, shards_[s]->name());
    out += ", \"in_flight\": " + std::to_string(shards_[s]->in_flight());
    out += ", \"stats\": ";
    const std::string stats = shards_[s]->StatsJson();
    out += stats.empty() ? "null" : stats;
    out += "}";
  }
  out += "]}";
  return out;
}

void FleetRouter::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  if (monitor_.joinable()) monitor_.join();
  // Stop the shard backends first: their destructors join the threads that
  // invoke completion callbacks, so after this no callback can race the
  // leftover sweep below. The swap happens under mu_ (Submit reads
  // shards_), but destruction runs outside it — backend teardown calls
  // Complete(), which takes mu_.
  std::vector<std::unique_ptr<ShardBackend>> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards.swap(shards_);
  }
  shards.clear();

  std::unordered_map<uint64_t, std::shared_ptr<Outstanding>> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(outstanding_);
  }
  for (auto& [id, out] : leftovers) {
    int expected = 0;
    if (out->done.compare_exchange_strong(expected, 1,
                                          std::memory_order_acq_rel)) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      RouteResult r;
      r.status = Status::Unavailable("router is shut down");
      out->promise.set_value(std::move(r));
    }
  }
}

}  // namespace net
}  // namespace emx
