#ifndef EMX_NET_SOCKET_H_
#define EMX_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace emx {
namespace net {

/// Thin Status-returning wrappers over POSIX TCP sockets. Every failure
/// carries the syscall name and strerror(errno) text so callers can print
/// an actionable message instead of exiting silently.

/// Owning socket fd; closes on destruction. Movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Relinquishes ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

  /// shutdown(2) both directions without closing or mutating the fd.
  /// Use this to wake a thread blocked in RecvSome/poll on this socket so
  /// it can exit before the fd is closed — Close() concurrent with a
  /// reader is a data race on the fd member (and a use-after-close once
  /// the fd number is recycled).
  void ShutdownBoth() const;

 private:
  int fd_ = -1;
};

/// Formats "<syscall>: <strerror(errno)>" for error statuses.
std::string ErrnoText(const char* syscall_name);

/// Binds and listens on 127.0.0.1:`port` (SO_REUSEADDR). `port` 0 asks the
/// kernel for an ephemeral port; the actually-bound port is written to
/// `*bound_port` either way. The listener fd is non-blocking.
Result<Socket> ListenTcp(uint16_t port, uint16_t* bound_port);

/// Connects to 127.0.0.1:`port` (blocking, with `timeout_ms` on the
/// connect itself). The returned socket is blocking with TCP_NODELAY set.
Result<Socket> ConnectTcp(uint16_t port, int timeout_ms = 5000);

/// Writes all `n` bytes, polling on short writes/EAGAIN. Fails with
/// Unavailable when the peer closed, IoError on other errors.
Status SendAll(int fd, const char* data, size_t n);

/// Reads up to `n` bytes, waiting at most `timeout_ms` for readability.
/// Returns the byte count (0 = peer closed orderly), DeadlineExceeded on
/// timeout, IoError on socket errors.
Result<size_t> RecvSome(int fd, char* buf, size_t n, int timeout_ms);

/// Marks `fd` non-blocking.
Status SetNonBlocking(int fd);

}  // namespace net
}  // namespace emx

#endif  // EMX_NET_SOCKET_H_
