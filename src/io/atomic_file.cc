#include "io/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace emx {
namespace io {

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    open_status_ =
        Status::IoError("cannot open " + tmp_path_ + " for writing");
  }
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) {
    if (out_.is_open()) out_.close();
    if (open_status_.ok()) std::remove(tmp_path_.c_str());
  }
}

Status AtomicFileWriter::Commit() {
  if (!open_status_.ok()) return open_status_;
  if (committed_) return Status::Internal("Commit called twice");
  out_.flush();
  const bool good = out_.good();
  out_.close();
  if (!good || !out_.good()) {
    std::remove(tmp_path_.c_str());
    committed_ = true;  // nothing left to clean up
    return Status::IoError("write to " + tmp_path_ + " failed");
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const Status s = Status::IoError("rename(" + tmp_path_ + ", " + path_ +
                                     "): " + std::strerror(errno));
    std::remove(tmp_path_.c_str());
    committed_ = true;
    return s;
  }
  committed_ = true;
  return Status::OK();
}

}  // namespace io
}  // namespace emx
