#include "io/emxm.h"

#include <algorithm>
#include <cstring>

#include "io/atomic_file.h"

namespace emx {
namespace io {
namespace {

uint64_t AlignUp(uint64_t v) {
  return (v + (kEmxmAlign - 1)) & ~(kEmxmAlign - 1);
}

/// `offset + bytes <= limit` without wrapping.
bool RangeOk(uint64_t offset, uint64_t bytes, uint64_t limit) {
  return offset <= limit && bytes <= limit - offset;
}

bool KnownKind(uint32_t kind) {
  return kind >= static_cast<uint32_t>(SectionKind::kF32Tensor) &&
         kind <= static_cast<uint32_t>(SectionKind::kManifest);
}

// Caps far above any real model, far below an allocation that could hurt.
constexpr uint64_t kMaxSections = 1ull << 20;
constexpr uint64_t kMaxNameBytes = 1ull << 16;

}  // namespace

void EmxmWriter::AddSection(std::string name, SectionKind kind,
                            const std::array<uint64_t, 6>& aux,
                            const void* payload, uint64_t payload_bytes) {
  sections_.push_back(
      Pending{std::move(name), kind, aux, payload, payload_bytes});
}

Status EmxmWriter::WriteFile(const std::string& path) const {
  // Lay out the whole file first so the header and table are final before
  // the first byte is written.
  const uint64_t table_offset = sizeof(EmxmHeader);
  const uint64_t table_bytes = sections_.size() * sizeof(EmxmSectionEntry);
  const uint64_t strtab_offset = table_offset + table_bytes;

  std::vector<EmxmSectionEntry> entries(sections_.size());
  std::string strtab;
  for (size_t i = 0; i < sections_.size(); ++i) {
    entries[i] = EmxmSectionEntry{};
    entries[i].name_offset = strtab_offset + strtab.size();
    entries[i].name_bytes = sections_[i].name.size();
    entries[i].kind = static_cast<uint32_t>(sections_[i].kind);
    std::memcpy(entries[i].aux, sections_[i].aux.data(),
                sizeof(entries[i].aux));
    strtab += sections_[i].name;
  }

  uint64_t cursor = AlignUp(strtab_offset + strtab.size());
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].payload_bytes == 0) continue;
    entries[i].payload_offset = cursor;
    entries[i].payload_bytes = sections_[i].payload_bytes;
    cursor = AlignUp(cursor + sections_[i].payload_bytes);
  }

  EmxmHeader header{};
  header.magic = kEmxmMagic;
  header.version = kEmxmVersion;
  header.header_bytes = sizeof(EmxmHeader);
  header.section_count = sections_.size();
  header.table_offset = table_offset;
  header.strtab_offset = strtab_offset;
  header.strtab_bytes = strtab.size();
  // file_bytes is where the *last* payload ends, not the aligned cursor:
  // trailing pad after the final section would make the mapped size
  // disagree with the sum of parts for no benefit.
  uint64_t file_bytes = AlignUp(strtab_offset + strtab.size());
  for (const auto& e : entries) {
    if (e.payload_bytes > 0) {
      file_bytes = e.payload_offset + e.payload_bytes;
    }
  }
  header.file_bytes = file_bytes;

  AtomicFileWriter writer(path);
  EMX_RETURN_IF_ERROR(writer.status());
  std::ofstream& out = writer.stream();

  uint64_t written = 0;
  auto put = [&](const void* p, uint64_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    written += n;
  };
  static constexpr char kZeros[kEmxmAlign] = {};
  auto pad_to = [&](uint64_t offset) {
    while (written < offset) {
      const uint64_t n = std::min<uint64_t>(offset - written, kEmxmAlign);
      put(kZeros, n);
    }
  };

  put(&header, sizeof(header));
  put(entries.data(), table_bytes);
  put(strtab.data(), strtab.size());
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].payload_bytes == 0) continue;
    pad_to(entries[i].payload_offset);
    put(sections_[i].payload, sections_[i].payload_bytes);
  }
  if (written != file_bytes) {
    return Status::Internal("EMXM layout mismatch: wrote " +
                            std::to_string(written) + " bytes, planned " +
                            std::to_string(file_bytes));
  }
  return writer.Commit();
}

Result<std::shared_ptr<const EmxmReader>> EmxmReader::Open(
    const std::string& path) {
  EMX_ASSIGN_OR_RETURN(MmapFile map, MmapFile::Open(path));
  const uint64_t size = map.size();
  const uint8_t* base = map.data();

  auto bad = [&](const std::string& what) {
    return Status::InvalidArgument("EMXM " + path + ": " + what);
  };

  if (size < sizeof(EmxmHeader)) {
    return bad("file shorter than header (" + std::to_string(size) +
               " bytes)");
  }
  EmxmHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (header.magic != kEmxmMagic) return bad("bad magic");
  if (header.version != kEmxmVersion) {
    return bad("unsupported version " + std::to_string(header.version));
  }
  if (header.header_bytes != sizeof(EmxmHeader)) {
    return bad("unexpected header size " +
               std::to_string(header.header_bytes));
  }
  if (header.file_bytes != size) {
    // A truncated copy or a torn non-atomic write shows up here before any
    // section pointer is formed.
    return bad("header claims " + std::to_string(header.file_bytes) +
               " bytes but file has " + std::to_string(size));
  }
  if (header.section_count > kMaxSections) {
    return bad("implausible section count " +
               std::to_string(header.section_count));
  }
  const uint64_t table_bytes =
      header.section_count * sizeof(EmxmSectionEntry);
  if (!RangeOk(header.table_offset, table_bytes, size)) {
    return bad("section table out of bounds");
  }
  if (!RangeOk(header.strtab_offset, header.strtab_bytes, size)) {
    return bad("string table out of bounds");
  }

  auto reader = std::shared_ptr<EmxmReader>(new EmxmReader(std::move(map)));
  base = reader->map_.data();
  reader->sections_.reserve(header.section_count);

  for (uint64_t i = 0; i < header.section_count; ++i) {
    EmxmSectionEntry entry;
    std::memcpy(&entry, base + header.table_offset + i * sizeof(entry),
                sizeof(entry));
    const std::string at = "section " + std::to_string(i);
    if (!KnownKind(entry.kind)) {
      return bad(at + ": unknown kind " + std::to_string(entry.kind));
    }
    if (entry.name_bytes > kMaxNameBytes) {
      return bad(at + ": name length " + std::to_string(entry.name_bytes));
    }
    if (entry.name_offset < header.strtab_offset ||
        !RangeOk(entry.name_offset, entry.name_bytes,
                 header.strtab_offset + header.strtab_bytes)) {
      return bad(at + ": name outside string table");
    }
    if (entry.payload_bytes > 0) {
      if (entry.payload_offset % kEmxmAlign != 0) {
        return bad(at + ": payload misaligned (offset " +
                   std::to_string(entry.payload_offset) + ")");
      }
      if (!RangeOk(entry.payload_offset, entry.payload_bytes, size)) {
        return bad(at + ": payload out of bounds");
      }
    }

    Section s;
    s.name.assign(reinterpret_cast<const char*>(base + entry.name_offset),
                  entry.name_bytes);
    s.kind = static_cast<SectionKind>(entry.kind);
    std::memcpy(s.aux.data(), entry.aux, sizeof(entry.aux));
    s.bytes = entry.payload_bytes;
    s.data = entry.payload_bytes > 0 ? base + entry.payload_offset : nullptr;
    if (reader->by_name_.count(s.name) > 0) {
      return bad("duplicate section name \"" + s.name + "\"");
    }
    reader->by_name_.emplace(s.name, reader->sections_.size());
    reader->sections_.push_back(std::move(s));
  }

  // Weight pages are touched in whatever order the first forward needs
  // them; telling the kernel not to read ahead keeps the cold-start cost
  // proportional to what is actually used.
  (void)reader->map_.Advise(MapAdvice::kRandom);
  return std::shared_ptr<const EmxmReader>(std::move(reader));
}

const Section* EmxmReader::Find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : &sections_[it->second];
}

}  // namespace io
}  // namespace emx
