#ifndef EMX_IO_EMXM_H_
#define EMX_IO_EMXM_H_

#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "io/mmap_file.h"
#include "util/status.h"

namespace emx {
namespace io {

// The "EMXM1" zero-copy model container.
//
//   +-----------------------------+  offset 0
//   | EmxmHeader (64 bytes)       |
//   +-----------------------------+  header.table_offset
//   | EmxmSectionEntry[count]     |  96 bytes each
//   +-----------------------------+  header.strtab_offset
//   | string table (section names)|
//   +-----------------------------+  64-byte aligned
//   | payload 0 (64-byte aligned) |
//   | payload 1 (64-byte aligned) |
//   | ...                         |
//   +-----------------------------+  header.file_bytes == file size
//
// Every multi-byte field is little-endian. The earlier "EMXP"/"EMXQ"
// formats wrote host-endian structs through ofstream, which happened to be
// LE on every machine this repo targets but was an accident of the build
// host; the container makes the contract explicit and enforces it at
// compile time (the static_asserts below), so a mapped file is readable
// by pointer on any supported platform with zero parsing. Payloads are
// 64-byte aligned so an int8 weight tile or an fp32 tensor row can be
// loaded with aligned SIMD instructions straight out of the mapping.

static_assert(std::endian::native == std::endian::little,
              "EMXM1 containers are little-endian and read in place; "
              "big-endian hosts would need byte-swapping loaders");
static_assert(sizeof(void*) == 8 && sizeof(std::size_t) == 8,
              "EMXM1 offsets are 64-bit; 32-bit hosts cannot map "
              "multi-GB model containers");
static_assert(sizeof(float) == 4 && std::numeric_limits<float>::is_iec559,
              "EMXM1 stores IEEE-754 binary32 tensor payloads");

/// Payload alignment: one cache line, and the unit the int8 GEMM loads
/// per 512-bit instruction.
inline constexpr uint64_t kEmxmAlign = 64;

/// "EMXM1\0\0\0" as a little-endian u64.
inline constexpr uint64_t kEmxmMagic = 0x0000'0031'4d58'4d45ull;
inline constexpr uint32_t kEmxmVersion = 1;

/// What a section's payload holds; `aux` is interpreted per kind.
enum class SectionKind : uint32_t {
  /// fp32 tensor. aux[0] = ndim (<= 5), aux[1 + i] = dim i.
  /// payload = row-major floats, 4 * prod(dims) bytes.
  kF32Tensor = 1,
  /// Packed int8 weight image in the quant kernel's blocked layout.
  /// aux = {in, out, k_padded, n_padded, f32-bits(act_scale),
  /// act_zero_point}; payload = n_padded * k_padded int8 bytes, read by
  /// the GEMM directly from the mapping.
  kInt8Packed = 2,
  /// fp32 vector. aux[0] = count; payload = 4 * count bytes.
  kF32Vec = 3,
  /// int32 vector. aux[0] = count; payload = 4 * count bytes.
  kI32Vec = 4,
  /// Fused-FFN metadata, no payload. aux = {activation,
  /// f32-bits(mid_scale), mid_zero_point}.
  kFfnMeta = 5,
  /// Model manifest: payload = architecture name (unterminated bytes);
  /// aux = {fp32 tensor count, int8 linear count, ffn count}.
  kManifest = 6,
};

/// Round-trips a float through the u64 aux slots.
inline uint64_t AuxFromF32(float v) {
  return static_cast<uint64_t>(std::bit_cast<uint32_t>(v));
}
inline float F32FromAux(uint64_t v) {
  return std::bit_cast<float>(static_cast<uint32_t>(v));
}

/// On-disk header, mapped in place.
struct EmxmHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t header_bytes;  // sizeof(EmxmHeader)
  uint64_t section_count;
  uint64_t table_offset;
  uint64_t strtab_offset;
  uint64_t strtab_bytes;
  uint64_t file_bytes;  // must equal the mapped size exactly
  uint64_t reserved;
};
static_assert(sizeof(EmxmHeader) == 64, "EMXM1 header is one cache line");

/// On-disk section-table entry, mapped in place.
struct EmxmSectionEntry {
  uint64_t name_offset;  // absolute, inside the string table
  uint64_t name_bytes;
  uint32_t kind;
  uint32_t reserved0;
  uint64_t payload_offset;  // absolute; 64-byte aligned (0 when empty)
  uint64_t payload_bytes;
  uint64_t aux[6];
  uint64_t reserved1;
};
static_assert(sizeof(EmxmSectionEntry) == 96,
              "section entries are fixed-stride for in-place indexing");

/// A validated view of one section. `data` points into the mapping.
struct Section {
  std::string name;
  SectionKind kind = SectionKind::kF32Tensor;
  std::array<uint64_t, 6> aux{};
  const uint8_t* data = nullptr;
  uint64_t bytes = 0;
};

/// Accumulates sections, then writes the container in one pass through an
/// AtomicFileWriter (the publish primitive hot-swap watchers rely on:
/// `path` either holds the old complete file or the new complete file,
/// never a torn intermediate). Payload pointers are borrowed — they must
/// stay valid until WriteFile returns; nothing is copied.
class EmxmWriter {
 public:
  /// `payload` may be null iff `payload_bytes` is 0.
  void AddSection(std::string name, SectionKind kind,
                  const std::array<uint64_t, 6>& aux, const void* payload,
                  uint64_t payload_bytes);

  Status WriteFile(const std::string& path) const;

  int64_t section_count() const {
    return static_cast<int64_t>(sections_.size());
  }

 private:
  struct Pending {
    std::string name;
    SectionKind kind;
    std::array<uint64_t, 6> aux;
    const void* payload;
    uint64_t payload_bytes;
  };
  std::vector<Pending> sections_;
};

/// Opens a container by mmap and validates the entire structure up front:
/// magic/version, header geometry, table and string-table bounds, per-
/// section name bounds, payload bounds, payload alignment, known kinds,
/// and that header.file_bytes matches the real file size (no trailing
/// garbage, no truncation). After Open succeeds, every Section::data
/// pointer is guaranteed in-bounds — loaders only need kind-specific
/// checks. Returned shared so weight backends can keep the mapping alive
/// for as long as they serve from it.
class EmxmReader {
 public:
  static Result<std::shared_ptr<const EmxmReader>> Open(
      const std::string& path);

  const std::vector<Section>& sections() const { return sections_; }
  /// Null when no section has that name.
  const Section* Find(std::string_view name) const;

  uint64_t file_bytes() const { return map_.size(); }
  const std::string& path() const { return map_.path(); }
  const MmapFile& mapping() const { return map_; }

 private:
  explicit EmxmReader(MmapFile map) : map_(std::move(map)) {}

  MmapFile map_;
  std::vector<Section> sections_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace io
}  // namespace emx

#endif  // EMX_IO_EMXM_H_
