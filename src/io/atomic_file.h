#ifndef EMX_IO_ATOMIC_FILE_H_
#define EMX_IO_ATOMIC_FILE_H_

#include <fstream>
#include <string>

#include "util/status.h"

namespace emx {
namespace io {

/// Atomic publish for file artifacts: writes to `path + ".tmp"` and
/// rename(2)s onto `path` at Commit. A crash, an ENOSPC, or an early
/// return mid-write leaves at worst a stale .tmp sibling — the previous
/// artifact at `path` stays intact byte for byte, which is also what lets
/// a hot-swap watcher treat "the file changed" as "the file is complete".
/// The destructor removes the .tmp of a writer that never committed.
///
/// This guards against torn files from process death, not against power
/// loss (Commit does not fsync; the rename itself is still atomic).
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The stream to write through. Only valid when status().ok().
  std::ofstream& stream() { return out_; }

  /// Open failure, if any (check before writing).
  const Status& status() const { return open_status_; }

  /// Flushes, closes, verifies the stream survived every write, and
  /// renames the temporary onto the destination. After an error the
  /// temporary is removed and the destination is untouched.
  Status Commit();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  Status open_status_;
  bool committed_ = false;
};

}  // namespace io
}  // namespace emx

#endif  // EMX_IO_ATOMIC_FILE_H_
