#ifndef EMX_IO_MMAP_FILE_H_
#define EMX_IO_MMAP_FILE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace emx {
namespace io {

/// Access-pattern hint forwarded to madvise(2). kColdStart is the model
/// container's opening move: kWillNeed for the whole mapping would fault
/// every page up front (exactly the O(model bytes) cost the container
/// exists to avoid), so the default is kRandom — pages fault in as the
/// first forward touches them.
enum class MapAdvice { kNormal, kSequential, kRandom, kWillNeed };

/// RAII read-only mapping of an entire file. Open stats the file, maps it
/// PROT_READ/MAP_SHARED (so every replica process mapping the same file
/// shares one copy of the page cache), and closes the descriptor — the
/// mapping keeps the inode alive, and an atomic rename(2) onto the path
/// does not disturb readers of the old version. Movable, not copyable;
/// the destructor unmaps.
class MmapFile {
 public:
  /// Maps `path` read-only. An empty file maps to {data = nullptr,
  /// size = 0}, which is valid (the EMXM reader rejects it for being
  /// shorter than a header, with a Status rather than a fault).
  static Result<MmapFile> Open(const std::string& path);

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Forwards the hint to madvise(2); a no-op for an empty mapping.
  Status Advise(MapAdvice advice) const;

 private:
  MmapFile() = default;

  void* addr_ = nullptr;
  uint64_t size_ = 0;
  std::string path_;
};

}  // namespace io
}  // namespace emx

#endif  // EMX_IO_MMAP_FILE_H_
