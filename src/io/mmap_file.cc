#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace emx {
namespace io {
namespace {

std::string ErrnoText(const char* call, const std::string& path) {
  return std::string(call) + "(" + path + "): " + std::strerror(errno);
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IoError(ErrnoText("open", path));

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = Status::IoError(ErrnoText("fstat", path));
    ::close(fd);
    return s;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument(path + " is not a regular file");
  }

  MmapFile file;
  file.path_ = path;
  file.size_ = static_cast<uint64_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      const Status s = Status::IoError(ErrnoText("mmap", path));
      ::close(fd);
      return s;
    }
    file.addr_ = addr;
  }
  // The mapping pins the file contents; the descriptor is no longer needed.
  ::close(fd);
  return file;
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

MmapFile::~MmapFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

Status MmapFile::Advise(MapAdvice advice) const {
  if (addr_ == nullptr) return Status::OK();
  int native = MADV_NORMAL;
  switch (advice) {
    case MapAdvice::kNormal:
      native = MADV_NORMAL;
      break;
    case MapAdvice::kSequential:
      native = MADV_SEQUENTIAL;
      break;
    case MapAdvice::kRandom:
      native = MADV_RANDOM;
      break;
    case MapAdvice::kWillNeed:
      native = MADV_WILLNEED;
      break;
  }
  if (::madvise(addr_, size_, native) != 0) {
    return Status::IoError(ErrnoText("madvise", path_));
  }
  return Status::OK();
}

}  // namespace io
}  // namespace emx
