#ifndef EMX_QUANT_OBSERVER_H_
#define EMX_QUANT_OBSERVER_H_

#include <cstdint>
#include <vector>

namespace emx {
namespace quant {

/// Affine uint8 quantization parameters for an activation tensor:
///   q = clamp(round(x / scale) + zero_point, 0, 255)
///   x ≈ scale * (q - zero_point)
/// The grid always contains the real value 0 exactly (zero_point is the
/// code of 0.0), so padding and ReLU zeros quantize without error.
struct QuantParams {
  float scale = 1.0f;
  int32_t zero_point = 0;
};

/// Computes uint8 affine parameters covering [lo, hi]. The range is
/// widened to include 0 and degenerate ranges get a harmless unit scale.
QuantParams ChooseQuantParams(float lo, float hi);

/// Which calibration statistic an activation observer reduces to.
enum class ObserverKind {
  kMinMax,      // absolute min/max of everything seen
  kPercentile,  // clipped range from a histogram (robust to outliers)
};

/// Running min/max over every value fed to Observe. The cheapest observer;
/// one outlier activation stretches the grid for everyone, which is why
/// the percentile observer is the calibration default.
class MinMaxObserver {
 public:
  void Observe(const float* data, int64_t n);

  bool seen() const { return seen_; }
  float min() const { return min_; }
  float max() const { return max_; }

  QuantParams ComputeQuantParams() const;

 private:
  bool seen_ = false;
  float min_ = 0;
  float max_ = 0;
};

/// Histogram-based percentile observer. Values are binned over a range
/// that grows by power-of-two rebinning when new data falls outside it, so
/// a single calibration pass needs no prior range estimate. The quant
/// range clips `clip_fraction` of total mass off each tail, which keeps
/// rare outliers (huge pre-GELU activations, mostly) from wasting the
/// 8-bit grid on values that almost never occur.
class HistogramObserver {
 public:
  static constexpr int64_t kNumBins = 2048;

  explicit HistogramObserver(double clip_fraction = 1e-3)
      : clip_fraction_(clip_fraction), bins_(kNumBins, 0) {}

  void Observe(const float* data, int64_t n);

  bool seen() const { return total_ > 0; }
  float min() const { return min_; }
  float max() const { return max_; }
  int64_t total() const { return total_; }

  /// The clipped [lo, hi] range: smallest histogram prefix/suffix whose
  /// mass is >= clip_fraction is discarded from each side.
  void ClippedRange(float* lo, float* hi) const;

  QuantParams ComputeQuantParams() const;

 private:
  /// Widens [range_lo_, range_hi_] to cover v, merging existing bins 2:1
  /// per doubling so no mass is lost.
  void GrowToCover(float v);

  double clip_fraction_;
  std::vector<int64_t> bins_;
  float range_lo_ = 0;   // histogram coverage (valid when total_ > 0)
  float range_hi_ = 0;
  float min_ = 0;        // true extrema, for diagnostics
  float max_ = 0;
  int64_t total_ = 0;
};

}  // namespace quant
}  // namespace emx

#endif  // EMX_QUANT_OBSERVER_H_
