#ifndef EMX_QUANT_MODEL_FILE_H_
#define EMX_QUANT_MODEL_FILE_H_

#include <cstdint>
#include <string>

#include "core/entity_matcher.h"
#include "util/status.h"

namespace emx {
namespace quant {

/// What a container held, reported by LoadModelFileMapped.
struct ModelFileInfo {
  int64_t fp32_params = 0;
  int64_t int8_linears = 0;  // standalone + per-FFN fc1/fc2 entries
  int64_t int8_ffns = 0;
  /// True when the file carried quantized backends — the matcher is ready
  /// to serve int8 with no calibration pass.
  bool has_int8 = false;
};

/// Writes the matcher's full serving state into one EMXM container:
/// always the fp32 parameters, plus — when the matcher is quantized — the
/// packed int8 image of every linear, its per-channel scales/bias/column
/// sums, and each FFN's fusion grid, exactly as the kernels use them. The
/// packed bytes go into the file verbatim, which is what lets the loader
/// hand the mapping straight to the GEMM. The write is atomic (tmp +
/// rename), so a watcher seeing the file change always sees it whole.
Status SaveModelFile(core::EntityMatcher* matcher, const std::string& path);

/// Opens an EMXM container by mmap and loads it into the matcher: fp32
/// parameters are copied into the existing Variables (they are training
/// state and must stay mutable), while int8 packed weights are served
/// zero-copy — the attached backends alias the read-only mapping and keep
/// it alive, so cold-start cost is O(metadata), not O(model bytes), and
/// replicas mapping the same file share one physical copy of the weights.
/// The container's architecture manifest must match the matcher. On any
/// error the matcher is left untouched.
Result<ModelFileInfo> LoadModelFileMapped(core::EntityMatcher* matcher,
                                          const std::string& path);

}  // namespace quant
}  // namespace emx

#endif  // EMX_QUANT_MODEL_FILE_H_
