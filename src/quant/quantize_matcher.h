#ifndef EMX_QUANT_QUANTIZE_MATCHER_H_
#define EMX_QUANT_QUANTIZE_MATCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/entity_matcher.h"
#include "quant/observer.h"
#include "util/status.h"

namespace emx {
namespace quant {

/// Serialized text pairs used to calibrate activation ranges. A few
/// hundred representative pairs are plenty — the observers only need the
/// activation distributions, not labels.
struct CalibrationData {
  std::vector<std::string> texts_a;
  std::vector<std::string> texts_b;
  /// Pairs per calibration forward (sliced internally).
  int64_t batch_size = 16;
};

struct QuantizeOptions {
  /// How activation ranges reduce to a grid. Min/max (the default) keeps
  /// every observed value on-grid; measured on the bench datasets it is
  /// ~15x closer to fp32 probabilities than percentile, whose tail
  /// clipping saturates genuinely-large activations at this model scale.
  /// Percentile remains available for activation distributions with true
  /// outlier tails.
  ObserverKind observer = ObserverKind::kMinMax;
};

struct QuantizeReport {
  int64_t num_linears = 0;  // standalone Linears quantized
  int64_t num_ffns = 0;     // FeedForward blocks fused to int8 pipelines
  int64_t calibration_pairs = 0;
};

/// Post-training quantization pass over a fine-tuned matcher:
///   1. attaches observing int8 backends to every layer the model reports
///      via CollectQuantTargets (attention projections, FFNs, pooler,
///      classifier dense),
///   2. runs the calibration pairs through the normal grad-free path so
///      the observers see real activation ranges,
///   3. freezes each backend: per-output-channel int8 weights + the
///      calibrated u8 activation grid, with whole FFN blocks fused into
///      integer pipelines (activation as a 256-entry LUT).
/// After this returns, grad-free forwards (Predict / MatchProbability /
/// the serving engine) run int8 whenever nn::QuantMode is enabled; the
/// fp32 weights stay in place, so disabling QuantMode falls straight back.
/// Not thread-safe against concurrent forwards on the same matcher.
Result<QuantizeReport> QuantizeMatcher(core::EntityMatcher* matcher,
                                       const CalibrationData& calib,
                                       const QuantizeOptions& options = {});

/// True when any quant target carries a ready int8 backend.
bool IsQuantized(core::EntityMatcher* matcher);

/// Detaches every int8 backend, returning the matcher to pure fp32.
void ClearQuantization(core::EntityMatcher* matcher);

/// Persists the quantized state (int8 weights, per-channel scales,
/// activation grids, FFN fusion grids) of a quantized matcher. The format
/// is a sibling of nn::SaveParameters' — magic "EMXQ" instead of "EMXP" —
/// and stores exactly the integer state, so save -> load reproduces the
/// original backends bit for bit. Pre-condition: IsQuantized(matcher).
Status SaveQuantized(core::EntityMatcher* matcher, const std::string& path);

/// Restores quantized backends saved by SaveQuantized onto a matcher with
/// the same architecture (the fp32 checkpoint is loaded separately via
/// EntityMatcher::Load). No calibration pass is needed.
Status LoadQuantized(core::EntityMatcher* matcher, const std::string& path);

}  // namespace quant
}  // namespace emx

#endif  // EMX_QUANT_QUANTIZE_MATCHER_H_
