#include "quant/int8_gemm.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"
#include "util/thread_pool.h"

#if defined(__AVX512F__) && defined(__AVX512VNNI__)
#include <immintrin.h>
#define EMX_INT8_VNNI 1
#endif

namespace emx {
namespace quant {

namespace {

int64_t RoundUp(int64_t v, int64_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

/// Flat index of logical qw[k][j] in the interleaved packed layout.
int64_t PackedIndex(int64_t k_padded, int64_t k, int64_t j) {
  const int64_t nb = j / kColBlock;
  const int64_t jc = j % kColBlock;
  const int64_t kg = k / kKGroup;
  const int64_t kk = k % kKGroup;
  const int64_t kg_count = k_padded / kKGroup;
  return ((nb * kg_count + kg) * kColBlock + jc) * kKGroup + kk;
}

/// Fills col_sums and fused_scale from the packed data (shared by the
/// fresh-quantize and checkpoint-load constructors, so both produce the
/// same derived state bit for bit).
void FinalizeDerived(PackedWeights* w) {
  const int8_t* packed = w->packed_data();
  w->col_sums.assign(static_cast<size_t>(w->out), 0);
  for (int64_t j = 0; j < w->out; ++j) {
    int32_t s = 0;
    for (int64_t k = 0; k < w->in; ++k) {
      s += packed[PackedIndex(w->k_padded, k, j)];
    }
    w->col_sums[static_cast<size_t>(j)] = s;
  }
  w->fused_scale.resize(static_cast<size_t>(w->out));
  for (int64_t j = 0; j < w->out; ++j) {
    w->fused_scale[static_cast<size_t>(j)] =
        w->act.scale * w->w_scales[static_cast<size_t>(j)];
  }
}

}  // namespace

PackedWeights PackWeights(const Tensor& weight, const Tensor& bias,
                          const QuantParams& act) {
  EMX_CHECK_EQ(weight.ndim(), 2);
  PackedWeights w;
  w.in = weight.dim(0);
  w.out = weight.dim(1);
  w.k_padded = RoundUp(w.in, kKGroup);
  w.n_padded = RoundUp(w.out, kColBlock);
  w.act = act;
  w.bias = bias.ToVector();
  EMX_CHECK_EQ(static_cast<int64_t>(w.bias.size()), w.out);

  // Symmetric per-output-channel scales over [-127, 127]. Avoiding -128
  // keeps the grid symmetric and costs 0.4% of range.
  w.w_scales.resize(static_cast<size_t>(w.out));
  const float* src = weight.data();
  for (int64_t j = 0; j < w.out; ++j) {
    float max_abs = 0;
    for (int64_t k = 0; k < w.in; ++k) {
      max_abs = std::max(max_abs, std::fabs(src[k * w.out + j]));
    }
    w.w_scales[static_cast<size_t>(j)] =
        max_abs > 0 ? max_abs / 127.0f : 1.0f;
  }

  w.data.assign(static_cast<size_t>(w.n_padded * w.k_padded), 0);
  for (int64_t j = 0; j < w.out; ++j) {
    const float inv = 1.0f / w.w_scales[static_cast<size_t>(j)];
    for (int64_t k = 0; k < w.in; ++k) {
      const float q = std::nearbyint(src[k * w.out + j] * inv);
      w.data[static_cast<size_t>(PackedIndex(w.k_padded, k, j))] =
          static_cast<int8_t>(std::clamp(q, -127.0f, 127.0f));
    }
  }
  FinalizeDerived(&w);
  return w;
}

PackedWeights PackQuantizedWeights(int64_t in, int64_t out,
                                   const std::vector<int8_t>& qw,
                                   const std::vector<float>& w_scales,
                                   const std::vector<float>& bias,
                                   const QuantParams& act) {
  EMX_CHECK_EQ(static_cast<int64_t>(qw.size()), in * out);
  EMX_CHECK_EQ(static_cast<int64_t>(w_scales.size()), out);
  EMX_CHECK_EQ(static_cast<int64_t>(bias.size()), out);
  PackedWeights w;
  w.in = in;
  w.out = out;
  w.k_padded = RoundUp(in, kKGroup);
  w.n_padded = RoundUp(out, kColBlock);
  w.act = act;
  w.w_scales = w_scales;
  w.bias = bias;
  w.data.assign(static_cast<size_t>(w.n_padded * w.k_padded), 0);
  for (int64_t k = 0; k < in; ++k) {
    for (int64_t j = 0; j < out; ++j) {
      w.data[static_cast<size_t>(PackedIndex(w.k_padded, k, j))] =
          qw[static_cast<size_t>(k * out + j)];
    }
  }
  FinalizeDerived(&w);
  return w;
}

std::vector<int8_t> UnpackQuantizedWeights(const PackedWeights& w) {
  const int8_t* packed = w.packed_data();
  std::vector<int8_t> qw(static_cast<size_t>(w.in * w.out));
  for (int64_t k = 0; k < w.in; ++k) {
    for (int64_t j = 0; j < w.out; ++j) {
      qw[static_cast<size_t>(k * w.out + j)] =
          packed[PackedIndex(w.k_padded, k, j)];
    }
  }
  return qw;
}

Result<PackedWeights> ViewPackedWeights(int64_t in, int64_t out,
                                        const int8_t* packed,
                                        uint64_t packed_bytes,
                                        std::shared_ptr<const void> owner,
                                        std::vector<float> w_scales,
                                        std::vector<float> bias,
                                        std::vector<int32_t> col_sums,
                                        const QuantParams& act) {
  if (in <= 0 || out <= 0) {
    return Status::InvalidArgument("packed weights need in > 0 and out > 0");
  }
  PackedWeights w;
  w.in = in;
  w.out = out;
  w.k_padded = RoundUp(in, kKGroup);
  w.n_padded = RoundUp(out, kColBlock);
  if (packed_bytes !=
      static_cast<uint64_t>(w.k_padded) * static_cast<uint64_t>(w.n_padded)) {
    return Status::InvalidArgument(
        "packed image is " + std::to_string(packed_bytes) + " bytes; " +
        std::to_string(in) + "x" + std::to_string(out) + " packs to " +
        std::to_string(w.k_padded * w.n_padded));
  }
  if (static_cast<int64_t>(w_scales.size()) != out ||
      static_cast<int64_t>(bias.size()) != out ||
      static_cast<int64_t>(col_sums.size()) != out) {
    return Status::InvalidArgument(
        "per-channel arrays do not match out=" + std::to_string(out));
  }
  w.view = packed;
  w.owner = std::move(owner);
  w.act = act;
  w.w_scales = std::move(w_scales);
  w.bias = std::move(bias);
  // col_sums come from the container rather than FinalizeDerived: summing
  // them here would touch every weight byte and reintroduce the
  // O(model-size) cold start the mapping exists to avoid.
  w.col_sums = std::move(col_sums);
  w.fused_scale.resize(static_cast<size_t>(w.out));
  for (int64_t j = 0; j < w.out; ++j) {
    w.fused_scale[static_cast<size_t>(j)] =
        w.act.scale * w.w_scales[static_cast<size_t>(j)];
  }
  return w;
}

void QuantizeActivations(const float* x, int64_t m, int64_t k,
                         int64_t k_padded, const QuantParams& p, uint8_t* qa) {
  const float inv = 1.0f / p.scale;
  const float zp = static_cast<float>(p.zero_point);
  for (int64_t i = 0; i < m; ++i) {
    const float* row = x + i * k;
    uint8_t* q = qa + i * k_padded;
    for (int64_t c = 0; c < k; ++c) {
      const float v = std::nearbyint(row[c] * inv) + zp;
      q[c] = static_cast<uint8_t>(std::clamp(v, 0.0f, 255.0f));
    }
    for (int64_t c = k; c < k_padded; ++c) {
      q[c] = static_cast<uint8_t>(p.zero_point);
    }
  }
}

void Int8GemmRowRangeScalar(const uint8_t* qa, int64_t i0, int64_t i1,
                            const PackedWeights& w, int32_t* acc) {
  const int64_t kg_count = w.k_padded / kKGroup;
  const int64_t nb_count = w.n_padded / kColBlock;
  for (int64_t i = i0; i < i1; ++i) {
    const uint8_t* a_row = qa + i * w.k_padded;
    int32_t* acc_row = acc + i * w.n_padded;
    for (int64_t nb = 0; nb < nb_count; ++nb) {
      const int8_t* tile =
          w.packed_data() + nb * kg_count * kColBlock * kKGroup;
      int32_t sums[kColBlock] = {0};
      for (int64_t kg = 0; kg < kg_count; ++kg) {
        const int8_t* wrow = tile + kg * kColBlock * kKGroup;
        const uint8_t* a4 = a_row + kg * kKGroup;
        for (int64_t c = 0; c < kColBlock; ++c) {
          int32_t dot = 0;
          for (int64_t kk = 0; kk < kKGroup; ++kk) {
            dot += static_cast<int32_t>(a4[kk]) *
                   static_cast<int32_t>(wrow[c * kKGroup + kk]);
          }
          sums[c] += dot;
        }
      }
      for (int64_t c = 0; c < kColBlock; ++c) {
        acc_row[nb * kColBlock + c] = sums[c];
      }
    }
  }
}

#ifdef EMX_INT8_VNNI

namespace {

/// 4 rows x 16 output channels per step: each weight tile row is loaded
/// once and contracted against 4 activation broadcasts, the int8 analogue
/// of the fp32 micro-kernel's kMR = 4 unroll. Integer accumulation is
/// exact, so any loop order gives the scalar kernel's accumulators.
void Int8GemmRowRangeVnni(const uint8_t* qa, int64_t i0, int64_t i1,
                          const PackedWeights& w, int32_t* acc) {
  const int64_t kg_count = w.k_padded / kKGroup;
  const int64_t nb_count = w.n_padded / kColBlock;
  int64_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    const uint8_t* a0 = qa + (i + 0) * w.k_padded;
    const uint8_t* a1 = qa + (i + 1) * w.k_padded;
    const uint8_t* a2 = qa + (i + 2) * w.k_padded;
    const uint8_t* a3 = qa + (i + 3) * w.k_padded;
    for (int64_t nb = 0; nb < nb_count; ++nb) {
      const int8_t* tile =
          w.packed_data() + nb * kg_count * kColBlock * kKGroup;
      __m512i s0 = _mm512_setzero_si512();
      __m512i s1 = _mm512_setzero_si512();
      __m512i s2 = _mm512_setzero_si512();
      __m512i s3 = _mm512_setzero_si512();
      for (int64_t kg = 0; kg < kg_count; ++kg) {
        const __m512i wv = _mm512_loadu_si512(
            reinterpret_cast<const void*>(tile + kg * kColBlock * kKGroup));
        uint32_t b;
        std::memcpy(&b, a0 + kg * kKGroup, sizeof(b));
        s0 = _mm512_dpbusd_epi32(s0, _mm512_set1_epi32(static_cast<int>(b)),
                                 wv);
        std::memcpy(&b, a1 + kg * kKGroup, sizeof(b));
        s1 = _mm512_dpbusd_epi32(s1, _mm512_set1_epi32(static_cast<int>(b)),
                                 wv);
        std::memcpy(&b, a2 + kg * kKGroup, sizeof(b));
        s2 = _mm512_dpbusd_epi32(s2, _mm512_set1_epi32(static_cast<int>(b)),
                                 wv);
        std::memcpy(&b, a3 + kg * kKGroup, sizeof(b));
        s3 = _mm512_dpbusd_epi32(s3, _mm512_set1_epi32(static_cast<int>(b)),
                                 wv);
      }
      const int64_t col = nb * kColBlock;
      _mm512_storeu_si512(
          reinterpret_cast<void*>(acc + (i + 0) * w.n_padded + col), s0);
      _mm512_storeu_si512(
          reinterpret_cast<void*>(acc + (i + 1) * w.n_padded + col), s1);
      _mm512_storeu_si512(
          reinterpret_cast<void*>(acc + (i + 2) * w.n_padded + col), s2);
      _mm512_storeu_si512(
          reinterpret_cast<void*>(acc + (i + 3) * w.n_padded + col), s3);
    }
  }
  if (i < i1) Int8GemmRowRangeScalar(qa, i, i1, w, acc);
}

}  // namespace

bool HasVnniKernel() { return true; }

#else

bool HasVnniKernel() { return false; }

#endif  // EMX_INT8_VNNI

void Int8GemmAccumulate(const uint8_t* qa, int64_t m, const PackedWeights& w,
                        int32_t* acc) {
  // One work item = one 64-row block, same shape as the fp32 GEMM's
  // partitioning; the grain targets ~256K int ops per chunk.
  constexpr int64_t kRowBlock = 64;
  const int64_t blocks = (m + kRowBlock - 1) / kRowBlock;
  const int64_t item_ops = std::max<int64_t>(
      1, 2 * std::min(kRowBlock, m) * w.k_padded * w.n_padded);
  const int64_t grain = std::max<int64_t>(1, (1 << 18) / item_ops);
  ParallelFor(blocks, grain, [&](int64_t begin, int64_t end) {
    for (int64_t blk = begin; blk < end; ++blk) {
      const int64_t i0 = blk * kRowBlock;
      const int64_t i1 = std::min(i0 + kRowBlock, m);
#ifdef EMX_INT8_VNNI
      Int8GemmRowRangeVnni(qa, i0, i1, w, acc);
#else
      Int8GemmRowRangeScalar(qa, i0, i1, w, acc);
#endif
    }
  });
}

void DequantEpilogue(const int32_t* acc, int64_t m, const PackedWeights& w,
                     float* y) {
  const int32_t zp = w.act.zero_point;
  for (int64_t i = 0; i < m; ++i) {
    const int32_t* acc_row = acc + i * w.n_padded;
    float* y_row = y + i * w.out;
    for (int64_t j = 0; j < w.out; ++j) {
      const int32_t centered =
          acc_row[j] - zp * w.col_sums[static_cast<size_t>(j)];
      y_row[j] = w.fused_scale[static_cast<size_t>(j)] *
                     static_cast<float>(centered) +
                 w.bias[static_cast<size_t>(j)];
    }
  }
}

void Int8LinearForward(const float* x, int64_t m, const PackedWeights& w,
                       float* y) {
  // Thread-local scratch: these buffers reach ~1MB at serving batch sizes,
  // which a per-call std::vector would mmap, kernel-zero and unmap every
  // forward. Reuse keeps the hot path allocation-free (serving workers are
  // separate threads, so nothing is shared).
  thread_local std::vector<uint8_t> qa;
  thread_local std::vector<int32_t> acc;
  qa.resize(static_cast<size_t>(m * w.k_padded));
  acc.resize(static_cast<size_t>(m * w.n_padded));
  QuantizeActivations(x, m, w.in, w.k_padded, w.act, qa.data());
  Int8GemmAccumulate(qa.data(), m, w, acc.data());
  DequantEpilogue(acc.data(), m, w, y);
}

}  // namespace quant
}  // namespace emx
