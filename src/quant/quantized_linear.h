#ifndef EMX_QUANT_QUANTIZED_LINEAR_H_
#define EMX_QUANT_QUANTIZED_LINEAR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "quant/int8_gemm.h"
#include "quant/observer.h"
#include "util/status.h"

namespace emx {
namespace quant {

/// int8 inference backend for one nn::Linear.
///
/// Lifecycle (the nn::LinearBackend contract): freshly constructed, it is
/// not ready and records input/output ranges while the layer runs its fp32
/// path (calibration). Freeze() then turns the observed input range into a
/// u8 activation grid, quantizes the layer's weights per output channel,
/// and flips the backend to ready — from then on grad-free forwards run
/// quantize -> int8 GEMM -> fused dequant+bias. Forward is const over
/// immutable packed state, so concurrent serving workers are safe;
/// calibration itself must be single-threaded.
class Int8LinearBackend : public nn::LinearBackend {
 public:
  explicit Int8LinearBackend(ObserverKind kind = ObserverKind::kPercentile)
      : kind_(kind) {}

  void ObserveInput(const Tensor& x2d) override;
  void ObserveOutput(const Tensor& y2d) override;
  bool ready() const override { return ready_; }
  Tensor Forward(const Tensor& x2d) const override;

  /// Quantizes `layer`'s weights against the calibrated input grid.
  /// Fails with InvalidArgument when nothing was observed.
  Status Freeze(const nn::Linear& layer);

  /// Adopts fully materialized packed weights (checkpoint load).
  void FreezeFromPacked(PackedWeights packed);

  /// Grids computed from the observers with this backend's ObserverKind —
  /// usable before Freeze (the FFN fusion reads the output grid of fc1 and
  /// the input grid of fc2 while both are still calibrating).
  QuantParams ObservedInputParams() const;
  QuantParams ObservedOutputParams() const;

  bool observed() const { return in_minmax_.seen(); }
  /// Pre-condition: ready().
  const PackedWeights& packed() const;

 private:
  ObserverKind kind_;
  // Both statistics are tracked; kind_ picks which one becomes the grid.
  MinMaxObserver in_minmax_, out_minmax_;
  HistogramObserver in_hist_, out_hist_;
  bool ready_ = false;
  PackedWeights packed_;
};

/// Fully fused int8 pipeline for a FeedForward block:
///   quantize -> int8 GEMM (fc1) -> dequant -> requantize to the
///   activation-input grid -> 256-entry activation LUT -> int8 GEMM (fc2)
///   -> dequant.
/// The LUT maps each u8 code of the fc1-output grid to the u8 code of the
/// corresponding activation value on the fc2-input grid, replacing a
/// tanh-based GELU per element (the single hottest op in the fp32 forward)
/// with a table read. Always ready: it is built only at freeze time, from
/// the two inner Linears' calibration.
class Int8FfnBackend : public nn::FeedForwardBackend {
 public:
  /// `mid_in` is the fc1-output (pre-activation) grid; fc2's packed input
  /// grid is the activation-output grid the LUT lands on.
  Int8FfnBackend(PackedWeights fc1, PackedWeights fc2, QuantParams mid_in,
                 nn::Activation activation);

  bool ready() const override { return true; }
  Tensor Forward(const Tensor& x2d) const override;

  const PackedWeights& fc1() const { return fc1_; }
  const PackedWeights& fc2() const { return fc2_; }
  QuantParams mid_in() const { return mid_in_; }
  nn::Activation activation() const { return activation_; }

 private:
  PackedWeights fc1_;
  PackedWeights fc2_;
  QuantParams mid_in_;
  nn::Activation activation_;
  std::array<uint8_t, 256> lut_;
};

/// The activation value f(x) used by the LUT; matches the fp32 ops
/// (tanh-approximated GELU) so quantization error is the only delta.
float ActivationScalar(float x, nn::Activation activation);

/// nn::Module wrapper over an int8 backend: the standalone quantized
/// replacement for an nn::Linear, with the same Forward contract
/// ([..., in] -> [..., out]). Carries no trainable parameters — the int8
/// weights are frozen by construction.
class QuantizedLinear : public nn::Module {
 public:
  /// Quantizes `src` against an already-calibrated input grid.
  QuantizedLinear(const nn::Linear& src, const QuantParams& input_params);
  /// Wraps an existing frozen backend. Pre-condition: backend->ready().
  explicit QuantizedLinear(std::shared_ptr<Int8LinearBackend> backend);

  Variable Forward(const Variable& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParam>* out) override {
    (void)prefix;
    (void)out;
  }

  int64_t in_features() const { return backend_->packed().in; }
  int64_t out_features() const { return backend_->packed().out; }
  const std::shared_ptr<Int8LinearBackend>& backend() const {
    return backend_;
  }

 private:
  std::shared_ptr<Int8LinearBackend> backend_;
};

}  // namespace quant
}  // namespace emx

#endif  // EMX_QUANT_QUANTIZED_LINEAR_H_
