#include "quant/quantized_linear.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"

namespace emx {
namespace quant {

void Int8LinearBackend::ObserveInput(const Tensor& x2d) {
  in_minmax_.Observe(x2d.data(), x2d.size());
  in_hist_.Observe(x2d.data(), x2d.size());
}

void Int8LinearBackend::ObserveOutput(const Tensor& y2d) {
  out_minmax_.Observe(y2d.data(), y2d.size());
  out_hist_.Observe(y2d.data(), y2d.size());
}

QuantParams Int8LinearBackend::ObservedInputParams() const {
  return kind_ == ObserverKind::kMinMax ? in_minmax_.ComputeQuantParams()
                                        : in_hist_.ComputeQuantParams();
}

QuantParams Int8LinearBackend::ObservedOutputParams() const {
  return kind_ == ObserverKind::kMinMax ? out_minmax_.ComputeQuantParams()
                                        : out_hist_.ComputeQuantParams();
}

Status Int8LinearBackend::Freeze(const nn::Linear& layer) {
  if (!observed()) {
    return Status::InvalidArgument(
        "Int8LinearBackend: no calibration data observed; run grad-free "
        "forwards through the layer before freezing");
  }
  packed_ = PackWeights(layer.weight().value(), layer.bias().value(),
                        ObservedInputParams());
  ready_ = true;
  return Status::OK();
}

void Int8LinearBackend::FreezeFromPacked(PackedWeights packed) {
  packed_ = std::move(packed);
  ready_ = true;
}

const PackedWeights& Int8LinearBackend::packed() const {
  EMX_CHECK(ready_) << "Int8LinearBackend: packed() before Freeze";
  return packed_;
}

Tensor Int8LinearBackend::Forward(const Tensor& x2d) const {
  EMX_CHECK(ready_);
  EMX_CHECK_EQ(x2d.ndim(), 2);
  EMX_CHECK_EQ(x2d.dim(1), packed_.in);
  const int64_t m = x2d.dim(0);
  EMX_TRACE_SPAN("kernel.int8_gemm", [&] {
    return obs::KeyValues({{"m", m}, {"n", packed_.out}, {"k", packed_.in}});
  });
  Tensor y({m, packed_.out});
  Int8LinearForward(x2d.data(), m, packed_, y.data());
  return y;
}

float ActivationScalar(float x, nn::Activation activation) {
  switch (activation) {
    case nn::Activation::kGelu: {
      constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
      return 0.5f * x * (1.0f + std::tanh(kGeluC * (x + 0.044715f * x * x * x)));
    }
    case nn::Activation::kRelu:
      return x > 0 ? x : 0;
    case nn::Activation::kTanh:
      return std::tanh(x);
  }
  EMX_CHECK(false) << "unknown activation";
  return x;
}

Int8FfnBackend::Int8FfnBackend(PackedWeights fc1, PackedWeights fc2,
                               QuantParams mid_in, nn::Activation activation)
    : fc1_(std::move(fc1)),
      fc2_(std::move(fc2)),
      mid_in_(mid_in),
      activation_(activation) {
  EMX_CHECK_EQ(fc1_.out, fc2_.in) << "FFN fc1/fc2 dims do not chain";
  // Each u8 code on the pre-activation grid maps to the u8 code of its
  // activated value on fc2's input grid.
  const QuantParams out = fc2_.act;
  const float inv_out = 1.0f / out.scale;
  for (int32_t q = 0; q < 256; ++q) {
    const float v = mid_in_.scale * static_cast<float>(q - mid_in_.zero_point);
    const float f = ActivationScalar(v, activation_);
    const float code = std::nearbyint(f * inv_out) +
                       static_cast<float>(out.zero_point);
    lut_[static_cast<size_t>(q)] =
        static_cast<uint8_t>(std::clamp(code, 0.0f, 255.0f));
  }
}

Tensor Int8FfnBackend::Forward(const Tensor& x2d) const {
  EMX_CHECK_EQ(x2d.ndim(), 2);
  EMX_CHECK_EQ(x2d.dim(1), fc1_.in);
  const int64_t m = x2d.dim(0);
  EMX_TRACE_SPAN("kernel.int8_ffn", [&] {
    return obs::KeyValues(
        {{"m", m}, {"hidden", fc1_.in}, {"ffn", fc1_.out}});
  });

  // Same thread-local scratch discipline as Int8LinearForward: the fc1
  // accumulator alone is ~1MB at serving batch sizes, so per-call vectors
  // would pay an mmap + kernel zero-fill on every forward.
  thread_local std::vector<uint8_t> qa;
  thread_local std::vector<int32_t> acc;
  qa.resize(static_cast<size_t>(m * fc1_.k_padded));
  acc.resize(static_cast<size_t>(m * fc1_.n_padded));
  QuantizeActivations(x2d.data(), m, fc1_.in, fc1_.k_padded, fc1_.act,
                      qa.data());
  Int8GemmAccumulate(qa.data(), m, fc1_, acc.data());

  // Fused epilogue: dequantize fc1, requantize onto the pre-activation
  // grid, and look the activation up — the intermediate never exists in
  // fp32, and no transcendental runs per element.
  thread_local std::vector<uint8_t> qh;
  qh.resize(static_cast<size_t>(m * fc2_.k_padded));
  const int32_t zp1 = fc1_.act.zero_point;
  const float inv_mid = 1.0f / mid_in_.scale;
  const float mid_zp = static_cast<float>(mid_in_.zero_point);
  const uint8_t pad = static_cast<uint8_t>(fc2_.act.zero_point);
  for (int64_t i = 0; i < m; ++i) {
    const int32_t* acc_row = acc.data() + i * fc1_.n_padded;
    uint8_t* q_row = qh.data() + i * fc2_.k_padded;
    for (int64_t j = 0; j < fc1_.out; ++j) {
      const int32_t centered =
          acc_row[j] - zp1 * fc1_.col_sums[static_cast<size_t>(j)];
      const float v = fc1_.fused_scale[static_cast<size_t>(j)] *
                          static_cast<float>(centered) +
                      fc1_.bias[static_cast<size_t>(j)];
      const float code = std::nearbyint(v * inv_mid) + mid_zp;
      q_row[j] = lut_[static_cast<size_t>(
          static_cast<uint8_t>(std::clamp(code, 0.0f, 255.0f)))];
    }
    for (int64_t j = fc1_.out; j < fc2_.k_padded; ++j) q_row[j] = pad;
  }

  thread_local std::vector<int32_t> acc2;
  acc2.resize(static_cast<size_t>(m * fc2_.n_padded));
  Int8GemmAccumulate(qh.data(), m, fc2_, acc2.data());
  Tensor y({m, fc2_.out});
  DequantEpilogue(acc2.data(), m, fc2_, y.data());
  return y;
}

QuantizedLinear::QuantizedLinear(const nn::Linear& src,
                                 const QuantParams& input_params)
    : backend_(std::make_shared<Int8LinearBackend>()) {
  backend_->FreezeFromPacked(PackWeights(src.weight().value(),
                                         src.bias().value(), input_params));
}

QuantizedLinear::QuantizedLinear(std::shared_ptr<Int8LinearBackend> backend)
    : backend_(std::move(backend)) {
  EMX_CHECK(backend_ != nullptr && backend_->ready());
}

Variable QuantizedLinear::Forward(const Variable& x) const {
  const Shape& in_shape = x.shape();
  EMX_CHECK_EQ(in_shape.back(), in_features());
  Shape out_shape(in_shape.begin(), in_shape.end() - 1);
  out_shape.push_back(out_features());
  Tensor x2d = x.value().Reshape({-1, in_features()});
  return Variable::Constant(backend_->Forward(x2d).Reshape(out_shape));
}

}  // namespace quant
}  // namespace emx
