#include "quant/quantize_matcher.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <utility>

#include "io/atomic_file.h"
#include "nn/layers.h"
#include "quant/int8_gemm.h"
#include "quant/quantized_linear.h"
#include "util/logging.h"

namespace emx {
namespace quant {
namespace {

constexpr uint32_t kMagic = 0x454d5851;  // "EMXQ"
constexpr uint32_t kVersion = 1;

/// Every Linear that gets its own backend: the standalone targets plus the
/// fc1/fc2 of each FFN target (those calibrate individually but serve
/// through the fused block backend).
struct FlatTargets {
  std::vector<std::pair<std::string, nn::Linear*>> linears;
  std::vector<std::pair<std::string, nn::FeedForward*>> ffns;
};

FlatTargets Flatten(core::EntityMatcher* matcher) {
  nn::QuantTargets targets;
  matcher->classifier()->CollectQuantTargets("", &targets);
  FlatTargets flat;
  flat.linears = targets.linears;
  flat.ffns = targets.ffns;
  for (auto& [name, ffn] : targets.ffns) {
    flat.linears.emplace_back(nn::JoinName(name, "fc1"), ffn->fc1());
    flat.linears.emplace_back(nn::JoinName(name, "fc2"), ffn->fc2());
  }
  return flat;
}

std::shared_ptr<Int8LinearBackend> GetInt8Backend(const nn::Linear* layer) {
  return std::static_pointer_cast<Int8LinearBackend>(layer->backend());
}

void WriteBytes(std::ofstream& out, const void* p, size_t n) {
  out.write(reinterpret_cast<const char*>(p),
            static_cast<std::streamsize>(n));
}

bool ReadBytes(std::ifstream& in, void* p, size_t n) {
  in.read(reinterpret_cast<char*>(p), static_cast<std::streamsize>(n));
  return static_cast<bool>(in);
}

void WriteString(std::ofstream& out, const std::string& s) {
  const uint64_t len = s.size();
  WriteBytes(out, &len, sizeof(len));
  WriteBytes(out, s.data(), len);
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint64_t len = 0;
  if (!ReadBytes(in, &len, sizeof(len)) || len > (1u << 20)) return false;
  s->assign(len, '\0');
  return ReadBytes(in, s->data(), len);
}

}  // namespace

Result<QuantizeReport> QuantizeMatcher(core::EntityMatcher* matcher,
                                       const CalibrationData& calib,
                                       const QuantizeOptions& options) {
  if (calib.texts_a.empty() || calib.texts_a.size() != calib.texts_b.size()) {
    return Status::InvalidArgument(
        "QuantizeMatcher: calibration data must hold equal, non-empty text "
        "lists");
  }
  FlatTargets flat = Flatten(matcher);
  if (flat.linears.empty()) {
    return Status::InvalidArgument(
        "QuantizeMatcher: model reports no quantizable layers");
  }

  // 1. Attach observing backends (not ready, so forwards stay fp32).
  for (auto& [name, layer] : flat.linears) {
    layer->set_backend(std::make_shared<Int8LinearBackend>(options.observer));
  }

  // 2. Calibration: the normal grad-free bulk path, sliced so activation
  // shapes match serving batches.
  const int64_t batch = std::max<int64_t>(1, calib.batch_size);
  const int64_t total = static_cast<int64_t>(calib.texts_a.size());
  for (int64_t begin = 0; begin < total; begin += batch) {
    const int64_t end = std::min(begin + batch, total);
    std::vector<std::string> as(calib.texts_a.begin() + begin,
                                calib.texts_a.begin() + end);
    std::vector<std::string> bs(calib.texts_b.begin() + begin,
                                calib.texts_b.begin() + end);
    (void)matcher->MatchProbabilities(as, bs);
  }

  // 3. Freeze every Linear backend, then fuse each FFN from its inner
  // layers' calibration: fc1's output grid feeds the activation LUT and
  // fc2's input grid is where the LUT lands.
  QuantizeReport report;
  report.calibration_pairs = total;
  for (auto& [name, layer] : flat.linears) {
    Status st = GetInt8Backend(layer)->Freeze(*layer);
    if (!st.ok()) {
      return Status(st.code(),
                    "layer '" + name + "': " + st.message());
    }
  }
  report.num_linears =
      static_cast<int64_t>(flat.linears.size() - 2 * flat.ffns.size());
  for (auto& [name, ffn] : flat.ffns) {
    auto fc1 = GetInt8Backend(ffn->fc1());
    auto fc2 = GetInt8Backend(ffn->fc2());
    ffn->set_backend(std::make_shared<Int8FfnBackend>(
        fc1->packed(), fc2->packed(), fc1->ObservedOutputParams(),
        ffn->activation()));
    ++report.num_ffns;
  }
  return report;
}

bool IsQuantized(core::EntityMatcher* matcher) {
  FlatTargets flat = Flatten(matcher);
  for (auto& [name, layer] : flat.linears) {
    if (layer->backend() != nullptr && layer->backend()->ready()) return true;
  }
  for (auto& [name, ffn] : flat.ffns) {
    if (ffn->backend() != nullptr && ffn->backend()->ready()) return true;
  }
  return false;
}

void ClearQuantization(core::EntityMatcher* matcher) {
  FlatTargets flat = Flatten(matcher);
  for (auto& [name, layer] : flat.linears) layer->set_backend(nullptr);
  for (auto& [name, ffn] : flat.ffns) ffn->set_backend(nullptr);
}

Status SaveQuantized(core::EntityMatcher* matcher, const std::string& path) {
  FlatTargets flat = Flatten(matcher);
  for (auto& [name, layer] : flat.linears) {
    if (layer->backend() == nullptr || !layer->backend()->ready()) {
      return Status::InvalidArgument(
          "SaveQuantized: layer '" + name +
          "' is not quantized; run QuantizeMatcher first");
    }
  }
  io::AtomicFileWriter writer(path);
  EMX_RETURN_IF_ERROR(writer.status());
  std::ofstream& out = writer.stream();
  WriteBytes(out, &kMagic, sizeof(kMagic));
  WriteBytes(out, &kVersion, sizeof(kVersion));

  const uint64_t linear_count = flat.linears.size();
  WriteBytes(out, &linear_count, sizeof(linear_count));
  for (auto& [name, layer] : flat.linears) {
    const PackedWeights& w = GetInt8Backend(layer)->packed();
    WriteString(out, name);
    WriteBytes(out, &w.in, sizeof(w.in));
    WriteBytes(out, &w.out, sizeof(w.out));
    WriteBytes(out, &w.act.scale, sizeof(w.act.scale));
    WriteBytes(out, &w.act.zero_point, sizeof(w.act.zero_point));
    WriteBytes(out, w.w_scales.data(), w.w_scales.size() * sizeof(float));
    WriteBytes(out, w.bias.data(), w.bias.size() * sizeof(float));
    const std::vector<int8_t> qw = UnpackQuantizedWeights(w);
    WriteBytes(out, qw.data(), qw.size());
  }

  const uint64_t ffn_count = flat.ffns.size();
  WriteBytes(out, &ffn_count, sizeof(ffn_count));
  for (auto& [name, ffn] : flat.ffns) {
    if (ffn->backend() == nullptr || !ffn->backend()->ready()) {
      return Status::InvalidArgument("SaveQuantized: FFN '" + name +
                                     "' has no fused backend");
    }
    const auto* be = static_cast<const Int8FfnBackend*>(ffn->backend().get());
    WriteString(out, name);
    const uint32_t act = static_cast<uint32_t>(be->activation());
    WriteBytes(out, &act, sizeof(act));
    const QuantParams mid = be->mid_in();
    WriteBytes(out, &mid.scale, sizeof(mid.scale));
    WriteBytes(out, &mid.zero_point, sizeof(mid.zero_point));
  }
  return writer.Commit();
}

Status LoadQuantized(core::EntityMatcher* matcher, const std::string& path) {
  FlatTargets flat = Flatten(matcher);
  std::map<std::string, nn::Linear*> linear_by_name;
  for (auto& [name, layer] : flat.linears) linear_by_name[name] = layer;
  std::map<std::string, nn::FeedForward*> ffn_by_name;
  for (auto& [name, ffn] : flat.ffns) ffn_by_name[name] = ffn;

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const uint64_t file_bytes = static_cast<uint64_t>(in.tellg());
  in.seekg(0);
  uint32_t magic = 0, version = 0;
  if (!ReadBytes(in, &magic, sizeof(magic)) ||
      !ReadBytes(in, &version, sizeof(version)) || magic != kMagic) {
    return Status::InvalidArgument(path +
                                   " is not an emx quantized checkpoint");
  }
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported quantized checkpoint version");
  }

  uint64_t linear_count = 0;
  if (!ReadBytes(in, &linear_count, sizeof(linear_count)) ||
      linear_count > (1u << 20)) {
    return Status::InvalidArgument("corrupt quantized checkpoint " + path);
  }
  std::map<std::string, std::shared_ptr<Int8LinearBackend>> loaded;
  for (uint64_t i = 0; i < linear_count; ++i) {
    std::string name;
    if (!ReadString(in, &name)) {
      return Status::IoError("truncated quantized checkpoint " + path);
    }
    int64_t in_dim = 0, out_dim = 0;
    QuantParams act;
    if (!ReadBytes(in, &in_dim, sizeof(in_dim)) ||
        !ReadBytes(in, &out_dim, sizeof(out_dim)) ||
        !ReadBytes(in, &act.scale, sizeof(act.scale)) ||
        !ReadBytes(in, &act.zero_point, sizeof(act.zero_point)) ||
        in_dim <= 0 || out_dim <= 0) {
      return Status::IoError("truncated quantized checkpoint " + path);
    }
    auto it = linear_by_name.find(name);
    if (it == linear_by_name.end()) {
      return Status::NotFound("quantized layer '" + name +
                              "' does not exist in this model");
    }
    if (it->second->in_features() != in_dim ||
        it->second->out_features() != out_dim) {
      return Status::InvalidArgument(
          "quantized layer '" + name + "' shape mismatch: file has [" +
          std::to_string(in_dim) + ", " + std::to_string(out_dim) +
          "], model expects [" + std::to_string(it->second->in_features()) +
          ", " + std::to_string(it->second->out_features()) + "]");
    }
    // Cross-check the byte counts this entry implies against what is left
    // of the file before allocating: the dims were range-checked as
    // positive, but a corrupt pair like [2^40, 2^20] would otherwise ask
    // for an exabyte of vectors the payload can never fill.
    const uint64_t remaining = file_bytes - static_cast<uint64_t>(in.tellg());
    const uint64_t in_u = static_cast<uint64_t>(in_dim);
    const uint64_t out_u = static_cast<uint64_t>(out_dim);
    if (out_u > remaining || in_u > remaining) {
      return Status::InvalidArgument("corrupt quantized checkpoint " + path +
                                     ": dims for '" + name +
                                     "' exceed file size");
    }
    const uint64_t scale_bytes = out_u * 2 * sizeof(float);
    if (scale_bytes > remaining ||
        in_u > (remaining - scale_bytes) / out_u) {
      return Status::InvalidArgument("corrupt quantized checkpoint " + path +
                                     ": payload for '" + name +
                                     "' exceeds file size");
    }
    std::vector<float> w_scales(static_cast<size_t>(out_dim));
    std::vector<float> bias(static_cast<size_t>(out_dim));
    std::vector<int8_t> qw(static_cast<size_t>(in_dim * out_dim));
    if (!ReadBytes(in, w_scales.data(), w_scales.size() * sizeof(float)) ||
        !ReadBytes(in, bias.data(), bias.size() * sizeof(float)) ||
        !ReadBytes(in, qw.data(), qw.size())) {
      return Status::IoError("truncated quantized checkpoint " + path);
    }
    auto backend = std::make_shared<Int8LinearBackend>();
    backend->FreezeFromPacked(
        PackQuantizedWeights(in_dim, out_dim, qw, w_scales, bias, act));
    loaded[name] = backend;
  }

  uint64_t ffn_count = 0;
  if (!ReadBytes(in, &ffn_count, sizeof(ffn_count)) ||
      ffn_count > (1u << 20)) {
    return Status::IoError("truncated quantized checkpoint " + path);
  }
  std::map<std::string, std::shared_ptr<Int8FfnBackend>> loaded_ffns;
  for (uint64_t i = 0; i < ffn_count; ++i) {
    std::string name;
    uint32_t act = 0;
    QuantParams mid;
    if (!ReadString(in, &name) || !ReadBytes(in, &act, sizeof(act)) ||
        !ReadBytes(in, &mid.scale, sizeof(mid.scale)) ||
        !ReadBytes(in, &mid.zero_point, sizeof(mid.zero_point))) {
      return Status::IoError("truncated quantized checkpoint " + path);
    }
    auto it = ffn_by_name.find(name);
    if (it == ffn_by_name.end()) {
      return Status::NotFound("quantized FFN '" + name +
                              "' does not exist in this model");
    }
    if (act != static_cast<uint32_t>(it->second->activation())) {
      return Status::InvalidArgument("quantized FFN '" + name +
                                     "' activation mismatch");
    }
    auto fc1 = loaded.find(nn::JoinName(name, "fc1"));
    auto fc2 = loaded.find(nn::JoinName(name, "fc2"));
    if (fc1 == loaded.end() || fc2 == loaded.end()) {
      return Status::InvalidArgument("quantized FFN '" + name +
                                     "' is missing its fc1/fc2 entries");
    }
    loaded_ffns[name] = std::make_shared<Int8FfnBackend>(
        fc1->second->packed(), fc2->second->packed(), mid,
        it->second->activation());
  }

  // The checkpoint must cover the whole model before anything is attached,
  // so a failed load leaves the matcher untouched.
  for (auto& [name, layer] : flat.linears) {
    if (loaded.find(name) == loaded.end()) {
      return Status::InvalidArgument("quantized checkpoint " + path +
                                     " does not cover layer '" + name + "'");
    }
  }
  for (auto& [name, ffn] : flat.ffns) {
    if (loaded_ffns.find(name) == loaded_ffns.end()) {
      return Status::InvalidArgument("quantized checkpoint " + path +
                                     " does not cover FFN '" + name + "'");
    }
  }
  for (auto& [name, layer] : flat.linears) layer->set_backend(loaded[name]);
  for (auto& [name, ffn] : flat.ffns) ffn->set_backend(loaded_ffns[name]);
  return Status::OK();
}

}  // namespace quant
}  // namespace emx
