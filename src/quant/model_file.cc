#include "quant/model_file.h"

#include <array>
#include <cstring>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "io/emxm.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "quant/int8_gemm.h"
#include "quant/quantize_matcher.h"
#include "quant/quantized_linear.h"

namespace emx {
namespace quant {
namespace {

constexpr char kManifestName[] = "emxm:manifest";

/// Same flattening as QuantizeMatcher: standalone linears plus the
/// fc1/fc2 of every FFN, under the fused block's name scheme.
struct FlatQuantTargets {
  std::vector<std::pair<std::string, nn::Linear*>> linears;
  std::vector<std::pair<std::string, nn::FeedForward*>> ffns;
};

FlatQuantTargets FlattenTargets(core::EntityMatcher* matcher) {
  nn::QuantTargets targets;
  matcher->classifier()->CollectQuantTargets("", &targets);
  FlatQuantTargets flat;
  flat.linears = targets.linears;
  flat.ffns = targets.ffns;
  for (auto& [name, ffn] : targets.ffns) {
    flat.linears.emplace_back(nn::JoinName(name, "fc1"), ffn->fc1());
    flat.linears.emplace_back(nn::JoinName(name, "fc2"), ffn->fc2());
  }
  return flat;
}

std::shared_ptr<Int8LinearBackend> GetInt8Backend(const nn::Linear* layer) {
  return std::static_pointer_cast<Int8LinearBackend>(layer->backend());
}

std::string QwName(const std::string& name) { return "q:" + name + ":qw"; }
std::string WsName(const std::string& name) { return "q:" + name + ":ws"; }
std::string BiasName(const std::string& name) {
  return "q:" + name + ":bias";
}
std::string CsName(const std::string& name) { return "q:" + name + ":cs"; }
std::string FfnName(const std::string& name) { return "q:" + name + ":ffn"; }

/// Fetches a section and checks kind + element count in one step.
Result<const io::Section*> VecSection(const io::EmxmReader& reader,
                                      const std::string& name,
                                      io::SectionKind kind,
                                      uint64_t expect_count,
                                      uint64_t elem_bytes) {
  const io::Section* s = reader.Find(name);
  if (s == nullptr) {
    return Status::NotFound("section '" + name + "' missing in " +
                            reader.path());
  }
  if (s->kind != kind || s->aux[0] != expect_count ||
      s->bytes != expect_count * elem_bytes) {
    return Status::InvalidArgument("section '" + name + "' in " +
                                   reader.path() +
                                   " has the wrong kind or element count");
  }
  return s;
}

}  // namespace

Status SaveModelFile(core::EntityMatcher* matcher, const std::string& path) {
  io::EmxmWriter writer;

  // fp32 first: always present, and enough to rebuild everything else.
  std::vector<nn::NamedParam> params = matcher->classifier()->Parameters();
  EMX_RETURN_IF_ERROR(nn::AppendParametersEmxm(&writer, params));

  FlatQuantTargets flat = FlattenTargets(matcher);
  const bool quantized = IsQuantized(matcher);
  uint64_t linear_count = 0;
  uint64_t ffn_count = 0;
  if (quantized) {
    for (auto& [name, layer] : flat.linears) {
      if (layer->backend() == nullptr || !layer->backend()->ready()) {
        return Status::InvalidArgument(
            "SaveModelFile: layer '" + name +
            "' is not quantized; quantize fully or clear quantization");
      }
      const PackedWeights& w = GetInt8Backend(layer)->packed();
      std::array<uint64_t, 6> aux{};
      aux[0] = static_cast<uint64_t>(w.in);
      aux[1] = static_cast<uint64_t>(w.out);
      aux[2] = static_cast<uint64_t>(w.k_padded);
      aux[3] = static_cast<uint64_t>(w.n_padded);
      aux[4] = io::AuxFromF32(w.act.scale);
      aux[5] = static_cast<uint64_t>(w.act.zero_point);
      // The packed kernel image verbatim — including col_sums below, so
      // the mapped loader never has to touch the weight bytes.
      writer.AddSection(
          QwName(name), io::SectionKind::kInt8Packed, aux, w.packed_data(),
          static_cast<uint64_t>(w.k_padded) * static_cast<uint64_t>(w.n_padded));
      std::array<uint64_t, 6> count_aux{};
      count_aux[0] = static_cast<uint64_t>(w.out);
      writer.AddSection(WsName(name), io::SectionKind::kF32Vec, count_aux,
                        w.w_scales.data(), w.w_scales.size() * sizeof(float));
      writer.AddSection(BiasName(name), io::SectionKind::kF32Vec, count_aux,
                        w.bias.data(), w.bias.size() * sizeof(float));
      writer.AddSection(CsName(name), io::SectionKind::kI32Vec, count_aux,
                        w.col_sums.data(),
                        w.col_sums.size() * sizeof(int32_t));
      ++linear_count;
    }
    for (auto& [name, ffn] : flat.ffns) {
      if (ffn->backend() == nullptr || !ffn->backend()->ready()) {
        return Status::InvalidArgument("SaveModelFile: FFN '" + name +
                                       "' has no fused backend");
      }
      const auto* be =
          static_cast<const Int8FfnBackend*>(ffn->backend().get());
      const QuantParams mid = be->mid_in();
      std::array<uint64_t, 6> aux{};
      aux[0] = static_cast<uint64_t>(be->activation());
      aux[1] = io::AuxFromF32(mid.scale);
      aux[2] = static_cast<uint64_t>(mid.zero_point);
      writer.AddSection(FfnName(name), io::SectionKind::kFfnMeta, aux,
                        nullptr, 0);
      ++ffn_count;
    }
  }

  const std::string arch = matcher->arch_name();
  std::array<uint64_t, 6> manifest_aux{};
  manifest_aux[0] = params.size();
  manifest_aux[1] = linear_count;
  manifest_aux[2] = ffn_count;
  writer.AddSection(kManifestName, io::SectionKind::kManifest, manifest_aux,
                    arch.data(), arch.size());

  return writer.WriteFile(path);
}

Result<ModelFileInfo> LoadModelFileMapped(core::EntityMatcher* matcher,
                                          const std::string& path) {
  EMX_ASSIGN_OR_RETURN(std::shared_ptr<const io::EmxmReader> reader,
                       io::EmxmReader::Open(path));

  const io::Section* manifest = reader->Find(kManifestName);
  if (manifest == nullptr || manifest->kind != io::SectionKind::kManifest) {
    return Status::InvalidArgument(path + " has no model manifest");
  }
  const std::string arch(reinterpret_cast<const char*>(manifest->data),
                         manifest->bytes);
  if (arch != matcher->arch_name()) {
    return Status::InvalidArgument(
        path + " holds a " + arch + " model; this matcher is " +
        matcher->arch_name());
  }

  ModelFileInfo info;
  info.fp32_params = static_cast<int64_t>(manifest->aux[0]);
  info.int8_linears = static_cast<int64_t>(manifest->aux[1]);
  info.int8_ffns = static_cast<int64_t>(manifest->aux[2]);
  info.has_int8 = manifest->aux[1] > 0;

  FlatQuantTargets flat = FlattenTargets(matcher);
  std::map<std::string, std::shared_ptr<Int8LinearBackend>> backends;
  std::map<std::string, std::shared_ptr<Int8FfnBackend>> ffn_backends;
  if (info.has_int8) {
    // Build every backend before attaching any (and before the fp32 copy
    // below), so a bad container cannot leave a half-swapped matcher.
    for (auto& [name, layer] : flat.linears) {
      const io::Section* qw = reader->Find(QwName(name));
      if (qw == nullptr) {
        return Status::InvalidArgument(path + " does not cover layer '" +
                                       name + "'");
      }
      if (qw->kind != io::SectionKind::kInt8Packed) {
        return Status::InvalidArgument("section '" + QwName(name) + "' in " +
                                       path + " is not a packed int8 image");
      }
      const int64_t in = static_cast<int64_t>(qw->aux[0]);
      const int64_t out = static_cast<int64_t>(qw->aux[1]);
      if (in != layer->in_features() || out != layer->out_features()) {
        return Status::InvalidArgument(
            "quantized layer '" + name + "' shape mismatch: file has [" +
            std::to_string(in) + ", " + std::to_string(out) +
            "], model expects [" + std::to_string(layer->in_features()) +
            ", " + std::to_string(layer->out_features()) + "]");
      }
      QuantParams act;
      act.scale = io::F32FromAux(qw->aux[4]);
      act.zero_point = static_cast<int32_t>(qw->aux[5]);

      const uint64_t out_u = static_cast<uint64_t>(out);
      EMX_ASSIGN_OR_RETURN(
          const io::Section* ws,
          VecSection(*reader, WsName(name), io::SectionKind::kF32Vec, out_u,
                     sizeof(float)));
      EMX_ASSIGN_OR_RETURN(
          const io::Section* bias,
          VecSection(*reader, BiasName(name), io::SectionKind::kF32Vec,
                     out_u, sizeof(float)));
      EMX_ASSIGN_OR_RETURN(
          const io::Section* cs,
          VecSection(*reader, CsName(name), io::SectionKind::kI32Vec, out_u,
                     sizeof(int32_t)));

      // The O(out) epilogue arrays are copied (they are cheap and keep
      // the struct layout uniform); only the O(in*out) packed image is
      // aliased, with the reader as keepalive.
      std::vector<float> w_scales(out_u), bias_v(out_u);
      std::vector<int32_t> col_sums(out_u);
      std::memcpy(w_scales.data(), ws->data, ws->bytes);
      std::memcpy(bias_v.data(), bias->data, bias->bytes);
      std::memcpy(col_sums.data(), cs->data, cs->bytes);
      EMX_ASSIGN_OR_RETURN(
          PackedWeights packed,
          ViewPackedWeights(in, out,
                            reinterpret_cast<const int8_t*>(qw->data),
                            qw->bytes, reader, std::move(w_scales),
                            std::move(bias_v), std::move(col_sums), act));
      if (static_cast<int64_t>(qw->aux[2]) != packed.k_padded ||
          static_cast<int64_t>(qw->aux[3]) != packed.n_padded) {
        return Status::InvalidArgument("section '" + QwName(name) + "' in " +
                                       path +
                                       " declares inconsistent padding");
      }
      auto backend = std::make_shared<Int8LinearBackend>();
      backend->FreezeFromPacked(std::move(packed));
      backends[name] = backend;
    }
    for (auto& [name, ffn] : flat.ffns) {
      const io::Section* meta = reader->Find(FfnName(name));
      if (meta == nullptr || meta->kind != io::SectionKind::kFfnMeta) {
        return Status::InvalidArgument(path + " does not cover FFN '" +
                                       name + "'");
      }
      if (meta->aux[0] != static_cast<uint64_t>(ffn->activation())) {
        return Status::InvalidArgument("quantized FFN '" + name +
                                       "' activation mismatch in " + path);
      }
      QuantParams mid;
      mid.scale = io::F32FromAux(meta->aux[1]);
      mid.zero_point = static_cast<int32_t>(meta->aux[2]);
      auto fc1 = backends.find(nn::JoinName(name, "fc1"));
      auto fc2 = backends.find(nn::JoinName(name, "fc2"));
      if (fc1 == backends.end() || fc2 == backends.end()) {
        return Status::InvalidArgument("FFN '" + name + "' in " + path +
                                       " is missing its fc1/fc2 entries");
      }
      ffn_backends[name] = std::make_shared<Int8FfnBackend>(
          fc1->second->packed(), fc2->second->packed(), mid,
          ffn->activation());
    }
  }

  // fp32 is itself all-or-nothing (validate-then-attach), so this is the
  // first mutation and the last fallible step.
  std::vector<nn::NamedParam> params = matcher->classifier()->Parameters();
  EMX_RETURN_IF_ERROR(nn::LoadParametersMapped(reader, params));

  if (info.has_int8) {
    for (auto& [name, layer] : flat.linears) {
      layer->set_backend(backends[name]);
    }
    for (auto& [name, ffn] : flat.ffns) {
      ffn->set_backend(ffn_backends[name]);
    }
  }
  return info;
}

}  // namespace quant
}  // namespace emx
