#ifndef EMX_QUANT_INT8_GEMM_H_
#define EMX_QUANT_INT8_GEMM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "quant/observer.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace emx {
namespace quant {

/// Output-channel tile width of the packed weight layout. 16 int32 lanes
/// fill one 512-bit accumulator, so a single VNNI instruction advances 16
/// output channels by 4 k-steps.
constexpr int64_t kColBlock = 16;
/// k-values consumed per VNNI step (vpdpbusd contracts groups of 4 bytes).
constexpr int64_t kKGroup = 4;

/// An nn::Linear's weights quantized per output channel (symmetric int8)
/// and packed for the u8 x s8 -> i32 kernel, together with everything the
/// fused dequant+bias epilogue needs. Immutable after construction, so
/// concurrent Forward calls from serving workers are safe.
///
/// Layout: weights W [in, out] are stored as
///   data[(nb * kg_count + kg) * (kColBlock * kKGroup)
///        + col_in_block * kKGroup + kk] = qw[kg*4 + kk][nb*16 + col]
/// i.e. [out/16 tiles][k/4 groups][16 cols][4 ks]. One 64-byte row of a
/// tile is exactly the operand vpdpbusd wants against a 4-byte activation
/// broadcast. k is zero-padded to a multiple of 4 (zero weight rows add
/// nothing) and out to a multiple of 16 (padded columns are computed but
/// never stored).
struct PackedWeights {
  int64_t in = 0;        // logical K
  int64_t out = 0;       // logical N
  int64_t k_padded = 0;  // in rounded up to kKGroup
  int64_t n_padded = 0;  // out rounded up to kColBlock

  /// Packed bytes live in exactly one of two places: `data` when the
  /// weights were quantized or parsed into this process, or `view` when
  /// they are served zero-copy out of a read-only EMXM mapping. `owner`
  /// keeps whatever backs `view` (the mapped container) alive for as long
  /// as this struct exists; kernels always go through packed_data().
  std::vector<int8_t> data;          // n_padded * k_padded, interleaved
  const int8_t* view = nullptr;      // borrowed packed image (mapped mode)
  std::shared_ptr<const void> owner; // keepalive for `view`

  std::vector<int32_t> col_sums;   // [out]; sum_k qw[k][j]
  std::vector<float> w_scales;     // [out]; per-channel symmetric scales
  std::vector<float> bias;         // [out]; fp32 bias, applied in epilogue
  std::vector<float> fused_scale;  // [out]; act.scale * w_scales[j]
  QuantParams act;                 // input-activation grid (u8 affine)

  const int8_t* packed_data() const {
    return view != nullptr ? view : data.data();
  }
};

/// Quantizes fp32 weights [in, out] per output channel and packs them.
/// `act` is the calibrated grid of the activations this layer will see.
PackedWeights PackWeights(const Tensor& weight, const Tensor& bias,
                          const QuantParams& act);

/// Rebuilds the packed structure from already-quantized rows (checkpoint
/// load). `qw` is logical row-major [in, out]. col_sums and fused scales
/// are recomputed; packing is deterministic, so a reloaded model is
/// bit-identical to the freshly quantized one it was saved from.
PackedWeights PackQuantizedWeights(int64_t in, int64_t out,
                                   const std::vector<int8_t>& qw,
                                   const std::vector<float>& w_scales,
                                   const std::vector<float>& bias,
                                   const QuantParams& act);

/// Builds a PackedWeights that serves the kernel directly from an
/// already-packed weight image (an EMXM section still inside its mmap) —
/// the zero-copy load path. Nothing is repacked or summed: `packed` is
/// aliased, and the derived arrays come from the container verbatim, with
/// only fused_scale recomputed exactly as FinalizeDerived does, so mapped
/// and parsed models produce bit-identical logits. `owner` must keep
/// `packed` valid for the lifetime of the returned struct.
Result<PackedWeights> ViewPackedWeights(int64_t in, int64_t out,
                                        const int8_t* packed,
                                        uint64_t packed_bytes,
                                        std::shared_ptr<const void> owner,
                                        std::vector<float> w_scales,
                                        std::vector<float> bias,
                                        std::vector<int32_t> col_sums,
                                        const QuantParams& act);

/// Extracts the logical row-major int8 weights back out of the packed
/// layout (for checkpoint save).
std::vector<int8_t> UnpackQuantizedWeights(const PackedWeights& w);

/// Quantizes a row-major fp32 matrix [m, k] to u8 rows padded to
/// k_padded: q = clamp(round(x/scale) + zero_point, 0, 255). Padding
/// bytes are zero_point (they meet zero weight rows, so any value works).
void QuantizeActivations(const float* x, int64_t m, int64_t k,
                         int64_t k_padded, const QuantParams& p, uint8_t* qa);

/// acc[m, n_padded] (int32, row-major) = qa[m, k_padded] (u8) x packed
/// weights. Integer accumulation is exact, so the AVX-512 VNNI kernel and
/// the portable scalar fallback produce identical accumulators; which one
/// runs is a pure build-arch question. Parallelized over row blocks with
/// the same ParallelFor/grain discipline as the fp32 GEMM.
void Int8GemmAccumulate(const uint8_t* qa, int64_t m, const PackedWeights& w,
                        int32_t* acc);

/// Reference row range used by tests to pin the vectorized kernel:
/// computes rows [i0, i1) of the accumulator with plain scalar loops.
void Int8GemmRowRangeScalar(const uint8_t* qa, int64_t i0, int64_t i1,
                            const PackedWeights& w, int32_t* acc);

/// y[m, out] fp32 from the raw accumulators:
///   y[i][j] = fused_scale[j] * (acc[i][j] - zp_a * col_sums[j]) + bias[j]
/// The zp_a * col_sums term folds the activation zero-point out of the
/// unsigned accumulation, making the affine u8 grid exact. Scalar by
/// design: it is O(m*out) against the kernel's O(m*k*out), and one code
/// path keeps results bit-identical across builds.
void DequantEpilogue(const int32_t* acc, int64_t m, const PackedWeights& w,
                     float* y);

/// Convenience: quantize + GEMM + epilogue, x [m, in] -> y [m, out].
void Int8LinearForward(const float* x, int64_t m, const PackedWeights& w,
                       float* y);

/// True when this build carries the AVX-512 VNNI kernel (informational;
/// results are identical either way).
bool HasVnniKernel();

}  // namespace quant
}  // namespace emx

#endif  // EMX_QUANT_INT8_GEMM_H_
