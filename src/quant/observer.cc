#include "quant/observer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace emx {
namespace quant {

QuantParams ChooseQuantParams(float lo, float hi) {
  // The grid must contain 0 so that zeros (padding, ReLU) are exact.
  lo = std::min(lo, 0.0f);
  hi = std::max(hi, 0.0f);
  QuantParams p;
  if (hi - lo < 1e-12f) {
    p.scale = 1.0f;
    p.zero_point = 0;
    return p;
  }
  p.scale = (hi - lo) / 255.0f;
  const float zp = std::nearbyint(-lo / p.scale);
  p.zero_point = static_cast<int32_t>(std::clamp(zp, 0.0f, 255.0f));
  return p;
}

void MinMaxObserver::Observe(const float* data, int64_t n) {
  if (n <= 0) return;
  float lo = seen_ ? min_ : data[0];
  float hi = seen_ ? max_ : data[0];
  for (int64_t i = 0; i < n; ++i) {
    lo = std::min(lo, data[i]);
    hi = std::max(hi, data[i]);
  }
  min_ = lo;
  max_ = hi;
  seen_ = true;
}

QuantParams MinMaxObserver::ComputeQuantParams() const {
  if (!seen_) return ChooseQuantParams(0.0f, 0.0f);
  return ChooseQuantParams(min_, max_);
}

void HistogramObserver::GrowToCover(float v) {
  float width = range_hi_ - range_lo_;
  while (v < range_lo_ || v > range_hi_) {
    // Double the covered range away from the out-of-range side, merging
    // bin pairs 2:1 so every previously counted value stays counted.
    const int64_t half = kNumBins / 2;
    if (v > range_hi_) {
      for (int64_t i = 0; i < half; ++i) {
        bins_[i] = bins_[2 * i] + bins_[2 * i + 1];
      }
      std::fill(bins_.begin() + half, bins_.end(), 0);
      range_hi_ = range_lo_ + 2 * width;
    } else {
      for (int64_t i = half - 1; i >= 0; --i) {
        bins_[half + i] = bins_[2 * i] + bins_[2 * i + 1];
      }
      std::fill(bins_.begin(), bins_.begin() + half, 0);
      range_lo_ = range_hi_ - 2 * width;
    }
    width *= 2;
  }
}

void HistogramObserver::Observe(const float* data, int64_t n) {
  if (n <= 0) return;
  if (total_ == 0) {
    float lo = data[0], hi = data[0];
    for (int64_t i = 0; i < n; ++i) {
      lo = std::min(lo, data[i]);
      hi = std::max(hi, data[i]);
    }
    min_ = lo;
    max_ = hi;
    // Anchor the histogram on the first batch, always covering 0.
    range_lo_ = std::min(lo, 0.0f);
    range_hi_ = std::max(hi, 0.0f);
    if (range_hi_ - range_lo_ < 1e-6f) range_hi_ = range_lo_ + 1.0f;
  }
  for (int64_t i = 0; i < n; ++i) {
    const float v = data[i];
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    if (v < range_lo_ || v > range_hi_) GrowToCover(v);
    const float width = range_hi_ - range_lo_;
    int64_t bin = static_cast<int64_t>((v - range_lo_) / width *
                                       static_cast<float>(kNumBins));
    bin = std::clamp<int64_t>(bin, 0, kNumBins - 1);
    ++bins_[bin];
    ++total_;
  }
}

void HistogramObserver::ClippedRange(float* lo, float* hi) const {
  EMX_CHECK_GT(total_, 0) << "HistogramObserver: nothing observed";
  const auto threshold =
      static_cast<int64_t>(clip_fraction_ * static_cast<double>(total_));
  int64_t first = 0, last = kNumBins - 1;
  int64_t mass = 0;
  while (first < last && mass + bins_[first] <= threshold) {
    mass += bins_[first];
    ++first;
  }
  mass = 0;
  while (last > first && mass + bins_[last] <= threshold) {
    mass += bins_[last];
    --last;
  }
  const float bin_width =
      (range_hi_ - range_lo_) / static_cast<float>(kNumBins);
  *lo = range_lo_ + static_cast<float>(first) * bin_width;
  *hi = range_lo_ + static_cast<float>(last + 1) * bin_width;
}

QuantParams HistogramObserver::ComputeQuantParams() const {
  if (total_ == 0) return ChooseQuantParams(0.0f, 0.0f);
  float lo = 0, hi = 0;
  ClippedRange(&lo, &hi);
  return ChooseQuantParams(lo, hi);
}

}  // namespace quant
}  // namespace emx
