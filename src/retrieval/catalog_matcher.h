#ifndef EMX_RETRIEVAL_CATALOG_MATCHER_H_
#define EMX_RETRIEVAL_CATALOG_MATCHER_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "retrieval/qgram_index.h"
#include "serve/matcher_engine.h"
#include "util/status.h"

namespace emx {
namespace retrieval {

/// Tuning knobs for the retrieve → re-rank pipeline.
struct CatalogOptions {
  /// Candidates fetched from the inverted index per query.
  int64_t retrieve_k = 64;
  /// Highest-retrieval-score candidates re-scored by the transformer
  /// engine. The rest keep only their retrieval score and are dropped —
  /// this is the knob that trades recall for QPS (the engine forward is
  /// ~1000x the cost of an index probe).
  int64_t rerank_k = 16;
  /// Matches returned per query, probability-descending.
  int64_t top_k = 5;
  /// Deadline forwarded to each re-rank Submit (µs; 0 = engine default).
  int64_t rerank_timeout_us = 0;
  /// When > 0 and the engine serves through the split-encoder prefix cache,
  /// every ingested record's candidate-side prefix is pre-encoded at Add /
  /// AddBatch time, assuming queries occupy this many tokens (CLS + query +
  /// SEP). Queries of other lengths still miss and encode lazily — warming
  /// is purely a first-request latency optimization for catalogs with
  /// predictable query shapes. 0 disables warming.
  int64_t warm_query_segment_len = 0;
  /// Index construction knobs (used when building fresh, ignored by Load,
  /// which restores the saved index's options).
  IndexOptions index;
};

/// One catalog hit: the stored record, its retrieval score, and — for the
/// re-ranked prefix — the transformer match probability.
struct CatalogMatch {
  int64_t id = 0;
  std::string text;
  /// Idf-weighted feature-overlap score from the index tier.
  double retrieval_score = 0;
  /// Transformer probability from the re-rank tier.
  double probability = 0;
  bool is_match = false;
};

/// The 1-vs-millions matching tier: a QGramIndex narrows the catalog to
/// `retrieve_k` candidates, then the serving engine re-scores the best
/// `rerank_k` of them with the fine-tuned transformer (micro-batched,
/// cached, deadline-aware — everything MatcherEngine already does for
/// pairwise serving). Results come back probability-descending.
///
/// Concurrency: Add/AddBatch and FindMatches may run concurrently.
/// Catalog texts live behind a reader-writer lock; the index has its own
/// per-shard locks (see QGramIndex). Ingest is serialized so record id i
/// is always texts_[i].
///
/// Instrumentation: a private obs::MetricsRegistry carries
/// catalog.{queries,records,rerank_failures} counters and
/// catalog.{retrieve_us,rerank_us,candidates} histograms;
/// EMX_TRACE_SPAN marks the retrieve and re-rank stages per query.
class CatalogMatcher {
 public:
  /// `engine` must outlive the matcher and is shared with other callers
  /// (its queue, cache and workers are the re-rank backend).
  CatalogMatcher(serve::MatcherEngine* engine, CatalogOptions options = {});

  CatalogMatcher(const CatalogMatcher&) = delete;
  CatalogMatcher& operator=(const CatalogMatcher&) = delete;

  /// Adds one serialized record to the catalog; returns its id.
  int64_t Add(std::string text);
  /// Adds a batch; returns the id of the first record (ids contiguous).
  int64_t AddBatch(std::vector<std::string> texts);

  /// Retrieves and re-ranks: at most `top_k` matches, probability
  /// descending (ties: retrieval score descending, then ascending id).
  /// Individual re-rank failures (deadline, queue full) are dropped and
  /// counted; the call fails only if every re-rank submission failed.
  Result<std::vector<CatalogMatch>> FindMatches(std::string_view query);

  int64_t size() const;
  /// The stored text of record `id`; empty when out of range.
  std::string Text(int64_t id) const;

  const QGramIndex& index() const { return index_; }
  const CatalogOptions& options() const { return options_; }
  /// catalog.* counters/histograms (JSON via registry()->ToJson()).
  obs::MetricsRegistry* registry() { return &registry_; }

  /// Persists texts + index (binary, canonical bytes — see QGramIndex).
  /// Save requires ingest quiescence.
  Status Save(const std::string& path) const;
  /// Restores a catalog; `options.index` is ignored in favor of the saved
  /// index options. The loaded matcher's FindMatches results are
  /// bit-identical to the saved one's (given the same engine weights).
  static Result<std::unique_ptr<CatalogMatcher>> Load(
      const std::string& path, serve::MatcherEngine* engine,
      CatalogOptions options = {});

 private:
  /// Pre-encodes candidate prefixes for `texts` when warming is configured
  /// and the engine serves split; no-op otherwise. Called outside
  /// texts_mu_ — warming runs engine forwards and must not stall ingest
  /// readers.
  void WarmTexts(const std::vector<std::string>& texts);

  serve::MatcherEngine* engine_;
  CatalogOptions options_;
  QGramIndex index_;

  mutable std::shared_mutex texts_mu_;
  std::vector<std::string> texts_;

  obs::MetricsRegistry registry_;
  obs::Counter* queries_;
  obs::Counter* records_;
  obs::Counter* rerank_failures_;
  obs::Histogram* retrieve_us_;
  obs::Histogram* rerank_us_;
  obs::Histogram* candidates_;
};

}  // namespace retrieval
}  // namespace emx

#endif  // EMX_RETRIEVAL_CATALOG_MATCHER_H_
