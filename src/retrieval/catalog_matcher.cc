#include "retrieval/catalog_matcher.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <utility>

#include "io/atomic_file.h"
#include "obs/trace.h"

namespace emx {
namespace retrieval {
namespace {

constexpr char kMagic[8] = {'E', 'M', 'X', 'C', 'A', 'T', '0', '1'};

void WriteI64(std::ostream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadI64(std::istream& in, int64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool MatchOrder(const CatalogMatch& a, const CatalogMatch& b) {
  if (a.probability != b.probability) return a.probability > b.probability;
  if (a.retrieval_score != b.retrieval_score) {
    return a.retrieval_score > b.retrieval_score;
  }
  return a.id < b.id;
}

}  // namespace

CatalogMatcher::CatalogMatcher(serve::MatcherEngine* engine,
                               CatalogOptions options)
    : engine_(engine), options_(options), index_(options.index) {
  queries_ = registry_.GetCounter("catalog.queries");
  records_ = registry_.GetCounter("catalog.records");
  rerank_failures_ = registry_.GetCounter("catalog.rerank_failures");
  // 10µs .. ~5s decades cover an index probe through a deadline-bound
  // re-rank on a loaded engine.
  retrieve_us_ = registry_.GetHistogram(
      "catalog.retrieve_us", obs::ExponentialBuckets(10, 2, 20));
  rerank_us_ = registry_.GetHistogram("catalog.rerank_us",
                                      obs::ExponentialBuckets(10, 2, 20));
  candidates_ = registry_.GetHistogram(
      "catalog.candidates",
      obs::LinearBuckets(0, 8, static_cast<int>(options_.retrieve_k / 8) + 2));
}

int64_t CatalogMatcher::Add(std::string text) {
  int64_t id;
  {
    std::unique_lock<std::shared_mutex> lock(texts_mu_);
    id = index_.AddRecord(text);
    texts_.push_back(text);
    records_->Add(1);
  }
  WarmTexts({std::move(text)});
  return id;
}

int64_t CatalogMatcher::AddBatch(std::vector<std::string> texts) {
  int64_t base;
  {
    std::unique_lock<std::shared_mutex> lock(texts_mu_);
    base = index_.AddBatch(texts);
    records_->Add(static_cast<int64_t>(texts.size()));
    texts_.reserve(texts_.size() + texts.size());
    for (const std::string& t : texts) texts_.push_back(t);
  }
  WarmTexts(texts);
  return base;
}

void CatalogMatcher::WarmTexts(const std::vector<std::string>& texts) {
  if (options_.warm_query_segment_len <= 0 || !engine_->split_enabled()) {
    return;
  }
  EMX_TRACE_SPAN("catalog.warm", [&] {
    return obs::KeyValues({{"records", static_cast<int64_t>(texts.size())}});
  });
  for (const std::string& t : texts) {
    engine_->WarmCandidate(t, options_.warm_query_segment_len);
  }
}

int64_t CatalogMatcher::size() const {
  std::shared_lock<std::shared_mutex> lock(texts_mu_);
  return static_cast<int64_t>(texts_.size());
}

std::string CatalogMatcher::Text(int64_t id) const {
  std::shared_lock<std::shared_mutex> lock(texts_mu_);
  if (id < 0 || id >= static_cast<int64_t>(texts_.size())) return "";
  return texts_[static_cast<size_t>(id)];
}

Result<std::vector<CatalogMatch>> CatalogMatcher::FindMatches(
    std::string_view query) {
  queries_->Add(1);

  std::vector<ScoredId> cands;
  {
    EMX_TRACE_SPAN("catalog.retrieve");
    const auto start = std::chrono::steady_clock::now();
    cands = index_.TopK(query, options_.retrieve_k);
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    retrieve_us_->Record(us);
  }
  candidates_->Record(static_cast<double>(cands.size()));
  if (cands.empty()) return std::vector<CatalogMatch>{};

  const int64_t rerank =
      std::min<int64_t>(options_.rerank_k, static_cast<int64_t>(cands.size()));

  std::vector<CatalogMatch> matches;
  Status first_error = Status::OK();
  {
    EMX_TRACE_SPAN("catalog.rerank", [&] {
      return obs::KeyValues(
          {{"candidates", static_cast<int64_t>(cands.size())},
           {"rerank", rerank}});
    });
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::future<serve::MatchResult>> futures;
    futures.reserve(static_cast<size_t>(rerank));
    // Pin the query once: it is tokenized a single time and, on a
    // split-serving engine, its layer-k prefix is encoded once per
    // truncation length instead of once per candidate.
    const serve::PinnedQuery pinned = engine_->PinQuery(std::string(query));
    for (int64_t i = 0; i < rerank; ++i) {
      futures.push_back(engine_->SubmitAgainst(pinned, Text(cands[i].id),
                                               options_.rerank_timeout_us));
    }
    for (int64_t i = 0; i < rerank; ++i) {
      serve::MatchResult r = futures[static_cast<size_t>(i)].get();
      if (!r.status.ok()) {
        rerank_failures_->Add(1);
        if (first_error.ok()) first_error = r.status;
        continue;
      }
      CatalogMatch m;
      m.id = cands[static_cast<size_t>(i)].id;
      m.text = Text(m.id);
      m.retrieval_score = cands[static_cast<size_t>(i)].score;
      m.probability = r.probability;
      m.is_match = r.is_match;
      matches.push_back(std::move(m));
    }
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    rerank_us_->Record(us);
  }
  if (matches.empty() && !first_error.ok()) return first_error;

  std::sort(matches.begin(), matches.end(), MatchOrder);
  if (static_cast<int64_t>(matches.size()) > options_.top_k) {
    matches.resize(static_cast<size_t>(options_.top_k));
  }
  return matches;
}

Status CatalogMatcher::Save(const std::string& path) const {
  io::AtomicFileWriter writer(path);
  EMX_RETURN_IF_ERROR(writer.status());
  std::ofstream& out = writer.stream();
  std::shared_lock<std::shared_mutex> lock(texts_mu_);
  out.write(kMagic, sizeof(kMagic));
  WriteI64(out, static_cast<int64_t>(texts_.size()));
  for (const std::string& t : texts_) {
    WriteI64(out, static_cast<int64_t>(t.size()));
    out.write(t.data(), static_cast<std::streamsize>(t.size()));
  }
  EMX_RETURN_IF_ERROR(index_.SaveTo(out));
  return writer.Commit();
}

Result<std::unique_ptr<CatalogMatcher>> CatalogMatcher::Load(
    const std::string& path, serve::MatcherEngine* engine,
    CatalogOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an EMXCAT01 catalog file");
  }
  int64_t num_texts = 0;
  if (!ReadI64(in, &num_texts) || num_texts < 0) {
    return Status::IoError("truncated catalog header");
  }
  std::vector<std::string> texts;
  texts.reserve(static_cast<size_t>(num_texts));
  for (int64_t i = 0; i < num_texts; ++i) {
    int64_t len = 0;
    if (!ReadI64(in, &len) || len < 0 || len > (1 << 24)) {
      return Status::IoError("corrupt catalog text length");
    }
    std::string t(static_cast<size_t>(len), '\0');
    in.read(t.data(), len);
    if (!in.good()) return Status::IoError("truncated catalog text");
    texts.push_back(std::move(t));
  }
  auto index = QGramIndex::LoadFrom(in);
  if (!index.ok()) return index.status();
  if (index.value().size() != num_texts) {
    return Status::InvalidArgument("catalog text/index size mismatch");
  }
  options.index = index.value().options();
  auto matcher = std::make_unique<CatalogMatcher>(engine, options);
  matcher->index_ = std::move(index).value();
  matcher->texts_ = std::move(texts);
  matcher->records_->Add(num_texts);
  return matcher;
}

}  // namespace retrieval
}  // namespace emx
