#ifndef EMX_RETRIEVAL_QGRAM_INDEX_H_
#define EMX_RETRIEVAL_QGRAM_INDEX_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace emx {
namespace retrieval {

/// Tuning knobs for the catalog index.
struct IndexOptions {
  /// Character q-gram width over each lower-cased token (tokens are padded
  /// with '^'/'$' boundary markers before slicing, so "zx55" and "zx-55"
  /// still share their edge grams). 0 disables q-grams.
  int64_t qgram = 3;
  /// Index whole whitespace tokens as features as well — exact token hits
  /// (brand names, years) score higher than their shredded grams alone.
  /// Each token also contributes a punctuation-stripped alias ("zx-55" →
  /// "zx55") and a join with the stripped next token ("zx","55" → "zx55"):
  /// hyphenated, space-split, and unperturbed renderings of a model number
  /// must collapse to one exact rare token, because shared medium-idf grams
  /// alone lose to coincidental gram overlap at million-record scale.
  bool index_tokens = true;
  /// Global posting cap per feature. A feature whose document frequency
  /// crosses this becomes a *stop feature*: its postings are freed and it
  /// stops being indexed or scored — templated catalogs repeat boilerplate
  /// grams ("the", " gb ") in nearly every record, and carrying million-entry
  /// posting lists for them would blow memory without adding signal.
  /// Internally the cap is split evenly across shards
  /// (max(1, max_postings / num_shards) per shard) so the stop decision is a
  /// pure function of each shard's record set, independent of query load or
  /// thread count.
  int64_t max_postings = 1 << 14;
  /// Independent index shards; record id `i` lives in shard `i % num_shards`.
  /// Queries score shards in parallel (ParallelFor) and ingest takes only
  /// the target shard's writer lock, so streaming AddRecord/AddBatch can
  /// proceed while queries run.
  int64_t num_shards = 8;
  /// Max-score (WAND-style) pruning in TopK: once a shard holds k
  /// candidates whose k-th best partial score already exceeds the summed
  /// idf weight of every feature still unprocessed, records first seen in
  /// those remaining (low-weight, long-posting-list) features cannot reach
  /// the top k and are never materialized. Results are identical to the
  /// unpruned path — scores accumulate in the same feature order, and the
  /// bound is checked with a strict margin (see TopK). Query-time only;
  /// not persisted by Save.
  bool prune_topk = true;
};

/// One retrieved catalog record: its id (assigned by Add order, starting at
/// 0) and its idf-weighted feature-overlap score.
struct ScoredId {
  int64_t id = 0;
  double score = 0;
};

/// Sharded, persistent inverted q-gram/token index over serialized records
/// — the retrieval tier that turns pairwise matching into 1-vs-millions
/// matching. Records are added as flat text (see data::SerializeRecord),
/// assigned dense int64 ids in arrival order, and retrieved by idf-weighted
/// feature overlap: score(r) = sum over shared features f of
/// log(1 + N / (1 + df(f))). Rare features (model numbers, author names)
/// dominate; boilerplate contributes little and is dropped entirely once it
/// crosses the posting cap.
///
/// Concurrency: AddRecord/AddBatch and TopK may run concurrently. Each
/// shard has a reader-writer lock; queries hold reader locks while scoring,
/// ingest holds the writer lock of the single target shard. A query racing
/// an ingest sees some prefix of the new records — never a torn posting
/// list. The final index state depends only on the set and order of added
/// records, not on query interleaving or thread count, and TopK results are
/// deterministic for a given index state (ties broken by ascending id).
class QGramIndex {
 public:
  explicit QGramIndex(IndexOptions options = IndexOptions{});

  QGramIndex(QGramIndex&&) noexcept;
  QGramIndex& operator=(QGramIndex&&) noexcept;
  QGramIndex(const QGramIndex&) = delete;
  QGramIndex& operator=(const QGramIndex&) = delete;
  ~QGramIndex();

  /// Adds one serialized record; returns its id.
  int64_t AddRecord(std::string_view text);
  /// Adds a batch; returns the id of the first record (ids are contiguous).
  /// Feature extraction and posting insertion run per-shard in parallel.
  int64_t AddBatch(const std::vector<std::string>& texts);

  /// The k highest-scoring records for the query text, score descending,
  /// ties by ascending id. Thread-safe against concurrent ingest.
  std::vector<ScoredId> TopK(std::string_view query, int64_t k) const;

  /// Records indexed so far.
  int64_t size() const;
  /// Live (non-stop) features across all shards.
  int64_t num_features() const;
  /// Features demoted to stop features (postings freed).
  int64_t num_stop_features() const;

  const IndexOptions& options() const { return options_; }

  /// The deterministic feature set of one text under these options
  /// (deduplicated, first-occurrence order). Exposed for tests and for
  /// callers that want to inspect what the index keys on.
  std::vector<std::string> Features(std::string_view text) const;

  /// Binary little-endian persistence. Save writes shards with features in
  /// sorted order (canonical bytes for identical index states); Load
  /// restores an index whose TopK results are bit-identical to the saved
  /// one's. Save requires ingest quiescence (it takes all reader locks).
  Status Save(const std::string& path) const;
  Status SaveTo(std::ostream& out) const;
  static Result<QGramIndex> Load(const std::string& path);
  static Result<QGramIndex> LoadFrom(std::istream& in);

 private:
  struct PostingList {
    /// Records containing the feature — keeps counting after the stop cap.
    int64_t df = 0;
    bool stopped = false;
    std::vector<uint32_t> ids;
  };
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, PostingList> features;
    int64_t stop_count = 0;  // features demoted to stop features
  };

  int64_t per_shard_cap() const;
  /// Inserts `id`'s features into its shard. Caller must not hold locks.
  void Insert(int64_t id, const std::vector<std::string>& features);

  IndexOptions options_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<int64_t> next_id_{0};
};

}  // namespace retrieval
}  // namespace emx

#endif  // EMX_RETRIEVAL_QGRAM_INDEX_H_
