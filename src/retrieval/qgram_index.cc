#include "retrieval/qgram_index.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <unordered_set>

#include "io/atomic_file.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace emx {
namespace retrieval {
namespace {

constexpr char kMagic[8] = {'E', 'M', 'X', 'R', 'I', 'D', 'X', '1'};

// Ingest batches are chunked so AddBatch never materializes the feature
// lists of more than this many records at once (a million-record batch
// would otherwise hold ~10 GB of transient feature strings).
constexpr int64_t kIngestChunk = 4096;

void WriteI64(std::ostream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadI64(std::istream& in, int64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

/// Idf weight of a feature seen in `df` of `n` records. The +1 smoothing
/// keeps unseen features finite and df = n features positive.
double IdfWeight(int64_t n, int64_t df) {
  return std::log(1.0 + static_cast<double>(n) /
                            (1.0 + static_cast<double>(df)));
}

bool ScoreOrder(const ScoredId& a, const ScoredId& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

}  // namespace

QGramIndex::QGramIndex(IndexOptions options) : options_(options) {
  options_.num_shards = std::max<int64_t>(1, options_.num_shards);
  options_.qgram = std::max<int64_t>(0, options_.qgram);
  options_.max_postings = std::max<int64_t>(1, options_.max_postings);
  shards_ = std::make_unique<Shard[]>(static_cast<size_t>(options_.num_shards));
}

QGramIndex::QGramIndex(QGramIndex&& other) noexcept
    : options_(other.options_), shards_(std::move(other.shards_)) {
  next_id_.store(other.next_id_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

QGramIndex& QGramIndex::operator=(QGramIndex&& other) noexcept {
  options_ = other.options_;
  shards_ = std::move(other.shards_);
  next_id_.store(other.next_id_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  return *this;
}

QGramIndex::~QGramIndex() = default;

int64_t QGramIndex::per_shard_cap() const {
  return std::max<int64_t>(1, options_.max_postings / options_.num_shards);
}

namespace {

std::string StripNonAlnum(const std::string& token) {
  std::string out;
  out.reserve(token.size());
  for (char c : token) {
    if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out;
}

}  // namespace

std::vector<std::string> QGramIndex::Features(std::string_view text) const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  auto emit = [&](std::string f) {
    if (seen.insert(f).second) out.push_back(std::move(f));
  };
  const std::string lowered = ToLower(text);
  const std::vector<std::string> tokens = SplitWhitespace(lowered);
  for (size_t t = 0; t < tokens.size(); ++t) {
    const std::string& token = tokens[t];
    if (options_.index_tokens) {
      emit(token);
      // Punctuation-stripped alias: "zx-55" and "zx55" become the same
      // rare exact-token feature, which q-grams alone cannot guarantee.
      std::string alnum = StripNonAlnum(token);
      if (!alnum.empty() && alnum != token) emit(std::move(alnum));
      // Adjacent-token join: a model number split across tokens
      // ("zx 55") re-fuses to match the unsplit rendering's token.
      // Common-word joins cross the posting cap and stop out.
      if (t + 1 < tokens.size()) {
        std::string join = StripNonAlnum(token) + StripNonAlnum(tokens[t + 1]);
        if (!join.empty()) emit(std::move(join));
      }
    }
    if (options_.qgram > 0) {
      // Boundary-padded grams: "^zx55$" and "^zx-55$" share their edges.
      const std::string padded = "^" + token + "$";
      const size_t q = static_cast<size_t>(options_.qgram);
      if (padded.size() <= q) {
        emit(padded);
      } else {
        for (size_t i = 0; i + q <= padded.size(); ++i) {
          emit(padded.substr(i, q));
        }
      }
    }
  }
  return out;
}

void QGramIndex::Insert(int64_t id, const std::vector<std::string>& features) {
  Shard& shard = shards_[static_cast<size_t>(id % options_.num_shards)];
  const int64_t cap = per_shard_cap();
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  for (const std::string& f : features) {
    PostingList& pl = shard.features[f];
    ++pl.df;
    if (pl.stopped) continue;
    if (pl.df > cap) {
      // Crossed the cap: demote to a stop feature and free its postings.
      pl.stopped = true;
      ++shard.stop_count;
      pl.ids.clear();
      pl.ids.shrink_to_fit();
      continue;
    }
    pl.ids.push_back(static_cast<uint32_t>(id));
  }
}

int64_t QGramIndex::AddRecord(std::string_view text) {
  const int64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Insert(id, Features(text));
  return id;
}

int64_t QGramIndex::AddBatch(const std::vector<std::string>& texts) {
  const int64_t n = static_cast<int64_t>(texts.size());
  const int64_t base = next_id_.fetch_add(n, std::memory_order_relaxed);
  std::vector<std::vector<std::string>> features(
      static_cast<size_t>(std::min(n, kIngestChunk)));
  for (int64_t chunk = 0; chunk < n; chunk += kIngestChunk) {
    const int64_t end = std::min(n, chunk + kIngestChunk);
    {
      EMX_TRACE_SPAN("retrieval.extract");
      ParallelFor(end - chunk, 64, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          features[static_cast<size_t>(i)] =
              Features(texts[static_cast<size_t>(chunk + i)]);
        }
      });
    }
    EMX_TRACE_SPAN("retrieval.insert");
    // One task per shard: every record of the chunk belongs to exactly one
    // shard, so shard tasks touch disjoint state.
    ParallelFor(options_.num_shards, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t s = lo; s < hi; ++s) {
        for (int64_t i = chunk; i < end; ++i) {
          if ((base + i) % options_.num_shards != s) continue;
          Insert(base + i, features[static_cast<size_t>(i - chunk)]);
        }
      }
    });
  }
  return base;
}

int64_t QGramIndex::size() const {
  return next_id_.load(std::memory_order_relaxed);
}

int64_t QGramIndex::num_features() const {
  int64_t total = 0;
  for (int64_t s = 0; s < options_.num_shards; ++s) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += static_cast<int64_t>(shard.features.size()) - shard.stop_count;
  }
  return total;
}

int64_t QGramIndex::num_stop_features() const {
  int64_t total = 0;
  for (int64_t s = 0; s < options_.num_shards; ++s) {
    Shard& shard = shards_[static_cast<size_t>(s)];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.stop_count;
  }
  return total;
}

std::vector<ScoredId> QGramIndex::TopK(std::string_view query,
                                       int64_t k) const {
  const int64_t n = size();
  if (k <= 0 || n == 0) return {};
  std::vector<std::string> features;
  {
    EMX_TRACE_SPAN("retrieval.features");
    features = Features(query);
  }
  if (features.empty()) return {};

  // Pass 1: global document frequency per feature (summed across shards)
  // fixes one idf weight per feature, so candidates in different shards are
  // scored on the same scale.
  std::vector<double> weights(features.size(), 0);
  {
    EMX_TRACE_SPAN("retrieval.weights");
    std::vector<int64_t> df(features.size(), 0);
    for (int64_t s = 0; s < options_.num_shards; ++s) {
      Shard& shard = shards_[static_cast<size_t>(s)];
      std::shared_lock<std::shared_mutex> lock(shard.mu);
      for (size_t i = 0; i < features.size(); ++i) {
        auto it = shard.features.find(features[i]);
        if (it != shard.features.end()) df[i] += it->second.df;
      }
    }
    for (size_t i = 0; i < features.size(); ++i) {
      weights[i] = IdfWeight(n, df[i]);
    }
  }

  // Max-score pruning bound: suffix[i] is the total idf weight of features
  // [i, end), i.e. the highest score a record first encountered at feature
  // i can still accumulate. Shared read-only across shard tasks.
  std::vector<double> suffix(features.size() + 1, 0.0);
  if (options_.prune_topk) {
    for (size_t i = features.size(); i-- > 0;) {
      suffix[i] = suffix[i + 1] + weights[i];
    }
  }

  // Pass 2: per-shard accumulation and local top-k, shards in parallel.
  // Each candidate's score is summed in fixed feature order, so results do
  // not depend on the thread count.
  std::vector<std::vector<ScoredId>> per_shard(
      static_cast<size_t>(options_.num_shards));
  {
    EMX_TRACE_SPAN("retrieval.score", [&] {
      return obs::KeyValues({{"features",
                              static_cast<int64_t>(features.size())},
                             {"k", k}});
    });
    ParallelFor(options_.num_shards, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t s = lo; s < hi; ++s) {
        Shard& shard = shards_[static_cast<size_t>(s)];
        std::unordered_map<uint32_t, double> acc;
        // Once `closed`, no NEW candidate ids are admitted; existing
        // accumulators keep updating, in the same feature order as the
        // unpruned path, so survivors score bit-identically.
        bool closed = false;
        std::vector<double> floor_scratch;
        {
          std::shared_lock<std::shared_mutex> lock(shard.mu);
          for (size_t i = 0; i < features.size(); ++i) {
            if (options_.prune_topk && !closed &&
                static_cast<int64_t>(acc.size()) >= k && k > 0) {
              // Current k-th best partial score in this shard. Partials
              // only grow, so it lower-bounds the final k-th best. A record
              // unseen so far finishes at most at suffix[i] (a subset of
              // the remaining weights); requiring floor to clear it by a
              // relative margin absorbs floating-point rounding between
              // the subset sum and the suffix sum, keeping the strict
              // comparison safe. Once it clears, at least k records beat
              // every future first-timer — stop admitting them.
              floor_scratch.clear();
              floor_scratch.reserve(acc.size());
              for (const auto& [id, score] : acc) {
                floor_scratch.push_back(score);
              }
              std::nth_element(floor_scratch.begin(),
                               floor_scratch.begin() + (k - 1),
                               floor_scratch.end(), std::greater<double>());
              const double floor =
                  floor_scratch[static_cast<size_t>(k - 1)];
              if (floor > suffix[i] * (1.0 + 1e-9)) closed = true;
            }
            auto it = shard.features.find(features[i]);
            if (it == shard.features.end() || it->second.stopped) continue;
            if (closed) {
              for (uint32_t id : it->second.ids) {
                auto entry = acc.find(id);
                if (entry != acc.end()) entry->second += weights[i];
              }
            } else {
              for (uint32_t id : it->second.ids) acc[id] += weights[i];
            }
          }
        }
        std::vector<ScoredId>& local = per_shard[static_cast<size_t>(s)];
        local.reserve(acc.size());
        for (const auto& [id, score] : acc) {
          local.push_back({static_cast<int64_t>(id), score});
        }
        if (static_cast<int64_t>(local.size()) > k) {
          std::nth_element(local.begin(), local.begin() + k, local.end(),
                           ScoreOrder);
          local.resize(static_cast<size_t>(k));
        }
        std::sort(local.begin(), local.end(), ScoreOrder);
      }
    });
  }

  EMX_TRACE_SPAN("retrieval.merge");
  std::vector<ScoredId> merged;
  for (const auto& local : per_shard) {
    merged.insert(merged.end(), local.begin(), local.end());
  }
  std::sort(merged.begin(), merged.end(), ScoreOrder);
  if (static_cast<int64_t>(merged.size()) > k) {
    merged.resize(static_cast<size_t>(k));
  }
  return merged;
}

Status QGramIndex::SaveTo(std::ostream& out) const {
  // Writer-exclude every shard for the duration: a save is a consistent
  // snapshot, not a racing reader.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(static_cast<size_t>(options_.num_shards));
  for (int64_t s = 0; s < options_.num_shards; ++s) {
    locks.emplace_back(shards_[static_cast<size_t>(s)].mu);
  }

  out.write(kMagic, sizeof(kMagic));
  WriteI64(out, options_.qgram);
  WriteI64(out, options_.index_tokens ? 1 : 0);
  WriteI64(out, options_.max_postings);
  WriteI64(out, options_.num_shards);
  WriteI64(out, next_id_.load(std::memory_order_relaxed));

  std::vector<const std::string*> keys;
  for (int64_t s = 0; s < options_.num_shards; ++s) {
    const Shard& shard = shards_[static_cast<size_t>(s)];
    WriteI64(out, static_cast<int64_t>(shard.features.size()));
    // Canonical order: identical index states serialize to identical bytes
    // regardless of hash-map iteration order.
    keys.clear();
    keys.reserve(shard.features.size());
    for (const auto& [key, pl] : shard.features) keys.push_back(&key);
    std::sort(keys.begin(), keys.end(),
              [](const std::string* a, const std::string* b) { return *a < *b; });
    for (const std::string* key : keys) {
      const PostingList& pl = shard.features.at(*key);
      WriteI64(out, static_cast<int64_t>(key->size()));
      out.write(key->data(), static_cast<std::streamsize>(key->size()));
      WriteI64(out, pl.df);
      WriteI64(out, pl.stopped ? 1 : 0);
      WriteI64(out, static_cast<int64_t>(pl.ids.size()));
      out.write(reinterpret_cast<const char*>(pl.ids.data()),
                static_cast<std::streamsize>(pl.ids.size() * sizeof(uint32_t)));
    }
  }
  if (!out.good()) return Status::IoError("index serialization failed");
  return Status::OK();
}

Status QGramIndex::Save(const std::string& path) const {
  io::AtomicFileWriter writer(path);
  EMX_RETURN_IF_ERROR(writer.status());
  EMX_RETURN_IF_ERROR(SaveTo(writer.stream()));
  return writer.Commit();
}

Result<QGramIndex> QGramIndex::LoadFrom(std::istream& in) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an EMXRIDX1 index file");
  }
  IndexOptions options;
  int64_t index_tokens = 0, next_id = 0;
  if (!ReadI64(in, &options.qgram) || !ReadI64(in, &index_tokens) ||
      !ReadI64(in, &options.max_postings) || !ReadI64(in, &options.num_shards) ||
      !ReadI64(in, &next_id)) {
    return Status::IoError("truncated index header");
  }
  options.index_tokens = index_tokens != 0;
  if (options.num_shards <= 0 || options.num_shards > (1 << 20) ||
      next_id < 0) {
    return Status::InvalidArgument("corrupt index header");
  }
  QGramIndex index(options);
  index.next_id_.store(next_id, std::memory_order_relaxed);
  for (int64_t s = 0; s < options.num_shards; ++s) {
    Shard& shard = index.shards_[static_cast<size_t>(s)];
    int64_t num_features = 0;
    if (!ReadI64(in, &num_features) || num_features < 0) {
      return Status::IoError("truncated shard header");
    }
    shard.features.reserve(static_cast<size_t>(num_features));
    for (int64_t f = 0; f < num_features; ++f) {
      int64_t key_len = 0;
      if (!ReadI64(in, &key_len) || key_len < 0 || key_len > (1 << 20)) {
        return Status::IoError("corrupt feature key length");
      }
      std::string key(static_cast<size_t>(key_len), '\0');
      in.read(key.data(), key_len);
      PostingList pl;
      int64_t stopped = 0, num_ids = 0;
      if (!ReadI64(in, &pl.df) || !ReadI64(in, &stopped) ||
          !ReadI64(in, &num_ids) || num_ids < 0 || num_ids > next_id) {
        return Status::IoError("corrupt posting list header");
      }
      pl.stopped = stopped != 0;
      if (pl.stopped) ++shard.stop_count;
      pl.ids.resize(static_cast<size_t>(num_ids));
      in.read(reinterpret_cast<char*>(pl.ids.data()),
              static_cast<std::streamsize>(pl.ids.size() * sizeof(uint32_t)));
      if (!in.good()) return Status::IoError("truncated posting list");
      shard.features.emplace(std::move(key), std::move(pl));
    }
  }
  return index;
}

Result<QGramIndex> QGramIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return LoadFrom(in);
}

}  // namespace retrieval
}  // namespace emx
