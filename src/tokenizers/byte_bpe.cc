#include "tokenizers/byte_bpe.h"

#include <cctype>
#include <fstream>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace emx {
namespace tokenizers {
namespace {

constexpr const char* kPad = "<pad>";
constexpr const char* kUnk = "<unk>";
constexpr const char* kBos = "<s>";
constexpr const char* kEos = "</s>";
constexpr const char* kMask = "<mask>";
constexpr const char* kSpaceMarker = "\xc4\xa0";  // "Ġ" (U+0120), as GPT-2

bool IsAlpha(char c) { return std::isalpha(static_cast<unsigned char>(c)); }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }
bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

/// Matches one of 's 't 're 've 'm 'll 'd at `pos`; returns its length or 0.
size_t MatchContraction(std::string_view text, size_t pos) {
  static constexpr std::string_view kContractions[] = {
      "'s", "'t", "'re", "'ve", "'m", "'ll", "'d"};
  for (std::string_view c : kContractions) {
    if (text.substr(pos, c.size()) == c) return c.size();
  }
  return 0;
}

/// Splits one pre-token (possibly starting with the space marker) into
/// byte-level symbols; the marker stays a single symbol.
std::vector<std::string> ToSymbols(const std::string& pretoken) {
  std::vector<std::string> symbols;
  size_t i = 0;
  if (StartsWith(pretoken, kSpaceMarker)) {
    symbols.push_back(kSpaceMarker);
    i = 2;
  }
  for (; i < pretoken.size(); ++i) symbols.emplace_back(1, pretoken[i]);
  return symbols;
}

void AddSpecials(Vocab* vocab, SpecialTokens* specials) {
  specials->pad = vocab->AddToken(kPad);
  specials->unk = vocab->AddToken(kUnk);
  specials->cls = vocab->AddToken(kBos);   // "<s>" plays the CLS role
  specials->sep = vocab->AddToken(kEos);   // "</s>" plays the SEP role
  specials->mask = vocab->AddToken(kMask);
}

}  // namespace

std::vector<std::string> ByteBpeTokenizer::PreTokenize(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    bool has_space = false;
    while (i < text.size() && IsSpace(text[i])) {
      has_space = true;
      ++i;
    }
    if (i >= text.size()) break;

    std::string tok = has_space || out.empty() ? kSpaceMarker : "";
    // RoBERTa/GPT-2 prefix every word-initial token with the space marker;
    // we follow that convention including for the first token.
    const size_t contraction = MatchContraction(text, i);
    if (contraction > 0) {
      tok.append(text.substr(i, contraction));
      i += contraction;
    } else if (IsAlpha(text[i])) {
      while (i < text.size() && IsAlpha(text[i])) tok.push_back(text[i++]);
    } else if (IsDigit(text[i])) {
      while (i < text.size() && IsDigit(text[i])) tok.push_back(text[i++]);
    } else {
      while (i < text.size() && !IsSpace(text[i]) && !IsAlpha(text[i]) &&
             !IsDigit(text[i]) && MatchContraction(text, i) == 0) {
        tok.push_back(text[i++]);
      }
    }
    out.push_back(std::move(tok));
  }
  return out;
}

ByteBpeTokenizer ByteBpeTokenizer::Train(const std::vector<std::string>& corpus,
                                         const ByteBpeTrainerOptions& options) {
  ByteBpeTokenizer tok;
  AddSpecials(&tok.vocab_, &tok.specials_);

  // Count pre-tokens.
  std::unordered_map<std::string, int64_t> word_freq;
  for (const auto& doc : corpus) {
    for (auto& w : PreTokenize(doc)) ++word_freq[w];
  }

  struct TrainWord {
    std::vector<std::string> symbols;
    int64_t freq;
  };
  std::vector<TrainWord> words;
  for (auto& [w, f] : word_freq) {
    if (f < options.min_frequency) continue;
    words.push_back({ToSymbols(w), f});
  }

  // Base alphabet: the space marker plus every printable ASCII byte, so any
  // ASCII input tokenizes without <unk> (byte-level coverage), plus any
  // other byte observed in the corpus.
  tok.vocab_.AddToken(kSpaceMarker);
  for (int c = 33; c <= 126; ++c) {
    tok.vocab_.AddToken(std::string(1, static_cast<char>(c)));
  }
  {
    std::map<std::string, int64_t> alphabet;
    for (const auto& w : words) {
      for (const auto& s : w.symbols) alphabet[s] += w.freq;
    }
    for (const auto& [s, f] : alphabet) tok.vocab_.AddToken(s);
  }

  int64_t next_rank = 0;
  while (tok.vocab_.size() < options.vocab_size) {
    std::map<std::pair<std::string, std::string>, int64_t> pair_freq;
    for (const auto& w : words) {
      for (size_t i = 0; i + 1 < w.symbols.size(); ++i) {
        pair_freq[{w.symbols[i], w.symbols[i + 1]}] += w.freq;
      }
    }
    if (pair_freq.empty()) break;
    auto best = pair_freq.begin();
    for (auto it = pair_freq.begin(); it != pair_freq.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    if (best->second < options.min_frequency) break;

    const auto pair = best->first;
    const std::string merged = pair.first + pair.second;
    tok.vocab_.AddToken(merged);
    tok.merge_rank_[pair] = next_rank++;

    for (auto& w : words) {
      std::vector<std::string> next;
      next.reserve(w.symbols.size());
      for (size_t i = 0; i < w.symbols.size();) {
        if (i + 1 < w.symbols.size() && w.symbols[i] == pair.first &&
            w.symbols[i + 1] == pair.second) {
          next.push_back(merged);
          i += 2;
        } else {
          next.push_back(w.symbols[i]);
          i += 1;
        }
      }
      w.symbols = std::move(next);
    }
  }
  return tok;
}

std::vector<std::string> ByteBpeTokenizer::BpeWord(
    const std::string& pretoken) const {
  std::vector<std::string> symbols = ToSymbols(pretoken);
  while (symbols.size() > 1) {
    int64_t best_rank = -1;
    size_t best_pos = 0;
    for (size_t i = 0; i + 1 < symbols.size(); ++i) {
      auto it = merge_rank_.find({symbols[i], symbols[i + 1]});
      if (it != merge_rank_.end() &&
          (best_rank < 0 || it->second < best_rank)) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_rank < 0) break;
    symbols[best_pos] += symbols[best_pos + 1];
    symbols.erase(symbols.begin() + static_cast<int64_t>(best_pos) + 1);
  }
  return symbols;
}

std::vector<std::string> ByteBpeTokenizer::Tokenize(
    std::string_view text) const {
  std::vector<std::string> out;
  for (const auto& pre : PreTokenize(text)) {
    for (auto& s : BpeWord(pre)) out.push_back(std::move(s));
  }
  return out;
}

std::string ByteBpeTokenizer::Decode(const std::vector<int64_t>& ids) const {
  std::string joined;
  for (int64_t id : ids) {
    if (id == specials_.pad || id == specials_.cls || id == specials_.sep ||
        id == specials_.mask) {
      continue;
    }
    joined += vocab_.IdToToken(id);
  }
  // Replace space markers with spaces.
  std::string out;
  for (size_t i = 0; i < joined.size();) {
    if (joined.compare(i, 2, kSpaceMarker) == 0) {
      if (!out.empty()) out.push_back(' ');
      i += 2;
    } else {
      out.push_back(joined[i]);
      ++i;
    }
  }
  return out;
}

Status ByteBpeTokenizer::Save(const std::string& vocab_path,
                              const std::string& merges_path) const {
  EMX_RETURN_IF_ERROR(vocab_.Save(vocab_path));
  std::ofstream out(merges_path);
  if (!out) return Status::IoError("cannot open " + merges_path);
  // One merge per line in rank order: "<left>\t<right>".
  std::vector<std::pair<std::string, std::string>> ordered(merge_rank_.size());
  for (const auto& [pair, rank] : merge_rank_) {
    ordered[static_cast<size_t>(rank)] = pair;
  }
  for (const auto& [l, r] : ordered) out << l << "\t" << r << "\n";
  if (!out) return Status::IoError("write failed for " + merges_path);
  return Status::OK();
}

Result<ByteBpeTokenizer> ByteBpeTokenizer::Load(const std::string& vocab_path,
                                                const std::string& merges_path) {
  EMX_ASSIGN_OR_RETURN(Vocab vocab, Vocab::Load(vocab_path));
  ByteBpeTokenizer tok;
  tok.vocab_ = std::move(vocab);
  const char* required[] = {kPad, kUnk, kBos, kEos, kMask};
  for (const char* t : required) {
    if (!tok.vocab_.Contains(t)) {
      return Status::InvalidArgument(std::string("vocab missing ") + t);
    }
  }
  tok.specials_.pad = tok.vocab_.TokenToId(kPad);
  tok.specials_.unk = tok.vocab_.TokenToId(kUnk);
  tok.specials_.cls = tok.vocab_.TokenToId(kBos);
  tok.specials_.sep = tok.vocab_.TokenToId(kEos);
  tok.specials_.mask = tok.vocab_.TokenToId(kMask);

  std::ifstream in(merges_path);
  if (!in) return Status::IoError("cannot open " + merges_path);
  std::string line;
  int64_t rank = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument("bad merges line: " + line);
    }
    tok.merge_rank_[{line.substr(0, tab), line.substr(tab + 1)}] = rank++;
  }
  return tok;
}

}  // namespace tokenizers
}  // namespace emx
