#include "tokenizers/unigram.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>

#include "util/logging.h"
#include "util/string_util.h"

namespace emx {
namespace tokenizers {

const char* const kUnigramSpaceMarker = "\xe2\x96\x81";  // "▁" U+2581

namespace {

constexpr const char* kPad = "<pad>";
constexpr const char* kUnk = "<unk>";
constexpr const char* kCls = "<cls>";
constexpr const char* kSep = "<sep>";
constexpr const char* kMask = "<mask>";
constexpr float kUnkLogProb = -20.0f;

/// A word as atoms: atom 0 is the whitespace marker, the rest are single
/// bytes. Treating the (multi-byte UTF-8) marker atomically keeps candidate
/// pieces valid strings.
std::vector<std::string> WordToAtoms(const std::string& word) {
  std::vector<std::string> atoms;
  atoms.push_back(kUnigramSpaceMarker);
  for (char c : word) atoms.emplace_back(1, c);
  return atoms;
}

std::string JoinAtoms(const std::vector<std::string>& atoms, size_t begin,
                      size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) out += atoms[i];
  return out;
}

struct TrainWord {
  std::vector<std::string> atoms;
  int64_t freq;
};

/// Viterbi segmentation of `atoms` under `log_prob`; pieces span at most
/// `max_atoms` atoms. Unknown single atoms are emitted verbatim with the
/// unk penalty so segmentation never fails.
std::vector<std::string> ViterbiSegment(
    const std::vector<std::string>& atoms,
    const std::unordered_map<std::string, float>& log_prob,
    int64_t max_atoms) {
  const size_t n = atoms.size();
  std::vector<float> best(n + 1, -1e30f);
  std::vector<size_t> back(n + 1, 0);
  std::vector<std::string> piece_at(n + 1);
  best[0] = 0.0f;
  for (size_t i = 1; i <= n; ++i) {
    const size_t j_min = i > static_cast<size_t>(max_atoms)
                             ? i - static_cast<size_t>(max_atoms)
                             : 0;
    for (size_t j = j_min; j < i; ++j) {
      if (best[j] <= -1e29f) continue;
      std::string piece = JoinAtoms(atoms, j, i);
      float lp;
      auto it = log_prob.find(piece);
      if (it != log_prob.end()) {
        lp = it->second;
      } else if (i - j == 1) {
        lp = kUnkLogProb;  // single-atom fallback
      } else {
        continue;
      }
      if (best[j] + lp > best[i]) {
        best[i] = best[j] + lp;
        back[i] = j;
        piece_at[i] = std::move(piece);
      }
    }
  }
  std::vector<std::string> pieces;
  for (size_t i = n; i > 0; i = back[i]) pieces.push_back(piece_at[i]);
  std::reverse(pieces.begin(), pieces.end());
  return pieces;
}

}  // namespace

UnigramTokenizer UnigramTokenizer::Train(const std::vector<std::string>& corpus,
                                         const UnigramTrainerOptions& options) {
  // 1. Collect marker-prefixed words.
  std::map<std::string, int64_t> word_freq;
  for (const auto& doc : corpus) {
    for (auto& w : SplitWhitespace(doc)) ++word_freq[ToLower(w)];
  }
  std::vector<TrainWord> words;
  words.reserve(word_freq.size());
  for (const auto& [w, f] : word_freq) words.push_back({WordToAtoms(w), f});

  // 2. Seed candidates: frequent substrings scored by freq * length.
  std::unordered_map<std::string, int64_t> candidate_count;
  for (const auto& w : words) {
    const size_t n = w.atoms.size();
    for (size_t i = 0; i < n; ++i) {
      std::string piece;
      for (size_t j = i;
           j < std::min(n, i + static_cast<size_t>(options.max_piece_length));
           ++j) {
        piece += w.atoms[j];
        candidate_count[piece] += w.freq;
      }
    }
  }

  // Mandatory single atoms so every word stays segmentable.
  std::unordered_map<std::string, bool> is_atomic;
  for (const auto& w : words) {
    for (const auto& a : w.atoms) is_atomic[a] = true;
  }

  const int64_t target_pieces = options.vocab_size - 5;  // minus specials
  const int64_t seed_size =
      std::max<int64_t>(target_pieces, target_pieces * options.seed_multiplier);

  std::vector<std::pair<std::string, int64_t>> ranked(candidate_count.begin(),
                                                      candidate_count.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    const int64_t sa = a.second * static_cast<int64_t>(a.first.size());
    const int64_t sb = b.second * static_cast<int64_t>(b.first.size());
    if (sa != sb) return sa > sb;
    return a.first < b.first;
  });

  std::unordered_map<std::string, float> log_prob;
  double total = 0;
  for (const auto& [piece, count] : ranked) {
    if (static_cast<int64_t>(log_prob.size()) >= seed_size &&
        !is_atomic.count(piece)) {
      continue;
    }
    log_prob[piece] = static_cast<float>(count);
    total += count;
  }
  for (auto& [piece, p] : log_prob) {
    p = std::log(p / static_cast<float>(total));
  }

  // 3. Hard-EM with periodic pruning down to the target size.
  auto run_em = [&](int64_t iterations) {
    for (int64_t it = 0; it < iterations; ++it) {
      std::unordered_map<std::string, double> usage;
      double usage_total = 0;
      for (const auto& w : words) {
        auto pieces = ViterbiSegment(w.atoms, log_prob, options.max_piece_length);
        for (const auto& p : pieces) {
          usage[p] += static_cast<double>(w.freq);
          usage_total += static_cast<double>(w.freq);
        }
      }
      for (auto& [piece, lp] : log_prob) {
        auto u = usage.find(piece);
        const double prob =
            (u == usage.end() ? 0.1 : u->second + 0.1) / (usage_total + 1.0);
        lp = static_cast<float>(std::log(prob));
      }
    }
  };

  while (static_cast<int64_t>(log_prob.size()) > target_pieces) {
    run_em(options.em_iterations);
    // Prune the lowest-probability non-atomic pieces.
    std::vector<std::pair<float, std::string>> prunable;
    for (const auto& [piece, lp] : log_prob) {
      if (!is_atomic.count(piece)) prunable.push_back({lp, piece});
    }
    const int64_t excess = static_cast<int64_t>(log_prob.size()) - target_pieces;
    int64_t to_prune = std::min<int64_t>(
        excess, std::max<int64_t>(
                    1, static_cast<int64_t>(static_cast<double>(log_prob.size()) *
                                            options.prune_fraction)));
    if (prunable.empty()) break;
    to_prune = std::min<int64_t>(to_prune, static_cast<int64_t>(prunable.size()));
    std::nth_element(prunable.begin(), prunable.begin() + to_prune - 1,
                     prunable.end());
    for (int64_t i = 0; i < to_prune; ++i) {
      log_prob.erase(prunable[static_cast<size_t>(i)].second);
    }
  }
  run_em(1);

  // 4. Finalize vocabulary: specials then pieces by descending probability.
  UnigramTokenizer tok;
  tok.specials_.pad = tok.vocab_.AddToken(kPad);
  tok.specials_.unk = tok.vocab_.AddToken(kUnk);
  tok.specials_.cls = tok.vocab_.AddToken(kCls);
  tok.specials_.sep = tok.vocab_.AddToken(kSep);
  tok.specials_.mask = tok.vocab_.AddToken(kMask);
  std::vector<std::pair<float, std::string>> final_pieces;
  for (const auto& [piece, lp] : log_prob) final_pieces.push_back({lp, piece});
  std::sort(final_pieces.begin(), final_pieces.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (const auto& [lp, piece] : final_pieces) {
    tok.vocab_.AddToken(piece);
    tok.log_prob_[piece] = lp;
  }
  return tok;
}

std::vector<std::string> UnigramTokenizer::SegmentWord(
    const std::string& word) const {
  std::vector<std::string> atoms;
  if (StartsWith(word, kUnigramSpaceMarker)) {
    atoms.push_back(kUnigramSpaceMarker);
    for (size_t i = 3; i < word.size(); ++i) atoms.emplace_back(1, word[i]);
  } else {
    for (char c : word) atoms.emplace_back(1, c);
  }
  return ViterbiSegment(atoms, log_prob_, /*max_atoms=*/12);
}

std::vector<std::string> UnigramTokenizer::Tokenize(
    std::string_view text) const {
  std::vector<std::string> out;
  for (const auto& w : SplitWhitespace(text)) {
    std::string marked = std::string(kUnigramSpaceMarker) + ToLower(w);
    for (auto& p : SegmentWord(marked)) out.push_back(std::move(p));
  }
  return out;
}

float UnigramTokenizer::PieceLogProb(const std::string& piece) const {
  auto it = log_prob_.find(piece);
  return it == log_prob_.end() ? kUnkLogProb : it->second;
}

std::string UnigramTokenizer::Decode(const std::vector<int64_t>& ids) const {
  std::string joined;
  for (int64_t id : ids) {
    if (id == specials_.pad || id == specials_.cls || id == specials_.sep ||
        id == specials_.mask || id == specials_.unk) {
      continue;
    }
    joined += vocab_.IdToToken(id);
  }
  std::string out;
  for (size_t i = 0; i < joined.size();) {
    if (joined.compare(i, 3, kUnigramSpaceMarker) == 0) {
      if (!out.empty()) out.push_back(' ');
      i += 3;
    } else {
      out.push_back(joined[i]);
      ++i;
    }
  }
  return out;
}

Status UnigramTokenizer::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  for (int64_t id = 0; id < vocab_.size(); ++id) {
    const std::string& tok = vocab_.IdToToken(id);
    auto it = log_prob_.find(tok);
    const float lp = it == log_prob_.end() ? 0.0f : it->second;
    out << tok << "\t" << lp << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<UnigramTokenizer> UnigramTokenizer::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  UnigramTokenizer tok;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const size_t tab = line.rfind('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument("bad unigram vocab line: " + line);
    }
    const std::string piece = line.substr(0, tab);
    float lp = 0;
    if (!ParseFloat(line.substr(tab + 1), &lp)) {
      return Status::InvalidArgument("bad log prob in line: " + line);
    }
    const int64_t id = tok.vocab_.AddToken(piece);
    if (id >= 5) tok.log_prob_[piece] = lp;
  }
  if (tok.vocab_.size() < 6) {
    return Status::InvalidArgument("unigram vocab too small: " + path);
  }
  tok.specials_.pad = tok.vocab_.TokenToId(kPad);
  tok.specials_.unk = tok.vocab_.TokenToId(kUnk);
  tok.specials_.cls = tok.vocab_.TokenToId(kCls);
  tok.specials_.sep = tok.vocab_.TokenToId(kSep);
  tok.specials_.mask = tok.vocab_.TokenToId(kMask);
  for (int64_t s : {tok.specials_.pad, tok.specials_.unk, tok.specials_.cls,
                    tok.specials_.sep, tok.specials_.mask}) {
    if (s < 0) return Status::InvalidArgument("missing special token in " + path);
  }
  return tok;
}

}  // namespace tokenizers
}  // namespace emx
