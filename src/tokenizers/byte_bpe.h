#ifndef EMX_TOKENIZERS_BYTE_BPE_H_
#define EMX_TOKENIZERS_BYTE_BPE_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tokenizers/tokenizer.h"
#include "util/status.h"

namespace emx {
namespace tokenizers {

/// Options for training a byte-level BPE vocabulary.
struct ByteBpeTrainerOptions {
  int64_t vocab_size = 4000;
  int64_t min_frequency = 2;
};

/// Byte-level byte-pair-encoding tokenizer as used by RoBERTa (and GPT-2).
///
/// Pre-tokenization follows the paper's description for RoBERTa: the input
/// is split on whitespace, punctuation, and the special English
/// abbreviations ('s|'t|'re|'ve|'m|'ll|'d), with the preceding space kept
/// attached to the following token and rendered as the marker "Ġ". Each
/// pre-token is then decomposed into byte symbols and merged bottom-up by
/// learned merge ranks.
class ByteBpeTokenizer : public Tokenizer {
 public:
  /// Learns merges by repeatedly joining the most frequent adjacent symbol
  /// pair until the vocabulary reaches `options.vocab_size`.
  static ByteBpeTokenizer Train(const std::vector<std::string>& corpus,
                                const ByteBpeTrainerOptions& options);

  /// Persists the vocabulary and the ordered merge list.
  Status Save(const std::string& vocab_path,
              const std::string& merges_path) const;

  /// Restores a tokenizer saved with Save().
  static Result<ByteBpeTokenizer> Load(const std::string& vocab_path,
                                       const std::string& merges_path);

  std::vector<std::string> Tokenize(std::string_view text) const override;

  std::string Decode(const std::vector<int64_t>& ids) const override;

  /// GPT-2-style pre-tokenization (exposed for tests): returns raw
  /// pre-tokens where a leading space is encoded as "Ġ".
  static std::vector<std::string> PreTokenize(std::string_view text);

  /// Applies the learned merges to one pre-token.
  std::vector<std::string> BpeWord(const std::string& pretoken) const;

  int64_t num_merges() const { return static_cast<int64_t>(merge_rank_.size()); }

 private:
  ByteBpeTokenizer() = default;

  /// Pair of adjacent symbols -> merge priority (lower merges first).
  std::map<std::pair<std::string, std::string>, int64_t> merge_rank_;
};

}  // namespace tokenizers
}  // namespace emx

#endif  // EMX_TOKENIZERS_BYTE_BPE_H_
