#include "tokenizers/tokenizer.h"

#include "util/logging.h"

namespace emx {
namespace tokenizers {

std::vector<int64_t> Tokenizer::Encode(std::string_view text) const {
  std::vector<int64_t> ids;
  for (const auto& tok : Tokenize(text)) {
    const int64_t id = vocab_.TokenToId(tok);
    ids.push_back(id >= 0 ? id : specials_.unk);
  }
  return ids;
}

void TruncatePair(std::vector<int64_t>* a, std::vector<int64_t>* b,
                  int64_t budget) {
  EMX_CHECK_GE(budget, 0);
  while (static_cast<int64_t>(a->size() + b->size()) > budget) {
    if (a->size() >= b->size() && !a->empty()) {
      a->pop_back();
    } else if (!b->empty()) {
      b->pop_back();
    } else {
      a->pop_back();
    }
  }
}

EncodedPair Tokenizer::EncodePair(std::string_view text_a,
                                  std::string_view text_b,
                                  int64_t max_len) const {
  EMX_CHECK_GE(max_len, 4) << "max_len must fit [CLS] a [SEP] b [SEP]";
  std::vector<int64_t> a = Encode(text_a);
  std::vector<int64_t> b = Encode(text_b);
  TruncatePair(&a, &b, max_len - 3);

  EncodedPair out;
  out.ids.reserve(static_cast<size_t>(max_len));
  out.ids.push_back(specials_.cls);
  out.segment_ids.push_back(0);
  for (int64_t id : a) {
    out.ids.push_back(id);
    out.segment_ids.push_back(0);
  }
  out.ids.push_back(specials_.sep);
  out.segment_ids.push_back(0);
  for (int64_t id : b) {
    out.ids.push_back(id);
    out.segment_ids.push_back(1);
  }
  out.ids.push_back(specials_.sep);
  out.segment_ids.push_back(1);

  out.attention_mask.assign(out.ids.size(), 0.0f);
  while (static_cast<int64_t>(out.ids.size()) < max_len) {
    out.ids.push_back(specials_.pad);
    out.segment_ids.push_back(0);
    out.attention_mask.push_back(1.0f);
  }
  return out;
}

EncodedPair Tokenizer::EncodeSingle(std::string_view text,
                                    int64_t max_len) const {
  EMX_CHECK_GE(max_len, 2);
  std::vector<int64_t> a = Encode(text);
  if (static_cast<int64_t>(a.size()) > max_len - 2) {
    a.resize(static_cast<size_t>(max_len - 2));
  }
  EncodedPair out;
  out.ids.push_back(specials_.cls);
  for (int64_t id : a) out.ids.push_back(id);
  out.ids.push_back(specials_.sep);
  out.segment_ids.assign(out.ids.size(), 0);
  out.attention_mask.assign(out.ids.size(), 0.0f);
  while (static_cast<int64_t>(out.ids.size()) < max_len) {
    out.ids.push_back(specials_.pad);
    out.segment_ids.push_back(0);
    out.attention_mask.push_back(1.0f);
  }
  return out;
}

}  // namespace tokenizers
}  // namespace emx
