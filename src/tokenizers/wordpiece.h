#ifndef EMX_TOKENIZERS_WORDPIECE_H_
#define EMX_TOKENIZERS_WORDPIECE_H_

#include <string>
#include <string_view>
#include <vector>

#include "tokenizers/tokenizer.h"
#include "util/status.h"

namespace emx {
namespace tokenizers {

/// Options for training a WordPiece vocabulary.
struct WordPieceTrainerOptions {
  int64_t vocab_size = 4000;
  /// Words seen fewer times than this are ignored during training.
  int64_t min_frequency = 2;
  /// Maximum input word length considered (longer words become [UNK]).
  int64_t max_word_length = 48;
  bool lower_case = true;
};

/// WordPiece tokenizer as used by BERT and DistilBERT: text is first split
/// by whitespace and punctuation (BasicTokenize), then each word is broken
/// into subwords by greedy longest-match-first against the vocabulary, with
/// non-initial pieces carrying the "##" continuation prefix.
class WordPieceTokenizer : public Tokenizer {
 public:
  /// Trains a vocabulary from `corpus` (one document per string) using the
  /// WordPiece objective: repeatedly merge the pair with the highest
  /// score = freq(pair) / (freq(left) * freq(right)).
  static WordPieceTokenizer Train(const std::vector<std::string>& corpus,
                                  const WordPieceTrainerOptions& options);

  /// Builds a tokenizer around an existing vocabulary (must already
  /// contain the special tokens [PAD], [UNK], [CLS], [SEP], [MASK] in the
  /// first five slots).
  static Result<WordPieceTokenizer> FromVocab(Vocab vocab, bool lower_case);

  /// Loads a vocabulary saved with vocab().Save().
  static Result<WordPieceTokenizer> Load(const std::string& path,
                                         bool lower_case = true);

  std::vector<std::string> Tokenize(std::string_view text) const override;

  std::string Decode(const std::vector<int64_t>& ids) const override;

  /// Tokenizes one whitespace/punct-free word into pieces; returns {"[UNK]"}
  /// when no segmentation exists.
  std::vector<std::string> TokenizeWord(const std::string& word) const;

 private:
  WordPieceTokenizer() = default;

  bool lower_case_ = true;
  int64_t max_word_length_ = 48;
};

}  // namespace tokenizers
}  // namespace emx

#endif  // EMX_TOKENIZERS_WORDPIECE_H_
