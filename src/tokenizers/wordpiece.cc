#include "tokenizers/wordpiece.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace emx {
namespace tokenizers {
namespace {

constexpr const char* kPad = "[PAD]";
constexpr const char* kUnk = "[UNK]";
constexpr const char* kCls = "[CLS]";
constexpr const char* kSep = "[SEP]";
constexpr const char* kMask = "[MASK]";
constexpr const char* kContinuation = "##";

void AddSpecials(Vocab* vocab, SpecialTokens* specials) {
  specials->pad = vocab->AddToken(kPad);
  specials->unk = vocab->AddToken(kUnk);
  specials->cls = vocab->AddToken(kCls);
  specials->sep = vocab->AddToken(kSep);
  specials->mask = vocab->AddToken(kMask);
}

/// A word as a sequence of current pieces plus its corpus frequency.
struct TrainWord {
  std::vector<std::string> pieces;
  int64_t freq;
};

std::string PieceAt(const TrainWord& w, size_t i) { return w.pieces[i]; }

}  // namespace

WordPieceTokenizer WordPieceTokenizer::Train(
    const std::vector<std::string>& corpus,
    const WordPieceTrainerOptions& options) {
  // 1. Count words.
  std::unordered_map<std::string, int64_t> word_freq;
  for (const auto& doc : corpus) {
    for (auto& w : BasicTokenize(doc, options.lower_case)) {
      if (static_cast<int64_t>(w.size()) <= options.max_word_length) {
        ++word_freq[w];
      }
    }
  }

  // 2. Initialize each word as characters; non-initial chars get "##".
  std::vector<TrainWord> words;
  words.reserve(word_freq.size());
  for (auto& [w, f] : word_freq) {
    if (f < options.min_frequency) continue;
    TrainWord tw;
    tw.freq = f;
    for (size_t i = 0; i < w.size(); ++i) {
      std::string piece = i == 0 ? std::string(1, w[i])
                                 : std::string(kContinuation) + w[i];
      tw.pieces.push_back(std::move(piece));
    }
    words.push_back(std::move(tw));
  }

  WordPieceTokenizer tok;
  tok.lower_case_ = options.lower_case;
  tok.max_word_length_ = options.max_word_length;
  AddSpecials(&tok.vocab_, &tok.specials_);

  // Alphabet: every initial piece present in the data.
  {
    std::map<std::string, int64_t> alphabet;
    for (const auto& w : words) {
      for (const auto& p : w.pieces) alphabet[p] += w.freq;
    }
    for (const auto& [p, f] : alphabet) tok.vocab_.AddToken(p);
  }

  // 3. Merge loop with the WordPiece score
  //    score(a,b) = freq(ab) / (freq(a) * freq(b)).
  while (tok.vocab_.size() < options.vocab_size) {
    std::unordered_map<std::string, int64_t> piece_freq;
    std::map<std::pair<std::string, std::string>, int64_t> pair_freq;
    for (const auto& w : words) {
      for (size_t i = 0; i < w.pieces.size(); ++i) {
        piece_freq[PieceAt(w, i)] += w.freq;
        if (i + 1 < w.pieces.size()) {
          pair_freq[{PieceAt(w, i), PieceAt(w, i + 1)}] += w.freq;
        }
      }
    }
    if (pair_freq.empty()) break;

    double best_score = -1.0;
    std::pair<std::string, std::string> best_pair;
    for (const auto& [pr, f] : pair_freq) {
      const double denom = static_cast<double>(piece_freq[pr.first]) *
                           static_cast<double>(piece_freq[pr.second]);
      const double score = denom > 0 ? static_cast<double>(f) / denom : 0.0;
      if (score > best_score) {
        best_score = score;
        best_pair = pr;
      }
    }
    if (best_score <= 0.0) break;

    // The merged token drops the inner "##".
    std::string merged = best_pair.first;
    std::string right = best_pair.second;
    if (StartsWith(right, kContinuation)) right = right.substr(2);
    merged += right;
    tok.vocab_.AddToken(merged);

    // Apply the merge to all words.
    for (auto& w : words) {
      std::vector<std::string> next;
      next.reserve(w.pieces.size());
      for (size_t i = 0; i < w.pieces.size();) {
        if (i + 1 < w.pieces.size() && w.pieces[i] == best_pair.first &&
            w.pieces[i + 1] == best_pair.second) {
          next.push_back(merged);
          i += 2;
        } else {
          next.push_back(w.pieces[i]);
          i += 1;
        }
      }
      w.pieces = std::move(next);
    }
  }
  return tok;
}

Result<WordPieceTokenizer> WordPieceTokenizer::FromVocab(Vocab vocab,
                                                         bool lower_case) {
  WordPieceTokenizer tok;
  tok.lower_case_ = lower_case;
  tok.vocab_ = std::move(vocab);
  const char* required[] = {kPad, kUnk, kCls, kSep, kMask};
  for (const char* t : required) {
    if (!tok.vocab_.Contains(t)) {
      return Status::InvalidArgument(std::string("vocab missing ") + t);
    }
  }
  tok.specials_.pad = tok.vocab_.TokenToId(kPad);
  tok.specials_.unk = tok.vocab_.TokenToId(kUnk);
  tok.specials_.cls = tok.vocab_.TokenToId(kCls);
  tok.specials_.sep = tok.vocab_.TokenToId(kSep);
  tok.specials_.mask = tok.vocab_.TokenToId(kMask);
  return tok;
}

Result<WordPieceTokenizer> WordPieceTokenizer::Load(const std::string& path,
                                                    bool lower_case) {
  EMX_ASSIGN_OR_RETURN(Vocab vocab, Vocab::Load(path));
  return FromVocab(std::move(vocab), lower_case);
}

std::vector<std::string> WordPieceTokenizer::TokenizeWord(
    const std::string& word) const {
  if (static_cast<int64_t>(word.size()) > max_word_length_) return {kUnk};
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start < word.size()) {
    // Greedy longest-match-first.
    size_t end = word.size();
    std::string match;
    while (end > start) {
      std::string candidate = word.substr(start, end - start);
      if (start > 0) candidate = std::string(kContinuation) + candidate;
      if (vocab_.Contains(candidate)) {
        match = std::move(candidate);
        break;
      }
      --end;
    }
    if (match.empty()) return {kUnk};  // unsegmentable word
    pieces.push_back(std::move(match));
    start = end;
  }
  return pieces;
}

std::vector<std::string> WordPieceTokenizer::Tokenize(
    std::string_view text) const {
  std::vector<std::string> out;
  for (const auto& word : BasicTokenize(text, lower_case_)) {
    for (auto& piece : TokenizeWord(word)) out.push_back(std::move(piece));
  }
  return out;
}

std::string WordPieceTokenizer::Decode(const std::vector<int64_t>& ids) const {
  std::string out;
  for (int64_t id : ids) {
    if (id == specials_.pad || id == specials_.cls || id == specials_.sep) {
      continue;
    }
    const std::string& tok = vocab_.IdToToken(id);
    if (StartsWith(tok, kContinuation)) {
      out += tok.substr(2);
    } else {
      if (!out.empty()) out += " ";
      out += tok;
    }
  }
  return out;
}

}  // namespace tokenizers
}  // namespace emx
