#include "tokenizers/vocab.h"

#include <fstream>

#include "util/logging.h"

namespace emx {
namespace tokenizers {

int64_t Vocab::AddToken(const std::string& token) {
  auto it = token_to_id_.find(token);
  if (it != token_to_id_.end()) return it->second;
  const int64_t id = static_cast<int64_t>(tokens_.size());
  tokens_.push_back(token);
  token_to_id_.emplace(token, id);
  return id;
}

int64_t Vocab::TokenToId(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? -1 : it->second;
}

const std::string& Vocab::IdToToken(int64_t id) const {
  EMX_CHECK(id >= 0 && id < size()) << "vocab id " << id << " out of range";
  return tokens_[static_cast<size_t>(id)];
}

Status Vocab::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const auto& t : tokens_) out << t << "\n";
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<Vocab> Vocab::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  Vocab v;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    v.AddToken(line);
  }
  if (v.size() == 0) return Status::InvalidArgument("empty vocab file " + path);
  return v;
}

}  // namespace tokenizers
}  // namespace emx
