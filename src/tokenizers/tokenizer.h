#ifndef EMX_TOKENIZERS_TOKENIZER_H_
#define EMX_TOKENIZERS_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tokenizers/vocab.h"

namespace emx {
namespace tokenizers {

/// A tokenized entity pair ready to feed a transformer, following the
/// paper's Figure 9: [CLS] A1..AN [SEP] B1..BM [SEP], padded to a fixed
/// length, with segment ids distinguishing entity A (0) from entity B (1)
/// and an attention mask marking padding (1 = padded/blocked).
struct EncodedPair {
  std::vector<int64_t> ids;
  std::vector<int64_t> segment_ids;
  std::vector<float> attention_mask;  // 1 where padded
};

/// Interface shared by the three subword tokenizers (WordPiece for
/// BERT/DistilBERT, byte-level BPE for RoBERTa, SentencePiece-unigram for
/// XLNet).
class Tokenizer {
 public:
  virtual ~Tokenizer() = default;

  /// Splits text into subword token strings (no special symbols).
  virtual std::vector<std::string> Tokenize(std::string_view text) const = 0;

  /// Tokenize + vocabulary lookup (unknown pieces map to unk).
  std::vector<int64_t> Encode(std::string_view text) const;

  /// Reassembles a best-effort string from token ids (for debugging).
  virtual std::string Decode(const std::vector<int64_t>& ids) const = 0;

  /// Builds the [CLS] a [SEP] b [SEP] encoding of Figure 9, truncating the
  /// longer entity first so both fit in max_len, then padding.
  EncodedPair EncodePair(std::string_view text_a, std::string_view text_b,
                         int64_t max_len) const;

  /// Builds a single-segment encoding [CLS] a [SEP], padded to max_len.
  EncodedPair EncodeSingle(std::string_view text, int64_t max_len) const;

  const Vocab& vocab() const { return vocab_; }
  const SpecialTokens& specials() const { return specials_; }
  int64_t vocab_size() const { return vocab_.size(); }

 protected:
  Vocab vocab_;
  SpecialTokens specials_;
};

/// Truncates two token-id sequences in place so that
/// a.size() + b.size() <= budget, removing from the longer one first
/// (the "longest-first" strategy used for sequence-pair tasks).
void TruncatePair(std::vector<int64_t>* a, std::vector<int64_t>* b,
                  int64_t budget);

}  // namespace tokenizers
}  // namespace emx

#endif  // EMX_TOKENIZERS_TOKENIZER_H_
