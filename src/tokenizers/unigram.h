#ifndef EMX_TOKENIZERS_UNIGRAM_H_
#define EMX_TOKENIZERS_UNIGRAM_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tokenizers/tokenizer.h"
#include "util/status.h"

namespace emx {
namespace tokenizers {

/// Options for training a unigram-LM (SentencePiece) vocabulary.
struct UnigramTrainerOptions {
  int64_t vocab_size = 4000;
  /// Maximum candidate piece length in bytes.
  int64_t max_piece_length = 10;
  /// Candidate pool size relative to the final vocabulary.
  int64_t seed_multiplier = 4;
  /// Hard-EM refinement iterations.
  int64_t em_iterations = 4;
  /// Fraction of the candidate pool pruned per shrink round.
  double prune_fraction = 0.25;
};

/// SentencePiece-style unigram language-model tokenizer as used by XLNet.
///
/// Unlike WordPiece/BPE there is no pre-tokenization into words visible to
/// the model: the raw text is normalized (whitespace runs collapsed and
/// replaced by the "▁" marker attached to the following word) and segmented
/// into the most probable sequence of pieces under a unigram LM via Viterbi
/// decoding. Training uses hard-EM: seed a large candidate pool from
/// frequent substrings, alternately re-segment and re-estimate piece
/// probabilities, and prune low-utility pieces until the target size.
class UnigramTokenizer : public Tokenizer {
 public:
  static UnigramTokenizer Train(const std::vector<std::string>& corpus,
                                const UnigramTrainerOptions& options);

  /// Persists the vocabulary together with each piece's log probability.
  Status Save(const std::string& path) const;
  static Result<UnigramTokenizer> Load(const std::string& path);

  std::vector<std::string> Tokenize(std::string_view text) const override;

  std::string Decode(const std::vector<int64_t>& ids) const override;

  /// Viterbi-segments one marker-prefixed word; exposed for tests.
  std::vector<std::string> SegmentWord(const std::string& word) const;

  /// Log probability of a piece (large negative for unknown).
  float PieceLogProb(const std::string& piece) const;

 private:
  UnigramTokenizer() = default;

  std::unordered_map<std::string, float> log_prob_;
};

/// The SentencePiece whitespace marker ("▁", U+2581).
extern const char* const kUnigramSpaceMarker;

}  // namespace tokenizers
}  // namespace emx

#endif  // EMX_TOKENIZERS_UNIGRAM_H_
