#ifndef EMX_TOKENIZERS_VOCAB_H_
#define EMX_TOKENIZERS_VOCAB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace emx {
namespace tokenizers {

/// A bidirectional token <-> id mapping. Ids are dense and assigned in
/// insertion order, so special tokens added first get the lowest ids.
class Vocab {
 public:
  Vocab() = default;

  /// Adds a token if absent; returns its id either way.
  int64_t AddToken(const std::string& token);

  /// Id for `token`, or -1 if absent.
  int64_t TokenToId(const std::string& token) const;

  /// Token string for `id`. Pre-condition: 0 <= id < size().
  const std::string& IdToToken(int64_t id) const;

  bool Contains(const std::string& token) const {
    return TokenToId(token) >= 0;
  }

  int64_t size() const { return static_cast<int64_t>(tokens_.size()); }

  const std::vector<std::string>& tokens() const { return tokens_; }

  /// Writes one token per line.
  Status Save(const std::string& path) const;

  /// Reads a vocab written by Save.
  static Result<Vocab> Load(const std::string& path);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int64_t> token_to_id_;
};

/// Ids of the special tokens every tokenizer in this library exposes.
/// Names differ per tokenizer family (e.g. "[CLS]" vs "<s>"), ids are
/// whatever the vocabulary assigned.
struct SpecialTokens {
  int64_t pad = 0;
  int64_t unk = 1;
  int64_t cls = 2;   // sequence-classification symbol ("<s>" for RoBERTa)
  int64_t sep = 3;   // separator ("</s>" for RoBERTa)
  int64_t mask = 4;  // MLM mask symbol
};

}  // namespace tokenizers
}  // namespace emx

#endif  // EMX_TOKENIZERS_VOCAB_H_
