#ifndef EMX_BASELINES_DEEPMATCHER_H_
#define EMX_BASELINES_DEEPMATCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/word2vec.h"
#include "data/record.h"
#include "eval/metrics.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/rnn.h"
#include "tensor/variable.h"

namespace emx {
namespace baselines {

/// Options for the DeepMatcher-style baseline.
struct DeepMatcherOptions {
  int64_t hidden = 48;
  int64_t max_tokens = 32;   // per entity
  int64_t epochs = 10;
  int64_t batch_size = 16;
  float learning_rate = 1e-3f;
  float dropout = 0.1f;
  /// DeepMatcher keeps its pre-trained word vectors frozen (fastText in the
  /// original); training them on a few hundred pairs overfits.
  bool trainable_embeddings = false;
  uint64_t seed = 19;
};

/// The paper's "DeepM" baseline: DeepMatcher's hybrid model (Mudgal et al.,
/// SIGMOD 2018) — pre-trained word embeddings, a bidirectional GRU
/// summarizer per entity, decomposable soft-alignment attention between the
/// two entities, and a two-layer classifier over the compared summaries.
/// Unlike the transformers it has no language-model pre-training: only the
/// word embeddings are pre-trained (word2vec here, fastText originally),
/// and the network itself trains from scratch on each EM dataset.
class DeepMatcherModel : public nn::Module {
 public:
  DeepMatcherModel(const Word2Vec& word2vec, DeepMatcherOptions options);

  /// Match logits [B, 2] for token-id batches of the two entities
  /// (each flattened [B, max_tokens], padded with Word2Vec::kPadId).
  Variable Logits(const std::vector<int64_t>& ids_a,
                  const std::vector<int64_t>& ids_b, int64_t batch_size,
                  bool train, Rng* rng);

  /// Trains on the dataset's train split (serialized entity text, word
  /// tokens). Returns the loss of the final epoch.
  float Fit(const data::EmDataset& dataset);

  /// Predictions for an arbitrary pair list.
  std::vector<int64_t> Predict(const data::EmDataset& dataset,
                               const std::vector<data::RecordPair>& pairs);

  /// F1 on the dataset's test split.
  eval::PrfScores EvaluateTest(const data::EmDataset& dataset);

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParam>* out) override;

  /// Pads/truncates encoded text to max_tokens (exposed for tests).
  std::vector<int64_t> EncodeEntity(const std::string& text) const;

 private:
  const Word2Vec& word2vec_;
  DeepMatcherOptions options_;
  Rng rng_;
  nn::Embedding embeddings_;  // initialized from word2vec, fine-tuned
  nn::BiGru encoder_;
  nn::Linear compare_;   // [4E] -> H over per-token comparisons
  nn::Linear combine_;   // [4H] -> H (mean+max pooled, both sides)
  nn::Linear out_;       // H -> 2
};

}  // namespace baselines
}  // namespace emx

#endif  // EMX_BASELINES_DEEPMATCHER_H_
