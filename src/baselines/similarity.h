#ifndef EMX_BASELINES_SIMILARITY_H_
#define EMX_BASELINES_SIMILARITY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace emx {
namespace baselines {

// The classical string-similarity library behind the Magellan-style
// baseline (Christen, "Data Matching", 2012). All functions return values
// in [0, 1] where 1 means identical.

/// Levenshtein edit distance (unit costs).
int64_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(len); 1 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity (Jaro 1989 — the paper's record-linkage reference).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler: Jaro boosted by common prefix (up to 4 chars, p = 0.1).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard over whitespace tokens.
double TokenJaccard(std::string_view a, std::string_view b);

/// Jaccard over character q-grams (default trigram).
double QGramJaccard(std::string_view a, std::string_view b, int64_t q = 3);

/// Overlap coefficient over whitespace tokens: |A∩B| / min(|A|, |B|).
double TokenOverlapCoefficient(std::string_view a, std::string_view b);

/// Monge-Elkan: mean over tokens of `a` of the best Jaro-Winkler match in
/// `b` (asymmetric; callers usually average both directions).
double MongeElkanSimilarity(std::string_view a, std::string_view b);

/// Exact string equality as a 0/1 feature.
double ExactMatch(std::string_view a, std::string_view b);

/// Relative numeric similarity: 1 - |x-y| / max(|x|, |y|); 0 if either
/// side does not parse as a number.
double NumericSimilarity(std::string_view a, std::string_view b);

/// TF-IDF cosine similarity with document frequencies learned from a
/// corpus of strings (Fit), then applied to pairs (Similarity).
class TfIdfCosine {
 public:
  /// Learns token document frequencies.
  void Fit(const std::vector<std::string>& documents);

  /// Cosine similarity of the TF-IDF vectors of `a` and `b`.
  double Similarity(std::string_view a, std::string_view b) const;

  int64_t num_documents() const { return num_documents_; }

 private:
  double Idf(const std::string& token) const;

  std::unordered_map<std::string, int64_t> document_frequency_;
  int64_t num_documents_ = 0;
};

}  // namespace baselines
}  // namespace emx

#endif  // EMX_BASELINES_SIMILARITY_H_
