#include "baselines/deepmatcher.h"

#include <algorithm>
#include <cmath>

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace emx {
namespace baselines {

namespace ag = autograd;

DeepMatcherModel::DeepMatcherModel(const Word2Vec& word2vec,
                                   DeepMatcherOptions options)
    : word2vec_(word2vec),
      options_(options),
      rng_(options.seed),
      embeddings_(word2vec.vocab_size(), word2vec.dim(), &rng_),
      encoder_(word2vec.dim(), options.hidden, &rng_),
      compare_(4 * word2vec.dim(), options.hidden, &rng_,
               1.0f / std::sqrt(static_cast<float>(4 * word2vec.dim()))),
      combine_(4 * options.hidden, options.hidden, &rng_,
               1.0f / std::sqrt(static_cast<float>(4 * options.hidden))),
      out_(options.hidden, 2, &rng_,
           1.0f / std::sqrt(static_cast<float>(options.hidden))) {
  // Initialize the embedding table from the pre-trained word2vec vectors
  // (the only pre-trained part of DeepMatcher).
  Tensor& table = embeddings_.Parameters()[0].var.mutable_value();
  const Tensor& w2v = word2vec.embeddings();
  EMX_CHECK_EQ(table.size(), w2v.size());
  std::copy(w2v.data(), w2v.data() + w2v.size(), table.data());
}

std::vector<int64_t> DeepMatcherModel::EncodeEntity(
    const std::string& text) const {
  std::vector<int64_t> ids = word2vec_.Encode(text);
  ids.resize(static_cast<size_t>(options_.max_tokens), Word2Vec::kPadId);
  return ids;
}

Variable DeepMatcherModel::Logits(const std::vector<int64_t>& ids_a,
                                  const std::vector<int64_t>& ids_b,
                                  int64_t batch_size, bool train, Rng* rng) {
  const int64_t t = options_.max_tokens;
  Variable emb_a = embeddings_.Forward(ids_a, {batch_size, t});
  Variable emb_b = embeddings_.Forward(ids_b, {batch_size, t});

  Variable ha = encoder_.Forward(emb_a);  // [B, T, 2H]
  Variable hb = encoder_.Forward(emb_b);

  // Pad masks: 1 where padded. Keys that are padding must receive no
  // attention; padded query positions must not contribute to the means.
  auto pad_mask = [&](const std::vector<int64_t>& ids) {
    Tensor m({batch_size, 1, t});
    for (int64_t i = 0; i < batch_size * t; ++i) {
      if (ids[static_cast<size_t>(i)] == Word2Vec::kPadId) {
        m[(i / t) * t + (i % t)] = 1.0f;
      }
    }
    return m;
  };
  Tensor mask_a = pad_mask(ids_a);  // [B, 1, T]
  Tensor mask_b = pad_mask(ids_b);

  // Per-query averaging weights that skip padded positions.
  auto mean_weights = [&](const Tensor& mask) {
    Tensor w({batch_size, 1, t});
    for (int64_t i = 0; i < batch_size; ++i) {
      int64_t real = 0;
      for (int64_t j = 0; j < t; ++j) {
        if (mask[i * t + j] == 0.0f) ++real;
      }
      const float inv = real > 0 ? 1.0f / static_cast<float>(real) : 0.0f;
      for (int64_t j = 0; j < t; ++j) {
        w[i * t + j] = mask[i * t + j] == 0.0f ? inv : 0.0f;
      }
    }
    return w;
  };

  // Decomposable soft alignment: attention weights come from the
  // contextual GRU states; the *comparison* is between raw word embeddings
  // (as in DeepMatcher), so identical aligned tokens give a near-zero
  // difference signal regardless of context.
  const float scale =
      1.0f / std::sqrt(static_cast<float>(2 * options_.hidden));
  Variable scores = ag::MulScalar(ag::MatMul(ha, hb, false, true), scale);
  Variable probs_a = ag::MaskedSoftmax(scores, mask_b);   // [B, Ta, Tb]
  Variable aligned_b = ag::MatMul(probs_a, emb_b);        // [B, Ta, E]
  Variable scores_t = ag::Permute(scores, {0, 2, 1});
  Variable probs_b = ag::MaskedSoftmax(scores_t, mask_a);
  Variable aligned_a = ag::MatMul(probs_b, emb_a);        // [B, Tb, E]

  auto compare_side = [&](const Variable& emb, const Variable& aligned,
                          const Tensor& own_mask) {
    Variable diff = ag::Sub(emb, aligned);
    Variable prod = ag::Mul(emb, aligned);
    Variable cat = ag::Concat({emb, aligned, diff, prod}, 2);  // [B, T, 4E]
    Variable cmp = ag::Relu(compare_.Forward(cat));            // [B, T, H]
    cmp = ag::Dropout(cmp, options_.dropout, train, rng);
    Variable w = Variable::Constant(mean_weights(own_mask));   // [B, 1, T]
    Variable mean_pool = ag::Reshape(ag::MatMul(w, cmp),
                                     {batch_size, options_.hidden});
    // Max-pooling catches a single decisive token mismatch (e.g. the model
    // number) that mean-pooling would wash out across the sequence.
    Variable max_pool = nn::MaxOverTime(cmp);
    return ag::Concat({mean_pool, max_pool}, 1);               // [B, 2H]
  };

  Variable va = compare_side(emb_a, aligned_b, mask_a);
  Variable vb = compare_side(emb_b, aligned_a, mask_b);
  Variable joint = ag::Relu(combine_.Forward(ag::Concat({va, vb}, 1)));
  joint = ag::Dropout(joint, options_.dropout, train, rng);
  return out_.Forward(joint);
}

float DeepMatcherModel::Fit(const data::EmDataset& dataset) {
  nn::AdamOptions adam_opts;
  adam_opts.lr = options_.learning_rate;
  nn::Adam adam(Parameters(), adam_opts);

  float last_loss = 0;
  std::vector<size_t> order(dataset.train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    double epoch_loss = 0;
    int64_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options_.batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(options_.batch_size));
      const int64_t bsz = static_cast<int64_t>(end - start);
      std::vector<int64_t> ids_a, ids_b, labels;
      for (size_t k = start; k < end; ++k) {
        const auto& pair = dataset.train[order[k]];
        auto ea = EncodeEntity(dataset.SerializeA(pair));
        auto eb = EncodeEntity(dataset.SerializeB(pair));
        ids_a.insert(ids_a.end(), ea.begin(), ea.end());
        ids_b.insert(ids_b.end(), eb.begin(), eb.end());
        labels.push_back(pair.label);
      }
      adam.ZeroGrad();
      Variable logits = Logits(ids_a, ids_b, bsz, /*train=*/true, &rng_);
      Variable loss = ag::CrossEntropy(logits, labels);
      epoch_loss += loss.value()[0];
      ++batches;
      Backward(loss);
      adam.Step();
    }
    last_loss = static_cast<float>(epoch_loss / std::max<int64_t>(1, batches));
  }
  return last_loss;
}

std::vector<int64_t> DeepMatcherModel::Predict(
    const data::EmDataset& dataset,
    const std::vector<data::RecordPair>& pairs) {
  std::vector<int64_t> preds;
  preds.reserve(pairs.size());
  for (size_t start = 0; start < pairs.size();
       start += static_cast<size_t>(options_.batch_size)) {
    const size_t end = std::min(
        pairs.size(), start + static_cast<size_t>(options_.batch_size));
    const int64_t bsz = static_cast<int64_t>(end - start);
    std::vector<int64_t> ids_a, ids_b;
    for (size_t k = start; k < end; ++k) {
      auto ea = EncodeEntity(dataset.SerializeA(pairs[k]));
      auto eb = EncodeEntity(dataset.SerializeB(pairs[k]));
      ids_a.insert(ids_a.end(), ea.begin(), ea.end());
      ids_b.insert(ids_b.end(), eb.begin(), eb.end());
    }
    Variable logits = Logits(ids_a, ids_b, bsz, /*train=*/false, &rng_);
    for (int64_t p : ops::ArgMaxLastAxis(logits.value())) preds.push_back(p);
  }
  return preds;
}

eval::PrfScores DeepMatcherModel::EvaluateTest(const data::EmDataset& dataset) {
  std::vector<int64_t> labels;
  for (const auto& p : dataset.test) labels.push_back(p.label);
  return eval::ComputeScores(Predict(dataset, dataset.test), labels);
}

void DeepMatcherModel::CollectParameters(const std::string& prefix,
                                         std::vector<nn::NamedParam>* out) {
  if (options_.trainable_embeddings) {
    embeddings_.CollectParameters(nn::JoinName(prefix, "emb"), out);
  }
  encoder_.CollectParameters(nn::JoinName(prefix, "encoder"), out);
  compare_.CollectParameters(nn::JoinName(prefix, "compare"), out);
  combine_.CollectParameters(nn::JoinName(prefix, "combine"), out);
  out_.CollectParameters(nn::JoinName(prefix, "out"), out);
}

}  // namespace baselines
}  // namespace emx
