#include "baselines/classical_ml.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace emx {
namespace baselines {
namespace {

double LeafProb(const MlDataset& data, const std::vector<int64_t>& indices) {
  if (indices.empty()) return 0.5;
  double positives = 0;
  for (int64_t i : indices) positives += data.labels[static_cast<size_t>(i)];
  // Laplace smoothing keeps probabilities off 0/1.
  return (positives + 1.0) / (static_cast<double>(indices.size()) + 2.0);
}

double GiniOfCounts(double n_pos, double n_total) {
  if (n_total <= 0) return 0.0;
  const double p = n_pos / n_total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree::DecisionTree() : DecisionTree(Options(), 7) {}
RandomForest::RandomForest() : RandomForest(Options(), 11) {}
LogisticRegression::LogisticRegression() : LogisticRegression(Options()) {}

void DecisionTree::Fit(const MlDataset& data) {
  nodes_.clear();
  EMX_CHECK_GT(data.size(), 0u);
  std::vector<int64_t> indices(data.size());
  for (size_t i = 0; i < data.size(); ++i) indices[i] = static_cast<int64_t>(i);
  Build(data, std::move(indices), 0);
}

int64_t DecisionTree::Build(const MlDataset& data, std::vector<int64_t> indices,
                            int64_t depth) {
  const int64_t node_id = static_cast<int64_t>(nodes_.size());
  nodes_.push_back(Node());
  nodes_[static_cast<size_t>(node_id)].prob = LeafProb(data, indices);

  // Stop: depth, size, or purity.
  int64_t n_pos = 0;
  for (int64_t i : indices) n_pos += data.labels[static_cast<size_t>(i)];
  const bool pure = n_pos == 0 || n_pos == static_cast<int64_t>(indices.size());
  if (depth >= options_.max_depth || pure ||
      static_cast<int64_t>(indices.size()) < 2 * options_.min_samples_leaf) {
    return node_id;
  }

  const int64_t num_features = static_cast<int64_t>(data.num_features());
  std::vector<int64_t> feature_order(static_cast<size_t>(num_features));
  for (int64_t f = 0; f < num_features; ++f) {
    feature_order[static_cast<size_t>(f)] = f;
  }
  int64_t features_to_try = num_features;
  if (options_.max_features > 0 && options_.max_features < num_features) {
    rng_.Shuffle(&feature_order);
    features_to_try = options_.max_features;
  }

  double best_gain = 1e-9;
  int64_t best_feature = -1;
  double best_threshold = 0;
  const double parent_gini =
      GiniOfCounts(static_cast<double>(n_pos),
                   static_cast<double>(indices.size()));

  for (int64_t fi = 0; fi < features_to_try; ++fi) {
    const int64_t f = feature_order[static_cast<size_t>(fi)];
    // Sort indices by this feature's value; evaluate midpoints.
    std::vector<std::pair<double, int64_t>> vals;
    vals.reserve(indices.size());
    for (int64_t i : indices) {
      vals.push_back({data.features[static_cast<size_t>(i)][static_cast<size_t>(f)],
                      data.labels[static_cast<size_t>(i)]});
    }
    std::sort(vals.begin(), vals.end());
    double left_pos = 0;
    const double total = static_cast<double>(vals.size());
    const double total_pos = static_cast<double>(n_pos);
    for (size_t k = 0; k + 1 < vals.size(); ++k) {
      left_pos += static_cast<double>(vals[k].second);
      if (vals[k].first == vals[k + 1].first) continue;
      const double left_n = static_cast<double>(k + 1);
      const double right_n = total - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      const double gini =
          (left_n / total) * GiniOfCounts(left_pos, left_n) +
          (right_n / total) * GiniOfCounts(total_pos - left_pos, right_n);
      const double gain = parent_gini - gini;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = (vals[k].first + vals[k + 1].first) / 2.0;
      }
    }
  }
  if (best_feature < 0) return node_id;

  std::vector<int64_t> left_idx, right_idx;
  for (int64_t i : indices) {
    if (data.features[static_cast<size_t>(i)][static_cast<size_t>(best_feature)] <=
        best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_id;

  const int64_t left = Build(data, std::move(left_idx), depth + 1);
  const int64_t right = Build(data, std::move(right_idx), depth + 1);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double DecisionTree::PredictProb(const std::vector<double>& features) const {
  EMX_CHECK(!nodes_.empty()) << "Fit before Predict";
  int64_t id = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<size_t>(id)];
    if (node.feature < 0) return node.prob;
    id = features[static_cast<size_t>(node.feature)] <= node.threshold
             ? node.left
             : node.right;
  }
}

void RandomForest::Fit(const MlDataset& data) {
  trees_.clear();
  const int64_t n = static_cast<int64_t>(data.size());
  const int64_t sqrt_features = std::max<int64_t>(
      1, static_cast<int64_t>(std::sqrt(static_cast<double>(data.num_features()))));
  for (int64_t t = 0; t < options_.num_trees; ++t) {
    MlDataset sample;
    sample.features.reserve(static_cast<size_t>(n));
    sample.labels.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const size_t pick = rng_.NextUint64(static_cast<uint64_t>(n));
      sample.features.push_back(data.features[pick]);
      sample.labels.push_back(data.labels[pick]);
    }
    DecisionTree::Options tree_opts;
    tree_opts.max_depth = options_.max_depth;
    tree_opts.min_samples_leaf = options_.min_samples_leaf;
    tree_opts.max_features = sqrt_features;
    auto tree = std::make_unique<DecisionTree>(tree_opts, rng_.Next());
    tree->Fit(sample);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::PredictProb(const std::vector<double>& features) const {
  EMX_CHECK(!trees_.empty()) << "Fit before Predict";
  double sum = 0;
  for (const auto& tree : trees_) sum += tree->PredictProb(features);
  return sum / static_cast<double>(trees_.size());
}

void LogisticRegression::Fit(const MlDataset& data) {
  const size_t n = data.size();
  const size_t d = data.num_features();
  EMX_CHECK_GT(n, 0u);

  // Standardize features.
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  for (const auto& row : data.features) {
    for (size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) mean_[j] /= static_cast<double>(n);
  for (const auto& row : data.features) {
    for (size_t j = 0; j < d; ++j) {
      stddev_[j] += (row[j] - mean_[j]) * (row[j] - mean_[j]);
    }
  }
  for (size_t j = 0; j < d; ++j) {
    stddev_[j] = std::sqrt(stddev_[j] / static_cast<double>(n));
    if (stddev_[j] < 1e-9) stddev_[j] = 1.0;
  }

  weights_.assign(d, 0.0);
  bias_ = 0;
  std::vector<double> grad(d);
  for (int64_t it = 0; it < options_.iterations; ++it) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0;
    for (size_t i = 0; i < n; ++i) {
      double z = bias_;
      for (size_t j = 0; j < d; ++j) {
        z += weights_[j] * (data.features[i][j] - mean_[j]) / stddev_[j];
      }
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double err = p - static_cast<double>(data.labels[i]);
      for (size_t j = 0; j < d; ++j) {
        grad[j] += err * (data.features[i][j] - mean_[j]) / stddev_[j];
      }
      grad_b += err;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t j = 0; j < d; ++j) {
      weights_[j] -= options_.learning_rate *
                     (grad[j] * inv_n + options_.l2 * weights_[j]);
    }
    bias_ -= options_.learning_rate * grad_b * inv_n;
  }
}

double LogisticRegression::PredictProb(const std::vector<double>& features) const {
  EMX_CHECK_EQ(features.size(), weights_.size());
  double z = bias_;
  for (size_t j = 0; j < features.size(); ++j) {
    z += weights_[j] * (features[j] - mean_[j]) / stddev_[j];
  }
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace baselines
}  // namespace emx
