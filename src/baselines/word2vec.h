#ifndef EMX_BASELINES_WORD2VEC_H_
#define EMX_BASELINES_WORD2VEC_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace emx {
namespace baselines {

/// Options for skip-gram-with-negative-sampling training.
struct Word2VecOptions {
  int64_t dim = 64;
  int64_t window = 4;
  int64_t negatives = 5;
  int64_t epochs = 3;
  double learning_rate = 0.05;
  int64_t min_count = 2;
  /// Out-of-vocabulary words map to one of this many hash buckets with
  /// random (but deterministic per string) vectors — mimicking fastText's
  /// property that unseen tokens still get distinct, stable embeddings.
  /// The discriminative tokens in EM data (model numbers, track times) are
  /// precisely the rare ones, so collapsing them to one <unk> vector would
  /// destroy the signal.
  int64_t hash_buckets = 512;
  uint64_t seed = 17;
};

/// Skip-gram word2vec (Mikolov et al. 2013) trained with negative sampling.
/// DeepMatcher loads pre-trained word embeddings (fastText in the original);
/// this corpus-trained equivalent plays that role here.
///
/// Ids 0 and 1 are reserved for <pad> and <unk>.
class Word2Vec {
 public:
  static Word2Vec Train(const std::vector<std::string>& corpus,
                        const Word2VecOptions& options);

  /// Word id or the <unk> id for unknown words (input is lower-cased).
  int64_t WordId(const std::string& word) const;

  /// Encodes whitespace-split, lower-cased text to ids.
  std::vector<int64_t> Encode(const std::string& text) const;

  /// Input-embedding matrix [vocab + hash_buckets, dim]; row 0 (<pad>) is
  /// zero. Bucket rows live after the learned vocabulary.
  const Tensor& embeddings() const { return embeddings_; }

  /// Learned words plus OOV hash buckets (the embedding row count).
  int64_t vocab_size() const {
    return static_cast<int64_t>(words_.size()) + options_.hash_buckets;
  }
  int64_t num_learned_words() const {
    return static_cast<int64_t>(words_.size());
  }
  int64_t dim() const { return options_.dim; }

  static constexpr int64_t kPadId = 0;
  static constexpr int64_t kUnkId = 1;

  /// Cosine similarity between two words' vectors (0 when either unknown).
  double Similarity(const std::string& a, const std::string& b) const;

 private:
  Word2VecOptions options_;
  std::vector<std::string> words_;
  std::unordered_map<std::string, int64_t> word_to_id_;
  Tensor embeddings_;
};

}  // namespace baselines
}  // namespace emx

#endif  // EMX_BASELINES_WORD2VEC_H_
