#include "baselines/word2vec.h"

#include <cmath>
#include <map>

#include "util/logging.h"
#include "util/string_util.h"

namespace emx {
namespace baselines {

Word2Vec Word2Vec::Train(const std::vector<std::string>& corpus,
                         const Word2VecOptions& options) {
  Word2Vec model;
  model.options_ = options;

  // 1. Vocabulary.
  std::map<std::string, int64_t> counts;
  std::vector<std::vector<std::string>> docs;
  docs.reserve(corpus.size());
  for (const auto& doc : corpus) {
    docs.push_back(SplitWhitespace(ToLower(doc)));
    for (const auto& w : docs.back()) ++counts[w];
  }
  model.words_ = {"<pad>", "<unk>"};
  for (const auto& [w, c] : counts) {
    if (c >= options.min_count) model.words_.push_back(w);
  }
  for (size_t i = 0; i < model.words_.size(); ++i) {
    model.word_to_id_[model.words_[i]] = static_cast<int64_t>(i);
  }
  const int64_t v = model.num_learned_words();

  // 2. Parameters: input and output embeddings.
  Rng rng(options.seed);
  Tensor w_in = Tensor::RandUniform({v, options.dim}, &rng,
                                    -0.5f / options.dim, 0.5f / options.dim);
  Tensor w_out = Tensor::Zeros({v, options.dim});

  // 3. Negative-sampling table (unigram^0.75).
  std::vector<double> sampling_weights(static_cast<size_t>(v), 0.0);
  for (const auto& [w, c] : counts) {
    auto it = model.word_to_id_.find(w);
    if (it != model.word_to_id_.end()) {
      sampling_weights[static_cast<size_t>(it->second)] =
          std::pow(static_cast<double>(c), 0.75);
    }
  }

  // 4. SGNS training.
  const float lr = static_cast<float>(options.learning_rate);
  std::vector<float> grad_center(static_cast<size_t>(options.dim));
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (const auto& doc : docs) {
      std::vector<int64_t> ids;
      for (const auto& w : doc) {
        auto it = model.word_to_id_.find(w);
        if (it != model.word_to_id_.end()) ids.push_back(it->second);
      }
      for (size_t i = 0; i < ids.size(); ++i) {
        const int64_t center = ids[i];
        const int64_t win = 1 + static_cast<int64_t>(
                                    rng.NextUint64(static_cast<uint64_t>(options.window)));
        for (int64_t off = -win; off <= win; ++off) {
          if (off == 0) continue;
          const int64_t j = static_cast<int64_t>(i) + off;
          if (j < 0 || j >= static_cast<int64_t>(ids.size())) continue;
          const int64_t context = ids[static_cast<size_t>(j)];

          float* vc = w_in.data() + center * options.dim;
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);

          // One positive + `negatives` sampled updates.
          for (int64_t n = 0; n <= options.negatives; ++n) {
            int64_t target;
            float label;
            if (n == 0) {
              target = context;
              label = 1.0f;
            } else {
              target = static_cast<int64_t>(rng.NextDiscrete(sampling_weights));
              if (target == context) continue;
              label = 0.0f;
            }
            float* vo = w_out.data() + target * options.dim;
            float dot = 0;
            for (int64_t d = 0; d < options.dim; ++d) dot += vc[d] * vo[d];
            const float pred = 1.0f / (1.0f + std::exp(-dot));
            const float g = (pred - label) * lr;
            for (int64_t d = 0; d < options.dim; ++d) {
              grad_center[static_cast<size_t>(d)] += g * vo[d];
              vo[d] -= g * vc[d];
            }
          }
          for (int64_t d = 0; d < options.dim; ++d) {
            vc[d] -= grad_center[static_cast<size_t>(d)];
          }
        }
      }
    }
  }

  // <pad> stays zero.
  for (int64_t d = 0; d < options.dim; ++d) w_in[kPadId * options.dim + d] = 0;

  // Append the OOV hash-bucket rows: random but deterministic vectors so
  // that an unseen token always maps to the same embedding and two
  // different unseen tokens usually map to different ones (fastText-like).
  Rng bucket_rng(options.seed ^ 0xfeedbeefULL);
  Tensor full({v + options.hash_buckets, options.dim});
  std::copy(w_in.data(), w_in.data() + w_in.size(), full.data());
  for (int64_t b = 0; b < options.hash_buckets; ++b) {
    for (int64_t d = 0; d < options.dim; ++d) {
      // Scale comparable to trained vectors so OOV-identity signals are
      // not drowned out by in-vocabulary dimensions.
      full[(v + b) * options.dim + d] =
          static_cast<float>(bucket_rng.NextGaussian()) * 0.3f;
    }
  }
  model.embeddings_ = std::move(full);
  return model;
}

int64_t Word2Vec::WordId(const std::string& word) const {
  const std::string lower = ToLower(word);
  auto it = word_to_id_.find(lower);
  if (it != word_to_id_.end()) return it->second;
  if (options_.hash_buckets <= 0) return kUnkId;
  // FNV-1a hash into the bucket range.
  uint64_t hash = 1469598103934665603ULL;
  for (char ch : lower) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ULL;
  }
  return num_learned_words() +
         static_cast<int64_t>(hash % static_cast<uint64_t>(options_.hash_buckets));
}

std::vector<int64_t> Word2Vec::Encode(const std::string& text) const {
  std::vector<int64_t> ids;
  for (const auto& w : SplitWhitespace(ToLower(text))) ids.push_back(WordId(w));
  return ids;
}

double Word2Vec::Similarity(const std::string& a, const std::string& b) const {
  const int64_t ia = WordId(a);
  const int64_t ib = WordId(b);
  if (ia == kUnkId || ib == kUnkId) return 0.0;
  // Note: OOV bucket vectors participate like any other row.
  const float* va = embeddings_.data() + ia * options_.dim;
  const float* vb = embeddings_.data() + ib * options_.dim;
  double dot = 0, na = 0, nb = 0;
  for (int64_t d = 0; d < options_.dim; ++d) {
    dot += va[d] * vb[d];
    na += va[d] * va[d];
    nb += vb[d] * vb[d];
  }
  if (na == 0 || nb == 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace baselines
}  // namespace emx
