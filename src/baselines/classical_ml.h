#ifndef EMX_BASELINES_CLASSICAL_ML_H_
#define EMX_BASELINES_CLASSICAL_ML_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace emx {
namespace baselines {

/// Feature matrix + binary labels for the classical matchers.
struct MlDataset {
  std::vector<std::vector<double>> features;
  std::vector<int64_t> labels;

  size_t size() const { return labels.size(); }
  size_t num_features() const {
    return features.empty() ? 0 : features[0].size();
  }
};

/// Interface shared by the three classifiers Magellan-style systems choose
/// from (decision tree, random forest, logistic regression).
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;
  virtual void Fit(const MlDataset& data) = 0;
  /// P(label = 1 | features).
  virtual double PredictProb(const std::vector<double>& features) const = 0;
  virtual std::string name() const = 0;

  int64_t Predict(const std::vector<double>& features) const {
    return PredictProb(features) >= 0.5 ? 1 : 0;
  }
};

/// CART decision tree with Gini impurity.
class DecisionTree : public BinaryClassifier {
 public:
  struct Options {
    int64_t max_depth = 10;
    int64_t min_samples_leaf = 2;
    /// Features considered per split; 0 = all (random forests subsample).
    int64_t max_features = 0;
  };

  DecisionTree();
  explicit DecisionTree(Options options, uint64_t seed = 7)
      : options_(options), rng_(seed) {}

  void Fit(const MlDataset& data) override;
  double PredictProb(const std::vector<double>& features) const override;
  std::string name() const override { return "DecisionTree"; }

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  struct Node {
    int64_t feature = -1;  // -1 = leaf
    double threshold = 0;
    int64_t left = -1;
    int64_t right = -1;
    double prob = 0.5;  // P(1) at leaf
  };

  int64_t Build(const MlDataset& data, std::vector<int64_t> indices,
                int64_t depth);

  Options options_;
  Rng rng_;
  std::vector<Node> nodes_;
};

/// Bagged ensemble of depth-limited trees with sqrt-feature subsampling.
class RandomForest : public BinaryClassifier {
 public:
  struct Options {
    int64_t num_trees = 25;
    int64_t max_depth = 10;
    int64_t min_samples_leaf = 2;
  };

  RandomForest();
  explicit RandomForest(Options options, uint64_t seed = 11)
      : options_(options), rng_(seed) {}

  void Fit(const MlDataset& data) override;
  double PredictProb(const std::vector<double>& features) const override;
  std::string name() const override { return "RandomForest"; }

 private:
  Options options_;
  Rng rng_;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
};

/// L2-regularized logistic regression trained by full-batch gradient
/// descent with feature standardization.
class LogisticRegression : public BinaryClassifier {
 public:
  struct Options {
    double learning_rate = 0.5;
    int64_t iterations = 400;
    double l2 = 1e-4;
  };

  LogisticRegression();
  explicit LogisticRegression(Options options) : options_(options) {}

  void Fit(const MlDataset& data) override;
  double PredictProb(const std::vector<double>& features) const override;
  std::string name() const override { return "LogisticRegression"; }

 private:
  Options options_;
  std::vector<double> weights_;
  double bias_ = 0;
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace baselines
}  // namespace emx

#endif  // EMX_BASELINES_CLASSICAL_ML_H_
