#include "baselines/magellan.h"

#include "util/logging.h"

namespace emx {
namespace baselines {
namespace {

constexpr size_t kFeaturesPerAttribute = 9;

}  // namespace

MagellanMatcher::MagellanMatcher() : MagellanMatcher(Options()) {}

size_t MagellanMatcher::num_features() const {
  return static_cast<size_t>(num_attributes_) * kFeaturesPerAttribute;
}

std::vector<double> MagellanMatcher::Features(const data::RecordPair& pair) const {
  std::vector<double> out;
  out.reserve(num_features());
  for (int64_t i = 0; i < num_attributes_; ++i) {
    const std::string& a = pair.a.value(i);
    const std::string& b = pair.b.value(i);
    out.push_back(TokenJaccard(a, b));
    out.push_back(JaroWinklerSimilarity(a.substr(0, 48), b.substr(0, 48)));
    out.push_back(LevenshteinSimilarity(a.substr(0, 48), b.substr(0, 48)));
    out.push_back(TokenOverlapCoefficient(a, b));
    out.push_back(MongeElkanSimilarity(a, b));
    out.push_back(tfidf_.num_documents() > 0 ? tfidf_.Similarity(a, b) : 0.0);
    out.push_back(NumericSimilarity(a, b));
    out.push_back(ExactMatch(a, b));
    out.push_back(!a.empty() && !b.empty() ? 1.0 : 0.0);
  }
  return out;
}

void MagellanMatcher::Fit(const data::EmDataset& dataset) {
  num_attributes_ = dataset.schema.size();

  // Fit the TF-IDF model on all attribute values of the training split.
  std::vector<std::string> docs;
  for (const auto& p : dataset.train) {
    for (const auto& v : p.a.values) docs.push_back(v);
    for (const auto& v : p.b.values) docs.push_back(v);
  }
  tfidf_.Fit(docs);

  MlDataset train;
  for (const auto& p : dataset.train) {
    train.features.push_back(Features(p));
    train.labels.push_back(p.label);
  }

  // Candidate classifiers (Magellan's select_matcher over its default set).
  std::vector<std::unique_ptr<BinaryClassifier>> candidates;
  if (options_.try_decision_tree) {
    candidates.push_back(
        std::make_unique<DecisionTree>(DecisionTree::Options(), options_.seed));
  }
  if (options_.try_random_forest) {
    candidates.push_back(
        std::make_unique<RandomForest>(RandomForest::Options(), options_.seed));
  }
  if (options_.try_logistic_regression) {
    candidates.push_back(std::make_unique<LogisticRegression>());
  }
  EMX_CHECK(!candidates.empty());

  double best_f1 = -1;
  for (auto& cand : candidates) {
    cand->Fit(train);
    std::vector<int64_t> preds, labels;
    for (const auto& p : dataset.valid) {
      preds.push_back(cand->Predict(Features(p)));
      labels.push_back(p.label);
    }
    const double f1 = eval::ComputeScores(preds, labels).f1;
    if (f1 > best_f1) {
      best_f1 = f1;
      classifier_ = std::move(cand);
    }
  }
  selected_name_ = classifier_->name();
}

std::vector<int64_t> MagellanMatcher::Predict(
    const std::vector<data::RecordPair>& pairs) const {
  EMX_CHECK(classifier_ != nullptr) << "Fit before Predict";
  std::vector<int64_t> preds;
  preds.reserve(pairs.size());
  for (const auto& p : pairs) preds.push_back(classifier_->Predict(Features(p)));
  return preds;
}

eval::PrfScores MagellanMatcher::EvaluateTest(
    const data::EmDataset& dataset) const {
  std::vector<int64_t> labels;
  for (const auto& p : dataset.test) labels.push_back(p.label);
  return eval::ComputeScores(Predict(dataset.test), labels);
}

}  // namespace baselines
}  // namespace emx
