#ifndef EMX_BASELINES_MAGELLAN_H_
#define EMX_BASELINES_MAGELLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/classical_ml.h"
#include "baselines/similarity.h"
#include "data/record.h"
#include "eval/metrics.h"

namespace emx {
namespace baselines {

/// Magellan-style classical entity matcher (Konda et al., VLDB 2016):
/// per-attribute similarity features fed into an off-the-shelf classifier,
/// with the best classifier chosen on the validation split (Magellan's
/// select_matcher). This is the paper's "MG" baseline.
///
/// The per-attribute feature design is the source of its failure on dirty
/// data: when a value has been moved into the title, the features for its
/// original attribute compare an empty string against a value, and the
/// title features compare differently-polluted titles.
class MagellanMatcher {
 public:
  struct Options {
    /// Classifiers to try; the best on the validation split is kept.
    bool try_decision_tree = true;
    bool try_random_forest = true;
    bool try_logistic_regression = true;
    uint64_t seed = 13;
  };

  MagellanMatcher();
  explicit MagellanMatcher(Options options) : options_(options) {}

  /// Extracts features, fits every enabled classifier on `train`, and
  /// selects the one with the best F1 on `valid`.
  void Fit(const data::EmDataset& dataset);

  /// Predicted labels for a split.
  std::vector<int64_t> Predict(const std::vector<data::RecordPair>& pairs) const;

  /// F1 on the dataset's test split (after Fit).
  eval::PrfScores EvaluateTest(const data::EmDataset& dataset) const;

  /// The per-pair feature vector (exposed for tests): for each attribute,
  /// [jaccard, jaro-winkler, levenshtein, overlap, monge-elkan, tf-idf
  /// cosine, numeric, exact, both-present flag].
  std::vector<double> Features(const data::RecordPair& pair) const;

  /// Number of features per pair (attributes * per-attribute features).
  size_t num_features() const;

  const std::string& selected_classifier() const { return selected_name_; }

 private:
  Options options_;
  int64_t num_attributes_ = 0;
  TfIdfCosine tfidf_;
  std::unique_ptr<BinaryClassifier> classifier_;
  std::string selected_name_;
};

}  // namespace baselines
}  // namespace emx

#endif  // EMX_BASELINES_MAGELLAN_H_
