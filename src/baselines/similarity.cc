#include "baselines/similarity.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/string_util.h"

namespace emx {
namespace baselines {

int64_t LevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int64_t>(m);
  if (m == 0) return static_cast<int64_t>(n);
  std::vector<int64_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int64_t>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int64_t>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int64_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const double max_len = static_cast<double>(std::max(a.size(), b.size()));
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) / max_len;
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const int64_t n = static_cast<int64_t>(a.size());
  const int64_t m = static_cast<int64_t>(b.size());
  const int64_t window = std::max<int64_t>(std::max(n, m) / 2 - 1, 0);

  std::vector<bool> a_matched(a.size(), false), b_matched(b.size(), false);
  int64_t matches = 0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t lo = std::max<int64_t>(0, i - window);
    const int64_t hi = std::min<int64_t>(m - 1, i + window);
    for (int64_t j = lo; j <= hi; ++j) {
      if (b_matched[static_cast<size_t>(j)]) continue;
      if (a[static_cast<size_t>(i)] != b[static_cast<size_t>(j)]) continue;
      a_matched[static_cast<size_t>(i)] = true;
      b_matched[static_cast<size_t>(j)] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Count transpositions among matched characters.
  int64_t transpositions = 0;
  int64_t k = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (!a_matched[static_cast<size_t>(i)]) continue;
    while (!b_matched[static_cast<size_t>(k)]) ++k;
    if (a[static_cast<size_t>(i)] != b[static_cast<size_t>(k)]) ++transpositions;
    ++k;
  }
  const double mm = static_cast<double>(matches);
  return (mm / n + mm / m + (mm - transpositions / 2.0) / mm) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

namespace {

std::set<std::string> TokenSet(std::string_view text) {
  auto tokens = SplitWhitespace(text);
  return std::set<std::string>(tokens.begin(), tokens.end());
}

}  // namespace

double TokenJaccard(std::string_view a, std::string_view b) {
  auto sa = TokenSet(a);
  auto sb = TokenSet(b);
  if (sa.empty() && sb.empty()) return 1.0;
  int64_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  const size_t uni = sa.size() + sb.size() - static_cast<size_t>(inter);
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double QGramJaccard(std::string_view a, std::string_view b, int64_t q) {
  auto grams = [q](std::string_view s) {
    std::set<std::string> out;
    if (static_cast<int64_t>(s.size()) < q) {
      if (!s.empty()) out.insert(std::string(s));
      return out;
    }
    for (size_t i = 0; i + static_cast<size_t>(q) <= s.size(); ++i) {
      out.insert(std::string(s.substr(i, static_cast<size_t>(q))));
    }
    return out;
  };
  auto sa = grams(a);
  auto sb = grams(b);
  if (sa.empty() && sb.empty()) return 1.0;
  int64_t inter = 0;
  for (const auto& g : sa) inter += sb.count(g);
  const size_t uni = sa.size() + sb.size() - static_cast<size_t>(inter);
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double TokenOverlapCoefficient(std::string_view a, std::string_view b) {
  auto sa = TokenSet(a);
  auto sb = TokenSet(b);
  if (sa.empty() || sb.empty()) return sa.empty() && sb.empty() ? 1.0 : 0.0;
  int64_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  return static_cast<double>(inter) /
         static_cast<double>(std::min(sa.size(), sb.size()));
}

double MongeElkanSimilarity(std::string_view a, std::string_view b) {
  auto ta = SplitWhitespace(a);
  auto tb = SplitWhitespace(b);
  if (ta.empty()) return tb.empty() ? 1.0 : 0.0;
  if (tb.empty()) return 0.0;
  double total = 0;
  for (const auto& x : ta) {
    double best = 0;
    for (const auto& y : tb) {
      best = std::max(best, JaroWinklerSimilarity(x, y));
    }
    total += best;
  }
  return total / static_cast<double>(ta.size());
}

double ExactMatch(std::string_view a, std::string_view b) {
  return a == b ? 1.0 : 0.0;
}

double NumericSimilarity(std::string_view a, std::string_view b) {
  float x = 0, y = 0;
  if (!ParseFloat(Strip(a), &x) || !ParseFloat(Strip(b), &y)) return 0.0;
  const double mx = std::max(std::abs(x), std::abs(y));
  if (mx == 0.0) return 1.0;
  return std::max(0.0, 1.0 - std::abs(static_cast<double>(x) - y) / mx);
}

void TfIdfCosine::Fit(const std::vector<std::string>& documents) {
  document_frequency_.clear();
  num_documents_ = static_cast<int64_t>(documents.size());
  for (const auto& doc : documents) {
    for (const auto& tok : TokenSet(doc)) ++document_frequency_[tok];
  }
}

double TfIdfCosine::Idf(const std::string& token) const {
  auto it = document_frequency_.find(token);
  const double df = it == document_frequency_.end() ? 0.0
                                                    : static_cast<double>(it->second);
  return std::log((1.0 + static_cast<double>(num_documents_)) / (1.0 + df)) + 1.0;
}

double TfIdfCosine::Similarity(std::string_view a, std::string_view b) const {
  std::unordered_map<std::string, double> va, vb;
  for (const auto& t : SplitWhitespace(a)) va[t] += 1.0;
  for (const auto& t : SplitWhitespace(b)) vb[t] += 1.0;
  if (va.empty() || vb.empty()) return va.empty() && vb.empty() ? 1.0 : 0.0;
  double dot = 0, na = 0, nb = 0;
  for (auto& [t, tf] : va) {
    tf *= Idf(t);
    na += tf * tf;
  }
  for (auto& [t, tf] : vb) {
    tf *= Idf(t);
    nb += tf * tf;
  }
  for (const auto& [t, wa] : va) {
    auto it = vb.find(t);
    if (it != vb.end()) dot += wa * it->second;
  }
  if (na == 0 || nb == 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace baselines
}  // namespace emx
