#ifndef EMX_MODELS_TRANSFORMER_H_
#define EMX_MODELS_TRANSFORMER_H_

#include <memory>

#include "models/config.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/variable.h"
#include "util/rng.h"

namespace emx {
namespace models {

/// Interface every transformer backbone in this library implements. The
/// fine-tuning classifier and the pre-training drivers only depend on this.
class TransformerModel : public nn::Module {
 public:
  ~TransformerModel() override = default;

  /// Runs the encoder and returns the final hidden states [B, T, H].
  virtual Variable EncodeBatch(const Batch& batch, bool train, Rng* rng) = 0;

  /// A sequence-level representation for classification: the hidden state
  /// at the CLS position, optionally passed through the model's pooler.
  virtual Variable PooledOutput(const Variable& hidden, bool train,
                                Rng* rng) = 0;

  /// Token-level vocabulary logits for masked-LM style objectives,
  /// flattened to [B*T, V].
  virtual Variable MlmLogits(const Variable& hidden, bool train, Rng* rng) = 0;

  /// Copy-discrimination logits [B, 2] from the pooled output — the
  /// auxiliary pre-training head that builds cross-segment comparison
  /// circuits at this reproduction's scale (see DESIGN.md). Not used at
  /// fine-tuning time (the EM head is trained fresh).
  virtual Variable PairLogits(const Variable& pooled, bool train, Rng* rng) = 0;

  /// The pre-trained copy-discrimination head (null if the architecture
  /// has none). The fine-tuning classifier warm-starts from it.
  virtual const nn::Linear* pair_head() const = 0;

  virtual const TransformerConfig& config() const = 0;

  /// Adjusts the dropout probability (fine-tuning may use a different rate
  /// than pre-training).
  virtual void set_dropout(float p) = 0;

  /// True when the backbone implements the split-encoder entry points
  /// below (per-segment prefix encoding + resume-from-layer-k). The
  /// serving engine's activation cache requires this; XLNet's two-stream
  /// relative attention does not decompose this way and reports false.
  virtual bool SupportsSplitEncode() const { return false; }

  /// Runs embeddings (with token positions starting at `position_offset`)
  /// plus encoder layers [0, split_layer) over a single-entity segment
  /// batch. The batch carries one segment per row — no cross-segment
  /// attention is possible, which is what makes the result cacheable per
  /// entity. Inference-only (no dropout). Default aborts; gate on
  /// SupportsSplitEncode().
  virtual Variable EncodeSegmentPrefix(const Batch& batch, int64_t split_layer,
                                       int64_t position_offset, Rng* rng);

  /// Resumes a forward pass at layer `split_layer`: runs layers
  /// [split_layer, L) over `hidden` [B, T, H] with the given pad mask,
  /// producing the same final hidden states EncodeBatch would from that
  /// point. Default aborts; gate on SupportsSplitEncode().
  virtual Variable EncodeFromLayer(const Variable& hidden, const Tensor& mask,
                                   int64_t split_layer, bool train, Rng* rng);

  /// Reference semantics of the split path on a *pair* batch: layers
  /// [0, split_layer) run under a segment-local (block-diagonal) attention
  /// mask derived from batch.segment_ids, layers [split_layer, L) under the
  /// ordinary pad mask. Equals EncodeBatch exactly at split_layer = 0; used
  /// for ΔF1 evaluation and as the golden path for the serving cache tests.
  /// Default aborts; gate on SupportsSplitEncode().
  virtual Variable EncodeBatchSegmentLocal(const Batch& batch,
                                           int64_t split_layer, bool train,
                                           Rng* rng);
};

/// Builds the architecture named by `config.arch` (factory used by the
/// EntityMatcher and the pre-trainer).
std::unique_ptr<TransformerModel> CreateTransformer(
    const TransformerConfig& config, Rng* rng);

}  // namespace models
}  // namespace emx

#endif  // EMX_MODELS_TRANSFORMER_H_
