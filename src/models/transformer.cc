#include "models/transformer.h"

#include "models/encoder.h"
#include "models/xlnet.h"

namespace emx {
namespace models {

std::unique_ptr<TransformerModel> CreateTransformer(
    const TransformerConfig& config, Rng* rng) {
  if (config.arch == Architecture::kXlnet) {
    return std::make_unique<XlnetModel>(config, rng);
  }
  return std::make_unique<EncoderModel>(config, rng);
}

}  // namespace models
}  // namespace emx
