#include "models/transformer.h"

#include "models/encoder.h"
#include "models/xlnet.h"
#include "util/logging.h"

namespace emx {
namespace models {

Variable TransformerModel::EncodeSegmentPrefix(const Batch&, int64_t, int64_t,
                                               Rng*) {
  EMX_CHECK(false) << ArchitectureName(config().arch)
                   << " does not support split encoding "
                      "(SupportsSplitEncode() is false)";
  return Variable();
}

Variable TransformerModel::EncodeFromLayer(const Variable&, const Tensor&,
                                           int64_t, bool, Rng*) {
  EMX_CHECK(false) << ArchitectureName(config().arch)
                   << " does not support split encoding "
                      "(SupportsSplitEncode() is false)";
  return Variable();
}

Variable TransformerModel::EncodeBatchSegmentLocal(const Batch&, int64_t, bool,
                                                   Rng*) {
  EMX_CHECK(false) << ArchitectureName(config().arch)
                   << " does not support split encoding "
                      "(SupportsSplitEncode() is false)";
  return Variable();
}

std::unique_ptr<TransformerModel> CreateTransformer(
    const TransformerConfig& config, Rng* rng) {
  if (config.arch == Architecture::kXlnet) {
    return std::make_unique<XlnetModel>(config, rng);
  }
  return std::make_unique<EncoderModel>(config, rng);
}

}  // namespace models
}  // namespace emx
