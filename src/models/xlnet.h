#ifndef EMX_MODELS_XLNET_H_
#define EMX_MODELS_XLNET_H_

#include <memory>
#include <string>
#include <vector>

#include "models/config.h"
#include "models/transformer.h"
#include "nn/attention.h"
#include "nn/layers.h"

namespace emx {
namespace models {

/// One XLNet layer: Transformer-XL relative-position multi-head attention
/// followed by a position-wise FFN, both with post-LayerNorm residuals.
///
/// Attention scores follow Dai et al.:
///   score(i,j) = (q_i + u)·k_j + (q_i + v)·r_{i-j}
/// where r is a sinusoidal encoding of the relative distance projected by
/// W_r, and u, v are learned per-dimension biases. The (q+v)·r term is
/// computed against all 2T-1 distances and re-indexed per query position
/// ("relative shift").
class XlnetLayer : public nn::Module {
 public:
  XlnetLayer(int64_t hidden, int64_t num_heads, int64_t intermediate, Rng* rng,
             float init_stddev = 0.02f);

  /// Relative-position attention with query input `q_in` ([B, T, H]) and
  /// content input `kv` ([B, T, H]); `rel` is the projected relative
  /// encoding [heads, 2T-1, dh] (from ProjectRelative). The residual is
  /// added around `q_in`.
  Variable Attend(const Variable& q_in, const Variable& kv, const Variable& rel,
                  const Tensor& mask, float dropout_p, bool train,
                  Rng* rng) const;

  /// Full layer for one stream: attention + FFN.
  Variable Forward(const Variable& q_in, const Variable& kv,
                   const Variable& rel, const Tensor& mask, float dropout_p,
                   bool train, Rng* rng) const;

  /// Projects the sinusoidal relative encodings [2T-1, H] to per-head keys
  /// [heads, 2T-1, dh].
  Variable ProjectRelative(const Variable& sinusoid) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParam>* out) override;
  void CollectQuantTargets(const std::string& prefix,
                           nn::QuantTargets* out) override;

 private:
  int64_t hidden_;
  int64_t num_heads_;
  int64_t head_dim_;
  nn::Linear wq_;
  nn::Linear wk_;
  nn::Linear wv_;
  nn::Linear wo_;
  nn::Linear wr_;        // projects relative sinusoids
  Variable u_bias_;      // [H], content bias (added to q for the AC term)
  Variable v_bias_;      // [H], position bias (added to q for the BD term)
  nn::FeedForward ffn_;
  nn::LayerNorm ln_attn_;
  nn::LayerNorm ln_ffn_;
};

/// Result of a two-stream forward pass (permutation-LM pre-training).
struct TwoStreamOutput {
  Variable content;  // h stream, [B, T, H]
  Variable query;    // g stream, [B, T, H] — predicts token content
};

/// XLNet: an autoregressive transformer with relative positional attention
/// (Transformer-XL) and a two-stream mechanism for permutation language
/// modeling. Fine-tuning uses the content stream only with a plain padding
/// mask, exactly like the other architectures.
class XlnetModel : public TransformerModel {
 public:
  XlnetModel(const TransformerConfig& config, Rng* rng);

  Variable EncodeBatch(const Batch& batch, bool train, Rng* rng) override;

  /// Two-stream pass for permutation-LM pre-training. `content_mask` and
  /// `query_mask` are [B, 1, T, T] tensors built from a sampled
  /// factorization order (1 = blocked): content allows perm-earlier-or-self,
  /// query allows strictly perm-earlier positions.
  TwoStreamOutput TwoStreamForward(const Batch& batch,
                                   const Tensor& content_mask,
                                   const Tensor& query_mask, bool train,
                                   Rng* rng);

  Variable PooledOutput(const Variable& hidden, bool train, Rng* rng) override;

  Variable MlmLogits(const Variable& hidden, bool train, Rng* rng) override;

  Variable PairLogits(const Variable& pooled, bool train, Rng* rng) override;
  const nn::Linear* pair_head() const override { return &pair_head_; }

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParam>* out) override;
  void CollectQuantTargets(const std::string& prefix,
                           nn::QuantTargets* out) override;

  const TransformerConfig& config() const override { return config_; }
  void set_dropout(float p) override { config_.dropout = p; }

  /// Sinusoidal encodings for relative distances T-1 .. -(T-1), shape
  /// [2T-1, H]; row p encodes distance (T-1) - p.
  static Tensor RelativeSinusoid(int64_t seq_len, int64_t hidden);

 private:
  TransformerConfig config_;
  nn::Embedding token_embeddings_;
  std::unique_ptr<nn::Embedding> segment_embeddings_;
  nn::LayerNorm embedding_ln_;
  Variable mask_emb_;  // [H], the g-stream initialization vector
  std::vector<std::unique_ptr<XlnetLayer>> layers_;
  std::unique_ptr<nn::Linear> pooler_;
  nn::Linear lm_transform_;
  nn::LayerNorm lm_ln_;
  nn::Linear lm_decoder_;
  nn::Linear pair_head_;
};

/// Differentiable relative shift: given scores over distances
/// bd[B, H, T, 2T-1] (row p = distance (T-1)-p), returns [B, H, T, T] with
/// out[b,h,i,j] = bd[b,h,i, (T-1) - i + j].
Variable RelativeShift(const Variable& bd, int64_t seq_len);

}  // namespace models
}  // namespace emx

#endif  // EMX_MODELS_XLNET_H_
