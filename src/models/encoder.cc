#include "models/encoder.h"

#include "tensor/autograd_ops.h"
#include "util/logging.h"

namespace emx {
namespace models {

namespace ag = autograd;

EncoderModel::EncoderModel(const TransformerConfig& config, Rng* rng)
    : config_(config),
      token_embeddings_(config.vocab_size, config.hidden, rng,
                        config.InitStddev()),
      position_embeddings_(config.max_seq_len, config.hidden, rng,
                           config.InitStddev()),
      embedding_ln_(config.hidden),
      mlm_transform_(config.hidden, config.hidden, rng, config.InitStddev()),
      mlm_ln_(config.hidden),
      mlm_decoder_(config.hidden, config.vocab_size, rng, config.InitStddev()),
      pair_head_(config.hidden, 2, rng, config.InitStddev()) {
  if (config.type_vocab_size > 0) {
    segment_embeddings_ = std::make_unique<nn::Embedding>(
        config.type_vocab_size, config.hidden, rng, config.InitStddev());
  }
  for (int64_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<nn::TransformerEncoderLayer>(
        config.hidden, config.num_heads, config.intermediate, rng,
        config.activation, config.InitStddev()));
  }
  if (config.use_pooler) {
    pooler_ = std::make_unique<nn::Linear>(config.hidden, config.hidden, rng,
                                           config.InitStddev());
  }
  if (config.use_nsp_head) {
    nsp_head_ = std::make_unique<nn::Linear>(config.hidden, 2, rng,
                                             config.InitStddev());
  }
}

Variable EncoderModel::Embed(const Batch& batch, bool train, Rng* rng,
                             int64_t position_offset) {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.seq_len;
  EMX_CHECK_GE(position_offset, 0);
  EMX_CHECK_LE(position_offset + t, config_.max_seq_len)
      << "sequence length exceeds max_seq_len";
  EMX_CHECK_EQ(static_cast<int64_t>(batch.ids.size()), b * t);

  Variable x = token_embeddings_.Forward(batch.ids, {b, t});

  std::vector<int64_t> positions(static_cast<size_t>(b * t));
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      positions[static_cast<size_t>(i * t + j)] = position_offset + j;
    }
  }
  x = ag::Add(x, position_embeddings_.Forward(positions, {b, t}));

  if (segment_embeddings_) {
    EMX_CHECK_EQ(static_cast<int64_t>(batch.segment_ids.size()), b * t);
    x = ag::Add(x, segment_embeddings_->Forward(batch.segment_ids, {b, t}));
  }
  x = embedding_ln_.Forward(x);
  return ag::Dropout(x, config_.dropout, train, rng);
}

Variable EncoderModel::EncodeBatch(const Batch& batch, bool train, Rng* rng) {
  Variable x = Embed(batch, train, rng);
  for (const auto& layer : layers_) {
    x = layer->Forward(x, batch.attention_mask, config_.dropout, train, rng);
  }
  return x;
}

Variable EncoderModel::EncodeSegmentPrefix(const Batch& batch,
                                           int64_t split_layer,
                                           int64_t position_offset, Rng* rng) {
  EMX_CHECK_GE(split_layer, 0);
  EMX_CHECK_LE(split_layer, config_.num_layers);
  // Inference-only: dropout off, so the cached prefix is deterministic.
  Variable x = Embed(batch, /*train=*/false, rng, position_offset);
  for (int64_t i = 0; i < split_layer; ++i) {
    x = layers_[static_cast<size_t>(i)]->Forward(
        x, batch.attention_mask, config_.dropout, /*train=*/false, rng);
  }
  return x;
}

Variable EncoderModel::EncodeFromLayer(const Variable& hidden,
                                       const Tensor& mask, int64_t split_layer,
                                       bool train, Rng* rng) {
  EMX_CHECK_GE(split_layer, 0);
  EMX_CHECK_LE(split_layer, config_.num_layers);
  Variable x = hidden;
  for (int64_t i = split_layer; i < config_.num_layers; ++i) {
    x = layers_[static_cast<size_t>(i)]->Forward(x, mask, config_.dropout,
                                                 train, rng);
  }
  return x;
}

Variable EncoderModel::EncodeBatchSegmentLocal(const Batch& batch,
                                               int64_t split_layer, bool train,
                                               Rng* rng) {
  EMX_CHECK_GE(split_layer, 0);
  EMX_CHECK_LE(split_layer, config_.num_layers);
  Variable x = Embed(batch, train, rng);
  if (split_layer > 0) {
    // The pad mask arrives as [B,1,1,T]; rebuild per-position flags from it
    // to form the block-diagonal segment-local mask.
    const int64_t b = batch.batch_size;
    const int64_t t = batch.seq_len;
    std::vector<float> pad(static_cast<size_t>(b * t), 0.0f);
    if (batch.attention_mask.size() > 0) {
      EMX_CHECK_EQ(batch.attention_mask.size(), b * t);
      std::copy(batch.attention_mask.data(),
                batch.attention_mask.data() + b * t, pad.begin());
    }
    Tensor local =
        Batch::MakeSegmentLocalMask(pad, batch.segment_ids, b, t);
    for (int64_t i = 0; i < split_layer; ++i) {
      x = layers_[static_cast<size_t>(i)]->Forward(x, local, config_.dropout,
                                                   train, rng);
    }
  }
  return EncodeFromLayer(x, batch.attention_mask, split_layer, train, rng);
}

Variable EncoderModel::PooledOutput(const Variable& hidden, bool train,
                                    Rng* rng) {
  Variable cls = ag::SelectTimeStep(hidden, 0);
  if (!pooler_) return ag::Dropout(cls, config_.dropout, train, rng);
  Variable pooled = ag::Tanh(pooler_->Forward(cls));
  return ag::Dropout(pooled, config_.dropout, train, rng);
}

Variable EncoderModel::MlmLogits(const Variable& hidden, bool train, Rng* rng) {
  Variable flat = ag::Reshape(hidden, {-1, config_.hidden});
  Variable h = nn::ApplyActivation(mlm_transform_.Forward(flat),
                                   config_.activation);
  h = mlm_ln_.Forward(h);
  h = ag::Dropout(h, config_.dropout, train, rng);
  return mlm_decoder_.Forward(h);
}

Variable EncoderModel::PairLogits(const Variable& pooled, bool train,
                                  Rng* rng) {
  Variable h = ag::Dropout(pooled, config_.dropout, train, rng);
  return pair_head_.Forward(h);
}

Variable EncoderModel::NspLogits(const Variable& pooled, bool train, Rng* rng) {
  EMX_CHECK(nsp_head_ != nullptr) << "NSP head disabled for this config";
  Variable h = ag::Dropout(pooled, config_.dropout, train, rng);
  return nsp_head_->Forward(h);
}

void EncoderModel::CollectParameters(const std::string& prefix,
                                     std::vector<nn::NamedParam>* out) {
  token_embeddings_.CollectParameters(nn::JoinName(prefix, "tok_emb"), out);
  position_embeddings_.CollectParameters(nn::JoinName(prefix, "pos_emb"), out);
  if (segment_embeddings_) {
    segment_embeddings_->CollectParameters(nn::JoinName(prefix, "seg_emb"), out);
  }
  embedding_ln_.CollectParameters(nn::JoinName(prefix, "emb_ln"), out);
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->CollectParameters(
        nn::JoinName(prefix, "layer" + std::to_string(i)), out);
  }
  if (pooler_) pooler_->CollectParameters(nn::JoinName(prefix, "pooler"), out);
  mlm_transform_.CollectParameters(nn::JoinName(prefix, "mlm_transform"), out);
  mlm_ln_.CollectParameters(nn::JoinName(prefix, "mlm_ln"), out);
  mlm_decoder_.CollectParameters(nn::JoinName(prefix, "mlm_decoder"), out);
  if (nsp_head_) {
    nsp_head_->CollectParameters(nn::JoinName(prefix, "nsp_head"), out);
  }
  pair_head_.CollectParameters(nn::JoinName(prefix, "pair_head"), out);
}

void EncoderModel::CollectQuantTargets(const std::string& prefix,
                                       nn::QuantTargets* out) {
  // Only the encoder stack — the layers doing per-token work. The MLM / NSP
  // heads never run at match time, and the pooler (one CLS row per pair)
  // stays fp32 with the classifier head: quantizing it saves nothing
  // measurable but injects error right before the match decision.
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->CollectQuantTargets(
        nn::JoinName(prefix, "layer" + std::to_string(i)), out);
  }
}

}  // namespace models
}  // namespace emx
