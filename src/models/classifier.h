#ifndef EMX_MODELS_CLASSIFIER_H_
#define EMX_MODELS_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "models/config.h"
#include "models/transformer.h"
#include "nn/layers.h"
#include "nn/module.h"

namespace emx {
namespace models {

/// The paper's entity-matching head (Section 5.2.2): the transformer's
/// CLS representation is fed through "a fully connected layer with 768
/// neurons plus two output neurons" — here hidden-sized — producing the
/// match / no-match logits. The head is the only part of the model that is
/// not pre-trained.
class SequencePairClassifier : public nn::Module {
 public:
  /// Takes ownership of the (typically pre-trained) backbone.
  SequencePairClassifier(std::unique_ptr<TransformerModel> backbone, Rng* rng);

  /// Match logits [B, 2] for a tokenized entity-pair batch.
  Variable Logits(const Batch& batch, bool train, Rng* rng);

  /// Match logits [B, 2] resuming from layer-`split_layer` hidden states
  /// [B, T, H] (per-entity prefixes concatenated by the serving engine's
  /// activation cache). Runs layers [split_layer, L), pooling, and the
  /// head. Requires backbone()->SupportsSplitEncode().
  Variable LogitsFromHidden(const Variable& hidden, const Tensor& mask,
                            int64_t split_layer, bool train, Rng* rng);

  /// Match logits [B, 2] with the split-encoder reference semantics:
  /// layers [0, split_layer) run segment-locally (see
  /// TransformerModel::EncodeBatchSegmentLocal). Equals Logits exactly at
  /// split_layer = 0; used for ΔF1 ladders and cache golden tests.
  Variable LogitsSplit(const Batch& batch, int64_t split_layer, bool train,
                       Rng* rng);

  /// Predicted class (0 = no match, 1 = match) per pair.
  std::vector<int64_t> Predict(const Batch& batch, Rng* rng);

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParam>* out) override;
  void CollectQuantTargets(const std::string& prefix,
                           nn::QuantTargets* out) override;

  TransformerModel* backbone() { return backbone_.get(); }
  const TransformerConfig& config() const { return backbone_->config(); }
  /// Head layers (exposed for the warm-start tests).
  const nn::Linear& dense_layer() const { return dense_; }
  const nn::Linear& out_layer() const { return out_; }

 private:
  std::unique_ptr<TransformerModel> backbone_;
  nn::Linear dense_;
  nn::Linear out_;
};

}  // namespace models
}  // namespace emx

#endif  // EMX_MODELS_CLASSIFIER_H_
