#ifndef EMX_MODELS_CONFIG_H_
#define EMX_MODELS_CONFIG_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "tensor/tensor.h"

namespace emx {
namespace models {

/// Which of the paper's four architectures a model instantiates.
enum class Architecture { kBert, kRoberta, kDistilBert, kXlnet };

/// Human-readable name ("BERT", "XLNet", ...).
const char* ArchitectureName(Architecture arch);

/// Hyper-parameters of a transformer encoder. Defaults are the laptop-scale
/// configuration this reproduction pre-trains from scratch; the paper-scale
/// values (Table 4 of the paper) are listed alongside by PaperScaleConfig.
struct TransformerConfig {
  Architecture arch = Architecture::kBert;
  int64_t vocab_size = 2000;
  int64_t hidden = 64;
  int64_t num_layers = 2;
  int64_t num_heads = 2;
  int64_t intermediate = 256;
  int64_t max_seq_len = 64;
  /// Segment (token-type) vocabulary; 0 disables segment embeddings
  /// (RoBERTa effectively ignores them; DistilBERT removes them).
  int64_t type_vocab_size = 2;
  float dropout = 0.1f;
  nn::Activation activation = nn::Activation::kGelu;
  /// Weight init stddev. BERT's 0.02 is tuned for hidden = 768; narrower
  /// models need proportionally larger init or the attention/FFN outputs
  /// are negligible against the residual stream and learning stalls
  /// (0.02 ~ 0.55/sqrt(768); this keeps the same relative scale).
  float InitStddev() const {
    return 0.55f / std::sqrt(static_cast<float>(hidden));
  }
  /// BERT has a pooler (Linear+tanh over CLS); DistilBERT removes it.
  bool use_pooler = true;
  /// BERT pre-trains with next-sentence prediction; RoBERTa drops it.
  bool use_nsp_head = true;
  /// RoBERTa masks each sample dynamically at batch time; BERT's masking
  /// is static (fixed when the pre-training data is built).
  bool dynamic_masking = false;

  /// Scaled-down config for each architecture, mirroring the relative
  /// differences of the originals (DistilBERT = half the layers of BERT,
  /// XLNet = same depth as BERT but with the heavier relative-attention
  /// machinery, RoBERTa = BERT body without NSP, with dynamic masking).
  static TransformerConfig Scaled(Architecture arch, int64_t vocab_size);
};

/// One row of the paper's Table 4 (the original pre-trained models).
struct PaperScaleEntry {
  const char* name;
  int64_t layers;
  int64_t hidden;
  int64_t heads;
  const char* params;
  const char* details;
};

/// The four pre-trained models the paper used (Table 4).
std::vector<PaperScaleEntry> PaperScaleConfigs();

/// A tokenized batch ready for a transformer forward pass. `ids` and
/// `segment_ids` are row-major [B, T] flattened; `attention_mask` is a
/// [B, 1, 1, T] tensor with 1.0 marking padding (blocked) positions.
struct Batch {
  int64_t batch_size = 0;
  int64_t seq_len = 0;
  std::vector<int64_t> ids;
  std::vector<int64_t> segment_ids;
  Tensor attention_mask;

  /// Builds the [B,1,1,T] mask tensor from per-position pad flags.
  static Tensor MakeMask(const std::vector<float>& flat_mask, int64_t b,
                         int64_t t);

  /// Builds the block-diagonal [B,1,T,T] mask for segment-local attention:
  /// query position i may only attend to key position j when both are real
  /// (pad flag 0) and carry the same segment id. The fused attention kernel
  /// broadcasts the singleton head axis; 1.0 marks blocked entries, matching
  /// MakeMask's convention.
  static Tensor MakeSegmentLocalMask(const std::vector<float>& flat_mask,
                                     const std::vector<int64_t>& segment_ids,
                                     int64_t b, int64_t t);
};

}  // namespace models
}  // namespace emx

#endif  // EMX_MODELS_CONFIG_H_
