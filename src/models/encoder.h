#ifndef EMX_MODELS_ENCODER_H_
#define EMX_MODELS_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "models/config.h"
#include "models/transformer.h"
#include "nn/attention.h"
#include "nn/layers.h"

namespace emx {
namespace models {

/// The BERT-family encoder covering three of the paper's architectures:
///
/// - BERT: token + learned-position + segment embeddings, post-LN encoder
///   stack, CLS pooler (Linear+tanh), MLM and NSP heads.
/// - RoBERTa: identical body configured without segment embeddings and
///   without the NSP head (cfg.type_vocab_size = 0, cfg.use_nsp_head =
///   false); dynamic masking is a property of the pre-training driver.
/// - DistilBERT: half the layers, no segment embeddings, no pooler.
///
/// The architectural switches live in TransformerConfig so the paper's
/// "BERT and friends" really are one body with the documented deltas.
class EncoderModel : public TransformerModel {
 public:
  EncoderModel(const TransformerConfig& config, Rng* rng);

  Variable EncodeBatch(const Batch& batch, bool train, Rng* rng) override;

  Variable PooledOutput(const Variable& hidden, bool train, Rng* rng) override;

  Variable MlmLogits(const Variable& hidden, bool train, Rng* rng) override;

  /// Next-sentence-prediction logits [B, 2] from the pooled output.
  /// Pre-condition: config().use_nsp_head.
  Variable NspLogits(const Variable& pooled, bool train, Rng* rng);

  Variable PairLogits(const Variable& pooled, bool train, Rng* rng) override;
  const nn::Linear* pair_head() const override { return &pair_head_; }

  void CollectParameters(const std::string& prefix,
                         std::vector<nn::NamedParam>* out) override;
  void CollectQuantTargets(const std::string& prefix,
                           nn::QuantTargets* out) override;

  const TransformerConfig& config() const override { return config_; }
  void set_dropout(float p) override { config_.dropout = p; }

  /// Embedding sum (token [+ position] [+ segment]) then LN + dropout;
  /// exposed for the distillation trainer. `position_offset` shifts the
  /// learned position ids (row j embeds position `position_offset + j`) so
  /// a segment encoded in isolation lands on the same absolute positions it
  /// would occupy inside a concatenated pair.
  Variable Embed(const Batch& batch, bool train, Rng* rng,
                 int64_t position_offset = 0);

  /// Split-encoder entry points (see TransformerModel): embeddings are
  /// per-token and layers [0, k) see only same-segment keys, so per-entity
  /// prefixes computed here concatenate into exactly the hidden states the
  /// segment-local pair forward produces — and at k = 0 into the ordinary
  /// EncodeBatch states bit-for-bit.
  bool SupportsSplitEncode() const override { return true; }
  Variable EncodeSegmentPrefix(const Batch& batch, int64_t split_layer,
                               int64_t position_offset, Rng* rng) override;
  Variable EncodeFromLayer(const Variable& hidden, const Tensor& mask,
                           int64_t split_layer, bool train, Rng* rng) override;
  Variable EncodeBatchSegmentLocal(const Batch& batch, int64_t split_layer,
                                   bool train, Rng* rng) override;

 private:
  TransformerConfig config_;
  nn::Embedding token_embeddings_;
  nn::Embedding position_embeddings_;
  std::unique_ptr<nn::Embedding> segment_embeddings_;  // null when disabled
  nn::LayerNorm embedding_ln_;
  std::vector<std::unique_ptr<nn::TransformerEncoderLayer>> layers_;
  std::unique_ptr<nn::Linear> pooler_;  // null when disabled
  // MLM head: transform (Linear + activation + LN) then decode to vocab.
  nn::Linear mlm_transform_;
  nn::LayerNorm mlm_ln_;
  nn::Linear mlm_decoder_;
  std::unique_ptr<nn::Linear> nsp_head_;  // null when disabled
  nn::Linear pair_head_;
};

}  // namespace models
}  // namespace emx

#endif  // EMX_MODELS_ENCODER_H_
