#include "models/xlnet.h"

#include <cmath>

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace emx {
namespace models {

namespace ag = autograd;

Variable RelativeShift(const Variable& bd, int64_t seq_len) {
  const int64_t b = bd.dim(0);
  const int64_t h = bd.dim(1);
  const int64_t t = bd.dim(2);
  const int64_t l = bd.dim(3);
  EMX_CHECK_EQ(t, seq_len);
  EMX_CHECK_EQ(l, 2 * seq_len - 1);

  // Forward: gather out[b,h,i,j] = bd[b,h,i, t-1-i+j].
  Tensor out_value({b, h, t, t});
  {
    const float* src = bd.value().data();
    float* dst = out_value.data();
    for (int64_t bi = 0; bi < b * h; ++bi) {
      const float* s = src + bi * t * l;
      float* d = dst + bi * t * t;
      for (int64_t i = 0; i < t; ++i) {
        for (int64_t j = 0; j < t; ++j) {
          d[i * t + j] = s[i * l + (t - 1 - i + j)];
        }
      }
    }
  }
  const Shape in_shape = bd.value().shape();
  return Variable::MakeOpResult(
      std::move(out_value), {bd}, [bd, in_shape, b, h, t, l](const Tensor& g) {
        if (!bd.requires_grad()) return;
        Tensor dx(in_shape);
        const float* gs = g.data();
        float* dd = dx.data();
        for (int64_t bi = 0; bi < b * h; ++bi) {
          const float* gg = gs + bi * t * t;
          float* d = dd + bi * t * l;
          for (int64_t i = 0; i < t; ++i) {
            for (int64_t j = 0; j < t; ++j) {
              d[i * l + (t - 1 - i + j)] += gg[i * t + j];
            }
          }
        }
        bd.node()->EnsureGrad().AddInPlace(dx);
      });
}

XlnetLayer::XlnetLayer(int64_t hidden, int64_t num_heads, int64_t intermediate,
                       Rng* rng, float init_stddev)
    : hidden_(hidden),
      num_heads_(num_heads),
      head_dim_(hidden / num_heads),
      wq_(hidden, hidden, rng, init_stddev),
      wk_(hidden, hidden, rng, init_stddev),
      wv_(hidden, hidden, rng, init_stddev),
      wo_(hidden, hidden, rng, init_stddev),
      wr_(hidden, hidden, rng, init_stddev),
      u_bias_(Variable::Parameter(Tensor::Randn({hidden}, rng, init_stddev))),
      v_bias_(Variable::Parameter(Tensor::Randn({hidden}, rng, init_stddev))),
      ffn_(hidden, intermediate, rng, nn::Activation::kGelu, init_stddev),
      ln_attn_(hidden),
      ln_ffn_(hidden) {
  EMX_CHECK_EQ(head_dim_ * num_heads_, hidden_);
}

Variable XlnetLayer::ProjectRelative(const Variable& sinusoid) const {
  // sinusoid: [L, H] -> project -> [L, H] -> [L, heads, dh] -> [heads, L, dh].
  Variable r = wr_.Forward(sinusoid);
  const int64_t l = sinusoid.dim(0);
  r = ag::Reshape(r, {l, num_heads_, head_dim_});
  return ag::Permute(r, {1, 0, 2});
}

Variable XlnetLayer::Attend(const Variable& q_in, const Variable& kv,
                            const Variable& rel, const Tensor& mask,
                            float dropout_p, bool train, Rng* rng) const {
  const int64_t b = q_in.dim(0);
  const int64_t t = q_in.dim(1);

  Variable qh = wq_.Forward(q_in);  // [B, T, H]
  Variable q_u = ag::AddBias(qh, u_bias_);
  Variable q_v = ag::AddBias(qh, v_bias_);

  auto split = [&](const Variable& x) {
    Variable r = ag::Reshape(x, {b, t, num_heads_, head_dim_});
    return ag::Permute(r, {0, 2, 1, 3});  // [B, heads, T, dh]
  };

  Variable k = split(wk_.Forward(kv));
  Variable v = split(wv_.Forward(kv));
  Variable qu = split(q_u);
  Variable qv = split(q_v);

  // Content term AC = (q+u) k^T: [B, heads, T, T].
  Variable ac = ag::MatMul(qu, k, false, true);

  // Position term BD = (q+v) r^T over all 2T-1 distances, then shifted.
  // qv: [B, heads, T, dh] -> [heads, B*T, dh]; rel: [heads, L, dh].
  Variable qv_h = ag::Permute(qv, {1, 0, 2, 3});           // [heads, B, T, dh]
  qv_h = ag::Reshape(qv_h, {num_heads_, b * t, head_dim_});
  Variable bd_flat = ag::MatMul(qv_h, rel, false, true);   // [heads, B*T, L]
  const int64_t l = rel.dim(1);
  Variable bd = ag::Reshape(bd_flat, {num_heads_, b, t, l});
  bd = ag::Permute(bd, {1, 0, 2, 3});                      // [B, heads, T, L]
  bd = RelativeShift(bd, t);                               // [B, heads, T, T]

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Variable scores = ag::MulScalar(ag::Add(ac, bd), scale);

  Variable probs = mask.size() > 0 ? ag::MaskedSoftmax(scores, mask)
                                   : ag::Softmax(scores);
  probs = ag::Dropout(probs, dropout_p, train, rng);

  Variable context = ag::MatMul(probs, v);  // [B, heads, T, dh]
  context = ag::Permute(context, {0, 2, 1, 3});
  context = ag::Reshape(context, {b, t, hidden_});
  return wo_.Forward(context);
}

Variable XlnetLayer::Forward(const Variable& q_in, const Variable& kv,
                             const Variable& rel, const Tensor& mask,
                             float dropout_p, bool train, Rng* rng) const {
  Variable attn = Attend(q_in, kv, rel, mask, dropout_p, train, rng);
  attn = ag::Dropout(attn, dropout_p, train, rng);
  Variable h = ln_attn_.Forward(ag::Add(q_in, attn));
  Variable f = ffn_.Forward(h, dropout_p, train, rng);
  f = ag::Dropout(f, dropout_p, train, rng);
  return ln_ffn_.Forward(ag::Add(h, f));
}

void XlnetLayer::CollectParameters(const std::string& prefix,
                                   std::vector<nn::NamedParam>* out) {
  wq_.CollectParameters(nn::JoinName(prefix, "wq"), out);
  wk_.CollectParameters(nn::JoinName(prefix, "wk"), out);
  wv_.CollectParameters(nn::JoinName(prefix, "wv"), out);
  wo_.CollectParameters(nn::JoinName(prefix, "wo"), out);
  wr_.CollectParameters(nn::JoinName(prefix, "wr"), out);
  out->push_back({nn::JoinName(prefix, "u_bias"), u_bias_});
  out->push_back({nn::JoinName(prefix, "v_bias"), v_bias_});
  ffn_.CollectParameters(nn::JoinName(prefix, "ffn"), out);
  ln_attn_.CollectParameters(nn::JoinName(prefix, "ln_attn"), out);
  ln_ffn_.CollectParameters(nn::JoinName(prefix, "ln_ffn"), out);
}

void XlnetLayer::CollectQuantTargets(const std::string& prefix,
                                     nn::QuantTargets* out) {
  // wr_ projects the relative sinusoids, which are input-independent — it
  // runs once per sequence length, not per token, so it stays fp32.
  wq_.CollectQuantTargets(nn::JoinName(prefix, "wq"), out);
  wk_.CollectQuantTargets(nn::JoinName(prefix, "wk"), out);
  wv_.CollectQuantTargets(nn::JoinName(prefix, "wv"), out);
  wo_.CollectQuantTargets(nn::JoinName(prefix, "wo"), out);
  ffn_.CollectQuantTargets(nn::JoinName(prefix, "ffn"), out);
}

Tensor XlnetModel::RelativeSinusoid(int64_t seq_len, int64_t hidden) {
  const int64_t l = 2 * seq_len - 1;
  Tensor out({l, hidden});
  for (int64_t p = 0; p < l; ++p) {
    const double dist = static_cast<double>(seq_len - 1 - p);
    for (int64_t i = 0; i < hidden; i += 2) {
      const double freq =
          std::pow(10000.0, -static_cast<double>(i) / static_cast<double>(hidden));
      out.At({p, i}) = static_cast<float>(std::sin(dist * freq));
      if (i + 1 < hidden) {
        out.At({p, i + 1}) = static_cast<float>(std::cos(dist * freq));
      }
    }
  }
  return out;
}

XlnetModel::XlnetModel(const TransformerConfig& config, Rng* rng)
    : config_(config),
      token_embeddings_(config.vocab_size, config.hidden, rng,
                        config.InitStddev()),
      embedding_ln_(config.hidden),
      mask_emb_(Variable::Parameter(
          Tensor::Randn({config.hidden}, rng, config.InitStddev()))),
      lm_transform_(config.hidden, config.hidden, rng, config.InitStddev()),
      lm_ln_(config.hidden),
      lm_decoder_(config.hidden, config.vocab_size, rng, config.InitStddev()),
      pair_head_(config.hidden, 2, rng, config.InitStddev()) {
  if (config.type_vocab_size > 0) {
    segment_embeddings_ = std::make_unique<nn::Embedding>(
        config.type_vocab_size, config.hidden, rng, config.InitStddev());
  }
  for (int64_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<XlnetLayer>(
        config.hidden, config.num_heads, config.intermediate, rng,
        config.InitStddev()));
  }
  if (config.use_pooler) {
    pooler_ = std::make_unique<nn::Linear>(config.hidden, config.hidden, rng,
                                           config.InitStddev());
  }
}

Variable XlnetModel::EncodeBatch(const Batch& batch, bool train, Rng* rng) {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.seq_len;
  Variable x = token_embeddings_.Forward(batch.ids, {b, t});
  if (segment_embeddings_) {
    x = ag::Add(x, segment_embeddings_->Forward(batch.segment_ids, {b, t}));
  }
  x = embedding_ln_.Forward(x);
  x = ag::Dropout(x, config_.dropout, train, rng);

  Variable sinusoid =
      Variable::Constant(RelativeSinusoid(t, config_.hidden));
  for (const auto& layer : layers_) {
    Variable rel = layer->ProjectRelative(sinusoid);
    x = layer->Forward(x, x, rel, batch.attention_mask, config_.dropout, train,
                       rng);
  }
  return x;
}

TwoStreamOutput XlnetModel::TwoStreamForward(const Batch& batch,
                                             const Tensor& content_mask,
                                             const Tensor& query_mask,
                                             bool train, Rng* rng) {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.seq_len;
  Variable h = token_embeddings_.Forward(batch.ids, {b, t});
  if (segment_embeddings_) {
    h = ag::Add(h, segment_embeddings_->Forward(batch.segment_ids, {b, t}));
  }
  h = embedding_ln_.Forward(h);
  h = ag::Dropout(h, config_.dropout, train, rng);

  // The query stream starts from the learned mask embedding at every
  // position (it must not see its own content).
  Variable zeros = Variable::Constant(Tensor::Zeros({b, t, config_.hidden}));
  Variable g = ag::AddBias(zeros, mask_emb_);

  Variable sinusoid = Variable::Constant(RelativeSinusoid(t, config_.hidden));
  for (const auto& layer : layers_) {
    Variable rel = layer->ProjectRelative(sinusoid);
    // Query stream attends to the *current* content stream.
    Variable g_next =
        layer->Forward(g, h, rel, query_mask, config_.dropout, train, rng);
    Variable h_next =
        layer->Forward(h, h, rel, content_mask, config_.dropout, train, rng);
    g = g_next;
    h = h_next;
  }
  return {h, g};
}

Variable XlnetModel::PooledOutput(const Variable& hidden, bool train,
                                  Rng* rng) {
  Variable cls = ag::SelectTimeStep(hidden, 0);
  if (!pooler_) return ag::Dropout(cls, config_.dropout, train, rng);
  Variable pooled = ag::Tanh(pooler_->Forward(cls));
  return ag::Dropout(pooled, config_.dropout, train, rng);
}

Variable XlnetModel::MlmLogits(const Variable& hidden, bool train, Rng* rng) {
  Variable flat = ag::Reshape(hidden, {-1, config_.hidden});
  Variable h = nn::ApplyActivation(lm_transform_.Forward(flat),
                                   config_.activation);
  h = lm_ln_.Forward(h);
  h = ag::Dropout(h, config_.dropout, train, rng);
  return lm_decoder_.Forward(h);
}

Variable XlnetModel::PairLogits(const Variable& pooled, bool train, Rng* rng) {
  Variable h = ag::Dropout(pooled, config_.dropout, train, rng);
  return pair_head_.Forward(h);
}

void XlnetModel::CollectParameters(const std::string& prefix,
                                   std::vector<nn::NamedParam>* out) {
  token_embeddings_.CollectParameters(nn::JoinName(prefix, "tok_emb"), out);
  if (segment_embeddings_) {
    segment_embeddings_->CollectParameters(nn::JoinName(prefix, "seg_emb"), out);
  }
  embedding_ln_.CollectParameters(nn::JoinName(prefix, "emb_ln"), out);
  out->push_back({nn::JoinName(prefix, "mask_emb"), mask_emb_});
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->CollectParameters(
        nn::JoinName(prefix, "layer" + std::to_string(i)), out);
  }
  if (pooler_) pooler_->CollectParameters(nn::JoinName(prefix, "pooler"), out);
  lm_transform_.CollectParameters(nn::JoinName(prefix, "lm_transform"), out);
  lm_ln_.CollectParameters(nn::JoinName(prefix, "lm_ln"), out);
  lm_decoder_.CollectParameters(nn::JoinName(prefix, "lm_decoder"), out);
  pair_head_.CollectParameters(nn::JoinName(prefix, "pair_head"), out);
}

void XlnetModel::CollectQuantTargets(const std::string& prefix,
                                     nn::QuantTargets* out) {
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->CollectQuantTargets(
        nn::JoinName(prefix, "layer" + std::to_string(i)), out);
  }
  if (pooler_) {
    pooler_->CollectQuantTargets(nn::JoinName(prefix, "pooler"), out);
  }
}

}  // namespace models
}  // namespace emx
