#include "models/classifier.h"

#include <cmath>

#include "tensor/autograd_ops.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"

namespace emx {
namespace models {

namespace ag = autograd;

SequencePairClassifier::SequencePairClassifier(
    std::unique_ptr<TransformerModel> backbone, Rng* rng)
    : backbone_(std::move(backbone)),
      // The head is not pre-trained; Xavier-scale init avoids the flat
      // near-zero-logit region that tiny transformer-style init creates.
      dense_(backbone_->config().hidden, backbone_->config().hidden, rng,
             1.0f / std::sqrt(static_cast<float>(backbone_->config().hidden))),
      out_(backbone_->config().hidden, 2, rng,
           1.0f / std::sqrt(static_cast<float>(backbone_->config().hidden))) {
  // Warm start: when the backbone carries a pre-trained pair
  // (copy-discrimination) head, seed the classification head from it —
  // dense_ as a noisy identity so tanh(dense(x)) ~ x, out_ as a copy of
  // the pair head. This is why the paper's models score well after a
  // single epoch: the comparison head is substantially pre-built.
  const nn::Linear* pretrained = backbone_->pair_head();
  if (pretrained != nullptr) {
    const int64_t h = backbone_->config().hidden;
    Tensor& dw = dense_.Parameters()[0].var.mutable_value();
    dw.ScaleInPlace(0.1f);  // noise well below the identity diagonal
    for (int64_t i = 0; i < h; ++i) dw[i * h + i] += 1.0f;
    const Tensor& src_w = pretrained->weight().value();
    const Tensor& src_b = pretrained->bias().value();
    Tensor& ow = out_.Parameters()[0].var.mutable_value();
    Tensor& ob = out_.Parameters()[1].var.mutable_value();
    std::copy(src_w.data(), src_w.data() + src_w.size(), ow.data());
    std::copy(src_b.data(), src_b.data() + src_b.size(), ob.data());
  }
}

Variable SequencePairClassifier::Logits(const Batch& batch, bool train,
                                        Rng* rng) {
  Variable hidden = backbone_->EncodeBatch(batch, train, rng);
  Variable pooled = backbone_->PooledOutput(hidden, train, rng);
  Variable h = ag::Tanh(dense_.Forward(pooled));
  h = ag::Dropout(h, backbone_->config().dropout, train, rng);
  return out_.Forward(h);
}

Variable SequencePairClassifier::LogitsFromHidden(const Variable& hidden,
                                                  const Tensor& mask,
                                                  int64_t split_layer,
                                                  bool train, Rng* rng) {
  Variable full =
      backbone_->EncodeFromLayer(hidden, mask, split_layer, train, rng);
  Variable pooled = backbone_->PooledOutput(full, train, rng);
  Variable h = ag::Tanh(dense_.Forward(pooled));
  h = ag::Dropout(h, backbone_->config().dropout, train, rng);
  return out_.Forward(h);
}

Variable SequencePairClassifier::LogitsSplit(const Batch& batch,
                                             int64_t split_layer, bool train,
                                             Rng* rng) {
  Variable hidden =
      backbone_->EncodeBatchSegmentLocal(batch, split_layer, train, rng);
  Variable pooled = backbone_->PooledOutput(hidden, train, rng);
  Variable h = ag::Tanh(dense_.Forward(pooled));
  h = ag::Dropout(h, backbone_->config().dropout, train, rng);
  return out_.Forward(h);
}

std::vector<int64_t> SequencePairClassifier::Predict(const Batch& batch,
                                                     Rng* rng) {
  NoGradGuard no_grad;  // prediction never back-propagates
  Variable logits = Logits(batch, /*train=*/false, rng);
  return ops::ArgMaxLastAxis(logits.value());
}

void SequencePairClassifier::CollectParameters(
    const std::string& prefix, std::vector<nn::NamedParam>* out) {
  backbone_->CollectParameters(nn::JoinName(prefix, "backbone"), out);
  dense_.CollectParameters(nn::JoinName(prefix, "cls_dense"), out);
  out_.CollectParameters(nn::JoinName(prefix, "cls_out"), out);
}

void SequencePairClassifier::CollectQuantTargets(const std::string& prefix,
                                                 nn::QuantTargets* out) {
  backbone_->CollectQuantTargets(nn::JoinName(prefix, "backbone"), out);
  // The head (cls_dense + out_) stays fp32. Both run once per PAIR — a few
  // thousand MACs against the backbone's per-TOKEN millions — so quantizing
  // them buys no measurable throughput, while their error lands directly on
  // the logits where a fraction of a step flips borderline matches.
}

}  // namespace models
}  // namespace emx
