#include "models/config.h"

#include "util/logging.h"

namespace emx {
namespace models {

const char* ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kBert:
      return "BERT";
    case Architecture::kRoberta:
      return "RoBERTa";
    case Architecture::kDistilBert:
      return "DistilBERT";
    case Architecture::kXlnet:
      return "XLNet";
  }
  return "?";
}

TransformerConfig TransformerConfig::Scaled(Architecture arch,
                                            int64_t vocab_size) {
  TransformerConfig cfg;
  cfg.arch = arch;
  cfg.vocab_size = vocab_size;
  cfg.hidden = 64;
  cfg.num_heads = 2;
  cfg.intermediate = 256;
  cfg.max_seq_len = 64;
  switch (arch) {
    case Architecture::kBert:
      cfg.num_layers = 2;
      cfg.use_pooler = true;
      cfg.use_nsp_head = true;
      cfg.dynamic_masking = false;
      break;
    case Architecture::kRoberta:
      cfg.num_layers = 2;
      cfg.use_pooler = true;
      cfg.use_nsp_head = false;      // RoBERTa drops NSP
      cfg.dynamic_masking = true;    // and masks dynamically
      cfg.type_vocab_size = 0;       // no token-type embeddings
      break;
    case Architecture::kDistilBert:
      cfg.num_layers = 1;            // half of BERT
      cfg.use_pooler = false;        // pooler removed
      cfg.use_nsp_head = false;
      cfg.type_vocab_size = 0;       // token-type embeddings removed
      cfg.dynamic_masking = false;
      break;
    case Architecture::kXlnet:
      cfg.num_layers = 2;
      cfg.use_pooler = true;
      cfg.use_nsp_head = false;
      cfg.dynamic_masking = false;
      break;
  }
  return cfg;
}

std::vector<PaperScaleEntry> PaperScaleConfigs() {
  return {
      {"BERT", 12, 768, 12, "110M",
       "BERT-base model, trained on lower-cased English text"},
      {"XLNet", 12, 768, 12, "110M", "XLNet English model"},
      {"RoBERTa", 12, 768, 12, "125M", "RoBERTa using the BERT-base architecture"},
      {"DistilBERT", 6, 768, 12, "66M", "distilled from the BERT-base model"},
  };
}

Tensor Batch::MakeMask(const std::vector<float>& flat_mask, int64_t b,
                       int64_t t) {
  EMX_CHECK_EQ(static_cast<int64_t>(flat_mask.size()), b * t);
  Tensor mask({b, 1, 1, t});
  std::copy(flat_mask.begin(), flat_mask.end(), mask.data());
  return mask;
}

Tensor Batch::MakeSegmentLocalMask(const std::vector<float>& flat_mask,
                                   const std::vector<int64_t>& segment_ids,
                                   int64_t b, int64_t t) {
  EMX_CHECK_EQ(static_cast<int64_t>(flat_mask.size()), b * t);
  EMX_CHECK_EQ(static_cast<int64_t>(segment_ids.size()), b * t);
  Tensor mask = Tensor::Zeros({b, 1, t, t});
  float* out = mask.data();
  for (int64_t r = 0; r < b; ++r) {
    const float* pad = flat_mask.data() + r * t;
    const int64_t* seg = segment_ids.data() + r * t;
    float* row = out + r * t * t;
    for (int64_t i = 0; i < t; ++i) {
      for (int64_t j = 0; j < t; ++j) {
        const bool blocked =
            pad[i] != 0.0f || pad[j] != 0.0f || seg[i] != seg[j];
        row[i * t + j] = blocked ? 1.0f : 0.0f;
      }
    }
  }
  return mask;
}

}  // namespace models
}  // namespace emx
