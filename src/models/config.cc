#include "models/config.h"

#include "util/logging.h"

namespace emx {
namespace models {

const char* ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kBert:
      return "BERT";
    case Architecture::kRoberta:
      return "RoBERTa";
    case Architecture::kDistilBert:
      return "DistilBERT";
    case Architecture::kXlnet:
      return "XLNet";
  }
  return "?";
}

TransformerConfig TransformerConfig::Scaled(Architecture arch,
                                            int64_t vocab_size) {
  TransformerConfig cfg;
  cfg.arch = arch;
  cfg.vocab_size = vocab_size;
  cfg.hidden = 64;
  cfg.num_heads = 2;
  cfg.intermediate = 256;
  cfg.max_seq_len = 64;
  switch (arch) {
    case Architecture::kBert:
      cfg.num_layers = 2;
      cfg.use_pooler = true;
      cfg.use_nsp_head = true;
      cfg.dynamic_masking = false;
      break;
    case Architecture::kRoberta:
      cfg.num_layers = 2;
      cfg.use_pooler = true;
      cfg.use_nsp_head = false;      // RoBERTa drops NSP
      cfg.dynamic_masking = true;    // and masks dynamically
      cfg.type_vocab_size = 0;       // no token-type embeddings
      break;
    case Architecture::kDistilBert:
      cfg.num_layers = 1;            // half of BERT
      cfg.use_pooler = false;        // pooler removed
      cfg.use_nsp_head = false;
      cfg.type_vocab_size = 0;       // token-type embeddings removed
      cfg.dynamic_masking = false;
      break;
    case Architecture::kXlnet:
      cfg.num_layers = 2;
      cfg.use_pooler = true;
      cfg.use_nsp_head = false;
      cfg.dynamic_masking = false;
      break;
  }
  return cfg;
}

std::vector<PaperScaleEntry> PaperScaleConfigs() {
  return {
      {"BERT", 12, 768, 12, "110M",
       "BERT-base model, trained on lower-cased English text"},
      {"XLNet", 12, 768, 12, "110M", "XLNet English model"},
      {"RoBERTa", 12, 768, 12, "125M", "RoBERTa using the BERT-base architecture"},
      {"DistilBERT", 6, 768, 12, "66M", "distilled from the BERT-base model"},
  };
}

Tensor Batch::MakeMask(const std::vector<float>& flat_mask, int64_t b,
                       int64_t t) {
  EMX_CHECK_EQ(static_cast<int64_t>(flat_mask.size()), b * t);
  Tensor mask({b, 1, 1, t});
  std::copy(flat_mask.begin(), flat_mask.end(), mask.data());
  return mask;
}

}  // namespace models
}  // namespace emx
