#include "nn/layers.h"

#include "util/logging.h"

namespace emx {
namespace nn {

namespace ag = autograd;

namespace {
thread_local bool g_quant_mode_enabled = true;
}  // namespace

bool QuantMode::IsEnabled() { return g_quant_mode_enabled; }
void QuantMode::SetEnabled(bool enabled) { g_quant_mode_enabled = enabled; }

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng,
               float init_stddev)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Variable::Parameter(
          Tensor::Randn({in_features, out_features}, rng, init_stddev))),
      bias_(Variable::Parameter(Tensor::Zeros({out_features}))) {}

Variable Linear::Forward(const Variable& x) const {
  const Shape& in_shape = x.shape();
  EMX_CHECK_EQ(in_shape.back(), in_features_)
      << "Linear: input last dim " << in_shape.back() << " != in_features "
      << in_features_;
  Shape out_shape(in_shape.begin(), in_shape.end() - 1);
  out_shape.push_back(out_features_);

  // Backend routing is inference-only: training forwards (tape on) always
  // take the fp32 path below, so the autograd graph never sees the backend.
  const bool inference = backend_ != nullptr && !GradMode::IsEnabled();
  if (inference && backend_->ready() && QuantMode::IsEnabled()) {
    Tensor x2d = x.value().Reshape({-1, in_features_});
    return Variable::Constant(backend_->Forward(x2d).Reshape(out_shape));
  }
  const bool calibrating = inference && !backend_->ready();
  if (calibrating) {
    backend_->ObserveInput(x.value().Reshape({-1, in_features_}));
  }

  Variable y;
  if (x.value().ndim() == 2) {
    y = ag::AddBias(ag::MatMul(x, weight_), bias_);
  } else {
    // Flatten leading dims, multiply, restore.
    Variable flat = ag::Reshape(x, {-1, in_features_});
    y = ag::Reshape(ag::AddBias(ag::MatMul(flat, weight_), bias_), out_shape);
  }
  if (calibrating) {
    backend_->ObserveOutput(y.value().Reshape({-1, out_features_}));
  }
  return y;
}

void Linear::CollectParameters(const std::string& prefix,
                               std::vector<NamedParam>* out) {
  out->push_back({JoinName(prefix, "weight"), weight_});
  out->push_back({JoinName(prefix, "bias"), bias_});
}

void Linear::CollectQuantTargets(const std::string& prefix,
                                 QuantTargets* out) {
  out->linears.emplace_back(prefix, this);
}

Embedding::Embedding(int64_t num_embeddings, int64_t dim, Rng* rng,
                     float init_stddev)
    : num_embeddings_(num_embeddings),
      dim_(dim),
      table_(Variable::Parameter(
          Tensor::Randn({num_embeddings, dim}, rng, init_stddev))) {}

Variable Embedding::Forward(const std::vector<int64_t>& ids,
                            Shape out_shape) const {
  EMX_CHECK_EQ(NumElements(out_shape), static_cast<int64_t>(ids.size()));
  Variable flat = ag::EmbeddingLookup(table_, ids);
  out_shape.push_back(dim_);
  return ag::Reshape(flat, out_shape);
}

void Embedding::CollectParameters(const std::string& prefix,
                                  std::vector<NamedParam>* out) {
  out->push_back({JoinName(prefix, "table"), table_});
}

LayerNorm::LayerNorm(int64_t dim, float eps)
    : dim_(dim),
      eps_(eps),
      gamma_(Variable::Parameter(Tensor::Ones({dim}))),
      beta_(Variable::Parameter(Tensor::Zeros({dim}))) {}

Variable LayerNorm::Forward(const Variable& x) const {
  EMX_CHECK_EQ(x.shape().back(), dim_);
  return ag::LayerNorm(x, gamma_, beta_, eps_);
}

void LayerNorm::CollectParameters(const std::string& prefix,
                                  std::vector<NamedParam>* out) {
  out->push_back({JoinName(prefix, "gamma"), gamma_});
  out->push_back({JoinName(prefix, "beta"), beta_});
}

Variable ApplyActivation(const Variable& x, Activation activation) {
  switch (activation) {
    case Activation::kGelu:
      return ag::Gelu(x);
    case Activation::kRelu:
      return ag::Relu(x);
    case Activation::kTanh:
      return ag::Tanh(x);
  }
  EMX_CHECK(false) << "unknown activation";
  return x;
}

FeedForward::FeedForward(int64_t hidden, int64_t intermediate, Rng* rng,
                         Activation activation, float init_stddev)
    : fc1_(hidden, intermediate, rng, init_stddev),
      fc2_(intermediate, hidden, rng, init_stddev),
      activation_(activation) {}

Variable FeedForward::Forward(const Variable& x, float dropout_p, bool train,
                              Rng* rng) const {
  if (backend_ != nullptr && backend_->ready() && !GradMode::IsEnabled() &&
      QuantMode::IsEnabled()) {
    // Fused inference path for the whole block. Dropout is identity at
    // inference, so skipping it loses nothing.
    const Shape& in_shape = x.shape();
    Tensor x2d = x.value().Reshape({-1, in_shape.back()});
    return Variable::Constant(backend_->Forward(x2d).Reshape(in_shape));
  }
  Variable h = ApplyActivation(fc1_.Forward(x), activation_);
  h = ag::Dropout(h, dropout_p, train, rng);
  return fc2_.Forward(h);
}

void FeedForward::CollectParameters(const std::string& prefix,
                                    std::vector<NamedParam>* out) {
  fc1_.CollectParameters(JoinName(prefix, "fc1"), out);
  fc2_.CollectParameters(JoinName(prefix, "fc2"), out);
}

void FeedForward::CollectQuantTargets(const std::string& prefix,
                                      QuantTargets* out) {
  out->ffns.emplace_back(prefix, this);
}

}  // namespace nn
}  // namespace emx
