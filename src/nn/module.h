#ifndef EMX_NN_MODULE_H_
#define EMX_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "io/emxm.h"
#include "tensor/variable.h"
#include "util/status.h"

namespace emx {
namespace nn {

class Linear;
class FeedForward;

/// A named trainable parameter. The Variable is a shared handle, so copies
/// refer to the same underlying storage and gradient.
struct NamedParam {
  std::string name;
  Variable var;
};

/// The quantizable layers of a module tree, collected by
/// Module::CollectQuantTargets. FeedForward blocks are reported as whole
/// units (not as their two inner Linears) so a quantization pass can fuse
/// fc1 -> activation -> fc2 into a single integer pipeline; every other
/// Linear (attention projections, pooler, classifier head) is reported
/// individually.
struct QuantTargets {
  std::vector<std::pair<std::string, Linear*>> linears;
  std::vector<std::pair<std::string, FeedForward*>> ffns;
};

/// Base class for trainable components. A Module owns parameter Variables
/// and reports them via CollectParameters so optimizers and serialization
/// can reach every tensor without knowing the concrete type.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends all parameters, with names prefixed by `prefix` (e.g.
  /// "encoder.layer0.attn.wq").
  virtual void CollectParameters(const std::string& prefix,
                                 std::vector<NamedParam>* out) = 0;

  /// Appends the module's quantizable layers (see QuantTargets), with the
  /// same name scheme as CollectParameters. The default reports nothing;
  /// Linear/FeedForward report themselves and containers forward to their
  /// children. Modules that never run on the serving path (MLM/NSP heads,
  /// RNN baselines) keep the default.
  virtual void CollectQuantTargets(const std::string& prefix,
                                   QuantTargets* out) {
    (void)prefix;
    (void)out;
  }

  /// Convenience: all parameters with an empty prefix.
  std::vector<NamedParam> Parameters() {
    std::vector<NamedParam> out;
    CollectParameters("", &out);
    return out;
  }

  /// Zeroes every parameter gradient.
  void ZeroGrad() {
    for (auto& p : Parameters()) p.var.ZeroGrad();
  }

  /// Total scalar parameter count.
  int64_t NumParameters() {
    int64_t n = 0;
    for (auto& p : Parameters()) n += p.var.size();
    return n;
  }
};

/// Joins a prefix and a leaf name with '.' (no leading dot for empty prefix).
std::string JoinName(const std::string& prefix, const std::string& leaf);

/// Saves parameters to a binary file (name-indexed).
Status SaveParameters(const std::string& path,
                      const std::vector<NamedParam>& params);

/// Loads parameters by name into existing Variables; shapes must match.
/// Fails if any parameter is missing from the file.
Status LoadParameters(const std::string& path,
                      const std::vector<NamedParam>& params);

/// Adds one "p:<name>" fp32 tensor section per parameter to an EMXM
/// container under construction. The tensors are borrowed, not copied —
/// keep the model alive until EmxmWriter::WriteFile returns.
Status AppendParametersEmxm(io::EmxmWriter* writer,
                            const std::vector<NamedParam>& params);

/// Loads parameters by name from a mapped EMXM container into existing
/// Variables; shapes must match and every parameter must be present.
/// Zero-copy: each Variable's value becomes a read-only view of the
/// mapped payload (holding `reader` alive), so the load costs O(sections)
/// regardless of model size and N processes mapping the same container
/// share one physical copy of the weights. The model must be treated as
/// read-only afterwards — fine-tuning or re-quantizing a mapped model is
/// undefined behavior (the mapping is PROT_READ). LoadParameters restores
/// mutable heap tensors.
Status LoadParametersMapped(std::shared_ptr<const io::EmxmReader> reader,
                            const std::vector<NamedParam>& params);

/// Copies parameter values from `src` into `dst`, matching by name for all
/// names present in both (used to initialize a student from a teacher).
/// Returns the number of tensors copied.
int64_t CopyMatchingParameters(const std::vector<NamedParam>& src,
                               const std::vector<NamedParam>& dst);

}  // namespace nn
}  // namespace emx

#endif  // EMX_NN_MODULE_H_
