#ifndef EMX_NN_LAYERS_H_
#define EMX_NN_LAYERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/autograd_ops.h"
#include "tensor/variable.h"
#include "util/rng.h"

namespace emx {
namespace nn {

/// Thread-local switch for quantized inference backends. While enabled (the
/// default), a Linear/FeedForward carrying a *ready* backend routes grad-free
/// forwards through it; while disabled, every layer runs its fp32 path even
/// when a backend is attached. Training forwards (GradMode enabled) always
/// run fp32 regardless of this flag, so quantization never perturbs
/// fine-tuning.
class QuantMode {
 public:
  static bool IsEnabled();
  static void SetEnabled(bool enabled);
};

/// RAII scope pinning QuantMode on the current thread — the serving engine
/// uses it to honor EngineOptions::precision per micro-batch.
class QuantModeGuard {
 public:
  explicit QuantModeGuard(bool enabled) : prev_(QuantMode::IsEnabled()) {
    QuantMode::SetEnabled(enabled);
  }
  ~QuantModeGuard() { QuantMode::SetEnabled(prev_); }

  QuantModeGuard(const QuantModeGuard&) = delete;
  QuantModeGuard& operator=(const QuantModeGuard&) = delete;

 private:
  bool prev_;
};

/// Alternative inference implementation attachable to a Linear (the int8
/// backend in src/quant implements this; nn itself has no quant dependency).
///
/// Lifecycle: a freshly attached backend is *not ready* — while grad-free
/// fp32 forwards run, it observes the layer's inputs/outputs (calibration).
/// Once frozen (ready() == true) the layer routes grad-free forwards through
/// Forward() whenever QuantMode is enabled.
class LinearBackend {
 public:
  virtual ~LinearBackend() = default;

  /// Calibration taps, called with the flattened fp32 activations while the
  /// backend is not ready. Observation must be thread-compatible with the
  /// caller (calibration is single-threaded).
  virtual void ObserveInput(const Tensor& x2d) { (void)x2d; }
  virtual void ObserveOutput(const Tensor& y2d) { (void)y2d; }

  /// True once the backend is frozen and Forward may be used.
  virtual bool ready() const = 0;

  /// [N, in] -> [N, out], replacing x @ W + b. Must be safe for concurrent
  /// calls (serving workers share the layer).
  virtual Tensor Forward(const Tensor& x2d) const = 0;
};

/// Alternative inference implementation for a whole FeedForward block
/// (fc1 -> activation -> fc2), enabling fused integer pipelines that never
/// materialize the fp32 intermediate. Calibration happens through the inner
/// Linears' LinearBackend taps.
class FeedForwardBackend {
 public:
  virtual ~FeedForwardBackend() = default;
  virtual bool ready() const = 0;
  /// [N, hidden] -> [N, hidden].
  virtual Tensor Forward(const Tensor& x2d) const = 0;
};

/// Affine layer y = x @ W + b with W of shape [in, out].
/// Accepts inputs of shape [..., in]; leading dims are flattened and
/// restored, so callers can pass [B, T, in] directly.
class Linear : public Module {
 public:
  /// Initializes W ~ N(0, init_stddev^2) (BERT uses 0.02), b = 0.
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         float init_stddev = 0.02f);

  Variable Forward(const Variable& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;
  void CollectQuantTargets(const std::string& prefix,
                           QuantTargets* out) override;

  /// Attaches (or clears, with nullptr) an alternative inference backend.
  /// See LinearBackend for the observe-then-serve lifecycle.
  void set_backend(std::shared_ptr<LinearBackend> backend) {
    backend_ = std::move(backend);
  }
  const std::shared_ptr<LinearBackend>& backend() const { return backend_; }

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable weight_;  // [in, out]
  Variable bias_;    // [out]
  std::shared_ptr<LinearBackend> backend_;  // null = fp32 only
};

/// Token/positional/segment embedding table of shape [num_embeddings, dim].
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng* rng,
            float init_stddev = 0.02f);

  /// Looks up `ids` (flattened) and reshapes to `out_shape` + [dim].
  /// E.g. ids of a [B, T] batch passed flat with out_shape {B, T} give
  /// a [B, T, dim] result.
  Variable Forward(const std::vector<int64_t>& ids, Shape out_shape) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;

  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t dim() const { return dim_; }
  const Variable& table() const { return table_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  Variable table_;  // [V, dim]
};

/// Layer normalization over the last axis with learned gamma/beta.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  Variable Forward(const Variable& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;

 private:
  int64_t dim_;
  float eps_;
  Variable gamma_;  // [dim], init 1
  Variable beta_;   // [dim], init 0
};

/// Which nonlinearity a FeedForward uses.
enum class Activation { kGelu, kRelu, kTanh };

/// Position-wise feed-forward block: Linear -> activation -> Linear.
class FeedForward : public Module {
 public:
  FeedForward(int64_t hidden, int64_t intermediate, Rng* rng,
              Activation activation = Activation::kGelu,
              float init_stddev = 0.02f);

  /// `train`/`rng` control the dropout after the activation.
  Variable Forward(const Variable& x, float dropout_p, bool train,
                   Rng* rng) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;
  void CollectQuantTargets(const std::string& prefix,
                           QuantTargets* out) override;

  /// Attaches (or clears) a fused block backend. When ready, grad-free
  /// forwards bypass fc1/activation/fc2 entirely (dropout is identity at
  /// inference time, so nothing is lost).
  void set_backend(std::shared_ptr<FeedForwardBackend> backend) {
    backend_ = std::move(backend);
  }
  const std::shared_ptr<FeedForwardBackend>& backend() const {
    return backend_;
  }

  Linear* fc1() { return &fc1_; }
  Linear* fc2() { return &fc2_; }
  const Linear& fc1() const { return fc1_; }
  const Linear& fc2() const { return fc2_; }
  Activation activation() const { return activation_; }

 private:
  Linear fc1_;
  Linear fc2_;
  Activation activation_;
  std::shared_ptr<FeedForwardBackend> backend_;  // null = fp32 only
};

/// Applies the configured activation.
Variable ApplyActivation(const Variable& x, Activation activation);

}  // namespace nn
}  // namespace emx

#endif  // EMX_NN_LAYERS_H_
