#ifndef EMX_NN_LAYERS_H_
#define EMX_NN_LAYERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/autograd_ops.h"
#include "tensor/variable.h"
#include "util/rng.h"

namespace emx {
namespace nn {

/// Affine layer y = x @ W + b with W of shape [in, out].
/// Accepts inputs of shape [..., in]; leading dims are flattened and
/// restored, so callers can pass [B, T, in] directly.
class Linear : public Module {
 public:
  /// Initializes W ~ N(0, init_stddev^2) (BERT uses 0.02), b = 0.
  Linear(int64_t in_features, int64_t out_features, Rng* rng,
         float init_stddev = 0.02f);

  Variable Forward(const Variable& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  const Variable& weight() const { return weight_; }
  const Variable& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Variable weight_;  // [in, out]
  Variable bias_;    // [out]
};

/// Token/positional/segment embedding table of shape [num_embeddings, dim].
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng* rng,
            float init_stddev = 0.02f);

  /// Looks up `ids` (flattened) and reshapes to `out_shape` + [dim].
  /// E.g. ids of a [B, T] batch passed flat with out_shape {B, T} give
  /// a [B, T, dim] result.
  Variable Forward(const std::vector<int64_t>& ids, Shape out_shape) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;

  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t dim() const { return dim_; }
  const Variable& table() const { return table_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  Variable table_;  // [V, dim]
};

/// Layer normalization over the last axis with learned gamma/beta.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  Variable Forward(const Variable& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;

 private:
  int64_t dim_;
  float eps_;
  Variable gamma_;  // [dim], init 1
  Variable beta_;   // [dim], init 0
};

/// Which nonlinearity a FeedForward uses.
enum class Activation { kGelu, kRelu, kTanh };

/// Position-wise feed-forward block: Linear -> activation -> Linear.
class FeedForward : public Module {
 public:
  FeedForward(int64_t hidden, int64_t intermediate, Rng* rng,
              Activation activation = Activation::kGelu,
              float init_stddev = 0.02f);

  /// `train`/`rng` control the dropout after the activation.
  Variable Forward(const Variable& x, float dropout_p, bool train,
                   Rng* rng) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;

 private:
  Linear fc1_;
  Linear fc2_;
  Activation activation_;
};

/// Applies the configured activation.
Variable ApplyActivation(const Variable& x, Activation activation);

}  // namespace nn
}  // namespace emx

#endif  // EMX_NN_LAYERS_H_
