#ifndef EMX_NN_RNN_H_
#define EMX_NN_RNN_H_

#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/variable.h"

namespace emx {
namespace nn {

/// A gated recurrent unit cell (Cho et al. 2014) — the recurrent building
/// block of the DeepMatcher baseline. Update/reset gates and candidate
/// state use separate input and recurrent projections.
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  /// One step: x [B, E], h [B, H] -> new h [B, H].
  Variable Step(const Variable& x, const Variable& h) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Linear xz_, hz_;  // update gate
  Linear xr_, hr_;  // reset gate
  Linear xh_, hh_;  // candidate
};

/// Unidirectional GRU unrolled over time.
class Gru : public Module {
 public:
  Gru(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  /// x [B, T, E] -> states [B, T, H]; `reverse` runs right-to-left (states
  /// are still returned in input order).
  Variable Forward(const Variable& x, bool reverse = false) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;

 private:
  GruCell cell_;
};

/// Bidirectional GRU: concatenates forward and backward states -> [B, T, 2H].
class BiGru : public Module {
 public:
  BiGru(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  Variable Forward(const Variable& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;

  int64_t output_dim() const { return 2 * hidden_dim_; }

 private:
  int64_t hidden_dim_;
  Gru forward_;
  Gru backward_;
};

/// Mean over the time axis of a [B, T, H] tensor -> [B, H]
/// (differentiable; implemented with a constant averaging matmul).
Variable MeanOverTime(const Variable& x);

/// Max over the time axis of a [B, T, H] tensor -> [B, H]. The gradient
/// routes to the argmax position per (batch, channel). Catches "any token
/// fired" signals that mean-pooling dilutes.
Variable MaxOverTime(const Variable& x);

}  // namespace nn
}  // namespace emx

#endif  // EMX_NN_RNN_H_
