#include "nn/rnn.h"

#include <cmath>

#include "tensor/autograd_ops.h"
#include "util/logging.h"

namespace emx {
namespace nn {

namespace ag = autograd;

namespace {

// Recurrent nets have no LayerNorm to rescale activations, so they need
// Xavier-scale init rather than the transformer family's 0.02.
float XavierStddev(int64_t fan_in) {
  return 1.0f / std::sqrt(static_cast<float>(fan_in));
}

}  // namespace

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : hidden_dim_(hidden_dim),
      xz_(input_dim, hidden_dim, rng, XavierStddev(input_dim)),
      hz_(hidden_dim, hidden_dim, rng, XavierStddev(hidden_dim)),
      xr_(input_dim, hidden_dim, rng, XavierStddev(input_dim)),
      hr_(hidden_dim, hidden_dim, rng, XavierStddev(hidden_dim)),
      xh_(input_dim, hidden_dim, rng, XavierStddev(input_dim)),
      hh_(hidden_dim, hidden_dim, rng, XavierStddev(hidden_dim)) {}

Variable GruCell::Step(const Variable& x, const Variable& h) const {
  Variable z = ag::Sigmoid(ag::Add(xz_.Forward(x), hz_.Forward(h)));
  Variable r = ag::Sigmoid(ag::Add(xr_.Forward(x), hr_.Forward(h)));
  Variable candidate =
      ag::Tanh(ag::Add(xh_.Forward(x), hh_.Forward(ag::Mul(r, h))));
  // h' = (1 - z) * h + z * candidate.
  Variable one_minus_z = ag::AddScalar(ag::MulScalar(z, -1.0f), 1.0f);
  return ag::Add(ag::Mul(one_minus_z, h), ag::Mul(z, candidate));
}

void GruCell::CollectParameters(const std::string& prefix,
                                std::vector<NamedParam>* out) {
  xz_.CollectParameters(JoinName(prefix, "xz"), out);
  hz_.CollectParameters(JoinName(prefix, "hz"), out);
  xr_.CollectParameters(JoinName(prefix, "xr"), out);
  hr_.CollectParameters(JoinName(prefix, "hr"), out);
  xh_.CollectParameters(JoinName(prefix, "xh"), out);
  hh_.CollectParameters(JoinName(prefix, "hh"), out);
}

Gru::Gru(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : cell_(input_dim, hidden_dim, rng) {}

Variable Gru::Forward(const Variable& x, bool reverse) const {
  EMX_CHECK_EQ(x.value().ndim(), 3);
  const int64_t b = x.dim(0);
  const int64_t t = x.dim(1);
  const int64_t h_dim = cell_.hidden_dim();

  Variable h = Variable::Constant(Tensor::Zeros({b, h_dim}));
  std::vector<Variable> states(static_cast<size_t>(t));
  for (int64_t step = 0; step < t; ++step) {
    const int64_t pos = reverse ? t - 1 - step : step;
    Variable x_t = ag::SelectTimeStep(x, pos);
    h = cell_.Step(x_t, h);
    states[static_cast<size_t>(pos)] = ag::Reshape(h, {b, 1, h_dim});
  }
  return ag::Concat(states, 1);
}

void Gru::CollectParameters(const std::string& prefix,
                            std::vector<NamedParam>* out) {
  cell_.CollectParameters(JoinName(prefix, "cell"), out);
}

BiGru::BiGru(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : hidden_dim_(hidden_dim),
      forward_(input_dim, hidden_dim, rng),
      backward_(input_dim, hidden_dim, rng) {}

Variable BiGru::Forward(const Variable& x) const {
  Variable fwd = forward_.Forward(x, /*reverse=*/false);
  Variable bwd = backward_.Forward(x, /*reverse=*/true);
  return ag::Concat({fwd, bwd}, 2);
}

void BiGru::CollectParameters(const std::string& prefix,
                              std::vector<NamedParam>* out) {
  forward_.CollectParameters(JoinName(prefix, "fwd"), out);
  backward_.CollectParameters(JoinName(prefix, "bwd"), out);
}

Variable MaxOverTime(const Variable& x) {
  EMX_CHECK_EQ(x.value().ndim(), 3);
  const int64_t b = x.dim(0);
  const int64_t t = x.dim(1);
  const int64_t h = x.dim(2);
  Tensor value({b, h});
  std::vector<int64_t> argmax(static_cast<size_t>(b * h), 0);
  const float* px = x.value().data();
  float* pv = value.data();
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = 0; j < h; ++j) {
      float best = px[(i * t) * h + j];
      int64_t best_t = 0;
      for (int64_t s = 1; s < t; ++s) {
        const float v = px[(i * t + s) * h + j];
        if (v > best) {
          best = v;
          best_t = s;
        }
      }
      pv[i * h + j] = best;
      argmax[static_cast<size_t>(i * h + j)] = best_t;
    }
  }
  return Variable::MakeOpResult(
      std::move(value), {x}, [x, argmax, b, t, h](const Tensor& g) {
        if (!x.requires_grad()) return;
        Tensor& grad = x.node()->EnsureGrad();
        float* pg = grad.data();
        const float* pup = g.data();
        for (int64_t i = 0; i < b; ++i) {
          for (int64_t j = 0; j < h; ++j) {
            const int64_t s = argmax[static_cast<size_t>(i * h + j)];
            pg[(i * t + s) * h + j] += pup[i * h + j];
          }
        }
      });
}

Variable MeanOverTime(const Variable& x) {
  EMX_CHECK_EQ(x.value().ndim(), 3);
  const int64_t b = x.dim(0);
  const int64_t t = x.dim(1);
  const int64_t h = x.dim(2);
  Tensor avg({b, 1, t});
  avg.Fill(1.0f / static_cast<float>(t));
  Variable pooled = ag::MatMul(Variable::Constant(avg), x);  // [B, 1, H]
  return ag::Reshape(pooled, {b, h});
}

}  // namespace nn
}  // namespace emx
