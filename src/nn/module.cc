#include "nn/module.h"

#include <cstdint>
#include <fstream>
#include <map>

#include "util/logging.h"

namespace emx {
namespace nn {
namespace {

constexpr uint32_t kMagic = 0x454d5850;  // "EMXP"

}  // namespace

std::string JoinName(const std::string& prefix, const std::string& leaf) {
  if (prefix.empty()) return leaf;
  return prefix + "." + leaf;
}

Status SaveParameters(const std::string& path,
                      const std::vector<NamedParam>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const uint32_t magic = kMagic;
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const uint64_t name_len = p.name.size();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p.name.data(), static_cast<std::streamsize>(name_len));
    const Tensor& t = p.var.value();
    const uint64_t ndim = static_cast<uint64_t>(t.ndim());
    out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    for (int64_t d : t.shape()) {
      const int64_t dim = d;
      out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status LoadParameters(const std::string& path,
                      const std::vector<NamedParam>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    return Status::InvalidArgument(path + " is not an emx parameter file");
  }
  std::map<std::string, Tensor> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!in || name_len > (1u << 20)) {
      return Status::InvalidArgument("corrupt parameter file " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t ndim = 0;
    in.read(reinterpret_cast<char*>(&ndim), sizeof(ndim));
    if (!in || ndim > 8) {
      return Status::InvalidArgument("corrupt parameter file " + path);
    }
    Shape shape(ndim);
    for (auto& d : shape) in.read(reinterpret_cast<char*>(&d), sizeof(d));
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    if (!in) return Status::IoError("truncated parameter file " + path);
    loaded.emplace(std::move(name), std::move(t));
  }
  for (const auto& p : params) {
    auto it = loaded.find(p.name);
    if (it == loaded.end()) {
      return Status::NotFound("parameter '" + p.name + "' missing in " + path);
    }
    if (it->second.shape() != p.var.value().shape()) {
      return Status::InvalidArgument(
          "parameter '" + p.name + "' shape mismatch: file has " +
          ShapeToString(it->second.shape()) + ", model expects " +
          ShapeToString(p.var.value().shape()));
    }
    // Copy into the existing buffer so optimizer state stays attached.
    Tensor& dst = const_cast<Variable&>(p.var).mutable_value();
    std::copy(it->second.data(), it->second.data() + it->second.size(),
              dst.data());
  }
  return Status::OK();
}

int64_t CopyMatchingParameters(const std::vector<NamedParam>& src,
                               const std::vector<NamedParam>& dst) {
  std::map<std::string, const NamedParam*> index;
  for (const auto& p : src) index[p.name] = &p;
  int64_t copied = 0;
  for (const auto& d : dst) {
    auto it = index.find(d.name);
    if (it == index.end()) continue;
    const Tensor& s = it->second->var.value();
    if (s.shape() != d.var.value().shape()) continue;
    Tensor& t = const_cast<Variable&>(d.var).mutable_value();
    std::copy(s.data(), s.data() + s.size(), t.data());
    ++copied;
  }
  return copied;
}

}  // namespace nn
}  // namespace emx
