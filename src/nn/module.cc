#include "nn/module.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

#include "io/atomic_file.h"
#include "io/emxm.h"
#include "util/logging.h"

namespace emx {
namespace nn {
namespace {

constexpr uint32_t kMagic = 0x454d5850;  // "EMXP"

// More parameters than any model this repo can hold in memory; a count
// beyond this is a corrupt header, not a big model.
constexpr uint64_t kMaxParamCount = 1ull << 20;

/// prefix for fp32 parameter sections inside an EMXM container.
std::string ParamSectionName(const std::string& name) { return "p:" + name; }

}  // namespace

std::string JoinName(const std::string& prefix, const std::string& leaf) {
  if (prefix.empty()) return leaf;
  return prefix + "." + leaf;
}

Status SaveParameters(const std::string& path,
                      const std::vector<NamedParam>& params) {
  io::AtomicFileWriter writer(path);
  EMX_RETURN_IF_ERROR(writer.status());
  std::ofstream& out = writer.stream();
  const uint32_t magic = kMagic;
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    const uint64_t name_len = p.name.size();
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p.name.data(), static_cast<std::streamsize>(name_len));
    const Tensor& t = p.var.value();
    const uint64_t ndim = static_cast<uint64_t>(t.ndim());
    out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    for (int64_t d : t.shape()) {
      const int64_t dim = d;
      out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
  }
  return writer.Commit();
}

Status LoadParameters(const std::string& path,
                      const std::vector<NamedParam>& params) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  // Every length field below is checked against the bytes actually left
  // in the file *before* anything is allocated, so a corrupt or hostile
  // header cannot request a multi-GB buffer the payload can never fill.
  const uint64_t file_bytes = static_cast<uint64_t>(in.tellg());
  in.seekg(0);
  uint64_t consumed = 0;
  auto remaining = [&] { return file_bytes - consumed; };
  auto corrupt = [&](const std::string& what) {
    return Status::InvalidArgument("corrupt parameter file " + path + ": " +
                                   what);
  };

  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    return Status::InvalidArgument(path + " is not an emx parameter file");
  }
  consumed += sizeof(magic) + sizeof(count);
  if (count > kMaxParamCount) {
    return corrupt("implausible parameter count " + std::to_string(count));
  }
  std::map<std::string, Tensor> loaded;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    consumed += sizeof(name_len);
    if (!in || name_len > (1u << 20) || name_len > remaining()) {
      return corrupt("bad name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    consumed += name_len;
    uint64_t ndim = 0;
    in.read(reinterpret_cast<char*>(&ndim), sizeof(ndim));
    consumed += sizeof(ndim);
    if (!in || ndim > 8 || ndim * sizeof(int64_t) > remaining()) {
      return corrupt("bad ndim for '" + name + "'");
    }
    Shape shape(ndim);
    uint64_t numel = 1;
    for (auto& d : shape) {
      in.read(reinterpret_cast<char*>(&d), sizeof(d));
      consumed += sizeof(d);
      if (!in || d <= 0) return corrupt("bad dim for '" + name + "'");
      // Overflow-checked product: a pair of plausible-looking dims can
      // wrap uint64 and make the byte count below look tiny.
      if (numel > remaining() / static_cast<uint64_t>(d)) {
        return corrupt("dims overflow for '" + name + "'");
      }
      numel *= static_cast<uint64_t>(d);
    }
    if (numel * sizeof(float) > remaining()) {
      return corrupt("payload for '" + name + "' exceeds file size");
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    consumed += numel * sizeof(float);
    if (!in) return Status::IoError("truncated parameter file " + path);
    loaded.emplace(std::move(name), std::move(t));
  }
  for (const auto& p : params) {
    auto it = loaded.find(p.name);
    if (it == loaded.end()) {
      return Status::NotFound("parameter '" + p.name + "' missing in " + path);
    }
    if (it->second.shape() != p.var.value().shape()) {
      return Status::InvalidArgument(
          "parameter '" + p.name + "' shape mismatch: file has " +
          ShapeToString(it->second.shape()) + ", model expects " +
          ShapeToString(p.var.value().shape()));
    }
    // Assign the staged tensor wholesale: optimizer state lives on the
    // Variable (slots re-fetch mutable_value() each step), and assignment
    // also restores a mutable heap buffer over a previously mapped
    // (read-only external) value.
    const_cast<Variable&>(p.var).mutable_value() = std::move(it->second);
  }
  return Status::OK();
}

Status AppendParametersEmxm(io::EmxmWriter* writer,
                            const std::vector<NamedParam>& params) {
  for (const auto& p : params) {
    const Tensor& t = p.var.value();
    if (t.ndim() > 5) {
      return Status::InvalidArgument("parameter '" + p.name + "' has " +
                                     std::to_string(t.ndim()) +
                                     " dims; EMXM sections carry at most 5");
    }
    std::array<uint64_t, 6> aux{};
    aux[0] = static_cast<uint64_t>(t.ndim());
    for (int64_t i = 0; i < t.ndim(); ++i) {
      aux[1 + i] = static_cast<uint64_t>(t.shape()[i]);
    }
    writer->AddSection(ParamSectionName(p.name), io::SectionKind::kF32Tensor,
                       aux, t.data(), t.size() * sizeof(float));
  }
  return Status::OK();
}

Status LoadParametersMapped(std::shared_ptr<const io::EmxmReader> reader_sp,
                            const std::vector<NamedParam>& params) {
  const io::EmxmReader& reader = *reader_sp;
  // Validate every parameter before attaching any, so a bad container
  // leaves the model untouched (the same all-or-nothing contract as
  // LoadParameters, which stages the whole file into a map first).
  std::vector<const io::Section*> resolved;
  resolved.reserve(params.size());
  for (const auto& p : params) {
    const io::Section* s = reader.Find(ParamSectionName(p.name));
    if (s == nullptr) {
      return Status::NotFound("parameter '" + p.name + "' missing in " +
                              reader.path());
    }
    if (s->kind != io::SectionKind::kF32Tensor) {
      return Status::InvalidArgument("parameter '" + p.name + "' in " +
                                     reader.path() +
                                     " is not an fp32 tensor section");
    }
    const Tensor& dst_t = p.var.value();
    const uint64_t ndim = s->aux[0];
    bool shape_ok = ndim == static_cast<uint64_t>(dst_t.ndim());
    uint64_t numel = 1;
    for (uint64_t i = 0; shape_ok && i < ndim; ++i) {
      shape_ok = s->aux[1 + i] == static_cast<uint64_t>(dst_t.shape()[i]);
      numel *= s->aux[1 + i];
    }
    if (!shape_ok) {
      return Status::InvalidArgument(
          "parameter '" + p.name + "' shape mismatch in " + reader.path() +
          ": model expects " + ShapeToString(dst_t.shape()));
    }
    if (s->bytes != numel * sizeof(float)) {
      return Status::InvalidArgument("parameter '" + p.name + "' in " +
                                     reader.path() + " has " +
                                     std::to_string(s->bytes) +
                                     " payload bytes for " +
                                     std::to_string(numel) + " elements");
    }
    resolved.push_back(s);
  }
  for (size_t i = 0; i < params.size(); ++i) {
    // Zero-copy: the value becomes a read-only view of the mapped payload
    // (64-byte aligned by the EMXM layout), with the reader held alive by
    // every view. Nothing is read from disk here — pages fault in lazily
    // as forwards touch them, and stay shared across processes.
    const_cast<Variable&>(params[i].var).mutable_value() =
        Tensor::FromExternal(params[i].var.value().shape(),
                             reinterpret_cast<const float*>(resolved[i]->data),
                             reader_sp);
  }
  return Status::OK();
}

int64_t CopyMatchingParameters(const std::vector<NamedParam>& src,
                               const std::vector<NamedParam>& dst) {
  std::map<std::string, const NamedParam*> index;
  for (const auto& p : src) index[p.name] = &p;
  int64_t copied = 0;
  for (const auto& d : dst) {
    auto it = index.find(d.name);
    if (it == index.end()) continue;
    const Tensor& s = it->second->var.value();
    if (s.shape() != d.var.value().shape()) continue;
    Tensor& t = const_cast<Variable&>(d.var).mutable_value();
    std::copy(s.data(), s.data() + s.size(), t.data());
    ++copied;
  }
  return copied;
}

}  // namespace nn
}  // namespace emx
