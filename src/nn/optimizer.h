#ifndef EMX_NN_OPTIMIZER_H_
#define EMX_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"
#include "tensor/variable.h"

namespace emx {
namespace nn {

/// Learning-rate schedule with linear warmup followed by linear decay to
/// zero — the standard BERT fine-tuning schedule used by the paper ("Adam
/// ... in combination with a linear learning rate").
class LinearWarmupSchedule {
 public:
  /// `warmup_steps` may be 0 (pure decay). `total_steps` > warmup.
  LinearWarmupSchedule(float base_lr, int64_t warmup_steps, int64_t total_steps);

  /// Learning rate at `step` (0-based).
  float LearningRate(int64_t step) const;

 private:
  float base_lr_;
  int64_t warmup_steps_;
  int64_t total_steps_;
};

/// Options for Adam (defaults follow Devlin et al. fine-tuning practice).
struct AdamOptions {
  float lr = 2e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  /// Decoupled weight decay (0 disables). Not applied to biases, LayerNorm
  /// parameters, or any parameter whose name ends in ".bias"/".gamma"/".beta".
  float weight_decay = 0.0f;
  /// Global gradient-norm clip (0 disables).
  float clip_norm = 1.0f;
};

/// Adam optimizer with bias correction, optional decoupled weight decay,
/// and global-norm gradient clipping.
class Adam {
 public:
  Adam(std::vector<NamedParam> params, AdamOptions options);

  /// Applies one update using the current gradients at learning rate
  /// `lr_override` if >= 0, else options.lr.
  void Step(float lr_override = -1.0f);

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Rescales gradients so the global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  int64_t step_count() const { return step_count_; }

 private:
  struct Slot {
    NamedParam param;
    Tensor m;
    Tensor v;
    bool decay;
  };
  std::vector<Slot> slots_;
  AdamOptions options_;
  int64_t step_count_ = 0;
};

}  // namespace nn
}  // namespace emx

#endif  // EMX_NN_OPTIMIZER_H_
