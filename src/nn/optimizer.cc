#include "nn/optimizer.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace emx {
namespace nn {

LinearWarmupSchedule::LinearWarmupSchedule(float base_lr, int64_t warmup_steps,
                                           int64_t total_steps)
    : base_lr_(base_lr), warmup_steps_(warmup_steps), total_steps_(total_steps) {
  EMX_CHECK_GE(warmup_steps, 0);
  EMX_CHECK_GT(total_steps, warmup_steps);
}

float LinearWarmupSchedule::LearningRate(int64_t step) const {
  if (step < warmup_steps_) {
    return base_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  const float remaining = static_cast<float>(total_steps_ - step) /
                          static_cast<float>(total_steps_ - warmup_steps_);
  return base_lr_ * std::max(0.0f, remaining);
}

namespace {

bool IsDecayExempt(const std::string& name) {
  return EndsWith(name, ".bias") || EndsWith(name, ".gamma") ||
         EndsWith(name, ".beta") || name == "bias" || name == "gamma" ||
         name == "beta";
}

}  // namespace

Adam::Adam(std::vector<NamedParam> params, AdamOptions options)
    : options_(options) {
  slots_.reserve(params.size());
  for (auto& p : params) {
    Slot slot;
    slot.m = Tensor(p.var.value().shape());
    slot.v = Tensor(p.var.value().shape());
    slot.decay = options_.weight_decay > 0.0f && !IsDecayExempt(p.name);
    slot.param = std::move(p);
    slots_.push_back(std::move(slot));
  }
}

void Adam::ZeroGrad() {
  for (auto& s : slots_) s.param.var.ZeroGrad();
}

float Adam::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (auto& s : slots_) {
    const Tensor& g = s.param.var.grad();
    const float* p = g.data();
    for (int64_t i = 0; i < g.size(); ++i) total += static_cast<double>(p[i]) * p[i];
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (max_norm > 0.0f && norm > max_norm) {
    const float scale = max_norm / (norm + 1e-6f);
    for (auto& s : slots_) {
      s.param.var.mutable_grad().ScaleInPlace(scale);
    }
  }
  return norm;
}

void Adam::Step(float lr_override) {
  if (options_.clip_norm > 0.0f) ClipGradNorm(options_.clip_norm);
  ++step_count_;
  const float lr = lr_override >= 0.0f ? lr_override : options_.lr;
  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_count_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_count_));

  for (auto& s : slots_) {
    Tensor& value = s.param.var.mutable_value();
    const Tensor& grad = s.param.var.grad();
    float* w = value.data();
    const float* g = grad.data();
    float* m = s.m.data();
    float* v = s.v.data();
    const bool decay = s.decay;
    // Elementwise over the parameter tensor; large tensors (embedding
    // tables, projection matrices) dominate the step, so split within each
    // slot rather than across slots.
    ParallelFor(value.size(), 1 << 14, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * g[i];
        v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * g[i] * g[i];
        const float m_hat = m[i] / bc1;
        const float v_hat = v[i] / bc2;
        float update = m_hat / (std::sqrt(v_hat) + options_.eps);
        if (decay) update += options_.weight_decay * w[i];
        w[i] -= lr * update;
      }
    });
  }
}

}  // namespace nn
}  // namespace emx
