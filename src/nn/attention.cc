#include "nn/attention.h"

#include <cmath>

#include "tensor/autograd_ops.h"
#include "util/logging.h"

namespace emx {
namespace nn {

namespace ag = autograd;

Variable FusedAttentionBackend::Forward(const Variable& q, const Variable& k,
                                        const Variable& v, const Tensor& mask,
                                        int64_t num_heads, float dropout_p,
                                        bool train, Rng* rng) const {
  return ag::FusedAttention(q, k, v, mask, num_heads, dropout_p, train, rng);
}

MultiHeadAttention::MultiHeadAttention(int64_t hidden, int64_t num_heads,
                                       Rng* rng, float init_stddev)
    : hidden_(hidden),
      num_heads_(num_heads),
      head_dim_(hidden / num_heads),
      wq_(hidden, hidden, rng, init_stddev),
      wk_(hidden, hidden, rng, init_stddev),
      wv_(hidden, hidden, rng, init_stddev),
      wo_(hidden, hidden, rng, init_stddev),
      backend_(std::make_shared<FusedAttentionBackend>()) {
  EMX_CHECK_EQ(head_dim_ * num_heads_, hidden_)
      << "hidden must be divisible by num_heads";
}

Variable MultiHeadAttention::SplitHeads(const Variable& x) const {
  const int64_t b = x.dim(0);
  const int64_t t = x.dim(1);
  Variable r = ag::Reshape(x, {b, t, num_heads_, head_dim_});
  return ag::Permute(r, {0, 2, 1, 3});  // [B, heads, T, dh]
}

Variable MultiHeadAttention::MergeHeads(const Variable& x) const {
  const int64_t b = x.dim(0);
  const int64_t t = x.dim(2);
  // Fused [B, heads, T, dh] -> [B, T, heads, dh] -> [B, T, H]: one
  // materialization instead of the old Permute copy + Reshape clone.
  return ag::PermuteReshape(x, {0, 2, 1, 3}, {b, t, hidden_});
}

Variable MultiHeadAttention::Forward(const Variable& query, const Variable& kv,
                                     const Tensor& mask, float dropout_p,
                                     bool train, Rng* rng) const {
  if (backend_ == nullptr) {
    return ForwardReference(query, kv, mask, dropout_p, train, rng);
  }
  Variable q = wq_.Forward(query);  // [B, Tq, H], heads interleaved
  Variable k = wk_.Forward(kv);     // [B, Tk, H]
  Variable v = wv_.Forward(kv);     // [B, Tk, H]
  Variable context =
      backend_->Forward(q, k, v, mask, num_heads_, dropout_p, train, rng);
  return wo_.Forward(context);
}

Variable MultiHeadAttention::ForwardReference(const Variable& query,
                                              const Variable& kv,
                                              const Tensor& mask,
                                              float dropout_p, bool train,
                                              Rng* rng) const {
  Variable q = SplitHeads(wq_.Forward(query));  // [B, h, Tq, dh]
  Variable k = SplitHeads(wk_.Forward(kv));     // [B, h, Tk, dh]
  Variable v = SplitHeads(wv_.Forward(kv));     // [B, h, Tk, dh]

  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Variable scores =
      ag::MulScalar(ag::MatMul(q, k, false, true), scale);  // [B, h, Tq, Tk]

  Variable probs = mask.size() > 0 ? ag::MaskedSoftmax(scores, mask)
                                   : ag::Softmax(scores);
  probs = ag::Dropout(probs, dropout_p, train, rng);

  Variable context = ag::MatMul(probs, v);  // [B, h, Tq, dh]
  return wo_.Forward(MergeHeads(context));
}

void MultiHeadAttention::CollectParameters(const std::string& prefix,
                                           std::vector<NamedParam>* out) {
  wq_.CollectParameters(JoinName(prefix, "wq"), out);
  wk_.CollectParameters(JoinName(prefix, "wk"), out);
  wv_.CollectParameters(JoinName(prefix, "wv"), out);
  wo_.CollectParameters(JoinName(prefix, "wo"), out);
}

void MultiHeadAttention::CollectQuantTargets(const std::string& prefix,
                                             QuantTargets* out) {
  wq_.CollectQuantTargets(JoinName(prefix, "wq"), out);
  wk_.CollectQuantTargets(JoinName(prefix, "wk"), out);
  wv_.CollectQuantTargets(JoinName(prefix, "wv"), out);
  wo_.CollectQuantTargets(JoinName(prefix, "wo"), out);
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t hidden,
                                                 int64_t num_heads,
                                                 int64_t intermediate, Rng* rng,
                                                 Activation activation,
                                                 float init_stddev)
    : attention_(hidden, num_heads, rng, init_stddev),
      ffn_(hidden, intermediate, rng, activation, init_stddev),
      ln_attn_(hidden),
      ln_ffn_(hidden) {}

Variable TransformerEncoderLayer::Forward(const Variable& x, const Tensor& mask,
                                          float dropout_p, bool train,
                                          Rng* rng) const {
  Variable attn = attention_.Forward(x, x, mask, dropout_p, train, rng);
  attn = ag::Dropout(attn, dropout_p, train, rng);
  Variable h = ln_attn_.Forward(ag::Add(x, attn));

  Variable ffn = ffn_.Forward(h, dropout_p, train, rng);
  ffn = ag::Dropout(ffn, dropout_p, train, rng);
  return ln_ffn_.Forward(ag::Add(h, ffn));
}

void TransformerEncoderLayer::CollectParameters(const std::string& prefix,
                                                std::vector<NamedParam>* out) {
  attention_.CollectParameters(JoinName(prefix, "attn"), out);
  ffn_.CollectParameters(JoinName(prefix, "ffn"), out);
  ln_attn_.CollectParameters(JoinName(prefix, "ln_attn"), out);
  ln_ffn_.CollectParameters(JoinName(prefix, "ln_ffn"), out);
}

void TransformerEncoderLayer::CollectQuantTargets(const std::string& prefix,
                                                  QuantTargets* out) {
  attention_.CollectQuantTargets(JoinName(prefix, "attn"), out);
  ffn_.CollectQuantTargets(JoinName(prefix, "ffn"), out);
}

}  // namespace nn
}  // namespace emx
