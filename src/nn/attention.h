#ifndef EMX_NN_ATTENTION_H_
#define EMX_NN_ATTENTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/variable.h"
#include "util/rng.h"

namespace emx {
namespace nn {

/// Alternative implementation of the attention core — everything between
/// the input projections and the output projection — attachable to a
/// MultiHeadAttention (mirroring LinearBackend). The backend receives the
/// projected q/k/v in their natural [B, T, H] layout with heads interleaved
/// in the last dimension and returns the merged context [B, Tq, H], so an
/// implementation can fold head split/merge into its kernel. It must be
/// differentiable (participate in the tape when GradMode is enabled) and
/// safe for concurrent calls (serving workers share the layer).
class AttentionBackend {
 public:
  virtual ~AttentionBackend() = default;

  /// q: [B, Tq, H]; k, v: [B, Tk, H]; mask as for MultiHeadAttention::
  /// Forward. Returns [B, Tq, H].
  virtual Variable Forward(const Variable& q, const Variable& k,
                           const Variable& v, const Tensor& mask,
                           int64_t num_heads, float dropout_p, bool train,
                           Rng* rng) const = 0;
};

/// The default backend: the tiled online-softmax kernel behind
/// autograd::FusedAttention. Forward logits are bit-identical to the
/// reference chain; with dropout enabled it draws one rng value per call
/// and derives the mask from a counter-based hash instead of consuming one
/// Bernoulli per prob element, so training RNG streams differ from the
/// reference path (semantics are identical).
class FusedAttentionBackend : public AttentionBackend {
 public:
  Variable Forward(const Variable& q, const Variable& k, const Variable& v,
                   const Tensor& mask, int64_t num_heads, float dropout_p,
                   bool train, Rng* rng) const override;
};

/// Scaled dot-product multi-head attention with separate query and
/// key/value inputs (self-attention passes the same tensor for both; the
/// XLNet query stream passes its g stream as query and the content stream
/// as key/value).
///
/// Masks are additive "1 = blocked" float tensors broadcastable against the
/// [B, heads, Tq, Tk] score tensor, i.e. shaped [B, 1, 1, Tk] (padding) or
/// [B, 1, Tq, Tk] (padding + structural masks such as permutation order).
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t hidden, int64_t num_heads, Rng* rng,
                     float init_stddev = 0.02f);

  /// query: [B, Tq, H]; kv: [B, Tk, H]; mask as described above (may be an
  /// empty tensor for no masking). Returns [B, Tq, H]. Routes the attention
  /// core through the attached backend (fused, by default); with no backend
  /// it falls back to ForwardReference.
  Variable Forward(const Variable& query, const Variable& kv,
                   const Tensor& mask, float dropout_p, bool train,
                   Rng* rng) const;

  /// The unfused autograd chain (MatMul -> MulScalar -> MaskedSoftmax ->
  /// Dropout -> MatMul over split heads). Kept as the golden reference the
  /// fused kernel is tested bit-identical against, and as the fallback when
  /// no backend is attached.
  Variable ForwardReference(const Variable& query, const Variable& kv,
                            const Tensor& mask, float dropout_p, bool train,
                            Rng* rng) const;

  /// Attaches (or clears, with nullptr) an attention-core backend.
  void set_backend(std::shared_ptr<AttentionBackend> backend) {
    backend_ = std::move(backend);
  }
  const std::shared_ptr<AttentionBackend>& backend() const {
    return backend_;
  }

  /// Splits [B, T, H] into [B, heads, T, H/heads].
  Variable SplitHeads(const Variable& x) const;
  /// Merges [B, heads, T, H/heads] back into [B, T, H].
  Variable MergeHeads(const Variable& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;
  void CollectQuantTargets(const std::string& prefix,
                           QuantTargets* out) override;

  int64_t hidden() const { return hidden_; }
  int64_t num_heads() const { return num_heads_; }
  int64_t head_dim() const { return head_dim_; }
  const Linear& wq() const { return wq_; }
  const Linear& wk() const { return wk_; }
  const Linear& wv() const { return wv_; }
  const Linear& wo() const { return wo_; }

 private:
  int64_t hidden_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
  std::shared_ptr<AttentionBackend> backend_;  // null = reference chain
};

/// One post-LayerNorm transformer encoder layer (BERT ordering):
///   x = LN(x + Dropout(SelfAttention(x)))
///   x = LN(x + Dropout(FFN(x)))
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t hidden, int64_t num_heads,
                          int64_t intermediate, Rng* rng,
                          Activation activation = Activation::kGelu,
                          float init_stddev = 0.02f);

  Variable Forward(const Variable& x, const Tensor& mask, float dropout_p,
                   bool train, Rng* rng) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;
  void CollectQuantTargets(const std::string& prefix,
                           QuantTargets* out) override;

  const MultiHeadAttention& attention() const { return attention_; }
  MultiHeadAttention* mutable_attention() { return &attention_; }

 private:
  MultiHeadAttention attention_;
  FeedForward ffn_;
  LayerNorm ln_attn_;
  LayerNorm ln_ffn_;
};

}  // namespace nn
}  // namespace emx

#endif  // EMX_NN_ATTENTION_H_
