#ifndef EMX_NN_ATTENTION_H_
#define EMX_NN_ATTENTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/variable.h"
#include "util/rng.h"

namespace emx {
namespace nn {

/// Scaled dot-product multi-head attention with separate query and
/// key/value inputs (self-attention passes the same tensor for both; the
/// XLNet query stream passes its g stream as query and the content stream
/// as key/value).
///
/// Masks are additive "1 = blocked" float tensors broadcastable against the
/// [B, heads, Tq, Tk] score tensor, i.e. shaped [B, 1, 1, Tk] (padding) or
/// [B, 1, Tq, Tk] (padding + structural masks such as permutation order).
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t hidden, int64_t num_heads, Rng* rng,
                     float init_stddev = 0.02f);

  /// query: [B, Tq, H]; kv: [B, Tk, H]; mask as described above (may be an
  /// empty tensor for no masking). Returns [B, Tq, H].
  Variable Forward(const Variable& query, const Variable& kv,
                   const Tensor& mask, float dropout_p, bool train,
                   Rng* rng) const;

  /// Splits [B, T, H] into [B, heads, T, H/heads].
  Variable SplitHeads(const Variable& x) const;
  /// Merges [B, heads, T, H/heads] back into [B, T, H].
  Variable MergeHeads(const Variable& x) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;
  void CollectQuantTargets(const std::string& prefix,
                           QuantTargets* out) override;

  int64_t hidden() const { return hidden_; }
  int64_t num_heads() const { return num_heads_; }
  int64_t head_dim() const { return head_dim_; }
  const Linear& wq() const { return wq_; }
  const Linear& wk() const { return wk_; }
  const Linear& wv() const { return wv_; }
  const Linear& wo() const { return wo_; }

 private:
  int64_t hidden_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

/// One post-LayerNorm transformer encoder layer (BERT ordering):
///   x = LN(x + Dropout(SelfAttention(x)))
///   x = LN(x + Dropout(FFN(x)))
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t hidden, int64_t num_heads,
                          int64_t intermediate, Rng* rng,
                          Activation activation = Activation::kGelu,
                          float init_stddev = 0.02f);

  Variable Forward(const Variable& x, const Tensor& mask, float dropout_p,
                   bool train, Rng* rng) const;

  void CollectParameters(const std::string& prefix,
                         std::vector<NamedParam>* out) override;
  void CollectQuantTargets(const std::string& prefix,
                           QuantTargets* out) override;

  const MultiHeadAttention& attention() const { return attention_; }

 private:
  MultiHeadAttention attention_;
  FeedForward ffn_;
  LayerNorm ln_attn_;
  LayerNorm ln_ffn_;
};

}  // namespace nn
}  // namespace emx

#endif  // EMX_NN_ATTENTION_H_
