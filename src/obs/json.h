#ifndef EMX_OBS_JSON_H_
#define EMX_OBS_JSON_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace emx {
namespace obs {

// Zero-dependency JSON utilities shared by the observability exporters and
// the metrics snapshots. Two halves:
//
//  * Emission helpers that are *incapable* of producing invalid JSON: every
//    double goes through AppendJsonDouble, which substitutes 0 for nan/inf
//    (printf "%f" would happily emit the bare tokens `nan`/`inf`, which no
//    JSON parser accepts — the bug class that hit MetricsSnapshot::ToJson).
//  * A strict parser used by tests and CI gates to prove that every emitted
//    snapshot/trace actually parses. Strict means: no NaN/Infinity
//    literals, no trailing commas, no comments, no garbage after the value.

/// Appends `value` with `precision` fractional digits. Non-finite inputs
/// (nan, +/-inf) are emitted as 0 with the same precision so the output is
/// always valid JSON.
void AppendJsonDouble(std::string* out, double value, int precision = 3);

/// Appends a quoted JSON string literal, escaping quotes, backslashes and
/// control characters.
void AppendJsonString(std::string* out, std::string_view s);

/// A parsed JSON document node (tree-owning, value-semantic).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Strict recursive-descent parse of a complete JSON document. On success
/// fills `out` and returns true; otherwise returns false and describes the
/// first problem in `error` (with a byte offset). `out`/`error` may be
/// nullptr when only validation is wanted.
bool JsonParse(std::string_view text, JsonValue* out, std::string* error);

}  // namespace obs
}  // namespace emx

#endif  // EMX_OBS_JSON_H_
