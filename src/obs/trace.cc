#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/json.h"

namespace emx {
namespace obs {

namespace internal {
std::atomic<bool> g_profiling_enabled{false};
}  // namespace internal

namespace {

struct TraceEvent {
  const char* name;
  char phase;       // 'X' complete, 'i' instant, 'C' counter
  int64_t start_ns;
  int64_t dur_ns;
  double value;     // counter payload
  std::string args; // JSON object text, may be empty
};

// One per thread, owned jointly by the thread (thread_local handle) and the
// global registry (so buffers survive thread exit and stay exportable).
// Only the owning thread writes events/count; readers take an acquire load
// of count and read events[0, count).
struct ThreadBuffer {
  explicit ThreadBuffer(size_t capacity, int64_t tid)
      : events(capacity), tid(tid) {}

  std::vector<TraceEvent> events;
  std::atomic<size_t> count{0};
  const int64_t tid;

  void Push(TraceEvent ev, std::atomic<size_t>* dropped) {
    const size_t n = count.load(std::memory_order_relaxed);
    if (n >= events.size()) {
      dropped->fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events[n] = std::move(ev);
    count.store(n + 1, std::memory_order_release);
  }
};

struct TraceState {
  std::mutex mu;  // guards buffers (registration + export iteration)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::atomic<size_t> dropped{0};
  std::atomic<size_t> capacity{1 << 17};
  std::atomic<int64_t> next_tid{0};
  const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

TraceState* State() {
  static TraceState* state = new TraceState();
  return state;
}

ThreadBuffer* LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    TraceState* s = State();
    auto b = std::make_shared<ThreadBuffer>(
        s->capacity.load(std::memory_order_relaxed),
        s->next_tid.fetch_add(1, std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(s->mu);
    s->buffers.push_back(b);
    return b;
  }();
  return buffer.get();
}

void AppendEventJson(std::string* out, const TraceEvent& ev, int64_t tid) {
  *out += "{\"name\": ";
  AppendJsonString(out, ev.name);
  *out += ", \"ph\": \"";
  out->push_back(ev.phase);
  *out += "\", \"ts\": ";
  // chrome://tracing expects microseconds; keep ns resolution fractionally.
  AppendJsonDouble(out, static_cast<double>(ev.start_ns) / 1000.0, 3);
  if (ev.phase == 'X') {
    *out += ", \"dur\": ";
    AppendJsonDouble(out, static_cast<double>(ev.dur_ns) / 1000.0, 3);
  }
  *out += ", \"pid\": 1, \"tid\": " + std::to_string(tid);
  if (ev.phase == 'C') {
    *out += ", \"args\": {\"value\": ";
    AppendJsonDouble(out, ev.value, 3);
    *out += "}";
  } else if (!ev.args.empty()) {
    *out += ", \"args\": " + ev.args;
  }
  if (ev.phase == 'i') *out += ", \"s\": \"t\"";
  *out += "}";
}

}  // namespace

namespace internal {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - State()->epoch)
      .count();
}

void RecordComplete(const char* name, int64_t start_ns, int64_t dur_ns,
                    std::string args) {
  LocalBuffer()->Push(
      TraceEvent{name, 'X', start_ns, dur_ns, 0, std::move(args)},
      &State()->dropped);
}

void RecordInstant(const char* name) {
  LocalBuffer()->Push(TraceEvent{name, 'i', NowNs(), 0, 0, std::string()},
                      &State()->dropped);
}

void RecordCounter(const char* name, double value) {
  LocalBuffer()->Push(TraceEvent{name, 'C', NowNs(), 0, value, std::string()},
                      &State()->dropped);
}

}  // namespace internal

std::string KeyValues(
    std::initializer_list<std::pair<const char*, int64_t>> kvs) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : kvs) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(&out, key);
    out += ": " + std::to_string(value);
  }
  out += "}";
  return out;
}

void StartProfiling(const ObsOptions& options) {
  TraceState* s = State();
  if (options.tracing) {
    s->capacity.store(options.max_events_per_thread,
                      std::memory_order_relaxed);
    internal::g_profiling_enabled.store(true, std::memory_order_relaxed);
  } else {
    internal::g_profiling_enabled.store(false, std::memory_order_relaxed);
  }
}

void StopProfiling() {
  internal::g_profiling_enabled.store(false, std::memory_order_relaxed);
}

void ClearTrace() {
  TraceState* s = State();
  std::lock_guard<std::mutex> lock(s->mu);
  // Resetting count to 0 is safe only because recording is stopped; owner
  // threads would otherwise race their relaxed read of count.
  for (auto& b : s->buffers) b->count.store(0, std::memory_order_release);
  s->dropped.store(0, std::memory_order_relaxed);
}

bool TraceExporter::ExportTo(std::ostream& os) {
  TraceState* s = State();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    buffers = s->buffers;
  }
  // Buffer lengths are sampled once up front so the flush boundaries see a
  // stable view even while owner threads keep appending.
  std::vector<size_t> counts(buffers.size());
  for (size_t b = 0; b < buffers.size(); ++b) {
    counts[b] = buffers[b]->count.load(std::memory_order_acquire);
  }

  std::string chunk = "{\"traceEvents\": [";
  bool first = true;
  for (size_t b = 0; b < buffers.size(); ++b) {
    for (size_t i = 0; i < counts[b]; ++i) {
      if (!first) chunk += ",\n";
      first = false;
      AppendEventJson(&chunk, buffers[b]->events[i], buffers[b]->tid);
      if (chunk.size() >= chunk_bytes_) {
        os.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
        if (!os.good()) return false;
        chunk.clear();
      }
    }
  }
  chunk += "],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"dropped\": " +
           std::to_string(TraceDroppedCount()) + "}}\n";
  os.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  os.flush();
  return os.good();
}

std::string ExportChromeTrace() {
  std::ostringstream os;
  TraceExporter exporter;
  exporter.ExportTo(os);
  return std::move(os).str();
}

bool WriteChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  TraceExporter exporter;
  if (!exporter.ExportTo(out)) return false;
  out.close();
  return out.good();
}

size_t TraceEventCount() {
  TraceState* s = State();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    buffers = s->buffers;
  }
  size_t total = 0;
  for (const auto& b : buffers) {
    total += b->count.load(std::memory_order_acquire);
  }
  return total;
}

size_t TraceDroppedCount() {
  return State()->dropped.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace emx
