#ifndef EMX_OBS_TRACE_H_
#define EMX_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <utility>

namespace emx {
namespace obs {

// Scoped trace spans recorded into per-thread lock-free buffers and
// exported as chrome://tracing / Perfetto JSON ("load out.json at
// https://ui.perfetto.dev"). Design constraints, in order:
//
//  1. Disabled mode costs one relaxed atomic load + predictable branch per
//     span site (<1% on bench_micro_kernels; proven by bench_obs). The
//     EMX_OBS_DISABLE macro removes even that.
//  2. Recording is wait-free for the owning thread: each thread appends to
//     its own fixed-capacity buffer and publishes the new length with a
//     release store; the exporter reads lengths with acquire loads, so
//     exporting while other threads record is data-race-free (TSan-clean).
//     Full buffers drop events and count the drops — never block, never
//     reallocate on the hot path.
//  3. Span arguments are lazy: the formatting callable passed to
//     EMX_TRACE_SPAN runs only when profiling is enabled.

struct ObsOptions {
  /// Record spans/instants/counters (the metrics registry is always live).
  bool tracing = true;
  /// Per-thread event capacity; events beyond this are dropped (counted).
  size_t max_events_per_thread = 1 << 17;
};

namespace internal {
extern std::atomic<bool> g_profiling_enabled;
}  // namespace internal

/// True between StartProfiling and StopProfiling. The single hot-path gate:
/// inline, relaxed, branch-predictable.
inline bool ProfilingEnabled() {
  return internal::g_profiling_enabled.load(std::memory_order_relaxed);
}

/// Begins recording. Idempotent; options apply to buffers created after the
/// call (per-thread buffers are created on a thread's first event).
void StartProfiling(const ObsOptions& options = ObsOptions());
/// Stops recording; buffered events remain exportable.
void StopProfiling();
/// Discards all buffered events and the dropped-event count. Call only
/// while profiling is stopped.
void ClearTrace();

/// Streams every buffered event as a chrome://tracing JSON document in
/// bounded chunks: events are serialized into an internal buffer that is
/// flushed to the stream whenever it crosses `chunk_bytes`, so a full
/// fleet load-test recording (hundreds of MB of spans) never builds one
/// giant string. Safe to run while other threads are still recording
/// (they may add events the export does not see).
class TraceExporter {
 public:
  /// `chunk_bytes` bounds the in-memory buffer between flushes (the last
  /// event started before the bound may run over by one event's length).
  explicit TraceExporter(size_t chunk_bytes = size_t{1} << 16)
      : chunk_bytes_(chunk_bytes) {}

  /// Writes the complete document:
  ///   {"traceEvents": [{"name", "ph", "ts", "dur", "pid", "tid", ...}, ..]}
  /// Returns false when the stream failed mid-write.
  bool ExportTo(std::ostream& os);

 private:
  const size_t chunk_bytes_;
};

/// One-string convenience wrapper over TraceExporter (small traces only —
/// the result holds the whole document).
std::string ExportChromeTrace();
/// Streams the trace straight to a file via TraceExporter (never builds
/// the full document in memory); returns false on I/O failure.
bool WriteChromeTrace(const std::string& path);

/// Total buffered events across all threads (acquire-loaded).
size_t TraceEventCount();
/// Events dropped because a per-thread buffer was full.
size_t TraceDroppedCount();

namespace internal {
// Records a completed span [start_ns, start_ns + dur_ns) on this thread.
void RecordComplete(const char* name, int64_t start_ns, int64_t dur_ns,
                    std::string args);
void RecordInstant(const char* name);
void RecordCounter(const char* name, double value);
int64_t NowNs();
}  // namespace internal

/// Renders {"key": value, ...} span args from integer pairs. Call it inside
/// the lazy-args lambda so it only runs when profiling is on.
std::string KeyValues(
    std::initializer_list<std::pair<const char*, int64_t>> kvs);

/// RAII span: measures construction→destruction and records a complete
/// ('X') event. `name` must outlive the trace (string literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (ProfilingEnabled()) Begin(name);
  }

  /// Lazy-args form: `args_fn()` must return std::string (JSON object text,
  /// e.g. via KeyValues) and is invoked only when profiling is enabled.
  template <typename ArgsFn>
  TraceSpan(const char* name, ArgsFn&& args_fn) {
    if (ProfilingEnabled()) {
      Begin(name);
      args_ = args_fn();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (name_ != nullptr) End();
  }

  /// Elapsed ns so far (0 when not recording) — lets call-sites reuse the
  /// span's clock reads for metrics without a second timer.
  int64_t ElapsedNs() const {
    return name_ != nullptr ? internal::NowNs() - start_ns_ : 0;
  }

 private:
  void Begin(const char* name) {
    name_ = name;
    start_ns_ = internal::NowNs();
  }
  void End() {
    internal::RecordComplete(name_, start_ns_, internal::NowNs() - start_ns_,
                             std::move(args_));
  }

  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  std::string args_;
};

/// Records a zero-duration instant event ('i').
inline void TraceInstant(const char* name) {
  if (ProfilingEnabled()) internal::RecordInstant(name);
}

/// Records a counter sample ('C') — renders as a value track in Perfetto
/// (queue depths, live bytes, loss curves).
inline void TraceCounterValue(const char* name, double value) {
  if (ProfilingEnabled()) internal::RecordCounter(name, value);
}

#define EMX_OBS_CONCAT_(a, b) a##b
#define EMX_OBS_CONCAT(a, b) EMX_OBS_CONCAT_(a, b)

#if defined(EMX_OBS_DISABLE)
#define EMX_TRACE_SPAN(...) \
  do {                      \
  } while (0)
#else
/// EMX_TRACE_SPAN("name") or EMX_TRACE_SPAN("name", [&]{ return
/// obs::KeyValues({{"m", m}}); }) — scoped to the enclosing block.
#define EMX_TRACE_SPAN(...)                                 \
  ::emx::obs::TraceSpan EMX_OBS_CONCAT(emx_trace_span_,     \
                                       __LINE__)(__VA_ARGS__)
#endif

}  // namespace obs
}  // namespace emx

#endif  // EMX_OBS_TRACE_H_
