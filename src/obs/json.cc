#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace emx {
namespace obs {

void AppendJsonDouble(std::string* out, double value, int precision) {
  if (!std::isfinite(value)) value = 0;
  if (precision < 0) precision = 0;
  if (precision > 17) precision = 17;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  *out += buf;
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

// Strict parser state: a cursor over the input plus the first error.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWhitespace();
    JsonValue v;
    if (!ParseValue(&v, /*depth=*/0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing garbage after document");
    if (out != nullptr) *out = std::move(v);
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  static constexpr int kMaxDepth = 200;

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        return ParseLiteral("true", out, JsonValue::Type::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonValue::Type::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonValue::Type::kNull, false);
      default:
        // NaN / Infinity deliberately fall through to the number parser,
        // which rejects them: that is the whole point of "strict".
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(std::string_view lit, JsonValue* out, JsonValue::Type type,
                    bool bool_value) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Fail("invalid literal");
    }
    pos_ += lit.size();
    out->type = type;
    out->bool_value = bool_value;
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t int_digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      ++int_digits;
    }
    if (int_digits == 0) return Fail("invalid number");
    // JSON forbids leading zeros ("01"), a classic printf bug vector.
    if (int_digits > 1 && text_[start + (text_[start] == '-' ? 1 : 0)] == '0') {
      return Fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++frac;
      }
      if (frac == 0) return Fail("missing digits after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++exp;
      }
      if (exp == 0) return Fail("missing exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(out->number)) return Fail("number out of range");
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      switch (text_[pos_]) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) return false;
          AppendUtf8(code, out);
          continue;  // ParseHex4 advanced past the digits already
        }
        default:
          return Fail("invalid escape");
      }
      ++pos_;
    }
  }

  bool ParseHex4(unsigned* out) {
    // Called with pos_ at 'u'.
    ++pos_;
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = code;
    return true;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      SkipWhitespace();
      if (!ParseValue(&element, depth + 1)) return false;
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool JsonParse(std::string_view text, JsonValue* out, std::string* error) {
  Parser parser(text);
  JsonValue v;
  if (!parser.Parse(&v)) {
    if (error != nullptr) *error = parser.error();
    return false;
  }
  if (out != nullptr) *out = std::move(v);
  return true;
}

}  // namespace obs
}  // namespace emx
